// Ablation benchmarks for the design choices DESIGN.md calls out: TDG
// merging, the Algorithm-1 intersect-match reading, and the three
// greedy refinements (coalescing, the DP capacity split, the local
// polish). Each benchmark reports the A_max achieved with the feature
// on and off, so `go test -bench Ablation` doubles as the ablation
// table.
package hermes_test

import (
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// ablationInstance is the Exp#1 testbed at full load: 10 real programs
// on three tight switches.
func ablationInstance(b *testing.B, opts analyzer.Options) (*placement.Plan, func(placement.Greedy) int) {
	b.Helper()
	progs := workload.RealPrograms()
	merged, err := analyzer.Analyze(progs, opts)
	if err != nil {
		b.Fatal(err)
	}
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	topo, err := network.Linear(3, spec)
	if err != nil {
		b.Fatal(err)
	}
	run := func(g placement.Greedy) int {
		plan, err := g.Solve(merged, topo, placement.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return plan.AMax()
	}
	base, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return base, run
}

// BenchmarkAblationLocalImprove measures the greedy with and without
// the local-search polish.
func BenchmarkAblationLocalImprove(b *testing.B) {
	b.ReportAllocs()
	_, run := ablationInstance(b, analyzer.Options{})
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(placement.Greedy{})
		without = run(placement.Greedy{DisableImprove: true})
	}
	if with > without {
		b.Fatalf("local improve worsened A_max: %d > %d", with, without)
	}
	b.ReportMetric(float64(with), "amax-with")
	b.ReportMetric(float64(without), "amax-without")
}

// BenchmarkAblationDPSplit measures the DP capacity-split fallback. On
// this instance bisection alone needs four switches while only three
// exist, so disabling the DP split loses feasibility outright —
// reported as amax-without = -1.
func BenchmarkAblationDPSplit(b *testing.B) {
	b.ReportAllocs()
	progs := workload.RealPrograms()
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		b.Fatal(err)
	}
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	topo, err := network.Linear(3, spec)
	if err != nil {
		b.Fatal(err)
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		plan, err := (placement.Greedy{DisableImprove: true}).Solve(merged, topo, placement.Options{})
		if err != nil {
			b.Fatal(err)
		}
		with = plan.AMax()
		without = -1
		if p2, err := (placement.Greedy{DisableImprove: true, DisableDPSplit: true}).Solve(merged, topo, placement.Options{}); err == nil {
			without = p2.AMax()
		}
	}
	b.ReportMetric(float64(with), "amax-with")
	b.ReportMetric(float64(without), "amax-without")
}

// BenchmarkAblationCoalesce measures segment coalescing.
func BenchmarkAblationCoalesce(b *testing.B) {
	b.ReportAllocs()
	_, run := ablationInstance(b, analyzer.Options{})
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(placement.Greedy{DisableImprove: true})
		without = run(placement.Greedy{DisableImprove: true, DisableCoalesce: true})
	}
	b.ReportMetric(float64(with), "amax-with")
	b.ReportMetric(float64(without), "amax-without")
}

// BenchmarkAblationMerging compares the SPEED-merged TDG against the
// unmerged union on the sketch workload (whose shared hash stages are
// exactly the redundancy merging exists for): merging eliminates
// redundant MATs, freeing resources and reducing forced splits.
func BenchmarkAblationMerging(b *testing.B) {
	b.ReportAllocs()
	progs, err := workload.SketchSet(10, 1)
	if err != nil {
		b.Fatal(err)
	}
	var mergedReq, unionReq float64
	for i := 0; i < b.N; i++ {
		merged, err := analyzer.Analyze(progs, analyzer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		union, err := analyzer.Analyze(progs, analyzer.Options{SkipMerge: true})
		if err != nil {
			b.Fatal(err)
		}
		mergedReq = merged.TotalRequirement(program.DefaultResourceModel)
		unionReq = union.TotalRequirement(program.DefaultResourceModel)
	}
	// The ten sketches share nine redundant hash stages; allow float
	// summation noise but demand real savings.
	if mergedReq > unionReq-1e-3 {
		b.Fatalf("merging saved nothing: %g vs %g", mergedReq, unionReq)
	}
	b.ReportMetric(unionReq-mergedReq, "stage-units-saved")
}

// BenchmarkAblationIntersectMatch compares Algorithm 1's literal
// ΣF_a^a sizing against the tighter F_a^a ∩ reads(b) reading.
func BenchmarkAblationIntersectMatch(b *testing.B) {
	b.ReportAllocs()
	var literal, intersect int
	for i := 0; i < b.N; i++ {
		for _, opt := range []analyzer.Options{{}, {IntersectMatch: true}} {
			merged, err := analyzer.Analyze(workload.RealPrograms(), opt)
			if err != nil {
				b.Fatal(err)
			}
			total := 0
			for _, e := range merged.Edges() {
				total += e.MetadataBytes
			}
			if opt.IntersectMatch {
				intersect = total
			} else {
				literal = total
			}
		}
	}
	if intersect > literal {
		b.Fatalf("intersect sizing larger than literal: %d > %d", intersect, literal)
	}
	b.ReportMetric(float64(literal), "edge-bytes-literal")
	b.ReportMetric(float64(intersect), "edge-bytes-intersect")
}

// BenchmarkAblationRouteOptimizer compares shortest-path-only routing
// against the k-shortest-path load spreader on a Table III WAN.
func BenchmarkAblationRouteOptimizer(b *testing.B) {
	b.ReportAllocs()
	progs, err := workload.EvaluationPrograms(30, 1)
	if err != nil {
		b.Fatal(err)
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		b.Fatal(err)
	}
	topo, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := (placement.Greedy{DisableImprove: true}).Solve(merged, topo, placement.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var before, after int
	for i := 0; i < b.N; i++ {
		if err := placement.AddRoutes(plan); err != nil {
			b.Fatal(err)
		}
		before = plan.MaxWireBytes()
		opt, err := placement.OptimizeRoutes(plan, placement.RouteOptions{K: 4})
		if err != nil {
			b.Fatal(err)
		}
		after = opt
	}
	if after > before {
		b.Fatalf("route optimizer worsened the busiest link: %d > %d", after, before)
	}
	b.ReportMetric(float64(before), "maxlink-shortest")
	b.ReportMetric(float64(after), "maxlink-optimized")
}
