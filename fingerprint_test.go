package hermes_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/workload"
)

// planFingerprint flattens a plan to a stable, comparable string:
// A_max plus the sorted MAT→switch assignment. Byte-identical plans
// produce identical fingerprints across processes and builds, so the
// logged values double as a cross-version regression oracle for the
// solver rewrites (same A_max, same assignments).
func planFingerprint(p *placement.Plan) string {
	parts := make([]string, 0, len(p.Assignments))
	for name, sp := range p.Assignments {
		parts = append(parts, fmt.Sprintf("%s=%d", name, sp.Switch))
	}
	sort.Strings(parts)
	return fmt.Sprintf("amax=%dB %s", p.AMax(), strings.Join(parts, " "))
}

// fingerprintInstance builds the Table III instance used throughout
// the solver-identity checks.
func fingerprintInstance(t *testing.T, topoID, programs int) (*placement.Plan, func(workers int) *placement.Plan) {
	t.Helper()
	progs, err := workload.EvaluationPrograms(programs, 1)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.TableIII(topoID, network.TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) *placement.Plan {
		plan, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{Workers: workers})
		if err != nil {
			t.Fatalf("topo %d workers %d: %v", topoID, workers, err)
		}
		return plan
	}
	return solve(1), solve
}

// TestGreedyPlanFingerprints pins the greedy solver's output on the
// first Table III topologies: serial and parallel runs must produce
// byte-identical plans, and the logged fingerprints let any two builds
// of the solver be diffed for plan identity.
func TestGreedyPlanFingerprints(t *testing.T) {
	for topoID := 1; topoID <= 3; topoID++ {
		serial, solve := fingerprintInstance(t, topoID, 30)
		fp := planFingerprint(serial)
		t.Logf("greedy topo%d: %s", topoID, fp)
		for _, workers := range []int{2, 8} {
			if got := planFingerprint(solve(workers)); got != fp {
				t.Fatalf("topo %d: workers=%d plan differs from serial:\n%s\nvs\n%s", topoID, workers, got, fp)
			}
		}
	}
}

// TestReplanPlanFingerprints pins the delta-repair output after a
// busiest-switch drain on topology 1.
func TestReplanPlanFingerprints(t *testing.T) {
	cold, _ := fingerprintInstance(t, 1, 30)
	loads := map[network.SwitchID]int{}
	for _, sp := range cold.Assignments {
		loads[sp.Switch]++
	}
	drain, best := network.SwitchID(-1), -1
	for u, n := range loads {
		if n > best || (n == best && u < drain) {
			drain, best = u, n
		}
	}
	repaired, report, err := placement.ReplanWithOptions(cold, placement.Greedy{}, placement.ReplanOptions{}, drain)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := placement.Diff(cold, repaired)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replan topo1 drain=%d repair=%v moved=%d: %s", drain, report.UsedRepair, moved, planFingerprint(repaired))
}

// TestExactPlanFingerprints pins the branch & bound on the Figure 1
// instance; serial and parallel searches must agree exactly (both run
// to completion: no deadline, default node cap, Proven=true).
func TestExactPlanFingerprints(t *testing.T) {
	progs := workload.RealPrograms()[:4]
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	topo, err := network.Linear(3, spec)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(workers int) *placement.Plan {
		plan, err := (placement.Exact{}).Solve(merged, topo, placement.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Proven {
			t.Fatal("exact search did not run to completion")
		}
		return plan
	}
	fp := planFingerprint(solve(1))
	t.Logf("exact figure1: %s", fp)
	if got := planFingerprint(solve(8)); got != fp {
		t.Fatalf("parallel exact differs from serial:\n%s\nvs\n%s", got, fp)
	}
}
