// The "equiv" experiment measures the symbolic plan-equivalence
// checker (internal/equiv) against the packet-replay differential it
// supersedes as the deployment gate, producing the BENCH_equiv.json
// baseline:
//
//	hermes-bench -exp equiv -json BENCH_equiv.json    # (re)generate the baseline
//	hermes-bench -exp equiv -compare BENCH_equiv.json # fail on >10% symbolic-check regression
//	hermes-bench -exp equiv -smoke                    # machine-independent budget gate
//
// Every row solves one Table III instance with Greedy, compiles it,
// and measures (a) the steady-state symbolic Check over the compiled
// deployment — the allocation-free fast path a Deploy/Redeploy/
// Supervisor gate pays on every adoption — and (b) the sampled
// packet-replay equivalence run it replaces. The smoke gate holds the
// checker to its contract on any machine: under 10 ms per program,
// zero allocations per check, and an in-run speedup over replay.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
	"github.com/hermes-net/hermes/internal/workload"
)

const (
	// equivBudgetNs is the per-program time budget for one symbolic
	// check: 10 ms, the acceptance bound the gate is deployed under.
	equivBudgetNs = 10e6
	// equivSmokeReplayRatio is the in-run floor: the symbolic check
	// must beat the sampled replay it replaces by at least this factor
	// on the same host in the same process.
	equivSmokeReplayRatio = 5.0
	// equivCompareSlack mirrors the core gate: a row fails only when
	// its symbolic ns/op regressed >10% against the committed baseline
	// AND its in-run replay/symbolic ratio degraded >10% — the dual
	// condition filters machine-speed skew between hosts.
	equivCompareSlack = 1.10
	// equivReps / equivReplayPackets size the measurement.
	equivReps          = 5
	equivReplayPackets = 64
)

// equivRowJSON is one fixture measurement in BENCH_equiv.json.
// Findings counts the checker's non-gating warnings (benign HE010
// interleavings): a row with findings pays the allocating diagnose
// path on every check, so the allocation-free contract is asserted
// only on finding-free rows.
type equivRowJSON struct {
	Name                string  `json:"name"`
	Programs            int     `json:"programs"`
	MATs                int     `json:"mats"`
	Switches            int     `json:"switches"`
	Findings            int     `json:"findings"`
	SymbolicNsPerOp     float64 `json:"symbolic_ns_per_op"`
	SymbolicAllocsPerOp int64   `json:"symbolic_allocs_per_op"`
	NsPerProgram        float64 `json:"ns_per_program"`
	ReplayNsPerOp       float64 `json:"replay_ns_per_op"`
	ReplayRatio         float64 `json:"replay_ratio"`
}

// equivBaselineJSON is the BENCH_equiv.json document.
type equivBaselineJSON struct {
	Experiment string         `json:"experiment"`
	Seed       int64          `json:"seed"`
	Rows       []equivRowJSON `json:"rows"`
}

// equivFixture names one workload/topology cell of the sweep.
// wantFast pins the allocation-free contract: the real-program
// fixture's benign WAW interleaving is covered by the checker's
// order-free relaxation, so its steady-state Check must stay on the
// alloc-free walkClean path. The synthetic mixed fixtures contain
// read-side HE010 interleavings that force the allocating diagnose
// pass on every check; they gate the time budget, not allocations.
type equivFixture struct {
	name     string
	programs int
	topoID   int
	mixed    bool
	wantFast bool
}

var equivFixtures = []equivFixture{
	{name: "real4_tableIII1", programs: 4, topoID: 1, wantFast: true},
	{name: "mixed10_tableIII2", programs: 10, topoID: 2, mixed: true},
	{name: "mixed20_tableIII5", programs: 20, topoID: 5, mixed: true},
}

// equivRow solves, compiles, and measures one fixture.
func (r *runner) equivRow(fx equivFixture, reps int) (equivRowJSON, error) {
	var progs []*program.Program
	var err error
	if fx.mixed {
		progs, err = workload.EvaluationPrograms(fx.programs, r.cfg.Seed)
	} else {
		real := workload.RealPrograms()
		if fx.programs > len(real) {
			return equivRowJSON{}, fmt.Errorf("equiv: only %d real programs", len(real))
		}
		progs = real[:fx.programs]
	}
	if err != nil {
		return equivRowJSON{}, err
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		return equivRowJSON{}, err
	}
	topo, err := network.TableIII(fx.topoID, network.TofinoSpec())
	if err != nil {
		return equivRowJSON{}, err
	}
	plan, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{})
	if err != nil {
		return equivRowJSON{}, err
	}
	dep, err := deploy.Compile(plan, hermes.AnalyzeOptions{})
	if err != nil {
		return equivRowJSON{}, err
	}
	checker, err := equiv.NewChecker(merged)
	if err != nil {
		return equivRowJSON{}, err
	}
	if err := checker.Check(dep); err != nil {
		return equivRowJSON{}, fmt.Errorf("equiv: fixture %s not equivalent: %w", fx.name, err)
	}
	report, err := equiv.Diagnose(merged, dep)
	if err != nil {
		return equivRowJSON{}, err
	}

	symbolic := measureBest(reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := checker.Check(dep); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The replay twin is measured as raw engine cost — one distributed
	// and one reference run per packet, the work VerifyEquivalence does
	// before comparing write histories. The comparison itself is not
	// part of the measurement: synthetic mixed workloads contain
	// unordered non-commuting writers (the checker's benign HE010
	// findings), so replay's final states legitimately differ between
	// the two schedules on adversarial inputs.
	eng, err := dataplane.NewEngine(dep)
	if err != nil {
		return equivRowJSON{}, err
	}
	refEng, err := dataplane.NewReferenceEngine(dep.Plan.Graph)
	if err != nil {
		return equivRowJSON{}, err
	}
	pkts := equivReplayStream(merged, r.cfg.Seed, equivReplayPackets)
	replay := measureBest(reps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pkts {
				if _, err := eng.Process(p.Clone()); err != nil {
					b.Fatal(err)
				}
				if _, err := refEng.Process(p.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	used := map[network.SwitchID]bool{}
	for _, sp := range plan.Assignments {
		used[sp.Switch] = true
	}
	row := equivRowJSON{
		Name:                fx.name,
		Programs:            fx.programs,
		MATs:                merged.NumNodes(),
		Switches:            len(used),
		Findings:            len(report.Findings),
		SymbolicNsPerOp:     float64(symbolic.NsPerOp()),
		SymbolicAllocsPerOp: symbolic.AllocsPerOp(),
		NsPerProgram:        round3(float64(symbolic.NsPerOp()) / float64(fx.programs)),
		ReplayNsPerOp:       float64(replay.NsPerOp()),
	}
	if row.SymbolicNsPerOp > 0 {
		row.ReplayRatio = round3(row.ReplayNsPerOp / row.SymbolicNsPerOp)
	}
	return row, nil
}

// equivReplayStream synthesizes a deterministic packet stream over the
// graph's header fields (match keys plus action operands), width-masked
// so every field stays in range.
func equivReplayStream(g *tdg.Graph, seed int64, n int) []*dataplane.Packet {
	bits := map[string]int{}
	for _, node := range g.Nodes() {
		m := node.MAT
		for _, k := range m.Keys {
			if !k.Field.IsMetadata() {
				bits[k.Field.Name] = k.Field.Bits
			}
		}
		for _, a := range m.Actions {
			for _, op := range a.Ops {
				if !op.Dst.IsMetadata() {
					bits[op.Dst.Name] = op.Dst.Bits
				}
				for _, s := range op.Srcs {
					if !s.IsMetadata() {
						bits[s.Name] = s.Bits
					}
				}
			}
		}
	}
	names := make([]string, 0, len(bits))
	for name := range bits {
		names = append(names, name)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	out := make([]*dataplane.Packet, n)
	for i := range out {
		hdr := make(map[string]uint64, len(names))
		for _, name := range names {
			mask := uint64(1)<<uint(bits[name]) - 1
			if bits[name] >= 64 {
				mask = ^uint64(0)
			}
			hdr[name] = rng.Uint64() & mask
		}
		out[i] = &dataplane.Packet{Headers: hdr}
	}
	return out
}

// equivBench runs the sweep, prints the table, and applies whichever
// gate the flags selected.
func (r *runner) equivBench() error {
	mode := "baseline"
	if r.smoke {
		mode = "smoke"
	} else if r.comparePath != "" {
		mode = "compare"
	}
	fmt.Printf("## Equiv: symbolic equivalence checker vs packet replay (%s)\n", mode)

	reps := equivReps
	if r.smoke {
		reps = 2
	}
	doc := equivBaselineJSON{Experiment: "equiv", Seed: r.cfg.Seed}
	for _, fx := range equivFixtures {
		row, err := r.equivRow(fx, reps)
		if err != nil {
			return err
		}
		doc.Rows = append(doc.Rows, row)
	}

	fmt.Printf("  %-20s %5s %5s %4s %5s %16s %10s %14s %16s %8s\n",
		"fixture", "progs", "mats", "sw", "warns", "symbolic ns/op", "allocs/op", "ns/program", "replay ns/op", "ratio")
	for _, row := range doc.Rows {
		fmt.Printf("  %-20s %5d %5d %4d %5d %16.0f %10d %14.0f %16.0f %7.0fx\n",
			row.Name, row.Programs, row.MATs, row.Switches, row.Findings, row.SymbolicNsPerOp,
			row.SymbolicAllocsPerOp, row.NsPerProgram, row.ReplayNsPerOp, row.ReplayRatio)
	}
	fmt.Println()

	if r.smoke {
		return equivSmokeGate(doc.Rows)
	}
	if r.comparePath != "" {
		return equivCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing equiv baseline: %w", err)
		}
		fmt.Printf("  equiv baseline written to %s\n\n", r.jsonPath)
	}
	return nil
}

// equivSmokeGate enforces the checker's contract with in-run,
// machine-independent conditions (the 10 ms budget is three orders of
// magnitude above the measured cost, so it holds on any host that can
// run the suite at all).
func equivSmokeGate(rows []equivRowJSON) error {
	wantFast := make(map[string]bool, len(equivFixtures))
	for _, fx := range equivFixtures {
		wantFast[fx.name] = fx.wantFast
	}
	var failures []string
	for _, row := range rows {
		if row.NsPerProgram >= equivBudgetNs {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/program breaks the 10 ms budget", row.Name, row.NsPerProgram))
		}
		if wantFast[row.Name] && row.SymbolicAllocsPerOp != 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op on the steady-state check (fast path must be allocation-free)", row.Name, row.SymbolicAllocsPerOp))
		}
		if row.ReplayRatio < equivSmokeReplayRatio {
			failures = append(failures, fmt.Sprintf(
				"%s: symbolic check only %.1fx faster than sampled replay (need >= %.0fx)", row.Name, row.ReplayRatio, equivSmokeReplayRatio))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("equiv smoke gate failed (%d condition(s))", len(failures))
	}
	fmt.Println("  equiv smoke gate passed: <10ms/program, allocation-free fast path, symbolic beats replay on every fixture")
	return nil
}

// equivCompareGate diffs the fresh sweep against the committed
// baseline, failing only on the dual condition (raw ns/op AND in-run
// replay ratio both regressed >10%).
func equivCompareGate(path string, cur equivBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading equiv baseline: %w", err)
	}
	var base equivBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing equiv baseline %s: %w", path, err)
	}
	baseline := make(map[string]equivRowJSON, len(base.Rows))
	for _, row := range base.Rows {
		baseline[row.Name] = row
	}
	var failures []string
	fmt.Printf("  %-20s %18s %16s %8s %14s\n", "fixture", "baseline ns/op", "current ns/op", "delta", "ratio drift")
	for _, row := range cur.Rows {
		b, ok := baseline[row.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("fixture %s missing from baseline %s", row.Name, path))
			continue
		}
		delta := 0.0
		if b.SymbolicNsPerOp > 0 {
			delta = row.SymbolicNsPerOp/b.SymbolicNsPerOp - 1
		}
		ratioDrift := 0.0
		if b.ReplayRatio > 0 {
			ratioDrift = row.ReplayRatio/b.ReplayRatio - 1
		}
		fmt.Printf("  %-20s %18.0f %16.0f %+7.1f%% %+13.1f%%\n",
			row.Name, b.SymbolicNsPerOp, row.SymbolicNsPerOp, delta*100, ratioDrift*100)
		rawRegressed := b.SymbolicNsPerOp > 0 && row.SymbolicNsPerOp > b.SymbolicNsPerOp*equivCompareSlack
		ratioRegressed := b.ReplayRatio > 0 && row.ReplayRatio < b.ReplayRatio/equivCompareSlack
		if rawRegressed && ratioRegressed {
			failures = append(failures, fmt.Sprintf(
				"fixture %s regressed %.1f%% in symbolic ns/op and %.1f%% against the in-run replay twin",
				row.Name, delta*100, -ratioDrift*100))
		}
		if b.SymbolicAllocsPerOp == 0 && row.SymbolicAllocsPerOp != 0 {
			failures = append(failures, fmt.Sprintf(
				"fixture %s allocates %d/op where the baseline was allocation-free",
				row.Name, row.SymbolicAllocsPerOp))
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("equiv compare gate failed (%d regression(s) beyond %.0f%%)",
			len(failures), (equivCompareSlack-1)*100)
	}
	fmt.Printf("  equiv compare gate passed: no fixture regressed beyond %.0f%% of %s\n",
		(equivCompareSlack-1)*100, path)
	return nil
}
