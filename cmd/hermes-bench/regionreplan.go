// The "regionreplan" experiment measures region-local incremental
// replanning (Exp#11): the busiest-switch drain on seeded composite
// WANs healed by the partition-aware regional repair versus a sharded
// cold re-solve off the same pre-drain plan, producing the
// BENCH_regionreplan.json perf baseline:
//
//	hermes-bench -exp regionreplan -full -json BENCH_regionreplan.json # baseline incl. composite:60
//	hermes-bench -exp regionreplan -compare BENCH_regionreplan.json    # fail on healing-latency regression
//	hermes-bench -exp regionreplan -smoke                              # machine-independent speedup/quality gate
//
// Both replans run off the same pre-drain sharded plan with the same
// Options and partition, so the speedup column is a like-for-like
// measurement of the regional delta path against the cold re-solve it
// escalates to. The smoke gate pins the ISSUE 9 acceptance criteria:
// zero full-solve fallbacks, A_max within the quality ratio, verdict
// agreement between the incremental and full equivalence checkers, and
// the >=10x headline speedup on composite:30.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"github.com/hermes-net/hermes/internal/experiments"
)

const (
	// regionReplanHeadline is the sweep cell the >=10x speedup gate
	// applies to (the ISSUE 9 acceptance topology).
	regionReplanHeadline = "composite:30"
	// regionReplanSmokeSpeedup is the machine-independent healing
	// speedup the headline cell must reach: both sides are min-of-reps
	// measurements from the same run on the same host.
	regionReplanSmokeSpeedup = 10.0
	// regionReplanCompareSlack bounds the raw regional_ms regression: a
	// row fails -compare only when its healing time regressed more than
	// 10% AND its in-run speedup also degraded (see below). The raw side
	// alone is meaningless at the ~2ms scale of these cells, where a GC
	// pause or a busy host reads as +40%.
	regionReplanCompareSlack = 1.10
	// regionReplanSpeedupSlack bounds the in-run speedup drift, the
	// self-calibrating side of the dual condition: cold and regional are
	// measured in the same process, so uniform machine slowdowns cancel.
	// It is wider than the raw slack because GC noise does NOT cancel
	// perfectly — the cold re-solve allocates far more than the regional
	// path, so the ratio still jitters ~15% run to run. A genuine
	// algorithmic regression (regional path slowing while cold holds)
	// moves the ratio well past 25%.
	regionReplanSpeedupSlack = 1.25
	// regionReplanBaselineRuns: -json baseline mode repeats the sweep
	// this many times and records the noise ENVELOPE per row — slowest
	// regional ms, lowest speedup. A single run's min-of-reps is an
	// extreme-value sample; pinning it as the baseline makes -compare a
	// coin flip at the ~2ms scale of these cells. Against the envelope,
	// ordinary jitter passes and only a real slowdown trips both sides
	// of the dual condition.
	regionReplanBaselineRuns = 3
)

// regionReplanRowJSON is one Exp#11 row in the machine-readable
// baseline.
type regionReplanRowJSON struct {
	Topology      string  `json:"topology"`
	Switches      int     `json:"switches"`
	Programmable  int     `json:"programmable"`
	Programs      int     `json:"programs"`
	MATs          int     `json:"mats"`
	Shards        int     `json:"shards"`
	Drained       int     `json:"drained_switch"`
	DisplacedMATs int     `json:"displaced_mats"`
	ColdMs        float64 `json:"cold_ms"`
	RegionalMs    float64 `json:"regional_ms"`
	Speedup       float64 `json:"speedup"`
	SeedAMax      int     `json:"seed_amax_bytes"`
	ColdAMax      int     `json:"cold_amax_bytes"`
	RegionalAMax  int     `json:"regional_amax_bytes"`
	AMaxRatio     float64 `json:"amax_ratio"`
	RegionsTouch  int     `json:"regions_touched"`
	RegionsWiden  int     `json:"regions_widened"`
	ExchangeRnds  int     `json:"exchange_rounds"`
	ExchangeMoves int     `json:"exchange_moves"`
	MovedCold     int     `json:"moved_cold"`
	MovedRegional int     `json:"moved_regional"`
	FellBack      bool    `json:"fell_back"`
	DirtyMs       float64 `json:"dirty_ms"`
	RegionsMs     float64 `json:"regions_ms"`
	ExchangeMs    float64 `json:"exchange_ms"`
	GatesMs       float64 `json:"gates_ms"`
	EquivAgree    bool    `json:"equiv_agree"`
	EquivMs       float64 `json:"equiv_ms"`
}

// regionReplanBaselineJSON is the BENCH_regionreplan.json document.
type regionReplanBaselineJSON struct {
	Experiment string                `json:"experiment"`
	Seed       int64                 `json:"seed"`
	Workers    int                   `json:"workers"`
	Full       bool                  `json:"full"`
	Rows       []regionReplanRowJSON `json:"rows"`
}

func regionReplanRow(p experiments.RegionReplanPoint) regionReplanRowJSON {
	return regionReplanRowJSON{
		Topology: p.Topology, Switches: p.Switches, Programmable: p.Programmable,
		Programs: p.Programs, MATs: p.MATs, Shards: p.Shards,
		Drained: int(p.Drained), DisplacedMATs: p.DisplacedMATs,
		ColdMs: round3(p.ColdMs), RegionalMs: round3(p.RegionalMs), Speedup: round3(p.Speedup),
		SeedAMax: p.SeedAMax, ColdAMax: p.ColdAMax, RegionalAMax: p.RegionalAMax,
		AMaxRatio:    round3(p.AMaxRatio),
		RegionsTouch: p.RegionsTouched, RegionsWiden: p.RegionsWidened,
		ExchangeRnds: p.ExchangeRounds, ExchangeMoves: p.ExchangeMoves,
		MovedCold: p.MovedCold, MovedRegional: p.MovedRegional, FellBack: p.FellBack,
		DirtyMs: round3(p.DirtyMs), RegionsMs: round3(p.RegionsMs),
		ExchangeMs: round3(p.ExchangeMs), GatesMs: round3(p.GatesMs),
		EquivAgree: p.EquivAgree, EquivMs: round3(p.EquivMs),
	}
}

// regionReplan runs the churn-at-scale sweep, prints the table, and
// applies whichever gate the flags selected.
func (r *runner) regionReplan() error {
	mode := "baseline"
	if r.smoke {
		mode = "smoke"
	} else if r.comparePath != "" {
		mode = "compare"
	}
	full := r.full && !r.smoke
	fmt.Printf("## Exp#11: region-local replan vs sharded cold re-solve under churn (%s)\n", mode)

	pts, err := experiments.Exp11(r.cfg, full)
	if err != nil {
		return err
	}
	doc := regionReplanBaselineJSON{Experiment: "regionreplan", Seed: r.cfg.Seed, Workers: r.cfg.Workers, Full: full}
	for _, p := range pts {
		doc.Rows = append(doc.Rows, regionReplanRow(p))
	}

	fmt.Printf("  %-14s %8s %6s %7s %7s %9s %10s %10s %8s %7s %7s %6s %6s\n",
		"topology", "switches", "progs", "MATs", "shards", "displaced", "cold", "regional", "speedup", "A_max", "regions", "widen", "moves")
	csvRows := [][]string{{"topology", "switches", "programmable", "programs", "mats", "shards",
		"drained_switch", "displaced_mats", "cold_ms", "regional_ms", "speedup",
		"seed_amax_bytes", "cold_amax_bytes", "regional_amax_bytes", "amax_ratio",
		"regions_touched", "regions_widened", "exchange_rounds", "exchange_moves",
		"moved_cold", "moved_regional", "fell_back",
		"dirty_ms", "regions_ms", "exchange_ms", "gates_ms", "equiv_agree", "equiv_ms"}}
	for _, row := range doc.Rows {
		fmt.Printf("  %-14s %8d %6d %7d %7d %9d %10s %10s %8s %7s %7d %6d %6d\n",
			row.Topology, row.Switches, row.Programs, row.MATs, row.Shards, row.DisplacedMATs,
			fmt.Sprintf("%.1fms", row.ColdMs), fmt.Sprintf("%.2fms", row.RegionalMs),
			fmt.Sprintf("%.1fx", row.Speedup), fmt.Sprintf("%.3f", row.AMaxRatio),
			row.RegionsTouch, row.RegionsWiden, row.MovedRegional)
		csvRows = append(csvRows, []string{
			row.Topology, strconv.Itoa(row.Switches), strconv.Itoa(row.Programmable),
			strconv.Itoa(row.Programs), strconv.Itoa(row.MATs), strconv.Itoa(row.Shards),
			strconv.Itoa(row.Drained), strconv.Itoa(row.DisplacedMATs),
			fmt.Sprintf("%.3f", row.ColdMs), fmt.Sprintf("%.3f", row.RegionalMs), fmt.Sprintf("%.3f", row.Speedup),
			strconv.Itoa(row.SeedAMax), strconv.Itoa(row.ColdAMax), strconv.Itoa(row.RegionalAMax),
			fmt.Sprintf("%.3f", row.AMaxRatio),
			strconv.Itoa(row.RegionsTouch), strconv.Itoa(row.RegionsWiden),
			strconv.Itoa(row.ExchangeRnds), strconv.Itoa(row.ExchangeMoves),
			strconv.Itoa(row.MovedCold), strconv.Itoa(row.MovedRegional), strconv.FormatBool(row.FellBack),
			fmt.Sprintf("%.3f", row.DirtyMs), fmt.Sprintf("%.3f", row.RegionsMs),
			fmt.Sprintf("%.3f", row.ExchangeMs), fmt.Sprintf("%.3f", row.GatesMs),
			strconv.FormatBool(row.EquivAgree), fmt.Sprintf("%.3f", row.EquivMs),
		})
	}
	fmt.Println()

	if r.smoke {
		return regionReplanSmokeGate(doc.Rows)
	}
	if r.comparePath != "" {
		return regionReplanCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		// Widen each row to its noise envelope across repeat sweeps so
		// the committed baseline is conservative (see
		// regionReplanBaselineRuns).
		for run := 1; run < regionReplanBaselineRuns; run++ {
			more, err := experiments.Exp11(r.cfg, full)
			if err != nil {
				return err
			}
			for i, p := range more {
				if i >= len(doc.Rows) || doc.Rows[i].Topology != p.Topology {
					return fmt.Errorf("regionreplan: sweep shape changed between baseline runs")
				}
				if p.RegionalMs > doc.Rows[i].RegionalMs {
					doc.Rows[i].RegionalMs = round3(p.RegionalMs)
				}
				if p.ColdMs > doc.Rows[i].ColdMs {
					doc.Rows[i].ColdMs = round3(p.ColdMs)
				}
				if p.Speedup < doc.Rows[i].Speedup {
					doc.Rows[i].Speedup = round3(p.Speedup)
				}
			}
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing regionreplan baseline: %w", err)
		}
		fmt.Printf("  regionreplan baseline written to %s (envelope of %d runs)\n\n", r.jsonPath, regionReplanBaselineRuns)
	}
	return r.writeCSV("regionreplan.csv", csvRows)
}

// regionReplanSmokeGate enforces the in-run acceptance criteria of the
// regional replan (the ISSUE 9 sweep): every cell heals through the
// regional path without a full-solve fallback, holds the quality ratio
// against the cold re-solve (unless the pre-drain seed was already
// worse — an incremental repair cannot out-solve its warm seed), agrees
// with the full equivalence checker, and the composite:30 headline
// heals at least regionReplanSmokeSpeedup times faster than the cold
// re-solve. All comparisons are between measurements from the same run
// on the same host.
func regionReplanSmokeGate(rows []regionReplanRowJSON) error {
	var failures []string
	var headline *regionReplanRowJSON
	for i := range rows {
		row := &rows[i]
		if row.FellBack {
			failures = append(failures, fmt.Sprintf(
				"%s: regional replan fell back to a full solve", row.Topology))
		}
		if row.RegionsTouch == 0 {
			failures = append(failures, fmt.Sprintf("%s: no regions touched", row.Topology))
		}
		if row.DisplacedMATs == 0 || row.MovedRegional == 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: drain displaced %d MATs, regional moved %d — no churn exercised",
				row.Topology, row.DisplacedMATs, row.MovedRegional))
		}
		if row.AMaxRatio > experiments.RegionReplanQualityRatio && row.RegionalAMax > row.SeedAMax {
			failures = append(failures, fmt.Sprintf(
				"%s: regional A_max %dB is %.3fx the %dB cold re-solve (seed %dB)",
				row.Topology, row.RegionalAMax, row.AMaxRatio, row.ColdAMax, row.SeedAMax))
		}
		if !row.EquivAgree {
			failures = append(failures, fmt.Sprintf(
				"%s: incremental and full equivalence verdicts diverge", row.Topology))
		}
		if row.Topology == regionReplanHeadline {
			headline = row
		}
	}
	if headline == nil {
		failures = append(failures, fmt.Sprintf("sweep missing the %s headline cell", regionReplanHeadline))
	} else if headline.Speedup < regionReplanSmokeSpeedup {
		failures = append(failures, fmt.Sprintf(
			"%s: regional replan speedup %.1fx below the %.0fx gate (cold %.2fms, regional %.2fms)",
			headline.Topology, headline.Speedup, regionReplanSmokeSpeedup, headline.ColdMs, headline.RegionalMs))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("regionreplan smoke gate failed (%d check(s))", len(failures))
	}
	fmt.Printf("  regionreplan smoke gate passed: zero fallbacks, A_max within %.1fx, %s healed %.1fx faster than the cold re-solve\n",
		experiments.RegionReplanQualityRatio, regionReplanHeadline, headline.Speedup)
	return nil
}

// regionReplanCompareGate diffs the fresh sweep against the committed
// baseline. A row fails only on the dual condition — raw regional_ms
// regression beyond regionReplanCompareSlack AND in-run speedup
// degradation beyond regionReplanSpeedupSlack — so neither uniform
// machine slowdowns nor single-process GC jitter read as code
// regressions, while a real slowdown of the regional path trips both.
func regionReplanCompareGate(path string, cur regionReplanBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading regionreplan baseline: %w", err)
	}
	var base regionReplanBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing regionreplan baseline %s: %w", path, err)
	}
	baseline := make(map[string]regionReplanRowJSON, len(base.Rows))
	for _, row := range base.Rows {
		baseline[row.Topology] = row
	}
	var failures []string
	fmt.Printf("  %-14s %16s %14s %8s %14s\n", "topology", "baseline ms", "current ms", "delta", "speedup drift")
	for _, row := range cur.Rows {
		b, ok := baseline[row.Topology]
		if !ok {
			fmt.Printf("  %-14s %16s %14.2f %8s %14s  (not in baseline)\n", row.Topology, "-", row.RegionalMs, "-", "-")
			continue
		}
		if row.FellBack {
			failures = append(failures, fmt.Sprintf("%s: regional replan fell back to a full solve", row.Topology))
			continue
		}
		delta := 0.0
		if b.RegionalMs > 0 {
			delta = row.RegionalMs/b.RegionalMs - 1
		}
		drift := 0.0
		if b.Speedup > 0 {
			drift = row.Speedup/b.Speedup - 1
		}
		fmt.Printf("  %-14s %16.2f %14.2f %+7.1f%% %+13.1f%%\n",
			row.Topology, b.RegionalMs, row.RegionalMs, delta*100, drift*100)
		rawRegressed := b.RegionalMs > 0 && row.RegionalMs > b.RegionalMs*regionReplanCompareSlack
		speedupRegressed := b.Speedup > 0 && row.Speedup < b.Speedup/regionReplanSpeedupSlack
		if rawRegressed && speedupRegressed {
			failures = append(failures, fmt.Sprintf(
				"%s: regional healing regressed %.1f%% in ms and %.1f%% in speedup over the cold re-solve (baseline %.2fms at %.1fx, now %.2fms at %.1fx)",
				row.Topology, delta*100, -drift*100, b.RegionalMs, b.Speedup, row.RegionalMs, row.Speedup))
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("regionreplan compare gate failed (%d regression(s) beyond %.0f%%)",
			len(failures), (regionReplanCompareSlack-1)*100)
	}
	fmt.Printf("  regionreplan compare gate passed: no regional healing regressed beyond %.0f%% of %s\n",
		(regionReplanCompareSlack-1)*100, path)
	return nil
}
