// The "traffic" experiment (Exp#9, EXPERIMENTS.md) evaluates the
// traffic-weighted objective and the batched replay engine together,
// producing the BENCH_traffic.json baseline:
//
//	hermes-bench -exp traffic -json BENCH_traffic.json    # (re)generate the baseline
//	hermes-bench -exp traffic -compare BENCH_traffic.json # fail on regressions
//	hermes-bench -exp traffic -smoke                      # machine-independent gates
//
// Part A sweeps the built-in traffic models over spread-out fixtures
// (stage capacity tightened so the structural solve cannot co-locate
// everything): each cell solves the same instance structurally
// (A_max-only) and weighted (min-max w·A under AMaxSlack), compiles
// both, and replays the matrix through the batched engine to measure
// the hot-pair coordination byte-rate each plan actually pays. The
// smoke gate holds the weighted solver to the acceptance bar on every
// skewed model: hot-pair byte-rate cut >= 2x at <= 1.2x structural
// A_max inflation.
//
// Part B measures the engines on one compiled fixture: the per-packet
// interpreter vs the batched pipeline over the same packet stream. The
// smoke gate requires the batched engine >= 10x faster per packet and
// allocation-free in steady state.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/workload"
)

const (
	// trafficHotCutFloor is the acceptance bar: on skewed models the
	// weighted plan must cut the hot-pair coordination byte-rate by at
	// least this factor vs the structural plan.
	trafficHotCutFloor = 2.0
	// trafficAMaxSlack bounds the structural A_max a weighted solve may
	// pay for that cut (and is passed to the solver as the constraint).
	trafficAMaxSlack = 1.2
	// trafficBatchSpeedupFloor is the batched engine's in-run gate:
	// packets/sec at least this multiple of the per-packet interpreter.
	trafficBatchSpeedupFloor = 10.0
	// trafficCompareSlack mirrors the core gate's dual condition for
	// the machine-dependent throughput row.
	trafficCompareSlack = 1.10
	// trafficSpeedupCompareSlack is the wider margin for the in-run
	// speedup: the composite divides two independently noisy
	// measurements (per-packet ns and batched ns), so its run-to-run
	// variance is roughly the sum of both. A genuine batched-engine
	// regression drags the composite far below this margin anyway.
	trafficSpeedupCompareSlack = 1.5
	// trafficReps / trafficReplayPackets size the measurements.
	trafficReps          = 5
	trafficReplayPackets = 4096
)

// trafficFixture is one workload/topology cell. Stage capacity is
// tightened so MATs spread across switches and coordination pairs
// actually exist; seedOff varies the workload and matrix seeds.
type trafficFixture struct {
	name     string
	programs int
	topoID   int
	capacity float64
	seedOff  int64
}

var trafficFixtures = []trafficFixture{
	{name: "mixed12_tableIII1", programs: 12, topoID: 1, capacity: 0.1},
	{name: "mixed10_tableIII2", programs: 10, topoID: 2, capacity: 0.1, seedOff: 1},
}

// trafficSkewedModels are the models the acceptance gate applies to;
// uniform rides along as the informational null model.
var trafficSkewedModels = map[string]bool{
	network.TrafficGravity:   true,
	network.TrafficHotspot:   true,
	network.TrafficElephants: true,
}

// trafficRowJSON is one (fixture, model) cell of BENCH_traffic.json.
// Rates come from the batched replay of the matrix through each
// compiled deployment, so the row measures what the plans pay on the
// wire, not just what the solver scored.
type trafficRowJSON struct {
	Name            string  `json:"name"`
	Model           string  `json:"model"`
	StructAMax      int     `json:"struct_a_max_bytes"`
	WeightedAMax    int     `json:"weighted_a_max_bytes"`
	AMaxInflation   float64 `json:"a_max_inflation"`
	StructHotRate   float64 `json:"struct_hot_pair_rate"`
	WeightedHotRate float64 `json:"weighted_hot_pair_rate"`
	HotCut          float64 `json:"hot_pair_cut"`
	StructSumRate   float64 `json:"struct_weighted_rate"`
	WeightedSumRate float64 `json:"weighted_weighted_rate"`
	SumCut          float64 `json:"weighted_rate_cut"`
}

// trafficThroughputJSON is the engine comparison row.
type trafficThroughputJSON struct {
	Fixture            string  `json:"fixture"`
	PerPacketNsPerOp   float64 `json:"per_packet_ns_per_op"`
	BatchedNsPerOp     float64 `json:"batched_ns_per_op"`
	BatchedAllocsPerOp int64   `json:"batched_allocs_per_packet"`
	Speedup            float64 `json:"speedup"`
}

// trafficBaselineJSON is the BENCH_traffic.json document.
type trafficBaselineJSON struct {
	Experiment string                `json:"experiment"`
	Seed       int64                 `json:"seed"`
	Rows       []trafficRowJSON      `json:"rows"`
	Throughput trafficThroughputJSON `json:"throughput"`
}

// trafficSolve analyzes and deploys one fixture under the given
// traffic matrix (nil = structural objective).
func trafficSolve(fx trafficFixture, seed int64, tm *network.TrafficMatrix) (*deploy.Deployment, error) {
	progs, err := workload.EvaluationPrograms(fx.programs, seed)
	if err != nil {
		return nil, err
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		return nil, err
	}
	spec := network.TofinoSpec()
	spec.StageCapacity = fx.capacity
	topo, err := network.TableIII(fx.topoID, spec)
	if err != nil {
		return nil, err
	}
	opts := placement.Options{}
	if tm != nil {
		opts.Traffic = tm
		opts.TrafficObjective = placement.TrafficWeightedMax
		opts.AMaxSlack = trafficAMaxSlack
	}
	plan, err := (placement.Greedy{}).Solve(merged, topo, opts)
	if err != nil {
		return nil, err
	}
	return deploy.Compile(plan, hermes.AnalyzeOptions{})
}

// trafficRow measures one (fixture, model) cell: structural vs
// weighted deployment, both replayed under the model's matrix.
func trafficRow(fx trafficFixture, seed int64, model string, structDep *deploy.Deployment) (trafficRowJSON, error) {
	tm, err := network.GenerateTraffic(structDep.Plan.Topo, model, seed)
	if err != nil {
		return trafficRowJSON{}, err
	}
	weightedDep, err := trafficSolve(fx, seed, tm)
	if err != nil {
		return trafficRowJSON{}, err
	}
	structRes, err := dataplane.ReplayTraffic(structDep, tm, trafficReplayPackets, 0, 0)
	if err != nil {
		return trafficRowJSON{}, err
	}
	weightedRes, err := dataplane.ReplayTraffic(weightedDep, tm, trafficReplayPackets, 0, 0)
	if err != nil {
		return trafficRowJSON{}, err
	}
	row := trafficRowJSON{
		Name:            fx.name,
		Model:           model,
		StructAMax:      structDep.Plan.AMax(),
		WeightedAMax:    weightedDep.Plan.AMax(),
		StructHotRate:   round3(structRes.HotPairByteRate),
		WeightedHotRate: round3(weightedRes.HotPairByteRate),
		StructSumRate:   round3(structRes.WeightedByteRate),
		WeightedSumRate: round3(weightedRes.WeightedByteRate),
	}
	if row.StructAMax > 0 {
		row.AMaxInflation = round3(float64(row.WeightedAMax) / float64(row.StructAMax))
	}
	if row.WeightedHotRate > 0 {
		row.HotCut = round3(row.StructHotRate / row.WeightedHotRate)
	} else if row.StructHotRate > 0 {
		// The weighted plan eliminated every hot-pair byte; report the
		// structural rate as the (unbounded) cut's stand-in.
		row.HotCut = round3(row.StructHotRate)
	}
	if row.WeightedSumRate > 0 {
		row.SumCut = round3(row.StructSumRate / row.WeightedSumRate)
	}
	return row, nil
}

// trafficThroughput measures the per-packet interpreter against the
// batched pipeline on the structural deployment of one fixture, over
// the same deterministic packet stream.
func trafficThroughput(fx trafficFixture, seed int64, dep *deploy.Deployment, reps int) (trafficThroughputJSON, error) {
	eng, err := dataplane.NewEngine(dep)
	if err != nil {
		return trafficThroughputJSON{}, err
	}
	pkts := equivReplayStream(dep.Plan.Graph, seed, 256)
	perPacket := measureBest(reps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Process(pkts[i%len(pkts)].Clone()); err != nil {
				b.Fatal(err)
			}
		}
	})

	p, err := dataplane.NewPipeline(dep, nil, len(pkts))
	if err != nil {
		return trafficThroughputJSON{}, err
	}
	warm, err := p.Load(pkts)
	if err != nil {
		return trafficThroughputJSON{}, err
	}
	if err := p.Run(warm); err != nil {
		return trafficThroughputJSON{}, err
	}
	p.PutBatch(warm)
	batched := measureBest(reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += len(pkts) {
			batch, err := p.Load(pkts)
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Run(batch); err != nil {
				b.Fatal(err)
			}
			p.PutBatch(batch)
		}
	})

	row := trafficThroughputJSON{
		Fixture:            fx.name,
		PerPacketNsPerOp:   float64(perPacket.NsPerOp()),
		BatchedNsPerOp:     float64(batched.NsPerOp()),
		BatchedAllocsPerOp: batched.AllocsPerOp(),
	}
	if row.BatchedNsPerOp > 0 {
		row.Speedup = round3(row.PerPacketNsPerOp / row.BatchedNsPerOp)
	}
	return row, nil
}

// trafficBench runs the sweep, prints the tables, and applies
// whichever gate the flags selected.
func (r *runner) trafficBench() error {
	mode := "baseline"
	if r.smoke {
		mode = "smoke"
	} else if r.comparePath != "" {
		mode = "compare"
	}
	fmt.Printf("## Exp#9 Traffic: weighted objective and batched replay (%s)\n", mode)

	reps := trafficReps
	if r.smoke {
		reps = 2
	}
	doc := trafficBaselineJSON{Experiment: "traffic", Seed: r.cfg.Seed}
	for _, fx := range trafficFixtures {
		seed := r.cfg.Seed + fx.seedOff
		structDep, err := trafficSolve(fx, seed, nil)
		if err != nil {
			return fmt.Errorf("traffic: fixture %s: %w", fx.name, err)
		}
		for _, model := range network.TrafficModels() {
			row, err := trafficRow(fx, seed, model, structDep)
			if err != nil {
				return fmt.Errorf("traffic: fixture %s model %s: %w", fx.name, model, err)
			}
			doc.Rows = append(doc.Rows, row)
		}
		if fx.name == trafficFixtures[0].name {
			doc.Throughput, err = trafficThroughput(fx, seed, structDep, reps)
			if err != nil {
				return err
			}
		}
	}

	fmt.Printf("  %-20s %-10s %6s %6s %8s %14s %14s %8s %8s\n",
		"fixture", "model", "sAmax", "wAmax", "inflate", "struct hot", "weighted hot", "hot cut", "sum cut")
	for _, row := range doc.Rows {
		fmt.Printf("  %-20s %-10s %5dB %5dB %7.2fx %14.1f %14.1f %7.1fx %7.1fx\n",
			row.Name, row.Model, row.StructAMax, row.WeightedAMax, row.AMaxInflation,
			row.StructHotRate, row.WeightedHotRate, row.HotCut, row.SumCut)
	}
	tp := doc.Throughput
	fmt.Printf("  engines on %s: per-packet %.0f ns, batched %.1f ns (%d allocs/pkt), speedup %.1fx\n\n",
		tp.Fixture, tp.PerPacketNsPerOp, tp.BatchedNsPerOp, tp.BatchedAllocsPerOp, tp.Speedup)

	if r.smoke {
		return trafficSmokeGate(doc)
	}
	if r.comparePath != "" {
		return trafficCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing traffic baseline: %w", err)
		}
		fmt.Printf("  traffic baseline written to %s\n\n", r.jsonPath)
	}
	return nil
}

// trafficGateRows applies the machine-independent acceptance
// conditions shared by the smoke and compare gates: every skewed-model
// row must cut the hot pair >= 2x at <= 1.2x A_max inflation.
func trafficGateRows(rows []trafficRowJSON) []string {
	var failures []string
	for _, row := range rows {
		if !trafficSkewedModels[row.Model] {
			continue
		}
		if row.HotCut < trafficHotCutFloor {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: weighted plan cuts the hot pair only %.2fx (need >= %.0fx)",
				row.Name, row.Model, row.HotCut, trafficHotCutFloor))
		}
		if row.AMaxInflation > trafficAMaxSlack {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: weighted plan inflates A_max %.2fx (cap %.1fx)",
				row.Name, row.Model, row.AMaxInflation, trafficAMaxSlack))
		}
	}
	return failures
}

// trafficSmokeGate enforces both acceptance bars in-run.
func trafficSmokeGate(doc trafficBaselineJSON) error {
	failures := trafficGateRows(doc.Rows)
	tp := doc.Throughput
	if tp.Speedup < trafficBatchSpeedupFloor {
		failures = append(failures, fmt.Sprintf(
			"%s: batched engine only %.1fx faster than per-packet (need >= %.0fx)",
			tp.Fixture, tp.Speedup, trafficBatchSpeedupFloor))
	}
	if tp.BatchedAllocsPerOp != 0 {
		failures = append(failures, fmt.Sprintf(
			"%s: batched engine allocates %d/packet in steady state (must be 0)",
			tp.Fixture, tp.BatchedAllocsPerOp))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("traffic smoke gate failed (%d condition(s))", len(failures))
	}
	fmt.Printf("  traffic smoke gate passed: hot-pair cut >= %.0fx at <= %.1fx A_max on every skewed model; batched engine >= %.0fx and allocation-free\n",
		trafficHotCutFloor, trafficAMaxSlack, trafficBatchSpeedupFloor)
	return nil
}

// trafficCompareGate re-runs the sweep and diffs it against the
// committed baseline. Plan-quality rows are deterministic in the seed,
// so they re-apply the absolute gate and fail on >10% hot-cut
// regression; the throughput row uses the dual condition (raw ns/op
// AND in-run speedup both regressed >10%) to filter machine skew.
func trafficCompareGate(path string, cur trafficBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading traffic baseline: %w", err)
	}
	var base trafficBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing traffic baseline %s: %w", path, err)
	}
	baseline := make(map[string]trafficRowJSON, len(base.Rows))
	for _, row := range base.Rows {
		baseline[row.Name+"/"+row.Model] = row
	}
	failures := trafficGateRows(cur.Rows)
	for _, row := range cur.Rows {
		b, ok := baseline[row.Name+"/"+row.Model]
		if !ok {
			failures = append(failures, fmt.Sprintf("row %s/%s missing from baseline %s", row.Name, row.Model, path))
			continue
		}
		if b.HotCut > 0 && row.HotCut < b.HotCut/trafficCompareSlack {
			failures = append(failures, fmt.Sprintf(
				"%s/%s: hot-pair cut regressed %.2fx -> %.2fx", row.Name, row.Model, b.HotCut, row.HotCut))
		}
	}
	tb, tc := base.Throughput, cur.Throughput
	rawRegressed := tb.BatchedNsPerOp > 0 && tc.BatchedNsPerOp > tb.BatchedNsPerOp*trafficCompareSlack
	ratioRegressed := tb.Speedup > 0 && tc.Speedup < tb.Speedup/trafficSpeedupCompareSlack
	if rawRegressed && ratioRegressed {
		failures = append(failures, fmt.Sprintf(
			"throughput: batched ns/op %.1f -> %.1f and speedup %.1fx -> %.1fx both regressed >%.0f%%",
			tb.BatchedNsPerOp, tc.BatchedNsPerOp, tb.Speedup, tc.Speedup, (trafficCompareSlack-1)*100))
	}
	if tb.BatchedAllocsPerOp == 0 && tc.BatchedAllocsPerOp != 0 {
		failures = append(failures, fmt.Sprintf(
			"throughput: batched engine allocates %d/packet where the baseline was allocation-free", tc.BatchedAllocsPerOp))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("traffic compare gate failed (%d condition(s))", len(failures))
	}
	fmt.Printf("  traffic compare gate passed against %s\n", path)
	return nil
}
