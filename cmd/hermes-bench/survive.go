// The "exp8" experiment measures survivability of a supervised
// deployment under injected faults, producing the BENCH_survive.json
// baseline:
//
//	hermes-bench -exp exp8 -json BENCH_survive.json    # (re)generate the baseline
//	hermes-bench -exp exp8 -compare BENCH_survive.json # fail on structural drift
//	hermes-bench -exp exp8 -smoke                      # short schedule, hard bounds
//
// Every input is seeded (fault schedule, monitor jitter, workload), so
// the structural outcome — replan counts, shed/restore events, A_max
// inflation, and the single-crash repair path — is reproducible; the
// compare gate diffs exactly those fields and ignores wall-clock
// timings. The smoke gate instead enforces machine-independent hard
// bounds (zero invariant violations, incremental recovery, a generous
// absolute recovery ceiling) on a short schedule, cheap enough for
// `make check`.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"

	"github.com/hermes-net/hermes/internal/experiments"
)

// surviveSmokeRecoveryMs is the absolute single-crash recovery ceiling
// for -smoke: recovery is a greedy repair over a handful of displaced
// MATs, so even a heavily loaded CI box sits orders of magnitude below.
const surviveSmokeRecoveryMs = 5000.0

// surviveInflationSlack bounds A_max-inflation drift in -compare.
const surviveInflationSlack = 0.10

// surviveRowJSON is one fault-rate row of the baseline.
type surviveRowJSON struct {
	Events             int     `json:"events"`
	ScheduleEvents     int     `json:"schedule_events"`
	Polls              int     `json:"polls"`
	Replans            int     `json:"replans"`
	IncrementalReplans int     `json:"incremental_replans"`
	FullReplans        int     `json:"full_replans"`
	ShedEvents         int     `json:"shed_events"`
	RestoreEvents      int     `json:"restore_events"`
	FinalShed          int     `json:"final_shed"`
	Violations         int     `json:"violations"`
	MaxRecoveryMs      float64 `json:"max_recovery_ms"`
	MeanRecoveryMs     float64 `json:"mean_recovery_ms"`
	BaseAMax           int     `json:"base_amax_bytes"`
	MaxAMax            int     `json:"max_amax_bytes"`
	AMaxInflation      float64 `json:"amax_inflation"`
}

// singleCrashJSON is the headline single-switch-failure recovery.
type singleCrashJSON struct {
	CrashedSwitch int     `json:"crashed_switch"`
	DisplacedMATs int     `json:"displaced_mats"`
	UsedRepair    bool    `json:"used_repair"`
	RecoveryMs    float64 `json:"recovery_ms"`
	AMaxBefore    int     `json:"amax_before_bytes"`
	AMaxAfter     int     `json:"amax_after_bytes"`
}

// surviveBaselineJSON is the BENCH_survive.json document.
type surviveBaselineJSON struct {
	Experiment  string           `json:"experiment"`
	Topology    int              `json:"topology"`
	Programs    int              `json:"programs"`
	Seed        int64            `json:"seed"`
	SingleCrash singleCrashJSON  `json:"single_crash"`
	Rows        []surviveRowJSON `json:"rows"`
}

func (r *runner) exp8() error {
	mode := "baseline"
	rates := []int{10, 20, 40}
	if r.smoke {
		mode = "smoke"
		rates = []int{20} // shortest schedule that deterministically replans
	} else if r.comparePath != "" {
		mode = "compare"
	}
	fmt.Printf("## Exp#8: survivability under injected faults, Table III topology 1 (%s)\n", mode)

	res, err := experiments.Exp8(r.cfg, rates)
	if err != nil {
		return err
	}

	sc := res.Single
	repairPath := "full solve"
	if sc.UsedRepair {
		repairPath = "incremental repair"
	}
	fmt.Printf("  single crash: sw%d down (%d MATs displaced), recovered in %.2fms via %s, A_max %dB -> %dB\n",
		int(sc.Crashed), sc.DisplacedMATs, sc.RecoveryMs, repairPath, sc.AMaxBefore, sc.AMaxAfter)

	fmt.Printf("  %-8s %-8s %-7s %-9s %-9s %-10s %-6s %-10s %-10s %-12s\n",
		"faults", "events", "polls", "replans", "shed/rst", "violations", "left", "maxrec", "A_max", "inflation")
	doc := surviveBaselineJSON{
		Experiment: "exp8", Topology: 1, Programs: 6, Seed: r.cfg.Seed,
		SingleCrash: singleCrashJSON{
			CrashedSwitch: int(sc.Crashed), DisplacedMATs: sc.DisplacedMATs,
			UsedRepair: sc.UsedRepair, RecoveryMs: round3(sc.RecoveryMs),
			AMaxBefore: sc.AMaxBefore, AMaxAfter: sc.AMaxAfter,
		},
	}
	csvRows := [][]string{{"events", "schedule_events", "polls", "replans", "incremental_replans", "full_replans",
		"shed_events", "restore_events", "final_shed", "violations", "max_recovery_ms", "mean_recovery_ms",
		"base_amax_bytes", "max_amax_bytes", "amax_inflation"}}
	for _, p := range res.Rows {
		fmt.Printf("  %-8d %-8d %-7d %2d (%di/%df) %2d/%-6d %-10d %-6d %-10s %-10s %-12.3f\n",
			p.Events, p.ScheduleEvents, p.Polls, p.Replans, p.IncrementalReplans, p.FullReplans,
			p.ShedEvents, p.RestoreEvents, p.Violations, p.FinalShed,
			fmt.Sprintf("%.2fms", p.MaxRecoveryMs),
			fmt.Sprintf("%dB/%dB", p.BaseAMax, p.MaxAMax), p.AMaxInflation)
		csvRows = append(csvRows, []string{
			strconv.Itoa(p.Events), strconv.Itoa(p.ScheduleEvents), strconv.Itoa(p.Polls),
			strconv.Itoa(p.Replans), strconv.Itoa(p.IncrementalReplans), strconv.Itoa(p.FullReplans),
			strconv.Itoa(p.ShedEvents), strconv.Itoa(p.RestoreEvents), strconv.Itoa(p.FinalShed),
			strconv.Itoa(p.Violations),
			fmt.Sprintf("%.3f", p.MaxRecoveryMs), fmt.Sprintf("%.3f", p.MeanRecoveryMs),
			strconv.Itoa(p.BaseAMax), strconv.Itoa(p.MaxAMax), fmt.Sprintf("%.4f", p.AMaxInflation),
		})
		doc.Rows = append(doc.Rows, surviveRowJSON{
			Events: p.Events, ScheduleEvents: p.ScheduleEvents, Polls: p.Polls,
			Replans: p.Replans, IncrementalReplans: p.IncrementalReplans, FullReplans: p.FullReplans,
			ShedEvents: p.ShedEvents, RestoreEvents: p.RestoreEvents, FinalShed: p.FinalShed,
			Violations: p.Violations, MaxRecoveryMs: round3(p.MaxRecoveryMs), MeanRecoveryMs: round3(p.MeanRecoveryMs),
			BaseAMax: p.BaseAMax, MaxAMax: p.MaxAMax, AMaxInflation: round3(p.AMaxInflation),
		})
	}
	fmt.Println()

	if r.smoke {
		return surviveSmokeGate(doc)
	}
	if r.comparePath != "" {
		return surviveCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing survivability baseline: %w", err)
		}
		fmt.Printf("  survivability baseline written to %s\n\n", r.jsonPath)
	}
	return r.writeCSV("exp8.csv", csvRows)
}

// surviveSmokeGate enforces the machine-independent hard bounds on the
// short chaos schedule.
func surviveSmokeGate(doc surviveBaselineJSON) error {
	var failures []string
	if !doc.SingleCrash.UsedRepair {
		failures = append(failures, "single crash fell back to a full solve; expected incremental repair")
	}
	replans := 0
	for _, row := range doc.Rows {
		replans += row.Replans
	}
	if replans == 0 {
		failures = append(failures, "smoke schedule never triggered a replan; the invariant checks proved nothing")
	}
	if doc.SingleCrash.RecoveryMs >= surviveSmokeRecoveryMs {
		failures = append(failures, fmt.Sprintf(
			"single crash took %.1fms to recover (bound %.0fms)", doc.SingleCrash.RecoveryMs, surviveSmokeRecoveryMs))
	}
	for _, row := range doc.Rows {
		if row.Violations != 0 {
			failures = append(failures, fmt.Sprintf(
				"%d-fault schedule hit %d invariant violations; want 0", row.Events, row.Violations))
		}
		if row.FinalShed != 0 {
			failures = append(failures, fmt.Sprintf(
				"%d-fault schedule left %d programs shed after full heal; want 0", row.Events, row.FinalShed))
		}
		if row.MaxRecoveryMs >= surviveSmokeRecoveryMs {
			failures = append(failures, fmt.Sprintf(
				"%d-fault schedule max recovery %.1fms (bound %.0fms)", row.Events, row.MaxRecoveryMs, surviveSmokeRecoveryMs))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("survive smoke gate failed (%d check(s))", len(failures))
	}
	fmt.Println("  survive smoke gate passed: zero violations, incremental recovery within bounds")
	return nil
}

// surviveCompareGate diffs the structural (seed-determined) fields
// against the committed baseline; wall-clock fields are ignored.
func surviveCompareGate(path string, cur surviveBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading survivability baseline: %w", err)
	}
	var base surviveBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing survivability baseline %s: %w", path, err)
	}
	var failures []string
	if base.SingleCrash.UsedRepair && !cur.SingleCrash.UsedRepair {
		failures = append(failures, "single crash no longer uses the incremental repair path")
	}
	byEvents := make(map[int]surviveRowJSON, len(base.Rows))
	for _, row := range base.Rows {
		byEvents[row.Events] = row
	}
	fmt.Printf("  %-8s %-18s %-18s %-14s\n", "faults", "replans b->c", "shed/rst b->c", "inflation b->c")
	for _, row := range cur.Rows {
		b, ok := byEvents[row.Events]
		if !ok {
			failures = append(failures, fmt.Sprintf("%d-fault row missing from baseline %s", row.Events, path))
			continue
		}
		fmt.Printf("  %-8d %6d -> %-8d %3d/%d -> %d/%-5d %.3f -> %.3f\n",
			row.Events, b.Replans, row.Replans, b.ShedEvents, b.RestoreEvents,
			row.ShedEvents, row.RestoreEvents, b.AMaxInflation, row.AMaxInflation)
		if row.Violations != 0 {
			failures = append(failures, fmt.Sprintf("%d-fault row has %d invariant violations", row.Events, row.Violations))
		}
		if row.FinalShed != b.FinalShed {
			failures = append(failures, fmt.Sprintf(
				"%d-fault row final shed %d != baseline %d", row.Events, row.FinalShed, b.FinalShed))
		}
		if row.ShedEvents != b.ShedEvents || row.RestoreEvents != b.RestoreEvents {
			failures = append(failures, fmt.Sprintf(
				"%d-fault row shed/restore %d/%d != baseline %d/%d",
				row.Events, row.ShedEvents, row.RestoreEvents, b.ShedEvents, b.RestoreEvents))
		}
		if b.AMaxInflation > 0 && math.Abs(row.AMaxInflation/b.AMaxInflation-1) > surviveInflationSlack {
			failures = append(failures, fmt.Sprintf(
				"%d-fault row A_max inflation %.3f drifted beyond %.0f%% of baseline %.3f",
				row.Events, row.AMaxInflation, surviveInflationSlack*100, b.AMaxInflation))
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("survive compare gate failed (%d drift(s))", len(failures))
	}
	fmt.Printf("  survive compare gate passed: structural outcome matches %s\n", path)
	return nil
}
