// The "exp10" experiment measures region-sharded placement at scale:
// the sharded solver against the whole-graph Greedy on seeded
// composite WANs, producing the BENCH_shard.json perf baseline:
//
//	hermes-bench -exp exp10 -full -json BENCH_shard.json # baseline incl. the 10k point
//	hermes-bench -exp exp10 -compare BENCH_shard.json    # fail on sharded-solve regression
//	hermes-bench -exp exp10 -smoke                       # machine-independent speedup/quality gate
//
// Both solvers run on the same merged TDG with the same Options, so
// the speedup column is a like-for-like measurement of region
// decomposition + boundary exchange against the monolithic search it
// shards. The -full sweep adds the 10,000-switch / 5,000-program
// point where only the sharded side is practical; its row carries no
// comparison columns and the gates check it structurally.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"github.com/hermes-net/hermes/internal/experiments"
)

const (
	// shardSmokeAMaxRatio caps the quality price of sharding in -smoke:
	// the sharded A_max may not exceed 1.5x the whole-graph result.
	// Both sides are measured in the same run, so the gate is
	// machine-independent.
	shardSmokeAMaxRatio = 1.5
	// shardCompareSlack mirrors coreCompareSlack: a row fails -compare
	// only when its raw solve time regressed more than 10% AND its
	// in-run speedup over the whole-graph solver (which self-calibrates
	// for machine speed) degraded more than 10%.
	shardCompareSlack = 1.10
)

// shardRowJSON is one Exp#10 row in the machine-readable baseline.
type shardRowJSON struct {
	Topology     string  `json:"topology"`
	Switches     int     `json:"switches"`
	Programmable int     `json:"programmable"`
	Programs     int     `json:"programs"`
	MATs         int     `json:"mats"`
	Shards       int     `json:"shards"`
	WholeMs      float64 `json:"whole_ms"`
	WholeAMax    int     `json:"whole_amax_bytes"`
	ShardMs      float64 `json:"shard_ms"`
	ShardAMax    int     `json:"shard_amax_bytes"`
	Speedup      float64 `json:"speedup"`
	AMaxRatio    float64 `json:"amax_ratio"`
	Hosts        int     `json:"boundary_hosts"`
	Rounds       int     `json:"exchange_rounds"`
	Moves        int     `json:"exchange_moves"`
	FellBack     bool    `json:"fell_back"`
	EquivOK      bool    `json:"equiv_ok"`
	EquivMs      float64 `json:"equiv_ms"`
	PartitionMs  float64 `json:"partition_ms"`
	RegionMs     float64 `json:"region_ms"`
	ExchangeMs   float64 `json:"exchange_ms"`
}

// shardBaselineJSON is the BENCH_shard.json document.
type shardBaselineJSON struct {
	Experiment string         `json:"experiment"`
	Seed       int64          `json:"seed"`
	Workers    int            `json:"workers"`
	Full       bool           `json:"full"`
	Rows       []shardRowJSON `json:"rows"`
}

func shardRow(p experiments.ShardPoint) shardRowJSON {
	return shardRowJSON{
		Topology: p.Topology, Switches: p.Switches, Programmable: p.Programmable,
		Programs: p.Programs, MATs: p.MATs, Shards: p.Shards,
		WholeMs: round3(p.WholeMs), WholeAMax: p.WholeAMax,
		ShardMs: round3(p.ShardMs), ShardAMax: p.ShardAMax,
		Speedup: round3(p.Speedup), AMaxRatio: round3(p.AMaxRatio),
		Hosts: p.Hosts, Rounds: p.Rounds, Moves: p.Moves, FellBack: p.FellBack,
		EquivOK: p.EquivOK, EquivMs: round3(p.EquivMs),
		PartitionMs: round3(p.PartitionMs), RegionMs: round3(p.RegionMs), ExchangeMs: round3(p.ExchangeMs),
	}
}

// exp10 runs the sharded-placement sweep, prints the table, and
// applies whichever gate the flags selected.
func (r *runner) exp10() error {
	mode := "baseline"
	if r.smoke {
		mode = "smoke"
	} else if r.comparePath != "" {
		mode = "compare"
	}
	full := r.full && !r.smoke
	fmt.Printf("## Exp#10: region-sharded placement vs whole-graph Greedy (%s)\n", mode)
	if full {
		fmt.Println("  (full sweep: includes the 10k-switch / 5k-program point; expect minutes)")
	}

	pts, err := experiments.Exp10(r.cfg, full)
	if err != nil {
		return err
	}
	doc := shardBaselineJSON{Experiment: "exp10", Seed: r.cfg.Seed, Workers: r.cfg.Workers, Full: full}
	for _, p := range pts {
		doc.Rows = append(doc.Rows, shardRow(p))
	}

	fmt.Printf("  %-14s %8s %6s %7s %7s %12s %12s %8s %7s %6s %6s %6s %8s\n",
		"topology", "switches", "progs", "MATs", "shards", "whole", "sharded", "speedup", "A_max", "hosts", "rounds", "moves", "equiv")
	csvRows := [][]string{{"topology", "switches", "programmable", "programs", "mats", "shards",
		"whole_ms", "whole_amax_bytes", "shard_ms", "shard_amax_bytes", "speedup", "amax_ratio",
		"boundary_hosts", "exchange_rounds", "exchange_moves", "fell_back",
		"equiv_ok", "equiv_ms",
		"partition_ms", "region_ms", "exchange_ms"}}
	for _, row := range doc.Rows {
		whole, speed, ratio := "-", "-", "-"
		if row.WholeMs > 0 {
			whole = fmt.Sprintf("%.1fms", row.WholeMs)
			speed = fmt.Sprintf("%.2fx", row.Speedup)
			ratio = fmt.Sprintf("%.3f", row.AMaxRatio)
		}
		equivCol := "-"
		if row.EquivOK {
			equivCol = fmt.Sprintf("%.1fms", row.EquivMs)
		}
		fmt.Printf("  %-14s %8d %6d %7d %7d %12s %12s %8s %7s %6d %6d %6d %8s\n",
			row.Topology, row.Switches, row.Programs, row.MATs, row.Shards,
			whole, fmt.Sprintf("%.1fms", row.ShardMs), speed, ratio,
			row.Hosts, row.Rounds, row.Moves, equivCol)
		csvRows = append(csvRows, []string{
			row.Topology, strconv.Itoa(row.Switches), strconv.Itoa(row.Programmable),
			strconv.Itoa(row.Programs), strconv.Itoa(row.MATs), strconv.Itoa(row.Shards),
			fmt.Sprintf("%.3f", row.WholeMs), strconv.Itoa(row.WholeAMax),
			fmt.Sprintf("%.3f", row.ShardMs), strconv.Itoa(row.ShardAMax),
			fmt.Sprintf("%.3f", row.Speedup), fmt.Sprintf("%.3f", row.AMaxRatio),
			strconv.Itoa(row.Hosts), strconv.Itoa(row.Rounds), strconv.Itoa(row.Moves),
			strconv.FormatBool(row.FellBack),
			strconv.FormatBool(row.EquivOK), fmt.Sprintf("%.3f", row.EquivMs),
			fmt.Sprintf("%.3f", row.PartitionMs), fmt.Sprintf("%.3f", row.RegionMs), fmt.Sprintf("%.3f", row.ExchangeMs),
		})
	}
	fmt.Println()

	if r.smoke {
		return shardSmokeGate(doc.Rows)
	}
	if r.comparePath != "" {
		return shardCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing shard baseline: %w", err)
		}
		fmt.Printf("  shard baseline written to %s\n\n", r.jsonPath)
	}
	return r.writeCSV("exp10.csv", csvRows)
}

// shardSmokeGate enforces the in-run acceptance criteria: the sharded
// solver never falls back to whole-graph, beats the whole-graph solver
// outright on every comparison row at equal workers, and pays at most
// shardSmokeAMaxRatio in A_max for the decomposition. All comparisons
// are between two measurements from the same run on the same host.
func shardSmokeGate(rows []shardRowJSON) error {
	var failures []string
	for _, row := range rows {
		if row.FellBack {
			failures = append(failures, fmt.Sprintf(
				"%s: sharded solver fell back to whole-graph", row.Topology))
			continue
		}
		if row.ShardAMax <= 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: sharded plan has no A_max (empty plan?)", row.Topology))
		}
		if row.WholeMs <= 0 {
			continue // sharded-only row: structural checks only
		}
		if row.ShardMs >= row.WholeMs {
			failures = append(failures, fmt.Sprintf(
				"%s: sharded solve %.1fms not faster than whole-graph %.1fms", row.Topology, row.ShardMs, row.WholeMs))
		}
		if row.AMaxRatio > shardSmokeAMaxRatio {
			failures = append(failures, fmt.Sprintf(
				"%s: A_max ratio %.3f exceeds %.1f quality gate", row.Topology, row.AMaxRatio, shardSmokeAMaxRatio))
		}
		// Comparison rows also carry the symbolic plan-equivalence
		// verdict: region decomposition must never ship a plan the
		// checker cannot prove equivalent to the reference pipeline.
		if !row.EquivOK {
			failures = append(failures, fmt.Sprintf(
				"%s: sharded plan missing a symbolic equivalence verdict", row.Topology))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("shard smoke gate failed (%d row(s))", len(failures))
	}
	fmt.Printf("  shard smoke gate passed: sharded faster than whole-graph on every row, A_max within %.1fx\n",
		shardSmokeAMaxRatio)
	return nil
}

// shardCompareGate diffs the fresh sweep against the committed
// baseline. Comparison rows fail only on the dual condition (raw
// shard_ms regression AND in-run speedup degradation, both beyond the
// slack) so uniform machine slowdowns do not read as code regressions.
// Sharded-only rows have no in-run calibration; they are held to the
// structural invariants instead (no fallback, quality no worse than
// the baseline by more than the slack).
func shardCompareGate(path string, cur shardBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading shard baseline: %w", err)
	}
	var base shardBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing shard baseline %s: %w", path, err)
	}
	baseline := make(map[string]shardRowJSON, len(base.Rows))
	for _, row := range base.Rows {
		baseline[row.Topology] = row
	}
	var failures []string
	fmt.Printf("  %-14s %16s %14s %8s %14s\n", "topology", "baseline ms", "current ms", "delta", "speedup drift")
	for _, row := range cur.Rows {
		b, ok := baseline[row.Topology]
		if !ok {
			fmt.Printf("  %-14s %16s %14.1f %8s %14s  (not in baseline)\n", row.Topology, "-", row.ShardMs, "-", "-")
			continue
		}
		if row.FellBack {
			failures = append(failures, fmt.Sprintf("%s: sharded solver fell back to whole-graph", row.Topology))
			continue
		}
		delta := 0.0
		if b.ShardMs > 0 {
			delta = row.ShardMs/b.ShardMs - 1
		}
		drift := 0.0
		if b.Speedup > 0 {
			drift = row.Speedup/b.Speedup - 1
		}
		fmt.Printf("  %-14s %16.1f %14.1f %+7.1f%% %+13.1f%%\n",
			row.Topology, b.ShardMs, row.ShardMs, delta*100, drift*100)
		if row.WholeMs > 0 && b.Speedup > 0 {
			rawRegressed := b.ShardMs > 0 && row.ShardMs > b.ShardMs*shardCompareSlack
			speedupRegressed := row.Speedup < b.Speedup/shardCompareSlack
			if rawRegressed && speedupRegressed {
				failures = append(failures, fmt.Sprintf(
					"%s: sharded solve regressed %.1f%% in ms and %.1f%% in speedup over whole-graph (baseline %.1fms at %.2fx, now %.1fms at %.2fx)",
					row.Topology, delta*100, -drift*100, b.ShardMs, b.Speedup, row.ShardMs, row.Speedup))
			}
		} else if b.ShardAMax > 0 {
			// Sharded-only row: time is not self-calibrating, so only
			// the solution quality is gated against the baseline.
			if float64(row.ShardAMax) > float64(b.ShardAMax)*shardCompareSlack {
				failures = append(failures, fmt.Sprintf(
					"%s: sharded A_max %dB exceeds baseline %dB by more than %.0f%%",
					row.Topology, row.ShardAMax, b.ShardAMax, (shardCompareSlack-1)*100))
			}
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("shard compare gate failed (%d regression(s) beyond %.0f%%)",
			len(failures), (shardCompareSlack-1)*100)
	}
	fmt.Printf("  shard compare gate passed: no sharded solve regressed beyond %.0f%% of %s\n",
		(shardCompareSlack-1)*100, path)
	return nil
}
