package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig2(t *testing.T) {
	if err := run([]string{"-exp", "fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExp6WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "exp6", "-ilp=false", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "exp6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunExp1Heuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-scale experiment")
	}
	if err := run([]string{"-exp", "exp1", "-ilp=false", "-deadline", "500ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "exp99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCommaSeparatedList(t *testing.T) {
	if err := run([]string{"-exp", "fig2,exp6", "-ilp=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExp7JSONBaseline(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_replan.json")
	if err := run([]string{"-exp", "exp7", "-programs", "4", "-csv", dir, "-json", jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "exp7"`, `"speedup"`, `"amax_ratio"`, `"incremental_ms"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("replan baseline missing %s:\n%s", want, data)
		}
	}
	if _, err := os.ReadFile(filepath.Join(dir, "exp7.csv")); err != nil {
		t.Errorf("exp7 CSV not written: %v", err)
	}
}
