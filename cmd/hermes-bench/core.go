// The "core" experiment measures the compiled placement kernels
// against their retained map-based reference twins, plus the
// end-to-end solver entry points, producing the BENCH_core.json
// perf baseline:
//
//	hermes-bench -exp core -json BENCH_core.json   # (re)generate the baseline
//	hermes-bench -exp core -compare BENCH_core.json # fail on >10% kernel regression
//	hermes-bench -exp core -smoke                   # machine-independent ratio gate
//
// The kernel pairs run over the same solved Table III instance, so the
// map/compiled ratio is a like-for-like measurement of the dense
// instance model (interned indices, flat pair matrix, reusable
// scratch) against the map-keyed implementation it replaced.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/experiments"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// kernelJSON is one map-vs-compiled kernel measurement.
type kernelJSON struct {
	Name                string  `json:"name"`
	MapNsPerOp          float64 `json:"map_ns_per_op"`
	MapAllocsPerOp      int64   `json:"map_allocs_per_op"`
	CompiledNsPerOp     float64 `json:"compiled_ns_per_op"`
	CompiledAllocsPerOp int64   `json:"compiled_allocs_per_op"`
	NsRatio             float64 `json:"ns_ratio"`
	AllocsRatio         float64 `json:"allocs_ratio"`
}

// endToEndJSON is one solver-level measurement.
type endToEndJSON struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// coreBaselineJSON is the BENCH_core.json document.
type coreBaselineJSON struct {
	Experiment string         `json:"experiment"`
	Topology   int            `json:"topology"`
	Programs   int            `json:"programs"`
	Seed       int64          `json:"seed"`
	Kernels    []kernelJSON   `json:"kernels"`
	EndToEnd   []endToEndJSON `json:"end_to_end"`
}

// coreSmokeNsRatio and coreSmokeAllocsRatio are the machine-independent
// acceptance floors for -smoke: each compiled kernel must be at least
// 5x faster and 10x leaner than its map twin (a kernel with zero
// allocations per op passes the allocs gate outright).
const (
	coreSmokeNsRatio     = 5.0
	coreSmokeAllocsRatio = 10.0
	// coreCompareSlack is the -compare gate: compiled kernels may not
	// regress more than 10% in ns/op against the committed baseline.
	// The raw ns/op check is cross-checked against the in-run
	// map/compiled ratio so uniform machine slowdowns (frequency
	// scaling, a throttled container) do not read as code regressions:
	// a genuine kernel regression shows up in both.
	coreCompareSlack = 1.10
	// coreReps: every kernel number is the best of this many harness
	// runs — the noise-robust point estimate for CPU-bound loops.
	coreReps = 5
)

// coreInstance is the shared measurement fixture: a solved Table III
// instance with both dense and map-keyed views of the same assignment.
type coreInstance struct {
	ci     *placement.CompiledInstance
	assign map[string]network.SwitchID
	dense  []int32
	// partial drops ~30% of the MATs for the place-score kernels.
	partial map[string]network.SwitchID
	pdense  []int32
}

func newCoreInstance(programs int, seed int64, topoID int) (*coreInstance, error) {
	progs, err := workload.EvaluationPrograms(programs, seed)
	if err != nil {
		return nil, err
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		return nil, err
	}
	topo, err := network.TableIII(topoID, network.TofinoSpec())
	if err != nil {
		return nil, err
	}
	plan, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{})
	if err != nil {
		return nil, err
	}
	inst := &coreInstance{
		ci:      placement.Compile(merged, topo, program.DefaultResourceModel),
		assign:  make(map[string]network.SwitchID, len(plan.Assignments)),
		partial: make(map[string]network.SwitchID, len(plan.Assignments)),
	}
	for name, sp := range plan.Assignments {
		inst.assign[name] = sp.Switch
		// Deterministic subset via the interned index, not map order.
		if inst.ci.Index[name]%10 < 7 {
			inst.partial[name] = sp.Switch
		}
	}
	inst.dense = inst.ci.DenseAssign(inst.assign)
	inst.pdense = inst.ci.DenseAssign(inst.partial)
	return inst, nil
}

// measure runs fn under the stdlib benchmark harness and returns the
// result (ns/op, allocs/op, bytes/op are always populated).
func measure(fn func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(fn)
}

// measureBest repeats a kernel measurement and keeps the fastest run.
// The kernels sit in the tens of nanoseconds where scheduler noise is
// a double-digit percentage of a single run; the minimum is the
// standard noise-robust point estimate for CPU-bound loops, and both
// the baseline writer and the compare gate use it so the 10% slack
// compares like against like.
func measureBest(reps int, fn func(b *testing.B)) testing.BenchmarkResult {
	best := measure(fn)
	for i := 1; i < reps; i++ {
		if r := measure(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func kernelRow(name string, mapRes, compRes testing.BenchmarkResult) kernelJSON {
	row := kernelJSON{
		Name:                name,
		MapNsPerOp:          float64(mapRes.NsPerOp()),
		MapAllocsPerOp:      mapRes.AllocsPerOp(),
		CompiledNsPerOp:     float64(compRes.NsPerOp()),
		CompiledAllocsPerOp: compRes.AllocsPerOp(),
	}
	if row.CompiledNsPerOp > 0 {
		row.NsRatio = round3(row.MapNsPerOp / row.CompiledNsPerOp)
	}
	if row.CompiledAllocsPerOp > 0 {
		row.AllocsRatio = round3(float64(row.MapAllocsPerOp) / float64(row.CompiledAllocsPerOp))
	} else if row.MapAllocsPerOp > 0 {
		// Compiled side is allocation-free: the ratio is unbounded;
		// report the map count so the gate can see it dominates.
		row.AllocsRatio = float64(row.MapAllocsPerOp)
	}
	return row
}

// coreKernels measures the four scoring kernels map-vs-compiled.
func (inst *coreInstance) coreKernels() []kernelJSON {
	ci, g := inst.ci, inst.ci.Graph
	pt := ci.NewPairTable()
	ms := ci.NewMoveScratch()
	pair, total := placement.PairBytesRef(g, inst.assign)
	delta := map[placement.RouteKey]int{}
	ppair, _ := placement.PairBytesRef(g, inst.partial)

	// Move/place probe sets: every MAT cycled over a handful of
	// candidate switches, identical for both sides.
	probes := make([]int32, 0, len(ci.Names))
	for x := range ci.Names {
		probes = append(probes, int32(x))
	}
	var unassigned []int32
	for _, name := range ci.Names {
		if _, ok := inst.partial[name]; !ok {
			unassigned = append(unassigned, ci.Index[name])
		}
	}

	var rows []kernelJSON

	rows = append(rows, kernelRow("amax",
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				placement.AssignmentAMaxRef(g, inst.assign)
			}
		}),
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ci.AssignmentAMax(inst.dense, pt)
			}
		})))

	rows = append(rows, kernelRow("pair_bytes",
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				placement.PairBytesRef(g, inst.assign)
			}
		}),
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ci.FillPairTable(inst.dense, pt)
			}
		})))

	// The move/place kernels cost tens of nanoseconds per call; one
	// measured op is a full sweep over every probe so per-op time sits
	// in the microseconds, where run-to-run jitter is a small fraction.
	ci.FillPairTable(inst.dense, pt)
	rows = append(rows, kernelRow("move_delta",
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, x := range probes {
					cand := network.SwitchID((int(x) + i) % int(ci.S))
					placement.MoveScoreRef(g, inst.assign, pair, delta, total, ci.Names[x], cand)
				}
			}
		}),
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, x := range probes {
					cand := int32((int(x) + i) % int(ci.S))
					ci.MoveScore(inst.dense, pt, ms, x, cand, total)
				}
			}
		})))

	ci.FillPairTable(inst.pdense, pt)
	rows = append(rows, kernelRow("place_score",
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, x := range unassigned {
					u := network.SwitchID((int(x) + i) % int(ci.S))
					placement.PlaceScoreRef(g, inst.partial, ppair, delta, ci.Names[x], u)
				}
			}
		}),
		measureBest(coreReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, x := range unassigned {
					u := int32((int(x) + i) % int(ci.S))
					ci.PlaceScore(inst.pdense, pt, ms, x, u)
				}
			}
		})))

	return rows
}

// coreEndToEnd measures the three solver entry points the kernels
// serve: greedy construction, exact search, and churn replanning.
func (r *runner) coreEndToEnd() ([]endToEndJSON, error) {
	var rows []endToEndJSON

	// Greedy on Table III topology 1 with the full program count.
	progs, err := workload.EvaluationPrograms(r.programs, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	merged, err := hermes.Analyze(progs, hermes.AnalyzeOptions{})
	if err != nil {
		return nil, err
	}
	topo, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		return nil, err
	}
	res := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (placement.Greedy{}).Solve(merged, topo, placement.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows = append(rows, endToEndJSON{
		Name:    fmt.Sprintf("greedy_tableIII1_%dprog", r.programs),
		NsPerOp: float64(res.NsPerOp()), AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
	})

	// Exact branch & bound on the Figure 1 instance.
	exProgs := workload.RealPrograms()[:4]
	exMerged, err := hermes.Analyze(exProgs, hermes.AnalyzeOptions{})
	if err != nil {
		return nil, err
	}
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15
	exTopo, err := network.Linear(3, spec)
	if err != nil {
		return nil, err
	}
	res = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (placement.Exact{}).Solve(exMerged, exTopo, placement.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows = append(rows, endToEndJSON{
		Name:    "exact_figure1",
		NsPerOp: float64(res.NsPerOp()), AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
	})

	// Exp#7-style replan study at a reduced program count.
	replanProgs := 20
	if r.programs < replanProgs {
		replanProgs = r.programs
	}
	res = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Exp7(r.cfg, replanProgs); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows = append(rows, endToEndJSON{
		Name:    fmt.Sprintf("replan_exp7_%dprog", replanProgs),
		NsPerOp: float64(res.NsPerOp()), AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
	})
	return rows, nil
}

// core runs the kernel and end-to-end measurements, prints the table,
// and applies whichever gate the flags selected.
func (r *runner) core() error {
	mode := "baseline"
	if r.smoke {
		mode = "smoke"
	} else if r.comparePath != "" {
		mode = "compare"
	}
	fmt.Printf("## Core: compiled scoring kernels vs map references (%s)\n", mode)

	kernelProgs := 30
	if r.programs < kernelProgs {
		kernelProgs = r.programs
	}
	inst, err := newCoreInstance(kernelProgs, r.cfg.Seed, 1)
	if err != nil {
		return err
	}
	doc := coreBaselineJSON{
		Experiment: "core", Topology: 1, Programs: kernelProgs, Seed: r.cfg.Seed,
		Kernels: inst.coreKernels(),
	}

	fmt.Printf("  %-12s %14s %14s %10s %12s %12s %10s\n",
		"kernel", "map ns/op", "compiled ns/op", "ns ratio", "map allocs", "comp allocs", "allocs")
	for _, k := range doc.Kernels {
		fmt.Printf("  %-12s %14.0f %14.0f %9.1fx %12d %12d %9.0fx\n",
			k.Name, k.MapNsPerOp, k.CompiledNsPerOp, k.NsRatio,
			k.MapAllocsPerOp, k.CompiledAllocsPerOp, k.AllocsRatio)
	}

	if r.smoke {
		fmt.Println()
		return coreSmokeGate(doc.Kernels)
	}

	e2e, err := r.coreEndToEnd()
	if err != nil {
		return err
	}
	doc.EndToEnd = e2e
	fmt.Printf("  %-24s %16s %14s %14s\n", "end-to-end", "ns/op", "allocs/op", "bytes/op")
	for _, e := range doc.EndToEnd {
		fmt.Printf("  %-24s %16.0f %14d %14d\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	fmt.Println()

	if r.comparePath != "" {
		return coreCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing core baseline: %w", err)
		}
		fmt.Printf("  core baseline written to %s\n\n", r.jsonPath)
	}
	return nil
}

// coreSmokeGate enforces the machine-independent ratios: these compare
// two measurements from the same run on the same host, so they hold on
// any machine regardless of absolute speed.
func coreSmokeGate(kernels []kernelJSON) error {
	var failures []string
	for _, k := range kernels {
		if k.NsRatio < coreSmokeNsRatio {
			failures = append(failures, fmt.Sprintf(
				"kernel %s: compiled only %.1fx faster than map (need >= %.0fx)", k.Name, k.NsRatio, coreSmokeNsRatio))
		}
		if k.CompiledAllocsPerOp > 0 && k.AllocsRatio < coreSmokeAllocsRatio {
			failures = append(failures, fmt.Sprintf(
				"kernel %s: compiled only %.1fx leaner than map (need >= %.0fx or zero allocs)", k.Name, k.AllocsRatio, coreSmokeAllocsRatio))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("core smoke gate failed (%d kernel(s))", len(failures))
	}
	fmt.Println("  core smoke gate passed: every compiled kernel holds the 5x ns / 10x allocs floors")
	return nil
}

// coreCompareGate diffs the fresh measurement against the committed
// baseline and fails on a >10% compiled-kernel ns/op regression.
func coreCompareGate(path string, cur coreBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading core baseline: %w", err)
	}
	var base coreBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing core baseline %s: %w", path, err)
	}
	baseline := make(map[string]kernelJSON, len(base.Kernels))
	for _, k := range base.Kernels {
		baseline[k.Name] = k
	}
	var failures []string
	fmt.Printf("  %-12s %18s %16s %8s %14s\n", "kernel", "baseline ns/op", "current ns/op", "delta", "ratio drift")
	for _, k := range cur.Kernels {
		b, ok := baseline[k.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("kernel %s missing from baseline %s", k.Name, path))
			continue
		}
		delta := 0.0
		if b.CompiledNsPerOp > 0 {
			delta = k.CompiledNsPerOp/b.CompiledNsPerOp - 1
		}
		// The in-run map/compiled ratio self-calibrates for machine
		// speed: it only drops when the compiled kernel lost ground
		// against the map twin measured seconds apart on the same host.
		ratioDrift := 0.0
		if b.NsRatio > 0 {
			ratioDrift = k.NsRatio/b.NsRatio - 1
		}
		fmt.Printf("  %-12s %18.0f %16.0f %+7.1f%% %+13.1f%%\n",
			k.Name, b.CompiledNsPerOp, k.CompiledNsPerOp, delta*100, ratioDrift*100)
		rawRegressed := b.CompiledNsPerOp > 0 && k.CompiledNsPerOp > b.CompiledNsPerOp*coreCompareSlack
		ratioRegressed := b.NsRatio > 0 && k.NsRatio < b.NsRatio/coreCompareSlack
		if rawRegressed && ratioRegressed {
			failures = append(failures, fmt.Sprintf(
				"kernel %s regressed %.1f%% in ns/op and %.1f%% against its map twin (baseline %.0f ns/op, now %.0f ns/op)",
				k.Name, delta*100, -ratioDrift*100, b.CompiledNsPerOp, k.CompiledNsPerOp))
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("core compare gate failed (%d regression(s) beyond %.0f%%)",
			len(failures), (coreCompareSlack-1)*100)
	}
	fmt.Printf("  core compare gate passed: no compiled kernel regressed beyond %.0f%% of %s\n",
		(coreCompareSlack-1)*100, path)
	return nil
}
