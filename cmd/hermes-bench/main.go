// Command hermes-bench regenerates every table and figure of the
// paper's evaluation as text tables (and optional CSV):
//
//	hermes-bench -exp fig2    # Figure 2: overhead vs FCT/goodput
//	hermes-bench -exp exp1    # Figure 5: testbed study
//	hermes-bench -exp exp2    # Figure 6: per-packet overhead at scale
//	hermes-bench -exp exp3    # Figure 7: execution time at scale
//	hermes-bench -exp exp4    # Figure 8: end-to-end impact
//	hermes-bench -exp exp5    # Figure 9: scalability
//	hermes-bench -exp exp6    # switch resource consumption
//	hermes-bench -exp exp7    # incremental replanning under churn
//	hermes-bench -exp exp8    # survivability under injected faults
//	hermes-bench -exp exp10   # region-sharded placement at scale
//	hermes-bench -exp traffic # weighted objective + batched replay (Exp#9)
//	hermes-bench -exp regionreplan # region-local replan under churn (Exp#11)
//	hermes-bench -exp rollout # transactional rollout under faults (Exp#12)
//	hermes-bench -exp all
//
// Exp#2–Exp#5 iterate the ten Table III WAN topologies with up to 50
// concurrent programs; expect minutes of runtime with -ilp enabled.
//
// -json PATH writes Exp#7's replan baseline as machine-readable JSON
// (BENCH_replan.json), so CI can diff replan latency, migration cost,
// and A_max degradation across commits. With -exp core, -json writes
// the kernel/end-to-end perf baseline (BENCH_core.json) instead; see
// core.go for the -compare and -smoke gates. With -exp exp8, -json
// writes the survivability baseline (BENCH_survive.json); see
// survive.go for its structural -compare and -smoke gates. With
// -exp exp10, -json writes the sharded-placement baseline
// (BENCH_shard.json); see shard.go for its speedup/quality gates and
// the -full flag that adds the 10k-switch / 5k-program point. With
// -exp equiv, -json writes the symbolic equivalence-checker baseline
// (BENCH_equiv.json); see equiv.go for its 10 ms-per-program budget
// and replay-twin gates. With -exp regionreplan, -json writes the
// region-local replan baseline (BENCH_regionreplan.json); see
// regionreplan.go for its zero-fallback/speedup/quality smoke gate and
// the dual-condition compare gate. With -exp rollout, -json writes the
// transactional-rollout fault baseline (BENCH_rollout.json); see
// rollout.go for its torn-state smoke gate and the structural compare
// gate that diffs seed-determined outcome counts while ignoring
// latency.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments, for `go tool pprof` analysis of the solver hot
// paths.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/hermes-net/hermes/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hermes-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig2, exp1, exp2, exp3, exp4, exp5, exp6, exp7, exp8, exp10, regionreplan, rollout, core, equiv, traffic, all")
	programs := fs.Int("programs", 50, "concurrent programs for exp2-4 and exp7")
	deadline := fs.Duration("deadline", 3*time.Second, "per-instance solver deadline for exact/ILP solvers")
	ilp := fs.Bool("ilp", true, "run the genuinely ILP-backed comparison frameworks")
	seed := fs.Int64("seed", 1, "workload seed")
	workers := fs.Int("workers", 0, "concurrent experiment cells and solver parallelism (0 = GOMAXPROCS)")
	csvDir := fs.String("csv", "", "also write CSV files into this directory")
	jsonPath := fs.String("json", "", "write exp7's replan baseline (or -exp core's perf baseline) as JSON to this path")
	comparePath := fs.String("compare", "", "with -exp core/equiv: diff against this committed baseline, failing on >10% ns/op regressions")
	smoke := fs.Bool("smoke", false, "with -exp core/exp10/regionreplan/equiv/rollout: enforce the machine-independent in-run gates and skip the slow sweeps")
	full := fs.Bool("full", false, "with -exp exp10/regionreplan: include the largest sweep point (minutes of runtime)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the selected experiments to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.SolverDeadline = *deadline
	cfg.IncludeILPFrameworks = *ilp
	cfg.Workers = *workers

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	runner := &runner{cfg: cfg, programs: *programs, csvDir: *csvDir,
		jsonPath: *jsonPath, comparePath: *comparePath, smoke: *smoke, full: *full}
	todo := strings.Split(*exp, ",")
	if *exp == "all" {
		todo = []string{"fig2", "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8"}
	}
	for _, e := range todo {
		if err := runner.run(strings.TrimSpace(e)); err != nil {
			return err
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("creating mem profile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("writing mem profile: %w", err)
		}
	}
	return nil
}

type runner struct {
	cfg         experiments.Config
	programs    int
	csvDir      string
	jsonPath    string
	comparePath string
	smoke       bool
	full        bool
	// exp2 results are shared by exp3 and exp4.
	topoRows []experiments.TopoRow
}

func (r *runner) run(exp string) error {
	switch exp {
	case "fig2":
		return r.fig2()
	case "exp1":
		return r.exp1()
	case "exp2":
		return r.exp2()
	case "exp3":
		return r.exp3()
	case "exp4":
		return r.exp4()
	case "exp5":
		return r.exp5()
	case "exp6":
		return r.exp6()
	case "exp7":
		return r.exp7()
	case "exp8":
		return r.exp8()
	case "exp10":
		return r.exp10()
	case "regionreplan":
		return r.regionReplan()
	case "core":
		return r.core()
	case "equiv":
		return r.equivBench()
	case "traffic":
		return r.trafficBench()
	case "rollout":
		return r.rolloutBench()
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func (r *runner) fig2() error {
	fmt.Println("## Figure 2: per-packet byte overhead vs end-to-end performance")
	pts, err := experiments.Figure2()
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %-12s %-14s\n", "pkt(B)", "ovh(B)", "FCT+(%)", "goodput-(%)")
	rows := [][]string{{"packet_bytes", "overhead_bytes", "fct_increase", "goodput_decrease"}}
	for _, p := range pts {
		fmt.Printf("%-10d %-10d %-12.1f %-14.1f\n",
			p.PacketBytes, p.OverheadBytes, p.FCTIncrease*100, p.GoodputDecrease*100)
		rows = append(rows, []string{
			strconv.Itoa(p.PacketBytes), strconv.Itoa(p.OverheadBytes),
			fmt.Sprintf("%.4f", p.FCTIncrease), fmt.Sprintf("%.4f", p.GoodputDecrease),
		})
	}
	fmt.Println()
	return r.writeCSV("fig2.csv", rows)
}

func (r *runner) exp1() error {
	fmt.Println("## Exp#1 (Figure 5): testbed study, 3-switch linear, 2-10 real programs")
	rows, err := experiments.Exp1(r.cfg)
	if err != nil {
		return err
	}
	csvRows := [][]string{{"programs", "solver", "header_bytes", "amax_bytes", "exec_ms", "fct_overhead", "goodput_loss", "capped", "err"}}
	for _, row := range rows {
		fmt.Printf("programs=%d\n", row.Programs)
		fmt.Printf("  %-8s %10s %10s %12s %10s %10s\n", "solver", "header(B)", "A_max(B)", "exec", "FCT+(%)", "gput-(%)")
		for _, res := range row.Results {
			printSolverRow(res)
			csvRows = append(csvRows, solverCSV(strconv.Itoa(row.Programs), res))
		}
	}
	fmt.Println()
	return r.writeCSV("exp1.csv", csvRows)
}

func (r *runner) ensureExp2() error {
	if r.topoRows != nil {
		return nil
	}
	rows, err := experiments.Exp2(r.cfg, r.programs)
	if err != nil {
		return err
	}
	r.topoRows = rows
	return nil
}

func (r *runner) exp2() error {
	fmt.Printf("## Exp#2 (Figure 6): per-packet byte overhead, %d programs, Table III topologies\n", r.programs)
	if err := r.ensureExp2(); err != nil {
		return err
	}
	csvRows := [][]string{{"topology", "solver", "header_bytes", "amax_bytes"}}
	for _, row := range r.topoRows {
		fmt.Printf("topology %d (%d nodes, %d edges)\n", row.Topology, row.Nodes, row.Edges)
		for _, res := range row.Results {
			if res.Err != "" {
				fmt.Printf("  %-8s failed: %s\n", res.Solver, res.Err)
				continue
			}
			fmt.Printf("  %-8s header=%4dB A_max=%4dB\n", res.Solver, res.HeaderBytes, res.AMax)
			csvRows = append(csvRows, []string{
				strconv.Itoa(row.Topology), res.Solver,
				strconv.Itoa(res.HeaderBytes), strconv.Itoa(res.AMax),
			})
		}
	}
	fmt.Println()
	return r.writeCSV("exp2.csv", csvRows)
}

func (r *runner) exp3() error {
	fmt.Println("## Exp#3 (Figure 7): execution time (capped runs plotted as 10^7 ms)")
	if err := r.ensureExp2(); err != nil {
		return err
	}
	csvRows := [][]string{{"topology", "solver", "exec_ms", "capped"}}
	for _, row := range r.topoRows {
		fmt.Printf("topology %d\n", row.Topology)
		for _, res := range row.Results {
			if res.Err != "" {
				continue
			}
			mark := ""
			if res.Capped {
				mark = "  (capped)"
			}
			fmt.Printf("  %-8s %12.3f ms%s\n", res.Solver, float64(res.ExecTime.Microseconds())/1000, mark)
			csvRows = append(csvRows, []string{
				strconv.Itoa(row.Topology), res.Solver,
				fmt.Sprintf("%.3f", float64(res.ExecTime.Microseconds())/1000),
				strconv.FormatBool(res.Capped),
			})
		}
	}
	fmt.Println()
	return r.writeCSV("exp3.csv", csvRows)
}

func (r *runner) exp4() error {
	fmt.Println("## Exp#4 (Figure 8): end-to-end impact of the deployed overhead (1024B packets)")
	if err := r.ensureExp2(); err != nil {
		return err
	}
	csvRows := [][]string{{"topology", "solver", "fct_overhead", "goodput_loss"}}
	for _, row := range r.topoRows {
		fmt.Printf("topology %d\n", row.Topology)
		for _, res := range row.Results {
			if res.Err != "" {
				continue
			}
			fmt.Printf("  %-8s FCT %+6.1f%%  goodput %+6.1f%%\n",
				res.Solver, res.FCTOverhead*100, -res.GoodputLoss*100)
			csvRows = append(csvRows, []string{
				strconv.Itoa(row.Topology), res.Solver,
				fmt.Sprintf("%.4f", res.FCTOverhead), fmt.Sprintf("%.4f", res.GoodputLoss),
			})
		}
	}
	fmt.Println()
	return r.writeCSV("exp4.csv", csvRows)
}

func (r *runner) exp5() error {
	fmt.Println("## Exp#5 (Figure 9): scalability on topology 10, 10-50 programs")
	rows, err := experiments.Exp5(r.cfg)
	if err != nil {
		return err
	}
	csvRows := [][]string{{"programs", "solver", "header_bytes", "amax_bytes", "exec_ms", "fct_overhead", "goodput_loss", "capped", "err"}}
	for _, row := range rows {
		fmt.Printf("programs=%d\n", row.Programs)
		fmt.Printf("  %-8s %10s %10s %12s %10s %10s\n", "solver", "header(B)", "A_max(B)", "exec", "FCT+(%)", "gput-(%)")
		for _, res := range row.Results {
			printSolverRow(res)
			csvRows = append(csvRows, solverCSV(strconv.Itoa(row.Programs), res))
		}
	}
	fmt.Println()
	return r.writeCSV("exp5.csv", csvRows)
}

func (r *runner) exp6() error {
	fmt.Println("## Exp#6: switch resource consumption (10 concurrent sketches)")
	res, err := experiments.Exp6(r.cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  ground truth (each sketch alone):       %.3f stage-units\n", res.GroundTruth)
	fmt.Printf("  Hermes deployment consumes:             %.3f stage-units\n", res.HermesUsed)
	fmt.Printf("  SPEED deployment consumes:              %.3f stage-units\n", res.SPEEDUsed)
	fmt.Printf("  saved by TDG merging:                   %.3f stage-units\n", res.MergeSavings)
	fmt.Printf("  extra resources added by coordination:  %.4f stage-units\n", res.HermesExtra)
	fmt.Println()
	return r.writeCSV("exp6.csv", [][]string{
		{"ground_truth", "hermes_used", "speed_used", "merge_savings", "hermes_extra"},
		{
			fmt.Sprintf("%.4f", res.GroundTruth), fmt.Sprintf("%.4f", res.HermesUsed),
			fmt.Sprintf("%.4f", res.SPEEDUsed), fmt.Sprintf("%.4f", res.MergeSavings),
			fmt.Sprintf("%.4f", res.HermesExtra),
		},
	})
}

// replanRowJSON is one Exp#7 row in the machine-readable baseline.
type replanRowJSON struct {
	Programs      int     `json:"programs"`
	DrainedSwitch int     `json:"drained_switch"`
	DisplacedMATs int     `json:"displaced_mats"`
	ColdMs        float64 `json:"cold_ms"`
	IncrementalMs float64 `json:"incremental_ms"`
	Speedup       float64 `json:"speedup"`
	MovedFull     int     `json:"moved_mats_full"`
	MovedInc      int     `json:"moved_mats_incremental"`
	DirtyMATs     int     `json:"dirty_mats"`
	AMaxCold      int     `json:"amax_cold_bytes"`
	AMaxInc       int     `json:"amax_incremental_bytes"`
	AMaxRatio     float64 `json:"amax_ratio"`
	FellBack      bool    `json:"fell_back"`
}

// replanBaselineJSON is the BENCH_replan.json document.
type replanBaselineJSON struct {
	Experiment string          `json:"experiment"`
	Topology   int             `json:"topology"`
	Seed       int64           `json:"seed"`
	Rows       []replanRowJSON `json:"rows"`
}

func (r *runner) exp7() error {
	fmt.Printf("## Exp#7: incremental replanning after a single-switch drain, Table III topology 1, up to %d programs\n", r.programs)
	pts, err := experiments.Exp7(r.cfg, r.programs)
	if err != nil {
		return err
	}
	fmt.Printf("  %-9s %-8s %-10s %-10s %-9s %-12s %-12s %-14s %s\n",
		"programs", "drained", "cold", "inc", "speedup", "moved(full)", "moved(inc)", "A_max c/i", "path")
	csvRows := [][]string{{"programs", "drained_switch", "displaced_mats", "cold_ms", "incremental_ms", "speedup",
		"moved_mats_full", "moved_mats_incremental", "dirty_mats", "amax_cold_bytes", "amax_incremental_bytes", "amax_ratio", "fell_back"}}
	doc := replanBaselineJSON{Experiment: "exp7", Topology: 1, Seed: r.cfg.Seed}
	for _, p := range pts {
		path := fmt.Sprintf("repair (%d dirty)", p.DirtyInc)
		if p.FellBack {
			path = "fallback"
		}
		fmt.Printf("  %-9d sw%-6d %-10s %-10s %-9.1f %-12d %-12d %4dB/%-4dB    %s\n",
			p.Programs, int(p.Drained),
			fmt.Sprintf("%.1fms", p.ColdMs), fmt.Sprintf("%.2fms", p.IncMs),
			p.Speedup, p.MovedFull, p.MovedInc, p.ColdAMax, p.IncAMax, path)
		csvRows = append(csvRows, []string{
			strconv.Itoa(p.Programs), strconv.Itoa(int(p.Drained)), strconv.Itoa(p.DisplacedMATs),
			fmt.Sprintf("%.3f", p.ColdMs), fmt.Sprintf("%.3f", p.IncMs), fmt.Sprintf("%.2f", p.Speedup),
			strconv.Itoa(p.MovedFull), strconv.Itoa(p.MovedInc), strconv.Itoa(p.DirtyInc),
			strconv.Itoa(p.ColdAMax), strconv.Itoa(p.IncAMax), fmt.Sprintf("%.4f", p.AMaxRatio),
			strconv.FormatBool(p.FellBack),
		})
		doc.Rows = append(doc.Rows, replanRowJSON{
			Programs: p.Programs, DrainedSwitch: int(p.Drained), DisplacedMATs: p.DisplacedMATs,
			ColdMs: round3(p.ColdMs), IncrementalMs: round3(p.IncMs), Speedup: round3(p.Speedup),
			MovedFull: p.MovedFull, MovedInc: p.MovedInc, DirtyMATs: p.DirtyInc,
			AMaxCold: p.ColdAMax, AMaxInc: p.IncAMax, AMaxRatio: round3(p.AMaxRatio),
			FellBack: p.FellBack,
		})
	}
	fmt.Println()
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing replan baseline: %w", err)
		}
		fmt.Printf("  replan baseline written to %s\n\n", r.jsonPath)
	}
	return r.writeCSV("exp7.csv", csvRows)
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

func printSolverRow(res experiments.SolverResult) {
	if res.Err != "" {
		fmt.Printf("  %-8s failed: %s\n", res.Solver, res.Err)
		return
	}
	exec := fmt.Sprintf("%.3fms", float64(res.ExecTime.Microseconds())/1000)
	if res.Capped {
		exec = ">cap"
	}
	fmt.Printf("  %-8s %9dB %9dB %12s %+9.1f%% %+9.1f%%\n",
		res.Solver, res.HeaderBytes, res.AMax, exec,
		res.FCTOverhead*100, -res.GoodputLoss*100)
}

func solverCSV(x string, res experiments.SolverResult) []string {
	return []string{
		x, res.Solver,
		strconv.Itoa(res.HeaderBytes), strconv.Itoa(res.AMax),
		fmt.Sprintf("%.3f", float64(res.ExecTime.Microseconds())/1000),
		fmt.Sprintf("%.4f", res.FCTOverhead), fmt.Sprintf("%.4f", res.GoodputLoss),
		strconv.FormatBool(res.Capped), res.Err,
	}
}

func (r *runner) writeCSV(name string, rows [][]string) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(r.csvDir + "/" + name)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
