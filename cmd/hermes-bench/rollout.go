// The "rollout" experiment (Exp#12) measures the transactional
// make-before-break rollout engine under mid-flight faults, producing
// the BENCH_rollout.json baseline:
//
//	hermes-bench -exp rollout -json BENCH_rollout.json    # (re)generate the baseline
//	hermes-bench -exp rollout -compare BENCH_rollout.json # fail on structural drift
//	hermes-bench -exp rollout -smoke                      # one topology, hard bounds
//
// Each topology row executes a fixed old→new plan transition once per
// injection point: a fault (targeted crash, process interrupt with
// journal resume, or seeded ambient schedule event) lands at a
// rotating op boundary. Outcome counts are a pure function of the seed
// (retry attempts are bounded and backoff sleeps are stubbed), so the
// compare gate diffs them exactly and ignores wall-clock latency. The
// smoke gate enforces the machine-independent hard bounds — zero
// torn-state violations, both terminals exercised, every interrupt
// resumed — on the smallest topology, cheap enough for `make check`.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"github.com/hermes-net/hermes/internal/experiments"
)

// rolloutSmokeLatencyMs is the absolute per-rollout latency ceiling
// for -smoke: a rollout is a few dozen in-memory ops, so even a loaded
// CI box sits orders of magnitude below.
const rolloutSmokeLatencyMs = 5000.0

// rolloutRowJSON is one topology row of the baseline.
type rolloutRowJSON struct {
	Topology   string  `json:"topology"`
	Switches   int     `json:"switches"`
	Ops        int     `json:"ops"`
	Injections int     `json:"injections"`
	Committed  int     `json:"committed"`
	RolledBack int     `json:"rolled_back"`
	Degraded   int     `json:"degraded"`
	Resumed    int     `json:"resumed"`
	Violations int     `json:"violations"`
	Retries    int     `json:"retries"`
	Rollback   float64 `json:"rollback_rate"`
	CleanMs    float64 `json:"clean_ms"`
	MaxMs      float64 `json:"max_ms"`
	MeanMs     float64 `json:"mean_ms"`
}

// rolloutBaselineJSON is the BENCH_rollout.json document.
type rolloutBaselineJSON struct {
	Experiment string           `json:"experiment"`
	Seed       int64            `json:"seed"`
	Injections int              `json:"injections"`
	Rows       []rolloutRowJSON `json:"rows"`
}

func (r *runner) rolloutBench() error {
	mode := "baseline"
	topologies := []string{"table3:1", "table3:2", "composite:2"}
	if r.smoke {
		mode = "smoke"
		topologies = []string{"table3:1"}
	} else if r.comparePath != "" {
		mode = "compare"
	}
	fmt.Printf("## Exp#12: transactional rollout under mid-flight faults (%s)\n", mode)

	res, err := experiments.Exp12(r.cfg, topologies, 33)
	if err != nil {
		return err
	}

	fmt.Printf("  %-12s %-8s %-5s %-7s %-20s %-8s %-10s %-9s %-16s\n",
		"topology", "switches", "ops", "inject", "commit/rollbk/degr", "resumed", "violations", "retries", "latency max/mean")
	doc := rolloutBaselineJSON{Experiment: "exp12", Seed: r.cfg.Seed, Injections: 33}
	csvRows := [][]string{{"topology", "switches", "ops", "injections", "committed", "rolled_back",
		"degraded", "resumed", "violations", "retries", "rollback_rate", "clean_ms", "max_ms", "mean_ms"}}
	for _, p := range res.Rows {
		fmt.Printf("  %-12s %-8d %-5d %-7d %5d/%d/%-10d %-8d %-10d %-9d %.2f/%.2fms\n",
			p.Topology, p.Switches, p.Ops, p.Injections, p.Committed, p.RolledBack, p.Degraded,
			p.Resumed, p.Violations, p.Retries, p.MaxMs, p.MeanMs)
		csvRows = append(csvRows, []string{
			p.Topology, strconv.Itoa(p.Switches), strconv.Itoa(p.Ops), strconv.Itoa(p.Injections),
			strconv.Itoa(p.Committed), strconv.Itoa(p.RolledBack), strconv.Itoa(p.Degraded),
			strconv.Itoa(p.Resumed), strconv.Itoa(p.Violations), strconv.Itoa(p.Retries),
			fmt.Sprintf("%.4f", p.RollbackRate),
			fmt.Sprintf("%.3f", p.CleanMs), fmt.Sprintf("%.3f", p.MaxMs), fmt.Sprintf("%.3f", p.MeanMs),
		})
		doc.Rows = append(doc.Rows, rolloutRowJSON{
			Topology: p.Topology, Switches: p.Switches, Ops: p.Ops, Injections: p.Injections,
			Committed: p.Committed, RolledBack: p.RolledBack, Degraded: p.Degraded,
			Resumed: p.Resumed, Violations: p.Violations, Retries: p.Retries,
			Rollback: round3(p.RollbackRate),
			CleanMs:  round3(p.CleanMs), MaxMs: round3(p.MaxMs), MeanMs: round3(p.MeanMs),
		})
	}
	fmt.Println()

	if r.smoke {
		return rolloutSmokeGate(doc)
	}
	if r.comparePath != "" {
		return rolloutCompareGate(r.comparePath, doc)
	}
	if r.jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing rollout baseline: %w", err)
		}
		fmt.Printf("  rollout baseline written to %s\n\n", r.jsonPath)
	}
	return r.writeCSV("exp12.csv", csvRows)
}

// rolloutSmokeGate enforces the machine-independent hard bounds.
func rolloutSmokeGate(doc rolloutBaselineJSON) error {
	var failures []string
	for _, row := range doc.Rows {
		if row.Violations != 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: %d torn-state/invariant violations; want 0", row.Topology, row.Violations))
		}
		if row.Committed == 0 {
			failures = append(failures, fmt.Sprintf("%s: no injection run committed", row.Topology))
		}
		if row.RolledBack == 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: no injection run rolled back; the rollback path was never exercised", row.Topology))
		}
		if row.Resumed == 0 {
			failures = append(failures, fmt.Sprintf("%s: no interrupted rollout resumed", row.Topology))
		}
		if row.Committed+row.RolledBack+row.Degraded != row.Injections {
			failures = append(failures, fmt.Sprintf(
				"%s: outcomes %d+%d+%d do not cover %d injections",
				row.Topology, row.Committed, row.RolledBack, row.Degraded, row.Injections))
		}
		if row.MaxMs >= rolloutSmokeLatencyMs {
			failures = append(failures, fmt.Sprintf(
				"%s: max rollout latency %.1fms (bound %.0fms)", row.Topology, row.MaxMs, rolloutSmokeLatencyMs))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("rollout smoke gate failed (%d check(s))", len(failures))
	}
	fmt.Println("  rollout smoke gate passed: zero torn states, both terminals exercised, every interrupt resumed")
	return nil
}

// rolloutCompareGate diffs the seed-determined structural fields
// against the committed baseline; latency fields are ignored.
func rolloutCompareGate(path string, cur rolloutBaselineJSON) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading rollout baseline: %w", err)
	}
	var base rolloutBaselineJSON
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing rollout baseline %s: %w", path, err)
	}
	byTopo := make(map[string]rolloutRowJSON, len(base.Rows))
	for _, row := range base.Rows {
		byTopo[row.Topology] = row
	}
	var failures []string
	fmt.Printf("  %-12s %-20s %-14s %-12s\n", "topology", "commit/rollbk b->c", "resumed b->c", "ops b->c")
	for _, row := range cur.Rows {
		b, ok := byTopo[row.Topology]
		if !ok {
			failures = append(failures, fmt.Sprintf("topology %s missing from baseline %s", row.Topology, path))
			continue
		}
		fmt.Printf("  %-12s %3d/%d -> %3d/%-6d %3d -> %-7d %3d -> %d\n",
			row.Topology, b.Committed, b.RolledBack, row.Committed, row.RolledBack,
			b.Resumed, row.Resumed, b.Ops, row.Ops)
		if row.Violations != 0 {
			failures = append(failures, fmt.Sprintf("%s: %d invariant violations", row.Topology, row.Violations))
		}
		if row.Ops != b.Ops {
			failures = append(failures, fmt.Sprintf(
				"%s: clean rollout ops %d != baseline %d (plan transition changed shape)", row.Topology, row.Ops, b.Ops))
		}
		if row.Committed != b.Committed || row.RolledBack != b.RolledBack || row.Degraded != b.Degraded {
			failures = append(failures, fmt.Sprintf(
				"%s: outcomes %d/%d/%d != baseline %d/%d/%d",
				row.Topology, row.Committed, row.RolledBack, row.Degraded, b.Committed, b.RolledBack, b.Degraded))
		}
		if row.Resumed != b.Resumed {
			failures = append(failures, fmt.Sprintf(
				"%s: resumed %d != baseline %d", row.Topology, row.Resumed, b.Resumed))
		}
		if row.Retries != b.Retries {
			failures = append(failures, fmt.Sprintf(
				"%s: retries %d != baseline %d", row.Topology, row.Retries, b.Retries))
		}
	}
	fmt.Println()
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Println("  FAIL:", f)
		}
		return fmt.Errorf("rollout compare gate failed (%d drift(s))", len(failures))
	}
	fmt.Printf("  rollout compare gate passed: structural outcome matches %s\n", path)
	return nil
}
