// Command hermeslint is a repo-specific vet pass for the concurrency
// conventions introduced with the parallel placement engine: the
// path-oracle caches guard shared maps with sync.(RW)Mutex, and the
// Plan/Graph/Topology types expose Clone() for safe cross-goroutine
// hand-off. Both idioms have silent failure modes that `go vet` does
// not catch, so this tool flags them syntactically:
//
//	HV001  a function locks a mutex but never unlocks it (no paired
//	       Unlock/RUnlock call, direct or deferred)           error
//	HV002  defer mu.Lock() — almost always a typo for Unlock  error
//	HV003  a return statement between a Lock and its
//	       non-deferred Unlock leaks the lock on early exit   warning
//	HV004  a Clone() result is discarded, so the caller keeps
//	       mutating the shared original                       error
//	HV005  a map-based scoring call (PairBytes, AMax, the *Ref
//	       twins, ...) inside a loop tagged //hermes:hot — hot
//	       loops must use the compiled kernels               error
//	HV006  an allocation inside a loop tagged //hermes:hot:
//	       make(), a map or slice composite literal, or an
//	       append whose destination is a struct field (the
//	       amortized-scratch idiom belongs outside the loop;
//	       growing it per iteration defeats the
//	       allocation-free contract)                         error
//	HV007  inside a function carrying a //hermes:hot tag, a
//	       return between a pool Get() and its matching
//	       Put() drops the pooled buffer on the early-exit
//	       path, so the pool drains under error load exactly
//	       when recycling matters most (a deferred Put, or a
//	       Get whose buffer ownership leaves the function —
//	       no Put at all — stays legal)                      error
//	HV008  a direct Controller.Rebind() call outside
//	       internal/deploy/ — bare rebinds swap the serving
//	       plan non-transactionally, skipping the
//	       make-before-break rollout engine's staging,
//	       journaling, and rollback; adopt plans through
//	       rollout.New(...).Execute() (or the supervisor,
//	       which does) instead                               error
//
// It is deliberately x/tools-free: the analysis is a plain go/parser +
// go/ast walk so it builds in hermetic environments with no module
// cache. The price is that matching is syntactic (by selector chain
// text, e.g. "c.mu"), which is exactly right for the conventions it
// polices and keeps false positives near zero on this codebase.
//
// Usage: hermeslint [dir ...]   (default ".")
// Exit status 1 iff any error-severity finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type vetFinding struct {
	pos  token.Position
	rule string
	sev  string // "error" | "warning"
	msg  string
}

func (f vetFinding) String() string {
	return fmt.Sprintf("%s: %s %s: %s", f.pos, f.rule, f.sev, f.msg)
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermeslint:", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)

	var all []vetFinding
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermeslint:", err)
			os.Exit(2)
		}
		fs, err := lintGoSource(path, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hermeslint:", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}

	bad := false
	for _, f := range all {
		fmt.Println(f)
		if f.sev == "error" {
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hermeslint: %d file(s), %d finding(s)\n", len(files), len(all))
}

// lintGoSource parses one Go file and runs every rule over each
// function body.
func lintGoSource(path, src string) ([]vetFinding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []vetFinding
	ast.Inspect(file, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		out = append(out, lintFunc(fset, fn)...)
		if hotFunc(file, fn) {
			out = append(out, lintPoolFunc(fset, fn)...)
		}
		return true
	})
	out = append(out, lintHotLoops(fset, file)...)
	out = append(out, lintRebind(fset, file, path)...)
	return out, nil
}

// lintRebind applies HV008: any method call named Rebind in a file
// outside internal/deploy/ bypasses the transactional rollout engine.
// The deploy tree (the engine itself, the controller, and their tests)
// is the only sanctioned call surface; everything else — supervisor,
// CLIs, experiments — must adopt plans through a rollout so that
// staging, journaling, and automatic rollback stay in the loop.
// Matching is syntactic like the rest of this tool; the method name is
// specific enough that false positives are effectively zero here.
func lintRebind(fset *token.FileSet, file *ast.File, path string) []vetFinding {
	slashed := filepath.ToSlash(path)
	if strings.Contains(slashed, "internal/deploy/") {
		return nil
	}
	var out []vetFinding
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Rebind" {
			return true
		}
		out = append(out, vetFinding{
			pos: fset.Position(call.Pos()), rule: "HV008", sev: "error",
			msg: fmt.Sprintf("%s.Rebind() outside internal/deploy/ swaps the serving plan non-transactionally; adopt the plan through the make-before-break rollout engine (rollout.New(...).Execute()) instead",
				renderExpr(sel.X)),
		})
		return true
	})
	return out
}

// hotFunc reports whether a function carries the //hermes:hot tag — on
// its doc comment or anywhere inside its body.
func hotFunc(file *ast.File, fn *ast.FuncDecl) bool {
	if fn.Doc != nil && hasHotTag([]*ast.CommentGroup{fn.Doc}) {
		return true
	}
	for _, g := range file.Comments {
		if g.Pos() >= fn.Body.Pos() && g.End() <= fn.Body.End() && hasHotTag([]*ast.CommentGroup{g}) {
			return true
		}
	}
	return false
}

// lintPoolFunc applies HV007 to one //hermes:hot function: a return
// between a pool Get() and its nearest following non-deferred Put() on
// the same receiver exits without recycling the buffer. A deferred Put
// covers every path, and a Get with no Put at all transfers ownership
// out of the function (the Load/GetBatch idiom), so neither fires.
// Receivers match syntactically, like everything here: a Get/Put whose
// rendered chain contains "pool" (case-insensitive) is a pool access.
func lintPoolFunc(fset *token.FileSet, fn *ast.FuncDecl) []vetFinding {
	var (
		events  []lockEvent
		returns []token.Pos
		out     []vetFinding
	)
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.ReturnStmt:
				returns = append(returns, n.Pos())
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				m := sel.Sel.Name
				if m != "Get" && m != "Put" {
					return true
				}
				recv := renderExpr(sel.X)
				if !strings.Contains(strings.ToLower(recv), "pool") {
					return true
				}
				events = append(events, lockEvent{
					recv: recv, method: m, deferred: deferred, pos: n.Pos(),
				})
			}
			return true
		})
	}
	walk(fn.Body, false)

	for i, e := range events {
		if e.deferred || e.method != "Get" {
			continue
		}
		for j := i + 1; j < len(events); j++ {
			u := events[j]
			if u.recv != e.recv || u.method != "Put" {
				continue
			}
			if u.deferred {
				break // recycled at exit: early returns are safe
			}
			for _, r := range returns {
				if r > e.pos && r < u.pos {
					out = append(out, vetFinding{
						pos: fset.Position(r), rule: "HV007", sev: "error",
						msg: fmt.Sprintf("return between %s.Get() and its %s.Put() in //hermes:hot %s drops the pooled buffer on this path; Put it back before returning or defer the Put",
							e.recv, e.recv, fn.Name.Name),
					})
				}
			}
			break
		}
	}
	return out
}

// hotBanned is the map-based scoring surface: the retained reference
// implementations and the Plan/TDG convenience accessors that allocate
// maps or hash names per call. None of them belong inside a loop the
// author tagged //hermes:hot — that is what the compiled kernels
// (AssignmentAMax, MoveScore, PlaceScore, FillPairTable, ...) are for.
var hotBanned = map[string]bool{
	"PairBytes":         true,
	"PairBytesUncached": true,
	"PairBytesRef":      true,
	"AMax":              true,
	"TE2E":              true,
	"TotalCrossBytes":   true,
	"WireBytes":         true,
	"MaxWireBytes":      true,
	"CrossEdges":        true,
	"AssignmentAMaxRef": true,
	"MoveScoreRef":      true,
	"PlaceScoreRef":     true,
	"assignmentAMax":    true,
	"assignmentLatency": true,
	"assignmentAcyclic": true,
}

// lintHotLoops applies HV005: inside a for/range loop whose lead
// comment carries the //hermes:hot tag, every call resolving (by name)
// to the map-based scoring surface is an error. Matching is syntactic,
// like the rest of this tool: the tag marks intent, and a hot loop
// that hashes MAT names per iteration defeats the compiled-instance
// fast path no matter which receiver it goes through.
func lintHotLoops(fset *token.FileSet, file *ast.File) []vetFinding {
	cm := ast.NewCommentMap(fset, file, file.Comments)
	var out []vetFinding
	seen := map[token.Pos]bool{} // dedupe calls under nested tagged loops
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			return true
		}
		if !hasHotTag(cm[n]) {
			return true
		}
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || seen[call.Pos()] {
				return true
			}
			var name, shown string
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				name = fun.Sel.Name
				shown = renderExpr(fun.X) + "." + name
			case *ast.Ident:
				name = fun.Name
				shown = name
			default:
				return true
			}
			if hotBanned[name] {
				seen[call.Pos()] = true
				out = append(out, vetFinding{
					pos: fset.Position(call.Pos()), rule: "HV005", sev: "error",
					msg: fmt.Sprintf("%s() is map-based scoring inside a //hermes:hot loop; use the compiled-instance kernel instead", shown),
				})
			}
			return true
		})
		out = append(out, lintHotAllocs(fset, n, seen)...)
		return true
	})
	return out
}

// lintHotAllocs applies HV006 inside one //hermes:hot loop: make()
// calls, map and slice composite literals, and appends whose
// destination is a struct field all allocate (or can grow the
// amortized scratch) per iteration. Appends to plain locals are
// allowed — building a bounded local batch is fine; it is the
// field-backed scratch that must be pre-sized outside the loop.
func lintHotAllocs(fset *token.FileSet, loop ast.Node, seen map[token.Pos]bool) []vetFinding {
	var out []vetFinding
	report := func(pos token.Pos, format string, args ...any) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, vetFinding{
			pos: fset.Position(pos), rule: "HV006", sev: "error",
			msg: fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch fun.Name {
			case "make":
				report(n.Pos(), "make() inside a //hermes:hot loop allocates per iteration; hoist the buffer into reused scratch")
			case "append":
				if len(n.Args) == 0 {
					return true
				}
				if sel, ok := n.Args[0].(*ast.SelectorExpr); ok {
					report(n.Pos(), "append to %s inside a //hermes:hot loop can grow the escaping scratch per iteration; pre-size it before the loop",
						renderExpr(sel))
				}
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.MapType:
				report(n.Pos(), "map literal inside a //hermes:hot loop allocates per iteration; hoist and clear a reused map instead")
			case *ast.ArrayType:
				if arr, _ := n.Type.(*ast.ArrayType); arr != nil && arr.Len == nil {
					report(n.Pos(), "slice literal inside a //hermes:hot loop allocates per iteration; hoist it into reused scratch")
				}
			}
		}
		return true
	})
	return out
}

// hasHotTag reports whether any comment group associated with a loop
// contains the //hermes:hot tag.
func hasHotTag(groups []*ast.CommentGroup) bool {
	for _, g := range groups {
		for _, c := range g.List {
			if strings.Contains(c.Text, "hermes:hot") {
				return true
			}
		}
	}
	return false
}

// lockEvent is one mutex or Clone call observed in a function body, in
// source order.
type lockEvent struct {
	recv     string // rendered selector chain, e.g. "c.mu"
	method   string // Lock, RLock, Unlock, RUnlock
	deferred bool
	pos      token.Pos
}

// lintFunc applies HV001–HV004 to a single function declaration.
func lintFunc(fset *token.FileSet, fn *ast.FuncDecl) []vetFinding {
	var (
		events  []lockEvent
		returns []token.Pos
		out     []vetFinding
	)
	report := func(pos token.Pos, rule, sev, format string, args ...any) {
		out = append(out, vetFinding{
			pos: fset.Position(pos), rule: rule, sev: sev,
			msg: fmt.Sprintf(format, args...),
		})
	}

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.ReturnStmt:
				returns = append(returns, n.Pos())
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" && len(call.Args) == 0 {
						report(n.Pos(), "HV004", "error",
							"result of %s.Clone() is discarded; the caller keeps sharing the mutable original",
							renderExpr(sel.X))
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock", "Unlock", "RUnlock":
					if len(n.Args) == 0 {
						events = append(events, lockEvent{
							recv: renderExpr(sel.X), method: sel.Sel.Name,
							deferred: deferred, pos: n.Pos(),
						})
					}
				}
			}
			return true
		})
	}
	walk(fn.Body, false)

	// HV002: locking in a defer runs at function exit — a typo for the
	// matching Unlock.
	for _, e := range events {
		if e.deferred && (e.method == "Lock" || e.method == "RLock") {
			report(e.pos, "HV002", "error",
				"defer %s.%s() acquires the lock at function exit; did you mean %s?",
				e.recv, e.method, unlockOf(e.method))
		}
	}

	// HV001: per receiver and lock kind, Lock with no Unlock anywhere
	// in the function (conditional unlocks still count as paired — the
	// rule only fires when no release exists at all).
	type kindKey struct {
		recv string
		r    bool // RLock/RUnlock flavor
	}
	locks := map[kindKey]lockEvent{}
	unlocks := map[kindKey]bool{}
	for _, e := range events {
		switch e.method {
		case "Lock":
			if _, seen := locks[kindKey{e.recv, false}]; !seen {
				locks[kindKey{e.recv, false}] = e
			}
		case "RLock":
			if _, seen := locks[kindKey{e.recv, true}]; !seen {
				locks[kindKey{e.recv, true}] = e
			}
		case "Unlock":
			unlocks[kindKey{e.recv, false}] = true
		case "RUnlock":
			unlocks[kindKey{e.recv, true}] = true
		}
	}
	keys := make([]kindKey, 0, len(locks))
	for k := range locks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].recv != keys[j].recv {
			return keys[i].recv < keys[j].recv
		}
		return !keys[i].r
	})
	for _, k := range keys {
		if !unlocks[k] {
			e := locks[k]
			report(e.pos, "HV001", "error",
				"%s.%s() in %s has no matching %s in the same function (lock hand-off must stay within one function)",
				e.recv, e.method, fn.Name.Name, unlockOf(e.method))
		}
	}

	// HV003: a return between a Lock and its nearest following
	// non-deferred Unlock exits with the mutex held.
	for i, e := range events {
		if e.deferred || (e.method != "Lock" && e.method != "RLock") {
			continue
		}
		want := unlockOf(e.method)
		for j := i + 1; j < len(events); j++ {
			u := events[j]
			if u.recv != e.recv || u.method != want {
				continue
			}
			if u.deferred {
				break // released at exit: early returns are safe
			}
			for _, r := range returns {
				if r > e.pos && r < u.pos {
					report(r, "HV003", "warning",
						"return between %s.%s() and its %s() leaks the lock on this path",
						e.recv, e.method, want)
				}
			}
			break
		}
	}
	return out
}

func unlockOf(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// renderExpr prints a selector/identifier chain ("c.mu",
// "t.cache.mu"); anything unprintable collapses to "?" so matching
// stays conservative.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[...]"
	case *ast.CallExpr:
		return renderExpr(e.Fun) + "()"
	case *ast.StarExpr:
		return renderExpr(e.X)
	default:
		return "?"
	}
}
