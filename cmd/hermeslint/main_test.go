package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func lintSnippet(t *testing.T, body string) []vetFinding {
	t.Helper()
	src := "package p\n\nimport \"sync\"\n\nvar _ = sync.Mutex{}\n\n" + body
	fs, err := lintGoSource("snippet.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fs
}

func rulesOf(fs []vetFinding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.rule)
	}
	return out
}

func TestLockWithoutUnlock(t *testing.T) {
	fs := lintSnippet(t, `
type c struct{ mu sync.Mutex }
func (x *c) bad() { x.mu.Lock() }
`)
	if len(fs) != 1 || fs[0].rule != "HV001" || fs[0].sev != "error" {
		t.Fatalf("want one HV001 error, got %v", fs)
	}
	if !strings.Contains(fs[0].msg, "x.mu.Lock()") {
		t.Fatalf("finding must name the receiver chain: %v", fs[0])
	}
}

func TestRLockNeedsRUnlock(t *testing.T) {
	// Unlock does not satisfy an RLock: distinct kinds.
	fs := lintSnippet(t, `
type c struct{ mu sync.RWMutex }
func (x *c) bad() { x.mu.RLock(); x.mu.Unlock() }
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV001" {
		t.Fatalf("want [HV001], got %v", got)
	}
}

func TestDeferredUnlockIsPaired(t *testing.T) {
	fs := lintSnippet(t, `
type c struct{ mu sync.Mutex }
func (x *c) good() int { x.mu.Lock(); defer x.mu.Unlock(); return 1 }
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

func TestDeferLockTypo(t *testing.T) {
	// The missing Unlock also trips HV001: both diagnostics point at
	// the same typo.
	fs := lintSnippet(t, `
type c struct{ mu sync.Mutex }
func (x *c) bad() { x.mu.Lock(); defer x.mu.Lock() }
`)
	got := rulesOf(fs)
	if len(got) != 2 || got[0] != "HV002" || got[1] != "HV001" {
		t.Fatalf("want [HV002 HV001], got %v", got)
	}
}

func TestReturnBetweenLockAndUnlock(t *testing.T) {
	fs := lintSnippet(t, `
type c struct{ mu sync.Mutex; n int }
func (x *c) bad(b bool) int {
	x.mu.Lock()
	if b {
		return 0
	}
	x.mu.Unlock()
	return x.n
}
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV003" {
		t.Fatalf("want [HV003], got %v", got)
	}
	if fs[0].sev != "warning" {
		t.Fatalf("HV003 must be a warning, got %v", fs[0])
	}
}

func TestReturnAfterUnlockIsFine(t *testing.T) {
	fs := lintSnippet(t, `
type c struct{ mu sync.RWMutex; m map[int]int }
func (x *c) good(k int) (int, bool) {
	x.mu.RLock()
	v, ok := x.m[k]
	x.mu.RUnlock()
	if ok {
		return v, true
	}
	x.mu.Lock()
	x.m[k] = 1
	x.mu.Unlock()
	return 1, false
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on the oracle double-check pattern, got %v", fs)
	}
}

func TestDiscardedClone(t *testing.T) {
	fs := lintSnippet(t, `
type g struct{}
func (x *g) Clone() *g { return x }
func bad(x *g) { x.Clone() }
func good(x *g) *g { return x.Clone() }
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV004" {
		t.Fatalf("want [HV004], got %v", got)
	}
}

func TestNestedSelectorChains(t *testing.T) {
	// t.cache.mu and c.mu are distinct receivers.
	fs := lintSnippet(t, `
type inner struct{ mu sync.Mutex }
type outer struct{ cache *inner }
func bad(t *outer, c *inner) {
	t.cache.mu.Lock()
	c.mu.Unlock()
}
`)
	got := rulesOf(fs)
	if len(got) != 1 || got[0] != "HV001" {
		t.Fatalf("want [HV001] for t.cache.mu, got %v", fs)
	}
	if !strings.Contains(fs[0].msg, "t.cache.mu") {
		t.Fatalf("finding must name t.cache.mu: %v", fs[0])
	}
}

func TestHotLoopFlagsMapScoring(t *testing.T) {
	fs := lintSnippet(t, `
type plan struct{}
func (p *plan) PairBytes() map[int]int { return nil }
func bad(p *plan) {
	//hermes:hot
	for i := 0; i < 8; i++ {
		_ = p.PairBytes()
	}
}
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV005" {
		t.Fatalf("want [HV005], got %v", fs)
	}
	if fs[0].sev != "error" || !strings.Contains(fs[0].msg, "p.PairBytes()") {
		t.Fatalf("HV005 must be an error naming the call: %v", fs[0])
	}
}

func TestHotLoopFlagsPlainRefCalls(t *testing.T) {
	// The banned surface includes package-level reference functions
	// called without a receiver, in range loops too.
	fs := lintSnippet(t, `
func assignmentAMax(a map[string]int) int { return 0 }
func bad(items []map[string]int) int {
	total := 0
	//hermes:hot
	for _, a := range items {
		total += assignmentAMax(a)
	}
	return total
}
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV005" {
		t.Fatalf("want [HV005], got %v", fs)
	}
}

func TestUntaggedLoopMayUseMapScoring(t *testing.T) {
	// Without the tag the rule stays silent: map-based scoring is the
	// sanctioned boundary API everywhere that is not hot.
	fs := lintSnippet(t, `
type plan struct{}
func (p *plan) AMax() int { return 0 }
func fine(p *plan) int {
	total := 0
	for i := 0; i < 8; i++ {
		total += p.AMax()
	}
	return total
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on untagged loop, got %v", fs)
	}
}

func TestHotLoopCompiledKernelsAllowed(t *testing.T) {
	// The compiled kernels are exactly what a hot loop should call.
	fs := lintSnippet(t, `
type ci struct{}
func (c *ci) PlaceScore(a, b int) int { return 0 }
func (c *ci) MoveScore(a, b int) int  { return 0 }
func good(c *ci) int {
	best := 0
	//hermes:hot
	for u := 0; u < 8; u++ {
		if s := c.PlaceScore(0, u) + c.MoveScore(u, 0); s > best {
			best = s
		}
	}
	return best
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on compiled kernels, got %v", fs)
	}
}

func TestHotLoopFlagsAllocations(t *testing.T) {
	fs := lintSnippet(t, `
type walker struct{ buf []int }
func bad(w *walker, n int) {
	//hermes:hot
	for i := 0; i < n; i++ {
		tmp := make([]int, 4)
		_ = tmp
		m := map[string]int{"a": i}
		_ = m
		s := []int{i}
		_ = s
		w.buf = append(w.buf, i)
	}
}
`)
	got := rulesOf(fs)
	if len(got) != 4 {
		t.Fatalf("want 4 HV006 findings (make, map literal, slice literal, field append), got %v", fs)
	}
	for i, f := range fs {
		if got[i] != "HV006" || f.sev != "error" {
			t.Fatalf("finding %d must be an HV006 error: %v", i, f)
		}
	}
	if !strings.Contains(fs[3].msg, "w.buf") {
		t.Fatalf("append finding must name the escaping scratch: %v", fs[3])
	}
}

func TestHotLoopLocalAppendAndArrayAllowed(t *testing.T) {
	// Appending to a local and fixed-size array literals stay legal:
	// bounded local batches don't break the allocation-free contract.
	fs := lintSnippet(t, `
func good(n int) int {
	var batch []int
	//hermes:hot
	for i := 0; i < n; i++ {
		batch = append(batch, i)
		pair := [2]int{i, i + 1}
		_ = pair
	}
	return len(batch)
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on local append, got %v", fs)
	}
}

func TestUntaggedLoopMayAllocate(t *testing.T) {
	fs := lintSnippet(t, `
type walker struct{ buf []int }
func fine(w *walker, n int) {
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, i)
		m := make(map[int]int)
		_ = m
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on untagged loop, got %v", fs)
	}
}

func TestHotFuncPoolGetEarlyReturn(t *testing.T) {
	fs := lintSnippet(t, `
type pipe struct{ pool sync.Pool }
// bad runs the batch loop.
//
//hermes:hot
func (p *pipe) bad(fail bool) error {
	b := p.pool.Get()
	if fail {
		return nil
	}
	p.pool.Put(b)
	return nil
}
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV007" {
		t.Fatalf("want [HV007], got %v", fs)
	}
	if fs[0].sev != "error" || !strings.Contains(fs[0].msg, "p.pool.Get()") {
		t.Fatalf("HV007 must be an error naming the pool chain: %v", fs[0])
	}
}

func TestHotFuncBodyTagAlsoCounts(t *testing.T) {
	// The tag may sit on an inner loop rather than the doc comment; the
	// function is hot either way.
	fs := lintSnippet(t, `
type pipe struct{ pool sync.Pool }
func (p *pipe) bad(n int) int {
	b := p.pool.Get()
	//hermes:hot
	for i := 0; i < n; i++ {
		if i == 3 {
			return i
		}
	}
	p.pool.Put(b)
	return n
}
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV007" {
		t.Fatalf("want [HV007], got %v", fs)
	}
}

func TestHotFuncDeferredPutIsSafe(t *testing.T) {
	fs := lintSnippet(t, `
type pipe struct{ pool sync.Pool }
//hermes:hot
func (p *pipe) good(fail bool) error {
	b := p.pool.Get()
	defer p.pool.Put(b)
	if fail {
		return nil
	}
	return nil
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings with deferred Put, got %v", fs)
	}
}

func TestHotFuncOwnershipTransferAllowed(t *testing.T) {
	// No Put at all: the buffer leaves the function (GetBatch idiom).
	fs := lintSnippet(t, `
type pipe struct{ pool sync.Pool }
//hermes:hot
func (p *pipe) alloc() any {
	return p.pool.Get()
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on ownership transfer, got %v", fs)
	}
}

func TestColdFuncPoolEarlyReturnAllowed(t *testing.T) {
	// Without the tag, early-return pool handling is the caller's
	// business (error paths may legitimately abandon a buffer).
	fs := lintSnippet(t, `
type pipe struct{ pool sync.Pool }
func (p *pipe) fine(fail bool) error {
	b := p.pool.Get()
	if fail {
		return nil
	}
	p.pool.Put(b)
	return nil
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings on untagged function, got %v", fs)
	}
}

func TestHotFuncDistinctPoolsDontPair(t *testing.T) {
	// A Put on a different pool does not cover the Get.
	fs := lintSnippet(t, `
type pipe struct{ batchPool, rowPool sync.Pool }
//hermes:hot
func (p *pipe) bad(fail bool) error {
	b := p.batchPool.Get()
	r := p.rowPool.Get()
	p.rowPool.Put(r)
	if fail {
		return nil
	}
	p.batchPool.Put(b)
	return nil
}
`)
	got := rulesOf(fs)
	if len(got) != 1 || got[0] != "HV007" {
		t.Fatalf("want [HV007] for batchPool only, got %v", fs)
	}
	if !strings.Contains(fs[0].msg, "p.batchPool.Get()") {
		t.Fatalf("finding must name batchPool: %v", fs[0])
	}
}

func TestRebindOutsideDeploy(t *testing.T) {
	// lintSnippet parses under the path "snippet.go", which is outside
	// internal/deploy/ — the bare rebind must be flagged.
	fs := lintSnippet(t, `
type ctl struct{}
func (c *ctl) Rebind(v any) error { return nil }
func bad(c *ctl) error { return c.Rebind(nil) }
`)
	if got := rulesOf(fs); len(got) != 1 || got[0] != "HV008" {
		t.Fatalf("want [HV008], got %v", fs)
	}
	if fs[0].sev != "error" || !strings.Contains(fs[0].msg, "c.Rebind()") {
		t.Fatalf("finding must be an error naming the receiver chain: %v", fs[0])
	}
}

func TestRebindInsideDeployIsSanctioned(t *testing.T) {
	// The rollout engine (and the deploy tree generally) is the one
	// place allowed to touch the controller directly.
	src := `package rollout
type ctl struct{}
func (c *ctl) Rebind(v any) error { return nil }
func flip(c *ctl) error { return c.Rebind(nil) }
`
	fs, err := lintGoSource("internal/deploy/rollout/rollout.go", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(fs) != 0 {
		t.Fatalf("want no findings under internal/deploy/, got %v", fs)
	}
}

// The repository itself must stay free of error-severity findings:
// `make check` gates on the binary's exit status, and this test keeps
// the guarantee visible from `go test ./...` alone.
func TestRepoIsClean(t *testing.T) {
	var checked int
	err := filepath.WalkDir("../..", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && d.Name() != ".." && d.Name() != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		findings, err := lintGoSource(path, string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		checked++
		for _, f := range findings {
			if f.sev == "error" {
				t.Errorf("repo must lint clean: %v", f)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 50 {
		t.Fatalf("walked only %d Go files; wrong root?", checked)
	}
}
