// Command topogen generates and inspects the evaluation topologies.
//
//	topogen -table3           # print the ten Table III WANs
//	topogen -spec linear:5    # summarize one topology
//	topogen -spec fattree:4 -dot  # Graphviz output
//	topogen -spec composite:30 -partition 4  # region partition text form
//	topogen -spec composite:30 -partition 4 -refine 2  # + min-cut swaps
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hermes-net/hermes/internal/network"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	table3 := fs.Bool("table3", false, "print the ten Table III topologies")
	spec := fs.String("spec", "", "generate one topology (linear:N, fattree:K, table3:I, wan:N,E, composite:R)")
	seed := fs.Int64("seed", 1, "generator seed")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	partition := fs.Int("partition", 0, "partition the topology into K regions and print the text form")
	refine := fs.Int("refine", 0, "min-cut boundary-swap refinement passes for -partition (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table3 {
		fmt.Printf("%-4s %-8s %-8s %-14s %-10s\n", "id", "nodes", "edges", "programmable", "diameter")
		for i := 1; i <= network.NumTableIII(); i++ {
			tp, err := network.TableIII(i, network.TofinoSpec())
			if err != nil {
				return err
			}
			wantN, wantE, err := network.TableIIISize(i)
			if err != nil {
				return err
			}
			note := ""
			if tp.NumLinks() != wantE {
				note = fmt.Sprintf(" (paper lists %d edges; raised to stay connected)", wantE)
			}
			fmt.Printf("%-4d %-8d %-8d %-14d %-10d%s\n",
				i, tp.NumSwitches(), tp.NumLinks(),
				len(tp.ProgrammableSwitches()), diameter(tp), note)
			_ = wantN
		}
		return nil
	}

	if *spec == "" {
		return fmt.Errorf("pass -table3 or -spec")
	}
	tp, err := buildSpec(*spec, *seed)
	if err != nil {
		return err
	}
	if *partition > 0 {
		p, err := network.PartitionTopology(tp, network.PartitionOptions{
			Regions: *partition, Seed: *seed, MinCutPasses: *refine,
		})
		if err != nil {
			return err
		}
		if *refine > 0 {
			fmt.Fprintf(os.Stderr, "topogen: min-cut refinement (%d passes): %d boundary links\n",
				*refine, len(p.BoundaryLinks()))
		}
		fmt.Print(p.Format())
		return nil
	}
	if *dot {
		fmt.Print(dotGraph(tp))
		return nil
	}
	fmt.Printf("topology %s: %d switches (%d programmable), %d links, diameter %d hops\n",
		tp.Name, tp.NumSwitches(), len(tp.ProgrammableSwitches()), tp.NumLinks(), diameter(tp))
	return nil
}

func buildSpec(spec string, seed int64) (*network.Topology, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("spec %q: want kind:arg", spec)
	}
	switch kind {
	case "linear":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, err
		}
		return network.Linear(n, network.TestbedSpec())
	case "fattree":
		k, err := strconv.Atoi(arg)
		if err != nil {
			return nil, err
		}
		return network.FatTree(k, network.TofinoSpec(), seed)
	case "table3":
		i, err := strconv.Atoi(arg)
		if err != nil {
			return nil, err
		}
		return network.TableIII(i, network.TofinoSpec())
	case "wan":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("spec %q: want wan:NODES,EDGES", spec)
		}
		nodes, err1 := strconv.Atoi(parts[0])
		edges, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("spec %q: bad sizes", spec)
		}
		return network.RandomWAN("wan", nodes, edges, network.TofinoSpec(), seed)
	case "composite":
		r, err := strconv.Atoi(arg)
		if err != nil {
			return nil, err
		}
		return network.CompositeWAN(r, network.TofinoSpec(), seed)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

// diameter computes the hop-count diameter via BFS from every node.
func diameter(tp *network.Topology) int {
	n := tp.NumSwitches()
	max := 0
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []network.SwitchID{network.SwitchID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range tp.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > max {
						max = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
	}
	return max
}

func dotGraph(tp *network.Topology) string {
	var b strings.Builder
	b.WriteString("graph topo {\n")
	for _, s := range tp.Switches() {
		shape := "circle"
		if s.Programmable {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %d [shape=%s label=%q];\n", s.ID, shape, s.Name)
	}
	for _, l := range tp.Links() {
		fmt.Fprintf(&b, "  %d -- %d [label=%q];\n", l.A, l.B, l.Latency.String())
	}
	b.WriteString("}\n")
	return b.String()
}
