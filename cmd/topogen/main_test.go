package main

import (
	"strings"
	"testing"

	"github.com/hermes-net/hermes/internal/network"
)

func TestBuildSpec(t *testing.T) {
	tests := []struct {
		spec     string
		switches int
		wantErr  bool
	}{
		{"linear:4", 4, false},
		{"fattree:4", 20, false},
		{"table3:2", 70, false},
		{"wan:8,10", 8, false},
		{"wan:8", 0, true},
		{"bogus:1", 0, true},
		{"linear", 0, true},
		{"linear:x", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			tp, err := buildSpec(tt.spec, 1)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && tp.NumSwitches() != tt.switches {
				t.Errorf("switches = %d, want %d", tp.NumSwitches(), tt.switches)
			}
		})
	}
}

func TestDiameter(t *testing.T) {
	tp, err := network.Linear(5, network.TestbedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := diameter(tp); got != 4 {
		t.Errorf("linear-5 diameter = %d, want 4", got)
	}
	ring, err := network.Ring(6, network.TofinoSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := diameter(ring); got != 3 {
		t.Errorf("ring-6 diameter = %d, want 3", got)
	}
}

func TestDotGraph(t *testing.T) {
	tp, err := network.Linear(3, network.TestbedSpec())
	if err != nil {
		t.Fatal(err)
	}
	dot := dotGraph(tp)
	for _, want := range []string{"graph topo", "0 -- 1", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestRunModes(t *testing.T) {
	if err := run([]string{"-table3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", "linear:3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", "fattree:4", "-dot"}); err != nil {
		t.Fatal(err)
	}
	if err := run(nil); err == nil {
		t.Error("no-args run accepted")
	}
	if err := run([]string{"-spec", "bogus:9"}); err == nil {
		t.Error("bad spec accepted")
	}
}
