// Command hermes deploys data plane programs onto a network topology
// and reports the resulting plan: MAT placements, coordination
// headers, per-packet byte overhead, and end-to-end impact.
//
// Usage:
//
//	hermes -workload real:6 -topology linear:3 -solver hermes
//	hermes -workload synthetic:20 -topology table3:4 -solver all
//	hermes -workload sketches:10 -topology linear:3 -json
//	hermes -workload mixed:6 -topology table3:1 -stage-capacity 0.05 -supervise -fault-schedule rand:20
//	hermes -workload real:6 -topology table3:1 -traffic gravity:7 -traffic-objective sum
//	hermes -workload real:6 -topology table3:1 -traffic @matrix.txt
//	hermes lint -json examples/p4src/bad.p4
//	hermes equiv -workload real:6 -topology table3:1 -json
//
// Workloads:   real:N (N of the ten switch.p4-style programs),
//
//	synthetic:N, sketches:N, mixed:N (real + synthetic).
//
// Topologies:  linear:N, fattree:K, table3:I (paper Table III),
//
//	wan:NODES,EDGES.
//
// Solvers:     hermes, optimal, ilp, ms, sonata, speed, mtp, fp,
//
//	p4all, ffl, ffls, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/baseline"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/p4lite"
	"github.com/hermes-net/hermes/internal/placement"
	programPkg "github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hermes:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "lint" {
		return runLint(args[1:])
	}
	if len(args) > 0 && args[0] == "equiv" {
		return runEquiv(args[1:])
	}
	fs := flag.NewFlagSet("hermes", flag.ContinueOnError)
	workloadFlag := fs.String("workload", "real:4", "workload spec (real:N, synthetic:N, sketches:N, mixed:N, file:PATH, p4:FILE[,FILE...])")
	topoFlag := fs.String("topology", "linear:3", "topology spec (linear:N, fattree:K, table3:I, wan:N,E, composite:R)")
	solverFlag := fs.String("solver", "hermes", "solver (hermes, optimal, ilp, ms, sonata, speed, mtp, fp, p4all, ffl, ffls, all)")
	eps1 := fs.Duration("eps1", 0, "ε1: bound on end-to-end coordination latency (0 = unbounded)")
	eps2 := fs.Int("eps2", 0, "ε2: bound on occupied switches (0 = unbounded)")
	seed := fs.Int64("seed", 1, "workload/topology seed")
	capacity := fs.Float64("stage-capacity", 0, "override per-stage capacity (0 = spec default)")
	deadline := fs.Duration("deadline", 30*time.Second, "solver deadline for exact/ILP solvers")
	workers := fs.Int("workers", 0, "solver parallelism (0 = GOMAXPROCS); the plan is identical for every value")
	shards := fs.Int("shards", 0, "region-sharded placement: split the topology into this many regions solved concurrently (0 = whole-graph)")
	trafficFlag := fs.String("traffic", "", "traffic matrix for the weighted objective: model[:seed] (uniform, gravity, hotspot, elephants) or @file (Format text); empty = structural A_max objective")
	trafficObj := fs.String("traffic-objective", "sum", "weighted aggregate when -traffic is set: sum (Σ w·A) or max (hottest pair)")
	amaxSlack := fs.Float64("amax-slack", 0, "structural A_max inflation a weighted solve may accept, e.g. 1.2 (0 = default bound)")
	jsonOut := fs.Bool("json", false, "emit the plan as JSON")
	emitBundle := fs.String("emit-bundle", "", "write the resolved workload as a JSON bundle to this path and exit")
	verify := fs.Bool("verify", false, "drive packets through the deployment and check equivalence")
	report := fs.Bool("report", false, "print a per-switch operations report for each plan")
	savePlan := fs.String("save-plan", "", "write the first solver's plan as JSON to this path")
	drainFlag := fs.String("drain", "", "comma-separated switch IDs to drain after the solve, exercising the replan path")
	replanFlag := fs.String("replan", "auto", "replan strategy when -drain is set (auto, incremental, full)")
	rolloutFlag := fs.Bool("rollout", false, "adopt the -drain replan via the transactional make-before-break rollout and print the staged phase report")
	supervise := fs.Bool("supervise", false, "deploy under the fault-tolerant supervisor and drive -fault-schedule through it")
	faultSchedule := fs.String("fault-schedule", "rand:10", "fault schedule for -supervise: rand:N[,SEED] or a schedule file path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	progs, err := parseWorkload(*workloadFlag, *seed)
	if err != nil {
		return err
	}
	if *emitBundle != "" {
		data, err := programPkg.EncodeBundle(progs)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*emitBundle, data, 0o644); err != nil {
			return fmt.Errorf("writing bundle: %w", err)
		}
		fmt.Printf("wrote %d programs to %s\n", len(progs), *emitBundle)
		return nil
	}
	topo, err := parseTopology(*topoFlag, *seed, *capacity)
	if err != nil {
		return err
	}
	solvers, err := parseSolvers(*solverFlag)
	if err != nil {
		return err
	}
	drained, err := parseDrain(*drainFlag)
	if err != nil {
		return err
	}
	traffic, err := parseTraffic(*trafficFlag, topo)
	if err != nil {
		return err
	}
	objective, err := placement.ParseTrafficObjective(*trafficObj)
	if err != nil {
		return err
	}
	replanMode, err := hermes.ParseReplanMode(*replanFlag)
	if err != nil {
		return err
	}

	fmt.Printf("workload: %s (%d programs), topology: %s (%d switches, %d programmable)\n",
		*workloadFlag, len(progs), topo.Name, topo.NumSwitches(), len(topo.ProgrammableSwitches()))

	if *supervise {
		// Shards flows into the supervisor's replan options, so it
		// auto-partitions the monitored topology and heals churn through
		// the region-local path.
		popts := placement.Options{Epsilon1: *eps1, Epsilon2: *eps2, Workers: *workers, Shards: *shards}
		if *deadline > 0 {
			popts.Deadline = time.Now().Add(*deadline)
		}
		return runSupervised(progs, topo, solvers[0], *faultSchedule, *seed, popts)
	}

	for _, solver := range solvers {
		// -shards upgrades the Hermes heuristic to its region-sharded
		// variant; other solvers see the value via SolveOptions.Shards
		// and ignore it unless they have a sharded mode.
		if *shards > 1 {
			if _, ok := solver.(placement.Greedy); ok {
				solver = hermes.ShardedSolver{}
			}
		}
		res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{
			Solver:           solver,
			Epsilon1:         *eps1,
			Epsilon2:         *eps2,
			SolverDeadline:   *deadline,
			Workers:          *workers,
			Shards:           *shards,
			Traffic:          traffic,
			TrafficObjective: objective,
			AMaxSlack:        *amaxSlack,
		})
		if err != nil {
			fmt.Printf("%-8s failed: %v\n", solver.Name(), err)
			continue
		}
		if *jsonOut {
			if err := emitJSON(res); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%-8s header=%3dB A_max=%3dB cross=%4dB switches=%2d t_e2e=%-10v solve=%v\n",
			solver.Name(), res.Deployment.MaxHeaderBytes(), res.Plan.AMax(),
			res.Plan.TotalCrossBytes(), res.Plan.QOcc(), res.Plan.TE2E(), res.Plan.SolveTime)
		if traffic != nil {
			tr, err := hermes.ReplayTraffic(res.Deployment, traffic, 4096, 0, 0)
			if err != nil {
				fmt.Printf("         traffic replay failed: %v\n", err)
			} else {
				fmt.Printf("         traffic %s objective=%v: weighted-rate=%.1f hot-pair=%.1f goodput=%.0f pkts/s\n",
					*trafficFlag, objective, tr.WeightedByteRate, tr.HotPairByteRate, tr.Stats.PacketsPerSec)
			}
		}
		if *report {
			fmt.Println(res.Deployment.Report(programPkg.DefaultResourceModel))
		}
		if *savePlan != "" {
			data, err := res.Plan.EncodeJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*savePlan, data, 0o644); err != nil {
				return fmt.Errorf("writing plan: %w", err)
			}
			fmt.Printf("         plan saved to %s\n", *savePlan)
			*savePlan = "" // only the first solver's plan
		}
		if *verify {
			var pkts []*hermes.Packet
			for i := 0; i < 200; i++ {
				pkts = append(pkts, &hermes.Packet{Headers: map[string]uint64{
					"ipv4.srcAddr": uint64(i % 16), "ipv4.dstAddr": uint64(i % 4),
					"tcp.srcPort": uint64(i % 128), "tcp.dstPort": 80,
					"ipv4.ttl": 64, "ipv4.protocol": 6,
				}})
			}
			maxHdr, err := hermes.VerifyEquivalence(res.Deployment, pkts)
			if err != nil {
				fmt.Printf("         verification FAILED: %v\n", err)
				continue
			}
			fmt.Printf("         verified over %d packets; on-wire header %dB\n", len(pkts), maxHdr)
		}
		if len(drained) > 0 {
			ropts := hermes.ReplanOptions{
				Options: placement.Options{Epsilon1: *eps1, Epsilon2: *eps2, Workers: *workers, Shards: *shards},
				Mode:    replanMode,
			}
			// Under -shards, the replan reuses the solve-time region
			// structure: the dirty set maps onto the drained regions and
			// only those are repaired (DESIGN.md §14).
			if *shards > 1 {
				part, perr := hermes.PartitionTopology(topo, *shards, 1)
				if perr != nil {
					fmt.Printf("         replan partition failed (%v); using whole-topology repair\n", perr)
				} else {
					ropts.Partition = part
				}
			}
			if *rolloutFlag {
				// Replan + recompile, then adopt transactionally: stage
				// the new epoch next to the old, flip program groups
				// atomically, retire the old epoch — and print the
				// staged phase report.
				next, rep, err := hermes.Redeploy(res.Deployment, solver, ropts, hermes.AnalyzeOptions{}, drained...)
				if err != nil {
					fmt.Printf("         replan(%v) failed: %v\n", replanMode, err)
					continue
				}
				fmt.Printf("         replan(%v) drained %v in %v: moved %d MATs, A_max %dB -> %dB\n",
					replanMode, drained, rep.TotalTime, rep.MovedMATs, res.Plan.AMax(), next.Plan.AMax())
				rrep, err := hermes.ExecuteRollout(res.Deployment, next, hermes.RolloutOptions{Topo: topo})
				if rrep != nil {
					for _, line := range strings.Split(strings.TrimRight(rrep.String(), "\n"), "\n") {
						fmt.Println("         " + line)
					}
				}
				if err != nil {
					fmt.Printf("         rollout failed: %v\n", err)
				}
				continue
			}
			newPlan, rep, err := hermes.ReplanWithOptions(res.Plan, solver, ropts, drained...)
			if err != nil {
				fmt.Printf("         replan(%v) failed: %v\n", replanMode, err)
				continue
			}
			path := "full solve"
			if rep.UsedRegional {
				path = fmt.Sprintf("regional repair (%d dirty MATs, regions %v", rep.DirtyMATs, rep.RegionsTouched)
				if rep.RegionsWidened > 0 {
					path += fmt.Sprintf(", %d widened", rep.RegionsWidened)
				}
				if rep.ExchangeMoves > 0 {
					path += fmt.Sprintf(", exchange moved %d in %d rounds", rep.ExchangeMoves, rep.ExchangeRounds)
				}
				path += ")"
			} else if rep.UsedRepair {
				path = fmt.Sprintf("delta repair (%d dirty MATs)", rep.DirtyMATs)
			} else if rep.FallbackReason != "" {
				path = "fallback to full solve: " + rep.FallbackReason
			}
			fmt.Printf("         replan(%v) drained %v via %s in %v: moved %d MATs, A_max %dB -> %dB\n",
				replanMode, drained, path, rep.TotalTime, rep.MovedMATs, res.Plan.AMax(), newPlan.AMax())
		}
	}
	return nil
}

// parseTraffic resolves the -traffic flag: empty means no weighted
// objective, "@path" loads a Format text file, anything else is a
// "model[:seed]" spec.
func parseTraffic(spec string, topo *hermes.Topology) (*hermes.TrafficMatrix, error) {
	if spec == "" {
		return nil, nil
	}
	if path, ok := strings.CutPrefix(spec, "@"); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading traffic matrix: %w", err)
		}
		return hermes.ParseTraffic(string(data), topo)
	}
	return hermes.ParseTrafficSpec(spec, topo)
}

func parseDrain(spec string) ([]hermes.SwitchID, error) {
	if spec == "" {
		return nil, nil
	}
	var out []hermes.SwitchID
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("drain spec %q: bad switch ID %q", spec, part)
		}
		out = append(out, hermes.SwitchID(id))
	}
	return out, nil
}

func parseWorkload(spec string, seed int64) ([]*hermes.Program, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("workload spec %q: want kind:arg", spec)
	}
	n := 0
	if kind != "file" && kind != "p4" {
		var err error
		n, err = strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("workload spec %q: bad count", spec)
		}
	}
	switch kind {
	case "p4":
		var progs []*hermes.Program
		for _, path := range strings.Split(arg, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				return nil, fmt.Errorf("reading p4lite source: %w", err)
			}
			prog, err := p4lite.Parse(string(data))
			if err != nil {
				return nil, err
			}
			progs = append(progs, prog)
		}
		return progs, nil
	case "file":
		data, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("reading workload bundle: %w", err)
		}
		return programPkg.DecodeBundle(data)
	case "real":
		real := workload.RealPrograms()
		if n > len(real) {
			return nil, fmt.Errorf("only %d real programs exist", len(real))
		}
		return real[:n], nil
	case "synthetic":
		return workload.SyntheticSet(n, workload.PaperSyntheticSpec(), seed)
	case "sketches":
		return workload.SketchSet(n, seed)
	case "mixed":
		return workload.EvaluationPrograms(n, seed)
	default:
		return nil, fmt.Errorf("unknown workload kind %q", kind)
	}
}

func parseTopology(spec string, seed int64, capacity float64) (*hermes.Topology, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology spec %q: want kind:arg", spec)
	}
	sw := network.TofinoSpec()
	if kind == "linear" {
		sw = network.TestbedSpec()
	}
	if capacity > 0 {
		sw.StageCapacity = capacity
	}
	switch kind {
	case "linear":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topology spec %q: bad size", spec)
		}
		return network.Linear(n, sw)
	case "fattree":
		k, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topology spec %q: bad arity", spec)
		}
		return network.FatTree(k, sw, seed)
	case "table3":
		i, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topology spec %q: bad index", spec)
		}
		return network.TableIII(i, sw)
	case "wan":
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("topology spec %q: want wan:NODES,EDGES", spec)
		}
		nodes, err1 := strconv.Atoi(parts[0])
		edges, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("topology spec %q: bad sizes", spec)
		}
		return network.RandomWAN("wan", nodes, edges, sw, seed)
	case "composite":
		r, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("topology spec %q: bad region count", spec)
		}
		return network.CompositeWAN(r, sw, seed)
	default:
		return nil, fmt.Errorf("unknown topology kind %q", kind)
	}
}

func parseSolvers(spec string) ([]hermes.Solver, error) {
	mk := func(name string) (hermes.Solver, error) {
		switch name {
		case "hermes":
			return placement.Greedy{}, nil
		case "optimal":
			return placement.Exact{}, nil
		case "ilp":
			return placement.ILP{}, nil
		case "ms":
			return baseline.MinStage{}, nil
		case "sonata":
			return baseline.Sonata{}, nil
		case "speed":
			return baseline.SPEED{}, nil
		case "mtp":
			return baseline.MTP{}, nil
		case "fp":
			return baseline.Flightplan{}, nil
		case "p4all":
			return baseline.P4All{}, nil
		case "ffl":
			return baseline.FFL{}, nil
		case "ffls":
			return baseline.FFLS{}, nil
		default:
			return nil, fmt.Errorf("unknown solver %q", name)
		}
	}
	if spec == "all" {
		out := []hermes.Solver{placement.Greedy{}, placement.Exact{}}
		out = append(out, baseline.All()...)
		return out, nil
	}
	var out []hermes.Solver
	for _, name := range strings.Split(spec, ",") {
		s, err := mk(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// planJSON is the exported JSON shape.
type planJSON struct {
	Solver      string                    `json:"solver"`
	AMaxBytes   int                       `json:"a_max_bytes"`
	HeaderBytes int                       `json:"header_bytes"`
	Switches    int                       `json:"switches"`
	TE2E        string                    `json:"t_e2e"`
	Assignments map[string]assignmentJSON `json:"assignments"`
	Headers     map[string]headerJSON     `json:"headers"`
}

type assignmentJSON struct {
	Switch     int `json:"switch"`
	StartStage int `json:"start_stage"`
	EndStage   int `json:"end_stage"`
}

type headerJSON struct {
	Bytes  int      `json:"bytes"`
	Fields []string `json:"fields"`
}

func emitJSON(res *hermes.Result) error {
	out := planJSON{
		Solver:      res.Plan.SolverName,
		AMaxBytes:   res.Plan.AMax(),
		HeaderBytes: res.Deployment.MaxHeaderBytes(),
		Switches:    res.Plan.QOcc(),
		TE2E:        res.Plan.TE2E().String(),
		Assignments: map[string]assignmentJSON{},
		Headers:     map[string]headerJSON{},
	}
	for name, sp := range res.Plan.Assignments {
		out.Assignments[name] = assignmentJSON{
			Switch: int(sp.Switch), StartStage: sp.Start, EndStage: sp.End,
		}
	}
	for key, hdr := range res.Deployment.Headers {
		var names []string
		for _, f := range hdr.Fields {
			names = append(names, f.Name)
		}
		out.Headers[fmt.Sprintf("%d->%d", key.From, key.To)] = headerJSON{
			Bytes: hdr.Bytes, Fields: names,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
