package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/p4lite"
)

// runLint implements `hermes lint [flags] file.p4 [file.p4 ...]`: it
// parses each p4lite source and reports the static diagnostics of
// internal/lint. The exit status is non-zero iff any finding has
// error severity (parse failures are HL000 errors).
func runLint(args []string) error {
	fs := flag.NewFlagSet("hermes lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	budget := fs.Int("budget", lint.DefaultMetadataBudget,
		"metadata byte budget for HL005 (negative disables the check)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hermes lint [-json] [-budget N] file.p4 [file.p4 ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("lint: no input files")
	}

	var all lint.Findings
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		all = append(all, lintSource(path, string(data), *budget)...)
	}
	all.Sort()

	if *jsonOut {
		data, err := all.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else if text := all.Text(); text != "" {
		fmt.Print(text)
	}
	if all.HasErrors() {
		return fmt.Errorf("lint: %d finding(s), errors present", len(all))
	}
	fmt.Fprintf(os.Stderr, "hermes lint: %d finding(s), no errors\n", len(all))
	return nil
}

// lintSource parses one source file and lints it. Parse failures
// become HL000 findings carrying the parser's position so the
// diagnostics stream stays uniform across good and broken inputs.
func lintSource(path, src string, budget int) lint.Findings {
	prog, info, err := p4lite.ParseSource(src)
	if err != nil {
		f := lint.Finding{Rule: "HL000", Severity: lint.Error, File: path,
			Message: err.Error()}
		var perr *p4lite.Error
		if errors.As(err, &perr) {
			f.Pos = p4lite.Pos{Line: perr.Line, Col: perr.Col}
			f.Message = perr.Msg
		}
		return lint.Findings{f}
	}
	opts := lint.Options{File: path, Source: info}
	if budget != lint.DefaultMetadataBudget {
		opts.MetadataBudgetBytes = budget
	}
	return lint.LintProgram(prog, opts)
}
