package main

import (
	"encoding/json"
	"testing"

	"github.com/hermes-net/hermes/internal/lint"
)

func TestLintSourceParseFailure(t *testing.T) {
	fs := lintSource("broken.p4", "program ; ;", lint.DefaultMetadataBudget)
	if len(fs) != 1 || fs[0].Rule != "HL000" || fs[0].Severity != lint.Error {
		t.Fatalf("parse failure must yield one HL000 error, got %v", fs)
	}
	if fs[0].Pos.IsZero() {
		t.Fatalf("HL000 must carry the parser position, got %+v", fs[0])
	}
	if fs[0].File != "broken.p4" {
		t.Fatalf("HL000 must carry the file name, got %+v", fs[0])
	}
}

func TestLintSourceCleanAndDirty(t *testing.T) {
	clean := `
program ok;
metadata m : 8;
table t {
  capacity 1;
  action a { set m <- 1; }
  default a;
}
table u {
  key m : exact;
  capacity 2;
  action f { set meta.egress_port <- 1; }
  default f;
}
`
	fs := lintSource("ok.p4", clean, lint.DefaultMetadataBudget)
	if fs.HasErrors() {
		t.Fatalf("clean source must not produce errors:\n%s", fs.Text())
	}

	// JSON round-trips with rule IDs and positions intact.
	data, err := fs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("lint -json output must be valid JSON: %v", err)
	}
}

func TestRunLintExitBehavior(t *testing.T) {
	if err := runLint([]string{"../../examples/p4src/monitor.p4", "../../examples/p4src/router.p4"}); err != nil {
		t.Fatalf("example programs must lint without errors: %v", err)
	}
	if err := runLint([]string{"-json", "../../examples/p4src/bad.p4"}); err == nil {
		t.Fatal("bad.p4 has error findings; runLint must fail")
	}
	if err := runLint([]string{}); err == nil {
		t.Fatal("no input files must be an error")
	}
	if err := runLint([]string{"missing.p4"}); err == nil {
		t.Fatal("unreadable input must be an error")
	}
	// A permissive budget silences HL005, flipping bad.p4 to exit 0:
	// HL005 is its only error-severity rule.
	if err := runLint([]string{"-budget", "-1", "../../examples/p4src/bad.p4"}); err != nil {
		t.Fatalf("bad.p4 with budget disabled has only warnings: %v", err)
	}
}
