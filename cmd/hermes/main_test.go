package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseWorkload(t *testing.T) {
	tests := []struct {
		spec    string
		count   int
		wantErr bool
	}{
		{"real:3", 3, false},
		{"real:10", 10, false},
		{"real:11", 0, true},
		{"synthetic:5", 5, false},
		{"sketches:4", 4, false},
		{"mixed:12", 12, false},
		{"real", 0, true},
		{"real:x", 0, true},
		{"real:0", 0, true},
		{"bogus:3", 0, true},
		{"file:/does/not/exist.json", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			progs, err := parseWorkload(tt.spec, 1)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && len(progs) != tt.count {
				t.Errorf("count = %d, want %d", len(progs), tt.count)
			}
		})
	}
}

func TestParseWorkloadP4File(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.p4l")
	src := "program p;\nmetadata m : 8;\ntable t { action a { set m <- 1; } default a; }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	progs, err := parseWorkload("p4:"+path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0].Name != "p" {
		t.Fatalf("progs = %+v", progs)
	}
	if _, err := parseWorkload("p4:/missing.p4l", 1); err == nil {
		t.Error("missing p4 file accepted")
	}
	// A syntactically broken file must fail with a positioned error.
	bad := filepath.Join(dir, "bad.p4l")
	if err := os.WriteFile(bad, []byte("table {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseWorkload("p4:"+bad, 1); err == nil {
		t.Error("broken p4 file accepted")
	}
}

func TestParseTopology(t *testing.T) {
	tests := []struct {
		spec     string
		switches int
		wantErr  bool
	}{
		{"linear:3", 3, false},
		{"fattree:4", 20, false},
		{"table3:1", 65, false},
		{"wan:10,15", 10, false},
		{"linear:x", 0, true},
		{"wan:10", 0, true},
		{"wan:a,b", 0, true},
		{"nope:1", 0, true},
		{"linear", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			tp, err := parseTopology(tt.spec, 1, 0)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && tp.NumSwitches() != tt.switches {
				t.Errorf("switches = %d, want %d", tp.NumSwitches(), tt.switches)
			}
		})
	}
}

func TestParseTopologyCapacityOverride(t *testing.T) {
	tp, err := parseTopology("linear:3", 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := tp.Switch(0)
	if err != nil {
		t.Fatal(err)
	}
	if sw.StageCapacity != 0.25 {
		t.Errorf("capacity = %g, want 0.25", sw.StageCapacity)
	}
}

func TestParseSolvers(t *testing.T) {
	all, err := parseSolvers("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Errorf("all = %d solvers, want 10", len(all))
	}
	multi, err := parseSolvers("hermes, ffl,ffls")
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 3 || multi[0].Name() != "Hermes" {
		t.Errorf("multi = %v", multi)
	}
	if _, err := parseSolvers("quantum"); err == nil {
		t.Error("unknown solver accepted")
	}
	for _, name := range []string{"hermes", "optimal", "ilp", "ms", "sonata", "speed", "mtp", "fp", "p4all", "ffl", "ffls"} {
		if _, err := parseSolvers(name); err != nil {
			t.Errorf("solver %q rejected: %v", name, err)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	// The whole CLI flow against a tiny instance.
	if err := run([]string{
		"-workload", "real:2", "-topology", "linear:3",
		"-solver", "hermes,ffl", "-verify",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEmitBundle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := run([]string{"-workload", "real:2", "-emit-bundle", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"programs"`) {
		t.Error("bundle content unexpected")
	}
	// Round trip through -workload file:.
	if err := run([]string{"-workload", "file:" + path, "-topology", "linear:3", "-solver", "hermes"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	if err := run([]string{"-workload", "real:2", "-topology", "linear:3", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-workload", "bogus:1"}); err == nil {
		t.Error("bad workload accepted")
	}
	if err := run([]string{"-topology", "bogus:1"}); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run([]string{"-solver", "bogus"}); err == nil {
		t.Error("bad solver accepted")
	}
}

func TestRunReportAndSavePlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := run([]string{
		"-workload", "real:2", "-topology", "linear:3",
		"-solver", "hermes", "-report", "-save-plan", path,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"assignments"`) {
		t.Error("saved plan missing assignments")
	}
}

func TestRunDrainReplan(t *testing.T) {
	// Drain a switch after the solve and exercise each replan mode.
	for _, mode := range []string{"auto", "incremental", "full"} {
		if err := run([]string{
			"-workload", "real:2", "-topology", "linear:3",
			"-solver", "hermes", "-drain", "0", "-replan", mode,
		}); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	if err := run([]string{"-drain", "zero"}); err == nil {
		t.Error("bad drain spec accepted")
	}
	if err := run([]string{"-drain", "0", "-replan", "bogus"}); err == nil {
		t.Error("bad replan mode accepted")
	}
}
