package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/lint"
)

// runEquiv implements `hermes equiv [flags]`: it deploys the requested
// workload and runs the symbolic plan-equivalence checker over the
// compiled deployment, printing every HE finding, the per-program
// verdicts, and — when the proof fails — the replay-confirmed
// counterexample packet. The exit status is non-zero iff an
// error-severity finding breaks the equivalence proof.
func runEquiv(args []string) error {
	fs := flag.NewFlagSet("hermes equiv", flag.ContinueOnError)
	workloadFlag := fs.String("workload", "real:4", "workload spec (real:N, synthetic:N, sketches:N, mixed:N, file:PATH, p4:FILE[,FILE...])")
	topoFlag := fs.String("topology", "table3:1", "topology spec (linear:N, fattree:K, table3:I, wan:N,E, composite:R)")
	solverFlag := fs.String("solver", "hermes", "solver to produce the plan under proof")
	seed := fs.Int64("seed", 1, "workload/topology seed")
	capacity := fs.Float64("stage-capacity", 0, "override per-stage capacity (0 = spec default)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: hermes equiv [-workload W] [-topology T] [-solver S] [-json]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	progs, err := parseWorkload(*workloadFlag, *seed)
	if err != nil {
		return err
	}
	topo, err := parseTopology(*topoFlag, *seed, *capacity)
	if err != nil {
		return err
	}
	solvers, err := parseSolvers(*solverFlag)
	if err != nil {
		return err
	}

	res, err := hermes.Deploy(progs, topo, hermes.DeployOptions{Solver: solvers[0]})
	if err != nil {
		return fmt.Errorf("equiv: deploying workload: %w", err)
	}
	start := time.Now()
	report, err := hermes.DiagnoseEquivalence(res.Deployment)
	if err != nil {
		return fmt.Errorf("equiv: %w", err)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		return emitEquivJSON(report, elapsed, len(progs))
	}
	if text := report.Findings.Text(); text != "" {
		fmt.Print(text)
	}
	for _, p := range progs {
		verdict := "proven equivalent"
		if !report.Programs[p.Name] {
			verdict = "NOT equivalent"
		}
		fmt.Printf("%-24s %s\n", p.Name, verdict)
	}
	if report.Counterexample != nil {
		fmt.Printf("counterexample: %v\n", report.Counterexample.Headers)
	}
	if !report.OK() {
		return fmt.Errorf("equiv: pipeline not equivalent to the single-box reference (%d finding(s))", len(report.Findings))
	}
	fmt.Fprintf(os.Stderr, "hermes equiv: %d program(s) proven equivalent in %v (%d non-gating finding(s))\n",
		len(progs), elapsed, len(report.Findings))
	return nil
}

type equivJSON struct {
	Equivalent bool              `json:"equivalent"`
	CheckTime  string            `json:"check_time"`
	Programs   map[string]bool   `json:"programs"`
	Findings   lint.Findings     `json:"findings"`
	Counterex  map[string]uint64 `json:"counterexample,omitempty"`
}

func emitEquivJSON(report *hermes.EquivReport, elapsed time.Duration, nprogs int) error {
	out := equivJSON{
		Equivalent: report.OK(),
		CheckTime:  elapsed.String(),
		Programs:   report.Programs,
		Findings:   report.Findings,
	}
	if report.Counterexample != nil {
		out.Counterex = report.Counterexample.Headers
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
