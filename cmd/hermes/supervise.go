package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	hermes "github.com/hermes-net/hermes"
	"github.com/hermes-net/hermes/internal/placement"
)

// superviseQuiescePolls bounds the supervision ticks spent per fault
// event before the run is declared livelocked.
const superviseQuiescePolls = 80

// parseFaultSchedule resolves the -fault-schedule spec: "rand:N" or
// "rand:N,SEED" generates a seeded schedule for topo, anything else is
// a path to a schedule file in the text format.
func parseFaultSchedule(spec string, topo *hermes.Topology, seed int64) (*hermes.FaultSchedule, error) {
	if arg, ok := strings.CutPrefix(spec, "rand:"); ok {
		nStr, seedStr, hasSeed := strings.Cut(arg, ",")
		n, err := strconv.Atoi(nStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("fault schedule %q: bad event count", spec)
		}
		if hasSeed {
			if seed, err = strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64); err != nil {
				return nil, fmt.Errorf("fault schedule %q: bad seed", spec)
			}
		}
		return hermes.GenerateFaultSchedule(topo, hermes.FaultScheduleOptions{
			Seed:   seed,
			Events: n,
			// Leave enough surviving capacity that degradation can always
			// fall back to a one-program plan.
			MinUpProgrammable: 1,
		})
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("fault schedule: %w", err)
	}
	defer f.Close()
	return hermes.ParseFaultSchedule(f)
}

// runSupervised deploys the workload under the fault-tolerant
// supervisor, drives the fault schedule through the live topology one
// event at a time, and prints what the supervisor did to survive each
// one.
func runSupervised(progs []*hermes.Program, topo *hermes.Topology, solver hermes.Solver, schedSpec string, seed int64, popts placement.Options) error {
	sched, err := parseFaultSchedule(schedSpec, topo, seed)
	if err != nil {
		return err
	}
	sup, err := hermes.NewSupervisor(progs, topo, hermes.SupervisorOptions{
		Solver: solver,
		Replan: hermes.ReplanOptions{Options: popts},
		// 2-of-2 confirmation with one success to re-confirm: fast enough
		// for an interactive run, still suppresses one-poll blips.
		Monitor: hermes.MonitorOptions{
			Window: 2, FailThreshold: 2, RecoverThreshold: 1,
			BackoffMax: 2, Seed: seed,
		},
	})
	if err != nil {
		return err
	}
	if shed := sup.Report().Shed; len(shed) > 0 {
		fmt.Printf("supervise: initial deployment degraded, shed %v\n", shed)
	}
	fmt.Printf("supervise: %d programs deployed on %s via %s, A_max=%dB; driving %d fault events\n",
		len(progs)-len(sup.Report().Shed), topo.Name, solver.Name(),
		sup.Deployment().Plan.AMax(), len(sched.Events))

	for i, ev := range sched.Events {
		if err := ev.Apply(topo); err != nil {
			return fmt.Errorf("event %d (%s): %w", i, ev, err)
		}
		var acts []string
		polls := 0
		for ; polls < superviseQuiescePolls; polls++ {
			res, err := sup.Poll()
			if err != nil {
				return fmt.Errorf("event %d (%s): poll: %w", i, ev, err)
			}
			acts = append(acts, describePoll(res)...)
			settled := len(res.Down) == 0 && len(res.Up) == 0 &&
				len(res.Shed) == 0 && len(res.Restored) == 0
			if settled && !sup.PlanBroken() {
				break
			}
		}
		if sup.PlanBroken() {
			return fmt.Errorf("event %d (%s): supervisor failed to quiesce", i, ev)
		}
		line := "steady"
		if len(acts) > 0 {
			line = strings.Join(acts, "; ")
		}
		fmt.Printf("  [%3d] %-28s %s\n", i, ev.String(), line)
	}

	st := sup.Stats()
	fmt.Printf("supervise: survived %d events in %d polls: %d replans (%d incremental, %d full), %d shed, %d restored\n",
		len(sched.Events), st.Polls, st.Replans, st.IncrementalReplans, st.FullReplans,
		st.ShedPrograms, st.RestoredPrograms)
	rep := sup.Report()
	if len(rep.Shed) > 0 {
		fmt.Printf("supervise: still degraded, shed %v\n", rep.Shed)
	}
	fmt.Printf("supervise: final plan A_max=%dB over %d switches\n",
		sup.Deployment().Plan.AMax(), sup.Deployment().Plan.QOcc())
	return sup.Deployment().Verify()
}

// describePoll renders a poll's actions as short phrases, empty for
// no-op polls.
func describePoll(res *hermes.SupervisorPollResult) []string {
	var acts []string
	if len(res.Down) > 0 {
		acts = append(acts, fmt.Sprintf("confirmed down %v", res.Down))
	}
	if len(res.Up) > 0 {
		acts = append(acts, fmt.Sprintf("confirmed up %v", res.Up))
	}
	if res.Replanned {
		path := "full solve"
		if res.UsedRegional {
			path = fmt.Sprintf("regional repair (%d dirty MATs, regions %v)",
				len(res.DirtyMATs), res.RegionsTouched)
		} else if res.UsedRepair {
			path = fmt.Sprintf("delta repair (%d dirty MATs)", len(res.DirtyMATs))
		}
		acts = append(acts, fmt.Sprintf("replanned via %s in %v",
			path, res.RecoveryTime.Round(time.Microsecond)))
	}
	if len(res.Shed) > 0 {
		acts = append(acts, fmt.Sprintf("shed %v", res.Shed))
	}
	if len(res.Restored) > 0 {
		acts = append(acts, fmt.Sprintf("restored %v", res.Restored))
	}
	return acts
}
