module github.com/hermes-net/hermes

go 1.22
