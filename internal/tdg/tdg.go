// Package tdg implements table dependency graphs (TDGs), the
// intermediate representation Hermes deploys (paper §IV).
//
// A TDG is a DAG whose nodes are MATs and whose directed edges are MAT
// dependencies. Each edge carries one of the four dependency types from
// Jose et al. [8] that the paper enumerates:
//
//	M — match dependency: b matches a field modified by a.
//	A — action dependency: a and b modify a common field.
//	R — reverse-match dependency: a matches a field modified by b
//	    (with a invoked before b).
//	S — successor dependency: a's result gates whether b executes.
//
// Edges additionally carry A(a,b), the number of metadata bytes that
// must be piggybacked on each packet when a and b land on different
// switches; the analyzer package fills that in per Algorithm 1.
package tdg

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hermes-net/hermes/internal/program"
)

// DepType is the type T(a,b) of a MAT dependency.
type DepType int

const (
	// DepMatch is a match dependency (M).
	DepMatch DepType = iota + 1
	// DepAction is an action dependency (A).
	DepAction
	// DepReverse is a reverse-match dependency (R).
	DepReverse
	// DepSuccessor is a successor dependency (S).
	DepSuccessor
)

// String returns the paper's single-letter name for the type.
func (d DepType) String() string {
	switch d {
	case DepMatch:
		return "M"
	case DepAction:
		return "A"
	case DepReverse:
		return "R"
	case DepSuccessor:
		return "S"
	default:
		return fmt.Sprintf("DepType(%d)", int(d))
	}
}

// Valid reports whether d is a defined dependency type.
func (d DepType) Valid() bool { return d >= DepMatch && d <= DepSuccessor }

// Node is one MAT in the TDG.
type Node struct {
	// MAT is the underlying table. Node identity is MAT.Name.
	MAT *program.MAT
	// Origin lists the names of the source programs this node serves;
	// merging appends to it when redundant MATs are unified.
	Origin []string
}

// Name returns the node's identity.
func (n *Node) Name() string { return n.MAT.Name }

// Edge is one dependency in the TDG.
type Edge struct {
	// From and To are MAT names; From is the upstream MAT.
	From string
	To   string
	// Type is T(a,b).
	Type DepType
	// MetadataBytes is A(a,b): the bytes of metadata delivered from
	// From to To when they are placed on different switches. Filled in
	// by the analyzer; zero until then (and always zero for R edges).
	MetadataBytes int
}

// Graph is a table dependency graph. The zero value is not usable; call
// New.
type Graph struct {
	nodes map[string]*Node
	// out and in are adjacency maps: out[from][to] = edge.
	out map[string]map[string]*Edge
	in  map[string]map[string]*Edge
	// list holds every edge in insertion order; the cheap iteration
	// surface for hot paths (sorting in Edges dominates profiles
	// otherwise).
	list []*Edge
	// order preserves node insertion order for deterministic iteration.
	order []string
	// mu guards the lazily-filled topo cache and the derived-result
	// memo, making read-only graph sharing safe across goroutines
	// (parallel candidate evaluation packs against one shared graph).
	// Mutations (AddNode/AddEdge/RemoveNode) remain single-goroutine
	// operations; only reads may run concurrently.
	mu sync.Mutex
	// topoCache memoizes TopoSort between mutations; topoErr holds the
	// cycle error when the last sort failed.
	topoCache []string
	topoPos   map[string]int
	topoErr   error
	topoValid bool
	// memo caches derived computations keyed by caller-chosen strings
	// (e.g. placement's stage-packing results). Cleared on mutation.
	memo map[string]any
}

// memoCap bounds the derived-result memo; on overflow the memo is
// cleared wholesale rather than evicted piecemeal.
const memoCap = 1 << 16

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		out:   make(map[string]map[string]*Edge),
		in:    make(map[string]map[string]*Edge),
	}
}

// AddNode inserts a MAT. It fails on duplicate names or nil MATs.
func (g *Graph) AddNode(m *program.MAT, origin ...string) error {
	if m == nil {
		return fmt.Errorf("tdg: nil MAT")
	}
	if _, ok := g.nodes[m.Name]; ok {
		return fmt.Errorf("tdg: duplicate node %q", m.Name)
	}
	g.nodes[m.Name] = &Node{MAT: m, Origin: append([]string(nil), origin...)}
	g.out[m.Name] = make(map[string]*Edge)
	g.in[m.Name] = make(map[string]*Edge)
	g.order = append(g.order, m.Name)
	g.invalidateDerived()
	return nil
}

// AddEdge inserts a dependency. If an edge From→To already exists, the
// stronger type wins (M > A > S > R) and metadata bytes are merged by
// maximum.
func (g *Graph) AddEdge(from, to string, typ DepType, metadataBytes int) error {
	if from == to {
		return fmt.Errorf("tdg: self edge on %q", from)
	}
	if !typ.Valid() {
		return fmt.Errorf("tdg: invalid dependency type %d", int(typ))
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("tdg: edge from unknown node %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("tdg: edge to unknown node %q", to)
	}
	if metadataBytes < 0 {
		return fmt.Errorf("tdg: negative metadata size on %q->%q", from, to)
	}
	if e, ok := g.out[from][to]; ok {
		if strength(typ) > strength(e.Type) {
			e.Type = typ
		}
		if metadataBytes > e.MetadataBytes {
			e.MetadataBytes = metadataBytes
		}
		return nil
	}
	e := &Edge{From: from, To: to, Type: typ, MetadataBytes: metadataBytes}
	g.out[from][to] = e
	g.in[to][from] = e
	g.list = append(g.list, e)
	g.invalidateDerived()
	return nil
}

// strength orders dependency types for edge merging: a match dependency
// subsumes an action dependency, which subsumes successor/reverse.
func strength(d DepType) int {
	switch d {
	case DepMatch:
		return 4
	case DepAction:
		return 3
	case DepSuccessor:
		return 2
	case DepReverse:
		return 1
	default:
		return 0
	}
}

// Node returns the named node.
func (g *Graph) Node(name string) (*Node, bool) {
	n, ok := g.nodes[name]
	return n, ok
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.list) }

// Nodes returns the nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, name := range g.order {
		out = append(out, g.nodes[name])
	}
	return out
}

// NodeNames returns node names in insertion order.
func (g *Graph) NodeNames() []string {
	return append([]string(nil), g.order...)
}

// Edges returns all edges sorted by (From, To) for determinism.
func (g *Graph) Edges() []*Edge {
	out := append([]*Edge(nil), g.list...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeList returns the edges in insertion order without copying or
// sorting. Callers must not modify the slice; use it on hot paths where
// Edges()'s sort would dominate.
func (g *Graph) EdgeList() []*Edge { return g.list }

// Edge returns the edge from → to.
func (g *Graph) Edge(from, to string) (*Edge, bool) {
	e, ok := g.out[from][to]
	return e, ok
}

// OutEdgeList returns the edges leaving the node in map order (not
// deterministic); use for hot paths where ordering does not matter.
func (g *Graph) OutEdgeList(name string) map[string]*Edge { return g.out[name] }

// InEdgeList returns the edges entering the node in map order (not
// deterministic); use for hot paths where ordering does not matter.
func (g *Graph) InEdgeList(name string) map[string]*Edge { return g.in[name] }

// OutEdges returns the edges leaving the node, sorted by target.
func (g *Graph) OutEdges(name string) []*Edge {
	m := g.out[name]
	out := make([]*Edge, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// InEdges returns the edges entering the node, sorted by source.
func (g *Graph) InEdges(name string) []*Edge {
	m := g.in[name]
	out := make([]*Edge, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// RemoveNode deletes a node and its incident edges.
func (g *Graph) RemoveNode(name string) error {
	if _, ok := g.nodes[name]; !ok {
		return fmt.Errorf("tdg: remove of unknown node %q", name)
	}
	for to := range g.out[name] {
		delete(g.in[to], name)
	}
	for from := range g.in[name] {
		delete(g.out[from], name)
	}
	delete(g.out, name)
	delete(g.in, name)
	delete(g.nodes, name)
	kept := g.list[:0]
	for _, e := range g.list {
		if e.From != name && e.To != name {
			kept = append(kept, e)
		}
	}
	g.list = kept
	g.invalidateDerived()
	for i, n := range g.order {
		if n == name {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return nil
}

// RedirectEdges moves every edge incident to old so it is incident to
// replacement instead, merging with existing edges; used when the
// merger unifies redundant MATs. Self-edges that would result are
// dropped.
func (g *Graph) RedirectEdges(old, replacement string) error {
	if _, ok := g.nodes[old]; !ok {
		return fmt.Errorf("tdg: redirect from unknown node %q", old)
	}
	if _, ok := g.nodes[replacement]; !ok {
		return fmt.Errorf("tdg: redirect to unknown node %q", replacement)
	}
	for to, e := range g.out[old] {
		if to == replacement {
			continue
		}
		if err := g.AddEdge(replacement, to, e.Type, e.MetadataBytes); err != nil {
			return err
		}
	}
	for from, e := range g.in[old] {
		if from == replacement {
			continue
		}
		if err := g.AddEdge(from, replacement, e.Type, e.MetadataBytes); err != nil {
			return err
		}
	}
	return nil
}

// TopoSort returns the node names in a topological order. Ties are
// broken by insertion order, giving deterministic output. It fails if
// the graph has a cycle. Reverse-match (R) edges still orient the order
// (a must precede b) but do not forbid co-location; they participate in
// sorting like the others.
func (g *Graph) TopoSort() ([]string, error) {
	cache, _, err := g.topoFill()
	if err != nil {
		return nil, err
	}
	return append([]string(nil), cache...), nil
}

// topoFill computes the topo cache on first use (under the lock, so
// concurrent readers race-freely share the lazy fill) and returns the
// shared cache, position map, and cycle error.
func (g *Graph) topoFill() ([]string, map[string]int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.topoValid {
		order, err := g.topoSortUncached()
		g.topoValid = true
		g.topoErr = err
		if err != nil {
			g.topoCache = nil
			g.topoPos = nil
		} else {
			g.topoCache = order
			g.topoPos = make(map[string]int, len(order))
			for i, n := range order {
				g.topoPos[n] = i
			}
		}
	}
	return g.topoCache, g.topoPos, g.topoErr
}

// TopoIndex returns each node's position in the cached topological
// order. The returned map is shared; callers must not modify it.
func (g *Graph) TopoIndex() (map[string]int, error) {
	_, pos, err := g.topoFill()
	if err != nil {
		return nil, err
	}
	return pos, nil
}

// invalidateDerived drops every lazily-derived result (topo cache and
// memo); called by every mutating operation.
func (g *Graph) invalidateDerived() {
	g.mu.Lock()
	g.topoValid = false
	g.topoErr = nil
	g.memo = nil
	g.mu.Unlock()
}

// Memo returns the derived value cached under key, if any. The memo is
// safe for concurrent use and cleared on any graph mutation; callers
// must treat stored values as immutable.
func (g *Graph) Memo(key string) (any, bool) {
	g.mu.Lock()
	v, ok := g.memo[key]
	g.mu.Unlock()
	return v, ok
}

// MemoSet stores a derived value under key. When the memo exceeds
// memoCap entries it is cleared wholesale before inserting.
func (g *Graph) MemoSet(key string, val any) {
	g.mu.Lock()
	if g.memo == nil || len(g.memo) >= memoCap {
		g.memo = make(map[string]any)
	}
	g.memo[key] = val
	g.mu.Unlock()
}

func (g *Graph) topoSortUncached() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for name := range g.nodes {
		indeg[name] = len(g.in[name])
	}
	// Ready queue ordered by insertion order.
	pos := make(map[string]int, len(g.order))
	for i, name := range g.order {
		pos[name] = i
	}
	var ready []string
	for _, name := range g.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	var out []string
	for len(ready) > 0 {
		// Pick the ready node with the smallest insertion index.
		best := 0
		for i := 1; i < len(ready); i++ {
			if pos[ready[i]] < pos[ready[best]] {
				best = i
			}
		}
		n := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, n)
		for to := range g.out[n] {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, fmt.Errorf("tdg: graph has a cycle (%d of %d nodes sorted)", len(out), len(g.nodes))
	}
	return out, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Graph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Levels assigns each node its longest-path depth from the sources
// (level 0). FFL/FFLS place MATs level by level.
func (g *Graph) Levels() (map[string]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	lvl := make(map[string]int, len(order))
	for _, n := range order {
		max := 0
		for from := range g.in[n] {
			if lvl[from]+1 > max {
				max = lvl[from] + 1
			}
		}
		lvl[n] = max
	}
	return lvl, nil
}

// TotalRequirement sums R(a) over all nodes under the given model.
func (g *Graph) TotalRequirement(rm program.ResourceModel) float64 {
	total := 0.0
	for _, n := range g.nodes {
		total += rm.Requirement(n.MAT)
	}
	return total
}

// Subgraph returns a new graph containing only the named nodes and the
// edges among them. Node structs are shared, not copied.
func (g *Graph) Subgraph(names []string) (*Graph, error) {
	sub := New()
	keep := make(map[string]bool, len(names))
	for _, name := range names {
		n, ok := g.nodes[name]
		if !ok {
			return nil, fmt.Errorf("tdg: subgraph of unknown node %q", name)
		}
		if err := sub.AddNode(n.MAT, n.Origin...); err != nil {
			return nil, err
		}
		keep[name] = true
	}
	for _, e := range g.Edges() {
		if keep[e.From] && keep[e.To] {
			if err := sub.AddEdge(e.From, e.To, e.Type, e.MetadataBytes); err != nil {
				return nil, err
			}
		}
	}
	return sub, nil
}

// Clone returns an independent copy of the graph (sharing MAT structs).
func (g *Graph) Clone() *Graph {
	c, err := g.Subgraph(g.order)
	if err != nil {
		// Subgraph over our own node list cannot fail.
		panic("tdg: clone failed: " + err.Error())
	}
	return c
}

// CutBytes sums A(a,b) over edges whose tail is in from and whose head
// is in to. The greedy splitter minimizes this quantity.
func (g *Graph) CutBytes(from, to map[string]bool) int {
	total := 0
	for name := range from {
		for t, e := range g.out[name] {
			if to[t] {
				total += e.MetadataBytes
			}
		}
	}
	return total
}

// DOT renders the graph in Graphviz format for debugging.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph tdg {\n  rankdir=LR;\n")
	for _, name := range g.order {
		fmt.Fprintf(&b, "  %q;\n", name)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s/%dB\"];\n", e.From, e.To, e.Type, e.MetadataBytes)
	}
	b.WriteString("}\n")
	return b.String()
}
