package tdg

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
)

// FromProgram converts a program into its TDG, inferring dependencies
// between every pair of MATs from their field read/write sets following
// the paper's T(a,b) definitions (§IV):
//
//	M — b reads (matches or uses as an action source) a field modified
//	    by a (f ∈ F_a^a ∩ reads(b)),
//	A — a and b modify a common field (f ∈ F_a^a ∩ F_b^a),
//	R — a reads a field modified by b (f ∈ reads(a) ∩ F_b^a),
//	S — an explicit control edge a→b without a stronger dependency.
//
// Pairs are oriented by declaration order: the earlier MAT is upstream.
// Edge metadata sizes are left zero; the analyzer fills them in.
//
// The paper stands on P4C [41] for this step; this function plays that
// role for our in-Go program representation.
func FromProgram(p *program.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("tdg: %w", err)
	}
	g := New()
	for _, m := range p.MATs {
		if err := g.AddNode(m, p.Name); err != nil {
			return nil, err
		}
	}

	type sets struct {
		// reads is the full read set: match keys plus action sources.
		// Action-source reads induce match dependencies too — the value
		// must reach the downstream MAT's switch just like a matched
		// field (Jose et al. fold both into the match-dependency rule).
		reads, modified fields.Set
	}
	cache := make(map[string]sets, len(p.MATs))
	for _, m := range p.MATs {
		rf, err := m.ReadFields()
		if err != nil {
			return nil, fmt.Errorf("tdg: %w", err)
		}
		wf, err := m.ModifiedFields()
		if err != nil {
			return nil, fmt.Errorf("tdg: %w", err)
		}
		cache[m.Name] = sets{reads: rf, modified: wf}
	}

	// Enumerate ordered pairs (a before b in declaration order), the
	// same enumeration §I describes ("enumerates every pair of MATs").
	for i := 0; i < len(p.MATs); i++ {
		a := p.MATs[i]
		sa := cache[a.Name]
		for j := i + 1; j < len(p.MATs); j++ {
			b := p.MATs[j]
			sb := cache[b.Name]
			switch {
			case sa.modified.Overlaps(sb.reads):
				if err := g.AddEdge(a.Name, b.Name, DepMatch, 0); err != nil {
					return nil, err
				}
			case sa.modified.Overlaps(sb.modified):
				if err := g.AddEdge(a.Name, b.Name, DepAction, 0); err != nil {
					return nil, err
				}
			case sa.reads.Overlaps(sb.modified):
				if err := g.AddEdge(a.Name, b.Name, DepReverse, 0); err != nil {
					return nil, err
				}
			}
		}
	}

	// Explicit control-flow edges become successor dependencies unless a
	// stronger data dependency already connects the pair (AddEdge keeps
	// the stronger type).
	for _, e := range p.Control {
		if err := g.AddEdge(e.From, e.To, DepSuccessor, 0); err != nil {
			return nil, err
		}
	}

	if !g.IsDAG() {
		return nil, fmt.Errorf("tdg: program %q induces a cyclic TDG", p.Name)
	}
	return g, nil
}
