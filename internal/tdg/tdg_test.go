package tdg

import (
	"strings"
	"testing"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
)

func mat(t *testing.T, name string) *program.MAT {
	t.Helper()
	m := &program.MAT{
		Name:     name,
		Capacity: 16,
		Actions: []program.Action{{
			Name: "noop",
			Ops:  []program.Op{program.SetOp(fields.Metadata("meta."+name, 8), 0)},
		}},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("test MAT invalid: %v", err)
	}
	return m
}

// chain builds a graph a->b->c->... with the given per-edge bytes.
func chain(t *testing.T, names []string, bytes []int) *Graph {
	t.Helper()
	g := New()
	for _, n := range names {
		if err := g.AddNode(mat(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(names); i++ {
		if err := g.AddEdge(names[i], names[i+1], DepMatch, bytes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeAndEdgeErrors(t *testing.T) {
	g := New()
	if err := g.AddNode(nil); err == nil {
		t.Error("AddNode(nil) succeeded")
	}
	m := mat(t, "a")
	if err := g.AddNode(m); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(m); err == nil {
		t.Error("duplicate AddNode succeeded")
	}
	if err := g.AddEdge("a", "a", DepMatch, 0); err == nil {
		t.Error("self edge succeeded")
	}
	if err := g.AddEdge("a", "zz", DepMatch, 0); err == nil {
		t.Error("edge to unknown node succeeded")
	}
	if err := g.AddEdge("zz", "a", DepMatch, 0); err == nil {
		t.Error("edge from unknown node succeeded")
	}
	if err := g.AddNode(mat(t, "b")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b", DepType(0), 0); err == nil {
		t.Error("invalid dep type succeeded")
	}
	if err := g.AddEdge("a", "b", DepMatch, -1); err == nil {
		t.Error("negative metadata succeeded")
	}
}

func TestEdgeMergeKeepsStrongerTypeAndMaxBytes(t *testing.T) {
	g := chain(t, []string{"a", "b"}, []int{4})
	// Re-adding with a weaker type and smaller size must not downgrade.
	if err := g.AddEdge("a", "b", DepSuccessor, 2); err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("a", "b")
	if !ok {
		t.Fatal("edge missing")
	}
	if e.Type != DepMatch || e.MetadataBytes != 4 {
		t.Errorf("edge = %v/%d, want M/4", e.Type, e.MetadataBytes)
	}
	// A larger size upgrades bytes; a stronger type would upgrade type.
	if err := g.AddEdge("a", "b", DepAction, 9); err != nil {
		t.Fatal(err)
	}
	if e.Type != DepMatch || e.MetadataBytes != 9 {
		t.Errorf("edge = %v/%d, want M/9", e.Type, e.MetadataBytes)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestTopoSortDeterministicAndComplete(t *testing.T) {
	g := New()
	for _, n := range []string{"c", "a", "b", "d"} {
		if err := g.AddNode(mat(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	// d -> a, d -> b; c independent.
	if err := g.AddEdge("d", "a", DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("d", "b", DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	posOf := map[string]int{}
	for i, n := range order {
		posOf[n] = i
	}
	if posOf["d"] > posOf["a"] || posOf["d"] > posOf["b"] {
		t.Errorf("topological violation: %v", order)
	}
	// Ties break by insertion order: c precedes d among sources.
	if order[0] != "c" {
		t.Errorf("order[0] = %q, want c (insertion-order tiebreak)", order[0])
	}
	// Determinism.
	for i := 0; i < 5; i++ {
		again, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for j := range order {
			if again[j] != order[j] {
				t.Fatalf("TopoSort not deterministic: %v vs %v", order, again)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := chain(t, []string{"a", "b", "c"}, []int{1, 1})
	if !g.IsDAG() {
		t.Fatal("chain should be a DAG")
	}
	if err := g.AddEdge("c", "a", DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	if g.IsDAG() {
		t.Error("cycle not detected")
	}
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort succeeded on cyclic graph")
	}
	if _, err := g.Levels(); err == nil {
		t.Error("Levels succeeded on cyclic graph")
	}
}

func TestLevels(t *testing.T) {
	//    a -> b -> d
	//    a -> c ----^
	g := New()
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(mat(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if err := g.AddEdge(e[0], e[1], DepMatch, 1); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 0, "b": 1, "c": 1, "d": 2}
	for n, w := range want {
		if lvl[n] != w {
			t.Errorf("level[%s] = %d, want %d", n, lvl[n], w)
		}
	}
}

func TestRemoveNode(t *testing.T) {
	g := chain(t, []string{"a", "b", "c"}, []int{1, 2})
	if err := g.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Errorf("after remove: %d nodes, %d edges; want 2, 0", g.NumNodes(), g.NumEdges())
	}
	if err := g.RemoveNode("zz"); err == nil {
		t.Error("RemoveNode of unknown node succeeded")
	}
	names := g.NodeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "c" {
		t.Errorf("NodeNames = %v, want [a c]", names)
	}
}

func TestRedirectEdges(t *testing.T) {
	// a -> old -> c, plus replacement node; redirect old's edges onto
	// replacement and remove old: a -> repl -> c must hold.
	g := New()
	for _, n := range []string{"a", "old", "c", "repl"} {
		if err := g.AddNode(mat(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "old", DepMatch, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("old", "c", DepAction, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.RedirectEdges("old", "repl"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode("old"); err != nil {
		t.Fatal(err)
	}
	if e, ok := g.Edge("a", "repl"); !ok || e.Type != DepMatch || e.MetadataBytes != 3 {
		t.Errorf("a->repl edge wrong: %+v ok=%v", e, ok)
	}
	if e, ok := g.Edge("repl", "c"); !ok || e.Type != DepAction || e.MetadataBytes != 5 {
		t.Errorf("repl->c edge wrong: %+v ok=%v", e, ok)
	}
	if err := g.RedirectEdges("gone", "repl"); err == nil {
		t.Error("RedirectEdges from unknown node succeeded")
	}
}

func TestSubgraphAndClone(t *testing.T) {
	g := chain(t, []string{"a", "b", "c", "d"}, []int{1, 2, 3})
	sub, err := g.Subgraph([]string{"b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Errorf("subgraph: %d nodes %d edges, want 2/1", sub.NumNodes(), sub.NumEdges())
	}
	if _, err := g.Subgraph([]string{"zz"}); err == nil {
		t.Error("Subgraph of unknown node succeeded")
	}
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Error("clone shape mismatch")
	}
	if err := c.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Error("mutating clone affected original")
	}
}

func TestCutBytes(t *testing.T) {
	g := chain(t, []string{"a", "b", "c"}, []int{4, 7})
	from := map[string]bool{"a": true}
	to := map[string]bool{"b": true, "c": true}
	if got := g.CutBytes(from, to); got != 4 {
		t.Errorf("CutBytes = %d, want 4", got)
	}
	from = map[string]bool{"a": true, "b": true}
	to = map[string]bool{"c": true}
	if got := g.CutBytes(from, to); got != 7 {
		t.Errorf("CutBytes = %d, want 7", got)
	}
	if got := g.CutBytes(nil, nil); got != 0 {
		t.Errorf("CutBytes(nil,nil) = %d, want 0", got)
	}
}

func TestDOTOutput(t *testing.T) {
	g := chain(t, []string{"a", "b"}, []int{4})
	dot := g.DOT()
	for _, want := range []string{"digraph", `"a" -> "b"`, "M/4B"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestTotalRequirement(t *testing.T) {
	g := chain(t, []string{"a", "b"}, []int{1})
	for _, n := range g.Nodes() {
		n.MAT.FixedRequirement = 0.25
	}
	if got := g.TotalRequirement(program.DefaultResourceModel); got != 0.5 {
		t.Errorf("TotalRequirement = %g, want 0.5", got)
	}
}

func TestDepTypeStrings(t *testing.T) {
	got := []string{DepMatch.String(), DepAction.String(), DepReverse.String(), DepSuccessor.String()}
	want := []string{"M", "A", "R", "S"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DepType string %d = %q, want %q", i, got[i], want[i])
		}
	}
	if DepType(0).Valid() || DepType(5).Valid() {
		t.Error("invalid DepType reported valid")
	}
}

// --- inference tests ---

func inferProgram(t *testing.T) *program.Program {
	t.Helper()
	idx := fields.Metadata("meta.idx", 32)
	cnt := fields.Metadata("meta.cnt", 32)
	heavy := fields.Metadata("meta.heavy", 8)
	src := fields.Header("ipv4.srcAddr", 32)

	return program.NewBuilder("p").
		Table("hash", 1). // writes idx
		ActionDef("h", program.HashOp(idx, src)).
		Table("count", 1024). // matches idx, writes cnt
		Key(idx, program.MatchExact).
		ActionDef("c", program.CountOp(cnt, idx)).
		Table("mark", 8). // matches cnt, writes heavy
		Key(cnt, program.MatchRange).
		ActionDef("m", program.SetOp(heavy, 1)).
		Table("log", 8). // gated by mark via control edge, writes own field
		ActionDef("l", program.SetOp(fields.Metadata("meta.log", 8), 1)).
		Gate("mark", "log").
		MustBuild()
}

func TestFromProgramInfersDependencyTypes(t *testing.T) {
	g, err := FromProgram(inferProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	tests := []struct {
		from, to string
		typ      DepType
	}{
		{"p/hash", "p/count", DepMatch},   // count matches idx written by hash
		{"p/count", "p/mark", DepMatch},   // mark matches cnt written by count
		{"p/mark", "p/log", DepSuccessor}, // explicit gate
	}
	for _, tt := range tests {
		e, ok := g.Edge(tt.from, tt.to)
		if !ok {
			t.Errorf("missing edge %s->%s", tt.from, tt.to)
			continue
		}
		if e.Type != tt.typ {
			t.Errorf("edge %s->%s type = %v, want %v", tt.from, tt.to, e.Type, tt.typ)
		}
	}
	// hash also *reads* idx? No: hash writes idx and count reads it as
	// both key and action source, so hash->count must not be Reverse.
	if e, _ := g.Edge("p/hash", "p/count"); e != nil && e.Type == DepReverse {
		t.Error("hash->count wrongly classified reverse")
	}
}

func TestFromProgramActionDependency(t *testing.T) {
	shared := fields.Metadata("meta.shared", 16)
	p := program.NewBuilder("p").
		Table("w1", 1).
		ActionDef("a", program.SetOp(shared, 1)).
		Table("w2", 1).
		ActionDef("b", program.SetOp(shared, 2)).
		MustBuild()
	g, err := FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/w1", "p/w2")
	if !ok || e.Type != DepAction {
		t.Errorf("w1->w2 = %+v ok=%v, want action dependency", e, ok)
	}
}

func TestFromProgramReverseDependency(t *testing.T) {
	f := fields.Metadata("meta.f", 16)
	p := program.NewBuilder("p").
		Table("reader", 8). // matches f
		Key(f, program.MatchExact).
		ActionDef("r", program.SetOp(fields.Metadata("meta.other", 8), 0)).
		Table("writer", 8). // writes f afterwards
		ActionDef("w", program.SetOp(f, 1)).
		MustBuild()
	g, err := FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/reader", "p/writer")
	if !ok || e.Type != DepReverse {
		t.Errorf("reader->writer = %+v ok=%v, want reverse dependency", e, ok)
	}
}

func TestFromProgramMatchBeatsActionAndGate(t *testing.T) {
	f := fields.Metadata("meta.f", 16)
	p := program.NewBuilder("p").
		Table("up", 8). // writes f
		ActionDef("w", program.SetOp(f, 1)).
		Table("down", 8). // matches f AND writes f
		Key(f, program.MatchExact).
		ActionDef("w2", program.SetOp(f, 2)).
		Gate("up", "down").
		MustBuild()
	g, err := FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/up", "p/down")
	if !ok || e.Type != DepMatch {
		t.Errorf("up->down = %+v ok=%v, want match dependency to win", e, ok)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (merged)", g.NumEdges())
	}
}

func TestFromProgramIndependentTables(t *testing.T) {
	p := program.NewBuilder("p").
		Table("t1", 8).
		Key(fields.Header("ipv4.srcAddr", 32), program.MatchExact).
		ActionDef("a", program.SetOp(fields.Metadata("meta.x", 8), 1)).
		Table("t2", 8).
		Key(fields.Header("ipv4.dstAddr", 32), program.MatchExact).
		ActionDef("b", program.SetOp(fields.Metadata("meta.y", 8), 1)).
		MustBuild()
	g, err := FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("independent tables produced %d edges", g.NumEdges())
	}
}

func TestFromProgramRejectsInvalid(t *testing.T) {
	if _, err := FromProgram(&program.Program{Name: "x"}); err == nil {
		t.Error("FromProgram accepted invalid program")
	}
}

func TestFromProgramActionSourceRead(t *testing.T) {
	// Downstream reads the upstream's output only as an action source
	// (not as a match key): still a match dependency, because the value
	// must reach the downstream switch.
	ts := fields.Metadata("meta.ts", 96)
	out := fields.Metadata("meta.report", 32)
	p := program.NewBuilder("p").
		Table("stamp", 4).
		ActionDef("s", program.SetOp(ts, 0)).
		Table("export", 4).
		Key(fields.Header("ipv4.srcAddr", 32), program.MatchExact).
		ActionDef("e", program.CopyOp(out, ts)).
		MustBuild()
	g, err := FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/stamp", "p/export")
	if !ok {
		t.Fatal("action-source read produced no dependency")
	}
	if e.Type != DepMatch {
		t.Errorf("type = %v, want M", e.Type)
	}
}

func TestEdgeListAndTopoIndex(t *testing.T) {
	g := chain(t, []string{"a", "b", "c"}, []int{1, 2})
	if len(g.EdgeList()) != 2 {
		t.Fatalf("EdgeList = %d edges", len(g.EdgeList()))
	}
	idx, err := g.TopoIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !(idx["a"] < idx["b"] && idx["b"] < idx["c"]) {
		t.Errorf("TopoIndex not topological: %v", idx)
	}
	// The cache must invalidate on mutation.
	if err := g.AddNode(mat(t, "z")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("z", "a", DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	idx2, err := g.TopoIndex()
	if err != nil {
		t.Fatal(err)
	}
	if !(idx2["z"] < idx2["a"]) {
		t.Errorf("TopoIndex stale after mutation: %v", idx2)
	}
	// Cycle invalidates the cache with an error both times.
	if err := g.AddEdge("c", "z", DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoIndex(); err == nil {
		t.Error("TopoIndex of cyclic graph succeeded")
	}
	if _, err := g.TopoSort(); err == nil {
		t.Error("cached TopoSort of cyclic graph succeeded")
	}
}

func TestUnsortedAdjacencyAccessors(t *testing.T) {
	g := chain(t, []string{"a", "b", "c"}, []int{1, 2})
	if len(g.OutEdgeList("a")) != 1 || len(g.InEdgeList("b")) != 1 {
		t.Error("unsorted adjacency sizes wrong")
	}
	if len(g.OutEdgeList("c")) != 0 {
		t.Error("sink has out edges")
	}
	// RemoveNode keeps the edge list consistent.
	if err := g.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || len(g.EdgeList()) != 0 {
		t.Error("edge list stale after RemoveNode")
	}
}
