package dataplane

import (
	"fmt"
	"math/rand"

	"github.com/hermes-net/hermes/internal/fields"
)

// FlowKey identifies a 5-tuple flow in generated traffic.
type FlowKey struct {
	Src, Dst         uint64
	SrcPort, DstPort uint64
	Proto            uint64
}

// TrafficSpec configures the synthetic workload generator. Flow
// popularity follows a Zipf distribution, matching the heavy-tailed
// traffic the paper's measurement workloads (sketches, heavy-hitter
// detection) are built for.
type TrafficSpec struct {
	// Packets is the total packet count.
	Packets int
	// Flows is the number of distinct flows.
	Flows int
	// Skew is the Zipf s parameter (>1); higher concentrates traffic
	// on fewer flows. Default 1.2.
	Skew float64
	// Seed drives the generator.
	Seed int64
}

func (s TrafficSpec) withDefaults() TrafficSpec {
	if s.Skew == 0 {
		s.Skew = 1.2
	}
	return s
}

// Validate checks the spec.
func (s TrafficSpec) Validate() error {
	s = s.withDefaults()
	if s.Packets <= 0 {
		return fmt.Errorf("dataplane: non-positive packet count %d", s.Packets)
	}
	if s.Flows <= 0 {
		return fmt.Errorf("dataplane: non-positive flow count %d", s.Flows)
	}
	if s.Skew <= 1 {
		return fmt.Errorf("dataplane: zipf skew must exceed 1, got %g", s.Skew)
	}
	return nil
}

// Generate produces the packet stream and the exact per-flow ground
// truth counts.
func (s TrafficSpec) Generate() ([]*Packet, map[FlowKey]uint64, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	zipf := rand.NewZipf(rng, s.Skew, 1, uint64(s.Flows-1))
	if zipf == nil {
		return nil, nil, fmt.Errorf("dataplane: invalid zipf parameters")
	}

	// Materialize the flow population.
	flows := make([]FlowKey, s.Flows)
	for i := range flows {
		flows[i] = FlowKey{
			Src:     uint64(0x0A000000 + rng.Intn(1<<16)),
			Dst:     uint64(0x0B000000 + rng.Intn(1<<12)),
			SrcPort: uint64(1024 + rng.Intn(60000)),
			DstPort: uint64(rng.Intn(1024)),
			Proto:   6,
		}
	}

	packets := make([]*Packet, 0, s.Packets)
	truth := make(map[FlowKey]uint64, s.Flows)
	for i := 0; i < s.Packets; i++ {
		f := flows[zipf.Uint64()]
		truth[f]++
		packets = append(packets, &Packet{Headers: map[string]uint64{
			fields.IPv4Src:   f.Src,
			fields.IPv4Dst:   f.Dst,
			fields.TCPSrc:    f.SrcPort,
			fields.TCPDst:    f.DstPort,
			fields.IPv4Proto: f.Proto,
			fields.IPv4TTL:   64,
		}})
	}
	return packets, truth, nil
}
