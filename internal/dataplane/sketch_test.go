package dataplane

import (
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

func TestTrafficSpecValidation(t *testing.T) {
	tests := []struct {
		name string
		spec TrafficSpec
		ok   bool
	}{
		{"valid", TrafficSpec{Packets: 10, Flows: 3}, true},
		{"zero packets", TrafficSpec{Flows: 3}, false},
		{"zero flows", TrafficSpec{Packets: 10}, false},
		{"bad skew", TrafficSpec{Packets: 10, Flows: 3, Skew: 0.5}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := tt.spec.Generate()
			if (err == nil) != tt.ok {
				t.Errorf("Generate err = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestTrafficIsZipfSkewedAndDeterministic(t *testing.T) {
	spec := TrafficSpec{Packets: 5000, Flows: 200, Seed: 3}
	pkts, truth, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 5000 {
		t.Fatalf("packets = %d", len(pkts))
	}
	total := uint64(0)
	max := uint64(0)
	for _, c := range truth {
		total += c
		if c > max {
			max = c
		}
	}
	if total != 5000 {
		t.Errorf("ground truth sums to %d", total)
	}
	// Zipf: the top flow should dominate well beyond uniform share.
	if max < 5000/uint64(len(truth))*5 {
		t.Errorf("top flow count %d not heavy-tailed", max)
	}
	// Determinism.
	pkts2, truth2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts2) != len(pkts) || len(truth2) != len(truth) {
		t.Error("regeneration differs")
	}
	for k, v := range truth {
		if truth2[k] != v {
			t.Fatalf("flow %v count %d vs %d across equal seeds", k, v, truth2[k])
		}
	}
}

// TestDistributedSketchAccuracy deploys the heavy-hitter program over
// two switches and checks that the distributed flow counter matches
// single-box semantics while estimating true counts with the usual
// hash-collision error: a full measurement-application workout of the
// simulator.
func TestDistributedSketchAccuracy(t *testing.T) {
	prog := workload.HeavyHitter()
	g, err := analyzer.Analyze([]*program.Program{prog}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("tb")
	for i := 0; i < 2; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 3, StageCapacity: 0.2,
			TransitLatency: time.Microsecond,
		})
	}
	if err := tp.AddLink(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.QOcc() != 2 {
		t.Fatalf("test expects a 2-switch split, got %d", plan.QOcc())
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}

	pkts, truth, err := TrafficSpec{Packets: 3000, Flows: 64, Seed: 7}.Generate()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(dep)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReferenceEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	// estimates[flow] is the last observed count for the flow, which for
	// a per-flow counter equals its final count (modulo collisions).
	estimate := map[FlowKey]uint64{}
	for i, p := range pkts {
		dres, err := eng.Process(p.Clone())
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		rres, err := ref.Process(p.Clone())
		if err != nil {
			t.Fatalf("reference packet %d: %v", i, err)
		}
		if dres.Writes["meta.count"] != rres.Writes["meta.count"] {
			t.Fatalf("packet %d: distributed count %d != reference %d",
				i, dres.Writes["meta.count"], rres.Writes["meta.count"])
		}
		key := FlowKey{
			Src:     p.Headers[fields.IPv4Src],
			Dst:     p.Headers[fields.IPv4Dst],
			SrcPort: p.Headers[fields.TCPSrc],
			DstPort: p.Headers[fields.TCPDst],
			Proto:   p.Headers[fields.IPv4Proto],
		}
		estimate[key] = dres.Writes["meta.count"]
	}
	// Hash counters can only overestimate (collisions merge flows).
	overestimates := 0
	for flow, est := range estimate {
		if est < truth[flow] {
			t.Errorf("flow %v estimated %d < true %d (counters cannot undercount)",
				flow, est, truth[flow])
		}
		if est > truth[flow] {
			overestimates++
		}
	}
	// With 64 flows over 4096 slots collisions are rare but possible;
	// the estimate must be exact for the vast majority.
	if overestimates > len(estimate)/4 {
		t.Errorf("%d of %d flows overestimated; collision rate implausible", overestimates, len(estimate))
	}
}
