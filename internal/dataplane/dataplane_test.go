package dataplane

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// measurementProgram is a realistic three-stage pipeline: hash the
// 5-tuple into an index, count by index, and flag heavy hitters by a
// range match on the count.
func measurementProgram(t testing.TB) *program.Program {
	t.Helper()
	idx := fields.Metadata("meta.idx", 32)
	cnt := fields.Metadata("meta.cnt", 32)
	heavy := fields.Metadata("meta.heavy", 8)
	src := fields.Header(fields.IPv4Src, 32)
	dst := fields.Header(fields.IPv4Dst, 32)

	return program.NewBuilder("hh").
		Table("hash", 1).
		ActionDef("mix", program.HashOp(idx, src, dst)).
		Default("mix").
		Table("count", 4096).
		Key(idx, program.MatchExact).
		ActionDef("bump", program.CountOp(cnt, idx)).
		Default("bump").
		Table("mark", 4).
		Key(cnt, program.MatchRange).
		ActionDef("flag", program.SetOp(heavy, 1)).
		ActionDef("clear", program.SetOp(heavy, 0)).
		Default("clear").
		Rule(program.Rule{
			Priority: 10,
			Matches:  map[string]program.Pattern{"meta.cnt": {Lo: 3, Hi: 1 << 30}},
			Action:   "flag",
		}).
		MustBuild()
}

// deployOnTestbed analyzes the program, deploys it with Hermes on a
// small testbed forcing a multi-switch split, and compiles it.
func deployOnTestbed(t testing.TB) *deploy.Deployment {
	t.Helper()
	g, err := analyzer.Analyze([]*program.Program{measurementProgram(t)}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Force every MAT onto its own switch: 1 stage each, tight capacity.
	rm := program.DefaultResourceModel
	tp := network.NewTopology("testbed")
	for i := 0; i < 3; i++ {
		tp.AddSwitch(network.Switch{
			Programmable:   true,
			Stages:         1,
			StageCapacity:  0.5,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < 2; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(rm, 0, 0); err != nil {
		t.Fatal(err)
	}
	if plan.QOcc() < 2 {
		t.Fatalf("test expects a multi-switch deployment, got %d switches", plan.QOcc())
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Verify(); err != nil {
		t.Fatal(err)
	}
	return dep
}

func randomPackets(n int, seed int64) []*Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Packet, n)
	for i := range out {
		out[i] = &Packet{Headers: map[string]uint64{
			fields.IPv4Src: uint64(rng.Intn(8)), // few flows so counts climb
			fields.IPv4Dst: uint64(rng.Intn(4)),
		}}
	}
	return out
}

func TestDistributedMatchesReference(t *testing.T) {
	dep := deployOnTestbed(t)
	maxHdr, err := EquivalentRuns(dep, randomPackets(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if maxHdr <= 0 {
		t.Error("multi-switch deployment reported zero header bytes")
	}
	// The measured on-wire header must never exceed the plan's A_max.
	if maxHdr > dep.Plan.AMax() {
		t.Errorf("measured header %dB exceeds planned A_max %dB", maxHdr, dep.Plan.AMax())
	}
}

func TestHeavyHitterFlagging(t *testing.T) {
	dep := deployOnTestbed(t)
	eng, err := NewEngine(dep)
	if err != nil {
		t.Fatal(err)
	}
	// Send the same flow 5 times; the 3rd packet onward must be heavy.
	var lastHeavy uint64
	for i := 0; i < 5; i++ {
		pkt := &Packet{Headers: map[string]uint64{fields.IPv4Src: 1, fields.IPv4Dst: 2}}
		res, err := eng.Process(pkt)
		if err != nil {
			t.Fatal(err)
		}
		lastHeavy = res.Writes["meta.heavy"]
		if i < 2 && lastHeavy != 0 {
			t.Errorf("packet %d flagged heavy too early", i)
		}
	}
	if lastHeavy != 1 {
		t.Error("5th packet of the flow not flagged heavy")
	}
}

func TestMissingHeaderFieldIsDetected(t *testing.T) {
	dep := deployOnTestbed(t)
	// Sabotage: remove every coordination header so downstream reads of
	// upstream metadata must fail.
	for key := range dep.Headers {
		hdr := dep.Headers[key]
		hdr.Fields = nil
		hdr.Bytes = 0
		dep.Headers[key] = hdr
	}
	for _, cfg := range dep.Configs {
		for to := range cfg.Exports {
			cfg.Exports[to] = deploy.CoordHeader{}
		}
		for from := range cfg.Imports {
			cfg.Imports[from] = deploy.CoordHeader{}
		}
	}
	_, err := EquivalentRuns(dep, randomPackets(3, 2))
	if err == nil {
		t.Fatal("stripped coordination headers went undetected")
	}
}

func TestReferenceEngineCounts(t *testing.T) {
	g, err := analyzer.Analyze([]*program.Program{measurementProgram(t)}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReferenceEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		res, err := ref.Process(&Packet{Headers: map[string]uint64{fields.IPv4Src: 9, fields.IPv4Dst: 9}})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Writes["meta.cnt"]; got != uint64(i) {
			t.Errorf("count after %d packets = %d", i, got)
		}
	}
}

func TestMatchKinds(t *testing.T) {
	exec := newMATExecutor()
	mk := func(typ program.MatchType, pat program.Pattern, v uint64) bool {
		f := fields.Header("h", 32)
		m := &program.MAT{
			Name:     "t",
			Capacity: 4,
			Keys:     []program.MatchKey{{Field: f, Type: typ}},
			Actions: []program.Action{{Name: "hit", Ops: []program.Op{
				program.SetOp(fields.Metadata("meta.hit", 8), 1)}}},
			Rules: []program.Rule{{Matches: map[string]program.Pattern{"h": pat}, Action: "hit"}},
		}
		pkt := &Packet{Headers: map[string]uint64{"h": v}}
		ctx := newContext(pkt)
		if err := exec.execute(m, ctx, map[string]bool{}); err != nil {
			t.Fatal(err)
		}
		return ctx.meta["meta.hit"] == 1
	}
	tests := []struct {
		name string
		typ  program.MatchType
		pat  program.Pattern
		v    uint64
		want bool
	}{
		{"exact hit", program.MatchExact, program.Pattern{Value: 7}, 7, true},
		{"exact miss", program.MatchExact, program.Pattern{Value: 7}, 8, false},
		{"lpm hit", program.MatchLPM, program.Pattern{Value: 0x0A000000, PrefixLen: 8}, 0x0A0B0C0D, true},
		{"lpm miss", program.MatchLPM, program.Pattern{Value: 0x0A000000, PrefixLen: 8}, 0x0B000000, false},
		{"lpm zero prefix", program.MatchLPM, program.Pattern{}, 12345, true},
		{"ternary hit", program.MatchTernary, program.Pattern{Value: 0xF0, Mask: 0xF0}, 0xF7, true},
		{"ternary miss", program.MatchTernary, program.Pattern{Value: 0xF0, Mask: 0xF0}, 0x17, false},
		{"range hit", program.MatchRange, program.Pattern{Lo: 5, Hi: 10}, 7, true},
		{"range edge lo", program.MatchRange, program.Pattern{Lo: 5, Hi: 10}, 5, true},
		{"range miss", program.MatchRange, program.Pattern{Lo: 5, Hi: 10}, 11, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := mk(tt.typ, tt.pat, tt.v); got != tt.want {
				t.Errorf("match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRulePriorityOrder(t *testing.T) {
	exec := newMATExecutor()
	f := fields.Header("h", 16)
	out := fields.Metadata("meta.out", 16)
	m := &program.MAT{
		Name:     "t",
		Capacity: 4,
		Keys:     []program.MatchKey{{Field: f, Type: program.MatchTernary}},
		Actions: []program.Action{{Name: "set", Ops: []program.Op{
			program.SetOp(out, 0)}}},
		Rules: []program.Rule{
			{Priority: 1, Matches: map[string]program.Pattern{"h": {Value: 0, Mask: 0}}, Action: "set", Params: map[string]uint64{"meta.out": 100}},
			{Priority: 9, Matches: map[string]program.Pattern{"h": {Value: 5, Mask: 0xFFFF}}, Action: "set", Params: map[string]uint64{"meta.out": 200}},
		},
	}
	pkt := &Packet{Headers: map[string]uint64{"h": 5}}
	ctx := newContext(pkt)
	if err := exec.execute(m, ctx, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	if ctx.meta["meta.out"] != 200 {
		t.Errorf("high-priority rule lost: out = %d", ctx.meta["meta.out"])
	}
	// A non-matching packet falls through to the catch-all.
	pkt2 := &Packet{Headers: map[string]uint64{"h": 6}}
	ctx2 := newContext(pkt2)
	if err := exec.execute(m, ctx2, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	if ctx2.meta["meta.out"] != 100 {
		t.Errorf("catch-all rule not applied: out = %d", ctx2.meta["meta.out"])
	}
}

func TestOpSemantics(t *testing.T) {
	exec := newMATExecutor()
	run := func(ops []program.Op, pkt *Packet) *context {
		m := &program.MAT{
			Name: "t", Capacity: 1,
			Actions:       []program.Action{{Name: "a", Ops: ops}},
			DefaultAction: "a",
		}
		ctx := newContext(pkt)
		if err := exec.execute(m, ctx, map[string]bool{}); err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	t.Run("set masks to width", func(t *testing.T) {
		out := fields.Metadata("meta.x", 8)
		ctx := run([]program.Op{program.SetOp(out, 0x1FF)}, &Packet{Headers: map[string]uint64{}})
		if ctx.meta["meta.x"] != 0xFF {
			t.Errorf("x = %#x, want 0xFF", ctx.meta["meta.x"])
		}
	})
	t.Run("copy and add", func(t *testing.T) {
		src := fields.Header("h", 16)
		a := fields.Metadata("meta.a", 16)
		ops := []program.Op{
			program.CopyOp(a, src),
			program.AddOp(a, src, 3),
		}
		ctx := run(ops, &Packet{Headers: map[string]uint64{"h": 10}})
		if ctx.meta["meta.a"] != 23 {
			t.Errorf("a = %d, want 23", ctx.meta["meta.a"])
		}
	})
	t.Run("decrement saturates", func(t *testing.T) {
		ttl := fields.Header("ttl", 8)
		ctx := run([]program.Op{program.DecOp(ttl, 1)}, &Packet{Headers: map[string]uint64{"ttl": 0}})
		_ = ctx
	})
	t.Run("hash deterministic", func(t *testing.T) {
		h := fields.Metadata("meta.h", 32)
		src := fields.Header("s", 32)
		p1 := &Packet{Headers: map[string]uint64{"s": 42}}
		p2 := &Packet{Headers: map[string]uint64{"s": 42}}
		c1 := run([]program.Op{program.HashOp(h, src)}, p1)
		c2 := run([]program.Op{program.HashOp(h, src)}, p2)
		if c1.meta["meta.h"] != c2.meta["meta.h"] {
			t.Error("hash not deterministic")
		}
		p3 := &Packet{Headers: map[string]uint64{"s": 43}}
		c3 := run([]program.Op{program.HashOp(h, src)}, p3)
		if c3.meta["meta.h"] == c1.meta["meta.h"] {
			t.Error("hash does not depend on input")
		}
	})
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Headers: map[string]uint64{"a": 1}}
	c := p.Clone()
	c.Headers["a"] = 2
	if p.Headers["a"] != 1 {
		t.Error("clone shares header map")
	}
}

func TestCoordinationErrorMessage(t *testing.T) {
	err := &coordinationError{mat: "m", field: "f"}
	if err.Error() == "" {
		t.Error("empty error message")
	}
}
