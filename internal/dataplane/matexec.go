// Package dataplane is a packet-level pipeline simulator: the
// substitute for the paper's Tofino testbed. It executes deployed MATs
// against packets — matching rules, running actions, maintaining
// stateful counters — and enforces the coordination contract: a MAT
// may only read metadata that was produced on its own switch or
// delivered by an upstream coordination header. Reading metadata that
// an upstream switch produced but did not piggyback is a hard error,
// which is exactly the failure mode Hermes' inter-switch coordination
// must prevent.
package dataplane

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
)

// Packet carries header field values. Metadata never enters a Packet
// directly; it lives in per-switch contexts and coordination headers.
type Packet struct {
	// Headers maps header field name to value.
	Headers map[string]uint64
}

// Clone returns an independent copy.
func (p *Packet) Clone() *Packet {
	out := &Packet{Headers: make(map[string]uint64, len(p.Headers))}
	for k, v := range p.Headers {
		out.Headers[k] = v
	}
	return out
}

// context is the field view a MAT executes against.
type context struct {
	pkt *Packet
	// meta holds the metadata values available on this switch.
	meta map[string]uint64
	// availMeta marks metadata fields that are legitimately available:
	// produced locally or imported. Reads outside this set fall back to
	// zero only if no upstream MAT has produced the field (tracked by
	// the engine); otherwise the engine raises a coordination error.
	produced map[string]bool
}

func newContext(pkt *Packet) *context {
	return &context{pkt: pkt, meta: map[string]uint64{}, produced: map[string]bool{}}
}

// get reads a field value. ok reports whether the metadata field is
// available in this context (header fields are always available).
func (c *context) get(f fields.Field) (uint64, bool) {
	if f.IsMetadata() {
		v, ok := c.meta[f.Name]
		return v, ok
	}
	return c.pkt.Headers[f.Name], true
}

// set writes a field value.
func (c *context) set(f fields.Field, v uint64) {
	v &= widthMask(f.Bits)
	if f.IsMetadata() {
		c.meta[f.Name] = v
		c.produced[f.Name] = true
		return
	}
	c.pkt.Headers[f.Name] = v
}

func widthMask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(bits)) - 1
}

// counterState holds the stateful register array of one MAT.
type counterState struct {
	slots []uint64
}

const defaultCounterSlots = 1 << 12

// matExecutor runs MATs with shared stateful registers.
type matExecutor struct {
	counters map[string]*counterState
}

func newMATExecutor() *matExecutor {
	return &matExecutor{counters: map[string]*counterState{}}
}

// coordinationError marks a read of metadata that should have been
// delivered by inter-switch coordination but was not.
type coordinationError struct {
	mat, field string
}

func (e *coordinationError) Error() string {
	return fmt.Sprintf("dataplane: MAT %q reads metadata %q that was not delivered to its switch", e.mat, e.field)
}

// execute runs one MAT against the context. written is the set of
// metadata fields produced anywhere upstream (global knowledge used to
// distinguish "never written, default zero" from "written but not
// delivered").
func (x *matExecutor) execute(m *program.MAT, c *context, written map[string]bool) error {
	read := func(f fields.Field) (uint64, error) {
		v, ok := c.get(f)
		if !ok && f.IsMetadata() && written[f.Name] {
			return 0, &coordinationError{mat: m.Name, field: f.Name}
		}
		return v, nil
	}

	// Match phase.
	var chosen *program.Rule
	rules := sortedRules(m)
	for i := range rules {
		r := &rules[i]
		hit := true
		for _, k := range m.Keys {
			pat, constrained := r.Matches[k.Field.Name]
			if !constrained {
				continue
			}
			v, err := read(k.Field)
			if err != nil {
				return err
			}
			if !patternMatches(k, pat, v) {
				hit = false
				break
			}
		}
		if hit {
			chosen = r
			break
		}
	}
	// Even on a miss, the match keys were read; enforce delivery for
	// metadata keys regardless of rule presence.
	if chosen == nil {
		for _, k := range m.Keys {
			if _, err := read(k.Field); err != nil {
				return err
			}
		}
	}

	actionName := m.DefaultAction
	var params map[string]uint64
	if chosen != nil {
		actionName = chosen.Action
		params = chosen.Params
	}
	if actionName == "" {
		return nil // miss with no default: no-op
	}
	act, ok := m.Action(actionName)
	if !ok {
		return fmt.Errorf("dataplane: MAT %q references unknown action %q", m.Name, actionName)
	}
	return x.runAction(m, act, params, c, read)
}

func (x *matExecutor) runAction(m *program.MAT, act program.Action, params map[string]uint64, c *context, read func(fields.Field) (uint64, error)) error {
	for _, op := range act.Ops {
		switch op.Kind {
		case program.OpSet:
			v := op.Imm
			if pv, ok := params[op.Dst.Name]; ok {
				v = pv
			}
			c.set(op.Dst, v)
		case program.OpCopy:
			v, err := read(op.Srcs[0])
			if err != nil {
				return err
			}
			c.set(op.Dst, v)
		case program.OpAdd:
			cur, err := read(op.Dst)
			if err != nil {
				return err
			}
			var src uint64
			if len(op.Srcs) > 0 {
				src, err = read(op.Srcs[0])
				if err != nil {
					return err
				}
			}
			c.set(op.Dst, cur+src+op.Imm)
		case program.OpHash:
			h := fnv.New64a()
			for _, s := range op.Srcs {
				v, err := read(s)
				if err != nil {
					return err
				}
				var buf [8]byte
				for i := 0; i < 8; i++ {
					buf[i] = byte(v >> (8 * uint(i)))
				}
				if _, err := h.Write(buf[:]); err != nil {
					return fmt.Errorf("dataplane: hashing: %w", err)
				}
			}
			c.set(op.Dst, h.Sum64())
		case program.OpCount:
			idx, err := read(op.Srcs[0])
			if err != nil {
				return err
			}
			st := x.counters[m.Name]
			if st == nil {
				st = &counterState{slots: make([]uint64, defaultCounterSlots)}
				x.counters[m.Name] = st
			}
			slot := idx % uint64(len(st.slots))
			st.slots[slot]++
			c.set(op.Dst, st.slots[slot])
		case program.OpDecrement:
			cur, err := read(op.Dst)
			if err != nil {
				return err
			}
			dec := op.Imm
			if dec == 0 {
				dec = 1
			}
			if cur < dec {
				cur = dec
			}
			c.set(op.Dst, cur-dec)
		default:
			return fmt.Errorf("dataplane: MAT %q action %q: unsupported op %v", m.Name, act.Name, op.Kind)
		}
	}
	return nil
}

// sortedRules returns the rules ordered by descending priority, stable
// in installation order.
func sortedRules(m *program.MAT) []program.Rule {
	out := append([]program.Rule(nil), m.Rules...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// patternMatches evaluates one match pattern against a value.
func patternMatches(k program.MatchKey, pat program.Pattern, v uint64) bool {
	switch k.Type {
	case program.MatchExact:
		return v == pat.Value
	case program.MatchLPM:
		bits := k.Field.Bits
		if bits > 64 {
			bits = 64
		}
		if pat.PrefixLen <= 0 {
			return true // zero-length prefix matches everything
		}
		shift := uint(bits - pat.PrefixLen)
		return (v >> shift) == (pat.Value >> shift)
	case program.MatchTernary:
		// A zero mask is a full wildcard (standard ternary semantics).
		return v&pat.Mask == pat.Value&pat.Mask
	case program.MatchRange:
		return v >= pat.Lo && v <= pat.Hi
	default:
		return false
	}
}
