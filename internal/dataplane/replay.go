// Pipelined replay (DESIGN.md §13.2): one worker goroutine per
// deployed switch, batches handed between consecutive stages over
// single-producer/single-consumer rings. Each switch's state (its
// metadata scratch, its MAT counters) is touched only by its own
// worker, and rings are FIFO, so every switch sees packets in exactly
// the order the sequential Run would produce — the pipelined replay is
// byte-identical to sequential for every batch size and ring depth.
package dataplane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
)

// ringDepth is the SPSC ring capacity (a power of two). Shallow rings
// keep the pool working set small; deep enough to ride out stage-time
// jitter.
const ringDepth = 8

// spscRing is a bounded single-producer/single-consumer queue of
// batches. A nil batch is the end-of-stream sentinel. Only the
// producer moves tail and only the consumer moves head, so a Load on
// the opposite index plus a release-store on one's own is the entire
// protocol.
type spscRing struct {
	buf  []*Batch
	head atomic.Uint64 // next to pop (consumer-owned)
	tail atomic.Uint64 // next to push (producer-owned)
}

func newSPSCRing() *spscRing { return &spscRing{buf: make([]*Batch, ringDepth)} }

// push blocks (spinning with yields) until a slot frees.
func (r *spscRing) push(b *Batch) {
	t := r.tail.Load()
	for t-r.head.Load() == uint64(len(r.buf)) {
		runtime.Gosched()
	}
	r.buf[t%uint64(len(r.buf))] = b
	r.tail.Store(t + 1)
}

// pop blocks (spinning with yields) until an item arrives.
func (r *spscRing) pop() *Batch {
	h := r.head.Load()
	for r.tail.Load() == h {
		runtime.Gosched()
	}
	b := r.buf[h%uint64(len(r.buf))]
	r.buf[h%uint64(len(r.buf))] = nil
	r.head.Store(h + 1)
	return b
}

// ReplayStats aggregates one replay run.
type ReplayStats struct {
	// Packets and Batches processed.
	Packets int
	Batches int
	// Elapsed wall time and the resulting rate.
	Elapsed       time.Duration
	PacketsPerSec float64
	// CoordBytes is the total coordination header bytes carried
	// (packets × per-pair header bytes, summed over pairs).
	CoordBytes int64
	// PairBytes is CoordBytes broken down per communicating pair.
	PairBytes map[placement.RouteKey]int64
	// Pipelined reports whether the per-switch worker pipeline ran
	// (false: sequential in the calling goroutine).
	Pipelined bool
}

// Replay pushes every batch through the pipeline and recycles it.
// workers <= 1 runs sequentially in the caller; workers > 1 runs the
// per-switch pipeline (parallelism is one worker per deployed switch —
// the stage count, not workers, bounds it). Batches must come from
// this pipeline's pool and are consumed (returned to the pool).
func (p *Pipeline) Replay(batches []*Batch, workers int) (*ReplayStats, error) {
	stats := &ReplayStats{PairBytes: map[placement.RouteKey]int64{}}
	start := time.Now()
	var firstErr error

	if workers <= 1 || len(p.sws) <= 1 {
		for _, b := range batches {
			if firstErr == nil {
				if err := p.Run(b); err != nil {
					firstErr = err
				}
			}
			stats.account(b)
			if p.Collect != nil {
				p.Collect(b)
			}
			p.PutBatch(b)
		}
	} else {
		stats.Pipelined = true
		// rings[k] feeds stage k; the last ring feeds the sink.
		rings := make([]*spscRing, len(p.sws)+1)
		for i := range rings {
			rings[i] = newSPSCRing()
		}
		var wg sync.WaitGroup
		for k := range p.sws {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				cs := p.sws[k]
				for {
					b := rings[k].pop()
					if b == nil {
						rings[k+1].push(nil)
						return
					}
					if b.err == nil {
						if err := p.runSwitch(cs, b); err != nil {
							b.err = err // poison; downstream stages skip it
						}
					}
					rings[k+1].push(b)
				}
			}(k)
		}
		var sinkWG sync.WaitGroup
		sinkWG.Add(1)
		go func() {
			defer sinkWG.Done()
			last := rings[len(p.sws)]
			for {
				b := last.pop()
				if b == nil {
					return
				}
				if b.err != nil && firstErr == nil {
					firstErr = b.err
				}
				stats.account(b)
				if p.Collect != nil {
					p.Collect(b)
				}
				p.PutBatch(b)
			}
		}()
		for _, b := range batches {
			rings[0].push(b)
		}
		rings[0].push(nil)
		wg.Wait()
		sinkWG.Wait()
	}

	stats.Elapsed = time.Since(start)
	hop := p.HopBytesPerPacket()
	for key, bytes := range hop {
		pb := int64(bytes) * int64(stats.Packets)
		stats.PairBytes[key] = pb
		stats.CoordBytes += pb
	}
	if s := stats.Elapsed.Seconds(); s > 0 {
		stats.PacketsPerSec = float64(stats.Packets) / s
	}
	return stats, firstErr
}

// account tallies a finished batch.
func (s *ReplayStats) account(b *Batch) {
	s.Batches++
	if b.err == nil {
		s.Packets += b.n
	}
}

// TrafficResult is ReplayTraffic's outcome: the raw replay throughput
// plus the traffic-weighted coordination metrics Exp#9 reports.
type TrafficResult struct {
	Stats ReplayStats
	// WeightedByteRate is Σ_{u≠v} w(u,v)·A(u,v): the matrix's pair
	// rates times the deployment's per-pair coordination bytes — the
	// network-wide coordination byte-rate (bytes per unit rate).
	WeightedByteRate float64
	// HotPairByteRate is max_{u≠v} w(u,v)·A(u,v): the hottest pair's
	// coordination byte-rate, the quantity the weighted solvers cut.
	HotPairByteRate float64
	// FCTProxy approximates mean flow completion time in seconds: the
	// time to drain an average flow at the measured goodput, inflated
	// by the coordination byte overhead against a nominal 100-byte
	// payload.
	FCTProxy float64
}

// replayPayloadBytes is the nominal packet payload the FCT proxy
// weighs coordination overhead against.
const replayPayloadBytes = 100

// ReplayTraffic synthesizes a packet stream from the traffic matrix
// (packet counts apportioned to demands by rate, largest remainder,
// no RNG), replays it through the batched pipeline, and reports
// throughput plus the weighted coordination metrics. workers as in
// Replay.
func ReplayTraffic(dep *deploy.Deployment, tm *network.TrafficMatrix, packets, batchSize, workers int) (*TrafficResult, error) {
	if packets <= 0 {
		return nil, fmt.Errorf("dataplane: non-positive packet count %d", packets)
	}
	if err := tm.Validate(dep.Plan.Topo); err != nil {
		return nil, err
	}
	p, err := NewPipeline(dep, replayHeaderFields(), batchSize)
	if err != nil {
		return nil, err
	}
	counts := apportion(tm, packets)

	var batches []*Batch
	var pkts []*Packet
	flush := func() error {
		if len(pkts) == 0 {
			return nil
		}
		b, err := p.Load(pkts)
		if err != nil {
			return err
		}
		batches = append(batches, b)
		pkts = pkts[:0]
		return nil
	}
	for di, d := range tm.Demands {
		for c := 0; c < counts[di]; c++ {
			pkts = append(pkts, demandPacket(d, di))
			if len(pkts) == p.BatchSize() {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	stats, err := p.Replay(batches, workers)
	if err != nil {
		return nil, err
	}
	res := &TrafficResult{Stats: *stats}

	// Weighted coordination metrics: deployed per-pair bytes scaled by
	// the matrix's pair-rate projection.
	rates, err := tm.PairRates(dep.Plan.Topo)
	if err != nil {
		return nil, err
	}
	S := dep.Plan.Topo.NumSwitches()
	for key, bytes := range p.HopBytesPerPacket() {
		w := rates[int(key.From)*S+int(key.To)]
		br := w * float64(bytes)
		res.WeightedByteRate += br
		if br > res.HotPairByteRate {
			res.HotPairByteRate = br
		}
	}
	if stats.PacketsPerSec > 0 && stats.Packets > 0 {
		perPkt := float64(stats.CoordBytes) / float64(stats.Packets)
		overhead := 1 + perPkt/replayPayloadBytes
		meanFlow := float64(stats.Packets) / float64(len(tm.Demands))
		res.FCTProxy = meanFlow * overhead / stats.PacketsPerSec
	}
	return res, nil
}

// replayHeaderFields names the synthetic 5-tuple header fields the
// demand packets carry — the pipeline's extraHeaders.
func replayHeaderFields() []string {
	return []string{
		fields.IPv4Src, fields.IPv4Dst,
		fields.TCPSrc, fields.TCPDst,
		fields.IPv4Proto, fields.IPv4TTL,
	}
}

// demandPacket builds one packet of demand di: the endpoints encode
// the demand's switch pair, ports the demand index, so distinct
// demands exercise distinct match/hash/counter paths.
func demandPacket(d network.Demand, di int) *Packet {
	return &Packet{Headers: map[string]uint64{
		fields.IPv4Src:   uint64(0x0A000000) + uint64(d.Src),
		fields.IPv4Dst:   uint64(0x0B000000) + uint64(d.Dst),
		fields.TCPSrc:    uint64(1024 + di%60000),
		fields.TCPDst:    uint64(di % 1024),
		fields.IPv4Proto: 6,
		fields.IPv4TTL:   64,
	}}
}

// apportion splits the packet budget across demands proportionally to
// rate (largest remainder; every demand gets at least its floor).
func apportion(tm *network.TrafficMatrix, packets int) []int {
	total := 0.0
	for _, d := range tm.Demands {
		total += d.Rate
	}
	counts := make([]int, len(tm.Demands))
	type rem struct {
		i int
		r float64
	}
	rems := make([]rem, len(tm.Demands))
	given := 0
	for i, d := range tm.Demands {
		exact := d.Rate / total * float64(packets)
		counts[i] = int(exact)
		given += counts[i]
		rems[i] = rem{i: i, r: exact - float64(counts[i])}
	}
	// Distribute the remainder to the largest fractional parts,
	// deterministically (index breaks ties).
	for given < packets {
		best := -1
		for j := range rems {
			if rems[j].r < 0 {
				continue
			}
			if best < 0 || rems[j].r > rems[best].r {
				best = j
			}
		}
		if best < 0 {
			break
		}
		counts[rems[best].i]++
		rems[best].r = -1
		given++
	}
	return counts
}
