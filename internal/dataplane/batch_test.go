package dataplane

import (
	"testing"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
)

// TestBatchedMatchesInterpreter is the differential gate for the
// batched engine: the same packet stream through the per-packet
// interpreter and the compiled pipeline must produce identical write
// histories (values and written-field sets) and identical final
// headers, packet by packet — stateful counters included.
func TestBatchedMatchesInterpreter(t *testing.T) {
	dep := deployOnTestbed(t)
	packets := randomPackets(300, 3)

	eng, err := NewEngine(dep)
	if err != nil {
		t.Fatal(err)
	}
	interp := make([]*Result, len(packets))
	for i, p := range packets {
		interp[i], err = eng.Process(p.Clone())
		if err != nil {
			t.Fatal(err)
		}
	}

	p, err := NewPipeline(dep, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.RecordWrites = true
	for lo := 0; lo < len(packets); lo += p.BatchSize() {
		hi := lo + p.BatchSize()
		if hi > len(packets) {
			hi = len(packets)
		}
		chunk := make([]*Packet, 0, hi-lo)
		for _, pk := range packets[lo:hi] {
			chunk = append(chunk, pk.Clone())
		}
		b, err := p.Load(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(b); err != nil {
			t.Fatal(err)
		}
		for i := range chunk {
			gi := lo + i
			if err := compareWrites(interp[gi].Writes, b.Writes(i)); err != nil {
				t.Fatalf("packet %d write histories diverge: %v", gi, err)
			}
			out := chunk[i].Clone()
			p.Unload(b, i, out)
			for name, want := range interp[gi].Packet.Headers {
				if got := out.Headers[name]; got != want {
					t.Fatalf("packet %d header %q = %d, interpreter %d", gi, name, got, want)
				}
			}
		}
		p.PutBatch(b)
	}
}

// TestBatchedPipelinedDeterminism runs the identical stream through a
// sequential pipeline and a per-switch-worker pipeline and demands
// byte-identical outcomes: every final header column and every counter
// register must match, so worker handoff cannot perturb per-switch
// packet order.
func TestBatchedPipelinedDeterminism(t *testing.T) {
	dep := deployOnTestbed(t)
	packets := randomPackets(512, 7)

	run := func(workers int) ([][]uint64, [][]uint64, *ReplayStats) {
		p, err := NewPipeline(dep, nil, 32)
		if err != nil {
			t.Fatal(err)
		}
		var hdrRows [][]uint64
		p.Collect = func(b *Batch) {
			for i := 0; i < b.Len(); i++ {
				row := make([]uint64, p.nHdr)
				copy(row, b.hdr[i*p.nHdr:(i+1)*p.nHdr])
				hdrRows = append(hdrRows, row)
			}
		}
		var batches []*Batch
		for lo := 0; lo < len(packets); lo += p.BatchSize() {
			hi := lo + p.BatchSize()
			if hi > len(packets) {
				hi = len(packets)
			}
			chunk := make([]*Packet, 0, hi-lo)
			for _, pk := range packets[lo:hi] {
				chunk = append(chunk, pk.Clone())
			}
			b, err := p.Load(chunk)
			if err != nil {
				t.Fatal(err)
			}
			batches = append(batches, b)
		}
		stats, err := p.Replay(batches, workers)
		if err != nil {
			t.Fatal(err)
		}
		return hdrRows, p.counters, stats
	}

	seqHdr, seqCnt, seqStats := run(1)
	parHdr, parCnt, parStats := run(8)

	if !parStats.Pipelined {
		t.Fatal("workers=8 did not engage the per-switch pipeline")
	}
	if seqStats.Packets != len(packets) || parStats.Packets != len(packets) {
		t.Fatalf("packet counts: sequential %d, pipelined %d, want %d",
			seqStats.Packets, parStats.Packets, len(packets))
	}
	if len(seqHdr) != len(parHdr) {
		t.Fatalf("row counts diverge: %d vs %d", len(seqHdr), len(parHdr))
	}
	for i := range seqHdr {
		for j := range seqHdr[i] {
			if seqHdr[i][j] != parHdr[i][j] {
				t.Fatalf("packet %d header column %d: sequential %d, pipelined %d",
					i, j, seqHdr[i][j], parHdr[i][j])
			}
		}
	}
	if len(seqCnt) != len(parCnt) {
		t.Fatalf("counter files diverge: %d vs %d", len(seqCnt), len(parCnt))
	}
	for c := range seqCnt {
		for s := range seqCnt[c] {
			if seqCnt[c][s] != parCnt[c][s] {
				t.Fatalf("counter %d slot %d: sequential %d, pipelined %d",
					c, s, seqCnt[c][s], parCnt[c][s])
			}
		}
	}
	if seqStats.CoordBytes != parStats.CoordBytes {
		t.Fatalf("coord bytes: sequential %d, pipelined %d", seqStats.CoordBytes, parStats.CoordBytes)
	}
}

// TestBatchedCoordinationContract sabotages the coordination headers
// and expects the batched engine to raise the same hard error the
// interpreter does, in both sequential and pipelined modes.
func TestBatchedCoordinationContract(t *testing.T) {
	dep := deployOnTestbed(t)
	for _, cfg := range dep.Configs {
		for to := range cfg.Exports {
			cfg.Exports[to] = deploy.CoordHeader{}
		}
		for from := range cfg.Imports {
			cfg.Imports[from] = deploy.CoordHeader{}
		}
	}
	p, err := NewPipeline(dep, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Load(randomPackets(8, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(b); err == nil {
		t.Fatal("sequential run: stripped coordination headers went undetected")
	}
	p2, err := NewPipeline(dep, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p2.Load(randomPackets(8, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Replay([]*Batch{b2}, 8); err == nil {
		t.Fatal("pipelined run: stripped coordination headers went undetected")
	}
}

// TestReplayTraffic replays a generated traffic matrix through the
// deployment and checks the weighted coordination metrics line up with
// the analytic w·A aggregation.
func TestReplayTraffic(t *testing.T) {
	dep := deployOnTestbed(t)
	tm, err := network.GenerateTraffic(dep.Plan.Topo, network.TrafficGravity, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTraffic(dep, tm, 1000, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Packets != 1000 {
		t.Fatalf("replayed %d packets, want 1000", res.Stats.Packets)
	}
	if res.Stats.PacketsPerSec <= 0 {
		t.Error("non-positive goodput")
	}
	if res.WeightedByteRate <= 0 || res.HotPairByteRate <= 0 {
		t.Errorf("weighted metrics not populated: sum %g, hot %g",
			res.WeightedByteRate, res.HotPairByteRate)
	}
	if res.HotPairByteRate > res.WeightedByteRate {
		t.Error("hot-pair byte-rate exceeds the network-wide sum")
	}
	if res.FCTProxy <= 0 {
		t.Error("non-positive FCT proxy")
	}
}

// TestApportionConserves checks the largest-remainder split is exact
// and deterministic.
func TestApportionConserves(t *testing.T) {
	tm := &network.TrafficMatrix{S: 4, Demands: []network.Demand{
		{Src: 0, Dst: 1, Rate: 1},
		{Src: 1, Dst: 2, Rate: 2.5},
		{Src: 2, Dst: 3, Rate: 0.25},
	}}
	counts := apportion(tm, 1000)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("apportioned %d packets, want 1000", total)
	}
	again := apportion(tm, 1000)
	for i := range counts {
		if counts[i] != again[i] {
			t.Fatal("apportion not deterministic")
		}
	}
	if counts[1] <= counts[0] || counts[0] <= counts[2] {
		t.Fatalf("apportion ignores rates: %v", counts)
	}
}
