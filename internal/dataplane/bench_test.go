package dataplane

import (
	"testing"
)

// benchPackets is the replay stream shared by the engine benchmarks.
func benchPackets(b *testing.B, n int) []*Packet {
	b.Helper()
	return randomPackets(n, 42)
}

// BenchmarkPerPacketEngine is the interpreter baseline: map-backed
// contexts, per-MAT snapshots, per-packet allocation. ns/op is per
// packet.
func BenchmarkPerPacketEngine(b *testing.B) {
	dep := deployOnTestbed(b)
	eng, err := NewEngine(dep)
	if err != nil {
		b.Fatal(err)
	}
	packets := benchPackets(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Process(packets[i%len(packets)].Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedEngine replays pooled batches through the compiled
// pipeline sequentially. ns/op is per packet; steady state must report
// 0 allocs/op — the pool and the preallocated scratch absorb
// everything.
func BenchmarkBatchedEngine(b *testing.B) {
	dep := deployOnTestbed(b)
	p, err := NewPipeline(dep, nil, 256)
	if err != nil {
		b.Fatal(err)
	}
	packets := benchPackets(b, 256)
	// Warm the pool and fault in the compiled tables.
	warm, err := p.Load(packets)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Run(warm); err != nil {
		b.Fatal(err)
	}
	p.PutBatch(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(packets) {
		batch, err := p.Load(packets)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Run(batch); err != nil {
			b.Fatal(err)
		}
		p.PutBatch(batch)
	}
}

// BenchmarkBatchedPipelined is the per-switch worker pipeline over the
// same stream: adds the SPSC handoff on top of the batched engine.
func BenchmarkBatchedPipelined(b *testing.B) {
	dep := deployOnTestbed(b)
	p, err := NewPipeline(dep, nil, 256)
	if err != nil {
		b.Fatal(err)
	}
	packets := benchPackets(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		var batches []*Batch
		for rep := 0; rep < 16 && done < b.N; rep++ {
			batch, err := p.Load(packets)
			if err != nil {
				b.Fatal(err)
			}
			batches = append(batches, batch)
			done += len(packets)
		}
		if _, err := p.Replay(batches, 8); err != nil {
			b.Fatal(err)
		}
	}
}
