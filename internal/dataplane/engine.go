package dataplane

import (
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Result is the outcome of processing one packet.
type Result struct {
	// Packet is the packet after processing (header fields mutated in
	// place).
	Packet *Packet
	// Writes records the final value of every field written during
	// processing (headers and metadata), keyed by field name. Used to
	// compare distributed execution against the single-box reference.
	Writes map[string]uint64
	// MaxHeaderBytes is the largest coordination header attached to the
	// packet between any switch pair during this traversal.
	MaxHeaderBytes int
	// HopBytes maps each communicating pair to the header bytes carried.
	HopBytes map[placement.RouteKey]int
}

// Engine executes a compiled deployment packet by packet, maintaining
// stateful counters across packets.
type Engine struct {
	dep   *deploy.Deployment
	exec  *matExecutor
	order []network.SwitchID
	// topoOrder caches the global MAT order (switch order, then stage
	// order within a switch).
	matOrder []string
}

// NewEngine prepares an engine for the deployment.
func NewEngine(dep *deploy.Deployment) (*Engine, error) {
	if dep == nil || dep.Plan == nil {
		return nil, fmt.Errorf("dataplane: nil deployment")
	}
	order, err := dep.Plan.SwitchOrder()
	if err != nil {
		return nil, fmt.Errorf("dataplane: %w", err)
	}
	e := &Engine{dep: dep, exec: newMATExecutor(), order: order}
	for _, u := range order {
		cfg := dep.Configs[u]
		if cfg == nil {
			continue
		}
		e.matOrder = append(e.matOrder, matsInStageOrder(cfg)...)
	}
	return e, nil
}

// matsInStageOrder lists a switch's MATs by first stage, deduplicated.
func matsInStageOrder(cfg *deploy.SwitchConfig) []string {
	type entry struct {
		name  string
		stage int
	}
	first := map[string]int{}
	for s, st := range cfg.Stages {
		for _, e := range st {
			if _, ok := first[e.MAT]; !ok {
				first[e.MAT] = s
			}
		}
	}
	out := make([]entry, 0, len(first))
	for n, s := range first {
		out = append(out, entry{name: n, stage: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].stage != out[j].stage {
			return out[i].stage < out[j].stage
		}
		return out[i].name < out[j].name
	})
	names := make([]string, len(out))
	for i, e := range out {
		names[i] = e.name
	}
	return names
}

// Process runs one packet through the deployed network: each used
// switch in dependency order, MATs in stage order, with metadata
// crossing switches only inside the compiled coordination headers.
func (e *Engine) Process(pkt *Packet) (*Result, error) {
	res := &Result{
		Packet:   pkt,
		Writes:   map[string]uint64{},
		HopBytes: map[placement.RouteKey]int{},
	}
	written := map[string]bool{}
	// exported[key][field] is the value serialized into the header.
	exported := map[placement.RouteKey]map[string]uint64{}
	visited := map[network.SwitchID]bool{}

	for _, u := range e.order {
		cfg := e.dep.Configs[u]
		if cfg == nil {
			continue
		}
		ctx := newContext(pkt)
		// Import headers from already-visited upstream switches, in
		// visit order: when two upstreams deliver the same field, the
		// later-visited one wins deterministically (it executed with
		// more of the write history in view). Iterating the Imports map
		// directly would make the winner random.
		for _, from := range e.order {
			if !visited[from] {
				continue
			}
			if _, ok := cfg.Imports[from]; !ok {
				continue
			}
			key := placement.RouteKey{From: from, To: u}
			for name, v := range exported[key] {
				ctx.meta[name] = v
				ctx.produced[name] = true
			}
		}
		// Execute the switch's MATs in stage order.
		for _, matName := range matsInStageOrder(cfg) {
			node, ok := e.dep.Plan.Graph.Node(matName)
			if !ok {
				return nil, fmt.Errorf("dataplane: deployed MAT %q missing from TDG", matName)
			}
			before := snapshot(ctx, pkt)
			if err := e.exec.execute(node.MAT, ctx, written); err != nil {
				return nil, err
			}
			recordWrites(before, ctx, pkt, res.Writes, written)
		}
		visited[u] = true
		// Export coordination headers toward downstream switches.
		for to, hdr := range cfg.Exports {
			key := placement.RouteKey{From: u, To: to}
			vals := map[string]uint64{}
			for _, f := range hdr.Fields {
				v, ok := ctx.meta[f.Name]
				if !ok {
					// The field is in the header but this switch never
					// produced or received it; default zero (it may be
					// produced only on some execution paths).
					v = 0
				}
				vals[f.Name] = v
			}
			exported[key] = vals
			res.HopBytes[key] = hdr.Bytes
			if hdr.Bytes > res.MaxHeaderBytes {
				res.MaxHeaderBytes = hdr.Bytes
			}
		}
	}
	return res, nil
}

// snapshot captures current values of all fields for write detection.
func snapshot(c *context, pkt *Packet) map[string]uint64 {
	out := make(map[string]uint64, len(c.meta)+len(pkt.Headers))
	for k, v := range c.meta {
		out[k] = v
	}
	for k, v := range pkt.Headers {
		out["hdr:"+k] = v
	}
	return out
}

// recordWrites diffs the context against the snapshot and records
// changed or new fields.
func recordWrites(before map[string]uint64, c *context, pkt *Packet, writes map[string]uint64, written map[string]bool) {
	for k, v := range c.meta {
		if old, ok := before[k]; !ok || old != v {
			writes[k] = v
			written[k] = true
		}
	}
	for k, v := range pkt.Headers {
		if old, ok := before["hdr:"+k]; !ok || old != v {
			writes[k] = v
		}
	}
}

// ReferenceEngine executes the merged TDG on a single unconstrained
// "big switch": the ground truth for distributed-equals-centralized
// checks (and the Exp#6 ground truth for resource accounting).
type ReferenceEngine struct {
	graph *tdg.Graph
	exec  *matExecutor
	order []string
}

// NewReferenceEngine prepares a single-box engine for the TDG.
func NewReferenceEngine(g *tdg.Graph) (*ReferenceEngine, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("dataplane: %w", err)
	}
	return &ReferenceEngine{graph: g, exec: newMATExecutor(), order: order}, nil
}

// Process runs one packet through every MAT in topological order with
// all metadata visible.
func (e *ReferenceEngine) Process(pkt *Packet) (*Result, error) {
	res := &Result{Packet: pkt, Writes: map[string]uint64{}, HopBytes: map[placement.RouteKey]int{}}
	ctx := newContext(pkt)
	written := map[string]bool{}
	for _, name := range e.order {
		node, _ := e.graph.Node(name)
		before := snapshot(ctx, pkt)
		if err := e.exec.execute(node.MAT, ctx, written); err != nil {
			return nil, err
		}
		recordWrites(before, ctx, pkt, res.Writes, written)
	}
	return res, nil
}

// EquivalentRuns processes the same packet stream through a deployed
// engine and a reference engine and verifies identical write histories;
// it returns the distributed run's max header bytes.
func EquivalentRuns(dep *deploy.Deployment, packets []*Packet) (int, error) {
	eng, err := NewEngine(dep)
	if err != nil {
		return 0, err
	}
	ref, err := NewReferenceEngine(dep.Plan.Graph)
	if err != nil {
		return 0, err
	}
	maxHdr := 0
	for i, p := range packets {
		dres, err := eng.Process(p.Clone())
		if err != nil {
			return 0, fmt.Errorf("dataplane: distributed run, packet %d: %w", i, err)
		}
		rres, err := ref.Process(p.Clone())
		if err != nil {
			return 0, fmt.Errorf("dataplane: reference run, packet %d: %w", i, err)
		}
		if err := compareWrites(rres.Writes, dres.Writes); err != nil {
			return 0, fmt.Errorf("dataplane: packet %d diverged: %w", i, err)
		}
		if dres.MaxHeaderBytes > maxHdr {
			maxHdr = dres.MaxHeaderBytes
		}
	}
	return maxHdr, nil
}

func compareWrites(ref, dist map[string]uint64) error {
	for k, rv := range ref {
		dv, ok := dist[k]
		if !ok {
			return fmt.Errorf("field %q written in reference but not distributed", k)
		}
		if dv != rv {
			return fmt.Errorf("field %q = %d distributed vs %d reference", k, dv, rv)
		}
	}
	for k := range dist {
		if _, ok := ref[k]; !ok {
			return fmt.Errorf("field %q written only in distributed run", k)
		}
	}
	return nil
}
