// Batched replay engine (DESIGN.md §13.2). The per-packet Engine
// interprets every packet against string-keyed maps — fine as a
// correctness oracle, far too slow to replay traffic-matrix workloads.
// Pipeline compiles a deployment once into dense form:
//
//   - every header and metadata field referenced anywhere in the
//     deployment is interned to a dense index, so a packet is a row of
//     uint64 columns in a contiguous Batch, not a map;
//   - every MAT's rules are pre-sorted and its actions lowered to flat
//     op lists with field references and rule params resolved at
//     compile time;
//   - coordination headers become per-(pair, field) transport slots in
//     the batch, so exports/imports are plain column copies that
//     reproduce the interpreter's later-visited-upstream-wins merge;
//   - the interpreter's coordination contract (reads of metadata that
//     was written upstream but not piggybacked are hard errors) is
//     enforced through a per-packet written-bits vector carried in the
//     batch.
//
// Batches are pooled (sync.Pool) and all per-switch scratch is
// preallocated, so steady-state replay allocates nothing per packet.
// Run processes a batch sequentially; replay.go adds the per-switch
// worker pipeline with SPSC ring handoff.
package dataplane

import (
	"fmt"
	"sort"
	"sync"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// DefaultBatchSize is the packets-per-batch sweet spot: large enough
// to amortize the per-batch column clears, small enough that the
// per-switch pipeline stays loaded.
const DefaultBatchSize = 256

// fieldRef is a compiled field reference: the interned column plus the
// width mask applied on writes.
type fieldRef struct {
	meta bool
	id   int32
	mask uint64
}

// cop is one lowered action operation. For OpSet the immediate already
// carries the rule's param override; for OpCount counter indexes the
// pipeline's per-MAT register file.
type cop struct {
	kind    program.OpKind
	dst     fieldRef
	srcs    []fieldRef
	imm     uint64
	counter int32
}

// ckey is one compiled match key; the original MatchKey is kept so the
// batched match phase reuses patternMatches verbatim.
type ckey struct {
	ref fieldRef
	key program.MatchKey
}

// crule is one compiled rule: the constrained keys with their patterns
// and the rule's lowered action (nil when the action has no ops).
type crule struct {
	keyIdx []int32
	pats   []program.Pattern
	ops    []cop
}

// cmat is one compiled MAT.
type cmat struct {
	name    string
	keys    []ckey
	rules   []crule // descending priority, stable
	missOps []cop   // default action; nil means no-op on miss
	hasMiss bool
	counter int32 // register-file index, -1 when the MAT never counts
}

// cimport copies one coordination slot into a metadata column; the
// per-switch list is ordered by upstream visit order so a later
// upstream's value overwrites an earlier one, exactly like the
// interpreter's import merge.
type cimport struct {
	slot int32
	fid  int32
}

// cexport serializes one metadata column into a coordination slot
// (absent metadata exports zero, matching the interpreter).
type cexport struct {
	slot int32
	fid  int32
}

// cswitch is one compiled switch stage plus its worker-owned scratch.
// The scratch makes a Pipeline single-run: concurrent Run/Replay calls
// on one Pipeline race.
type cswitch struct {
	id       network.SwitchID
	mats     []*cmat
	imports  []cimport
	exports  []cexport
	hopKeys  []placement.RouteKey
	hopBytes []int

	// Per-packet metadata context, reset through the touched list.
	metaVal []uint64
	metaHas []uint64
	touched []int32

	// Per-MAT write-diff scratch: seen holds the epoch of the last MAT
	// execution that recorded a field's pre-value, so the diff only
	// keeps the first write per MAT (recordWrites semantics).
	seen    []uint64
	epoch   uint64
	recFid  []int32
	recMeta []bool
	recOld  []uint64
	recHad  []bool
}

// Batch is a contiguous block of packets in flight: row-major header
// columns, coordination transport slots, and the per-packet
// written-metadata bits that back the coordination contract.
type Batch struct {
	n       int
	hdr     []uint64 // n × nHdr
	hdrHas  []uint64 // n × hdrWords presence bits (write-diff semantics)
	coord   []uint64 // n × nSlots
	written []uint64 // n × metaWords

	// writes holds per-packet write logs when the pipeline records
	// them (differential tests); nil in replay mode.
	writes []map[string]uint64

	err error // first execution error; poisons the batch downstream
}

// Len returns the packet count.
func (b *Batch) Len() int { return b.n }

// Err returns the first execution error the batch hit, if any.
func (b *Batch) Err() error { return b.err }

// Writes returns packet i's recorded write log (nil unless the
// pipeline ran with RecordWrites).
func (b *Batch) Writes(i int) map[string]uint64 { return b.writes[i] }

// Pipeline is a deployment compiled for batched replay.
type Pipeline struct {
	dep   *deploy.Deployment
	order []network.SwitchID
	sws   []*cswitch

	hdrNames  []string
	hdrIdx    map[string]int32
	metaNames []string
	metaIdx   map[string]int32

	nHdr, nMeta int
	nSlots      int
	hdrWords    int
	metaWords   int

	counters [][]uint64

	batchSize int
	pool      sync.Pool

	// RecordWrites, when set before running, makes every batch carry a
	// per-packet map of final written-field values — the interpreter's
	// Result.Writes, for differential tests. Replay mode leaves it off
	// (it allocates per packet).
	RecordWrites bool

	// Collect, when non-nil, is invoked on every finished batch during
	// Replay (in submission order, before the batch returns to the
	// pool) — the hook determinism tests capture results through.
	Collect func(*Batch)
}

// NewPipeline compiles the deployment. extraHeaders names header
// fields that appear in replayed packets without being referenced by
// any deployed MAT (the synthetic 5-tuple, typically); unknown header
// fields at load time are errors, not silent drops.
func NewPipeline(dep *deploy.Deployment, extraHeaders []string, batchSize int) (*Pipeline, error) {
	if dep == nil || dep.Plan == nil {
		return nil, fmt.Errorf("dataplane: nil deployment")
	}
	order, err := dep.Plan.SwitchOrder()
	if err != nil {
		return nil, fmt.Errorf("dataplane: %w", err)
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	p := &Pipeline{
		dep: dep, order: order, batchSize: batchSize,
		hdrIdx: map[string]int32{}, metaIdx: map[string]int32{},
	}

	// Pass 1: intern every field the deployment can touch. Sorted MAT
	// walk keeps the interning deterministic.
	for _, u := range order {
		cfg := dep.Configs[u]
		if cfg == nil {
			continue
		}
		for _, name := range matsInStageOrder(cfg) {
			node, ok := dep.Plan.Graph.Node(name)
			if !ok {
				return nil, fmt.Errorf("dataplane: deployed MAT %q missing from TDG", name)
			}
			m := node.MAT
			for _, k := range m.Keys {
				p.intern(k.Field)
			}
			for _, act := range m.Actions {
				for _, op := range act.Ops {
					p.intern(op.Dst)
					for _, s := range op.Srcs {
						p.intern(s)
					}
				}
			}
		}
		for _, hdr := range cfg.Exports {
			for _, f := range hdr.Fields {
				p.intern(f)
			}
		}
	}
	for _, name := range extraHeaders {
		p.intern(fields.Header(name, 64))
	}
	p.nHdr, p.nMeta = len(p.hdrNames), len(p.metaNames)
	p.hdrWords = (p.nHdr + 63) / 64
	p.metaWords = (p.nMeta + 63) / 64

	// Pass 2: allocate coordination transport slots, one per exported
	// (pair, field), in switch-order × sorted-peer × header-field order.
	slots := map[placement.RouteKey]map[string]int32{}
	for _, u := range order {
		cfg := dep.Configs[u]
		if cfg == nil {
			continue
		}
		for _, to := range sortedPeers(cfg.Exports) {
			key := placement.RouteKey{From: u, To: to}
			m := map[string]int32{}
			for _, f := range cfg.Exports[to].Fields {
				m[f.Name] = int32(p.nSlots)
				p.nSlots++
			}
			slots[key] = m
		}
	}

	// Pass 3: compile each switch stage.
	for _, u := range order {
		cfg := dep.Configs[u]
		if cfg == nil {
			continue
		}
		cs := &cswitch{id: u}
		for _, from := range order {
			if from == u {
				break
			}
			if _, ok := cfg.Imports[from]; !ok {
				continue
			}
			fromCfg := dep.Configs[from]
			if fromCfg == nil {
				continue
			}
			hdr, ok := fromCfg.Exports[u]
			if !ok {
				continue
			}
			key := placement.RouteKey{From: from, To: u}
			for _, f := range hdr.Fields {
				cs.imports = append(cs.imports, cimport{slot: slots[key][f.Name], fid: p.metaIdx[f.Name]})
			}
		}
		for _, name := range matsInStageOrder(cfg) {
			node, _ := dep.Plan.Graph.Node(name)
			cm, err := p.compileMAT(node.MAT)
			if err != nil {
				return nil, err
			}
			cs.mats = append(cs.mats, cm)
		}
		for _, to := range sortedPeers(cfg.Exports) {
			key := placement.RouteKey{From: u, To: to}
			hdr := cfg.Exports[to]
			for _, f := range hdr.Fields {
				cs.exports = append(cs.exports, cexport{slot: slots[key][f.Name], fid: p.metaIdx[f.Name]})
			}
			cs.hopKeys = append(cs.hopKeys, key)
			cs.hopBytes = append(cs.hopBytes, hdr.Bytes)
		}
		cs.metaVal = make([]uint64, p.nMeta)
		cs.metaHas = make([]uint64, p.metaWords)
		cs.touched = make([]int32, 0, p.nMeta)
		cs.seen = make([]uint64, p.nMeta+p.nHdr)
		p.sws = append(p.sws, cs)
	}

	p.pool.New = func() any {
		return &Batch{
			hdr:     make([]uint64, p.batchSize*p.nHdr),
			hdrHas:  make([]uint64, p.batchSize*p.hdrWords),
			coord:   make([]uint64, p.batchSize*p.nSlots),
			written: make([]uint64, p.batchSize*p.metaWords),
		}
	}
	return p, nil
}

// intern assigns the field a dense column if it is new.
func (p *Pipeline) intern(f fields.Field) fieldRef {
	if f.IsMetadata() {
		id, ok := p.metaIdx[f.Name]
		if !ok {
			id = int32(len(p.metaNames))
			p.metaIdx[f.Name] = id
			p.metaNames = append(p.metaNames, f.Name)
		}
		return fieldRef{meta: true, id: id, mask: widthMask(f.Bits)}
	}
	id, ok := p.hdrIdx[f.Name]
	if !ok {
		id = int32(len(p.hdrNames))
		p.hdrIdx[f.Name] = id
		p.hdrNames = append(p.hdrNames, f.Name)
	}
	return fieldRef{meta: false, id: id, mask: widthMask(f.Bits)}
}

// compileMAT lowers one MAT: rules pre-sorted, actions flattened, rule
// params folded into OpSet immediates.
func (p *Pipeline) compileMAT(m *program.MAT) (*cmat, error) {
	cm := &cmat{name: m.Name, counter: -1}
	for _, k := range m.Keys {
		cm.keys = append(cm.keys, ckey{ref: p.intern(k.Field), key: k})
	}
	needsCounter := false
	for _, act := range m.Actions {
		for _, op := range act.Ops {
			if op.Kind == program.OpCount {
				needsCounter = true
			}
		}
	}
	if needsCounter {
		cm.counter = int32(len(p.counters))
		p.counters = append(p.counters, make([]uint64, defaultCounterSlots))
	}
	for _, r := range sortedRules(m) {
		cr := crule{}
		for ki, k := range m.Keys {
			pat, constrained := r.Matches[k.Field.Name]
			if !constrained {
				continue
			}
			cr.keyIdx = append(cr.keyIdx, int32(ki))
			cr.pats = append(cr.pats, pat)
		}
		if r.Action != "" {
			act, ok := m.Action(r.Action)
			if !ok {
				return nil, fmt.Errorf("dataplane: MAT %q references unknown action %q", m.Name, r.Action)
			}
			cr.ops = p.compileAction(cm, act, r.Params)
		}
		cm.rules = append(cm.rules, cr)
	}
	if m.DefaultAction != "" {
		act, ok := m.Action(m.DefaultAction)
		if !ok {
			return nil, fmt.Errorf("dataplane: MAT %q references unknown action %q", m.Name, m.DefaultAction)
		}
		cm.missOps = p.compileAction(cm, act, nil)
		cm.hasMiss = true
	}
	return cm, nil
}

// compileAction lowers one action under a rule's params.
func (p *Pipeline) compileAction(cm *cmat, act program.Action, params map[string]uint64) []cop {
	ops := make([]cop, 0, len(act.Ops))
	for _, op := range act.Ops {
		c := cop{kind: op.Kind, dst: p.intern(op.Dst), imm: op.Imm, counter: cm.counter}
		if op.Kind == program.OpSet {
			if pv, ok := params[op.Dst.Name]; ok {
				c.imm = pv
			}
		}
		for _, s := range op.Srcs {
			c.srcs = append(c.srcs, p.intern(s))
		}
		ops = append(ops, c)
	}
	return ops
}

// sortedPeers returns the export map's keys ascending.
func sortedPeers(m map[network.SwitchID]deploy.CoordHeader) []network.SwitchID {
	out := make([]network.SwitchID, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HopBytesPerPacket returns the coordination header bytes every packet
// carries per communicating pair — the deployment's byte cost scaled
// by traffic in replay metrics.
func (p *Pipeline) HopBytesPerPacket() map[placement.RouteKey]int {
	out := map[placement.RouteKey]int{}
	for _, cs := range p.sws {
		for i, key := range cs.hopKeys {
			out[key] = cs.hopBytes[i]
		}
	}
	return out
}

// BatchSize returns the compiled packets-per-batch capacity.
func (p *Pipeline) BatchSize() int { return p.batchSize }

// GetBatch takes a cleared batch from the pool.
func (p *Pipeline) GetBatch() *Batch {
	b := p.pool.Get().(*Batch)
	clearU64(b.hdr)
	clearU64(b.hdrHas)
	clearU64(b.coord)
	clearU64(b.written)
	b.n = 0
	b.err = nil
	b.writes = nil
	return b
}

// PutBatch recycles a batch.
func (p *Pipeline) PutBatch(b *Batch) { p.pool.Put(b) }

func clearU64(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

// Load fills a pooled batch from interpreter-style packets. Header
// fields outside the compiled universe are errors: the caller names
// them via NewPipeline's extraHeaders.
func (p *Pipeline) Load(packets []*Packet) (*Batch, error) {
	if len(packets) > p.batchSize {
		return nil, fmt.Errorf("dataplane: %d packets exceed batch size %d", len(packets), p.batchSize)
	}
	b := p.GetBatch()
	b.n = len(packets)
	if p.RecordWrites {
		b.writes = make([]map[string]uint64, b.n)
		for i := range b.writes {
			b.writes[i] = map[string]uint64{}
		}
	}
	for i, pkt := range packets {
		row := i * p.nHdr
		has := i * p.hdrWords
		for name, v := range pkt.Headers {
			fid, ok := p.hdrIdx[name]
			if !ok {
				p.PutBatch(b)
				return nil, fmt.Errorf("dataplane: packet header %q not compiled into the pipeline", name)
			}
			b.hdr[row+int(fid)] = v
			b.hdrHas[has+int(fid)/64] |= 1 << (uint(fid) % 64)
		}
	}
	return b, nil
}

// Unload writes batch row i's header columns back onto a packet.
func (p *Pipeline) Unload(b *Batch, i int, pkt *Packet) {
	row := i * p.nHdr
	has := i * p.hdrWords
	for fid := 0; fid < p.nHdr; fid++ {
		if b.hdrHas[has+fid/64]&(1<<(uint(fid)%64)) != 0 {
			pkt.Headers[p.hdrNames[fid]] = b.hdr[row+fid]
		}
	}
}

// Run processes the batch through every switch stage sequentially —
// the mode correctness tests and the non-pipelined replay use. The
// batch is mutated in place; an execution error is returned and also
// recorded on the batch.
func (p *Pipeline) Run(b *Batch) error {
	for _, cs := range p.sws {
		if err := p.runSwitch(cs, b); err != nil {
			b.err = err
			return err
		}
	}
	return nil
}

// runSwitch executes one switch stage over every packet of the batch.
//
//hermes:hot
func (p *Pipeline) runSwitch(cs *cswitch, b *Batch) error {
	for i := 0; i < b.n; i++ {
		// Import coordination headers: later-visited upstreams win by
		// list order.
		coord := b.coord[i*p.nSlots:]
		for _, im := range cs.imports {
			cs.metaVal[im.fid] = coord[im.slot]
			if cs.metaHas[im.fid/64]&(1<<(uint(im.fid)%64)) == 0 {
				cs.metaHas[im.fid/64] |= 1 << (uint(im.fid) % 64)
				cs.touched = append(cs.touched, im.fid)
			}
		}
		for _, cm := range cs.mats {
			if err := p.execMAT(cs, cm, b, i); err != nil {
				cs.resetContext()
				return err
			}
		}
		// Export coordination headers (absent metadata serializes 0).
		for _, ex := range cs.exports {
			v := uint64(0)
			if cs.metaHas[ex.fid/64]&(1<<(uint(ex.fid)%64)) != 0 {
				v = cs.metaVal[ex.fid]
			}
			coord[ex.slot] = v
		}
		cs.resetContext()
	}
	return nil
}

// resetContext clears the per-packet metadata context via the touched
// list.
func (cs *cswitch) resetContext() {
	for _, fid := range cs.touched {
		cs.metaHas[fid/64] &^= 1 << (uint(fid) % 64)
	}
	cs.touched = cs.touched[:0]
}

// readField reads a field for packet i, enforcing the coordination
// contract on metadata: present → value, absent-but-written-upstream →
// hard error, never written → zero.
//
//hermes:hot
func (p *Pipeline) readField(cs *cswitch, b *Batch, i int, ref fieldRef, mat string) (uint64, error) {
	if !ref.meta {
		return b.hdr[i*p.nHdr+int(ref.id)], nil
	}
	if cs.metaHas[ref.id/64]&(1<<(uint(ref.id)%64)) != 0 {
		return cs.metaVal[ref.id], nil
	}
	if b.written[i*p.metaWords+int(ref.id)/64]&(1<<(uint(ref.id)%64)) != 0 {
		return 0, &coordinationError{mat: mat, field: p.metaNames[ref.id]}
	}
	return 0, nil
}

// writeField writes a field for packet i, recording the pre-write
// value the first time this MAT execution touches the field (epoch
// check) so the post-MAT diff reproduces recordWrites.
//
//hermes:hot
func (p *Pipeline) writeField(cs *cswitch, b *Batch, i int, ref fieldRef, v uint64) {
	v &= ref.mask
	enc := int(ref.id)
	if !ref.meta {
		enc += p.nMeta
	}
	if cs.seen[enc] != cs.epoch {
		cs.seen[enc] = cs.epoch
		var old uint64
		var had bool
		if ref.meta {
			had = cs.metaHas[ref.id/64]&(1<<(uint(ref.id)%64)) != 0
			old = cs.metaVal[ref.id]
		} else {
			had = b.hdrHas[i*p.hdrWords+int(ref.id)/64]&(1<<(uint(ref.id)%64)) != 0
			old = b.hdr[i*p.nHdr+int(ref.id)]
		}
		cs.recFid = append(cs.recFid, ref.id)
		cs.recMeta = append(cs.recMeta, ref.meta)
		cs.recOld = append(cs.recOld, old)
		cs.recHad = append(cs.recHad, had)
	}
	if ref.meta {
		if cs.metaHas[ref.id/64]&(1<<(uint(ref.id)%64)) == 0 {
			cs.metaHas[ref.id/64] |= 1 << (uint(ref.id) % 64)
			cs.touched = append(cs.touched, ref.id)
		}
		cs.metaVal[ref.id] = v
		return
	}
	b.hdrHas[i*p.hdrWords+int(ref.id)/64] |= 1 << (uint(ref.id) % 64)
	b.hdr[i*p.nHdr+int(ref.id)] = v
}

// execMAT runs one compiled MAT for packet i: match phase, action, and
// the write diff that feeds the written-bits vector (and the optional
// write log).
//
//hermes:hot
func (p *Pipeline) execMAT(cs *cswitch, cm *cmat, b *Batch, i int) error {
	cs.epoch++
	cs.recFid = cs.recFid[:0]
	cs.recMeta = cs.recMeta[:0]
	cs.recOld = cs.recOld[:0]
	cs.recHad = cs.recHad[:0]

	var ops []cop
	hit := false
	for ri := range cm.rules {
		r := &cm.rules[ri]
		match := true
		for pi, ki := range r.keyIdx {
			k := &cm.keys[ki]
			v, err := p.readField(cs, b, i, k.ref, cm.name)
			if err != nil {
				return err
			}
			if !patternMatches(k.key, r.pats[pi], v) {
				match = false
				break
			}
		}
		if match {
			ops = r.ops
			hit = true
			break
		}
	}
	if !hit {
		// A miss still read the match keys; enforce delivery.
		for ki := range cm.keys {
			if _, err := p.readField(cs, b, i, cm.keys[ki].ref, cm.name); err != nil {
				return err
			}
		}
		if !cm.hasMiss {
			return nil
		}
		ops = cm.missOps
	}

	for oi := range ops {
		op := &ops[oi]
		switch op.kind {
		case program.OpSet:
			p.writeField(cs, b, i, op.dst, op.imm)
		case program.OpCopy:
			v, err := p.readField(cs, b, i, op.srcs[0], cm.name)
			if err != nil {
				return err
			}
			p.writeField(cs, b, i, op.dst, v)
		case program.OpAdd:
			cur, err := p.readField(cs, b, i, op.dst, cm.name)
			if err != nil {
				return err
			}
			var src uint64
			if len(op.srcs) > 0 {
				src, err = p.readField(cs, b, i, op.srcs[0], cm.name)
				if err != nil {
					return err
				}
			}
			p.writeField(cs, b, i, op.dst, cur+src+op.imm)
		case program.OpHash:
			h := uint64(14695981039346656037) // FNV-64a offset basis
			for _, s := range op.srcs {
				v, err := p.readField(cs, b, i, s, cm.name)
				if err != nil {
					return err
				}
				for by := 0; by < 8; by++ {
					h ^= uint64(byte(v >> (8 * uint(by))))
					h *= 1099511628211 // FNV-64 prime
				}
			}
			p.writeField(cs, b, i, op.dst, h)
		case program.OpCount:
			idx, err := p.readField(cs, b, i, op.srcs[0], cm.name)
			if err != nil {
				return err
			}
			slots := p.counters[op.counter]
			slot := idx % uint64(len(slots))
			slots[slot]++
			p.writeField(cs, b, i, op.dst, slots[slot])
		case program.OpDecrement:
			cur, err := p.readField(cs, b, i, op.dst, cm.name)
			if err != nil {
				return err
			}
			dec := op.imm
			if dec == 0 {
				dec = 1
			}
			if cur < dec {
				cur = dec
			}
			p.writeField(cs, b, i, op.dst, cur-dec)
		default:
			return fmt.Errorf("dataplane: MAT %q: unsupported op %v", cm.name, op.kind)
		}
	}

	// Post-MAT diff (the interpreter's recordWrites): a field counts as
	// written only when this MAT left it changed or newly present.
	for ri, fid := range cs.recFid {
		var cur uint64
		if cs.recMeta[ri] {
			cur = cs.metaVal[fid]
		} else {
			cur = b.hdr[i*p.nHdr+int(fid)]
		}
		if cs.recHad[ri] && cur == cs.recOld[ri] {
			continue
		}
		if cs.recMeta[ri] {
			b.written[i*p.metaWords+int(fid)/64] |= 1 << (uint(fid) % 64)
			if b.writes != nil {
				b.writes[i][p.metaNames[fid]] = cur
			}
		} else if b.writes != nil {
			b.writes[i][p.hdrNames[fid]] = cur
		}
	}
	return nil
}
