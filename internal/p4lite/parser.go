package p4lite

import (
	"fmt"
	"strconv"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
)

// Parse compiles p4lite source into a validated program.
func Parse(src string) (*program.Program, error) {
	prog, _, err := ParseSource(src)
	return prog, err
}

// ParseSource compiles p4lite source and additionally returns the
// Source map: positions for every table, action, and declared field,
// plus which fields the source actually references. The lint engine
// uses it to attach diagnostics to source positions.
func ParseSource(src string) (*program.Program, *Source, error) {
	p := &parser{lx: newLexer(src), declared: map[string]fields.Field{}, info: newSource()}
	// Preload the standard catalog so programs can reference well-known
	// header and metadata fields without declaring them.
	for _, f := range fields.Catalog().Fields() {
		p.declared[f.Name] = f
	}
	if err := p.advance(); err != nil {
		return nil, nil, err
	}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, nil, err
	}
	return prog, p.info, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lx       *lexer
	tok      token
	declared map[string]fields.Field
	builder  *program.Builder
	progName string
	info     *Source
	// tables and actions are tracked for control-edge validation and
	// for associating defaults.
	tables map[string]bool
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errf(format string, args ...any) *Error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// expectIdent consumes an identifier (optionally a specific keyword).
func (p *parser) expectIdent(keyword string) (token, error) {
	if p.tok.kind != tokIdent {
		if keyword != "" {
			return token{}, p.errf("expected %q, found %s", keyword, p.tok)
		}
		return token{}, p.errf("expected identifier, found %s", p.tok)
	}
	if keyword != "" && p.tok.text != keyword {
		return token{}, p.errf("expected %q, found %s", keyword, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// expectSymbol consumes a specific symbol.
func (p *parser) expectSymbol(sym string) error {
	if p.tok.kind != tokSymbol || p.tok.text != sym {
		return p.errf("expected %q, found %s", sym, p.tok)
	}
	return p.advance()
}

// expectNumber consumes a number literal.
func (p *parser) expectNumber() (uint64, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number, found %s", p.tok)
	}
	v, err := strconv.ParseUint(p.tok.text, 0, 64)
	if err != nil {
		return 0, p.errf("bad number %q: %v", p.tok.text, err)
	}
	return v, p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) parseProgram() (*program.Program, error) {
	if _, err := p.expectIdent("program"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return nil, err
	}
	p.progName = name.text
	p.builder = program.NewBuilder(name.text)
	p.tables = map[string]bool{}
	p.info.Program = name.text
	p.info.ProgramPos = Pos{Line: name.line, Col: name.col}

	for p.tok.kind != tokEOF {
		switch {
		case p.atKeyword("metadata"), p.atKeyword("header"):
			if err := p.parseFieldDecl(); err != nil {
				return nil, err
			}
		case p.atKeyword("table"):
			if err := p.parseTable(); err != nil {
				return nil, err
			}
		case p.atKeyword("control"):
			if err := p.parseControl(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected declaration, found %s", p.tok)
		}
	}
	prog, err := p.builder.Build()
	if err != nil {
		return nil, fmt.Errorf("p4lite: %w", err)
	}
	return prog, nil
}

func (p *parser) parseFieldDecl() error {
	kindTok, err := p.expectIdent("")
	if err != nil {
		return err
	}
	nameTok, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if err := p.expectSymbol(":"); err != nil {
		return err
	}
	bits, err := p.expectNumber()
	if err != nil {
		return err
	}
	if bits == 0 || bits > 128 {
		return &Error{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("field %q: width %d out of range 1..128", nameTok.text, bits)}
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	var f fields.Field
	if kindTok.text == "metadata" {
		f = fields.Metadata(nameTok.text, int(bits))
	} else {
		f = fields.Header(nameTok.text, int(bits))
	}
	if prev, dup := p.declared[f.Name]; dup && prev != f {
		return &Error{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("field %q redeclared with a different shape", f.Name)}
	}
	p.declared[f.Name] = f
	p.info.FieldDecls[f.Name] = Pos{Line: nameTok.line, Col: nameTok.col}
	return nil
}

// lookupField resolves a field reference.
func (p *parser) lookupField(tok token) (fields.Field, error) {
	f, ok := p.declared[tok.text]
	if !ok {
		return fields.Field{}, &Error{Line: tok.line, Col: tok.col,
			Msg: fmt.Sprintf("unknown field %q (declare it with 'metadata' or 'header')", tok.text)}
	}
	p.info.FieldRefs[f.Name] = true
	return f, nil
}

func (p *parser) parseTable() error {
	if _, err := p.expectIdent("table"); err != nil {
		return err
	}
	nameTok, err := p.expectIdent("")
	if err != nil {
		return err
	}
	if p.tables[nameTok.text] {
		return &Error{Line: nameTok.line, Col: nameTok.col,
			Msg: fmt.Sprintf("table %q redeclared", nameTok.text)}
	}
	p.tables[nameTok.text] = true
	matName := p.progName + "/" + nameTok.text
	p.info.Tables[matName] = Pos{Line: nameTok.line, Col: nameTok.col}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}

	capacity := 1024 // default when not stated
	var keys []struct {
		f fields.Field
		t program.MatchType
	}
	type actionDef struct {
		name string
		ops  []program.Op
	}
	var actions []actionDef
	defaultAction := ""

	for !(p.tok.kind == tokSymbol && p.tok.text == "}") {
		switch {
		case p.atKeyword("capacity"):
			if _, err := p.expectIdent("capacity"); err != nil {
				return err
			}
			n, err := p.expectNumber()
			if err != nil {
				return err
			}
			if n == 0 {
				return p.errf("capacity must be positive")
			}
			capacity = int(n)
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
		case p.atKeyword("key"):
			if _, err := p.expectIdent("key"); err != nil {
				return err
			}
			fieldTok, err := p.expectIdent("")
			if err != nil {
				return err
			}
			f, err := p.lookupField(fieldTok)
			if err != nil {
				return err
			}
			if err := p.expectSymbol(":"); err != nil {
				return err
			}
			mtTok, err := p.expectIdent("")
			if err != nil {
				return err
			}
			mt, err := matchTypeOf(mtTok)
			if err != nil {
				return err
			}
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
			keys = append(keys, struct {
				f fields.Field
				t program.MatchType
			}{f, mt})
		case p.atKeyword("action"):
			if _, err := p.expectIdent("action"); err != nil {
				return err
			}
			actTok, err := p.expectIdent("")
			if err != nil {
				return err
			}
			p.info.Actions[matName+"."+actTok.text] = Pos{Line: actTok.line, Col: actTok.col}
			ops, err := p.parseActionBody()
			if err != nil {
				return err
			}
			actions = append(actions, actionDef{name: actTok.text, ops: ops})
		case p.atKeyword("default"):
			if _, err := p.expectIdent("default"); err != nil {
				return err
			}
			defTok, err := p.expectIdent("")
			if err != nil {
				return err
			}
			defaultAction = defTok.text
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
		default:
			return p.errf("expected table item, found %s", p.tok)
		}
	}
	if err := p.expectSymbol("}"); err != nil {
		return err
	}

	p.builder.Table(nameTok.text, capacity)
	for _, k := range keys {
		p.builder.Key(k.f, k.t)
	}
	for _, a := range actions {
		p.builder.ActionDef(a.name, a.ops...)
	}
	if defaultAction != "" {
		p.builder.Default(defaultAction)
	}
	return nil
}

func matchTypeOf(tok token) (program.MatchType, error) {
	switch tok.text {
	case "exact":
		return program.MatchExact, nil
	case "lpm":
		return program.MatchLPM, nil
	case "ternary":
		return program.MatchTernary, nil
	case "range":
		return program.MatchRange, nil
	default:
		return 0, &Error{Line: tok.line, Col: tok.col,
			Msg: fmt.Sprintf("unknown match type %q (exact, lpm, ternary, range)", tok.text)}
	}
}

func (p *parser) parseActionBody() ([]program.Op, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	var ops []program.Op
	for !(p.tok.kind == tokSymbol && p.tok.text == "}") {
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, p.expectSymbol("}")
}

func (p *parser) parseOp() (program.Op, error) {
	verbTok, err := p.expectIdent("")
	if err != nil {
		return program.Op{}, err
	}
	switch verbTok.text {
	case "set":
		dst, err := p.dstField()
		if err != nil {
			return program.Op{}, err
		}
		if err := p.expectSymbol("<-"); err != nil {
			return program.Op{}, err
		}
		imm, err := p.expectNumber()
		if err != nil {
			return program.Op{}, err
		}
		return program.SetOp(dst, imm), p.expectSymbol(";")
	case "copy":
		dst, err := p.dstField()
		if err != nil {
			return program.Op{}, err
		}
		if err := p.expectSymbol("<-"); err != nil {
			return program.Op{}, err
		}
		src, err := p.srcField()
		if err != nil {
			return program.Op{}, err
		}
		return program.CopyOp(dst, src), p.expectSymbol(";")
	case "add":
		dst, err := p.dstField()
		if err != nil {
			return program.Op{}, err
		}
		if err := p.expectSymbol("<-"); err != nil {
			return program.Op{}, err
		}
		src, err := p.srcField()
		if err != nil {
			return program.Op{}, err
		}
		var imm uint64
		if p.tok.kind == tokSymbol && p.tok.text == "+" {
			if err := p.expectSymbol("+"); err != nil {
				return program.Op{}, err
			}
			imm, err = p.expectNumber()
			if err != nil {
				return program.Op{}, err
			}
		}
		return program.AddOp(dst, src, imm), p.expectSymbol(";")
	case "hash":
		dst, err := p.dstField()
		if err != nil {
			return program.Op{}, err
		}
		if err := p.expectSymbol("<-"); err != nil {
			return program.Op{}, err
		}
		var srcs []fields.Field
		for {
			src, err := p.srcField()
			if err != nil {
				return program.Op{}, err
			}
			srcs = append(srcs, src)
			if p.tok.kind == tokSymbol && p.tok.text == "," {
				if err := p.expectSymbol(","); err != nil {
					return program.Op{}, err
				}
				continue
			}
			break
		}
		return program.HashOp(dst, srcs...), p.expectSymbol(";")
	case "count":
		dst, err := p.dstField()
		if err != nil {
			return program.Op{}, err
		}
		if err := p.expectSymbol("<-"); err != nil {
			return program.Op{}, err
		}
		idx, err := p.srcField()
		if err != nil {
			return program.Op{}, err
		}
		return program.CountOp(dst, idx), p.expectSymbol(";")
	case "dec":
		dst, err := p.dstField()
		if err != nil {
			return program.Op{}, err
		}
		var imm uint64
		if p.atKeyword("by") {
			if _, err := p.expectIdent("by"); err != nil {
				return program.Op{}, err
			}
			imm, err = p.expectNumber()
			if err != nil {
				return program.Op{}, err
			}
		}
		return program.DecOp(dst, imm), p.expectSymbol(";")
	default:
		return program.Op{}, &Error{Line: verbTok.line, Col: verbTok.col,
			Msg: fmt.Sprintf("unknown operation %q (set, copy, add, hash, count, dec)", verbTok.text)}
	}
}

func (p *parser) dstField() (fields.Field, error) {
	tok, err := p.expectIdent("")
	if err != nil {
		return fields.Field{}, err
	}
	return p.lookupField(tok)
}

func (p *parser) srcField() (fields.Field, error) {
	tok, err := p.expectIdent("")
	if err != nil {
		return fields.Field{}, err
	}
	return p.lookupField(tok)
}

func (p *parser) parseControl() error {
	if _, err := p.expectIdent("control"); err != nil {
		return err
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	for !(p.tok.kind == tokSymbol && p.tok.text == "}") {
		fromTok, err := p.expectIdent("")
		if err != nil {
			return err
		}
		if err := p.expectSymbol("->"); err != nil {
			return err
		}
		toTok, err := p.expectIdent("")
		if err != nil {
			return err
		}
		if err := p.expectSymbol(";"); err != nil {
			return err
		}
		if !p.tables[fromTok.text] {
			return &Error{Line: fromTok.line, Col: fromTok.col,
				Msg: fmt.Sprintf("control edge from unknown table %q", fromTok.text)}
		}
		if !p.tables[toTok.text] {
			return &Error{Line: toTok.line, Col: toTok.col,
				Msg: fmt.Sprintf("control edge to unknown table %q", toTok.text)}
		}
		p.builder.Gate(fromTok.text, toTok.text)
	}
	return p.expectSymbol("}")
}
