package p4lite

import (
	"os"
	"path/filepath"
	"testing"
)

// corpusSeeds loads the shipped example programs as fuzz seeds so the
// fuzzer starts from realistic inputs (including bad.p4, which parses
// but lints dirty).
func corpusSeeds(f *testing.F) []string {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "p4src", "*.p4"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no example corpus found under examples/p4src")
	}
	var seeds []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	return seeds
}

// FuzzParse checks that arbitrary input never panics the frontend and
// that every accepted program is valid.
func FuzzParse(f *testing.F) {
	f.Add(heavyHitterSrc)
	f.Add("program p;")
	f.Add("program p;\nmetadata m : 8;\ntable t { action a { set m <- 1; } }")
	f.Add("table { } } {")
	f.Add("// nothing")
	for _, seed := range corpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, info, err := ParseSource(src)
		if err != nil {
			return
		}
		if verr := prog.Validate(); verr != nil {
			t.Fatalf("Parse accepted invalid program: %v", verr)
		}
		if info == nil {
			t.Fatal("ParseSource must return source info for accepted programs")
		}
		// Every recorded table position must refer to a real MAT.
		mats := map[string]bool{}
		for _, m := range prog.MATs {
			mats[m.Name] = true
		}
		for name, pos := range info.Tables {
			if !mats[name] {
				t.Fatalf("source info records unknown table %q", name)
			}
			if pos.IsZero() {
				t.Fatalf("table %q has no position", name)
			}
		}
	})
}
