package p4lite

import "testing"

// FuzzParse checks that arbitrary input never panics the frontend and
// that every accepted program is valid.
func FuzzParse(f *testing.F) {
	f.Add(heavyHitterSrc)
	f.Add("program p;")
	f.Add("program p;\nmetadata m : 8;\ntable t { action a { set m <- 1; } }")
	f.Add("table { } } {")
	f.Add("// nothing")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if verr := prog.Validate(); verr != nil {
			t.Fatalf("Parse accepted invalid program: %v", verr)
		}
	})
}
