package p4lite

import "sort"

// Pos is a 1-based source position from the p4lite lexer.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsZero reports whether the position is unset.
func (p Pos) IsZero() bool { return p.Line == 0 && p.Col == 0 }

// Source maps the entities of a parsed program back to their positions
// in the p4lite text, plus the declaration/reference facts the compiled
// program.Program no longer carries. The lint engine consumes it to
// attach positions and to detect unused declarations.
type Source struct {
	// Program is the program name; ProgramPos is where it was declared.
	Program    string
	ProgramPos Pos
	// Tables maps the full MAT name ("<program>/<table>") to the
	// position of the table declaration.
	Tables map[string]Pos
	// Actions maps "<program>/<table>.<action>" to the action position.
	Actions map[string]Pos
	// FieldDecls maps each field declared in this source (catalog
	// fields excluded) to its declaration position.
	FieldDecls map[string]Pos
	// FieldRefs records every field name referenced anywhere in the
	// source after its declaration: keys, op operands, control edges.
	FieldRefs map[string]bool
}

// newSource returns an empty source map.
func newSource() *Source {
	return &Source{
		Tables:     map[string]Pos{},
		Actions:    map[string]Pos{},
		FieldDecls: map[string]Pos{},
		FieldRefs:  map[string]bool{},
	}
}

// TablePos returns the declaration position of the full MAT name.
func (s *Source) TablePos(mat string) Pos {
	if s == nil {
		return Pos{}
	}
	return s.Tables[mat]
}

// ActionPos returns the position of "<mat>.<action>", falling back to
// the table position when the action is unknown.
func (s *Source) ActionPos(mat, action string) Pos {
	if s == nil {
		return Pos{}
	}
	if p, ok := s.Actions[mat+"."+action]; ok {
		return p
	}
	return s.Tables[mat]
}

// FieldPos returns the declaration position of a field, zero for
// catalog fields.
func (s *Source) FieldPos(name string) Pos {
	if s == nil {
		return Pos{}
	}
	return s.FieldDecls[name]
}

// UnusedFields returns the declared-but-never-referenced field names,
// sorted for deterministic reporting.
func (s *Source) UnusedFields() []string {
	if s == nil {
		return nil
	}
	var out []string
	for name := range s.FieldDecls {
		if !s.FieldRefs[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
