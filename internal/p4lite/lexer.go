// Package p4lite is a textual frontend for data plane programs: a
// small, P4-inspired table/action language that compiles to the
// library's program representation. It plays the role P4C [41] plays in
// the paper — turning program text into the MAT collections the
// analyzer consumes — without dragging in the full P4 toolchain.
//
// Grammar (line comments with //):
//
//	program  = "program" ident ";" { decl } ;
//	decl     = fieldDecl | tableDecl | controlDecl ;
//	fieldDecl = ("metadata" | "header") ident ":" number ";" ;
//	tableDecl = "table" ident "{" { tableItem } "}" ;
//	tableItem = "capacity" number ";"
//	          | "key" ident ":" matchType ";"
//	          | "action" ident "{" { op } "}"
//	          | "default" ident ";" ;
//	matchType = "exact" | "lpm" | "ternary" | "range" ;
//	op        = "set"   ident "<-" number ";"
//	          | "copy"  ident "<-" ident ";"
//	          | "add"   ident "<-" ident [ "+" number ] ";"
//	          | "hash"  ident "<-" ident { "," ident } ";"
//	          | "count" ident "<-" ident ";"
//	          | "dec"   ident [ "by" number ] ";" ;
//	controlDecl = "control" "{" { ident "->" ident ";" } "}" ;
//
// Field references may name declared fields or any entry of the
// standard catalog (e.g. ipv4.srcAddr).
package p4lite

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokSymbol // one of ; : { } , respectively "<-" "->" "+"
	tokEOF
)

// token is one lexeme with its position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes p4lite source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a positioned frontend error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("p4lite:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (lx *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/':
			// Line comment.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
				for {
					c, ok := lx.peekByte()
					if !ok || c == '\n' {
						break
					}
					lx.advance()
				}
				continue
			}
			return token{}, lx.errf("stray '/'")
		default:
			return lx.scanToken()
		}
	}
}

func (lx *lexer) scanToken() (token, error) {
	startLine, startCol := lx.line, lx.col
	c, _ := lx.peekByte()
	switch {
	case isIdentStart(rune(c)):
		var b strings.Builder
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(rune(c)) {
				break
			}
			b.WriteByte(lx.advance())
		}
		return token{kind: tokIdent, text: b.String(), line: startLine, col: startCol}, nil
	case c >= '0' && c <= '9':
		var b strings.Builder
		for {
			c, ok := lx.peekByte()
			if !ok || !(c >= '0' && c <= '9' || c == 'x' || c == 'X' ||
				c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
				break
			}
			b.WriteByte(lx.advance())
		}
		return token{kind: tokNumber, text: b.String(), line: startLine, col: startCol}, nil
	case c == '<':
		lx.advance()
		if c2, ok := lx.peekByte(); ok && c2 == '-' {
			lx.advance()
			return token{kind: tokSymbol, text: "<-", line: startLine, col: startCol}, nil
		}
		return token{}, &Error{Line: startLine, Col: startCol, Msg: "expected '<-'"}
	case c == '-':
		lx.advance()
		if c2, ok := lx.peekByte(); ok && c2 == '>' {
			lx.advance()
			return token{kind: tokSymbol, text: "->", line: startLine, col: startCol}, nil
		}
		return token{}, &Error{Line: startLine, Col: startCol, Msg: "expected '->'"}
	case strings.ContainsRune(";:{},+", rune(c)):
		lx.advance()
		return token{kind: tokSymbol, text: string(c), line: startLine, col: startCol}, nil
	default:
		return token{}, &Error{Line: startLine, Col: startCol, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
