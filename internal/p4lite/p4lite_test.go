package p4lite

import (
	"errors"
	"strings"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

const heavyHitterSrc = `
// Heavy-hitter detection: hash, count, flag.
program hh;

metadata idx : 32;
metadata cnt : 32;
metadata heavy : 8;

table hash_tbl {
  capacity 1;
  action mix { hash idx <- ipv4.srcAddr, ipv4.dstAddr; }
  default mix;
}

table count_tbl {
  key idx : exact;
  capacity 4096;
  action bump { count cnt <- idx; }
  default bump;
}

table flag_tbl {
  key cnt : range;
  capacity 8;
  action mark  { set heavy <- 1; }
  action clear { set heavy <- 0; }
  default clear;
}
`

func TestParseHeavyHitter(t *testing.T) {
	prog, err := Parse(heavyHitterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "hh" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.MATs) != 3 {
		t.Fatalf("MATs = %d, want 3", len(prog.MATs))
	}
	cnt, ok := prog.MAT("hh/count_tbl")
	if !ok {
		t.Fatal("count_tbl missing")
	}
	if cnt.Capacity != 4096 {
		t.Errorf("capacity = %d", cnt.Capacity)
	}
	if len(cnt.Keys) != 1 || cnt.Keys[0].Field.Name != "idx" || cnt.Keys[0].Type != program.MatchExact {
		t.Errorf("keys = %+v", cnt.Keys)
	}
	flag, _ := prog.MAT("hh/flag_tbl")
	if len(flag.Actions) != 2 || flag.DefaultAction != "clear" {
		t.Errorf("flag actions = %+v default %q", flag.Actions, flag.DefaultAction)
	}

	// The parsed program analyzes into the expected TDG.
	g, err := analyzer.Analyze([]*program.Program{prog}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("hh/hash_tbl", "hh/count_tbl")
	if !ok || e.Type != tdg.DepMatch {
		t.Fatalf("hash->count edge = %+v ok=%v", e, ok)
	}
	if e.MetadataBytes != 4 {
		t.Errorf("A(hash,count) = %d, want 4", e.MetadataBytes)
	}
}

func TestParseControlEdges(t *testing.T) {
	src := `
program p;
metadata a : 8;
metadata b : 8;
table t1 { action w { set a <- 1; } default w; }
table t2 { action w { set b <- 1; } default w; }
control { t1 -> t2; }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Control) != 1 {
		t.Fatalf("control edges = %d", len(prog.Control))
	}
	g, err := analyzer.Analyze([]*program.Program{prog}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/t1", "p/t2")
	if !ok || e.Type != tdg.DepSuccessor {
		t.Errorf("gate edge = %+v ok=%v", e, ok)
	}
}

func TestParseAllOps(t *testing.T) {
	src := `
program ops;
metadata m1 : 32;
metadata m2 : 32;
table t {
  capacity 4;
  action a {
    set m1 <- 0x2A;
    copy m2 <- m1;
    add m2 <- m1 + 3;
    hash m1 <- ipv4.srcAddr, tcp.srcPort;
    count m2 <- m1;
    dec ipv4.ttl by 1;
    dec m1;
  }
  default a;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := prog.MAT("ops/t")
	if len(m.Actions[0].Ops) != 7 {
		t.Fatalf("ops = %d, want 7", len(m.Actions[0].Ops))
	}
	kinds := []program.OpKind{
		program.OpSet, program.OpCopy, program.OpAdd,
		program.OpHash, program.OpCount, program.OpDecrement, program.OpDecrement,
	}
	for i, k := range kinds {
		if m.Actions[0].Ops[i].Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, m.Actions[0].Ops[i].Kind, k)
		}
	}
	if m.Actions[0].Ops[0].Imm != 0x2A {
		t.Errorf("hex literal parsed to %d", m.Actions[0].Ops[0].Imm)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	tests := []struct {
		name    string
		src     string
		wantSub string
	}{
		{"missing program", `table t {}`, `expected "program"`},
		{"unknown field", "program p;\ntable t { action a { set nosuch <- 1; } }", "unknown field"},
		{"bad match type", "program p;\nmetadata m : 8;\ntable t { key m : fuzzy; action a { set m <- 1; } }", "unknown match type"},
		{"bad op", "program p;\nmetadata m : 8;\ntable t { action a { frobnicate m; } }", "unknown operation"},
		{"zero capacity", "program p;\nmetadata m : 8;\ntable t { capacity 0; action a { set m <- 1; } }", "capacity must be positive"},
		{"control unknown table", "program p;\nmetadata m : 8;\ntable t { action a { set m <- 1; } }\ncontrol { t -> ghost; }", "unknown table"},
		{"redeclared table", "program p;\nmetadata m : 8;\ntable t { action a { set m <- 1; } }\ntable t { action a { set m <- 1; } }", "redeclared"},
		{"field width", "program p;\nmetadata m : 0;", "out of range"},
		{"field conflict", "program p;\nmetadata ipv4.ttl : 16;", "redeclared with a different shape"},
		{"stray char", "program p; @", "unexpected character"},
		{"bad arrow", "program p;\nmetadata m : 8;\ntable t { action a { set m < 1; } }", "expected '<-'"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("parse succeeded")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
			var perr *Error
			if errors.As(err, &perr) {
				if perr.Line < 1 || perr.Col < 1 {
					t.Errorf("error lacks position: %+v", perr)
				}
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	src := "program p;\nmetadata m : 8;\ntable t {\n  action a {\n    set ghost <- 1;\n  }\n}"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("parse succeeded")
	}
	var perr *Error
	if !errors.As(err, &perr) {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 5 {
		t.Errorf("error line = %d, want 5", perr.Line)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// leading comment
program p; // trailing comment

	metadata   m : 8; // indented with tabs

table t { // table comment
  action a { set m <- 1; } default a;
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCapacityApplied(t *testing.T) {
	src := "program p;\nmetadata m : 8;\ntable t { action a { set m <- 1; } }"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.MATs[0].Capacity != 1024 {
		t.Errorf("default capacity = %d, want 1024", prog.MATs[0].Capacity)
	}
}

func TestCatalogFieldsAvailable(t *testing.T) {
	src := `
program p;
table route {
  key ipv4.dstAddr : lpm;
  capacity 1000;
  action fwd { set meta.egress_port <- 1; dec ipv4.ttl; }
  default fwd;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.MATs[0]
	if m.Keys[0].Type != program.MatchLPM {
		t.Errorf("match type = %v", m.Keys[0].Type)
	}
	mod, err := m.ModifiedFields()
	if err != nil {
		t.Fatal(err)
	}
	if !mod.Contains("meta.egress_port") || !mod.Contains("ipv4.ttl") {
		t.Errorf("modified = %v", mod)
	}
}
