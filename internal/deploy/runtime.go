package deploy

import (
	"fmt"
	"sort"
	"sync"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// Controller is the runtime side of the backend (paper §VI-A: "at
// runtime, it invokes the network controller"): it installs and removes
// user rules on deployed MATs, routing each update to the switch that
// hosts the table and enforcing the table's capacity C_a. It is safe
// for concurrent use.
type Controller struct {
	mu  sync.Mutex
	dep *Deployment
	// hosts maps MAT name to its hosting switch, precomputed.
	hosts map[string]network.SwitchID
}

// NewController wraps a compiled deployment.
func NewController(dep *Deployment) (*Controller, error) {
	if dep == nil || dep.Plan == nil {
		return nil, fmt.Errorf("deploy: controller over nil deployment")
	}
	hosts := make(map[string]network.SwitchID, len(dep.Plan.Assignments))
	for name, sp := range dep.Plan.Assignments {
		hosts[name] = sp.Switch
	}
	return &Controller{dep: dep, hosts: hosts}, nil
}

// HostingSwitch reports which switch runs the named MAT.
func (c *Controller) HostingSwitch(mat string) (network.SwitchID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.hosts[mat]
	if !ok {
		return 0, fmt.Errorf("deploy: MAT %q is not deployed", mat)
	}
	return id, nil
}

// lookupMAT returns the live MAT struct shared with the data plane
// engine. Caller holds the lock.
func (c *Controller) lookupMAT(mat string) (*program.MAT, error) {
	node, ok := c.dep.Plan.Graph.Node(mat)
	if !ok {
		return nil, fmt.Errorf("deploy: MAT %q is not deployed", mat)
	}
	return node.MAT, nil
}

// InstallRule adds a rule to the named MAT, enforcing validity and the
// rule capacity C_a. Updates take effect on the next processed packet.
func (c *Controller) InstallRule(mat string, r program.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.lookupMAT(mat)
	if err != nil {
		return err
	}
	if err := m.ValidateRule(r); err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	if len(m.Rules) >= m.Capacity {
		return fmt.Errorf("deploy: MAT %q is full (%d/%d rules)", mat, len(m.Rules), m.Capacity)
	}
	m.Rules = append(m.Rules, r)
	return nil
}

// RemoveRule deletes the rule at the given installation index.
func (c *Controller) RemoveRule(mat string, index int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.lookupMAT(mat)
	if err != nil {
		return err
	}
	if index < 0 || index >= len(m.Rules) {
		return fmt.Errorf("deploy: MAT %q has no rule %d (have %d)", mat, index, len(m.Rules))
	}
	m.Rules = append(m.Rules[:index], m.Rules[index+1:]...)
	return nil
}

// RuleCount reports how many rules the named MAT holds.
func (c *Controller) RuleCount(mat string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.lookupMAT(mat)
	if err != nil {
		return 0, err
	}
	return len(m.Rules), nil
}

// SwitchLoad summarizes one switch's control-plane exposure: how many
// deployed MATs and installed rules it carries (MTP's motivation is
// bounding exactly this).
type SwitchLoad struct {
	Switch network.SwitchID
	MATs   int
	Rules  int
}

// Loads reports the per-switch MAT/rule load, ascending by switch.
func (c *Controller) Loads() []SwitchLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := map[network.SwitchID]*SwitchLoad{}
	for name, sw := range c.hosts {
		l := agg[sw]
		if l == nil {
			l = &SwitchLoad{Switch: sw}
			agg[sw] = l
		}
		l.MATs++
		if node, ok := c.dep.Plan.Graph.Node(name); ok {
			l.Rules += len(node.MAT.Rules)
		}
	}
	out := make([]SwitchLoad, 0, len(agg))
	for _, l := range agg {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Switch < out[j].Switch })
	return out
}
