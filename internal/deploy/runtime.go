package deploy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// ErrSwitchDown marks a rule operation that failed because the MAT's
// hosting switch is marked down in the deployment topology's fault
// state. The condition is transient — a supervised redeploy moves the
// MAT, or a heal brings the switch back — so the controller retries
// these (and only these) under its RetryPolicy.
var ErrSwitchDown = errors.New("deploy: hosting switch is down")

// RetryPolicy bounds the controller's retry loop for rule operations
// that fail with ErrSwitchDown.
type RetryPolicy struct {
	// Attempts is the total number of tries; values below 1 mean a
	// single attempt (no retry). The zero policy disables retries.
	Attempts int
	// Backoff is the wait before the first retry, doubling on each
	// subsequent one; zero or negative means 10ms.
	Backoff time.Duration
	// Ctx, when non-nil, makes backoff sleeps cancellable: once the
	// context is done the retry loop stops waiting and returns the
	// context's error (wrapping the last op failure) instead of
	// blocking out the full backoff. nil means sleeps run to term.
	Ctx context.Context
	// Sleep replaces the backoff wait in tests; nil means a timer
	// honoring Ctx.
	Sleep func(time.Duration)
}

// Wait blocks for d or until the policy's context is done, whichever
// comes first, returning the context error in the latter case. A
// custom Sleep hook takes precedence (tests inject virtual time) but
// an already-cancelled context still short-circuits it. Retry loops —
// the controller's rule ops and the rollout engine's op batches — use
// this instead of time.Sleep so cancellation cuts backoff short.
func (p RetryPolicy) Wait(d time.Duration) error {
	ctx := p.Ctx
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Controller is the runtime side of the backend (paper §VI-A: "at
// runtime, it invokes the network controller"): it installs and removes
// user rules on deployed MATs, routing each update to the switch that
// hosts the table and enforcing the table's capacity C_a. It is safe
// for concurrent use.
type Controller struct {
	mu  sync.Mutex
	dep *Deployment
	// hosts maps MAT name to its hosting switch. Derived from dep and
	// swapped together with it by Rebind — never mutated piecemeal, so a
	// rule op sees either the old binding or the new one, not a mix.
	hosts map[string]network.SwitchID
	retry RetryPolicy
}

// NewController wraps a compiled deployment.
func NewController(dep *Deployment) (*Controller, error) {
	if dep == nil || dep.Plan == nil {
		return nil, fmt.Errorf("deploy: controller over nil deployment")
	}
	return &Controller{dep: dep, hosts: hostsOf(dep)}, nil
}

func hostsOf(dep *Deployment) map[string]network.SwitchID {
	hosts := make(map[string]network.SwitchID, len(dep.Plan.Assignments))
	for name, sp := range dep.Plan.Assignments {
		hosts[name] = sp.Switch
	}
	return hosts
}

// Rebind atomically points the controller at a redeployed deployment:
// dep and the MAT→switch host map swap under one lock acquisition, so
// rule installs issued after a supervised redeploy route to the new
// hosting switches instead of the stale precomputed ones.
//
// The target must still validate against its (fault-overlaid)
// topology: a plan whose hosting switches died or whose routes broke
// between solve and adoption is rejected rather than bound, so the
// controller never serves rule ops from a deployment the gates would
// fail. Prefer adopting through rollout.Execute, which stages the swap
// make-before-break; a bare Rebind is the engine's final flip.
func (c *Controller) Rebind(dep *Deployment) error {
	if dep == nil || dep.Plan == nil {
		return fmt.Errorf("deploy: rebind to nil deployment")
	}
	if err := dep.Plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		return fmt.Errorf("deploy: rebind rejected, plan invalid against live topology: %w", err)
	}
	hosts := hostsOf(dep)
	c.mu.Lock()
	c.dep = dep
	c.hosts = hosts
	c.mu.Unlock()
	return nil
}

// SetRetryPolicy configures retry-with-backoff for rule operations that
// hit a down hosting switch. The zero policy (default) disables
// retries.
func (c *Controller) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	c.retry = p
	c.mu.Unlock()
}

// withRetry runs op, retrying ErrSwitchDown failures under the policy
// with exponential backoff. Each attempt re-reads controller state, so
// a Rebind (or heal) between attempts resolves the outage. A done
// policy context cuts the backoff short and surfaces both the
// cancellation and the last op failure.
func (c *Controller) withRetry(op func() error) error {
	c.mu.Lock()
	pol := c.retry
	c.mu.Unlock()
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if werr := pol.Wait(backoff); werr != nil {
				return fmt.Errorf("deploy: retry cancelled: %w (last failure: %v)", werr, err)
			}
			backoff *= 2
		}
		err = op()
		if err == nil || !errors.Is(err, ErrSwitchDown) {
			return err
		}
	}
	return err
}

// hostUp returns the MAT's hosting switch after checking the fault
// overlay; a down host yields ErrSwitchDown. Caller holds the lock.
func (c *Controller) hostUp(mat string) (network.SwitchID, error) {
	id, ok := c.hosts[mat]
	if !ok {
		return 0, fmt.Errorf("deploy: MAT %q is not deployed", mat)
	}
	if c.dep.Plan.Topo.SwitchIsDown(id) {
		return 0, fmt.Errorf("deploy: MAT %q on switch %d: %w", mat, id, ErrSwitchDown)
	}
	return id, nil
}

// HostingSwitch reports which switch runs the named MAT.
func (c *Controller) HostingSwitch(mat string) (network.SwitchID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.hosts[mat]
	if !ok {
		return 0, fmt.Errorf("deploy: MAT %q is not deployed", mat)
	}
	return id, nil
}

// lookupMAT returns the live MAT struct shared with the data plane
// engine. Caller holds the lock.
func (c *Controller) lookupMAT(mat string) (*program.MAT, error) {
	node, ok := c.dep.Plan.Graph.Node(mat)
	if !ok {
		return nil, fmt.Errorf("deploy: MAT %q is not deployed", mat)
	}
	return node.MAT, nil
}

// InstallRule adds a rule to the named MAT, enforcing validity and the
// rule capacity C_a. Updates take effect on the next processed packet.
// A down hosting switch is retried under the RetryPolicy; between
// attempts a supervised Rebind (or a heal) can resolve the outage.
func (c *Controller) InstallRule(mat string, r program.Rule) error {
	return c.withRetry(func() error { return c.installRuleOnce(mat, r) })
}

func (c *Controller) installRuleOnce(mat string, r program.Rule) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.hostUp(mat); err != nil {
		return err
	}
	m, err := c.lookupMAT(mat)
	if err != nil {
		return err
	}
	if err := m.ValidateRule(r); err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	if len(m.Rules) >= m.Capacity {
		return fmt.Errorf("deploy: MAT %q is full (%d/%d rules)", mat, len(m.Rules), m.Capacity)
	}
	m.Rules = append(m.Rules, r)
	return nil
}

// RemoveRule deletes the rule at the given installation index, with the
// same down-switch retry semantics as InstallRule.
func (c *Controller) RemoveRule(mat string, index int) error {
	return c.withRetry(func() error { return c.removeRuleOnce(mat, index) })
}

func (c *Controller) removeRuleOnce(mat string, index int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.hostUp(mat); err != nil {
		return err
	}
	m, err := c.lookupMAT(mat)
	if err != nil {
		return err
	}
	if index < 0 || index >= len(m.Rules) {
		return fmt.Errorf("deploy: MAT %q has no rule %d (have %d)", mat, index, len(m.Rules))
	}
	m.Rules = append(m.Rules[:index], m.Rules[index+1:]...)
	return nil
}

// RuleCount reports how many rules the named MAT holds.
func (c *Controller) RuleCount(mat string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, err := c.lookupMAT(mat)
	if err != nil {
		return 0, err
	}
	return len(m.Rules), nil
}

// SwitchLoad summarizes one switch's control-plane exposure: how many
// deployed MATs and installed rules it carries (MTP's motivation is
// bounding exactly this).
type SwitchLoad struct {
	Switch network.SwitchID
	MATs   int
	Rules  int
}

// Loads reports the per-switch MAT/rule load, ascending by switch.
func (c *Controller) Loads() []SwitchLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := map[network.SwitchID]*SwitchLoad{}
	for name, sw := range c.hosts {
		l := agg[sw]
		if l == nil {
			l = &SwitchLoad{Switch: sw}
			agg[sw] = l
		}
		l.MATs++
		if node, ok := c.dep.Plan.Graph.Node(name); ok {
			l.Rules += len(node.MAT.Rules)
		}
	}
	out := make([]SwitchLoad, 0, len(agg))
	for _, l := range agg {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Switch < out[j].Switch })
	return out
}
