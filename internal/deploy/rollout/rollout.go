package rollout

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// ErrRolledBack marks an Execute that could not complete and restored
// the last-good plan; the wrapped cause names the op that failed.
var ErrRolledBack = errors.New("rollout: rolled back to last-good plan")

// Hook observes every op just before its first attempt. phase is the
// engine phase issuing the op ("prepare", "commit", "retire",
// "rollback"); view is the live serving state. The chaos harness uses
// this boundary to inject faults and interrupts; the hook runs on the
// Execute goroutine, so it may mutate the live topology but must not
// call back into the rollout.
type Hook func(phase string, op Op, view *ServingView)

// Options configures one rollout.
type Options struct {
	// Topo is the live topology whose fault overlay gates commits; nil
	// falls back to the new plan's own topology snapshot.
	Topo *network.Topology
	// Ctx cancels the rollout between ops and during backoff sleeps; a
	// cancelled rollout reports OutcomeInterrupted and can resume.
	Ctx context.Context
	// Retry bounds per-op attempts. The zero policy gets rollout
	// defaults (3 attempts, 2ms initial backoff); Retry.Ctx defaults
	// to Ctx so backoff sleeps are cancellable.
	Retry deploy.RetryPolicy
	// JitterSeed seeds the deterministic backoff jitter (±50% spread
	// derived per op/attempt); 0 is a valid seed.
	JitterSeed int64
	// Fabric receives the ops; nil builds a fresh MemFabric over Topo
	// bootstrapped with the old deployment at the from-epoch.
	Fabric Fabric
	// Journal resumes a prior interrupted rollout. Its epoch pair and
	// fingerprint must match the old→new deployments handed to New.
	Journal *Journal
	// Ctrl, when non-nil, is rebound to the new deployment after every
	// group has committed (the only sanctioned Rebind call site).
	Ctrl *deploy.Controller
	// FromEpoch is the old deployment's epoch token; 0 means 1.
	// Ignored on resume (the journal fixes both epochs).
	FromEpoch uint64
	// Equiv additionally gates the new deployment through
	// deploy.EquivHook (the symbolic equivalence checker) before any
	// op is issued.
	Equiv bool
	// ResourceModel for the pre-flight plan validation; nil means
	// program.DefaultResourceModel.
	ResourceModel *program.ResourceModel
	// Hook observes op boundaries (chaos injection, CLI progress).
	Hook Hook
}

// Rollout is one prepared old→new transition. Build with New, run
// with Execute; not safe for concurrent use.
type Rollout struct {
	old, next *deploy.Deployment
	opts      Options
	pol       deploy.RetryPolicy
	fab       Fabric
	j         *Journal
	from, to  uint64

	groups    []*commitGroup
	progGroup map[string]*commitGroup
	serving   map[string]uint64 // group id → serving epoch, 0 = none

	ops         []Op // forward op list: prepares, commits, retires
	prepares    int
	commits     int
	resumed     bool
	rollingBack bool
	aborted     map[network.SwitchID]bool // rollback aborts already done
	unchanged   int
	phStart     time.Time
}

// New diffs old → next and prepares (or resumes) a transactional
// rollout between them.
func New(old, next *deploy.Deployment, opts Options) (*Rollout, error) {
	if old == nil || old.Plan == nil || next == nil || next.Plan == nil {
		return nil, fmt.Errorf("rollout: nil deployment")
	}
	r := &Rollout{old: old, next: next, opts: opts}
	r.from = opts.FromEpoch
	if r.from == 0 {
		r.from = 1
	}
	r.to = r.from + 1
	if opts.Journal != nil {
		r.from, r.to = opts.Journal.From, opts.Journal.To
		r.resumed = true
	}
	fp := fingerprint(old, next, r.from, r.to)
	if opts.Journal != nil && opts.Journal.Fingerprint != fp {
		return nil, fmt.Errorf("rollout: journal fingerprint %016x does not match deployments (%016x)", opts.Journal.Fingerprint, fp)
	}

	r.pol = opts.Retry
	if r.pol.Attempts == 0 && r.pol.Backoff == 0 && r.pol.Sleep == nil {
		r.pol.Attempts = 3
		r.pol.Backoff = 2 * time.Millisecond
	}
	if r.pol.Attempts < 1 {
		r.pol.Attempts = 1
	}
	if r.pol.Backoff <= 0 {
		r.pol.Backoff = 2 * time.Millisecond
	}
	if r.pol.Ctx == nil {
		r.pol.Ctx = opts.Ctx
	}

	r.fab = opts.Fabric
	if r.fab == nil {
		mf := NewMemFabric(opts.Topo)
		mf.Bootstrap(old, r.from)
		r.fab = mf
	}

	r.groups, r.progGroup = buildGroups(old, next, r.to)
	r.serving = make(map[string]uint64, len(r.groups))
	for _, g := range r.groups {
		g.initial = 0
		for _, p := range g.progs {
			if servedBy(old.Plan, p) {
				g.initial = r.from
				break
			}
		}
		r.serving[g.id] = g.initial
	}

	r.buildOps()
	r.countUnchanged()

	if opts.Journal != nil {
		if err := r.reconcile(opts.Journal); err != nil {
			return nil, err
		}
		r.j = opts.Journal
	} else {
		r.j = &Journal{From: r.from, To: r.to, Fingerprint: fp}
	}
	return r, nil
}

// buildOps lays out the forward op sequence: stage every new-plan
// switch, flip every group, retire every old-plan switch.
func (r *Rollout) buildOps() {
	seq := 0
	for _, sw := range r.next.Plan.UsedSwitches() {
		r.ops = append(r.ops, Op{Seq: seq, Kind: OpPrepare, Switch: sw, Epoch: r.to})
		seq++
	}
	r.prepares = len(r.ops)
	for _, g := range r.groups {
		r.ops = append(r.ops, Op{Seq: seq, Kind: OpCommit, Group: g.id, Epoch: g.epoch})
		seq++
	}
	r.commits = len(r.groups)
	for _, sw := range r.old.Plan.UsedSwitches() {
		r.ops = append(r.ops, Op{Seq: seq, Kind: OpRetire, Switch: sw, Epoch: r.from})
		seq++
	}
}

// countUnchanged counts new-plan switches whose MAT footprint is
// identical to their old-plan one — informational; staging is uniform.
func (r *Rollout) countUnchanged() {
	type slot struct {
		sw         network.SwitchID
		start, end int
	}
	oldAt := map[network.SwitchID]map[string]slot{}
	for name, sp := range r.old.Plan.Assignments {
		m := oldAt[sp.Switch]
		if m == nil {
			m = map[string]slot{}
			oldAt[sp.Switch] = m
		}
		m[name] = slot{sp.Switch, sp.Start, sp.End}
	}
	newAt := map[network.SwitchID]map[string]slot{}
	for name, sp := range r.next.Plan.Assignments {
		m := newAt[sp.Switch]
		if m == nil {
			m = map[string]slot{}
			newAt[sp.Switch] = m
		}
		m[name] = slot{sp.Switch, sp.Start, sp.End}
	}
	for sw, nm := range newAt {
		om := oldAt[sw]
		if len(om) != len(nm) {
			continue
		}
		same := true
		for name, s := range nm {
			if om[name] != s {
				same = false
				break
			}
		}
		if same {
			r.unchanged++
		}
	}
}

// reconcile replays a resumed journal against the regenerated op list:
// the leading entries must match the forward ops one-for-one; any tail
// beyond that must be rollback ops (aborts and unflip commits). Done
// commits re-apply their serving flips.
func (r *Rollout) reconcile(j *Journal) error {
	r.aborted = map[network.SwitchID]bool{}
	for i, e := range j.Entries {
		if !r.rollingBack && i < len(r.ops) && e.Seq == i && sameOp(e.Op, r.ops[i]) {
			if e.Kind == OpCommit && e.Status == StatusDone {
				r.serving[e.Group] = e.Epoch
			}
			continue
		}
		// Rollback tail: everything from the first divergence on must
		// be an abort or an unflip commit.
		r.rollingBack = true
		switch {
		case e.Kind == OpAbort && e.Epoch == r.to:
			if e.Status == StatusDone {
				r.aborted[e.Switch] = true
			}
		case e.Kind == OpCommit:
			if _, ok := r.serving[e.Group]; !ok {
				return fmt.Errorf("rollout: journal entry %d names unknown group %q", i, e.Group)
			}
			if e.Status == StatusDone {
				r.serving[e.Group] = e.Epoch
			}
		default:
			return fmt.Errorf("rollout: journal entry %d (%s) does not match regenerated op list", i, e.Op.String())
		}
	}
	return nil
}

func sameOp(a, b Op) bool {
	return a.Seq == b.Seq && a.Kind == b.Kind && a.Switch == b.Switch && a.Group == b.Group && a.Epoch == b.Epoch
}

// Journal exposes the live op journal; Format it after an interrupt to
// persist resumable state.
func (r *Rollout) Journal() *Journal { return r.j }

// View returns the live serving state (group → epoch) the invariant
// checks run against.
func (r *Rollout) View() *ServingView { return &ServingView{r: r} }

func (r *Rollout) ctx() context.Context {
	if r.opts.Ctx != nil {
		return r.opts.Ctx
	}
	return context.Background()
}

func (r *Rollout) liveTopo() *network.Topology {
	if r.opts.Topo != nil {
		return r.opts.Topo
	}
	return r.next.Plan.Topo
}

func (r *Rollout) planFor(epoch uint64) *placement.Plan {
	switch epoch {
	case r.from:
		return r.old.Plan
	case r.to:
		return r.next.Plan
	}
	return nil
}

// jittered spreads backoff by a deterministic ±50% derived from the
// seed, op seq, and attempt (splitmix64), so synchronized retries
// against one recovering switch fan out without any global RNG.
func (r *Rollout) jittered(d time.Duration, seq, attempt int) time.Duration {
	x := uint64(r.opts.JitterSeed) ^ uint64(seq)<<32 ^ uint64(attempt)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	frac := float64(x%1024)/1024.0 - 0.5 // [-0.5, 0.5)
	return d + time.Duration(frac*float64(d))
}

// gate pre-flights the new plan before any op is issued: it must
// validate against its resource/fault snapshot, its footprint must be
// alive on the live topology, and (optionally) the equivalence checker
// must prove it.
func (r *Rollout) gate() error {
	rm := program.DefaultResourceModel
	if r.opts.ResourceModel != nil {
		rm = *r.opts.ResourceModel
	}
	if err := r.next.Plan.Validate(rm, 0, 0); err != nil {
		return fmt.Errorf("rollout: new plan invalid: %w", err)
	}
	if topo := r.liveTopo(); topo != r.next.Plan.Topo {
		for _, sw := range r.next.Plan.UsedSwitches() {
			if topo.SwitchIsDown(sw) {
				return fmt.Errorf("rollout: new plan hosts MATs on switch %d, down on live topology: %w", sw, deploy.ErrSwitchDown)
			}
		}
		for key, path := range r.next.Plan.Routes {
			for i, sw := range path.Switches {
				if topo.SwitchIsDown(sw) {
					return fmt.Errorf("rollout: new plan route %v transits down switch %d", key, sw)
				}
				if i > 0 && topo.LinkIsDown(path.Switches[i-1], sw) {
					return fmt.Errorf("rollout: new plan route %v uses down link %d-%d", key, path.Switches[i-1], sw)
				}
			}
		}
	}
	if r.opts.Equiv {
		if deploy.EquivHook == nil {
			return fmt.Errorf("rollout: Equiv requested but no equivalence checker is linked")
		}
		if err := deploy.EquivHook(r.next); err != nil {
			return fmt.Errorf("rollout: equivalence gate: %w", err)
		}
	}
	return nil
}

// Execute runs (or resumes) the rollout to a terminal outcome. The
// returned Report is non-nil whenever a rollout was attempted; on
// error it records how far things got. Error classes: ErrInterrupted
// (resume with the journal), ErrRolledBack (old plan serving), or a
// degraded-outcome error when rollback was impeded.
func (r *Rollout) Execute() (*Report, error) {
	rep := &Report{
		FromEpoch:         r.from,
		ToEpoch:           r.to,
		Groups:            len(r.groups),
		Resumed:           r.resumed,
		PreparedSwitches:  r.prepares,
		UnchangedSwitches: r.unchanged,
		RetiredSwitches:   len(r.ops) - r.prepares - r.commits,
	}
	start := time.Now()
	defer func() {
		rep.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
		for _, ph := range rep.Phases {
			rep.Ops += ph.Ops
			rep.Retries += ph.Retries
		}
		for _, g := range r.groups {
			if g.epoch != 0 && r.serving[g.id] == r.to {
				rep.CommittedGroups++
			} else if g.epoch == 0 && g.initial != 0 && r.serving[g.id] == 0 {
				// withdrawn group whose flip-to-none committed
				if r.forwardCommitDone(g.id) {
					rep.CommittedGroups++
				}
			}
		}
	}()

	if r.rollingBack {
		// Resuming an interrupted rollback: finish restoring last-good.
		return r.rollback(rep, fmt.Errorf("resumed interrupted rollback"))
	}

	if err := r.gate(); err != nil {
		if r.resumed && r.anyStaged() {
			return r.rollback(rep, err)
		}
		rep.Outcome = OutcomeRolledBack
		return rep, fmt.Errorf("%w: %v", ErrRolledBack, err)
	}

	// Phase 1: prepare — stage the new epoch on every new-plan switch.
	ph := r.phase(rep, "prepare")
	for i := 0; i < r.prepares; i++ {
		e := r.forwardEntry(i)
		if e.Status == StatusDone {
			continue
		}
		op := e.Op
		err := r.applyOp("prepare", ph, e, func() error { return r.fab.Apply(r.ctx(), op) })
		if err != nil {
			if errors.Is(err, ErrInterrupted) {
				return r.interrupted(rep, err)
			}
			r.sealPhase(rep)
			return r.rollback(rep, err)
		}
	}
	r.sealPhase(rep)

	// Phase 2: commit — flip each group's serving epoch atomically.
	ph = r.phase(rep, "commit")
	for i := 0; i < r.commits; i++ {
		g := r.groups[i]
		e := r.forwardEntry(r.prepares + i)
		if e.Status == StatusDone {
			continue
		}
		op := e.Op
		err := r.applyOp("commit", ph, e, func() error { return r.commitOnce(g, op) })
		if err != nil {
			if errors.Is(err, ErrInterrupted) {
				return r.interrupted(rep, err)
			}
			r.sealPhase(rep)
			return r.rollback(rep, err)
		}
		r.serving[g.id] = g.epoch
	}
	r.sealPhase(rep)

	// All groups now serve the new plan: rebind the controller. A
	// refusal (the plan went invalid under our feet) rolls back.
	if r.opts.Ctrl != nil {
		if err := r.opts.Ctrl.Rebind(r.next); err != nil {
			return r.rollback(rep, err)
		}
	}

	// Phase 3: retire — drop the old epoch. Failures here never
	// endanger serving state: quarantine the switch and move on.
	ph = r.phase(rep, "retire")
	for i := r.prepares + r.commits; i < len(r.ops); i++ {
		e := r.forwardEntry(i)
		if e.Status == StatusDone {
			continue
		}
		op := e.Op
		err := r.applyOp("retire", ph, e, func() error { return r.fab.Apply(r.ctx(), op) })
		if err != nil {
			if errors.Is(err, ErrInterrupted) {
				return r.interrupted(rep, err)
			}
			rep.QuarantinedSwitches = append(rep.QuarantinedSwitches, op.Switch)
		}
	}
	r.sealPhase(rep)

	rep.Outcome = OutcomeCommitted
	return rep, nil
}

// commitOnce validates the flip's preconditions — every switch hosting
// the group in the target plan is up and holds the target epoch — then
// acknowledges the commit on the fabric. Withdrawn groups (epoch 0)
// have nothing to validate.
func (r *Rollout) commitOnce(g *commitGroup, op Op) error {
	if g.epoch != 0 {
		topo := r.liveTopo()
		for _, sw := range hostsOf(r.next.Plan, g.progs) {
			if topo.SwitchIsDown(sw) {
				return fmt.Errorf("rollout: commit %q: hosting switch %d: %w", g.id, sw, deploy.ErrSwitchDown)
			}
			if !r.fab.Installed(sw, r.to) {
				return fmt.Errorf("rollout: commit %q: switch %d lost staged epoch %d: %w", g.id, sw, r.to, deploy.ErrSwitchDown)
			}
		}
	}
	return r.fab.Apply(r.ctx(), op)
}

// rollback restores the last-good plan: unflip every committed group
// (newest first), then abort staged new-epoch configs. A group whose
// old footprint is no longer viable is quarantined-and-degraded: it
// keeps serving the epoch it has, and the staged configs backing it
// are kept. Aborts that fail quarantine the switch.
func (r *Rollout) rollback(rep *Report, cause error) (*Report, error) {
	ph := r.phase(rep, "rollback")
	if r.aborted == nil {
		r.aborted = map[network.SwitchID]bool{}
	}
	for i := len(r.groups) - 1; i >= 0; i-- {
		g := r.groups[i]
		if r.serving[g.id] == g.initial {
			continue
		}
		op := Op{Seq: r.nextSeq(), Kind: OpCommit, Group: g.id, Epoch: g.initial}
		e := r.j.append(op)
		err := r.applyOp("rollback", ph, e, func() error { return r.unflipOnce(g, op) })
		if err != nil {
			if errors.Is(err, ErrInterrupted) {
				return r.interrupted(rep, err)
			}
			rep.DegradedGroups = append(rep.DegradedGroups, g.id)
			continue
		}
		r.serving[g.id] = g.initial
	}

	for i := 0; i < r.prepares; i++ {
		fe := r.existingForward(i)
		if fe == nil || fe.Status != StatusDone {
			continue // never staged
		}
		sw := fe.Switch
		if r.aborted[sw] {
			continue
		}
		if r.epochInUse(r.to, sw) {
			continue // a degraded group still serves the new epoch here
		}
		op := Op{Seq: r.nextSeq(), Kind: OpAbort, Switch: sw, Epoch: r.to}
		e := r.j.append(op)
		err := r.applyOp("rollback", ph, e, func() error { return r.fab.Apply(r.ctx(), op) })
		if err != nil {
			if errors.Is(err, ErrInterrupted) {
				return r.interrupted(rep, err)
			}
			rep.QuarantinedSwitches = append(rep.QuarantinedSwitches, sw)
			continue
		}
		r.aborted[sw] = true
		rep.RolledBackSwitches = append(rep.RolledBackSwitches, sw)
	}
	r.sealPhase(rep)

	if len(rep.DegradedGroups) > 0 {
		rep.Outcome = OutcomeDegraded
		return rep, fmt.Errorf("rollout: degraded, %d groups pinned to a surviving epoch (cause: %v)", len(rep.DegradedGroups), cause)
	}
	rep.Outcome = OutcomeRolledBack
	return rep, fmt.Errorf("%w: %v", ErrRolledBack, cause)
}

// unflipOnce flips a group back to its initial epoch after checking
// the old footprint is still viable.
func (r *Rollout) unflipOnce(g *commitGroup, op Op) error {
	if g.initial != 0 {
		topo := r.liveTopo()
		for _, sw := range hostsOf(r.old.Plan, g.progs) {
			if topo.SwitchIsDown(sw) {
				return fmt.Errorf("rollout: unflip %q: old hosting switch %d: %w", g.id, sw, deploy.ErrSwitchDown)
			}
			if !r.fab.Installed(sw, r.from) {
				return fmt.Errorf("rollout: unflip %q: switch %d lost epoch %d: %w", g.id, sw, r.from, deploy.ErrSwitchDown)
			}
		}
	}
	return r.fab.Apply(r.ctx(), op)
}

// applyOp drives one journaled op through the retry policy. nil means
// done; an ErrInterrupted-wrapped error means stop now (entry stays
// pending); anything else marks the entry failed after exhausting
// retries (only deploy.ErrSwitchDown failures are retried).
func (r *Rollout) applyOp(phase string, ph *PhaseReport, e *Entry, do func() error) error {
	if r.opts.Hook != nil {
		r.opts.Hook(phase, e.Op, r.View())
	}
	ph.Ops++
	backoff := r.pol.Backoff
	var err error
	for i := 0; i < r.pol.Attempts; i++ {
		if i > 0 {
			ph.Retries++
			if werr := r.pol.Wait(r.jittered(backoff, e.Seq, i)); werr != nil {
				return fmt.Errorf("%w: backoff cancelled: %v (last failure: %v)", ErrInterrupted, werr, err)
			}
			backoff *= 2
		}
		err = do()
		e.Attempts++
		if err == nil {
			e.Status = StatusDone
			return nil
		}
		if errors.Is(err, ErrInterrupted) {
			return err
		}
		if ctx := r.opts.Ctx; ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("%w: %v", ErrInterrupted, ctx.Err())
		}
		if !errors.Is(err, deploy.ErrSwitchDown) {
			break
		}
	}
	e.Status = StatusFailed
	ph.Failures++
	return err
}

// forwardEntry returns the journal entry for forward op i, appending a
// fresh pending one the first time the op is reached.
func (r *Rollout) forwardEntry(i int) *Entry {
	if e := r.existingForward(i); e != nil {
		return e
	}
	return r.j.append(r.ops[i])
}

// existingForward returns forward op i's journal entry if it was ever
// issued (entries are a dense prefix of the forward op list).
func (r *Rollout) existingForward(i int) *Entry {
	if i < len(r.j.Entries) && r.j.Entries[i].Seq == i && sameOp(r.j.Entries[i].Op, r.ops[i]) {
		return r.j.Entries[i]
	}
	return nil
}

func (r *Rollout) forwardCommitDone(group string) bool {
	for i := 0; i < r.commits; i++ {
		if e := r.existingForward(r.prepares + i); e != nil && e.Group == group {
			return e.Status == StatusDone
		}
	}
	return false
}

func (r *Rollout) nextSeq() int {
	if n := len(r.j.Entries); n > 0 {
		return r.j.Entries[n-1].Seq + 1
	}
	return 0
}

func (r *Rollout) anyStaged() bool {
	for i := 0; i < r.prepares; i++ {
		if e := r.existingForward(i); e != nil && e.Status == StatusDone {
			return true
		}
	}
	return false
}

// epochInUse reports whether any group currently serves epoch through
// MATs hosted on sw.
func (r *Rollout) epochInUse(epoch uint64, sw network.SwitchID) bool {
	plan := r.planFor(epoch)
	if plan == nil {
		return false
	}
	for _, g := range r.groups {
		if r.serving[g.id] != epoch {
			continue
		}
		for _, host := range hostsOf(plan, g.progs) {
			if host == sw {
				return true
			}
		}
	}
	return false
}

func (r *Rollout) phase(rep *Report, name string) *PhaseReport {
	rep.Phases = append(rep.Phases, PhaseReport{Name: name})
	r.phStart = time.Now()
	return &rep.Phases[len(rep.Phases)-1]
}

func (r *Rollout) sealPhase(rep *Report) {
	if len(rep.Phases) == 0 || r.phStart.IsZero() {
		return
	}
	ph := &rep.Phases[len(rep.Phases)-1]
	ph.Ms = float64(time.Since(r.phStart)) / float64(time.Millisecond)
	r.phStart = time.Time{}
}

func (r *Rollout) interrupted(rep *Report, err error) (*Report, error) {
	r.sealPhase(rep)
	rep.Outcome = OutcomeInterrupted
	return rep, err
}

// ServingView answers "which plan serves this program right now" — the
// observable the make-before-break invariant is stated over.
type ServingView struct {
	r *Rollout
}

// GroupOf names the commit group serving prog ("" if unknown).
func (v *ServingView) GroupOf(prog string) string {
	if g := v.r.progGroup[prog]; g != nil {
		return g.id
	}
	return ""
}

// EpochOf returns prog's serving epoch; 0 means the program is not
// being served (withdrawn, or added but not yet committed).
func (v *ServingView) EpochOf(prog string) uint64 {
	g := v.r.progGroup[prog]
	if g == nil {
		return 0
	}
	e := v.r.serving[g.id]
	if e == 0 {
		return 0
	}
	if plan := v.r.planFor(e); plan == nil || !servedBy(plan, prog) {
		return 0
	}
	return e
}

// PlanFor returns the plan currently serving prog, or nil.
func (v *ServingView) PlanFor(prog string) (*placement.Plan, uint64) {
	e := v.EpochOf(prog)
	if e == 0 {
		return nil, 0
	}
	return v.r.planFor(e), e
}

// HostsOf returns the switches hosting group's programs' MATs in the
// plan of the given epoch (ascending, nil for an unknown group or an
// epoch neither plan owns — including 0, "serve nothing"). Fault
// harnesses use it to aim injections at the switches a commit op
// actually depends on.
func (v *ServingView) HostsOf(group string, epoch uint64) []network.SwitchID {
	g := v.r.progGroup[group]
	if g == nil {
		return nil
	}
	plan := v.r.planFor(epoch)
	if plan == nil {
		return nil
	}
	return hostsOf(plan, g.progs)
}

// Programs lists every program either plan knows, sorted.
func (v *ServingView) Programs() []string {
	out := make([]string, 0, len(v.r.progGroup))
	for p := range v.r.progGroup {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Mixed reports whether different groups currently serve different
// epochs — legal mid-commit (groups are independent), while a single
// program split across epochs never is.
func (v *ServingView) Mixed() bool {
	seen := uint64(0)
	for _, g := range v.r.groups {
		e := v.r.serving[g.id]
		if e == 0 {
			continue
		}
		if seen == 0 {
			seen = e
		} else if seen != e {
			return true
		}
	}
	return false
}

// CheckInstalled asserts the torn-state invariant against a fabric:
// for every group, every switch hosting the group's MATs in its
// serving plan must hold that plan's epoch. Any miss is a torn state.
func (v *ServingView) CheckInstalled(f Fabric) error {
	for _, g := range v.r.groups {
		e := v.r.serving[g.id]
		if e == 0 {
			continue
		}
		plan := v.r.planFor(e)
		if plan == nil {
			return fmt.Errorf("rollout: group %q serves unknown epoch %d", g.id, e)
		}
		for _, sw := range hostsOf(plan, g.progs) {
			if !f.Installed(sw, e) {
				return fmt.Errorf("rollout: torn state: group %q serves epoch %d but switch %d does not hold it", g.id, e, sw)
			}
		}
	}
	return nil
}
