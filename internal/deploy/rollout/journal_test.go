package rollout

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func sampleJournal() *Journal {
	j := &Journal{From: 1, To: 2, Fingerprint: 0xab54a98ceb1f0ad2}
	j.Entries = []*Entry{
		{Op: Op{Seq: 0, Kind: OpPrepare, Switch: 3, Epoch: 2}, Status: StatusDone, Attempts: 1},
		{Op: Op{Seq: 1, Kind: OpPrepare, Switch: 7, Epoch: 2}, Status: StatusFailed, Attempts: 3},
		{Op: Op{Seq: 2, Kind: OpCommit, Group: "p one", Epoch: 2}, Status: StatusDone, Attempts: 1},
		{Op: Op{Seq: 3, Kind: OpCommit, Group: "p2", Epoch: 0}, Status: StatusPending},
		{Op: Op{Seq: 4, Kind: OpRetire, Switch: 3, Epoch: 1}, Status: StatusPending},
		{Op: Op{Seq: 5, Kind: OpCommit, Group: "p one", Epoch: 1}, Status: StatusDone, Attempts: 2},
		{Op: Op{Seq: 6, Kind: OpAbort, Switch: 3, Epoch: 2}, Status: StatusDone, Attempts: 1},
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	j := sampleJournal()
	text := j.Format()
	back, err := ParseJournal(text)
	if err != nil {
		t.Fatalf("ParseJournal: %v\n%s", err, text)
	}
	if back.From != j.From || back.To != j.To || back.Fingerprint != j.Fingerprint {
		t.Fatalf("header = %d/%d/%x, want %d/%d/%x", back.From, back.To, back.Fingerprint, j.From, j.To, j.Fingerprint)
	}
	if len(back.Entries) != len(j.Entries) {
		t.Fatalf("entries = %d, want %d", len(back.Entries), len(j.Entries))
	}
	for i, e := range back.Entries {
		w := j.Entries[i]
		if !sameOp(e.Op, w.Op) || e.Status != w.Status || e.Attempts != w.Attempts {
			t.Errorf("entry %d = %+v, want %+v", i, e, w)
		}
	}
	if back.Format() != text {
		t.Error("Format is not a fixpoint after parse")
	}
}

func TestJournalParseRejectsMalformed(t *testing.T) {
	good := sampleJournal().Format()
	lines := strings.Split(strings.TrimRight(good, "\n"), "\n")
	cases := map[string]string{
		"empty":            "",
		"bad header tag":   strings.Replace(good, "rollout ", "rollback ", 1),
		"missing header":   strings.Join(lines[1:], "\n") + "\n",
		"equal epochs":     "rollout from=1 to=1 fingerprint=0000000000000001\n",
		"bad fingerprint":  "rollout from=1 to=2 fingerprint=zz\n",
		"short line":       good + "7 prepare sw=1\n",
		"unknown kind":     good + "7 merge sw=1 epoch=2 done attempts=1\n",
		"unknown status":   good + "7 prepare sw=1 epoch=2 maybe attempts=1\n",
		"unquoted group":   good + "7 commit p9 epoch=2 done attempts=1\n",
		"empty group":      good + "7 commit \"\" epoch=2 done attempts=1\n",
		"negative seq":     good + "-1 prepare sw=1 epoch=2 done attempts=1\n",
		"out of order seq": good + "3 prepare sw=1 epoch=2 done attempts=1\n",
		"bad switch":       good + "7 prepare sw=x epoch=2 done attempts=1\n",
		"bad attempts":     good + "7 prepare sw=1 epoch=2 done attempts=x\n",
	}
	for name, text := range cases {
		if _, err := ParseJournal(text); err == nil {
			t.Errorf("%s: accepted\n%s", name, text)
		}
	}
}

// chaosSeedJournals runs two small faulted rollouts — one interrupted
// mid-commit, one rolled back from a commit failure — and returns
// their journals, so the fuzz corpus starts from states a real chaos
// run produces (pending tails, failed entries, rollback ops).
func chaosSeedJournals(f *testing.F) []string {
	old, topo := fixture(f, 3, 6)
	next, _ := drained(f, old, "p3")
	var out []string

	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Ctx: ctx, Retry: quickRetry(),
		Hook: func(phase string, op Op, view *ServingView) {
			if phase == "commit" && op.Group == "p2" {
				cancel()
			}
		}})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := r.Execute(); !errors.Is(err, ErrInterrupted) {
		f.Fatalf("seed rollout = %v, want interrupt", err)
	}
	out = append(out, r.Journal().Format())

	topo2 := topo.Clone()
	fab2 := NewMemFabric(topo2)
	fab2.Bootstrap(old, 1)
	newHost, _ := next.Plan.SwitchOf("p3/count")
	r2, err := New(old, next, Options{Topo: topo2, Fabric: fab2, Retry: quickRetry(),
		Hook: func(phase string, op Op, view *ServingView) {
			if phase == "commit" && op.Group == "p3" {
				if err := topo2.SetSwitchDown(newHost); err != nil {
					f.Fatal(err)
				}
			}
		}})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := r2.Execute(); err == nil {
		f.Fatal("seed rollback rollout unexpectedly committed")
	}
	out = append(out, r2.Journal().Format())
	return out
}

// FuzzParseJournal: anything ParseJournal accepts must re-format to a
// fixpoint (Format∘Parse = id on the parsed form), and parsing must
// never panic. Seeds include real chaos-run journal shapes.
func FuzzParseJournal(f *testing.F) {
	for _, text := range chaosSeedJournals(f) {
		f.Add(text)
	}
	f.Add(sampleJournal().Format())
	f.Add("rollout from=1 to=2 fingerprint=0000000000000000\n")
	f.Add("rollout from=3 to=4 fingerprint=ffffffffffffffff\n0 prepare sw=0 epoch=4 pending attempts=0\n")
	f.Add("rollout from=1 to=2 fingerprint=0123456789abcdef\n0 commit \"p\\\"x\" epoch=0 done attempts=9\n")
	f.Add("rollout from=1 to=2\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, text string) {
		j, err := ParseJournal(text)
		if err != nil {
			return
		}
		out := j.Format()
		back, err := ParseJournal(out)
		if err != nil {
			t.Fatalf("reparse of own Format failed: %v\n%s", err, out)
		}
		if back.Format() != out {
			t.Fatalf("Format not a fixpoint:\n%s\nvs\n%s", out, back.Format())
		}
	})
}
