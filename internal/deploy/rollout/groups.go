package rollout

import (
	"sort"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
)

// commitGroup is the atomic unit of a serving flip. Programs that
// share a merged TDG node (in either the old or the new graph) cannot
// flip epochs independently — the shared node's config serves them
// both — so they are unioned into one group that commits in a single
// op. The group ID is the lexicographically least member program.
type commitGroup struct {
	// id is the group name used in commit ops and reports.
	id string
	// progs are the member program names, sorted.
	progs []string
	// epoch is the target serving epoch on the forward path: the
	// rollout's To epoch, or 0 when every member is withdrawn from the
	// new plan (the group stops serving).
	epoch uint64
	// initial is the epoch the group serves before the rollout: the
	// From epoch when the old plan serves any member, else 0 (all
	// members are freshly added).
	initial uint64
}

// buildGroups unions programs over shared TDG nodes in both
// deployments and returns the groups sorted by ID, plus the
// program→group index.
func buildGroups(old, next *deploy.Deployment, to uint64) ([]*commitGroup, map[string]*commitGroup) {
	parent := map[string]string{}
	var find func(string) string
	find = func(p string) string {
		if parent[p] == p {
			return p
		}
		parent[p] = find(parent[p])
		return parent[p]
	}
	add := func(p string) {
		if _, ok := parent[p]; !ok {
			parent[p] = p
		}
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra { // deterministic: least name wins the root
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	inNew := map[string]bool{}
	scan := func(dep *deploy.Deployment, fresh bool) {
		for _, n := range dep.Plan.Graph.Nodes() {
			for i, p := range n.Origin {
				add(p)
				if fresh {
					inNew[p] = true
				}
				if i > 0 {
					union(n.Origin[0], p)
				}
			}
		}
	}
	scan(old, false)
	scan(next, true)

	byRoot := map[string]*commitGroup{}
	progGroup := map[string]*commitGroup{}
	for p := range parent {
		r := find(p)
		g := byRoot[r]
		if g == nil {
			g = &commitGroup{}
			byRoot[r] = g
		}
		g.progs = append(g.progs, p)
		progGroup[p] = g
	}
	groups := make([]*commitGroup, 0, len(byRoot))
	for _, g := range byRoot {
		sort.Strings(g.progs)
		g.id = g.progs[0]
		for _, p := range g.progs {
			if inNew[p] {
				g.epoch = to
				break
			}
		}
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	return groups, progGroup
}

// hostsOf returns the distinct switches hosting any of progs' MATs in
// plan, ascending — the set that must hold the group's serving epoch
// for the flip to be consistent.
func hostsOf(plan *placement.Plan, progs []string) []network.SwitchID {
	want := make(map[string]bool, len(progs))
	for _, p := range progs {
		want[p] = true
	}
	seen := map[network.SwitchID]bool{}
	for _, n := range plan.Graph.Nodes() {
		for _, p := range n.Origin {
			if want[p] {
				if sp, ok := plan.Assignments[n.Name()]; ok {
					seen[sp.Switch] = true
				}
				break
			}
		}
	}
	out := make([]network.SwitchID, 0, len(seen))
	for sw := range seen {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// servedBy reports whether plan's graph contains any MAT originating
// from prog — i.e. whether that plan can serve the program at all.
func servedBy(plan *placement.Plan, prog string) bool {
	for _, n := range plan.Graph.Nodes() {
		for _, p := range n.Origin {
			if p == prog {
				return true
			}
		}
	}
	return false
}
