// Package rollout turns "old deployment → new plan" into a
// transactional, make-before-break sequence of per-switch operations:
// new switch configs are staged alongside the old ones under a fresh
// epoch token, program groups flip atomically from the old epoch to
// the new one, and only then is the old state retired. Every op is
// journaled before it runs, so an interrupted rollout either resumes
// to completion or rolls back to the last-good plan; when rollback
// itself is impeded by a dead switch, the switch is quarantined and
// the old plan keeps serving (degrade, never tear).
//
// The invariant the package enforces — and the chaos tests assert at
// every op boundary — is that each program is served entirely by the
// old plan or entirely by the new one at every observable instant,
// never a mix of both.
package rollout

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
)

// OpKind names one rollout operation class.
type OpKind string

const (
	// OpPrepare stages a switch's new-epoch config alongside its old
	// one (make-before-break: nothing serves from it yet).
	OpPrepare OpKind = "prepare"
	// OpCommit atomically flips one program group's serving epoch.
	// Epoch carries the target: the new epoch on the forward path, the
	// old epoch when a rollback unflips the group, and 0 when the
	// group's programs are withdrawn from the new plan (serve nothing).
	OpCommit OpKind = "commit"
	// OpRetire removes a switch's old-epoch config after every group
	// has flipped forward.
	OpRetire OpKind = "retire"
	// OpAbort removes a switch's staged new-epoch config during
	// rollback, restoring the pre-rollout footprint.
	OpAbort OpKind = "abort"
)

// Status tracks one journaled op's lifecycle.
type Status string

const (
	// StatusPending means the op was journaled but has not succeeded.
	StatusPending Status = "pending"
	// StatusDone means the op's effect is applied on the fabric.
	StatusDone Status = "done"
	// StatusFailed means retries were exhausted; the engine reacted
	// (rollback or quarantine) and the op will not be re-run.
	StatusFailed Status = "failed"
)

// Op is one idempotent rollout operation. Switch ops (prepare, retire,
// abort) target a switch+epoch pair; commit ops target a program
// group. Re-applying a done op is a no-op on the fabric, which is what
// makes journal replay safe.
type Op struct {
	// Seq orders ops globally within one rollout; resume matches
	// journal entries to regenerated ops by Seq.
	Seq int
	// Kind is the op class.
	Kind OpKind
	// Switch is the target for prepare/retire/abort ops.
	Switch network.SwitchID
	// Group names the program group for commit ops.
	Group string
	// Epoch is the config epoch the op manipulates (for commits, the
	// target serving epoch; 0 means "serve nothing").
	Epoch uint64
}

func (o Op) String() string {
	if o.Kind == OpCommit {
		return fmt.Sprintf("%d %s %s epoch=%d", o.Seq, o.Kind, strconv.Quote(o.Group), o.Epoch)
	}
	return fmt.Sprintf("%d %s sw=%d epoch=%d", o.Seq, o.Kind, o.Switch, o.Epoch)
}

// Entry is one journaled op plus its observed outcome.
type Entry struct {
	Op
	Status   Status
	Attempts int
}

// Journal is the durable record of one rollout: the epoch pair, a
// fingerprint binding it to the exact old→new plan pair, and one entry
// per issued op in issue order. Its text form round-trips through
// Format/ParseJournal so a resumed process can replay to a consistent
// state.
type Journal struct {
	From        uint64
	To          uint64
	Fingerprint uint64
	Entries     []*Entry
}

// append journals a fresh pending entry for op and returns it.
func (j *Journal) append(op Op) *Entry {
	e := &Entry{Op: op, Status: StatusPending}
	j.Entries = append(j.Entries, e)
	return e
}

// Format renders the journal as text, one op per line:
//
//	rollout from=1 to=2 fingerprint=ab54a98ceb1f0ad2
//	0 prepare sw=3 epoch=2 done attempts=1
//	4 commit "p1" epoch=2 pending attempts=0
//
// The format is strict (ParseJournal rejects anything it would not
// itself emit) and stable: Format∘ParseJournal is the identity.
func (j *Journal) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rollout from=%d to=%d fingerprint=%016x\n", j.From, j.To, j.Fingerprint)
	for _, e := range j.Entries {
		fmt.Fprintf(&b, "%s %s attempts=%d\n", e.Op.String(), e.Status, e.Attempts)
	}
	return b.String()
}

// ParseJournal parses Format's output back into a Journal.
func ParseJournal(text string) (*Journal, error) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("rollout: empty journal")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "rollout" {
		return nil, fmt.Errorf("rollout: bad journal header %q", sc.Text())
	}
	j := &Journal{}
	var err error
	if j.From, err = parseKV(header[1], "from", 10); err != nil {
		return nil, err
	}
	if j.To, err = parseKV(header[2], "to", 10); err != nil {
		return nil, err
	}
	if j.Fingerprint, err = parseKV(header[3], "fingerprint", 16); err != nil {
		return nil, err
	}
	if j.To == j.From {
		return nil, fmt.Errorf("rollout: journal epochs must differ (from=%d to=%d)", j.From, j.To)
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("rollout: journal line %d: %w", lineNo, err)
		}
		if len(j.Entries) > 0 && e.Seq <= j.Entries[len(j.Entries)-1].Seq {
			return nil, fmt.Errorf("rollout: journal line %d: seq %d out of order", lineNo, e.Seq)
		}
		j.Entries = append(j.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rollout: reading journal: %w", err)
	}
	return j, nil
}

func parseKV(field, key string, base int) (uint64, error) {
	prefix := key + "="
	if !strings.HasPrefix(field, prefix) {
		return 0, fmt.Errorf("rollout: journal: want %s=..., got %q", key, field)
	}
	v, err := strconv.ParseUint(field[len(prefix):], base, 64)
	if err != nil {
		return 0, fmt.Errorf("rollout: journal %s: %w", key, err)
	}
	return v, nil
}

func parseEntry(line string) (*Entry, error) {
	// <seq> <kind> <target> epoch=<n> <status> attempts=<n>, where
	// <target> is sw=<id> for switch ops and a quoted (possibly
	// space-containing) group name for commits.
	head := strings.SplitN(line, " ", 3)
	if len(head) != 3 {
		return nil, fmt.Errorf("truncated entry %q", line)
	}
	seq, err := strconv.Atoi(head[0])
	if err != nil || seq < 0 {
		return nil, fmt.Errorf("bad seq %q", head[0])
	}
	e := &Entry{Op: Op{Seq: seq, Kind: OpKind(head[1])}}
	rest := head[2]
	switch e.Kind {
	case OpPrepare, OpRetire, OpAbort:
		fields := strings.Fields(rest)
		if len(fields) != 4 {
			return nil, fmt.Errorf("want 4 trailing fields, got %d in %q", len(fields), rest)
		}
		sw, err := parseKV(fields[0], "sw", 10)
		if err != nil {
			return nil, err
		}
		e.Switch = network.SwitchID(sw)
		rest = strings.Join(fields[1:], " ")
	case OpCommit:
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("bad commit group in %q: %v", rest, err)
		}
		group, err := strconv.Unquote(q)
		if err != nil || group == "" {
			return nil, fmt.Errorf("bad commit group %q", q)
		}
		e.Group = group
		rest = strings.TrimPrefix(rest[len(q):], " ")
	default:
		return nil, fmt.Errorf("unknown op kind %q", head[1])
	}
	fields := strings.Fields(rest)
	if len(fields) != 3 {
		return nil, fmt.Errorf("want epoch/status/attempts, got %q", rest)
	}
	if e.Epoch, err = parseKV(fields[0], "epoch", 10); err != nil {
		return nil, err
	}
	switch Status(fields[1]) {
	case StatusPending, StatusDone, StatusFailed:
		e.Status = Status(fields[1])
	default:
		return nil, fmt.Errorf("unknown status %q", fields[1])
	}
	att, err := parseKV(fields[2], "attempts", 10)
	if err != nil {
		return nil, err
	}
	e.Attempts = int(att)
	return e, nil
}

// fingerprint binds a journal to one exact old→new transition: a hash
// over both plans' MAT→switch assignments plus the epoch pair, so a
// resumed rollout refuses a journal recorded for different plans.
func fingerprint(old, next *deploy.Deployment, from, to uint64) uint64 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mixPlan := func(tag string, dep *deploy.Deployment) {
		mix(tag)
		names := make([]string, 0, len(dep.Plan.Assignments))
		for name := range dep.Plan.Assignments {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sp := dep.Plan.Assignments[name]
			mix(fmt.Sprintf("%s@%d:%d;", name, sp.Switch, sp.Start))
		}
	}
	mixPlan("old", old)
	mixPlan("new", next)
	mix(fmt.Sprintf("|%d>%d", from, to))
	return h
}
