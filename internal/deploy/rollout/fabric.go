package rollout

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
)

// ErrInterrupted marks a rollout cut short mid-flight — by context
// cancellation or by a fabric that lost its control channel. The
// engine stops issuing ops immediately; the journal plus the fabric's
// surviving state let a later Execute resume or finish rolling back.
var ErrInterrupted = errors.New("rollout: interrupted")

// Fabric is the device-facing side of a rollout: it applies staged
// config ops to switches and answers which epochs a switch currently
// holds. Apply must be idempotent — re-applying a done op is a no-op —
// and must fail with deploy.ErrSwitchDown (wrapped) when the target
// switch is down, so the engine's retry/rollback machinery can tell
// transient outages from hard errors.
type Fabric interface {
	Apply(ctx context.Context, op Op) error
	Installed(sw network.SwitchID, epoch uint64) bool
}

// MemFabric is the in-memory reference fabric: it tracks, per switch,
// the set of config epochs installed, and consults a live Topology's
// fault overlay so ops against a down switch fail exactly like a real
// push would. It is safe for concurrent use and persists across
// rollouts (the supervisor keeps one for the life of a deployment).
type MemFabric struct {
	topo *network.Topology

	mu        sync.Mutex
	installed map[network.SwitchID]map[uint64]bool
}

// NewMemFabric returns an empty fabric over topo's fault overlay; a
// nil topo disables down-switch simulation.
func NewMemFabric(topo *network.Topology) *MemFabric {
	return &MemFabric{topo: topo, installed: map[network.SwitchID]map[uint64]bool{}}
}

// Bootstrap marks dep's hosting switches as holding epoch, seeding the
// fabric with an already-serving deployment (the state a controller
// adopts before its first transactional rollout).
func (f *MemFabric) Bootstrap(dep *deploy.Deployment, epoch uint64) {
	if dep == nil || dep.Plan == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, sw := range dep.Plan.UsedSwitches() {
		f.install(sw, epoch)
	}
}

func (f *MemFabric) install(sw network.SwitchID, epoch uint64) {
	m := f.installed[sw]
	if m == nil {
		m = map[uint64]bool{}
		f.installed[sw] = m
	}
	m[epoch] = true
}

// Apply stages, removes, or acknowledges one op. Prepare installs the
// op's epoch on the switch; retire and abort remove it; commit is a
// pure control-plane acknowledgement (the engine validates the flip's
// preconditions before issuing it). A down target yields
// deploy.ErrSwitchDown; a done context yields its error.
func (f *MemFabric) Apply(ctx context.Context, op Op) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrInterrupted, err)
		}
	}
	switch op.Kind {
	case OpCommit:
		return nil
	case OpPrepare, OpRetire, OpAbort:
	default:
		return fmt.Errorf("rollout: fabric: unknown op kind %q", op.Kind)
	}
	if f.topo != nil && f.topo.SwitchIsDown(op.Switch) {
		return fmt.Errorf("rollout: %s switch %d epoch %d: %w", op.Kind, op.Switch, op.Epoch, deploy.ErrSwitchDown)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if op.Kind == OpPrepare {
		f.install(op.Switch, op.Epoch)
	} else {
		delete(f.installed[op.Switch], op.Epoch)
	}
	return nil
}

// Installed reports whether sw currently holds epoch's config.
func (f *MemFabric) Installed(sw network.SwitchID, epoch uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.installed[sw][epoch]
}

// Epochs lists the config epochs installed on sw, ascending — a test
// and debugging window into the fabric's footprint.
func (f *MemFabric) Epochs(sw network.SwitchID) []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, 0, len(f.installed[sw]))
	for e := range f.installed[sw] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Replay reconstructs fabric state from a journal after a process
// crash: bootstrap the old deployment at the journal's from-epoch,
// then re-apply every done switch op in order. Because ops are
// idempotent, replaying over surviving state is also safe.
func (f *MemFabric) Replay(j *Journal, old *deploy.Deployment) {
	if j == nil {
		return
	}
	f.Bootstrap(old, j.From)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range j.Entries {
		if e.Status != StatusDone {
			continue
		}
		switch e.Kind {
		case OpPrepare:
			f.install(e.Switch, e.Epoch)
		case OpRetire, OpAbort:
			delete(f.installed[e.Switch], e.Epoch)
		}
	}
}
