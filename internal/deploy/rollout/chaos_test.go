package rollout

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/tdg"
)

// replayPackets synthesizes packets covering every header field either
// plan's MATs read or write, for the dataplane continuity check.
func replayPackets(g *tdg.Graph, seed int64, n int) []*dataplane.Packet {
	rng := rand.New(rand.NewSource(seed))
	var hdrs []fields.Field
	seen := map[string]bool{}
	note := func(f fields.Field) {
		if !f.IsMetadata() && !seen[f.Name] {
			seen[f.Name] = true
			hdrs = append(hdrs, f)
		}
	}
	for _, node := range g.Nodes() {
		for _, k := range node.MAT.Keys {
			note(k.Field)
		}
		for _, a := range node.MAT.Actions {
			for _, op := range a.Ops {
				note(op.Dst)
				for _, f := range op.Srcs {
					note(f)
				}
			}
		}
	}
	sort.Slice(hdrs, func(i, j int) bool { return hdrs[i].Name < hdrs[j].Name })
	out := make([]*dataplane.Packet, n)
	for i := range out {
		p := &dataplane.Packet{Headers: map[string]uint64{}}
		for _, f := range hdrs {
			mask := uint64(1)<<uint(f.Bits) - 1
			if f.Bits >= 64 {
				mask = ^uint64(0)
			}
			p.Headers[f.Name] = rng.Uint64() & mask
		}
		out[i] = p
	}
	return out
}

// tripFabric interrupts exactly one Apply (simulating a lost control
// channel / process crash at that op), then behaves normally.
type tripFabric struct {
	*MemFabric
	trip int
	n    int
}

func (f *tripFabric) Apply(ctx context.Context, op Op) error {
	i := f.n
	f.n++
	if i == f.trip {
		return ErrInterrupted
	}
	return f.MemFabric.Apply(ctx, op)
}

// TestRolloutChaosEveryBoundary is the exhaustive mid-rollout fault
// sweep on one WAN: both plans are first proven equivalent to the
// single-box reference (symbolically and by packet replay), then a
// fault is injected at EVERY op boundary in three modes — crash the
// op's target, crash-then-heal (flap), and interrupt-plus-resume. At
// every boundary of every run the serving view must be un-torn; every
// run must end committed, rolled back, or degraded-but-consistent.
func TestRolloutChaosEveryBoundary(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")

	// The serving plan at any instant is one of these two; prove both
	// once so "equiv proves whichever plan is serving" holds for free.
	if err := equiv.CheckPlanAgainst(nil, old.Plan, analyzer.Options{}); err != nil {
		t.Fatalf("old plan not proven: %v", err)
	}
	if err := equiv.CheckPlanAgainst(nil, next.Plan, analyzer.Options{}); err != nil {
		t.Fatalf("new plan not proven: %v", err)
	}
	// Packet-level continuity: both epochs replay identically to the
	// reference, so a program flipping between them never observes a
	// divergent write history mid-rollout.
	pkts := replayPackets(old.Plan.Graph, 42, 24)
	if _, err := dataplane.EquivalentRuns(old, pkts); err != nil {
		t.Fatalf("old deployment replay: %v", err)
	}
	if _, err := dataplane.EquivalentRuns(next, replayPackets(next.Plan.Graph, 43, 24)); err != nil {
		t.Fatalf("new deployment replay: %v", err)
	}

	// Dry run to count op boundaries.
	dryFab := NewMemFabric(topo.Clone())
	dryFab.Bootstrap(old, 1)
	dry, err := New(old, next, Options{Topo: topo, Fabric: dryFab, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	dryRep, err := dry.Execute()
	if err != nil {
		t.Fatal(err)
	}
	boundaries := dryRep.Ops
	if boundaries < 10 {
		t.Fatalf("only %d op boundaries; fixture too small for a meaningful sweep", boundaries)
	}

	var committed, rolledBack, degraded, resumed int
	injections := 0
	for b := 0; b < boundaries; b++ {
		for _, mode := range []string{"crash", "flap", "interrupt"} {
			injections++
			live := topo.Clone()
			fab := NewMemFabric(live)
			fab.Bootstrap(old, 1)

			var victim network.SwitchID
			victimSet := false
			boundary := 0
			hook := func(phase string, op Op, view *ServingView) {
				if err := view.CheckInstalled(fab); err != nil {
					t.Fatalf("b=%d mode=%s: torn state at %s %s: %v", b, mode, phase, op.String(), err)
				}
				if boundary == b && (mode == "crash" || mode == "flap") {
					victim = op.Switch
					if op.Kind == OpCommit {
						// Commits target groups; crash a hosting switch
						// of the epoch being flipped to (or from, on
						// unflips of withdrawn groups).
						plan := next.Plan
						if op.Epoch == 1 {
							plan = old.Plan
						}
						if g := dry.progGroup[op.Group]; g != nil {
							if hosts := hostsOf(plan, g.progs); len(hosts) > 0 {
								victim = hosts[len(hosts)-1]
							}
						}
					}
					victimSet = true
					if err := live.SetSwitchDown(victim); err != nil {
						t.Fatalf("b=%d mode=%s: %v", b, mode, err)
					}
				} else if boundary == b+1 && mode == "flap" && victimSet {
					if err := live.SetSwitchUp(victim); err != nil {
						t.Fatalf("b=%d mode=%s heal: %v", b, mode, err)
					}
					victimSet = false
				}
				boundary++
			}

			var f Fabric = fab
			if mode == "interrupt" {
				f = &tripFabric{MemFabric: fab, trip: b}
			}
			r, err := New(old, next, Options{Topo: live, Fabric: f, Retry: quickRetry(), Hook: hook})
			if err != nil {
				t.Fatalf("b=%d mode=%s: New: %v", b, mode, err)
			}
			rep, err := r.Execute()

			if mode == "interrupt" && errors.Is(err, ErrInterrupted) {
				// Resume through the journal's text form on the healed
				// fabric; it must complete.
				j, perr := ParseJournal(r.Journal().Format())
				if perr != nil {
					t.Fatalf("b=%d: journal round-trip: %v", b, perr)
				}
				r2, nerr := New(old, next, Options{Topo: live, Fabric: fab, Journal: j, Retry: quickRetry()})
				if nerr != nil {
					t.Fatalf("b=%d: resume New: %v", b, nerr)
				}
				rep, err = r2.Execute()
				if err != nil || rep.Outcome != OutcomeCommitted {
					t.Fatalf("b=%d: resume = %s, %v; want committed", b, rep.Outcome, err)
				}
				resumed++
				r = r2
			}

			view := r.View()
			if cerr := view.CheckInstalled(fab); cerr != nil {
				t.Fatalf("b=%d mode=%s: terminal state torn: %v", b, mode, cerr)
			}
			switch rep.Outcome {
			case OutcomeCommitted:
				committed++
				if err != nil {
					t.Fatalf("b=%d mode=%s: committed with error %v", b, mode, err)
				}
				for _, p := range view.Programs() {
					if e := view.EpochOf(p); e != 2 {
						t.Fatalf("b=%d mode=%s: committed but %s serves epoch %d", b, mode, p, e)
					}
				}
			case OutcomeRolledBack:
				rolledBack++
				if !errors.Is(err, ErrRolledBack) {
					t.Fatalf("b=%d mode=%s: rolled back without ErrRolledBack (%v)", b, mode, err)
				}
				for _, p := range view.Programs() {
					if e := view.EpochOf(p); e != 1 {
						t.Fatalf("b=%d mode=%s: rolled back but %s serves epoch %d", b, mode, p, e)
					}
				}
				// The last-good deployment is still verify-green.
				if verr := old.Verify(); verr != nil {
					t.Fatalf("b=%d mode=%s: last-good fails Verify: %v", b, mode, verr)
				}
			case OutcomeDegraded:
				degraded++
				// Consistency (no torn program) was asserted above; a
				// degraded rollout must still surface an error.
				if err == nil {
					t.Fatalf("b=%d mode=%s: degraded with nil error", b, mode)
				}
			default:
				t.Fatalf("b=%d mode=%s: non-terminal outcome %s (%v)", b, mode, rep.Outcome, err)
			}
		}
	}

	if injections < 30 {
		t.Fatalf("only %d injection points, want >= 30", injections)
	}
	if committed == 0 || rolledBack == 0 {
		t.Fatalf("sweep never exercised both terminals: committed=%d rolledBack=%d degraded=%d", committed, rolledBack, degraded)
	}
	if resumed == 0 {
		t.Fatal("no interrupted rollout resumed")
	}
	t.Logf("chaos sweep: %d injections, %d committed, %d rolled back, %d degraded, %d resumed",
		injections, committed, rolledBack, degraded, resumed)
}
