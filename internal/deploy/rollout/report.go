package rollout

import (
	"fmt"
	"strings"

	"github.com/hermes-net/hermes/internal/network"
)

// Rollout outcomes. Committed and rolled-back are the two clean
// terminals; interrupted means the journal must be resumed; degraded
// means a rollback was impeded and one or more groups were left
// serving whichever epoch was still viable (quarantine-and-degrade).
const (
	OutcomeCommitted   = "committed"
	OutcomeRolledBack  = "rolled-back"
	OutcomeInterrupted = "interrupted"
	OutcomeDegraded    = "degraded"
)

// PhaseReport summarizes one rollout phase's op traffic.
type PhaseReport struct {
	Name     string  `json:"phase"`
	Ops      int     `json:"ops"`
	Retries  int     `json:"retries"`
	Failures int     `json:"failures"`
	Ms       float64 `json:"ms"`
}

// Report is the observable record of one Execute call. Field names
// are stable JSON identifiers consumed by the CLI, the supervisor's
// poll results, and Exp#12.
type Report struct {
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Resumed marks an Execute that continued a prior journal.
	Resumed bool `json:"resumed"`

	Groups          int `json:"groups"`
	CommittedGroups int `json:"committed_groups"`
	// PreparedSwitches counts switches staged with the new epoch;
	// UnchangedSwitches of those carry a config identical to their old
	// one (the diff is informational — staging is still uniform).
	PreparedSwitches  int `json:"prepared_switches"`
	UnchangedSwitches int `json:"unchanged_switches"`
	RetiredSwitches   int `json:"retired_switches"`

	Ops     int `json:"ops"`
	Retries int `json:"retries"`

	// RolledBackSwitches had their staged config aborted during
	// rollback; QuarantinedSwitches failed even that (or failed
	// retire) and keep stale state a later sweep must reclaim;
	// DegradedGroups could not be flipped back and serve the epoch
	// that remained viable.
	RolledBackSwitches  []network.SwitchID `json:"rolled_back_switches,omitempty"`
	QuarantinedSwitches []network.SwitchID `json:"quarantined_switches,omitempty"`
	DegradedGroups      []string           `json:"degraded_groups,omitempty"`

	Phases  []PhaseReport `json:"phases"`
	TotalMs float64       `json:"total_ms"`
}

// String renders the staged CLI output: one line per phase plus the
// terminal outcome.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rollout epoch %d -> %d: %d groups, %d switches to prepare (%d unchanged), %d to retire\n",
		r.FromEpoch, r.ToEpoch, r.Groups, r.PreparedSwitches, r.UnchangedSwitches, r.RetiredSwitches)
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "  phase %-7s %3d ops, %d retries, %d failures (%.2f ms)\n",
			ph.Name, ph.Ops, ph.Retries, ph.Failures, ph.Ms)
	}
	fmt.Fprintf(&b, "rollout %s: %d/%d groups committed", r.Outcome, r.CommittedGroups, r.Groups)
	if len(r.RolledBackSwitches) > 0 {
		fmt.Fprintf(&b, ", %d switches rolled back", len(r.RolledBackSwitches))
	}
	if len(r.QuarantinedSwitches) > 0 {
		fmt.Fprintf(&b, ", %d quarantined", len(r.QuarantinedSwitches))
	}
	if len(r.DegradedGroups) > 0 {
		fmt.Fprintf(&b, ", %d degraded groups", len(r.DegradedGroups))
	}
	if r.Resumed {
		b.WriteString(", resumed")
	}
	b.WriteString("\n")
	return b.String()
}
