package rollout

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// testProg builds a two-table pipeline (hash → count) with
// program-private field names so the analyzer never merges MATs across
// programs and every commit group stays a singleton.
func testProg(t testing.TB, name string) *program.Program {
	t.Helper()
	idx := fields.Metadata("meta."+name+".idx", 32)
	cnt := fields.Metadata("meta."+name+".cnt", 32)
	src := fields.Header(fields.IPv4Src, 32)
	return program.NewBuilder(name).
		Table("hash", 1).
		ActionDef("h", program.HashOp(idx, src)).
		Default("h").
		Table("count", 1024).
		Key(idx, program.MatchExact).
		ActionDef("c", program.CountOp(cnt, idx)).
		Default("c").
		MustBuild()
}

// fixture deploys nProgs two-MAT programs on an nSw ring sized so each
// program occupies roughly one switch, leaving spare capacity for
// make-before-break moves.
func fixture(t testing.TB, nProgs, nSw int) (*deploy.Deployment, *network.Topology) {
	t.Helper()
	progs := make([]*program.Program, nProgs)
	for i := range progs {
		progs[i] = testProg(t, fmt.Sprintf("p%d", i+1))
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	topo := network.NewTopology("rollout-tb")
	for i := 0; i < nSw; i++ {
		topo.AddSwitch(network.Switch{
			Programmable: true, Stages: 1, StageCapacity: 0.12,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < nSw; i++ {
		if err := topo.AddLink(network.SwitchID(i), network.SwitchID((i+1)%nSw), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := (placement.Greedy{}).Solve(g, topo, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, topo
}

// drained redeploys around the switch hosting prog's count MAT,
// producing the "new plan" side of a rollout.
func drained(t testing.TB, dep *deploy.Deployment, prog string) (*deploy.Deployment, network.SwitchID) {
	t.Helper()
	victim, ok := dep.Plan.SwitchOf(prog + "/count")
	if !ok {
		t.Fatalf("%s/count not placed", prog)
	}
	next, _, err := deploy.Redeploy(dep, nil, placement.ReplanOptions{}, analyzer.Options{}, victim)
	if err != nil {
		t.Fatal(err)
	}
	if sw, _ := next.Plan.SwitchOf(prog + "/count"); sw == victim {
		t.Fatalf("drain left %s/count on switch %d", prog, victim)
	}
	return next, victim
}

func quickRetry() deploy.RetryPolicy {
	return deploy.RetryPolicy{Attempts: 2, Backoff: time.Microsecond, Sleep: func(time.Duration) {}}
}

func TestRolloutCommitsCleanly(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")

	ctl, err := deploy.NewController(old)
	if err != nil {
		t.Fatal(err)
	}
	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)

	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Ctrl: ctl, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	// The invariant must hold at every op boundary, not just at the end.
	r.opts.Hook = func(phase string, op Op, view *ServingView) {
		if err := view.CheckInstalled(fab); err != nil {
			t.Fatalf("torn state at %s %s: %v", phase, op.String(), err)
		}
	}
	rep, err := r.Execute()
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if rep.Outcome != OutcomeCommitted {
		t.Fatalf("outcome = %s, want committed", rep.Outcome)
	}
	if rep.Groups != 3 || rep.CommittedGroups != 3 {
		t.Errorf("groups = %d committed = %d, want 3/3", rep.Groups, rep.CommittedGroups)
	}
	if rep.PreparedSwitches != len(next.Plan.UsedSwitches()) {
		t.Errorf("prepared = %d, want %d", rep.PreparedSwitches, len(next.Plan.UsedSwitches()))
	}
	if rep.RetiredSwitches != len(old.Plan.UsedSwitches()) {
		t.Errorf("retired = %d, want %d", rep.RetiredSwitches, len(old.Plan.UsedSwitches()))
	}
	if len(rep.Phases) != 3 {
		t.Errorf("phases = %d, want prepare/commit/retire", len(rep.Phases))
	}

	// Fabric end state: new epoch everywhere the new plan lives, old
	// epoch fully retired.
	for _, sw := range next.Plan.UsedSwitches() {
		if !fab.Installed(sw, 2) {
			t.Errorf("switch %d missing epoch 2", sw)
		}
	}
	for _, sw := range old.Plan.UsedSwitches() {
		if fab.Installed(sw, 1) {
			t.Errorf("switch %d still holds retired epoch 1", sw)
		}
	}
	// Every program serves the new plan; the controller tracked the move.
	view := r.View()
	for _, p := range view.Programs() {
		if e := view.EpochOf(p); e != 2 {
			t.Errorf("program %s serves epoch %d, want 2", p, e)
		}
	}
	wantHost, _ := next.Plan.SwitchOf("p3/count")
	if got, _ := ctl.HostingSwitch("p3/count"); got != wantHost {
		t.Errorf("controller host for p3/count = %d, want %d", got, wantHost)
	}

	// The journal is complete, done, and round-trips through text.
	for _, e := range r.Journal().Entries {
		if e.Status != StatusDone {
			t.Errorf("entry %s left %s", e.Op.String(), e.Status)
		}
	}
	text := r.Journal().Format()
	back, err := ParseJournal(text)
	if err != nil {
		t.Fatalf("ParseJournal: %v", err)
	}
	if back.Format() != text {
		t.Error("journal text does not round-trip")
	}
}

func TestRolloutRollsBackOnPrepareFailure(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")
	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)

	// Kill the second prepare target right before its op lands.
	var prepared int
	var killed network.SwitchID
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Retry: quickRetry(),
		Hook: func(phase string, op Op, view *ServingView) {
			if phase == "prepare" {
				prepared++
				if prepared == 2 {
					killed = op.Switch
					if err := topo.SetSwitchDown(op.Switch); err != nil {
						t.Fatal(err)
					}
				}
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("Execute = %v, want ErrRolledBack", err)
	}
	if rep.Outcome != OutcomeRolledBack {
		t.Fatalf("outcome = %s, want rolled-back", rep.Outcome)
	}
	if rep.CommittedGroups != 0 {
		t.Errorf("committed groups = %d after prepare failure", rep.CommittedGroups)
	}
	// Old plan still serves everything; the one staged switch aborted.
	view := r.View()
	for _, p := range view.Programs() {
		if e := view.EpochOf(p); e != 1 {
			t.Errorf("program %s serves epoch %d, want 1", p, e)
		}
	}
	if err := view.CheckInstalled(fab); err != nil {
		t.Fatalf("rolled-back state torn: %v", err)
	}
	if len(rep.RolledBackSwitches) != 1 {
		t.Errorf("rolled-back switches = %v, want exactly the first prepared one", rep.RolledBackSwitches)
	}
	for _, sw := range next.Plan.UsedSwitches() {
		if sw != killed && fab.Installed(sw, 2) {
			t.Errorf("switch %d still holds staged epoch 2 after rollback", sw)
		}
	}
	// Once the injected fault heals, the last-good plan is gate-green —
	// rollback restored rule state; the outage itself is the
	// supervisor's to repair.
	if err := topo.SetSwitchUp(killed); err != nil {
		t.Fatal(err)
	}
	if err := old.Plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Errorf("old plan invalid after rollback: %v", err)
	}
	if err := old.Verify(); err != nil {
		t.Errorf("old deployment fails Verify after rollback: %v", err)
	}
}

func TestRolloutRollsBackOnCommitFailure(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")
	// p3's MATs moved to a switch the old plan does not use; killing it
	// at p3's commit forces a rollback whose unflips all succeed.
	newHost, _ := next.Plan.SwitchOf("p3/count")
	for _, sw := range old.Plan.UsedSwitches() {
		if sw == newHost {
			t.Fatalf("fixture: p3's new host %d is also an old-plan host", newHost)
		}
	}
	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)

	var flips []string
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Retry: quickRetry(),
		Hook: func(phase string, op Op, view *ServingView) {
			if phase == "commit" {
				flips = append(flips, op.Group)
				if op.Group == "p3" {
					if err := topo.SetSwitchDown(newHost); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := view.CheckInstalled(fab); err != nil {
				t.Fatalf("torn state at %s %s: %v", phase, op.String(), err)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("Execute = %v, want ErrRolledBack", err)
	}
	if rep.Outcome != OutcomeRolledBack {
		t.Fatalf("outcome = %s (degraded groups %v), want rolled-back", rep.Outcome, rep.DegradedGroups)
	}
	if len(flips) != 3 {
		t.Errorf("commit boundaries = %v, want 3", flips)
	}
	// The two committed groups were unflipped; everything serves old.
	view := r.View()
	for _, p := range view.Programs() {
		if e := view.EpochOf(p); e != 1 {
			t.Errorf("program %s serves epoch %d, want 1", p, e)
		}
	}
	if err := view.CheckInstalled(fab); err != nil {
		t.Fatalf("rolled-back state torn: %v", err)
	}
	if rep.CommittedGroups != 0 {
		t.Errorf("committed groups = %d after rollback", rep.CommittedGroups)
	}
	// The dead switch could not drop its staged config: quarantined.
	found := false
	for _, sw := range rep.QuarantinedSwitches {
		if sw == newHost {
			found = true
		}
	}
	if !found {
		t.Errorf("quarantined = %v, want to include dead switch %d", rep.QuarantinedSwitches, newHost)
	}
}

func TestRolloutInterruptAndResume(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")
	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)

	// Cancel mid-commit: after the first group flips.
	ctx, cancel := context.WithCancel(context.Background())
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Ctx: ctx, Retry: quickRetry(),
		Hook: func(phase string, op Op, view *ServingView) {
			if phase == "commit" && op.Group == "p2" {
				cancel()
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Execute = %v, want ErrInterrupted", err)
	}
	if rep.Outcome != OutcomeInterrupted {
		t.Fatalf("outcome = %s, want interrupted", rep.Outcome)
	}
	// Mid-rollout state: p1 on the new epoch, the rest still old — mixed
	// across groups is legal, and nothing is torn.
	view := r.View()
	if got := view.EpochOf("p1"); got != 2 {
		t.Errorf("p1 serves %d, want 2", got)
	}
	if got := view.EpochOf("p3"); got != 1 {
		t.Errorf("p3 serves %d, want 1", got)
	}
	if !view.Mixed() {
		t.Error("view not mixed mid-commit")
	}
	if err := view.CheckInstalled(fab); err != nil {
		t.Fatalf("interrupted state torn: %v", err)
	}

	// Resume from the journal's text form on the surviving fabric.
	j, err := ParseJournal(r.Journal().Format())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(old, next, Options{Topo: topo, Fabric: fab, Journal: j, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := r2.Execute()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep2.Outcome != OutcomeCommitted || !rep2.Resumed {
		t.Fatalf("resume outcome = %s resumed=%v, want committed/resumed", rep2.Outcome, rep2.Resumed)
	}
	view = r2.View()
	for _, p := range view.Programs() {
		if e := view.EpochOf(p); e != 2 {
			t.Errorf("program %s serves epoch %d after resume, want 2", p, e)
		}
	}

	// A crashed process can also rebuild fabric state purely from the
	// journal (idempotent replay) and still finish.
	fab3 := NewMemFabric(topo)
	j3, err := ParseJournal(r.Journal().Format())
	if err != nil {
		t.Fatal(err)
	}
	fab3.Replay(j3, old)
	r3, err := New(old, next, Options{Topo: topo, Fabric: fab3, Journal: j3, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	if rep3, err := r3.Execute(); err != nil || rep3.Outcome != OutcomeCommitted {
		t.Fatalf("replayed-fabric resume = %s, %v", rep3.Outcome, err)
	}
}

func TestRolloutJournalFingerprintMismatch(t *testing.T) {
	old, topo := fixture(t, 2, 6)
	next, _ := drained(t, old, "p2")
	r, err := New(old, next, Options{Topo: topo})
	if err != nil {
		t.Fatal(err)
	}
	j := r.Journal()
	j.Fingerprint++
	if _, err := New(old, next, Options{Topo: topo, Journal: j}); err == nil {
		t.Fatal("journal for different plans accepted")
	}
}

func TestRolloutGateRejectsInvalidNewPlan(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")
	// A fault that lands after the solve but before the rollout: the
	// new plan hosts MATs on a now-dead switch, so the gate refuses
	// before staging anything.
	newHost, _ := next.Plan.SwitchOf("p3/count")
	if err := topo.SetSwitchDown(newHost); err != nil {
		t.Fatal(err)
	}
	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Retry: quickRetry()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("Execute = %v, want ErrRolledBack", err)
	}
	if rep.Ops != 0 {
		t.Errorf("gate failure issued %d ops", rep.Ops)
	}
	view := r.View()
	for _, p := range view.Programs() {
		if e := view.EpochOf(p); e != 1 {
			t.Errorf("program %s serves epoch %d, want 1", p, e)
		}
	}
}

// TestRolloutRetryHealsMidBackoff: a flap — down at the first attempt,
// healed during backoff — must not trigger rollback at all.
func TestRolloutRetryHealsMidBackoff(t *testing.T) {
	old, topo := fixture(t, 3, 6)
	next, _ := drained(t, old, "p3")
	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)

	var victim network.SwitchID
	armed := false
	pol := deploy.RetryPolicy{Attempts: 3, Backoff: time.Microsecond,
		Sleep: func(time.Duration) {
			if armed {
				armed = false
				if err := topo.SetSwitchUp(victim); err != nil {
					t.Error(err)
				}
			}
		}}
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Retry: pol,
		Hook: func(phase string, op Op, view *ServingView) {
			if phase == "prepare" && !armed && victim == 0 && op.Switch != 0 {
				victim = op.Switch
				armed = true
				if err := topo.SetSwitchDown(op.Switch); err != nil {
					t.Fatal(err)
				}
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if err != nil {
		t.Fatalf("Execute = %v, want flap absorbed by retry", err)
	}
	if rep.Outcome != OutcomeCommitted {
		t.Fatalf("outcome = %s, want committed", rep.Outcome)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded for the flap")
	}
}

func TestRolloutWithdrawAndFreshPrograms(t *testing.T) {
	// Old serves p1+p2; new serves p1+p3: p2 is withdrawn (commits to
	// none), p3 is fresh (starts serving only at its commit).
	p1, p2, p3 := testProg(t, "p1"), testProg(t, "p2"), testProg(t, "p3")
	topo := network.NewTopology("rollout-wd")
	for i := 0; i < 4; i++ {
		topo.AddSwitch(network.Switch{
			Programmable: true, Stages: 1, StageCapacity: 0.12,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < 4; i++ {
		if err := topo.AddLink(network.SwitchID(i), network.SwitchID((i+1)%4), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	build := func(progs ...*program.Program) *deploy.Deployment {
		g, err := analyzer.Analyze(progs, analyzer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := (placement.Greedy{}).Solve(g, topo, placement.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := deploy.Compile(plan, analyzer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	old := build(p1, p2)
	next := build(p1, p3)

	fab := NewMemFabric(topo)
	fab.Bootstrap(old, 1)
	r, err := New(old, next, Options{Topo: topo, Fabric: fab, Retry: quickRetry(),
		Hook: func(phase string, op Op, view *ServingView) {
			if err := view.CheckInstalled(fab); err != nil {
				t.Fatalf("torn at %s %s: %v", phase, op.String(), err)
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Execute()
	if err != nil || rep.Outcome != OutcomeCommitted {
		t.Fatalf("Execute = %s, %v", rep.Outcome, err)
	}
	view := r.View()
	if e := view.EpochOf("p1"); e != 2 {
		t.Errorf("p1 serves %d, want 2", e)
	}
	if e := view.EpochOf("p2"); e != 0 {
		t.Errorf("withdrawn p2 serves %d, want 0", e)
	}
	if e := view.EpochOf("p3"); e != 2 {
		t.Errorf("fresh p3 serves %d, want 2", e)
	}
}
