package deploy

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// compiled3 is compiled(t) on a 3-switch chain, leaving capacity
// headroom so a single switch failure stays repairable.
func compiled3(t *testing.T) (*Deployment, *placement.Plan) {
	t.Helper()
	g, err := analyzer.Analyze([]*program.Program{pipelineProgram(t)}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("tb3")
	for i := 0; i < 3; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 1, StageCapacity: 0.5,
			TransitLatency: time.Microsecond,
		})
	}
	// A ring, so the survivors stay connected whichever switch fails.
	for i := 0; i < 3; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID((i+1)%3), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, plan
}

// TestControllerRebindAfterRedeploy is the stale-host regression: the
// controller's MAT→switch map was precomputed at construction and
// never updated, so rule installs after a redeploy routed to the old
// hosting switch. Rebind must atomically swap both the deployment and
// the host map.
func TestControllerRebindAfterRedeploy(t *testing.T) {
	dep, plan := compiled3(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	oldHost, err := ctl.HostingSwitch("p/count")
	if err != nil {
		t.Fatal(err)
	}

	// Fail the hosting switch and redeploy around it.
	if err := plan.Topo.SetSwitchDown(oldHost); err != nil {
		t.Fatal(err)
	}
	next, _, err := Redeploy(dep, nil, placement.ReplanOptions{}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	newHost, ok := next.Plan.SwitchOf("p/count")
	if !ok {
		t.Fatal("p/count missing from redeployed plan")
	}
	if newHost == oldHost {
		t.Fatalf("redeploy left p/count on the down switch %d", oldHost)
	}

	// Without Rebind the controller still reports the stale host (the
	// bug this guards against); after Rebind it must track the move.
	if got, _ := ctl.HostingSwitch("p/count"); got != oldHost {
		t.Fatalf("pre-rebind host = %d, want stale %d", got, oldHost)
	}
	if err := ctl.Rebind(next); err != nil {
		t.Fatal(err)
	}
	if got, _ := ctl.HostingSwitch("p/count"); got != newHost {
		t.Errorf("post-rebind host = %d, want %d", got, newHost)
	}
	// Rule ops now route to the live switch, which is up.
	rule := program.Rule{
		Matches: map[string]program.Pattern{"meta.idx": {Value: 7}},
		Action:  "c",
	}
	if err := ctl.InstallRule("p/count", rule); err != nil {
		t.Fatalf("install after rebind: %v", err)
	}
	if err := ctl.Rebind(nil); err == nil {
		t.Error("rebind to nil deployment accepted")
	}
}

// TestControllerRetryOnDownSwitch exercises the retry loop: a rule op
// against a down hosting switch fails with ErrSwitchDown, retries
// under exponential backoff, and succeeds once the switch heals
// between attempts.
func TestControllerRetryOnDownSwitch(t *testing.T) {
	dep, plan := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := ctl.HostingSwitch("p/count")
	rule := program.Rule{
		Matches: map[string]program.Pattern{"meta.idx": {Value: 7}},
		Action:  "c",
	}

	// No policy: the down switch fails immediately with the sentinel.
	if err := plan.Topo.SetSwitchDown(host); err != nil {
		t.Fatal(err)
	}
	err = ctl.InstallRule("p/count", rule)
	if !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("install on down switch = %v, want ErrSwitchDown", err)
	}

	// With retries: heal during the second backoff sleep; the third
	// attempt succeeds. The injected Sleep records the doubling.
	var sleeps []time.Duration
	ctl.SetRetryPolicy(RetryPolicy{
		Attempts: 4,
		Backoff:  10 * time.Millisecond,
		Sleep: func(d time.Duration) {
			sleeps = append(sleeps, d)
			if len(sleeps) == 2 {
				if err := plan.Topo.SetSwitchUp(host); err != nil {
					t.Error(err)
				}
			}
		},
	})
	if err := ctl.InstallRule("p/count", rule); err != nil {
		t.Fatalf("install with retry = %v, want success after heal", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	if sleeps[0] != 10*time.Millisecond || sleeps[1] != 20*time.Millisecond {
		t.Errorf("backoff = %v, want doubling from 10ms", sleeps)
	}

	// Exhausted retries surface the sentinel.
	if err := plan.Topo.SetSwitchDown(host); err != nil {
		t.Fatal(err)
	}
	ctl.SetRetryPolicy(RetryPolicy{Attempts: 2, Backoff: time.Microsecond,
		Sleep: func(time.Duration) {}})
	if err := ctl.InstallRule("p/count", rule); !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("exhausted retries = %v, want ErrSwitchDown", err)
	}

	// Non-retryable errors never loop: unknown MAT fails once.
	calls := 0
	ctl.SetRetryPolicy(RetryPolicy{Attempts: 5, Backoff: time.Microsecond,
		Sleep: func(time.Duration) { calls++ }})
	if err := ctl.InstallRule("nope", rule); err == nil || errors.Is(err, ErrSwitchDown) {
		t.Fatalf("unknown MAT = %v", err)
	}
	if calls != 0 {
		t.Errorf("non-retryable error slept %d times", calls)
	}
}

// TestRetryBackoffCancellable is the blocking-sleep regression: a
// retry loop parked in a long backoff must return as soon as the
// policy's context is done instead of sleeping out the full wait.
func TestRetryBackoffCancellable(t *testing.T) {
	dep, plan := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := ctl.HostingSwitch("p/count")
	if err := plan.Topo.SetSwitchDown(host); err != nil {
		t.Fatal(err)
	}
	rule := program.Rule{
		Matches: map[string]program.Pattern{"meta.idx": {Value: 7}},
		Action:  "c",
	}

	// Pre-cancelled context: the first failed attempt would enter a
	// 10-second backoff; cancellation must cut it to ~nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl.SetRetryPolicy(RetryPolicy{Attempts: 5, Backoff: 10 * time.Second, Ctx: ctx})
	start := time.Now()
	err = ctl.InstallRule("p/count", rule)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retry blocked %v, want immediate return", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retry = %v, want context.Canceled", err)
	}

	// A deadline fires mid-sleep and interrupts the timer itself.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	ctl.SetRetryPolicy(RetryPolicy{Attempts: 5, Backoff: 10 * time.Second, Ctx: dctx})
	start = time.Now()
	err = ctl.InstallRule("p/count", rule)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline retry blocked %v, want ~20ms", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline retry = %v, want context.DeadlineExceeded", err)
	}

	// A live context leaves retry semantics untouched: heal during the
	// first backoff — via the Sleep hook, which runs on the retry
	// goroutine (the fault overlay is caller-serialized) — and the
	// second attempt succeeds.
	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	healed := false
	ctl.SetRetryPolicy(RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Ctx: lctx,
		Sleep: func(time.Duration) {
			if !healed {
				healed = true
				if err := plan.Topo.SetSwitchUp(host); err != nil {
					t.Error(err)
				}
			}
		}})
	if err = ctl.InstallRule("p/count", rule); err != nil {
		t.Fatalf("install after mid-backoff heal = %v, want success", err)
	}
	if !healed {
		t.Fatal("retry succeeded without ever entering the backoff")
	}
}

// TestRebindRejectsInvalidPlan: Rebind must refuse a deployment whose
// plan no longer validates against the live fault overlay, not just a
// nil one — binding it would route rule ops to dead switches the
// gates already know about.
func TestRebindRejectsInvalidPlan(t *testing.T) {
	dep, plan := compiled3(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := dep.Plan.SwitchOf("p/count")
	if err := plan.Topo.SetSwitchDown(host); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Rebind(dep); err == nil {
		t.Fatal("rebind accepted a plan hosting MATs on a down switch")
	}
	// The stale binding survives a rejected rebind untouched, and a
	// heal makes the same deployment acceptable again.
	if got, _ := ctl.HostingSwitch("p/count"); got != host {
		t.Errorf("rejected rebind changed binding to %d", got)
	}
	if err := plan.Topo.SetSwitchUp(host); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Rebind(dep); err != nil {
		t.Errorf("rebind after heal = %v", err)
	}
}

// TestRemoveRuleRetries covers the RemoveRule retry surface.
func TestRemoveRuleRetries(t *testing.T) {
	dep, plan := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	rule := program.Rule{
		Matches: map[string]program.Pattern{"meta.idx": {Value: 7}},
		Action:  "c",
	}
	if err := ctl.InstallRule("p/count", rule); err != nil {
		t.Fatal(err)
	}
	host, _ := ctl.HostingSwitch("p/count")
	if err := plan.Topo.SetSwitchDown(host); err != nil {
		t.Fatal(err)
	}
	if err := ctl.RemoveRule("p/count", 0); !errors.Is(err, ErrSwitchDown) {
		t.Fatalf("remove on down switch = %v, want ErrSwitchDown", err)
	}
	healed := false
	ctl.SetRetryPolicy(RetryPolicy{Attempts: 3, Backoff: time.Microsecond,
		Sleep: func(time.Duration) {
			if !healed {
				healed = true
				if err := plan.Topo.SetSwitchUp(host); err != nil {
					t.Error(err)
				}
			}
		}})
	if err := ctl.RemoveRule("p/count", 0); err != nil {
		t.Fatalf("remove with retry = %v", err)
	}
}
