// Package deploy is the Hermes backend (paper §VI-A "Implementation"):
// it turns the optimization framework's decision variables into
// per-switch configurations. For every switch it derives the stage
// program (which MAT fragments run in which stage) and the
// coordination headers: the exact metadata fields the switch must
// piggyback on packets toward each downstream switch, and the fields it
// must extract on ingress. The real system hands these to the vendor
// switch compiler; our data plane simulator executes them directly.
package deploy

import (
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
)

// StageEntry is one MAT fragment scheduled in a stage.
type StageEntry struct {
	// MAT is the table name.
	MAT string
	// Amount is the resource slice the fragment consumes in this stage.
	Amount float64
}

// CoordHeader is the layout of piggybacked metadata toward one
// downstream switch.
type CoordHeader struct {
	// Fields lists the carried metadata fields, sorted by name: a
	// deterministic wire layout.
	Fields []fields.Field
	// Bytes is the total header size.
	Bytes int
}

// SwitchConfig is everything one switch needs.
type SwitchConfig struct {
	// Switch identifies the target.
	Switch network.SwitchID
	// Stages[i] lists the MAT fragments running in stage i, in
	// deterministic order.
	Stages [][]StageEntry
	// Exports maps each downstream switch to the coordination header
	// this switch serializes onto departing packets.
	Exports map[network.SwitchID]CoordHeader
	// Imports maps each upstream switch to the header parsed on
	// ingress.
	Imports map[network.SwitchID]CoordHeader
}

// MATNames returns every MAT hosted by the switch, sorted.
func (c *SwitchConfig) MATNames() []string {
	seen := map[string]bool{}
	for _, st := range c.Stages {
		for _, e := range st {
			seen[e.MAT] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Deployment is the compiled form of a plan.
type Deployment struct {
	// Plan is the source plan.
	Plan *placement.Plan
	// Configs maps each used switch to its configuration.
	Configs map[network.SwitchID]*SwitchConfig
	// Headers maps each communicating ordered switch pair to its
	// coordination header (the same object the exporter and importer
	// reference).
	Headers map[placement.RouteKey]CoordHeader
}

// MaxHeaderBytes returns the largest coordination header — the
// deployment-level realization of A_max.
func (d *Deployment) MaxHeaderBytes() int {
	max := 0
	for _, h := range d.Headers {
		if h.Bytes > max {
			max = h.Bytes
		}
	}
	return max
}

// Compile lowers a plan into per-switch configurations. opts must be
// the same analyzer options used to annotate the TDG, so that header
// sizes agree with the plan's A(a,b) values.
func Compile(plan *placement.Plan, opts analyzer.Options) (*Deployment, error) {
	if plan == nil || plan.Graph == nil || plan.Topo == nil {
		return nil, fmt.Errorf("deploy: nil or incomplete plan")
	}
	d := &Deployment{
		Plan:    plan,
		Configs: map[network.SwitchID]*SwitchConfig{},
		Headers: map[placement.RouteKey]CoordHeader{},
	}
	// Stage programs.
	for name, sp := range plan.Assignments {
		cfg := d.Configs[sp.Switch]
		if cfg == nil {
			sw, err := plan.Topo.Switch(sp.Switch)
			if err != nil {
				return nil, fmt.Errorf("deploy: %w", err)
			}
			cfg = &SwitchConfig{
				Switch:  sp.Switch,
				Stages:  make([][]StageEntry, sw.Stages),
				Exports: map[network.SwitchID]CoordHeader{},
				Imports: map[network.SwitchID]CoordHeader{},
			}
			d.Configs[sp.Switch] = cfg
		}
		for i, amt := range sp.PerStage {
			if amt <= 0 {
				continue
			}
			stage := sp.Start + i
			if stage >= len(cfg.Stages) {
				return nil, fmt.Errorf("deploy: MAT %q stage %d out of range", name, stage)
			}
			cfg.Stages[stage] = append(cfg.Stages[stage], StageEntry{MAT: name, Amount: amt})
		}
	}
	// Deterministic order inside each stage.
	for _, cfg := range d.Configs {
		for _, st := range cfg.Stages {
			sort.Slice(st, func(i, j int) bool { return st[i].MAT < st[j].MAT })
		}
	}
	// Coordination headers: union the metadata field sets of every
	// cross edge per ordered switch pair.
	perPair := map[placement.RouteKey]fields.Set{}
	for _, e := range plan.CrossEdges() {
		ua, _ := plan.SwitchOf(e.From)
		ub, _ := plan.SwitchOf(e.To)
		a, _ := plan.Graph.Node(e.From)
		b, _ := plan.Graph.Node(e.To)
		fs, err := analyzer.MetadataFields(a.MAT, b.MAT, e.Type, opts)
		if err != nil {
			return nil, fmt.Errorf("deploy: %w", err)
		}
		key := placement.RouteKey{From: ua, To: ub}
		cur, ok := perPair[key]
		if !ok {
			perPair[key] = fs
			continue
		}
		union, err := cur.Union(fs)
		if err != nil {
			return nil, fmt.Errorf("deploy: header for %v: %w", key, err)
		}
		perPair[key] = union
	}
	for key, fs := range perPair {
		hdr := CoordHeader{Fields: fs.Fields(), Bytes: fs.TotalBytes()}
		d.Headers[key] = hdr
		if from := d.Configs[key.From]; from != nil {
			from.Exports[key.To] = hdr
		}
		if to := d.Configs[key.To]; to != nil {
			to.Imports[key.From] = hdr
		}
	}
	return d, nil
}

// Redeploy heals a live deployment around drained switches: it replans
// the deployment's plan (incremental repair by default, per
// opts.Mode), recompiles the result, and verifies the new configs.
// aopts must be the analyzer options the original deployment was
// compiled with, so header layouts stay consistent across the
// migration. The returned report carries the churn telemetry (moved
// MATs, repair-vs-fallback, latency); the old deployment is untouched,
// so the controller can diff the two to stage the migration.
func Redeploy(d *Deployment, solver placement.Solver, opts placement.ReplanOptions, aopts analyzer.Options, drained ...network.SwitchID) (*Deployment, *placement.ReplanReport, error) {
	if d == nil || d.Plan == nil {
		return nil, nil, fmt.Errorf("deploy: redeploy of nil deployment")
	}
	plan, rep, err := placement.ReplanWithOptions(d.Plan, solver, opts, drained...)
	if err != nil {
		return nil, rep, fmt.Errorf("deploy: redeploy: %w", err)
	}
	next, err := Compile(plan, aopts)
	if err != nil {
		return nil, rep, fmt.Errorf("deploy: redeploy: %w", err)
	}
	if err := next.Verify(); err != nil {
		return nil, rep, fmt.Errorf("deploy: redeploy: %w", err)
	}
	if opts.Equiv && EquivHook != nil {
		if err := EquivHook(next); err != nil {
			return nil, rep, fmt.Errorf("deploy: redeploy: %w", err)
		}
	}
	return next, rep, nil
}

// EquivHook is the symbolic equivalence gate Redeploy invokes on the
// recompiled deployment when ReplanOptions.Equiv is set. The
// internal/equiv package registers its checker here; the variable
// indirection avoids an import cycle (equiv depends on deploy).
var EquivHook func(*Deployment) error

// Verify cross-checks the compiled deployment against the plan:
// every assigned MAT appears in exactly the stages the plan dictates,
// and header sizes per pair never exceed the plan's A(a,b) pair sums
// (they can be smaller because overlapping edges share fields).
func (d *Deployment) Verify() error {
	// Every MAT fragment accounted for.
	for name, sp := range d.Plan.Assignments {
		cfg := d.Configs[sp.Switch]
		if cfg == nil {
			return fmt.Errorf("deploy: %s has no config but hosts MAT %q",
				placement.SwitchLabel(d.Plan.Topo, sp.Switch), name)
		}
		total := 0.0
		for _, st := range cfg.Stages {
			for _, e := range st {
				if e.MAT == name {
					total += e.Amount
				}
			}
		}
		if diff := total - sp.Total(); diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("deploy: MAT %q on %s stages %d..%d schedules %g of %g resources",
				name, placement.SwitchLabel(d.Plan.Topo, sp.Switch), sp.Start, sp.End, total, sp.Total())
		}
	}
	// Headers bounded by the analyzer's per-pair byte counts.
	pairBytes := d.Plan.PairBytes()
	for key, hdr := range d.Headers {
		if hdr.Bytes > pairBytes[key] {
			return fmt.Errorf("deploy: header %s -> %s carries %d bytes, analysis bound is %d",
				placement.SwitchLabel(d.Plan.Topo, key.From), placement.SwitchLabel(d.Plan.Topo, key.To),
				hdr.Bytes, pairBytes[key])
		}
		sum := 0
		for _, f := range hdr.Fields {
			sum += f.Bytes()
		}
		if hdr.Bytes != sum {
			return fmt.Errorf("deploy: header %s -> %s declares %d bytes, fields sum to %d",
				placement.SwitchLabel(d.Plan.Topo, key.From), placement.SwitchLabel(d.Plan.Topo, key.To),
				hdr.Bytes, sum)
		}
	}
	// Every communicating pair has a header.
	for key, bytes := range pairBytes {
		if bytes == 0 {
			continue
		}
		if _, ok := d.Headers[key]; !ok {
			return fmt.Errorf("deploy: pair %s -> %s delivers %d bytes but has no header",
				placement.SwitchLabel(d.Plan.Topo, key.From), placement.SwitchLabel(d.Plan.Topo, key.To), bytes)
		}
	}
	return nil
}
