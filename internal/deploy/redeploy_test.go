package deploy

import (
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// TestRedeployAroundDrain heals a live deployment around a drained
// switch: the replanned configs must verify, carry the churn report,
// and leave the drained switch empty — while the old deployment stays
// untouched for migration diffing.
func TestRedeployAroundDrain(t *testing.T) {
	g, err := analyzer.Analyze([]*program.Program{pipelineProgram(t)}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("tb3")
	for i := 0; i < 3; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 1, StageCapacity: 0.5,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i+1 < 3; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	drained := plan.UsedSwitches()[0]

	next, rep, err := Redeploy(dep, nil, placement.ReplanOptions{}, analyzer.Options{}, drained)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("redeploy must return the churn report")
	}
	if err := next.Verify(); err != nil {
		t.Fatalf("redeployed configs must verify: %v", err)
	}
	if _, ok := next.Configs[drained]; ok {
		t.Errorf("drained switch %d still has a config", drained)
	}
	for name, sp := range next.Plan.Assignments {
		if sp.Switch == drained {
			t.Errorf("MAT %q still hosted on drained switch %d", name, drained)
		}
	}
	// The original deployment is untouched.
	if _, ok := dep.Configs[drained]; !ok {
		t.Error("redeploy must not mutate the original deployment")
	}
	if rep.MovedMATs == 0 {
		t.Error("draining an occupied switch must move MATs")
	}
}
