package deploy

import (
	"sync"
	"testing"

	"github.com/hermes-net/hermes/internal/program"
)

func TestControllerInstallAndRemove(t *testing.T) {
	dep, _ := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}

	// p/count matches meta.idx exactly and runs action "c".
	rule := program.Rule{
		Priority: 5,
		Matches:  map[string]program.Pattern{"meta.idx": {Value: 7}},
		Action:   "c",
	}
	if err := ctl.InstallRule("p/count", rule); err != nil {
		t.Fatalf("InstallRule: %v", err)
	}
	n, err := ctl.RuleCount("p/count")
	if err != nil || n != 1 {
		t.Fatalf("RuleCount = %d, %v; want 1", n, err)
	}
	if err := ctl.RemoveRule("p/count", 0); err != nil {
		t.Fatalf("RemoveRule: %v", err)
	}
	n, _ = ctl.RuleCount("p/count")
	if n != 0 {
		t.Errorf("RuleCount after remove = %d", n)
	}
}

func TestControllerValidation(t *testing.T) {
	dep, _ := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.InstallRule("nope", program.Rule{Action: "c"}); err == nil {
		t.Error("install on unknown MAT accepted")
	}
	if err := ctl.InstallRule("p/count", program.Rule{Action: "missing"}); err == nil {
		t.Error("unknown action accepted")
	}
	if err := ctl.InstallRule("p/count", program.Rule{
		Action:  "c",
		Matches: map[string]program.Pattern{"ipv4.ttl": {Value: 1}},
	}); err == nil {
		t.Error("non-key match accepted")
	}
	if err := ctl.InstallRule("p/count", program.Rule{
		Action: "c",
		Params: map[string]uint64{"meta.never": 1},
	}); err == nil {
		t.Error("parameter for unwritten field accepted")
	}
	if err := ctl.RemoveRule("p/count", 0); err == nil {
		t.Error("remove from empty table accepted")
	}
	if _, err := ctl.RuleCount("nope"); err == nil {
		t.Error("RuleCount of unknown MAT accepted")
	}
	if _, err := NewController(nil); err == nil {
		t.Error("nil deployment accepted")
	}
}

func TestControllerCapacityEnforced(t *testing.T) {
	dep, _ := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := dep.Plan.Graph.Node("p/count")
	node.MAT.Capacity = 2
	node.MAT.Rules = nil
	rule := program.Rule{Action: "c"}
	for i := 0; i < 2; i++ {
		if err := ctl.InstallRule("p/count", rule); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctl.InstallRule("p/count", rule); err == nil {
		t.Error("install beyond capacity accepted")
	}
}

func TestControllerHostingAndLoads(t *testing.T) {
	dep, plan := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ctl.HostingSwitch("p/count")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := plan.SwitchOf("p/count")
	if sw != want {
		t.Errorf("HostingSwitch = %d, want %d", sw, want)
	}
	if _, err := ctl.HostingSwitch("nope"); err == nil {
		t.Error("unknown MAT accepted")
	}
	loads := ctl.Loads()
	totalMATs := 0
	for _, l := range loads {
		totalMATs += l.MATs
	}
	if totalMATs != plan.Graph.NumNodes() {
		t.Errorf("Loads cover %d MATs, want %d", totalMATs, plan.Graph.NumNodes())
	}
}

func TestControllerConcurrentUpdates(t *testing.T) {
	dep, _ := compiled(t)
	ctl, err := NewController(dep)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := dep.Plan.Graph.Node("p/count")
	node.MAT.Capacity = 1024
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = ctl.InstallRule("p/count", program.Rule{Action: "c"})
			}
		}()
	}
	wg.Wait()
	n, err := ctl.RuleCount("p/count")
	if err != nil {
		t.Fatal(err)
	}
	if n != 400 {
		t.Errorf("concurrent installs = %d, want 400", n)
	}
}
