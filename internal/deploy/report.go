package deploy

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
)

// Report renders a human-readable operations view of the deployment:
// per-switch stage occupancy, the MATs each stage runs, and the
// coordination headers on every communicating pair. The hermes CLI's
// -report flag prints it.
func (d *Deployment) Report(rm program.ResourceModel) string {
	var b strings.Builder
	plan := d.Plan
	fmt.Fprintf(&b, "deployment: %s\n", plan.Summary())

	ids := make([]network.SwitchID, 0, len(d.Configs))
	for id := range d.Configs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		cfg := d.Configs[id]
		sw, err := plan.Topo.Switch(id)
		if err != nil {
			fmt.Fprintf(&b, "switch %d: <unknown: %v>\n", id, err)
			continue
		}
		used := 0.0
		for _, st := range cfg.Stages {
			for _, e := range st {
				used += e.Amount
			}
		}
		fmt.Fprintf(&b, "\nswitch %d (%s): %d MATs, %.2f/%.2f stage-units\n",
			id, sw.Name, len(cfg.MATNames()), used, sw.Capacity())
		for s, entries := range cfg.Stages {
			if len(entries) == 0 {
				continue
			}
			var parts []string
			total := 0.0
			for _, e := range entries {
				parts = append(parts, fmt.Sprintf("%s(%.2f)", e.MAT, e.Amount))
				total += e.Amount
			}
			fmt.Fprintf(&b, "  stage %2d [%4.0f%%]: %s\n",
				s, total/sw.StageCapacity*100, strings.Join(parts, " "))
		}
		// Maps iterate randomly; reports must be stable.
		dests := make([]network.SwitchID, 0, len(cfg.Exports))
		for to := range cfg.Exports {
			dests = append(dests, to)
		}
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
		for _, to := range dests {
			hdr := cfg.Exports[to]
			var names []string
			for _, f := range hdr.Fields {
				names = append(names, f.Name)
			}
			fmt.Fprintf(&b, "  -> switch %d: %dB header {%s}\n",
				to, hdr.Bytes, strings.Join(names, ", "))
		}
	}

	if len(d.Headers) == 0 {
		b.WriteString("\nno inter-switch coordination required\n")
	}
	return b.String()
}
