package deploy

import (
	"strings"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

func pipelineProgram(t *testing.T) *program.Program {
	t.Helper()
	idx := fields.Metadata("meta.idx", 32)
	cnt := fields.Metadata("meta.cnt", 32)
	src := fields.Header(fields.IPv4Src, 32)
	return program.NewBuilder("p").
		Table("hash", 1).
		ActionDef("h", program.HashOp(idx, src)).
		Default("h").
		Table("count", 1024).
		Key(idx, program.MatchExact).
		ActionDef("c", program.CountOp(cnt, idx)).
		Default("c").
		MustBuild()
}

func compiled(t *testing.T) (*Deployment, *placement.Plan) {
	t.Helper()
	g, err := analyzer.Analyze([]*program.Program{pipelineProgram(t)}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("tb")
	for i := 0; i < 2; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: 1, StageCapacity: 0.5,
			TransitLatency: time.Microsecond,
		})
	}
	if err := tp.AddLink(0, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep, plan
}

func TestCompileProducesConfigsAndHeaders(t *testing.T) {
	dep, plan := compiled(t)
	if err := dep.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(dep.Configs) != plan.QOcc() {
		t.Errorf("configs = %d, want %d", len(dep.Configs), plan.QOcc())
	}
	// The hash->count match dependency crosses switches, so exactly one
	// header carrying meta.idx (4 B).
	if len(dep.Headers) != 1 {
		t.Fatalf("headers = %d, want 1", len(dep.Headers))
	}
	for _, hdr := range dep.Headers {
		if hdr.Bytes != 4 {
			t.Errorf("header bytes = %d, want 4", hdr.Bytes)
		}
		if len(hdr.Fields) != 1 || hdr.Fields[0].Name != "meta.idx" {
			t.Errorf("header fields = %v, want [meta.idx]", hdr.Fields)
		}
	}
	if dep.MaxHeaderBytes() != 4 {
		t.Errorf("MaxHeaderBytes = %d, want 4", dep.MaxHeaderBytes())
	}
	// Exporter and importer wired up.
	uh, _ := plan.SwitchOf("p/hash")
	uc, _ := plan.SwitchOf("p/count")
	if len(dep.Configs[uh].Exports) != 1 || len(dep.Configs[uc].Imports) != 1 {
		t.Error("export/import maps not wired")
	}
}

func TestCompileSingleSwitchHasNoHeaders(t *testing.T) {
	g, err := analyzer.Analyze([]*program.Program{pipelineProgram(t)}, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tp := network.NewTopology("one")
	tp.AddSwitch(network.Switch{
		Programmable: true, Stages: 12, StageCapacity: 1,
		TransitLatency: time.Microsecond,
	})
	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Headers) != 0 {
		t.Errorf("single-switch deployment has %d headers", len(dep.Headers))
	}
	if err := dep.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMATNamesSorted(t *testing.T) {
	dep, _ := compiled(t)
	for _, cfg := range dep.Configs {
		names := cfg.MATNames()
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("MATNames not sorted: %v", names)
			}
		}
		if len(names) == 0 {
			t.Error("config with no MATs")
		}
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	t.Run("header exceeds analysis", func(t *testing.T) {
		dep, _ := compiled(t)
		for key := range dep.Headers {
			hdr := dep.Headers[key]
			hdr.Bytes += 100
			dep.Headers[key] = hdr
		}
		if err := dep.Verify(); err == nil {
			t.Error("inflated header accepted")
		}
	})
	t.Run("missing header", func(t *testing.T) {
		dep, _ := compiled(t)
		for key := range dep.Headers {
			delete(dep.Headers, key)
		}
		if err := dep.Verify(); err == nil {
			t.Error("missing header accepted")
		}
	})
	t.Run("missing stage entry", func(t *testing.T) {
		dep, _ := compiled(t)
		for _, cfg := range dep.Configs {
			cfg.Stages = make([][]StageEntry, len(cfg.Stages))
		}
		if err := dep.Verify(); err == nil {
			t.Error("emptied stage program accepted")
		}
	})
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, analyzer.Options{}); err == nil {
		t.Error("Compile(nil) succeeded")
	}
	if _, err := Compile(&placement.Plan{}, analyzer.Options{}); err == nil {
		t.Error("Compile of empty plan succeeded")
	}
}

func TestReportIsStableAndComplete(t *testing.T) {
	dep, plan := compiled(t)
	r1 := dep.Report(program.DefaultResourceModel)
	r2 := dep.Report(program.DefaultResourceModel)
	if r1 != r2 {
		t.Error("report not deterministic")
	}
	for name := range plan.Assignments {
		if !strings.Contains(r1, name) {
			t.Errorf("report missing MAT %q", name)
		}
	}
	if !strings.Contains(r1, "header") {
		t.Error("report missing header section")
	}
}
