package milp

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means the returned solution is proven optimal.
	StatusOptimal Status = iota + 1
	// StatusFeasible means a feasible (integer) solution was found but
	// optimality was not proven before the deadline.
	StatusFeasible
	// StatusInfeasible means no feasible solution exists.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusDeadline means the deadline expired before any feasible
	// integer solution was found.
	StatusDeadline
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Var identifies a model variable.
type Var int

// Term is coefficient·variable.
type Term struct {
	Var   Var
	Coeff float64
}

// Expr is a linear expression Σ terms.
type Expr []Term

// Plus appends a term.
func (e Expr) Plus(v Var, coeff float64) Expr {
	return append(e, Term{Var: v, Coeff: coeff})
}

// variable is the internal variable record.
type variable struct {
	name    string
	lb, ub  float64
	obj     float64
	integer bool
}

// constraint is the internal constraint record.
type constraint struct {
	name  string
	terms []Term
	rel   Relation
	rhs   float64
}

// Model is a MILP under construction. Objective sense is minimize.
type Model struct {
	vars []variable
	cons []constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddVar adds a continuous variable with bounds [lb, ub] and objective
// coefficient obj. ub may be math.Inf(1).
func (m *Model) AddVar(name string, lb, ub, obj float64) (Var, error) {
	return m.addVar(name, lb, ub, obj, false)
}

// AddIntVar adds an integer variable.
func (m *Model) AddIntVar(name string, lb, ub, obj float64) (Var, error) {
	return m.addVar(name, lb, ub, obj, true)
}

// AddBinaryVar adds a {0,1} variable.
func (m *Model) AddBinaryVar(name string, obj float64) (Var, error) {
	return m.addVar(name, 0, 1, obj, true)
}

func (m *Model) addVar(name string, lb, ub, obj float64, integer bool) (Var, error) {
	if math.IsNaN(lb) || math.IsNaN(ub) || math.IsNaN(obj) {
		return 0, fmt.Errorf("milp: NaN in variable %q", name)
	}
	if lb > ub {
		return 0, fmt.Errorf("milp: variable %q has lb %g > ub %g", name, lb, ub)
	}
	if math.IsInf(lb, -1) {
		return 0, fmt.Errorf("milp: variable %q has unbounded lower bound (unsupported)", name)
	}
	m.vars = append(m.vars, variable{name: name, lb: lb, ub: ub, obj: obj, integer: integer})
	return Var(len(m.vars) - 1), nil
}

// AddConstraint adds Σ terms rel rhs. Terms on the same variable are
// accumulated.
func (m *Model) AddConstraint(name string, terms Expr, rel Relation, rhs float64) error {
	if rel != LE && rel != GE && rel != EQ {
		return fmt.Errorf("milp: constraint %q: bad relation", name)
	}
	if math.IsNaN(rhs) {
		return fmt.Errorf("milp: constraint %q: NaN rhs", name)
	}
	acc := map[Var]float64{}
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			return fmt.Errorf("milp: constraint %q references unknown variable %d", name, t.Var)
		}
		if math.IsNaN(t.Coeff) {
			return fmt.Errorf("milp: constraint %q: NaN coefficient", name)
		}
		acc[t.Var] += t.Coeff
	}
	merged := make([]Term, 0, len(acc))
	for v, c := range acc {
		if c != 0 {
			merged = append(merged, Term{Var: v, Coeff: c})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Var < merged[j].Var })
	m.cons = append(m.cons, constraint{name: name, terms: merged, rel: rel, rhs: rhs})
	return nil
}

// Solution is a solved model.
type Solution struct {
	Status Status
	// Objective is the objective value of the returned point (only
	// meaningful for StatusOptimal/StatusFeasible).
	Objective float64
	// Values holds a value per variable.
	Values []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Value returns the solution value of v.
func (s *Solution) Value(v Var) float64 {
	if int(v) < 0 || int(v) >= len(s.Values) {
		return math.NaN()
	}
	return s.Values[v]
}

// Int returns the solution value of v rounded to the nearest integer.
func (s *Solution) Int(v Var) int {
	return int(math.Round(s.Value(v)))
}

// Options configure a solve.
type Options struct {
	// Deadline stops the search; zero means no deadline.
	Deadline time.Time
	// MaxNodes bounds branch-and-bound nodes; zero means the default
	// (1e6).
	MaxNodes int
	// Cancel, when non-nil, stops the search as soon as the channel is
	// closed (polled at the same cadence as Deadline); the solver
	// returns its incumbent exactly as it does at the deadline.
	Cancel <-chan struct{}
}

// buildLP lowers the model to standard form for the simplex: every
// variable is shifted by its lower bound (x = lb + x', x' ≥ 0) and
// finite upper bounds become rows. extraUB overrides per-variable upper
// bounds and extraLB lower bounds (used by branch & bound).
func (m *Model) buildLP(extraLB, extraUB []float64) *lp {
	n := len(m.vars)
	lb := make([]float64, n)
	ub := make([]float64, n)
	for i, v := range m.vars {
		lb[i], ub[i] = v.lb, v.ub
		if extraLB != nil && extraLB[i] > lb[i] {
			lb[i] = extraLB[i]
		}
		if extraUB != nil && extraUB[i] < ub[i] {
			ub[i] = extraUB[i]
		}
	}
	p := &lp{c: make([]float64, n)}
	for i, v := range m.vars {
		p.c[i] = v.obj
	}
	// Constraints with shifted variables: Σ a (lb + x') rel b →
	// Σ a x' rel b - Σ a lb.
	for _, c := range m.cons {
		row := make([]float64, n)
		shift := 0.0
		for _, t := range c.terms {
			row[t.Var] += t.Coeff
			shift += t.Coeff * lb[t.Var]
		}
		p.rows = append(p.rows, row)
		p.rel = append(p.rel, c.rel)
		p.rhs = append(p.rhs, c.rhs-shift)
	}
	// Upper bounds as rows: x' ≤ ub - lb.
	for i := 0; i < n; i++ {
		if math.IsInf(ub[i], 1) {
			continue
		}
		span := ub[i] - lb[i]
		if span < 0 {
			// Contradictory bounds: encode an infeasible row.
			span = -1
		}
		row := make([]float64, n)
		row[i] = 1
		p.rows = append(p.rows, row)
		p.rel = append(p.rel, LE)
		p.rhs = append(p.rhs, span)
	}
	return p
}

// solveRelaxation solves the LP relaxation under bound overrides and
// un-shifts the solution.
func (m *Model) solveRelaxation(extraLB, extraUB []float64) lpResult {
	p := m.buildLP(extraLB, extraUB)
	res := solveLP(p)
	if res.status != StatusOptimal {
		return res
	}
	// Un-shift.
	n := len(m.vars)
	x := make([]float64, n)
	obj := 0.0
	for i, v := range m.vars {
		lo := v.lb
		if extraLB != nil && extraLB[i] > lo {
			lo = extraLB[i]
		}
		x[i] = lo + res.x[i]
		obj += v.obj * x[i]
	}
	return lpResult{status: StatusOptimal, x: x, obj: obj}
}
