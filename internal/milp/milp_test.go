package milp

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustVar(v Var, err error) Var {
	if err != nil {
		panic(err)
	}
	return v
}

func TestSimpleLP(t *testing.T) {
	// max x + y s.t. x + 2y <= 14, 3x - y >= 0, x - y <= 2
	// == min -(x+y). Optimum at (6, 4): obj 10.
	m := NewModel()
	x := mustVar(m.AddVar("x", 0, math.Inf(1), -1))
	y := mustVar(m.AddVar("y", 0, math.Inf(1), -1))
	if err := m.AddConstraint("c1", Expr{}.Plus(x, 1).Plus(y, 2), LE, 14); err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint("c2", Expr{}.Plus(x, 3).Plus(y, -1), GE, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint("c3", Expr{}.Plus(x, 1).Plus(y, -1), LE, 2); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-10)) > 1e-6 {
		t.Errorf("objective = %g, want -10", sol.Objective)
	}
	if math.Abs(sol.Value(x)-6) > 1e-6 || math.Abs(sol.Value(y)-4) > 1e-6 {
		t.Errorf("solution = (%g, %g), want (6, 4)", sol.Value(x), sol.Value(y))
	}
}

func TestLPWithEqualityAndBounds(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x <= 4 (via ub), y <= 8.
	// Optimum: x=4 (cheapest), y=6 -> 8 + 18 = 26... check: we minimize,
	// prefer x (coeff 2): x=4, y=6, obj=26.
	m := NewModel()
	x := mustVar(m.AddVar("x", 0, 4, 2))
	y := mustVar(m.AddVar("y", 0, 8, 3))
	if err := m.AddConstraint("sum", Expr{}.Plus(x, 1).Plus(y, 1), EQ, 10); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-26) > 1e-6 {
		t.Errorf("objective = %g, want 26", sol.Objective)
	}
}

func TestLPNonzeroLowerBounds(t *testing.T) {
	// min x + y with x >= 3, y >= 2, x + y >= 7 -> x=5,y=2 or x=3,y=4; obj 7.
	m := NewModel()
	x := mustVar(m.AddVar("x", 3, math.Inf(1), 1))
	y := mustVar(m.AddVar("y", 2, math.Inf(1), 1))
	if err := m.AddConstraint("c", Expr{}.Plus(x, 1).Plus(y, 1), GE, 7); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-7) > 1e-6 {
		t.Errorf("objective = %g, want 7", sol.Objective)
	}
	if sol.Value(x) < 3-1e-9 || sol.Value(y) < 2-1e-9 {
		t.Errorf("bounds violated: x=%g y=%g", sol.Value(x), sol.Value(y))
	}
}

func TestInfeasibleLP(t *testing.T) {
	m := NewModel()
	x := mustVar(m.AddVar("x", 0, 1, 1))
	if err := m.AddConstraint("c", Expr{}.Plus(x, 1), GE, 5); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnboundedLP(t *testing.T) {
	m := NewModel()
	x := mustVar(m.AddVar("x", 0, math.Inf(1), -1))
	_ = x
	sol := m.Solve(Options{})
	if sol.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestIntegerKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600,
	// 2a+2b+6c <= 300, integer. LP opt is fractional; known MILP
	// optimum: a=33, b=67, c=0 -> 732.
	m := NewModel()
	a := mustVar(m.AddIntVar("a", 0, math.Inf(1), -10))
	b := mustVar(m.AddIntVar("b", 0, math.Inf(1), -6))
	c := mustVar(m.AddIntVar("c", 0, math.Inf(1), -4))
	cons := []struct {
		e   Expr
		rhs float64
	}{
		{Expr{}.Plus(a, 1).Plus(b, 1).Plus(c, 1), 100},
		{Expr{}.Plus(a, 10).Plus(b, 4).Plus(c, 5), 600},
		{Expr{}.Plus(a, 2).Plus(b, 2).Plus(c, 6), 300},
	}
	for i, cc := range cons {
		if err := m.AddConstraint("k", cc.e, LE, cc.rhs); err != nil {
			t.Fatal(i, err)
		}
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-732)) > 1e-6 {
		t.Errorf("objective = %g, want -732 (a=%d b=%d c=%d)",
			sol.Objective, sol.Int(a), sol.Int(b), sol.Int(c))
	}
}

func TestBinaryAssignment(t *testing.T) {
	// Assign 3 jobs to 3 machines, costs c[i][j]; each job exactly one
	// machine, each machine at most one job. Classic assignment problem.
	costs := [3][3]float64{{4, 2, 8}, {4, 3, 7}, {3, 1, 6}}
	m := NewModel()
	var vars [3][3]Var
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			vars[i][j] = mustVar(m.AddBinaryVar("x", costs[i][j]))
		}
	}
	for i := 0; i < 3; i++ {
		row := Expr{}
		col := Expr{}
		for j := 0; j < 3; j++ {
			row = row.Plus(vars[i][j], 1)
			col = col.Plus(vars[j][i], 1)
		}
		if err := m.AddConstraint("row", row, EQ, 1); err != nil {
			t.Fatal(err)
		}
		if err := m.AddConstraint("col", col, LE, 1); err != nil {
			t.Fatal(err)
		}
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimal: job0->m1(2)? then job2 wants m1 too (1). Best total:
	// j0->m0(4), j1->m2(7), j2->m1(1) = 12; or j0->m1(2), j1->m0(4),
	// j2->m2(6)? m2 cost 6 -> 12. Optimum is 12.
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Errorf("objective = %g, want 12", sol.Objective)
	}
}

func TestBinPackingSmall(t *testing.T) {
	// Items 6,5,4,3 into bins of 9: needs 2 bins (6+3, 5+4). Minimize
	// bins used. y_b = bin used, x_ib = item in bin.
	items := []float64{6, 5, 4, 3}
	const bins = 4
	m := NewModel()
	var y [bins]Var
	for b := 0; b < bins; b++ {
		y[b] = mustVar(m.AddBinaryVar("y", 1))
	}
	x := make([][bins]Var, len(items))
	for i := range items {
		assign := Expr{}
		for b := 0; b < bins; b++ {
			x[i][b] = mustVar(m.AddBinaryVar("x", 0))
			assign = assign.Plus(x[i][b], 1)
		}
		if err := m.AddConstraint("assign", assign, EQ, 1); err != nil {
			t.Fatal(err)
		}
	}
	for b := 0; b < bins; b++ {
		capc := Expr{}
		for i := range items {
			capc = capc.Plus(x[i][b], items[i])
		}
		capc = capc.Plus(y[b], -9)
		if err := m.AddConstraint("cap", capc, LE, 0); err != nil {
			t.Fatal(err)
		}
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("bins used = %g, want 2", sol.Objective)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 3 with x integer in [0, 5]: LP feasible (x=1.5), MILP not.
	m := NewModel()
	x := mustVar(m.AddIntVar("x", 0, 5, 1))
	if err := m.AddConstraint("c", Expr{}.Plus(x, 2), EQ, 3); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{})
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestDeadline(t *testing.T) {
	// A model that branches a lot: equality-partition style. With an
	// already-expired deadline we must get StatusDeadline or a quick
	// feasible, never a hang.
	m := NewModel()
	e := Expr{}
	for i := 0; i < 30; i++ {
		v := mustVar(m.AddBinaryVar("x", float64(i%7)-3))
		e = e.Plus(v, float64(2*i+1))
	}
	if err := m.AddConstraint("c", e, EQ, 155); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sol := m.Solve(Options{Deadline: time.Now().Add(50 * time.Millisecond)})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
	switch sol.Status {
	case StatusOptimal, StatusFeasible, StatusDeadline, StatusInfeasible:
	default:
		t.Errorf("unexpected status %v", sol.Status)
	}
}

func TestMaxNodes(t *testing.T) {
	m := NewModel()
	e := Expr{}
	for i := 0; i < 20; i++ {
		v := mustVar(m.AddBinaryVar("x", -1))
		e = e.Plus(v, float64(i)+0.5)
	}
	if err := m.AddConstraint("c", e, LE, 50); err != nil {
		t.Fatal(err)
	}
	sol := m.Solve(Options{MaxNodes: 3})
	if sol.Nodes > 3 {
		t.Errorf("explored %d nodes, cap was 3", sol.Nodes)
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.AddVar("bad", 2, 1, 0); err == nil {
		t.Error("lb > ub accepted")
	}
	if _, err := m.AddVar("bad", math.Inf(-1), 1, 0); err == nil {
		t.Error("-inf lower bound accepted")
	}
	if _, err := m.AddVar("bad", math.NaN(), 1, 0); err == nil {
		t.Error("NaN bound accepted")
	}
	x := mustVar(m.AddVar("x", 0, 1, 0))
	if err := m.AddConstraint("c", Expr{{Var: 99, Coeff: 1}}, LE, 1); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := m.AddConstraint("c", Expr{}.Plus(x, 1), Relation(0), 1); err == nil {
		t.Error("bad relation accepted")
	}
	if err := m.AddConstraint("c", Expr{}.Plus(x, math.NaN()), LE, 1); err == nil {
		t.Error("NaN coefficient accepted")
	}
	if err := m.AddConstraint("c", Expr{}.Plus(x, 1), LE, math.NaN()); err == nil {
		t.Error("NaN rhs accepted")
	}
}

func TestSolutionAccessors(t *testing.T) {
	s := &Solution{Values: []float64{1.4, 2.6}}
	if s.Int(0) != 1 || s.Int(1) != 3 {
		t.Errorf("Int rounding wrong: %d %d", s.Int(0), s.Int(1))
	}
	if !math.IsNaN(s.Value(5)) {
		t.Error("out-of-range Value should be NaN")
	}
	if StatusOptimal.String() != "optimal" || StatusDeadline.String() != "deadline" {
		t.Error("status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("relation strings wrong")
	}
}

// Property: for random small knapsacks, branch & bound matches brute
// force enumeration.
func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	prop := func(seedValues [6]uint8, seedWeights [6]uint8, capSeed uint8) bool {
		n := 6
		values := make([]float64, n)
		weights := make([]float64, n)
		wsum := 0.0
		for i := 0; i < n; i++ {
			values[i] = float64(seedValues[i]%20) + 1
			weights[i] = float64(seedWeights[i]%15) + 1
			wsum += weights[i]
		}
		capacity := math.Mod(float64(capSeed), wsum) + 1

		m := NewModel()
		e := Expr{}
		vars := make([]Var, n)
		for i := 0; i < n; i++ {
			v, err := m.AddBinaryVar("x", -values[i])
			if err != nil {
				return false
			}
			vars[i] = v
			e = e.Plus(v, weights[i])
		}
		if err := m.AddConstraint("cap", e, LE, capacity); err != nil {
			return false
		}
		sol := m.Solve(Options{})
		if sol.Status != StatusOptimal {
			return false
		}

		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		if math.Abs(-sol.Objective-best) > 1e-6 {
			return false
		}
		// Verify the reported assignment is consistent and feasible.
		w, v := 0.0, 0.0
		for i := 0; i < n; i++ {
			xi := sol.Value(vars[i])
			if xi < -1e-9 || xi > 1+1e-9 {
				return false
			}
			if sol.Int(vars[i]) == 1 {
				w += weights[i]
				v += values[i]
			}
		}
		return w <= capacity+1e-6 && math.Abs(v-best) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
