// Package milp is a small mixed-integer linear programming solver built
// on a dense two-phase simplex and branch & bound. It plays the role
// Gurobi plays in the paper: the exact ("Optimal") reference and the
// engine behind the ILP-based comparison frameworks. It is deliberately
// simple — evaluation instances that defeat it are reported as
// deadline-capped, mirroring the paper's two-hour Gurobi cap in Fig. 7.
package milp

import (
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

const (
	// LE is Σ a_j x_j ≤ b.
	LE Relation = iota + 1
	// GE is Σ a_j x_j ≥ b.
	GE
	// EQ is Σ a_j x_j = b.
	EQ
)

// String returns the operator.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

const (
	eps       = 1e-9
	maxPivots = 200000
	// maxTableauCells bounds the dense tableau (rows × columns). A
	// model beyond it would exhaust memory; solveLP reports it as
	// infeasible-by-resource via StatusDeadline so branch & bound
	// surfaces a capped run instead of dying.
	maxTableauCells = 64 << 20
)

// lp is a linear program in the internal standard form: minimize c·x
// subject to rows with non-negative x.
type lp struct {
	// c is the objective (length = number of structural variables).
	c []float64
	// rows holds the constraint coefficients; rel and rhs the sense and
	// right-hand side per row.
	rows [][]float64
	rel  []Relation
	rhs  []float64
}

// lpResult is the outcome of a simplex run.
type lpResult struct {
	status Status
	x      []float64
	obj    float64
}

// solveLP runs two-phase simplex on the lp. All variables are x ≥ 0.
func solveLP(p *lp) lpResult {
	n := len(p.c)
	m := len(p.rows)

	// Normalize rhs ≥ 0.
	rows := make([][]float64, m)
	rel := make([]Relation, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = append([]float64(nil), p.rows[i]...)
		rel[i] = p.rel[i]
		rhs[i] = p.rhs[i]
		if rhs[i] < 0 {
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			rhs[i] = -rhs[i]
			switch rel[i] {
			case LE:
				rel[i] = GE
			case GE:
				rel[i] = LE
			}
		}
	}

	// Count slack/surplus/artificial columns.
	numSlack := 0
	numArt := 0
	for i := 0; i < m; i++ {
		switch rel[i] {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	total := n + numSlack + numArt
	if int64(m)*int64(total+1) > maxTableauCells {
		return lpResult{status: StatusDeadline}
	}
	// Tableau: m rows of total+1 (last col = rhs).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + numSlack
	artCols := make([]int, 0, numArt)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total+1)
		copy(tab[i], rows[i])
		tab[i][total] = rhs[i]
		switch rel[i] {
		case LE:
			tab[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tab[i][slackAt] = -1
			slackAt++
			tab[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			tab[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}

	// Phase 1: minimize sum of artificials.
	if numArt > 0 {
		obj := make([]float64, total+1)
		for _, c := range artCols {
			obj[c] = 1
		}
		// Price out basic artificials.
		for i := 0; i < m; i++ {
			if isArt(basis[i], n+numSlack) {
				for j := 0; j <= total; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		if !pivotLoop(tab, obj, basis, total) {
			return lpResult{status: StatusUnbounded}
		}
		if -obj[total] > 1e-7 {
			return lpResult{status: StatusInfeasible}
		}
		// Drive remaining artificial variables out of the basis.
		for i := 0; i < m; i++ {
			if !isArt(basis[i], n+numSlack) {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, obj, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial at zero.
				continue
			}
		}
	}

	// Phase 2: minimize the real objective. Zero the artificial columns
	// so they can never re-enter.
	obj := make([]float64, total+1)
	copy(obj, p.c)
	for _, c := range artCols {
		for i := 0; i < m; i++ {
			tab[i][c] = 0
		}
		obj[c] = 0
	}
	// Price out basic variables.
	for i := 0; i < m; i++ {
		b := basis[i]
		if b < len(obj) && math.Abs(obj[b]) > eps {
			coef := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= coef * tab[i][j]
			}
		}
	}
	if !pivotLoop(tab, obj, basis, total) {
		return lpResult{status: StatusUnbounded}
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = tab[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.c[j] * x[j]
	}
	return lpResult{status: StatusOptimal, x: x, obj: objVal}
}

func isArt(col, artStart int) bool { return col >= artStart }

// pivotLoop runs primal simplex iterations until optimal. Returns false
// on unboundedness. Uses Dantzig pricing with a Bland fallback to break
// potential cycles.
func pivotLoop(tab [][]float64, obj []float64, basis []int, total int) bool {
	m := len(tab)
	for iter := 0; iter < maxPivots; iter++ {
		bland := iter > maxPivots/2
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if obj[j] < -eps {
				if bland {
					enter = j
					break
				}
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return true // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return false // unbounded
		}
		pivot(tab, obj, basis, leave, enter, total)
	}
	return true // give up politely; treated as converged
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, obj []float64, basis []int, row, col, total int) {
	p := tab[row][col]
	for j := 0; j <= total; j++ {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if math.Abs(f) <= eps {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	f := obj[col]
	if math.Abs(f) > eps {
		for j := 0; j <= total; j++ {
			obj[j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
