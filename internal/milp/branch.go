package milp

import (
	"math"
	"time"
)

const intTol = 1e-6

// canceled reports whether the optional cancel channel is closed; nil
// never cancels.
func canceled(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// bnode is one branch-and-bound node. Bounds are delta-encoded against
// the parent (one tightened bound per node), so the open-node stack
// stays tiny even for deadline-capped searches that enumerate millions
// of nodes — a full per-node copy of the bound arrays makes large
// models exhaust memory before they exhaust the deadline.
type bnode struct {
	parent *bnode
	varIdx int
	bound  float64
	isUB   bool
}

// applyBounds materializes the node's effective bounds into lb/ub,
// which must already hold the root bounds. It walks the ancestry; the
// deepest (tightest) setting of each side wins.
func (n *bnode) applyBounds(lb, ub []float64, seenLB, seenUB []bool) {
	for at := n; at != nil; at = at.parent {
		if at.parent == nil {
			break // root carries no delta
		}
		if at.isUB {
			if !seenUB[at.varIdx] {
				seenUB[at.varIdx] = true
				if at.bound < ub[at.varIdx] {
					ub[at.varIdx] = at.bound
				}
			}
		} else {
			if !seenLB[at.varIdx] {
				seenLB[at.varIdx] = true
				if at.bound > lb[at.varIdx] {
					lb[at.varIdx] = at.bound
				}
			}
		}
	}
}

// Solve runs branch & bound on the model and returns the best integer
// solution found. Continuous models solve in a single LP.
func (m *Model) Solve(opts Options) *Solution {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	n := len(m.vars)

	rootLB := make([]float64, n)
	rootUB := make([]float64, n)
	for i, v := range m.vars {
		rootLB[i] = v.lb
		rootUB[i] = v.ub
	}

	best := &Solution{Status: StatusDeadline, Objective: math.Inf(1)}
	haveIncumbent := false

	// Scratch buffers reused across nodes.
	lb := make([]float64, n)
	ub := make([]float64, n)
	seenLB := make([]bool, n)
	seenUB := make([]bool, n)

	root := &bnode{}
	stack := []*bnode{root}
	nodes := 0
	deadlineHit := false

	for len(stack) > 0 {
		if nodes >= maxNodes {
			deadlineHit = true
			break
		}
		if nodes%64 == 0 {
			if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
				deadlineHit = true
				break
			}
			if canceled(opts.Cancel) {
				deadlineHit = true
				break
			}
		}
		// Depth-first: take the most recent node (finds incumbents fast,
		// keeps memory small).
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		copy(lb, rootLB)
		copy(ub, rootUB)
		for i := range seenLB {
			seenLB[i] = false
			seenUB[i] = false
		}
		nd.applyBounds(lb, ub, seenLB, seenUB)

		res := m.solveRelaxation(lb, ub)
		switch res.status {
		case StatusInfeasible:
			continue
		case StatusDeadline:
			// The relaxation itself is beyond the dense solver's means.
			deadlineHit = true
			stack = nil
			continue
		case StatusUnbounded:
			if !haveIncumbent {
				best.Status = StatusUnbounded
				best.Nodes = nodes
				return best
			}
			continue
		}
		// Prune by bound.
		if haveIncumbent && res.obj >= best.Objective-1e-9 {
			continue
		}
		// Find the most fractional integer variable.
		branchVar := -1
		bestFrac := intTol
		for i, v := range m.vars {
			if !v.integer {
				continue
			}
			f := res.x[i] - math.Floor(res.x[i])
			dist := math.Min(f, 1-f)
			if dist > bestFrac {
				bestFrac = dist
				branchVar = i
			}
		}
		if branchVar < 0 {
			// Integer feasible: round off tolerance noise.
			x := append([]float64(nil), res.x...)
			for i, v := range m.vars {
				if v.integer {
					x[i] = math.Round(x[i])
				}
			}
			obj := 0.0
			for i, v := range m.vars {
				obj += v.obj * x[i]
			}
			if !haveIncumbent || obj < best.Objective {
				best.Objective = obj
				best.Values = x
				haveIncumbent = true
			}
			continue
		}
		// Branch: x ≤ floor and x ≥ ceil.
		fl := math.Floor(res.x[branchVar])
		down := &bnode{parent: nd, varIdx: branchVar, bound: fl, isUB: true}
		up := &bnode{parent: nd, varIdx: branchVar, bound: fl + 1, isUB: false}
		// Explore the side closer to the fractional value first by
		// pushing it last.
		if res.x[branchVar]-fl > 0.5 {
			stack = append(stack, down, up)
		} else {
			stack = append(stack, up, down)
		}
	}

	best.Nodes = nodes
	switch {
	case haveIncumbent && !deadlineHit:
		best.Status = StatusOptimal
	case haveIncumbent:
		best.Status = StatusFeasible
	case deadlineHit:
		best.Status = StatusDeadline
	default:
		best.Status = StatusInfeasible
	}
	return best
}
