// Package workload provides the data plane programs used by the
// evaluation: ten realistic programs modeled on switch.p4 feature
// slices (the paper deploys ten versions of switch.p4 [58]), a
// synthetic program generator with the paper's published parameters
// (10–20 MATs per program, 30% pairwise dependency probability, 10–50%
// per-stage resource consumption), and the SDM sketch set of Exp#6.
package workload

import (
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
)

// Ten real-world programs. Each models one feature slice of switch.p4:
// realistic match kinds, rule capacities, and metadata flows.

// L2Forwarding: source MAC learning notification plus destination MAC
// forwarding.
func L2Forwarding() *program.Program {
	smacHit := fields.Metadata("meta.smac_hit", 8)
	egress := fields.CatalogField(fields.MetaEgressPort)
	return program.NewBuilder("l2fwd").
		Table("smac", 4096).
		Key(fields.CatalogField(fields.EthSrc), program.MatchExact).
		ActionDef("hit", program.SetOp(smacHit, 1)).
		ActionDef("learn", program.SetOp(smacHit, 0)).
		Default("learn").
		Table("dmac", 4096).
		Key(fields.CatalogField(fields.EthDst), program.MatchExact).
		ActionDef("forward", program.SetOp(egress, 0)).
		ActionDef("flood", program.SetOp(egress, 0xFFFF)).
		Default("flood").
		Gate("smac", "dmac").
		MustBuild()
}

// L3Routing: LPM route lookup, next-hop resolution, TTL decrement.
func L3Routing() *program.Program {
	nh := fields.CatalogField(fields.MetaNextHop)
	egress := fields.CatalogField(fields.MetaEgressPort)
	ttl := fields.CatalogField(fields.IPv4TTL)
	return program.NewBuilder("l3route").
		Table("ipv4_lpm", 16384).
		Key(fields.CatalogField(fields.IPv4Dst), program.MatchLPM).
		ActionDef("set_nhop", program.SetOp(nh, 0), program.DecOp(ttl, 1)).
		Default("set_nhop").
		Table("nexthop", 1024).
		Key(nh, program.MatchExact).
		ActionDef("fwd", program.SetOp(egress, 0), program.CopyOp(fields.CatalogField(fields.EthDst), nh)).
		Default("fwd").
		MustBuild()
}

// ACL: ternary 5-tuple access control.
func ACL() *program.Program {
	drop := fields.CatalogField(fields.MetaDropFlag)
	cls := fields.CatalogField(fields.MetaClass)
	return program.NewBuilder("acl").
		Table("acl_rules", 8192).
		Key(fields.CatalogField(fields.IPv4Src), program.MatchTernary).
		Key(fields.CatalogField(fields.IPv4Dst), program.MatchTernary).
		Key(fields.CatalogField(fields.TCPDst), program.MatchRange).
		ActionDef("deny", program.SetOp(drop, 1)).
		ActionDef("permit", program.SetOp(drop, 0), program.SetOp(cls, 1)).
		Default("permit").
		Table("drop_ctl", 2).
		Key(drop, program.MatchExact).
		ActionDef("discard", program.SetOp(fields.CatalogField(fields.MetaEgressPort), 0xFFFF)).
		MustBuild()
}

// NAT: source NAT with port rewrite.
func NAT() *program.Program {
	natAddr := fields.CatalogField(fields.MetaNATAddr)
	natPort := fields.CatalogField(fields.MetaNATPort)
	return program.NewBuilder("nat").
		Table("nat_lookup", 8192).
		Key(fields.CatalogField(fields.IPv4Src), program.MatchExact).
		Key(fields.CatalogField(fields.TCPSrc), program.MatchExact).
		ActionDef("translate", program.SetOp(natAddr, 0), program.SetOp(natPort, 0)).
		Default("translate").
		Table("rewrite", 1024).
		Key(natAddr, program.MatchExact).
		ActionDef("apply",
			program.CopyOp(fields.CatalogField(fields.IPv4Src), natAddr),
			program.CopyOp(fields.CatalogField(fields.TCPSrc), natPort)).
		Default("apply").
		MustBuild()
}

// Tunnel: VXLAN-style encapsulation.
func Tunnel() *program.Program {
	tid := fields.CatalogField(fields.MetaTunnelID)
	vni := fields.CatalogField(fields.MetaVNI)
	return program.NewBuilder("tunnel").
		Table("tunnel_map", 4096).
		Key(fields.CatalogField(fields.VlanID), program.MatchExact).
		ActionDef("set_tunnel", program.SetOp(tid, 0)).
		Default("set_tunnel").
		Table("vni_assign", 4096).
		Key(tid, program.MatchExact).
		ActionDef("encap", program.SetOp(vni, 0)).
		Default("encap").
		Table("underlay", 1024).
		Key(vni, program.MatchExact).
		ActionDef("route", program.SetOp(fields.CatalogField(fields.MetaEgressPort), 0)).
		Default("route").
		MustBuild()
}

// QoS: DSCP classification, metering, and remarking.
func QoS() *program.Program {
	cls := fields.CatalogField(fields.MetaClass)
	color := fields.CatalogField(fields.MetaMeterColor)
	return program.NewBuilder("qos").
		Table("classify", 2048).
		Key(fields.CatalogField(fields.IPv4DSCP), program.MatchExact).
		Key(fields.CatalogField(fields.TCPDst), program.MatchRange).
		ActionDef("set_class", program.SetOp(cls, 0)).
		Default("set_class").
		Table("meter", 256).
		Key(cls, program.MatchExact).
		ActionDef("color", program.SetOp(color, 0)).
		Default("color").
		Table("remark", 16).
		Key(color, program.MatchExact).
		ActionDef("mark", program.SetOp(fields.CatalogField(fields.IPv4DSCP), 0)).
		Default("mark").
		MustBuild()
}

// INT: in-band network telemetry source — records switch ID, ingress
// timestamp, and queue depth for export (Table I metadata).
func INT() *program.Program {
	swid := fields.CatalogField(fields.MetaSwitchID)
	ts := fields.CatalogField(fields.MetaTimestamp)
	qlen := fields.CatalogField(fields.MetaQueueLen)
	depth := fields.CatalogField(fields.MetaINTDepth)
	return program.NewBuilder("int").
		Table("int_source", 64).
		Key(fields.CatalogField(fields.UDPDst), program.MatchExact).
		ActionDef("stamp",
			program.SetOp(swid, 1),
			program.SetOp(ts, 0),
			program.SetOp(qlen, 0)).
		Default("stamp").
		Table("int_transit", 64).
		Key(swid, program.MatchExact).
		ActionDef("push", program.AddOp(depth, swid, 1)).
		Default("push").
		Table("int_sink", 64).
		Key(depth, program.MatchRange).
		ActionDef("export", program.CopyOp(fields.CatalogField(fields.MetaFlowID), ts)).
		Default("export").
		MustBuild()
}

// CountMinSketch: three hash rows with per-row counters and a minimum
// aggregation, the classic SDM workload [30].
func CountMinSketch() *program.Program {
	h0 := fields.CatalogField(fields.MetaHash0)
	h1 := fields.CatalogField(fields.MetaHash1)
	h2 := fields.CatalogField(fields.MetaHash2)
	cnt := fields.CatalogField(fields.MetaCount)
	src := fields.CatalogField(fields.IPv4Src)
	dst := fields.CatalogField(fields.IPv4Dst)
	return program.NewBuilder("cmsketch").
		Table("hashes", 1).
		ActionDef("mix",
			program.HashOp(h0, src, dst),
			program.HashOp(h1, dst, src),
			program.HashOp(h2, src, src)).
		Default("mix").
		Table("row0", 65536).
		Key(h0, program.MatchExact).
		ActionDef("bump", program.CountOp(cnt, h0)).
		Default("bump").
		Table("row1", 65536).
		Key(h1, program.MatchExact).
		ActionDef("bump", program.CountOp(cnt, h1)).
		Default("bump").
		Table("row2", 65536).
		Key(h2, program.MatchExact).
		ActionDef("bump", program.CountOp(cnt, h2)).
		Default("bump").
		MustBuild()
}

// HeavyHitter: hash, count, and threshold-flag elephants [3].
func HeavyHitter() *program.Program {
	idx := fields.CatalogField(fields.MetaCounterIndex)
	cnt := fields.CatalogField(fields.MetaCount)
	heavy := fields.CatalogField(fields.MetaHeavyFlag)
	return program.NewBuilder("heavyhitter").
		Table("flow_hash", 1).
		ActionDef("mix", program.HashOp(idx,
			fields.CatalogField(fields.IPv4Src),
			fields.CatalogField(fields.IPv4Dst),
			fields.CatalogField(fields.TCPSrc),
			fields.CatalogField(fields.TCPDst))).
		Default("mix").
		Table("flow_count", 32768).
		Key(idx, program.MatchExact).
		ActionDef("bump", program.CountOp(cnt, idx)).
		Default("bump").
		Table("threshold", 8).
		Key(cnt, program.MatchRange).
		ActionDef("flag", program.SetOp(heavy, 1)).
		ActionDef("pass", program.SetOp(heavy, 0)).
		Default("pass").
		MustBuild()
}

// LoadBalancer: consistent-hash bucket selection with VIP rewrite [47].
func LoadBalancer() *program.Program {
	flow := fields.CatalogField(fields.MetaFlowID)
	bucket := fields.CatalogField(fields.MetaLBBucket)
	return program.NewBuilder("lb").
		Table("vip", 1024).
		Key(fields.CatalogField(fields.IPv4Dst), program.MatchExact).
		Key(fields.CatalogField(fields.TCPDst), program.MatchExact).
		ActionDef("pick", program.HashOp(flow,
			fields.CatalogField(fields.IPv4Src),
			fields.CatalogField(fields.TCPSrc))).
		Default("pick").
		Table("bucket", 8192).
		Key(flow, program.MatchExact).
		ActionDef("select", program.SetOp(bucket, 0)).
		Default("select").
		Table("dip_rewrite", 8192).
		Key(bucket, program.MatchExact).
		ActionDef("rewrite", program.CopyOp(fields.CatalogField(fields.IPv4Dst), bucket)).
		Default("rewrite").
		MustBuild()
}

// PathTracker: per-packet path conformance built on switch IDs
// (Table I row 1).
func PathTracker() *program.Program {
	swid := fields.CatalogField(fields.MetaSwitchID)
	fid := fields.CatalogField(fields.MetaFlowID)
	drop := fields.CatalogField(fields.MetaDropFlag)
	return program.NewBuilder("pathtrack").
		Table("stamp", 16).
		Key(fields.CatalogField(fields.IPv4Proto), program.MatchExact).
		ActionDef("record", program.SetOp(swid, 1), program.HashOp(fid, swid)).
		Default("record").
		Table("conform", 4096).
		Key(fid, program.MatchExact).
		ActionDef("ok", program.SetOp(drop, 0)).
		ActionDef("violation", program.SetOp(drop, 1)).
		Default("ok").
		MustBuild()
}

// RealPrograms returns the ten real programs, in a stable order.
func RealPrograms() []*program.Program {
	return []*program.Program{
		L2Forwarding(),
		L3Routing(),
		ACL(),
		NAT(),
		Tunnel(),
		QoS(),
		INT(),
		CountMinSketch(),
		HeavyHitter(),
		LoadBalancer(),
	}
}

// RealProgramsPlusTracking is RealPrograms with the extra path tracker,
// used by examples.
func RealProgramsPlusTracking() []*program.Program {
	return append(RealPrograms(), PathTracker())
}
