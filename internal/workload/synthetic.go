package workload

import (
	"fmt"
	"math/rand"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
)

// SyntheticSpec carries the paper's synthetic-program parameters
// (§VI-A "Data plane programs"): per-MAT normalized per-stage resource
// consumption uniform in [MinResource, MaxResource], MAT count uniform
// in [MinMATs, MaxMATs], and a pairwise dependency probability.
type SyntheticSpec struct {
	MinMATs, MaxMATs         int
	DependencyProbability    float64
	MinResource, MaxResource float64
	// MetadataSizes are the candidate byte widths of each MAT's output
	// metadata field; sizes follow Table I's range.
	MetadataSizes []int
	// SharedPreamble prepends the common flow-key hash stage to every
	// program. The paper motivates merging with exactly this redundancy
	// ("various measurement algorithms need to invoke the same
	// functionality of calculating indexes via hash functions", §IV);
	// with it the merged TDG has genuine cross-program coupling instead
	// of 50 disconnected islands.
	SharedPreamble bool
	// SharedHashProbability is the chance each MAT consumes one of the
	// shared hash outputs.
	SharedHashProbability float64
}

// PaperSyntheticSpec returns the published settings: 10-20 MATs, 30%
// dependency probability, 10-50% per-stage resources.
func PaperSyntheticSpec() SyntheticSpec {
	return SyntheticSpec{
		MinMATs:               10,
		MaxMATs:               20,
		DependencyProbability: 0.3,
		MinResource:           0.1,
		MaxResource:           0.5,
		MetadataSizes:         []int{1, 2, 4, 6, 8, 12},
		SharedPreamble:        true,
		SharedHashProbability: 0.35,
	}
}

// Validate checks the spec.
func (s SyntheticSpec) Validate() error {
	if s.MinMATs <= 0 || s.MaxMATs < s.MinMATs {
		return fmt.Errorf("workload: bad MAT count range [%d,%d]", s.MinMATs, s.MaxMATs)
	}
	if s.DependencyProbability < 0 || s.DependencyProbability > 1 {
		return fmt.Errorf("workload: bad dependency probability %g", s.DependencyProbability)
	}
	if s.MinResource <= 0 || s.MaxResource < s.MinResource {
		return fmt.Errorf("workload: bad resource range [%g,%g]", s.MinResource, s.MaxResource)
	}
	if len(s.MetadataSizes) == 0 {
		return fmt.Errorf("workload: no metadata sizes")
	}
	return nil
}

// Synthetic generates one synthetic program named name. MAT j matches
// the output metadata of each earlier MAT i selected with the
// dependency probability, producing exactly the sampled match
// dependencies; every MAT writes one unique metadata field whose size
// drives A(a,b).
func Synthetic(name string, spec SyntheticSpec, rng *rand.Rand) (*program.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.MinMATs + rng.Intn(spec.MaxMATs-spec.MinMATs+1)
	b := program.NewBuilder(name)

	hashFields := []fields.Field{
		fields.CatalogField(fields.MetaHash0),
		fields.CatalogField(fields.MetaHash1),
		fields.CatalogField(fields.MetaHash2),
	}
	body := n
	if spec.SharedPreamble {
		// The common flow-key hash stage: identical in every program, so
		// SPEED-style merging unifies all copies into one MAT.
		src := fields.CatalogField(fields.IPv4Src)
		dst := fields.CatalogField(fields.IPv4Dst)
		b.Table("shared_hash", 1).
			ActionDef("mix",
				program.HashOp(hashFields[0], src, dst),
				program.HashOp(hashFields[1], dst, src),
				program.HashOp(hashFields[2], src, src)).
			Default("mix")
		body = n - 1
	}

	outFields := make([]fields.Field, body)
	for i := 0; i < body; i++ {
		size := spec.MetadataSizes[rng.Intn(len(spec.MetadataSizes))]
		outFields[i] = fields.Metadata(fmt.Sprintf("meta.%s_t%d", name, i), size*8)
	}
	for j := 0; j < body; j++ {
		b.Table(fmt.Sprintf("t%d", j), 1024)
		for i := 0; i < j; i++ {
			if rng.Float64() < spec.DependencyProbability {
				b.Key(outFields[i], program.MatchExact)
			}
		}
		if spec.SharedPreamble && rng.Float64() < spec.SharedHashProbability {
			b.Key(hashFields[j%len(hashFields)], program.MatchExact)
		}
		// Always anchor matching on a header field so the MAT is a
		// plausible table even with no sampled dependencies.
		b.Key(fields.Header(fields.IPv4Src, 32), program.MatchExact)
		b.ActionDef("produce", program.SetOp(outFields[j], uint64(j)))
		b.Default("produce")
	}
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: building %q: %w", name, err)
	}
	// Apply the paper's fixed per-stage resource consumption. The
	// shared preamble keeps a deterministic cost so every copy stays
	// structurally identical (a prerequisite for merge unification).
	for _, m := range prog.MATs {
		if spec.SharedPreamble && m.Name == name+"/shared_hash" {
			m.FixedRequirement = spec.MinResource
			continue
		}
		m.FixedRequirement = spec.MinResource + rng.Float64()*(spec.MaxResource-spec.MinResource)
	}
	return prog, nil
}

// SyntheticSet generates count synthetic programs deterministically
// from the seed.
func SyntheticSet(count int, spec SyntheticSpec, seed int64) ([]*program.Program, error) {
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*program.Program, 0, count)
	for i := 0; i < count; i++ {
		p, err := Synthetic(fmt.Sprintf("syn%02d", i), spec, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// EvaluationPrograms returns the paper's Exp#2 workload: the ten real
// programs plus enough synthetic ones to reach total (the paper uses
// 50).
func EvaluationPrograms(total int, seed int64) ([]*program.Program, error) {
	real := RealPrograms()
	if total <= len(real) {
		return real[:total], nil
	}
	syn, err := SyntheticSet(total-len(real), PaperSyntheticSpec(), seed)
	if err != nil {
		return nil, err
	}
	return append(real, syn...), nil
}

// Sketch builds one SDM sketch program with the given number of hash
// rows. All sketches share identical hash MATs (same fields, same
// actions), which is precisely the redundancy SPEED-style merging
// eliminates — the Exp#6 scenario.
func Sketch(name string, rows int) (*program.Program, error) {
	if rows < 1 || rows > 3 {
		return nil, fmt.Errorf("workload: sketch rows must be 1..3, got %d", rows)
	}
	hashFields := []fields.Field{
		fields.CatalogField(fields.MetaHash0),
		fields.CatalogField(fields.MetaHash1),
		fields.CatalogField(fields.MetaHash2),
	}
	src := fields.CatalogField(fields.IPv4Src)
	dst := fields.CatalogField(fields.IPv4Dst)

	b := program.NewBuilder(name)
	// The shared hash stage: identical across all sketches.
	b.Table("shared_hash", 1).
		ActionDef("mix",
			program.HashOp(hashFields[0], src, dst),
			program.HashOp(hashFields[1], dst, src),
			program.HashOp(hashFields[2], src, src)).
		Default("mix")
	for r := 0; r < rows; r++ {
		cnt := fields.Metadata(fmt.Sprintf("meta.%s_cnt%d", name, r), 32)
		b.Table(fmt.Sprintf("row%d", r), 32768).
			Key(hashFields[r], program.MatchExact).
			ActionDef("bump", program.CountOp(cnt, hashFields[r])).
			Default("bump")
	}
	return b.Build()
}

// SketchSet builds count sketches with 1-3 rows each (deterministic in
// seed), the Exp#6 workload of ten concurrent sketches.
func SketchSet(count int, seed int64) ([]*program.Program, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*program.Program, 0, count)
	for i := 0; i < count; i++ {
		p, err := Sketch(fmt.Sprintf("sketch%02d", i), 1+rng.Intn(3))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
