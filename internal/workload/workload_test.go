package workload

import (
	"math/rand"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

func TestRealProgramsAreValid(t *testing.T) {
	progs := RealPrograms()
	if len(progs) != 10 {
		t.Fatalf("RealPrograms = %d entries, want 10 (the paper's count)", len(progs))
	}
	seen := map[string]bool{}
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("program %q invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate program name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestRealProgramsConvertToDAGs(t *testing.T) {
	for _, p := range RealProgramsPlusTracking() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := tdg.FromProgram(p)
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsDAG() {
				t.Error("program TDG is cyclic")
			}
			if g.NumNodes() < 2 {
				t.Errorf("program has only %d MATs", g.NumNodes())
			}
		})
	}
}

func TestRealProgramsHaveMetadataFlows(t *testing.T) {
	// Every real program must exhibit at least one dependency carrying
	// metadata — otherwise it cannot exercise inter-switch
	// coordination.
	for _, p := range RealPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := analyzer.Analyze([]*program.Program{p}, analyzer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, e := range g.Edges() {
				total += e.MetadataBytes
			}
			if total == 0 {
				t.Errorf("program %q delivers no metadata on any edge", p.Name)
			}
		})
	}
}

func TestINTUsesTableIMetadata(t *testing.T) {
	g, err := tdg.FromProgram(INT())
	if err != nil {
		t.Fatal(err)
	}
	n, ok := g.Node("int/int_source")
	if !ok {
		t.Fatal("int_source missing")
	}
	mod, err := n.MAT.ModifiedFields()
	if err != nil {
		t.Fatal(err)
	}
	// Table I: switch ID 4B + timestamp 12B + queue len 6B = 22 bytes.
	if got := mod.MetadataBytes(); got != 22 {
		t.Errorf("INT source metadata = %d bytes, want 22 (Table I)", got)
	}
}

func TestSyntheticSpecValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []SyntheticSpec{
		{MinMATs: 0, MaxMATs: 5, DependencyProbability: 0.3, MinResource: 0.1, MaxResource: 0.5, MetadataSizes: []int{4}},
		{MinMATs: 5, MaxMATs: 4, DependencyProbability: 0.3, MinResource: 0.1, MaxResource: 0.5, MetadataSizes: []int{4}},
		{MinMATs: 1, MaxMATs: 2, DependencyProbability: 1.3, MinResource: 0.1, MaxResource: 0.5, MetadataSizes: []int{4}},
		{MinMATs: 1, MaxMATs: 2, DependencyProbability: 0.3, MinResource: 0, MaxResource: 0.5, MetadataSizes: []int{4}},
		{MinMATs: 1, MaxMATs: 2, DependencyProbability: 0.3, MinResource: 0.1, MaxResource: 0.5},
	}
	for i, spec := range bad {
		if _, err := Synthetic("x", spec, rng); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSyntheticMatchesPaperParameters(t *testing.T) {
	spec := PaperSyntheticSpec()
	progs, err := SyntheticSet(40, spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 40 {
		t.Fatalf("got %d programs", len(progs))
	}
	totalMATs, totalPairs, totalDeps := 0, 0, 0
	for _, p := range progs {
		if err := p.Validate(); err != nil {
			t.Fatalf("synthetic program invalid: %v", err)
		}
		n := len(p.MATs)
		if n < 10 || n > 20 {
			t.Errorf("program %q has %d MATs, want 10-20", p.Name, n)
		}
		totalMATs += n
		totalPairs += n * (n - 1) / 2
		for _, m := range p.MATs {
			if m.FixedRequirement < 0.1 || m.FixedRequirement > 0.5 {
				t.Errorf("MAT %q requirement %g outside 10-50%%", m.Name, m.FixedRequirement)
			}
		}
		g, err := tdg.FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		totalDeps += g.NumEdges()
	}
	// Dependency probability ~30%: allow 25-35% over the aggregate.
	frac := float64(totalDeps) / float64(totalPairs)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("aggregate dependency fraction = %.3f, want ~0.30", frac)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := SyntheticSet(3, PaperSyntheticSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticSet(3, PaperSyntheticSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].MATs) != len(b[i].MATs) {
			t.Fatalf("program %d differs across equal seeds", i)
		}
		for j := range a[i].MATs {
			if !a[i].MATs[j].Equivalent(b[i].MATs[j]) {
				t.Fatalf("program %d MAT %d differs across equal seeds", i, j)
			}
		}
	}
}

func TestSyntheticAnalyzable(t *testing.T) {
	progs, err := SyntheticSet(5, PaperSyntheticSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsDAG() {
		t.Error("merged synthetic TDG cyclic")
	}
	// Body MATs use disjoint metadata namespaces, but the five shared
	// preambles unify into one hub MAT.
	want := 0
	for _, p := range progs {
		want += len(p.MATs)
	}
	want -= len(progs) - 1
	if g.NumNodes() != want {
		t.Errorf("merged nodes = %d, want %d (preambles unified)", g.NumNodes(), want)
	}
	hub, ok := g.Node(progs[0].Name + "/shared_hash")
	if !ok {
		t.Fatal("unified preamble missing")
	}
	if len(g.OutEdges(hub.Name())) == 0 {
		t.Error("unified preamble feeds nothing")
	}
}

func TestEvaluationPrograms(t *testing.T) {
	progs, err := EvaluationPrograms(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 50 {
		t.Fatalf("got %d programs, want 50", len(progs))
	}
	few, err := EvaluationPrograms(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 4 {
		t.Fatalf("got %d programs, want 4", len(few))
	}
}

func TestSketchSharingEnablesMerging(t *testing.T) {
	sketches, err := SketchSet(10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sketches) != 10 {
		t.Fatalf("got %d sketches", len(sketches))
	}
	merged, err := analyzer.Analyze(sketches, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	separate := 0
	for _, s := range sketches {
		separate += len(s.MATs)
	}
	// The ten identical shared_hash MATs unify into one.
	if got := separate - merged.NumNodes(); got != 9 {
		t.Errorf("merging saved %d MATs, want 9", got)
	}
}

func TestSketchValidation(t *testing.T) {
	if _, err := Sketch("s", 0); err == nil {
		t.Error("0-row sketch accepted")
	}
	if _, err := Sketch("s", 4); err == nil {
		t.Error("4-row sketch accepted")
	}
}

func TestSyntheticSetNegativeCount(t *testing.T) {
	if _, err := SyntheticSet(-1, PaperSyntheticSpec(), 1); err == nil {
		t.Error("negative count accepted")
	}
}
