package fields

// This file holds the standard field catalog used by the workload
// programs. Header fields model standard Ethernet/IPv4/TCP/UDP headers;
// metadata fields reproduce Table I of the paper.

// Standard header field names.
const (
	EthDst    = "ethernet.dstAddr"
	EthSrc    = "ethernet.srcAddr"
	EthType   = "ethernet.etherType"
	IPv4Src   = "ipv4.srcAddr"
	IPv4Dst   = "ipv4.dstAddr"
	IPv4Proto = "ipv4.protocol"
	IPv4TTL   = "ipv4.ttl"
	IPv4DSCP  = "ipv4.dscp"
	IPv4Len   = "ipv4.totalLen"
	TCPSrc    = "tcp.srcPort"
	TCPDst    = "tcp.dstPort"
	TCPFlags  = "tcp.flags"
	TCPSeq    = "tcp.seqNo"
	UDPSrc    = "udp.srcPort"
	UDPDst    = "udp.dstPort"
	VlanID    = "vlan.vid"
)

// Table I metadata field names (paper Table I) plus common pipeline
// intermediates used by the workload programs.
const (
	MetaSwitchID     = "meta.switch_id"     // 4 B: path tracing, conformance
	MetaQueueLen     = "meta.queue_len"     // 6 B: congestion control
	MetaTimestamp    = "meta.timestamp"     // 12 B: troubleshooting, anomaly detection
	MetaCounterIndex = "meta.counter_index" // 4 B: hash tables, sketches

	MetaEgressPort = "meta.egress_port"
	MetaNextHop    = "meta.next_hop"
	MetaDropFlag   = "meta.drop_flag"
	MetaHash0      = "meta.hash0"
	MetaHash1      = "meta.hash1"
	MetaHash2      = "meta.hash2"
	MetaFlowID     = "meta.flow_id"
	MetaClass      = "meta.traffic_class"
	MetaNATAddr    = "meta.nat_addr"
	MetaNATPort    = "meta.nat_port"
	MetaTunnelID   = "meta.tunnel_id"
	MetaVNI        = "meta.vni"
	MetaMeterColor = "meta.meter_color"
	MetaLBBucket   = "meta.lb_bucket"
	MetaCount      = "meta.count"
	MetaHeavyFlag  = "meta.heavy_flag"
	MetaINTDepth   = "meta.int_depth"
)

// Catalog returns a fresh copy of the standard field catalog.
func Catalog() Set {
	return MustSet(
		// Headers.
		Header(EthDst, 48),
		Header(EthSrc, 48),
		Header(EthType, 16),
		Header(IPv4Src, 32),
		Header(IPv4Dst, 32),
		Header(IPv4Proto, 8),
		Header(IPv4TTL, 8),
		Header(IPv4DSCP, 6),
		Header(IPv4Len, 16),
		Header(TCPSrc, 16),
		Header(TCPDst, 16),
		Header(TCPFlags, 8),
		Header(TCPSeq, 32),
		Header(UDPSrc, 16),
		Header(UDPDst, 16),
		Header(VlanID, 12),

		// Table I metadata, with the exact sizes the paper lists.
		Metadata(MetaSwitchID, 32),     // 4 bytes
		Metadata(MetaQueueLen, 48),     // 6 bytes
		Metadata(MetaTimestamp, 96),    // 12 bytes
		Metadata(MetaCounterIndex, 32), // 4 bytes

		// Common pipeline intermediates.
		Metadata(MetaEgressPort, 16),
		Metadata(MetaNextHop, 32),
		Metadata(MetaDropFlag, 8),
		Metadata(MetaHash0, 32),
		Metadata(MetaHash1, 32),
		Metadata(MetaHash2, 32),
		Metadata(MetaFlowID, 32),
		Metadata(MetaClass, 8),
		Metadata(MetaNATAddr, 32),
		Metadata(MetaNATPort, 16),
		Metadata(MetaTunnelID, 32),
		Metadata(MetaVNI, 24),
		Metadata(MetaMeterColor, 8),
		Metadata(MetaLBBucket, 16),
		Metadata(MetaCount, 32),
		Metadata(MetaHeavyFlag, 8),
		Metadata(MetaINTDepth, 8),
	)
}

// CatalogField looks up a field by name in the standard catalog and
// panics if it is absent; intended for static program definitions.
func CatalogField(name string) Field {
	f, ok := Catalog().Get(name)
	if !ok {
		panic("fields: unknown catalog field " + name)
	}
	return f
}
