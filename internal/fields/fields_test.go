package fields

import (
	"testing"
	"testing/quick"
)

func TestFieldBytes(t *testing.T) {
	tests := []struct {
		name string
		bits int
		want int
	}{
		{"one bit rounds up", 1, 1},
		{"seven bits", 7, 1},
		{"exact byte", 8, 1},
		{"nine bits", 9, 2},
		{"ipv4 addr", 32, 4},
		{"timestamp", 96, 12},
		{"queue len", 48, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := Metadata("m", tt.bits)
			if got := f.Bytes(); got != tt.want {
				t.Errorf("Bytes() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestFieldValidate(t *testing.T) {
	tests := []struct {
		name    string
		field   Field
		wantErr bool
	}{
		{"valid header", Header("h", 8), false},
		{"valid metadata", Metadata("m", 8), false},
		{"empty name", Field{Kind: KindHeader, Bits: 8}, true},
		{"zero bits", Field{Name: "x", Kind: KindHeader}, true},
		{"negative bits", Field{Name: "x", Kind: KindHeader, Bits: -1}, true},
		{"invalid kind", Field{Name: "x", Bits: 8}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.field.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if KindHeader.String() != "header" || KindMetadata.String() != "metadata" {
		t.Errorf("unexpected kind strings: %v %v", KindHeader, KindMetadata)
	}
	if Kind(0).Valid() || Kind(3).Valid() {
		t.Error("out-of-range kinds reported valid")
	}
}

func TestNewSetRejectsConflicts(t *testing.T) {
	if _, err := NewSet(Header("a", 8), Metadata("a", 8)); err == nil {
		t.Fatal("NewSet accepted conflicting duplicate definitions")
	}
	s, err := NewSet(Header("a", 8), Header("a", 8))
	if err != nil {
		t.Fatalf("NewSet rejected identical duplicates: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}
}

func TestNewSetRejectsInvalidField(t *testing.T) {
	if _, err := NewSet(Field{Name: "", Kind: KindHeader, Bits: 4}); err == nil {
		t.Fatal("NewSet accepted invalid field")
	}
}

func TestSetOperations(t *testing.T) {
	a := MustSet(Header("h1", 8), Metadata("m1", 32), Metadata("m2", 16))
	b := MustSet(Metadata("m1", 32), Metadata("m3", 8))

	t.Run("union", func(t *testing.T) {
		u, err := a.Union(b)
		if err != nil {
			t.Fatalf("Union: %v", err)
		}
		want := []string{"h1", "m1", "m2", "m3"}
		got := u.Names()
		if len(got) != len(want) {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
			}
		}
	})

	t.Run("union conflict", func(t *testing.T) {
		c := MustSet(Header("m1", 32)) // same name, different kind
		if _, err := a.Union(c); err == nil {
			t.Fatal("Union accepted conflicting field definitions")
		}
	})

	t.Run("intersect", func(t *testing.T) {
		i := a.Intersect(b)
		if i.Len() != 1 || !i.Contains("m1") {
			t.Errorf("Intersect = %v, want {m1}", i)
		}
	})

	t.Run("overlaps", func(t *testing.T) {
		if !a.Overlaps(b) {
			t.Error("Overlaps = false, want true")
		}
		c := MustSet(Header("z", 8))
		if a.Overlaps(c) {
			t.Error("Overlaps with disjoint set = true, want false")
		}
		var empty Set
		if a.Overlaps(empty) || empty.Overlaps(a) {
			t.Error("Overlaps with empty set = true")
		}
	})

	t.Run("metadata bytes", func(t *testing.T) {
		// m1 is 4 bytes, m2 is 2 bytes; h1 must not count.
		if got := a.MetadataBytes(); got != 6 {
			t.Errorf("MetadataBytes() = %d, want 6", got)
		}
		if got := a.TotalBytes(); got != 7 {
			t.Errorf("TotalBytes() = %d, want 7", got)
		}
	})

	t.Run("metadata subset", func(t *testing.T) {
		m := a.Metadata()
		if m.Len() != 2 || m.Contains("h1") {
			t.Errorf("Metadata() = %v, want metadata-only subset", m)
		}
	})

	t.Run("equal and clone", func(t *testing.T) {
		c := a.Clone()
		if !a.Equal(c) {
			t.Error("clone not Equal to original")
		}
		if a.Equal(b) {
			t.Error("distinct sets reported Equal")
		}
		var e1, e2 Set
		if !e1.Equal(e2) {
			t.Error("empty sets not Equal")
		}
	})
}

func TestZeroValueSetUsable(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains("x") || s.MetadataBytes() != 0 {
		t.Error("zero-value Set misbehaves")
	}
	if got := s.String(); got != "{}" {
		t.Errorf("String() = %q, want {}", got)
	}
}

func TestTableIMetadataSizes(t *testing.T) {
	// The exact sizes from Table I of the paper.
	tests := []struct {
		name  string
		bytes int
	}{
		{MetaSwitchID, 4},
		{MetaQueueLen, 6},
		{MetaTimestamp, 12},
		{MetaCounterIndex, 4},
	}
	cat := Catalog()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, ok := cat.Get(tt.name)
			if !ok {
				t.Fatalf("catalog missing %q", tt.name)
			}
			if !f.IsMetadata() {
				t.Errorf("%q is not metadata", tt.name)
			}
			if f.Bytes() != tt.bytes {
				t.Errorf("%q = %d bytes, want %d", tt.name, f.Bytes(), tt.bytes)
			}
		})
	}
}

func TestCatalogFieldPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CatalogField did not panic on unknown field")
		}
	}()
	CatalogField("no.such.field")
}

func TestCatalogHeadersAreHeaders(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{EthDst, IPv4Src, TCPDst, UDPSrc} {
		f, ok := cat.Get(name)
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		if f.IsMetadata() {
			t.Errorf("%q unexpectedly metadata", name)
		}
	}
}

// Property: union is commutative and idempotent on valid sets.
func TestSetUnionProperties(t *testing.T) {
	mk := func(names []uint8) Set {
		fs := make([]Field, 0, len(names))
		for _, n := range names {
			fs = append(fs, Metadata(string(rune('a'+n%16)), int(n%31)+1))
		}
		// Duplicate names with different widths may conflict; dedupe by name.
		seen := map[string]bool{}
		out := fs[:0]
		for _, f := range fs {
			if !seen[f.Name] {
				seen[f.Name] = true
				out = append(out, f)
			}
		}
		return MustSet(out...)
	}
	prop := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		ab, err1 := a.Union(b)
		ba, err2 := b.Union(a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // conflicting widths on the same name: both fail
		}
		aa, err := a.Union(a)
		if err != nil || !aa.Equal(a) {
			return false
		}
		return ab.Equal(ba)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: MetadataBytes of a union never exceeds the sum of the parts
// and never falls below the max of the parts.
func TestMetadataBytesUnionBounds(t *testing.T) {
	prop := func(xs, ys []uint8) bool {
		mk := func(names []uint8, prefix string) Set {
			seen := map[string]bool{}
			var fs []Field
			for _, n := range names {
				name := prefix + string(rune('a'+n%8))
				if seen[name] {
					continue
				}
				seen[name] = true
				fs = append(fs, Metadata(name, int(n%31)+1))
			}
			return MustSet(fs...)
		}
		a, b := mk(xs, "x."), mk(ys, "y.") // disjoint prefixes: union always valid
		u, err := a.Union(b)
		if err != nil {
			return false
		}
		sum := a.MetadataBytes() + b.MetadataBytes()
		lo := a.MetadataBytes()
		if b.MetadataBytes() > lo {
			lo = b.MetadataBytes()
		}
		got := u.MetadataBytes()
		return got <= sum && got >= lo
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
