// Package fields defines the packet header and metadata fields that
// match-action tables (MATs) read and write.
//
// Fields come in two kinds. Header fields (e.g. the IPv4 source address)
// already travel inside every packet, so passing them between switches is
// free. Metadata fields (e.g. a counter index computed by a hash stage)
// exist only inside a switch pipeline; when a downstream MAT on another
// switch needs them they must be piggybacked on the packet, which is
// exactly the per-packet byte overhead Hermes minimizes (paper §II-B).
//
// The package also ships the standard catalog from Table I of the paper:
// switch identifiers (4 B), queue lengths (6 B), timestamps (12 B), and
// counter indexes (4 B).
package fields

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a field as a packet header field or pipeline metadata.
type Kind int

const (
	// KindHeader is a field that is part of the packet on the wire.
	KindHeader Kind = iota + 1
	// KindMetadata is a field that exists only inside a switch pipeline
	// and must be piggybacked to cross a switch boundary.
	KindMetadata
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindMetadata:
		return "metadata"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool {
	return k == KindHeader || k == KindMetadata
}

// Field describes a single named field.
type Field struct {
	// Name uniquely identifies the field, e.g. "ipv4.srcAddr" or
	// "meta.cm_index0".
	Name string `json:"name"`
	// Kind says whether the field is a header field or metadata.
	Kind Kind `json:"kind"`
	// Bits is the field width in bits.
	Bits int `json:"bits"`
}

// Bytes returns the field size in whole bytes, rounding the bit width up.
// Alg. 1 of the paper accumulates size(f) in bytes; switch pipelines
// serialize piggybacked metadata on byte boundaries.
func (f Field) Bytes() int {
	return (f.Bits + 7) / 8
}

// IsMetadata reports whether the field is pipeline metadata.
func (f Field) IsMetadata() bool {
	return f.Kind == KindMetadata
}

// Validate checks the field for structural problems.
func (f Field) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("field has empty name")
	}
	if !f.Kind.Valid() {
		return fmt.Errorf("field %q: invalid kind %d", f.Name, int(f.Kind))
	}
	if f.Bits <= 0 {
		return fmt.Errorf("field %q: non-positive width %d bits", f.Name, f.Bits)
	}
	return nil
}

// String renders the field as name:kind:bits.
func (f Field) String() string {
	return fmt.Sprintf("%s:%s:%db", f.Name, f.Kind, f.Bits)
}

// Header constructs a header field with the given name and bit width.
func Header(name string, bits int) Field {
	return Field{Name: name, Kind: KindHeader, Bits: bits}
}

// Metadata constructs a metadata field with the given name and bit width.
func Metadata(name string, bits int) Field {
	return Field{Name: name, Kind: KindMetadata, Bits: bits}
}

// Set is an immutable-by-convention collection of fields keyed by name.
// The zero value is an empty, usable set.
type Set struct {
	byName map[string]Field
}

// NewSet builds a set from the given fields. Duplicate names must carry
// identical definitions; otherwise NewSet returns an error.
func NewSet(fs ...Field) (Set, error) {
	s := Set{byName: make(map[string]Field, len(fs))}
	for _, f := range fs {
		if err := f.Validate(); err != nil {
			return Set{}, err
		}
		if prev, ok := s.byName[f.Name]; ok && prev != f {
			return Set{}, fmt.Errorf("conflicting definitions for field %q: %v vs %v", f.Name, prev, f)
		}
		s.byName[f.Name] = f
	}
	return s, nil
}

// MustSet is NewSet but panics on error; intended for static catalogs.
func MustSet(fs ...Field) Set {
	s, err := NewSet(fs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of fields in the set.
func (s Set) Len() int { return len(s.byName) }

// Contains reports whether the set holds a field with the given name.
func (s Set) Contains(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Get returns the field with the given name.
func (s Set) Get(name string) (Field, bool) {
	f, ok := s.byName[name]
	return f, ok
}

// Fields returns the fields sorted by name. The returned slice is fresh.
func (s Set) Fields() []Field {
	out := make([]Field, 0, len(s.byName))
	for _, f := range s.byName {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted field names.
func (s Set) Names() []string {
	out := make([]string, 0, len(s.byName))
	for name := range s.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Union returns a new set holding every field from s and t. Conflicting
// definitions of the same name cause an error.
func (s Set) Union(t Set) (Set, error) {
	fs := s.Fields()
	fs = append(fs, t.Fields()...)
	return NewSet(fs...)
}

// Intersect returns the set of fields present (identically) in both sets.
func (s Set) Intersect(t Set) Set {
	out := Set{byName: make(map[string]Field)}
	for name, f := range s.byName {
		if g, ok := t.byName[name]; ok && g == f {
			out.byName[name] = f
		}
	}
	return out
}

// Overlaps reports whether the two sets share at least one field name.
func (s Set) Overlaps(t Set) bool {
	// Iterate over the smaller map.
	small, big := s.byName, t.byName
	if len(big) < len(small) {
		small, big = big, small
	}
	for name := range small {
		if _, ok := big[name]; ok {
			return true
		}
	}
	return false
}

// MetadataBytes sums the byte sizes of the metadata fields in the set.
// This is the size() accumulation used by Alg. 1 in the paper.
func (s Set) MetadataBytes() int {
	total := 0
	for _, f := range s.byName {
		if f.IsMetadata() {
			total += f.Bytes()
		}
	}
	return total
}

// TotalBytes sums the byte sizes of all fields in the set.
func (s Set) TotalBytes() int {
	total := 0
	for _, f := range s.byName {
		total += f.Bytes()
	}
	return total
}

// Metadata returns the subset of metadata fields.
func (s Set) Metadata() Set {
	out := Set{byName: make(map[string]Field)}
	for name, f := range s.byName {
		if f.IsMetadata() {
			out.byName[name] = f
		}
	}
	return out
}

// Equal reports whether the two sets hold exactly the same fields.
func (s Set) Equal(t Set) bool {
	if len(s.byName) != len(t.byName) {
		return false
	}
	for name, f := range s.byName {
		if g, ok := t.byName[name]; !ok || g != f {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := Set{byName: make(map[string]Field, len(s.byName))}
	for name, f := range s.byName {
		out.byName[name] = f
	}
	return out
}

// String renders the sorted field names, e.g. "{a, b, c}".
func (s Set) String() string {
	return "{" + strings.Join(s.Names(), ", ") + "}"
}
