// Package program models data plane programs as collections of
// match-action tables (MATs), mirroring §IV of the Hermes paper.
//
// Each MAT a carries the five properties the paper lists: the set F_a^m
// of matching fields, the set A_a of actions, the set F_a^a of fields
// modified by those actions, the rule set R_a, and the rule capacity
// C_a. A Program is an ordered collection of MATs together with
// explicitly declared control-flow (successor) edges; the remaining
// dependency kinds are inferred from field read/write sets by the tdg
// package.
package program

import (
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/fields"
)

// MatchType describes how a MAT matches a field.
type MatchType int

const (
	// MatchExact matches the full field value.
	MatchExact MatchType = iota + 1
	// MatchLPM performs longest-prefix matching.
	MatchLPM
	// MatchTernary matches under a mask with rule priorities.
	MatchTernary
	// MatchRange matches a value range.
	MatchRange
)

// String returns the P4-style name of the match type.
func (m MatchType) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	case MatchRange:
		return "range"
	default:
		return fmt.Sprintf("MatchType(%d)", int(m))
	}
}

// Valid reports whether m is a defined match type.
func (m MatchType) Valid() bool {
	return m >= MatchExact && m <= MatchRange
}

// MatchKey is a single (field, match type) pair in a MAT's match key.
type MatchKey struct {
	Field fields.Field `json:"field"`
	Type  MatchType    `json:"type"`
}

// Validate checks the match key.
func (k MatchKey) Validate() error {
	if err := k.Field.Validate(); err != nil {
		return fmt.Errorf("match key: %w", err)
	}
	if !k.Type.Valid() {
		return fmt.Errorf("match key on %q: invalid match type %d", k.Field.Name, int(k.Type))
	}
	return nil
}

// OpKind is the kind of primitive operation an action performs.
type OpKind int

const (
	// OpSet writes a constant or action parameter into the destination.
	OpSet OpKind = iota + 1
	// OpCopy copies the source field into the destination field.
	OpCopy
	// OpAdd adds the source field (or the immediate) to the destination.
	OpAdd
	// OpHash writes a hash of the source fields into the destination.
	OpHash
	// OpCount increments a counter indexed by the source field; the
	// destination receives the resulting count.
	OpCount
	// OpDecrement decrements the destination (e.g. TTL).
	OpDecrement
)

// String names the op kind.
func (o OpKind) String() string {
	switch o {
	case OpSet:
		return "set"
	case OpCopy:
		return "copy"
	case OpAdd:
		return "add"
	case OpHash:
		return "hash"
	case OpCount:
		return "count"
	case OpDecrement:
		return "dec"
	default:
		return fmt.Sprintf("OpKind(%d)", int(o))
	}
}

// Valid reports whether o is a defined op kind.
func (o OpKind) Valid() bool { return o >= OpSet && o <= OpDecrement }

// Op is one primitive operation inside an action.
type Op struct {
	Kind OpKind `json:"kind"`
	// Dst is the field written by the operation.
	Dst fields.Field `json:"dst"`
	// Srcs are the fields read by the operation (empty for OpSet with an
	// immediate and for OpDecrement).
	Srcs []fields.Field `json:"srcs,omitempty"`
	// Imm is an immediate operand for OpSet/OpAdd.
	Imm uint64 `json:"imm,omitempty"`
}

// Validate checks the operation.
func (op Op) Validate() error {
	if !op.Kind.Valid() {
		return fmt.Errorf("op: invalid kind %d", int(op.Kind))
	}
	if err := op.Dst.Validate(); err != nil {
		return fmt.Errorf("op %s dst: %w", op.Kind, err)
	}
	for _, s := range op.Srcs {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("op %s src: %w", op.Kind, err)
		}
	}
	switch op.Kind {
	case OpCopy, OpHash, OpCount:
		if len(op.Srcs) == 0 {
			return fmt.Errorf("op %s on %q: needs at least one source", op.Kind, op.Dst.Name)
		}
	}
	return nil
}

// Action is a named sequence of primitive operations.
type Action struct {
	Name string `json:"name"`
	Ops  []Op   `json:"ops"`
}

// Validate checks the action.
func (a Action) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("action has empty name")
	}
	for i, op := range a.Ops {
		if err := op.Validate(); err != nil {
			return fmt.Errorf("action %q op %d: %w", a.Name, i, err)
		}
	}
	return nil
}

// Writes returns the set of fields the action modifies.
func (a Action) Writes() (fields.Set, error) {
	var fs []fields.Field
	for _, op := range a.Ops {
		fs = append(fs, op.Dst)
	}
	s, err := fields.NewSet(fs...)
	if err != nil {
		return fields.Set{}, fmt.Errorf("action %q: %w", a.Name, err)
	}
	return s, nil
}

// Reads returns the set of fields the action reads.
func (a Action) Reads() (fields.Set, error) {
	var fs []fields.Field
	for _, op := range a.Ops {
		fs = append(fs, op.Srcs...)
		if op.Kind == OpAdd || op.Kind == OpDecrement || op.Kind == OpCount {
			fs = append(fs, op.Dst) // read-modify-write
		}
	}
	s, err := fields.NewSet(fs...)
	if err != nil {
		return fields.Set{}, fmt.Errorf("action %q: %w", a.Name, err)
	}
	return s, nil
}

// Rule is one user-installed entry of a MAT.
type Rule struct {
	// Priority orders ternary rules; higher wins.
	Priority int `json:"priority"`
	// Matches maps field name to the match pattern for that field. A
	// field absent from the map is wildcarded.
	Matches map[string]Pattern `json:"matches"`
	// Action names the action to run on a hit.
	Action string `json:"action"`
	// Params are bound to OpSet immediates at execution time, keyed by
	// destination field name.
	Params map[string]uint64 `json:"params,omitempty"`
}

// Pattern matches a field value.
type Pattern struct {
	// Value is the match value.
	Value uint64 `json:"value"`
	// Mask selects which bits of Value are significant in ternary
	// patterns; a zero mask is a full wildcard.
	Mask uint64 `json:"mask,omitempty"`
	// PrefixLen is used by LPM patterns.
	PrefixLen int `json:"prefix_len,omitempty"`
	// Lo and Hi bound range patterns inclusively.
	Lo uint64 `json:"lo,omitempty"`
	Hi uint64 `json:"hi,omitempty"`
}

// MAT is a match-action table.
type MAT struct {
	// Name uniquely identifies the MAT within a merged TDG. Program
	// builders prefix it with the program name.
	Name string `json:"name"`
	// Keys is the match key (F_a^m with match types).
	Keys []MatchKey `json:"keys"`
	// Actions is the action set A_a.
	Actions []Action `json:"actions"`
	// Rules is the installed rule set R_a.
	Rules []Rule `json:"rules,omitempty"`
	// Capacity is C_a, the maximum number of rules.
	Capacity int `json:"capacity"`
	// DefaultAction names the action performed on a miss; empty means
	// no-op on miss.
	DefaultAction string `json:"default_action,omitempty"`
	// FixedRequirement, when positive, overrides the computed resource
	// requirement R(a) with a fixed normalized value. The synthetic
	// workload generator uses it to reproduce the paper's setting of
	// uniform 10-50% per-stage consumption per MAT.
	FixedRequirement float64 `json:"fixed_requirement,omitempty"`
}

// MatchFields returns F_a^m, the set of fields matched by the MAT.
func (m *MAT) MatchFields() (fields.Set, error) {
	fs := make([]fields.Field, 0, len(m.Keys))
	for _, k := range m.Keys {
		fs = append(fs, k.Field)
	}
	s, err := fields.NewSet(fs...)
	if err != nil {
		return fields.Set{}, fmt.Errorf("MAT %q match fields: %w", m.Name, err)
	}
	return s, nil
}

// ModifiedFields returns F_a^a, the set of fields modified by any action
// of the MAT.
func (m *MAT) ModifiedFields() (fields.Set, error) {
	out, err := fields.NewSet()
	if err != nil {
		return fields.Set{}, err
	}
	for _, a := range m.Actions {
		w, err := a.Writes()
		if err != nil {
			return fields.Set{}, fmt.Errorf("MAT %q: %w", m.Name, err)
		}
		out, err = out.Union(w)
		if err != nil {
			return fields.Set{}, fmt.Errorf("MAT %q: %w", m.Name, err)
		}
	}
	return out, nil
}

// ReadFields returns every field the MAT reads: the match key plus the
// sources of its actions.
func (m *MAT) ReadFields() (fields.Set, error) {
	out, err := m.MatchFields()
	if err != nil {
		return fields.Set{}, err
	}
	for _, a := range m.Actions {
		r, err := a.Reads()
		if err != nil {
			return fields.Set{}, fmt.Errorf("MAT %q: %w", m.Name, err)
		}
		out, err = out.Union(r)
		if err != nil {
			return fields.Set{}, fmt.Errorf("MAT %q: %w", m.Name, err)
		}
	}
	return out, nil
}

// Action returns the named action.
func (m *MAT) Action(name string) (Action, bool) {
	for _, a := range m.Actions {
		if a.Name == name {
			return a, true
		}
	}
	return Action{}, false
}

// Validate checks the MAT for structural problems.
func (m *MAT) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("MAT has empty name")
	}
	if m.Capacity <= 0 {
		return fmt.Errorf("MAT %q: non-positive capacity %d", m.Name, m.Capacity)
	}
	seen := make(map[string]bool, len(m.Keys))
	for _, k := range m.Keys {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("MAT %q: %w", m.Name, err)
		}
		if seen[k.Field.Name] {
			return fmt.Errorf("MAT %q: duplicate match key %q", m.Name, k.Field.Name)
		}
		seen[k.Field.Name] = true
	}
	if len(m.Actions) == 0 {
		return fmt.Errorf("MAT %q: no actions", m.Name)
	}
	actionNames := make(map[string]bool, len(m.Actions))
	for _, a := range m.Actions {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("MAT %q: %w", m.Name, err)
		}
		if actionNames[a.Name] {
			return fmt.Errorf("MAT %q: duplicate action %q", m.Name, a.Name)
		}
		actionNames[a.Name] = true
	}
	if m.DefaultAction != "" && !actionNames[m.DefaultAction] {
		return fmt.Errorf("MAT %q: unknown default action %q", m.Name, m.DefaultAction)
	}
	if len(m.Rules) > m.Capacity {
		return fmt.Errorf("MAT %q: %d rules exceed capacity %d", m.Name, len(m.Rules), m.Capacity)
	}
	for i, r := range m.Rules {
		if !actionNames[r.Action] {
			return fmt.Errorf("MAT %q rule %d: unknown action %q", m.Name, i, r.Action)
		}
		for fname := range r.Matches {
			if !seen[fname] {
				return fmt.Errorf("MAT %q rule %d: match on non-key field %q", m.Name, i, fname)
			}
		}
	}
	return nil
}

// ValidateRule checks one rule against the MAT's definition without
// installing it: the action must exist, every matched field must be a
// key, and set parameters must target fields the action writes.
func (m *MAT) ValidateRule(r Rule) error {
	act, ok := m.Action(r.Action)
	if !ok {
		return fmt.Errorf("MAT %q: rule references unknown action %q", m.Name, r.Action)
	}
	keys := make(map[string]bool, len(m.Keys))
	for _, k := range m.Keys {
		keys[k.Field.Name] = true
	}
	for fname := range r.Matches {
		if !keys[fname] {
			return fmt.Errorf("MAT %q: rule matches non-key field %q", m.Name, fname)
		}
	}
	writes := make(map[string]bool, len(act.Ops))
	for _, op := range act.Ops {
		writes[op.Dst.Name] = true
	}
	for fname := range r.Params {
		if !writes[fname] {
			return fmt.Errorf("MAT %q: rule parameter for field %q that action %q never writes",
				m.Name, fname, act.Name)
		}
	}
	return nil
}

// Equivalent reports whether two MATs have identical properties apart
// from their names: the same match keys, actions, capacity and rules.
// SPEED's merger treats equivalent MATs as redundant (paper §IV).
func (m *MAT) Equivalent(o *MAT) bool {
	if m.Capacity != o.Capacity || len(m.Keys) != len(o.Keys) ||
		len(m.Actions) != len(o.Actions) || len(m.Rules) != len(o.Rules) ||
		m.DefaultAction != o.DefaultAction ||
		m.FixedRequirement != o.FixedRequirement {
		return false
	}
	mk := append([]MatchKey(nil), m.Keys...)
	ok := append([]MatchKey(nil), o.Keys...)
	sortKeys(mk)
	sortKeys(ok)
	for i := range mk {
		if mk[i] != ok[i] {
			return false
		}
	}
	ma := append([]Action(nil), m.Actions...)
	oa := append([]Action(nil), o.Actions...)
	sortActions(ma)
	sortActions(oa)
	for i := range ma {
		if !actionsEqual(ma[i], oa[i]) {
			return false
		}
	}
	// Rules are compared positionally: installed rule order matters for
	// ternary priorities.
	for i := range m.Rules {
		if !rulesEqual(m.Rules[i], o.Rules[i]) {
			return false
		}
	}
	return true
}

func sortKeys(ks []MatchKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].Field.Name != ks[j].Field.Name {
			return ks[i].Field.Name < ks[j].Field.Name
		}
		return ks[i].Type < ks[j].Type
	})
}

func sortActions(as []Action) {
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
}

func actionsEqual(a, b Action) bool {
	if a.Name != b.Name || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if !opsEqual(a.Ops[i], b.Ops[i]) {
			return false
		}
	}
	return true
}

func opsEqual(a, b Op) bool {
	if a.Kind != b.Kind || a.Dst != b.Dst || a.Imm != b.Imm || len(a.Srcs) != len(b.Srcs) {
		return false
	}
	for i := range a.Srcs {
		if a.Srcs[i] != b.Srcs[i] {
			return false
		}
	}
	return true
}

func rulesEqual(a, b Rule) bool {
	if a.Priority != b.Priority || a.Action != b.Action ||
		len(a.Matches) != len(b.Matches) || len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Matches {
		if b.Matches[k] != v {
			return false
		}
	}
	for k, v := range a.Params {
		if b.Params[k] != v {
			return false
		}
	}
	return true
}
