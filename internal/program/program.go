package program

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/fields"
)

// ControlEdge declares an explicit control-flow relation between two
// MATs of the same program: the processing result of From gates whether
// To executes. It induces a successor dependency (type S) in the TDG
// unless a stronger data dependency (M or A) already exists.
type ControlEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Program is a data plane program: an ordered set of MATs plus declared
// control-flow edges.
type Program struct {
	// Name identifies the program; MAT names are unique within it.
	Name string `json:"name"`
	// MATs lists the tables in declaration (program) order. Declaration
	// order is the logical invocation order used to orient inferred
	// dependencies.
	MATs []*MAT `json:"mats"`
	// Control lists explicit control-flow edges.
	Control []ControlEdge `json:"control,omitempty"`
}

// MAT returns the named MAT.
func (p *Program) MAT(name string) (*MAT, bool) {
	for _, m := range p.MATs {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}

// Index returns the declaration index of the named MAT, or -1.
func (p *Program) Index(name string) int {
	for i, m := range p.MATs {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the program for structural problems.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("program has empty name")
	}
	if len(p.MATs) == 0 {
		return fmt.Errorf("program %q: no MATs", p.Name)
	}
	seen := make(map[string]bool, len(p.MATs))
	for _, m := range p.MATs {
		if m == nil {
			return fmt.Errorf("program %q: nil MAT", p.Name)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("program %q: %w", p.Name, err)
		}
		if seen[m.Name] {
			return fmt.Errorf("program %q: duplicate MAT %q", p.Name, m.Name)
		}
		seen[m.Name] = true
	}
	for _, e := range p.Control {
		if !seen[e.From] {
			return fmt.Errorf("program %q: control edge from unknown MAT %q", p.Name, e.From)
		}
		if !seen[e.To] {
			return fmt.Errorf("program %q: control edge to unknown MAT %q", p.Name, e.To)
		}
		if p.Index(e.From) >= p.Index(e.To) {
			return fmt.Errorf("program %q: control edge %q->%q against declaration order", p.Name, e.From, e.To)
		}
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	out := &Program{Name: p.Name}
	out.MATs = make([]*MAT, len(p.MATs))
	for i, m := range p.MATs {
		out.MATs[i] = cloneMAT(m)
	}
	out.Control = append([]ControlEdge(nil), p.Control...)
	return out
}

func cloneMAT(m *MAT) *MAT {
	c := &MAT{
		Name:             m.Name,
		Capacity:         m.Capacity,
		DefaultAction:    m.DefaultAction,
		FixedRequirement: m.FixedRequirement,
		Keys:             append([]MatchKey(nil), m.Keys...),
	}
	c.Actions = make([]Action, len(m.Actions))
	for i, a := range m.Actions {
		c.Actions[i] = Action{Name: a.Name, Ops: make([]Op, len(a.Ops))}
		for j, op := range a.Ops {
			c.Actions[i].Ops[j] = Op{
				Kind: op.Kind, Dst: op.Dst, Imm: op.Imm,
				Srcs: append([]fields.Field(nil), op.Srcs...),
			}
		}
	}
	c.Rules = make([]Rule, len(m.Rules))
	for i, r := range m.Rules {
		nr := Rule{Priority: r.Priority, Action: r.Action}
		if r.Matches != nil {
			nr.Matches = make(map[string]Pattern, len(r.Matches))
			for k, v := range r.Matches {
				nr.Matches[k] = v
			}
		}
		if r.Params != nil {
			nr.Params = make(map[string]uint64, len(r.Params))
			for k, v := range r.Params {
				nr.Params[k] = v
			}
		}
		c.Rules[i] = nr
	}
	return c
}

// EncodeJSON serializes the program with stable formatting.
func (p *Program) EncodeJSON() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("encoding program %q: %w", p.Name, err)
	}
	return b, nil
}

// DecodeJSON parses a program and validates it.
func DecodeJSON(data []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("decoding program: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("decoded program invalid: %w", err)
	}
	return &p, nil
}

// SortedMATNames returns the MAT names in sorted order; useful for
// deterministic reporting.
func (p *Program) SortedMATNames() []string {
	names := make([]string, len(p.MATs))
	for i, m := range p.MATs {
		names[i] = m.Name
	}
	sort.Strings(names)
	return names
}
