package program

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/fields"
)

// Builder assembles a Program with a fluent API. It accumulates errors
// and reports them at Build time so call sites stay linear.
type Builder struct {
	prog *Program
	errs []error
	cur  *MAT
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// Table opens a new MAT with the given (unprefixed) name and rule
// capacity. Subsequent Key/ActionDef calls attach to this MAT until the
// next Table call. The MAT's full name is "<program>/<name>".
func (b *Builder) Table(name string, capacity int) *Builder {
	m := &MAT{Name: b.prog.Name + "/" + name, Capacity: capacity}
	b.prog.MATs = append(b.prog.MATs, m)
	b.cur = m
	return b
}

// Key adds a match key to the current MAT.
func (b *Builder) Key(f fields.Field, t MatchType) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("Key(%s) before Table", f.Name))
		return b
	}
	b.cur.Keys = append(b.cur.Keys, MatchKey{Field: f, Type: t})
	return b
}

// ActionDef adds an action to the current MAT.
func (b *Builder) ActionDef(name string, ops ...Op) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("ActionDef(%q) before Table", name))
		return b
	}
	b.cur.Actions = append(b.cur.Actions, Action{Name: name, Ops: ops})
	return b
}

// Default marks the named action as the current MAT's default action.
func (b *Builder) Default(action string) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("Default(%q) before Table", action))
		return b
	}
	b.cur.DefaultAction = action
	return b
}

// Rule installs a rule into the current MAT.
func (b *Builder) Rule(r Rule) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("Rule before Table"))
		return b
	}
	b.cur.Rules = append(b.cur.Rules, r)
	return b
}

// Gate declares a control-flow edge: the result of MAT from gates MAT
// to. Names are the unprefixed table names used with Table.
func (b *Builder) Gate(from, to string) *Builder {
	b.prog.Control = append(b.prog.Control, ControlEdge{
		From: b.prog.Name + "/" + from,
		To:   b.prog.Name + "/" + to,
	})
	return b
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("building program %q: %w", b.prog.Name, b.errs[0])
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build but panics on error; for static workload catalogs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Convenience op constructors.

// SetOp writes an immediate (or rule parameter) into dst.
func SetOp(dst fields.Field, imm uint64) Op {
	return Op{Kind: OpSet, Dst: dst, Imm: imm}
}

// CopyOp copies src into dst.
func CopyOp(dst, src fields.Field) Op {
	return Op{Kind: OpCopy, Dst: dst, Srcs: []fields.Field{src}}
}

// AddOp adds src (plus imm) into dst.
func AddOp(dst, src fields.Field, imm uint64) Op {
	return Op{Kind: OpAdd, Dst: dst, Srcs: []fields.Field{src}, Imm: imm}
}

// HashOp writes a hash of srcs into dst.
func HashOp(dst fields.Field, srcs ...fields.Field) Op {
	return Op{Kind: OpHash, Dst: dst, Srcs: srcs}
}

// CountOp increments a counter indexed by idx and stores the count in dst.
func CountOp(dst, idx fields.Field) Op {
	return Op{Kind: OpCount, Dst: dst, Srcs: []fields.Field{idx}}
}

// DecOp decrements dst by imm (default 1 when imm is 0).
func DecOp(dst fields.Field, imm uint64) Op {
	return Op{Kind: OpDecrement, Dst: dst, Imm: imm}
}
