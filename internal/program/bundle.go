package program

import (
	"encoding/json"
	"fmt"
)

// Bundle is the on-disk interchange format for program sets: what the
// hermes CLI loads with -workload file:PATH and what integrations emit
// when they translate P4 artifacts into this library's representation.
type Bundle struct {
	// Version guards format evolution; currently 1.
	Version int `json:"version"`
	// Programs is the workload.
	Programs []*Program `json:"programs"`
}

// CurrentBundleVersion is the format version this library writes.
const CurrentBundleVersion = 1

// EncodeBundle serializes a program set.
func EncodeBundle(progs []*Program) ([]byte, error) {
	for i, p := range progs {
		if p == nil {
			return nil, fmt.Errorf("program: bundle entry %d is nil", i)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("program: bundle entry %d: %w", i, err)
		}
	}
	b, err := json.MarshalIndent(Bundle{Version: CurrentBundleVersion, Programs: progs}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("program: encoding bundle: %w", err)
	}
	return b, nil
}

// DecodeBundle parses and validates a program set.
func DecodeBundle(data []byte) ([]*Program, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("program: decoding bundle: %w", err)
	}
	if b.Version != CurrentBundleVersion {
		return nil, fmt.Errorf("program: unsupported bundle version %d (want %d)", b.Version, CurrentBundleVersion)
	}
	if len(b.Programs) == 0 {
		return nil, fmt.Errorf("program: bundle holds no programs")
	}
	seen := make(map[string]bool, len(b.Programs))
	for i, p := range b.Programs {
		if p == nil {
			return nil, fmt.Errorf("program: bundle entry %d is null", i)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("program: bundle entry %d: %w", i, err)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("program: bundle has duplicate program %q", p.Name)
		}
		seen[p.Name] = true
	}
	return b.Programs, nil
}
