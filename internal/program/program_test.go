package program

import (
	"testing"

	"github.com/hermes-net/hermes/internal/fields"
)

func testProgram(t *testing.T) *Program {
	t.Helper()
	hashIdx := fields.Metadata("meta.idx", 32)
	count := fields.Metadata("meta.count", 32)
	src := fields.Header("ipv4.srcAddr", 32)
	dst := fields.Header("ipv4.dstAddr", 32)

	p, err := NewBuilder("test").
		Table("hash", 1).
		ActionDef("compute", HashOp(hashIdx, src, dst)).
		Default("compute").
		Table("count", 4096).
		Key(hashIdx, MatchExact).
		ActionDef("bump", CountOp(count, hashIdx)).
		Default("bump").
		Table("report", 16).
		Key(count, MatchRange).
		ActionDef("mark", SetOp(fields.Metadata("meta.heavy", 8), 1)).
		Build()
	if err != nil {
		t.Fatalf("building test program: %v", err)
	}
	return p
}

func TestBuilderBuildsValidProgram(t *testing.T) {
	p := testProgram(t)
	if len(p.MATs) != 3 {
		t.Fatalf("got %d MATs, want 3", len(p.MATs))
	}
	if p.MATs[0].Name != "test/hash" {
		t.Errorf("MAT name = %q, want test/hash", p.MATs[0].Name)
	}
	if _, ok := p.MAT("test/count"); !ok {
		t.Error("MAT lookup failed")
	}
	if p.Index("test/report") != 2 {
		t.Errorf("Index(test/report) = %d, want 2", p.Index("test/report"))
	}
	if p.Index("nope") != -1 {
		t.Error("Index of unknown MAT should be -1")
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Program, error)
	}{
		{"key before table", func() (*Program, error) {
			return NewBuilder("p").Key(fields.Header("h", 8), MatchExact).Build()
		}},
		{"action before table", func() (*Program, error) {
			return NewBuilder("p").ActionDef("a").Build()
		}},
		{"default before table", func() (*Program, error) {
			return NewBuilder("p").Default("a").Build()
		}},
		{"rule before table", func() (*Program, error) {
			return NewBuilder("p").Rule(Rule{Action: "a"}).Build()
		}},
		{"no MATs", func() (*Program, error) {
			return NewBuilder("p").Build()
		}},
		{"no actions", func() (*Program, error) {
			return NewBuilder("p").Table("t", 1).Build()
		}},
		{"zero capacity", func() (*Program, error) {
			return NewBuilder("p").Table("t", 0).
				ActionDef("a", SetOp(fields.Metadata("m", 8), 0)).Build()
		}},
		{"unknown default", func() (*Program, error) {
			return NewBuilder("p").Table("t", 1).
				ActionDef("a", SetOp(fields.Metadata("m", 8), 0)).
				Default("nope").Build()
		}},
		{"gate unknown MAT", func() (*Program, error) {
			return NewBuilder("p").Table("t", 1).
				ActionDef("a", SetOp(fields.Metadata("m", 8), 0)).
				Gate("t", "missing").Build()
		}},
		{"duplicate key", func() (*Program, error) {
			f := fields.Header("h", 8)
			return NewBuilder("p").Table("t", 1).
				Key(f, MatchExact).Key(f, MatchExact).
				ActionDef("a", SetOp(fields.Metadata("m", 8), 0)).Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Error("Build() succeeded, want error")
			}
		})
	}
}

func TestMATFieldSets(t *testing.T) {
	p := testProgram(t)
	cnt, _ := p.MAT("test/count")

	match, err := cnt.MatchFields()
	if err != nil {
		t.Fatalf("MatchFields: %v", err)
	}
	if !match.Contains("meta.idx") || match.Len() != 1 {
		t.Errorf("MatchFields = %v, want {meta.idx}", match)
	}

	mod, err := cnt.ModifiedFields()
	if err != nil {
		t.Fatalf("ModifiedFields: %v", err)
	}
	if !mod.Contains("meta.count") || mod.Len() != 1 {
		t.Errorf("ModifiedFields = %v, want {meta.count}", mod)
	}

	reads, err := cnt.ReadFields()
	if err != nil {
		t.Fatalf("ReadFields: %v", err)
	}
	// count reads the index both as match key and as counter index, and
	// reads the counter destination (read-modify-write).
	if !reads.Contains("meta.idx") || !reads.Contains("meta.count") {
		t.Errorf("ReadFields = %v, want idx and count", reads)
	}

	hash, _ := p.MAT("test/hash")
	hmod, err := hash.ModifiedFields()
	if err != nil {
		t.Fatalf("ModifiedFields(hash): %v", err)
	}
	if !hmod.Contains("meta.idx") {
		t.Errorf("hash ModifiedFields = %v, want meta.idx", hmod)
	}
}

func TestMATEquivalent(t *testing.T) {
	p1 := testProgram(t)
	p2 := testProgram(t)
	a, _ := p1.MAT("test/count")
	b, _ := p2.MAT("test/count")
	if !a.Equivalent(b) {
		t.Error("identical MATs not Equivalent")
	}
	b.Capacity++
	if a.Equivalent(b) {
		t.Error("MATs with different capacity reported Equivalent")
	}
	b.Capacity--
	b.FixedRequirement = 0.3
	if a.Equivalent(b) {
		t.Error("MATs with different FixedRequirement reported Equivalent")
	}
	c, _ := p2.MAT("test/hash")
	if a.Equivalent(c) {
		t.Error("different MATs reported Equivalent")
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := testProgram(t)
	p.MATs[1].Rules = append(p.MATs[1].Rules, Rule{
		Action:  "bump",
		Matches: map[string]Pattern{"meta.idx": {Value: 7}},
		Params:  map[string]uint64{"meta.count": 1},
	})
	c := p.Clone()
	if c.Name != p.Name || len(c.MATs) != len(p.MATs) {
		t.Fatal("clone shape mismatch")
	}
	// Mutating the clone must not affect the original.
	c.MATs[1].Rules[0].Matches["meta.idx"] = Pattern{Value: 99}
	c.MATs[1].Capacity = 1
	c.MATs[0].Actions[0].Ops[0].Imm = 42
	if p.MATs[1].Rules[0].Matches["meta.idx"].Value != 7 {
		t.Error("clone shares rule match maps with original")
	}
	if p.MATs[1].Capacity == 1 {
		t.Error("clone shares MAT struct with original")
	}
	if p.MATs[0].Actions[0].Ops[0].Imm == 42 {
		t.Error("clone shares ops with original")
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	p := testProgram(t)
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	q, err := DecodeJSON(data)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if q.Name != p.Name || len(q.MATs) != len(p.MATs) {
		t.Fatal("round trip changed shape")
	}
	for i := range p.MATs {
		if !p.MATs[i].Equivalent(q.MATs[i]) {
			t.Errorf("MAT %d not equivalent after round trip", i)
		}
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	if _, err := DecodeJSON([]byte(`{"name":"x","mats":[]}`)); err == nil {
		t.Error("DecodeJSON accepted program with no MATs")
	}
	if _, err := DecodeJSON([]byte(`{not json`)); err == nil {
		t.Error("DecodeJSON accepted malformed JSON")
	}
}

func TestControlEdgeValidation(t *testing.T) {
	p := testProgram(t)
	p.Control = append(p.Control, ControlEdge{From: "test/report", To: "test/hash"})
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted control edge against declaration order")
	}
}

func TestResourceModelRequirement(t *testing.T) {
	rm := DefaultResourceModel
	p := testProgram(t)

	hash, _ := p.MAT("test/hash")
	cnt, _ := p.MAT("test/count")
	rep, _ := p.MAT("test/report")

	rh, rc, rr := rm.Requirement(hash), rm.Requirement(cnt), rm.Requirement(rep)
	for name, r := range map[string]float64{"hash": rh, "count": rc, "report": rr} {
		if r <= 0 || r > 20 {
			t.Errorf("Requirement(%s) = %g out of sane range", name, r)
		}
	}
	if rc <= rh {
		t.Errorf("4096-entry table (%g) should cost more than 1-entry hash (%g)", rc, rh)
	}
	// Range match should pay the TCAM factor: same capacity exact table
	// must be cheaper (capacity large enough to clear the MinCost floor).
	ternary := cloneMAT(cnt)
	ternary.Keys[0].Type = MatchTernary
	if rm.Requirement(ternary) <= rc {
		t.Errorf("ternary variant (%g) should be costlier than exact (%g)", rm.Requirement(ternary), rc)
	}

	// FixedRequirement wins.
	fr := cloneMAT(rep)
	fr.FixedRequirement = 0.37
	if got := rm.Requirement(fr); got != 0.37 {
		t.Errorf("Requirement with FixedRequirement = %g, want 0.37", got)
	}

	// Minimum floor.
	tiny := cloneMAT(hash)
	tiny.Actions = []Action{{Name: "n", Ops: nil}}
	if got := rm.Requirement(tiny); got != rm.MinCost {
		t.Errorf("tiny MAT = %g, want floor %g", got, rm.MinCost)
	}
}

func TestSplitAcrossStages(t *testing.T) {
	tests := []struct {
		name     string
		req, cap float64
		want     []float64
		wantErr  bool
	}{
		{"fits one stage", 0.4, 1.0, []float64{0.4}, false},
		{"exact fit", 1.0, 1.0, []float64{1.0}, false},
		{"two and a half", 2.5, 1.0, []float64{1.0, 1.0, 0.5}, false},
		{"zero req", 0, 1, nil, true},
		{"zero cap", 1, 0, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SplitAcrossStages(tt.req, tt.cap)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("chunks = %v, want %v", got, tt.want)
			}
			sum := 0.0
			for i := range got {
				if diff := got[i] - tt.want[i]; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("chunk %d = %g, want %g", i, got[i], tt.want[i])
				}
				sum += got[i]
			}
			if diff := sum - tt.req; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("chunks sum to %g, want %g", sum, tt.req)
			}
		})
	}
}

func TestMatchTypeAndOpKindStrings(t *testing.T) {
	if MatchLPM.String() != "lpm" || MatchTernary.String() != "ternary" {
		t.Error("unexpected MatchType strings")
	}
	if OpHash.String() != "hash" || OpCount.String() != "count" {
		t.Error("unexpected OpKind strings")
	}
	if MatchType(0).Valid() || OpKind(99).Valid() {
		t.Error("invalid enum values reported valid")
	}
}

func TestOpValidate(t *testing.T) {
	m := fields.Metadata("m", 8)
	tests := []struct {
		name    string
		op      Op
		wantErr bool
	}{
		{"valid set", SetOp(m, 1), false},
		{"copy without src", Op{Kind: OpCopy, Dst: m}, true},
		{"hash without src", Op{Kind: OpHash, Dst: m}, true},
		{"count without src", Op{Kind: OpCount, Dst: m}, true},
		{"bad kind", Op{Dst: m}, true},
		{"bad dst", Op{Kind: OpSet, Dst: fields.Field{}}, true},
		{"bad src", Op{Kind: OpCopy, Dst: m, Srcs: []fields.Field{{}}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.op.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRuleValidationInMAT(t *testing.T) {
	f := fields.Header("h", 8)
	m := &MAT{
		Name:     "t",
		Capacity: 1,
		Keys:     []MatchKey{{Field: f, Type: MatchExact}},
		Actions:  []Action{{Name: "a", Ops: []Op{SetOp(fields.Metadata("m", 8), 1)}}},
	}
	m.Rules = []Rule{{Action: "nope"}}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted rule with unknown action")
	}
	m.Rules = []Rule{{Action: "a", Matches: map[string]Pattern{"zz": {}}}}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted rule matching non-key field")
	}
	m.Rules = []Rule{{Action: "a"}, {Action: "a"}}
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted rules beyond capacity")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	p1 := testProgram(t)
	p2 := testProgram(t)
	p2.Name = "other"
	for _, m := range p2.MATs {
		m.Name = "other" + m.Name[len("test"):]
	}
	data, err := EncodeBundle([]*Program{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	progs, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 || progs[0].Name != "test" || progs[1].Name != "other" {
		t.Fatalf("round trip shape wrong: %d programs", len(progs))
	}
}

func TestBundleValidation(t *testing.T) {
	if _, err := EncodeBundle([]*Program{nil}); err == nil {
		t.Error("nil program encoded")
	}
	if _, err := EncodeBundle([]*Program{{Name: "x"}}); err == nil {
		t.Error("invalid program encoded")
	}
	if _, err := DecodeBundle([]byte("{")); err == nil {
		t.Error("malformed JSON decoded")
	}
	if _, err := DecodeBundle([]byte(`{"version":1,"programs":[]}`)); err == nil {
		t.Error("empty bundle decoded")
	}
	if _, err := DecodeBundle([]byte(`{"version":9,"programs":[]}`)); err == nil {
		t.Error("future version decoded")
	}
	p := testProgram(t)
	data, err := EncodeBundle([]*Program{p, p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundle(data); err == nil {
		t.Error("duplicate program names decoded")
	}
}
