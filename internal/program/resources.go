package program

import (
	"fmt"
	"math"
)

// Resource modeling (paper §V-C). The paper collapses SRAM, TCAM and
// ALU budgets into a single normalized per-stage capacity C_res and
// derives each MAT's requirement R(a) from static code analysis of its
// properties (rule capacity C_a, match kinds, action complexity),
// citing Jose et al. [8] and dRMT [49]. We reproduce that with a simple
// cost model:
//
//	R(a) = memoryCost(C_a, width, matchType) + aluCost(actions)
//
// normalized so that a "typical" MAT (1k exact rules on a 32-bit key,
// one ALU op) costs about 0.25 of a stage — matching the paper's
// synthetic setting of 10–50 % per-stage consumption per MAT.

// DefaultResourceModel is the resource model used across experiments.
var DefaultResourceModel = ResourceModel{
	SRAMBytesPerStage: 1 << 20, // 1 MiB SRAM-equivalent per stage
	TCAMFactor:        2.5,     // ternary/LPM entries cost ~2.5x SRAM
	ALUWeight:         0.02,    // each primitive op costs 2% of a stage
	MinCost:           0.05,    // even a tiny MAT occupies wiring/crossbar
}

// ResourceModel converts MAT properties into normalized stage fractions.
type ResourceModel struct {
	// SRAMBytesPerStage is the per-stage memory capacity that maps to a
	// normalized cost of 1.0.
	SRAMBytesPerStage int
	// TCAMFactor scales memory cost for ternary/LPM/range matches.
	TCAMFactor float64
	// ALUWeight is the normalized cost of one primitive action op.
	ALUWeight float64
	// MinCost floors the requirement of any MAT.
	MinCost float64
}

// Requirement computes R(a): the total normalized resource requirement
// of the MAT, in units of per-stage capacity (C_res = 1.0).
func (rm ResourceModel) Requirement(m *MAT) float64 {
	if m.FixedRequirement > 0 {
		return m.FixedRequirement
	}
	keyBits := 0
	needsTCAM := false
	for _, k := range m.Keys {
		keyBits += k.Field.Bits
		if k.Type != MatchExact {
			needsTCAM = true
		}
	}
	// Entry width: key bits + action pointer (16) + typical action data (32).
	entryBits := keyBits + 48
	memBytes := float64(m.Capacity) * float64(entryBits) / 8
	cost := memBytes / float64(rm.SRAMBytesPerStage)
	if needsTCAM {
		cost *= rm.TCAMFactor
	}
	ops := 0
	for _, a := range m.Actions {
		ops += len(a.Ops)
	}
	cost += float64(ops) * rm.ALUWeight
	if cost < rm.MinCost {
		cost = rm.MinCost
	}
	return cost
}

// SplitAcrossStages splits a requirement R(a) into per-stage chunks of
// at most perStage each, modeling a MAT that spans consecutive stages
// (rule capacity is divided among them). It returns the chunk sizes.
func SplitAcrossStages(req, perStage float64) ([]float64, error) {
	if req <= 0 {
		return nil, fmt.Errorf("non-positive requirement %g", req)
	}
	if perStage <= 0 {
		return nil, fmt.Errorf("non-positive per-stage capacity %g", perStage)
	}
	n := int(math.Ceil(req / perStage))
	out := make([]float64, 0, n)
	rem := req
	for rem > 1e-12 {
		chunk := perStage
		if rem < chunk {
			chunk = rem
		}
		out = append(out, chunk)
		rem -= chunk
	}
	return out, nil
}
