package network

import (
	"fmt"
	"strings"
	"testing"
)

// partitionFixtures builds the seeded inputs the satellite test list
// names: a fat-tree, a composite WAN, and a Table III WAN.
func partitionFixtures(t *testing.T) []*Topology {
	t.Helper()
	ft, err := FatTree(8, TofinoSpec(), 7)
	if err != nil {
		t.Fatalf("FatTree: %v", err)
	}
	cw, err := CompositeWAN(4, TofinoSpec(), 11)
	if err != nil {
		t.Fatalf("CompositeWAN: %v", err)
	}
	t3, err := TableIII(2, TofinoSpec())
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	return []*Topology{ft, cw, t3}
}

// TestPartitionProperties asserts the core invariants on every fixture
// and a spread of region counts: exact cover, connected regions,
// capacity balance, and determinism in the seed.
func TestPartitionProperties(t *testing.T) {
	for _, topo := range partitionFixtures(t) {
		for _, k := range []int{2, 3, 4, 6} {
			p, err := PartitionRegions(topo, k, 42)
			if err != nil {
				t.Fatalf("%s k=%d: %v", topo.Name, k, err)
			}
			if p.NumRegions() != k {
				t.Fatalf("%s: got %d regions, want %d", topo.Name, p.NumRegions(), k)
			}
			// Exact cover + connectivity are what Validate checks; call it
			// explicitly so a future Validate regression fails loudly here.
			if err := p.Validate(); err != nil {
				t.Fatalf("%s k=%d: Validate: %v", topo.Name, k, err)
			}
			seen := map[SwitchID]bool{}
			for r := 0; r < k; r++ {
				for _, id := range p.Region(r) {
					if seen[id] {
						t.Fatalf("%s k=%d: switch %d covered twice", topo.Name, k, id)
					}
					seen[id] = true
					if p.RegionOf(id) != r {
						t.Fatalf("%s k=%d: RegionOf(%d)=%d, want %d", topo.Name, k, id, p.RegionOf(id), r)
					}
				}
			}
			if len(seen) != topo.NumSwitches() {
				t.Fatalf("%s k=%d: covered %d of %d switches", topo.Name, k, len(seen), topo.NumSwitches())
			}
			// Capacity balance: every region within the default tolerance
			// band around the mean (plus one-switch granularity, since a
			// region cannot shed part of a switch).
			var total, maxSwitch float64
			for _, s := range topo.Switches() {
				c := s.Capacity()
				total += c
				if c > maxSwitch {
					maxSwitch = c
				}
			}
			mean := total / float64(k)
			for r := 0; r < k; r++ {
				c := p.RegionCapacity(r)
				if c < mean*0.5-maxSwitch || c > mean*1.5+maxSwitch {
					t.Errorf("%s k=%d: region %d capacity %.1f outside tolerance of mean %.1f",
						topo.Name, k, r, c, mean)
				}
			}
			// Determinism: same seed, same partition; the text form is the
			// canonical witness.
			p2, err := PartitionRegions(topo, k, 42)
			if err != nil {
				t.Fatalf("%s k=%d re-run: %v", topo.Name, k, err)
			}
			if p.Format() != p2.Format() {
				t.Fatalf("%s k=%d: partition not deterministic in seed", topo.Name, k)
			}
		}
	}
}

// TestPartitionRoundTrip asserts Format/ParsePartition is lossless on
// every fixture.
func TestPartitionRoundTrip(t *testing.T) {
	for _, topo := range partitionFixtures(t) {
		p, err := PartitionRegions(topo, 3, 9)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		text := p.Format()
		q, err := ParsePartition(text, topo)
		if err != nil {
			t.Fatalf("%s: ParsePartition: %v", topo.Name, err)
		}
		if q.Format() != text {
			t.Fatalf("%s: round trip changed partition:\n%s\nvs\n%s", topo.Name, text, q.Format())
		}
		if q.Seed() != p.Seed() || q.NumRegions() != p.NumRegions() {
			t.Fatalf("%s: round trip lost header fields", topo.Name)
		}
	}
}

// TestPartitionParseRejects exercises the malformed-input paths.
func TestPartitionParseRejects(t *testing.T) {
	topo, err := TableIII(1, TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionRegions(topo, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := p.Format()
	// A switch that belongs to region 1, re-listed inside region 0, must
	// trip the duplicate-ID check.
	dup := p.Region(1)[0]
	cases := map[string]string{
		"wrong topology":   strings.Replace(good, "topology tableIII-1", "topology other", 1),
		"bad region idx":   strings.Replace(good, "region 1:", "region 7:", 1),
		"unknown switch":   strings.Replace(good, "region 0:", "region 0: 9999", 1),
		"duplicate switch": strings.Replace(good, "region 0:", fmt.Sprintf("region 0: %d", dup), 1),
		"missing switch":   strings.Replace(good, " 1 ", " ", 1),
		"garbage line":     good + "wat\n",
		"region mismatch":  strings.Replace(good, "regions 2", "regions 3", 1),
		"zero regions":     strings.Replace(good, "regions 2", "regions 0", 1),
		"dup topology":     good + "topology tableIII-1\n",
		"dup regions":      good + "regions 2\n",
		"no topology":      strings.Replace(good, "topology tableIII-1\n", "", 1),
	}
	for name, text := range cases {
		if _, err := ParsePartition(text, topo); err == nil {
			t.Errorf("%s: ParsePartition accepted malformed input", name)
		}
	}
}

// TestPartitionMinCutRefinement is the KL-swap property test: with
// MinCutPasses enabled the partition must keep every core invariant
// (exact cover, connected regions — Validate), never increase the
// boundary cut versus the unrefined partition, keep region capacities
// inside the tolerance band (one-switch granularity), and stay
// deterministic in (topo, options). MinCutPasses 0 must stay
// byte-identical to the pre-knob output.
func TestPartitionMinCutRefinement(t *testing.T) {
	for _, topo := range partitionFixtures(t) {
		for _, k := range []int{2, 3, 4} {
			base, err := PartitionTopology(topo, PartitionOptions{Regions: k, Seed: 42})
			if err != nil {
				t.Fatalf("%s k=%d: %v", topo.Name, k, err)
			}
			zero, err := PartitionTopology(topo, PartitionOptions{Regions: k, Seed: 42, MinCutPasses: 0})
			if err != nil {
				t.Fatal(err)
			}
			if zero.Format() != base.Format() {
				t.Fatalf("%s k=%d: MinCutPasses=0 changed the partition", topo.Name, k)
			}
			refined, err := PartitionTopology(topo, PartitionOptions{Regions: k, Seed: 42, MinCutPasses: 2})
			if err != nil {
				t.Fatalf("%s k=%d refine: %v", topo.Name, k, err)
			}
			if err := refined.Validate(); err != nil {
				t.Fatalf("%s k=%d: refined partition invalid: %v", topo.Name, k, err)
			}
			if b, r := len(base.BoundaryLinks()), len(refined.BoundaryLinks()); r > b {
				t.Fatalf("%s k=%d: min-cut pass grew the cut: %d -> %d", topo.Name, k, b, r)
			}
			var total, maxSwitch float64
			for _, s := range topo.Switches() {
				c := s.Capacity()
				total += c
				if c > maxSwitch {
					maxSwitch = c
				}
			}
			mean := total / float64(k)
			for r := 0; r < k; r++ {
				c := refined.RegionCapacity(r)
				if c < mean*0.5-maxSwitch || c > mean*1.5+maxSwitch {
					t.Errorf("%s k=%d: refined region %d capacity %.1f outside tolerance of mean %.1f",
						topo.Name, k, r, c, mean)
				}
			}
			again, err := PartitionTopology(topo, PartitionOptions{Regions: k, Seed: 42, MinCutPasses: 2})
			if err != nil {
				t.Fatal(err)
			}
			if refined.Format() != again.Format() {
				t.Fatalf("%s k=%d: min-cut refinement not deterministic", topo.Name, k)
			}
		}
	}
}

// TestPartitionBoundary checks boundary bookkeeping: every boundary
// link actually crosses regions, AdjacentRegions matches, and the
// refinement never leaves a trivially movable switch (a switch with all
// its links into one other region and none into its own would always
// reduce the cut, so none may remain when balance allows the move).
func TestPartitionBoundary(t *testing.T) {
	topo, err := CompositeWAN(3, TofinoSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionRegions(topo, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	adj := map[[2]int]bool{}
	for _, l := range p.BoundaryLinks() {
		a, b := p.RegionOf(l.A), p.RegionOf(l.B)
		if a == b {
			t.Fatalf("link %d-%d listed as boundary within region %d", l.A, l.B, a)
		}
		if a > b {
			a, b = b, a
		}
		adj[[2]int{a, b}] = true
	}
	pairs := p.AdjacentRegions()
	if len(pairs) != len(adj) {
		t.Fatalf("AdjacentRegions lists %d pairs, boundary links imply %d", len(pairs), len(adj))
	}
	for _, pr := range pairs {
		if !adj[pr] {
			t.Fatalf("AdjacentRegions lists non-adjacent pair %v", pr)
		}
	}
}

// TestPartitionSubTopology checks the region carve-out: connected,
// right members, and a cold, region-local path cache (the lazy-latency
// guarantee the sharded solver builds on — carving regions must not
// touch the parent's oracle or build any dense table).
func TestPartitionSubTopology(t *testing.T) {
	topo, err := CompositeWAN(3, TofinoSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	before := topo.PathCacheStats()
	p, err := PartitionRegions(topo, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p.NumRegions(); r++ {
		sub, members, err := p.SubTopology(r)
		if err != nil {
			t.Fatalf("region %d: %v", r, err)
		}
		if sub.NumSwitches() != len(members) || len(members) != len(p.Region(r)) {
			t.Fatalf("region %d: member count mismatch", r)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("region %d: sub-topology invalid: %v", r, err)
		}
		for lid, gid := range members {
			ls, err := sub.Switch(SwitchID(lid))
			if err != nil {
				t.Fatalf("region %d: %v", r, err)
			}
			gs, err := topo.Switch(gid)
			if err != nil {
				t.Fatalf("region %d: %v", r, err)
			}
			if ls.Name != gs.Name || ls.Programmable != gs.Programmable || ls.Capacity() != gs.Capacity() {
				t.Fatalf("region %d: switch %d trait mismatch", r, lid)
			}
		}
		// Fresh cache: the sub-topology has answered nothing yet.
		if s := sub.PathCacheStats(); s.Hits != 0 || s.Misses != 0 {
			t.Fatalf("region %d: sub-topology cache not cold: %+v", r, s)
		}
	}
	// Partitioning + carving must not have run a single parent query —
	// in particular not the parent's dense S×S latency table.
	after := topo.PathCacheStats()
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("partitioning touched the parent path oracle: %+v -> %+v", before, after)
	}
}

// TestSubgraphFaultOverlay: down switches and links survive the carve
// with their local IDs.
func TestSubgraphFaultOverlay(t *testing.T) {
	topo, err := TableIII(1, TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetSwitchDown(3); err != nil {
		t.Fatal(err)
	}
	members := []SwitchID{2, 3, 5}
	sub, err := topo.Subgraph("sub", members)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.SwitchIsDown(1) { // local ID of global 3
		t.Fatal("down switch lost in subgraph")
	}
	if sub.SwitchIsDown(0) || sub.SwitchIsDown(2) {
		t.Fatal("up switch marked down in subgraph")
	}
	if _, err := topo.Subgraph("dup", []SwitchID{1, 1}); err == nil {
		t.Fatal("Subgraph accepted duplicate member")
	}
	if _, err := topo.Subgraph("bad", []SwitchID{9999}); err == nil {
		t.Fatal("Subgraph accepted unknown member")
	}
}
