package network

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func trafficTopo(t *testing.T, n int) *Topology {
	t.Helper()
	tp, err := Linear(n, TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func wanTopo(t *testing.T) *Topology {
	t.Helper()
	tp, err := RandomWAN("wan24", 24, 40, TofinoSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestGenerateTrafficDeterministic(t *testing.T) {
	tp := wanTopo(t)
	for _, model := range TrafficModels() {
		a, err := GenerateTraffic(tp, model, 11)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		b, err := GenerateTraffic(tp, model, 11)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Demands, b.Demands) {
			t.Errorf("%s: same (topology, seed) produced different demands", model)
		}
	}
	// The seeded models must actually consume the seed.
	for _, model := range []string{TrafficGravity, TrafficElephants} {
		a, _ := GenerateTraffic(tp, model, 11)
		b, _ := GenerateTraffic(tp, model, 12)
		if reflect.DeepEqual(a.Demands, b.Demands) {
			t.Errorf("%s: seeds 11 and 12 produced identical demands", model)
		}
	}
}

func TestGenerateTrafficModelsValid(t *testing.T) {
	tp := wanTopo(t)
	for _, model := range TrafficModels() {
		tm, err := GenerateTraffic(tp, model, 3)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if err := tm.Validate(tp); err != nil {
			t.Fatalf("%s: generated matrix invalid: %v", model, err)
		}
		if len(tm.Demands) == 0 {
			t.Fatalf("%s: no demands", model)
		}
		for i, d := range tm.Demands {
			if !(d.Rate > 0) || math.IsInf(d.Rate, 0) {
				t.Fatalf("%s: demand %d has rate %g", model, i, d.Rate)
			}
			if i > 0 {
				p := tm.Demands[i-1]
				if p.Src > d.Src || (p.Src == d.Src && p.Dst >= d.Dst) {
					t.Fatalf("%s: demands not sorted/deduped at %d: %+v then %+v", model, i, p, d)
				}
			}
		}
	}
	if _, err := GenerateTraffic(tp, "tide", 1); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := GenerateTraffic(trafficTopo(t, 1), TrafficUniform, 1); err == nil {
		t.Error("single-switch topology accepted")
	}
}

func TestHotspotSkew(t *testing.T) {
	tm, err := GenerateTraffic(wanTopo(t), TrafficHotspot, 5)
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), 0.0
	for _, d := range tm.Demands {
		min = math.Min(min, d.Rate)
		max = math.Max(max, d.Rate)
	}
	if max < 64*min {
		t.Errorf("hotspot skew max/min = %g, want >= 64", max/min)
	}
}

func TestElephantsSkew(t *testing.T) {
	tm, err := GenerateTraffic(wanTopo(t), TrafficElephants, 5)
	if err != nil {
		t.Fatal(err)
	}
	perSrcTotal := map[SwitchID]float64{}
	perSrcMax := map[SwitchID]float64{}
	for _, d := range tm.Demands {
		perSrcTotal[d.Src] += d.Rate
		perSrcMax[d.Src] = math.Max(perSrcMax[d.Src], d.Rate)
	}
	for src, total := range perSrcTotal {
		if perSrcMax[src] < 0.9*total {
			t.Errorf("source %d: largest demand carries %g of %g (< 90%%)", src, perSrcMax[src], total)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tp := wanTopo(t)
	for _, model := range TrafficModels() {
		tm, err := GenerateTraffic(tp, model, 9)
		if err != nil {
			t.Fatal(err)
		}
		text, err := tm.Format()
		if err != nil {
			t.Fatalf("%s: Format: %v", model, err)
		}
		back, err := ParseTraffic(text, tp)
		if err != nil {
			t.Fatalf("%s: ParseTraffic: %v", model, err)
		}
		if back.Topology != tm.Topology || back.Model != tm.Model || back.Seed != tm.Seed || back.S != tm.S {
			t.Errorf("%s: header drifted: got (%s %s %d %d), want (%s %s %d %d)",
				model, back.Topology, back.Model, back.Seed, back.S, tm.Topology, tm.Model, tm.Seed, tm.S)
		}
		if !reflect.DeepEqual(back.Demands, tm.Demands) {
			t.Errorf("%s: demands did not round-trip exactly", model)
		}
	}
}

func TestParseTrafficErrors(t *testing.T) {
	tp := trafficTopo(t, 4)
	cases := []struct {
		name, text string
	}{
		{"missing switches", "0 1 2.5\n"},
		{"no demands", "switches 4\n"},
		{"bad arity", "switches 4\n0 1\n"},
		{"bad src", "switches 4\nx 1 2\n"},
		{"bad dst", "switches 4\n0 y 2\n"},
		{"bad rate", "switches 4\n0 1 fast\n"},
		{"bad seed line", "seed seven\nswitches 4\n0 1 2\n"},
		{"bad switches line", "switches none\n0 1 2\n"},
		{"switch mismatch", "switches 5\n0 1 2\n"},
		{"out of range", "switches 4\n0 9 2\n"},
		{"negative endpoint", "switches 4\n-1 2 2\n"},
		{"equal endpoints", "switches 4\n2 2 2\n"},
		{"zero rate", "switches 4\n0 1 0\n"},
		{"negative rate", "switches 4\n0 1 -3\n"},
		{"nan rate", "switches 4\n0 1 NaN\n"},
		{"inf rate", "switches 4\n0 1 +Inf\n"},
	}
	for _, c := range cases {
		if _, err := ParseTraffic(c.text, tp); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.text)
		}
	}
}

func TestParseTrafficMergesDuplicates(t *testing.T) {
	tp := trafficTopo(t, 4)
	tm, err := ParseTraffic("switches 4\n2 1 0.5\n0 1 1.5\n0 1 1\n", tp)
	if err != nil {
		t.Fatal(err)
	}
	want := []Demand{{Src: 0, Dst: 1, Rate: 2.5}, {Src: 2, Dst: 1, Rate: 0.5}}
	if !reflect.DeepEqual(tm.Demands, want) {
		t.Fatalf("got %+v, want %+v", tm.Demands, want)
	}
	if tm.Model != "custom" {
		t.Errorf("default model = %q, want custom", tm.Model)
	}
}

func TestParseTrafficSpec(t *testing.T) {
	tp := trafficTopo(t, 6)
	got, err := ParseTrafficSpec("gravity:7", tp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GenerateTraffic(tp, TrafficGravity, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Demands, want.Demands) {
		t.Error("gravity:7 spec diverged from GenerateTraffic(gravity, 7)")
	}
	def, err := ParseTrafficSpec("uniform", tp)
	if err != nil {
		t.Fatal(err)
	}
	if def.Seed != 1 {
		t.Errorf("default seed = %d, want 1", def.Seed)
	}
	if _, err := ParseTrafficSpec("gravity:soon", tp); err == nil {
		t.Error("bad seed accepted")
	}
	if _, err := ParseTrafficSpec("tide:3", tp); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestPairRatesPathProjection pins the semantics on a 3-switch line:
// one 0→2 demand loads every ordered pair its path visits, in path
// order only.
func TestPairRatesPathProjection(t *testing.T) {
	tp := trafficTopo(t, 3)
	tm := &TrafficMatrix{Topology: tp.Name, Model: "custom", S: 3,
		Demands: []Demand{{Src: 0, Dst: 2, Rate: 5}}}
	rates, err := tm.PairRates(tp)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0*3 + 1: 5, 0*3 + 2: 5, 1*3 + 2: 5}
	for i, r := range rates {
		if r != want[i] {
			t.Errorf("rates[%d->%d] = %g, want %g", i/3, i%3, r, want[i])
		}
	}
}

func TestPairRatesMemoized(t *testing.T) {
	tp := trafficTopo(t, 5)
	tm, err := GenerateTraffic(tp, TrafficGravity, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tm.PairRates(tp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tm.PairRates(tp)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("repeated PairRates on one topology recomputed the table")
	}
}

func TestRestrict(t *testing.T) {
	tp := trafficTopo(t, 5)
	tm, err := GenerateTraffic(tp, TrafficGravity, 4)
	if err != nil {
		t.Fatal(err)
	}
	global, err := tm.PairRates(tp)
	if err != nil {
		t.Fatal(err)
	}
	members := []SwitchID{4, 1}
	sub, err := tm.Restrict(tp, members)
	if err != nil {
		t.Fatal(err)
	}
	if sub.S != 2 || sub.Model != "restricted" {
		t.Fatalf("restricted shape: S=%d model=%q", sub.S, sub.Model)
	}
	// The compacted table must be read through a same-sized topology.
	rates, err := sub.PairRates(trafficTopo(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, gi := range members {
		for j, gj := range members {
			if i == j {
				continue
			}
			if got, want := rates[i*2+j], global[int(gi)*5+int(gj)]; got != want {
				t.Errorf("restricted[%d->%d] = %g, want global[%d->%d] = %g", i, j, got, gi, gj, want)
			}
		}
	}
	if _, err := sub.Format(); err == nil {
		t.Error("restricted matrix formatted")
	}
	if _, err := sub.PairRates(tp); err == nil {
		t.Error("restricted matrix accepted a 5-switch topology")
	}
}

// FuzzParseTraffic drives the text parser with mutated matrices: it
// must never panic, never accept an invalid matrix, and every accepted
// matrix must survive a Format/Parse round trip unchanged.
func FuzzParseTraffic(f *testing.F) {
	tp, err := Linear(6, TofinoSpec())
	if err != nil {
		f.Fatal(err)
	}
	for _, model := range TrafficModels() {
		tm, err := GenerateTraffic(tp, model, 13)
		if err != nil {
			f.Fatal(err)
		}
		text, err := tm.Format()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(text)
	}
	f.Add("switches 6\n0 1 2.5\n")
	f.Add("# comment\ntopology wan\nmodel custom\nseed -3\nswitches 6\n5 0 1e-9\n")
	f.Add("switches 6\n0 1 NaN\n")
	f.Add("switches 2\n0 1 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		tm, err := ParseTraffic(text, tp)
		if err != nil {
			return
		}
		if err := tm.Validate(tp); err != nil {
			t.Fatalf("accepted matrix fails Validate: %v\ninput: %q", err, text)
		}
		out, err := tm.Format()
		if err != nil {
			t.Fatalf("accepted matrix cannot Format: %v", err)
		}
		back, err := ParseTraffic(out, tp)
		if err != nil {
			t.Fatalf("formatted matrix does not re-parse: %v\n%s", err, out)
		}
		if back.S != tm.S || !reflect.DeepEqual(back.Demands, tm.Demands) {
			t.Fatalf("round trip drifted:\nfirst:  %+v\nsecond: %+v\ninput: %q", tm.Demands, back.Demands, text)
		}
		if strings.Contains(out, "\x00") {
			t.Fatalf("format emitted a NUL byte")
		}
	})
}
