package network

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func pathsEqual(a, b Path) bool {
	return a.Latency == b.Latency && reflect.DeepEqual(a.Switches, b.Switches)
}

func TestOracleHitMissAccounting(t *testing.T) {
	tp := diamond(t)
	if s := tp.PathCacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("fresh topology stats = %+v, want zero", s)
	}
	if _, err := tp.ShortestPath(0, 4); err != nil {
		t.Fatal(err)
	}
	s := tp.PathCacheStats()
	if s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first query stats = %+v, want 1 miss", s)
	}
	// Same source, different destination: served by the same SSSP tree.
	if _, err := tp.ShortestPath(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.ShortestPath(0, 4); err != nil {
		t.Fatal(err)
	}
	s = tp.PathCacheStats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("after repeat queries stats = %+v, want 1 miss / 2 hits", s)
	}
}

func TestOracleInvalidation(t *testing.T) {
	tp := diamond(t)
	p1, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 0-1-3 costs 2ms in links; a direct 0-3 link at 100µs must win,
	// which only happens if AddLink drops the cached tree.
	if err := tp.AddLink(0, 3, 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if s := tp.PathCacheStats(); s.Invalidations == 0 {
		t.Fatal("AddLink did not invalidate the cache")
	}
	p2, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Switches) != 2 || p2.Latency >= p1.Latency {
		t.Fatalf("post-AddLink path = %v (was %v), want direct 0-3", p2, p1)
	}

	// AddSwitch likewise invalidates (the new switch is reachable only
	// if fresh trees are computed).
	before := tp.PathCacheStats().Invalidations
	id := tp.AddSwitch(Switch{Programmable: true, Stages: 12, StageCapacity: 1, TransitLatency: time.Microsecond})
	if tp.PathCacheStats().Invalidations == before {
		t.Fatal("AddSwitch did not invalidate the cache")
	}
	if err := tp.AddLink(4, id, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.ShortestPath(0, id); err != nil {
		t.Fatalf("path to new switch: %v", err)
	}
}

func TestOracleCloneIndependence(t *testing.T) {
	tp := diamond(t)
	if _, err := tp.ShortestPath(0, 4); err != nil {
		t.Fatal(err)
	}
	cl := tp.Clone()
	if s := cl.PathCacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("clone inherited cache stats %+v, want fresh", s)
	}
	// Mutating the clone must not disturb the original's cache.
	if err := cl.AddLink(0, 3, time.Microsecond); err != nil {
		t.Fatal(err)
	}
	p, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := []SwitchID{0, 1, 3}; !reflect.DeepEqual(p.Switches, want) {
		t.Fatalf("original path changed to %v after clone mutation", p.Switches)
	}
	cp, err := cl.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Switches) != 2 {
		t.Fatalf("clone path = %v, want direct shortcut", cp.Switches)
	}
}

// TestOracleMatchesUncached checks every cached answer against the
// uncached Dijkstra the oracle replaced.
func TestOracleMatchesUncached(t *testing.T) {
	tp, err := RandomWAN("wan", 30, 60, TofinoSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	n := SwitchID(tp.NumSwitches())
	for src := SwitchID(0); src < n; src++ {
		for dst := SwitchID(0); dst < n; dst++ {
			if src == dst {
				continue
			}
			got, gerr := tp.ShortestPath(src, dst)
			want, werr := tp.shortestPathAvoiding(src, dst, nil, nil)
			if (gerr != nil) != (werr != nil) {
				t.Fatalf("%d->%d: cached err %v, uncached err %v", src, dst, gerr, werr)
			}
			if gerr == nil && got.Latency != want.Latency {
				t.Fatalf("%d->%d: cached latency %v, uncached %v", src, dst, got.Latency, want.Latency)
			}
		}
	}
}

func TestOracleKShortestPrefix(t *testing.T) {
	tp := diamond(t)
	p4, err := tp.KShortestPaths(0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tp.KShortestPaths(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) > len(p4) {
		t.Fatalf("k=2 returned %d paths, k=4 returned %d", len(p2), len(p4))
	}
	for i := range p2 {
		if !pathsEqual(p2[i], p4[i]) {
			t.Fatalf("path %d differs between k=2 and k=4: %v vs %v", i, p2[i], p4[i])
		}
	}
	// Returned slices are defensive copies: corrupting one must not leak
	// into later queries.
	p2[0].Switches[0] = 99
	again, err := tp.KShortestPaths(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Switches[0] != 0 {
		t.Fatal("cache returned aliased path slice")
	}
}

func TestOracleNearestProgrammableCached(t *testing.T) {
	tp := diamond(t)
	first, err := tp.NearestProgrammable(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tp.NearestProgrammable(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached NearestProgrammable differs: %v vs %v", first, second)
	}
	limited, err := tp.NearestProgrammable(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(limited, first[:2]) {
		t.Fatalf("limit=2 = %v, want prefix of %v", limited, first)
	}
}

// TestOracleConcurrentReaders hammers one topology from many
// goroutines; run with -race this doubles as the data-race check for
// the read path.
func TestOracleConcurrentReaders(t *testing.T) {
	tp, err := RandomWAN("wan", 20, 40, TofinoSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	n := SwitchID(tp.NumSwitches())
	ref, err := tp.ShortestPath(0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := SwitchID((w + i) % int(n))
				dst := SwitchID((w * 7) % int(n))
				if src != dst {
					if _, err := tp.ShortestPath(src, dst); err != nil {
						t.Errorf("ShortestPath(%d,%d): %v", src, dst, err)
						return
					}
				}
				if _, err := tp.KShortestPaths(0, n-1, 1+i%3); err != nil {
					t.Errorf("KShortestPaths: %v", err)
					return
				}
				if _, err := tp.NearestProgrammable(src, 4, 0); err != nil {
					t.Errorf("NearestProgrammable: %v", err)
					return
				}
				got, err := tp.ShortestPath(0, n-1)
				if err != nil || !pathsEqual(got, ref) {
					t.Errorf("concurrent ShortestPath(0,%d) = %v, %v; want %v", n-1, got, err, ref)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestChainLatency(t *testing.T) {
	tp := diamond(t)
	lat, err := tp.ChainLatency([]SwitchID{0, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tp.ShortestPath(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := a.Latency + b.Latency; lat != want {
		t.Fatalf("ChainLatency = %v, want %v", lat, want)
	}
	if _, err := tp.ChainLatency([]SwitchID{0}); err != nil {
		t.Fatalf("single-element chain: %v", err)
	}
}
