// Topology partitioner: deterministic, seeded decomposition of a
// switch graph into connected regions balanced by programmable stage
// capacity. The region-sharded solver (internal/placement/shard) uses
// one region per shard, solves each on its Subgraph, and reconciles
// the boundary; everything here is therefore deterministic in (topo,
// options) so a partition can be recomputed, diffed, or shipped as
// text between runs.
//
// The algorithm is a classic three-phase graph-growing partitioner:
//
//  1. Seeding: the first seed is drawn from the seeded RNG among
//     programmable switches ("geography" start); each further seed is
//     the switch with maximum hop distance to every existing seed
//     (farthest-point/BFS seeding, ties to the smallest ID), which
//     spreads regions across the diameter.
//  2. Growing: multi-source BFS where the region with the least
//     accumulated programmable capacity claims the next switch from
//     its frontier (closest by hops, then smallest ID). Least-capacity-
//     first is what balances regions by C_stage·C_res rather than by
//     switch count.
//  3. Refinement: bounded boundary sweeps in the Kernighan–Lin spirit —
//     a boundary switch moves to a neighboring region when that
//     strictly reduces the number of cut links while keeping its old
//     region connected, nonempty, and both regions inside the balance
//     tolerance.
package network

import (
	"bufio"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// PartitionOptions configures PartitionTopology.
type PartitionOptions struct {
	// Regions is the number of regions k (required, 1 ≤ k ≤ switches).
	Regions int
	// Seed drives the first-seed draw; everything downstream is
	// deterministic in it.
	Seed int64
	// Tolerance bounds the per-region programmable-capacity deviation
	// from the mean during refinement: a move may not push a region
	// outside [mean·(1−Tolerance), mean·(1+Tolerance)]. Zero means the
	// default 0.5. Growing balances greedily on its own; the tolerance
	// only constrains how far refinement may trade balance for cut.
	Tolerance float64
	// RefinePasses bounds the boundary-refinement sweeps. Zero means
	// the default 2; negative disables refinement.
	RefinePasses int
	// MinCutPasses bounds the Kernighan–Lin-style boundary-swap sweeps
	// that run after the single-move refinement: a pair of switches on
	// opposite sides of a cut swap regions when that strictly reduces
	// the number of cut links while both regions stay connected and
	// within the balance tolerance. Swaps move capacity both ways at
	// once, so they escape the balance-blocked minima single moves
	// cannot (skewed topologies otherwise leave hot TDG edges on the
	// boundary). Zero disables the pass (the default — existing
	// partitions stay byte-identical); negative also disables.
	MinCutPasses int
}

func (o PartitionOptions) tolerance() float64 {
	if o.Tolerance <= 0 {
		return 0.5
	}
	return o.Tolerance
}

func (o PartitionOptions) refinePasses() int {
	if o.RefinePasses == 0 {
		return 2
	}
	if o.RefinePasses < 0 {
		return 0
	}
	return o.RefinePasses
}

// Partition is a disjoint cover of a topology's switches by connected
// regions. It is immutable after construction.
type Partition struct {
	topo     *Topology
	seed     int64
	regions  [][]SwitchID // sorted ascending within each region
	regionOf []int32      // switch ID → region index
}

// PartitionRegions partitions t into k connected regions with default
// tolerance and refinement (see PartitionTopology).
func PartitionRegions(t *Topology, k int, seed int64) (*Partition, error) {
	return PartitionTopology(t, PartitionOptions{Regions: k, Seed: seed})
}

// PartitionTopology partitions t into opts.Regions connected regions
// balanced by programmable stage capacity, minimizing boundary links.
// The result is deterministic in (t, opts).
func PartitionTopology(t *Topology, opts PartitionOptions) (*Partition, error) {
	n := t.NumSwitches()
	k := opts.Regions
	if k < 1 {
		return nil, fmt.Errorf("network: partition needs at least 1 region, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("network: cannot cut %d switches into %d regions", n, k)
	}
	if !t.Connected() {
		return nil, fmt.Errorf("network: cannot partition disconnected topology %q", t.Name)
	}
	regionOf := make([]int32, n)
	for i := range regionOf {
		regionOf[i] = -1
	}
	if k == 1 {
		for i := range regionOf {
			regionOf[i] = 0
		}
	} else {
		seeds := partitionSeeds(t, k, opts.Seed)
		growRegions(t, seeds, regionOf)
		refineRegions(t, regionOf, k, opts.tolerance(), opts.refinePasses())
		if opts.MinCutPasses > 0 {
			swapRefineRegions(t, regionOf, k, opts.tolerance(), opts.MinCutPasses)
		}
	}
	p := &Partition{topo: t, seed: opts.Seed, regionOf: regionOf, regions: make([][]SwitchID, k)}
	for id, r := range regionOf {
		p.regions[r] = append(p.regions[r], SwitchID(id))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// partitionSeeds picks k spread-out seeds: one seeded random
// programmable start, then farthest-point iteration on hop distance.
func partitionSeeds(t *Topology, k int, seed int64) []SwitchID {
	rng := rand.New(rand.NewSource(seed))
	cands := t.ProgrammableSwitches()
	if len(cands) == 0 {
		for i := 0; i < t.NumSwitches(); i++ {
			cands = append(cands, SwitchID(i))
		}
	}
	seeds := []SwitchID{cands[rng.Intn(len(cands))]}
	n := t.NumSwitches()
	// minDist[v] = hop distance from v to the nearest seed so far.
	minDist := make([]int, n)
	for i := range minDist {
		minDist[i] = -1
	}
	relax := func(src SwitchID) {
		q := []SwitchID{src}
		minDist[src] = 0
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			for _, e := range t.adj[u] {
				d := minDist[u] + 1
				if minDist[e.to] < 0 || d < minDist[e.to] {
					minDist[e.to] = d
					q = append(q, e.to)
				}
			}
		}
	}
	relax(seeds[0])
	taken := map[SwitchID]bool{seeds[0]: true}
	for len(seeds) < k {
		best := SwitchID(-1)
		bestDist := -1
		for v := 0; v < n; v++ {
			if taken[SwitchID(v)] {
				continue
			}
			if minDist[v] > bestDist {
				bestDist = minDist[v]
				best = SwitchID(v)
			}
		}
		seeds = append(seeds, best)
		taken[best] = true
		relax(best)
	}
	return seeds
}

// frontierItem is one candidate switch in a region's BFS frontier.
type frontierItem struct {
	dist int // hop distance from the region seed at push time
	id   SwitchID
}

type frontierHeap []frontierItem

func frontierLess(a, b frontierItem) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.id < b.id)
}

func (h *frontierHeap) push(it frontierItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !frontierLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *frontierHeap) pop() frontierItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && frontierLess(s[l], s[min]) {
			min = l
		}
		if r < n && frontierLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// growRegions runs the capacity-balanced multi-source BFS. Each
// iteration the region with the least accumulated programmable
// capacity (ties: fewest switches, then lowest index) that still has a
// non-exhausted frontier claims its closest unassigned switch.
func growRegions(t *Topology, seeds []SwitchID, regionOf []int32) {
	k := len(seeds)
	fronts := make([]frontierHeap, k)
	caps := make([]float64, k)
	sizes := make([]int, k)
	assigned := 0
	claim := func(r int, id SwitchID, dist int) {
		regionOf[id] = int32(r)
		caps[r] += t.switches[id].Capacity()
		sizes[r]++
		assigned++
		for _, e := range t.adj[id] {
			if regionOf[e.to] < 0 {
				fronts[r].push(frontierItem{dist: dist + 1, id: e.to})
			}
		}
	}
	for r, s := range seeds {
		claim(r, s, 0)
	}
	n := t.NumSwitches()
	for assigned < n {
		// Pick the neediest region with a live frontier.
		best := -1
		for r := 0; r < k; r++ {
			if len(fronts[r]) == 0 {
				continue
			}
			if best < 0 || caps[r] < caps[best] ||
				(caps[r] == caps[best] && (sizes[r] < sizes[best] || (sizes[r] == sizes[best] && r < best))) {
				best = r
			}
		}
		if best < 0 {
			// Cannot happen on a connected graph: any unassigned switch
			// adjacent to an assigned one sits in some frontier. Guard
			// against future generator bugs all the same.
			panic("network: partition growth stalled with unassigned switches")
		}
		// Drain stale entries (already claimed by another region).
		for len(fronts[best]) > 0 {
			it := fronts[best].pop()
			if regionOf[it.id] >= 0 {
				continue
			}
			claim(best, it.id, it.dist)
			break
		}
	}
}

// refineRegions runs bounded boundary sweeps: each switch (ID order)
// may move to the neighboring region that most reduces the cut, when
// the move keeps its old region connected and nonempty and both
// regions' programmable capacity within tolerance of the mean.
func refineRegions(t *Topology, regionOf []int32, k int, tol float64, passes int) {
	if passes <= 0 {
		return
	}
	n := t.NumSwitches()
	caps := make([]float64, k)
	sizes := make([]int, k)
	total := 0.0
	for id := 0; id < n; id++ {
		r := regionOf[id]
		c := t.switches[id].Capacity()
		caps[r] += c
		sizes[r]++
		total += c
	}
	mean := total / float64(k)
	lo, hi := mean*(1-tol), mean*(1+tol)
	edgeCount := make(map[int32]int, 8)
	for pass := 0; pass < passes; pass++ {
		moved := false
		for id := 0; id < n; id++ {
			a := regionOf[id]
			if sizes[a] <= 1 {
				continue
			}
			for r := range edgeCount {
				delete(edgeCount, r)
			}
			boundary := false
			for _, e := range t.adj[id] {
				r := regionOf[e.to]
				edgeCount[r]++
				if r != a {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			// Best target: most cut reduction, ties to lowest region.
			bestR := int32(-1)
			bestDelta := 0 // cut delta = edges kept in a − edges gained in b; must go negative
			for r := int32(0); r < int32(k); r++ {
				if r == a || edgeCount[r] == 0 {
					continue
				}
				delta := edgeCount[a] - edgeCount[r]
				if delta < bestDelta {
					bestDelta = delta
					bestR = r
				}
			}
			if bestR < 0 {
				continue
			}
			c := t.switches[id].Capacity()
			if c > 0 && (caps[a]-c < lo || caps[bestR]+c > hi) {
				continue
			}
			if !regionConnectedWithout(t, regionOf, a, SwitchID(id)) {
				continue
			}
			regionOf[id] = bestR
			caps[a] -= c
			caps[bestR] += c
			sizes[a]--
			sizes[bestR]++
			moved = true
		}
		if !moved {
			break
		}
	}
}

// swapRefineRegions runs bounded Kernighan–Lin-style swap sweeps over
// the boundary links (link-insertion order, so the pass is
// deterministic in (t, regionOf)): for a cut link (a, b) the two
// endpoint switches trade regions when the classic KL gain
//
//	gain = D(a) + D(b) − 2·c(a, b)
//
// is strictly positive, where D(x) counts x's links into the opposite
// region minus links into its own and c(a, b) counts the parallel
// links between the pair. Unlike the single-move refinement a swap is
// capacity-symmetric up to the difference of the two switches, so it
// can reduce the cut where every individual move is balance-blocked.
// Both regions must stay connected and inside [mean·(1−tol),
// mean·(1+tol)] after the swap.
func swapRefineRegions(t *Topology, regionOf []int32, k int, tol float64, passes int) {
	n := t.NumSwitches()
	caps := make([]float64, k)
	total := 0.0
	for id := 0; id < n; id++ {
		c := t.switches[id].Capacity()
		caps[regionOf[id]] += c
		total += c
	}
	mean := total / float64(k)
	lo, hi := mean*(1-tol), mean*(1+tol)
	for pass := 0; pass < passes; pass++ {
		swapped := false
		for _, l := range t.links {
			a, b := l.A, l.B
			ra, rb := regionOf[a], regionOf[b]
			if ra == rb {
				continue
			}
			da := 0
			for _, e := range t.adj[a] {
				switch regionOf[e.to] {
				case rb:
					da++
				case ra:
					da--
				}
			}
			db, cab := 0, 0
			for _, e := range t.adj[b] {
				if e.to == a {
					cab++
				}
				switch regionOf[e.to] {
				case ra:
					db++
				case rb:
					db--
				}
			}
			if da+db-2*cab <= 0 {
				continue
			}
			ca, cb := t.switches[a].Capacity(), t.switches[b].Capacity()
			na, nb := caps[ra]-ca+cb, caps[rb]-cb+ca
			if (ca != cb) && (na < lo || na > hi || nb < lo || nb > hi) {
				continue
			}
			// Tentatively apply, verify both regions stay connected.
			regionOf[a], regionOf[b] = rb, ra
			if !regionConnectedWithout(t, regionOf, ra, SwitchID(-1)) ||
				!regionConnectedWithout(t, regionOf, rb, SwitchID(-1)) {
				regionOf[a], regionOf[b] = ra, rb
				continue
			}
			caps[ra], caps[rb] = na, nb
			swapped = true
		}
		if !swapped {
			break
		}
	}
}

// regionConnectedWithout reports whether region r stays one connected
// component after removing the switch ex.
func regionConnectedWithout(t *Topology, regionOf []int32, r int32, ex SwitchID) bool {
	start := SwitchID(-1)
	count := 0
	for id := 0; id < t.NumSwitches(); id++ {
		if regionOf[id] == r && SwitchID(id) != ex {
			count++
			if start < 0 {
				start = SwitchID(id)
			}
		}
	}
	if count == 0 {
		return false
	}
	seen := map[SwitchID]bool{start: true}
	stack := []SwitchID{start}
	reached := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[u] {
			if e.to == ex || seen[e.to] || regionOf[e.to] != r {
				continue
			}
			seen[e.to] = true
			reached++
			stack = append(stack, e.to)
		}
	}
	return reached == count
}

// NumRegions returns k.
func (p *Partition) NumRegions() int { return len(p.regions) }

// Seed returns the seed the partition was grown from.
func (p *Partition) Seed() int64 { return p.seed }

// Topology returns the partitioned topology.
func (p *Partition) Topology() *Topology { return p.topo }

// Region returns region r's switch IDs in ascending order (a copy).
func (p *Partition) Region(r int) []SwitchID {
	return append([]SwitchID(nil), p.regions[r]...)
}

// Regions returns all regions (copies), indexed by region.
func (p *Partition) Regions() [][]SwitchID {
	out := make([][]SwitchID, len(p.regions))
	for r := range p.regions {
		out[r] = p.Region(r)
	}
	return out
}

// RegionOf returns the region index hosting the switch, or -1 for an
// unknown ID.
func (p *Partition) RegionOf(id SwitchID) int {
	if int(id) < 0 || int(id) >= len(p.regionOf) {
		return -1
	}
	return int(p.regionOf[id])
}

// RegionCapacity returns region r's total programmable stage capacity
// (Σ C_stage·C_res over its programmable switches).
func (p *Partition) RegionCapacity(r int) float64 {
	var c float64
	for _, id := range p.regions[r] {
		c += p.topo.switches[id].Capacity()
	}
	return c
}

// BoundaryLinks returns the links whose endpoints lie in different
// regions, in link-insertion order.
func (p *Partition) BoundaryLinks() []Link {
	var out []Link
	for _, l := range p.topo.links {
		if p.regionOf[l.A] != p.regionOf[l.B] {
			out = append(out, l)
		}
	}
	return out
}

// AdjacentRegions returns the distinct unordered region pairs joined by
// at least one boundary link, sorted lexicographically. This is the
// peer schedule the boundary-exchange rounds iterate.
func (p *Partition) AdjacentRegions() [][2]int {
	seen := map[[2]int]bool{}
	for _, l := range p.BoundaryLinks() {
		a, b := int(p.regionOf[l.A]), int(p.regionOf[l.B])
		if a > b {
			a, b = b, a
		}
		seen[[2]int{a, b}] = true
	}
	out := make([][2]int, 0, len(seen))
	for pr := range seen {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i][0] < out[j][0] || (out[i][0] == out[j][0] && out[i][1] < out[j][1])
	})
	return out
}

// SubTopology carves region r out of the topology via Subgraph. The
// returned slice maps local switch IDs back to global ones (it is the
// region's sorted member list). The sub-topology is connected by the
// partition invariant and its path cache is cold and region-local.
func (p *Partition) SubTopology(r int) (*Topology, []SwitchID, error) {
	if r < 0 || r >= len(p.regions) {
		return nil, nil, fmt.Errorf("network: partition has no region %d", r)
	}
	members := p.Region(r)
	sub, err := p.topo.Subgraph(fmt.Sprintf("%s/region%d", p.topo.Name, r), members)
	if err != nil {
		return nil, nil, err
	}
	return sub, members, nil
}

// Validate checks the partition invariants: every switch in exactly one
// region, no empty regions, every region connected within itself.
func (p *Partition) Validate() error {
	seen := make([]bool, p.topo.NumSwitches())
	for r, ids := range p.regions {
		if len(ids) == 0 {
			return fmt.Errorf("network: partition region %d is empty", r)
		}
		for _, id := range ids {
			if !p.topo.valid(id) {
				return fmt.Errorf("network: partition region %d references unknown switch %d", r, id)
			}
			if seen[id] {
				return fmt.Errorf("network: switch %d appears in multiple regions", id)
			}
			seen[id] = true
			if p.RegionOf(id) != r {
				return fmt.Errorf("network: switch %d region index disagrees with member list", id)
			}
		}
		if !p.regionConnected(int32(r)) {
			return fmt.Errorf("network: partition region %d is not connected", r)
		}
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("network: switch %d is not covered by any region", id)
		}
	}
	return nil
}

// regionConnected reports whether region r induces one component.
func (p *Partition) regionConnected(r int32) bool {
	return regionConnectedWithout(p.topo, p.regionOf, r, SwitchID(-1))
}

// Format renders the partition as its canonical text form:
//
//	# hermes partition v1
//	topology <name>
//	regions <k>
//	seed <seed>
//	region <r>: <id> <id> ...
//
// ParsePartition round-trips it. Region member lists are sorted, so
// equal partitions always render identically.
func (p *Partition) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# hermes partition v1\n")
	fmt.Fprintf(&b, "topology %s\n", p.topo.Name)
	fmt.Fprintf(&b, "regions %d\n", len(p.regions))
	fmt.Fprintf(&b, "seed %d\n", p.seed)
	for r, ids := range p.regions {
		fmt.Fprintf(&b, "region %d:", r)
		for _, id := range ids {
			fmt.Fprintf(&b, " %d", id)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParsePartition reads the text form produced by Format back into a
// validated Partition over t. The topology name must match t and the
// region lists must satisfy Validate.
func ParsePartition(text string, t *Topology) (*Partition, error) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	p := &Partition{topo: t, regionOf: make([]int32, t.NumSwitches())}
	for i := range p.regionOf {
		p.regionOf[i] = -1
	}
	declared := -1
	sawTopology := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "topology "):
			if sawTopology {
				return nil, fmt.Errorf("network: duplicate topology line %q", line)
			}
			sawTopology = true
			name := strings.TrimSpace(strings.TrimPrefix(line, "topology "))
			if name != t.Name {
				return nil, fmt.Errorf("network: partition is for topology %q, not %q", name, t.Name)
			}
		case strings.HasPrefix(line, "regions "):
			if declared >= 0 {
				return nil, fmt.Errorf("network: duplicate regions line %q", line)
			}
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "regions ")))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("network: bad regions line %q", line)
			}
			declared = v
		case strings.HasPrefix(line, "seed "):
			v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "seed ")), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("network: bad seed line %q: %v", line, err)
			}
			p.seed = v
		case strings.HasPrefix(line, "region "):
			rest := strings.TrimPrefix(line, "region ")
			colon := strings.IndexByte(rest, ':')
			if colon < 0 {
				return nil, fmt.Errorf("network: bad region line %q", line)
			}
			r, err := strconv.Atoi(strings.TrimSpace(rest[:colon]))
			if err != nil || r != len(p.regions) {
				return nil, fmt.Errorf("network: region lines must be dense and ordered, got %q", line)
			}
			var ids []SwitchID
			for _, f := range strings.Fields(rest[colon+1:]) {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("network: bad switch ID %q in region %d", f, r)
				}
				id := SwitchID(v)
				if !t.valid(id) {
					return nil, fmt.Errorf("network: region %d references unknown switch %d", r, v)
				}
				if p.regionOf[id] >= 0 {
					return nil, fmt.Errorf("network: switch %d appears in multiple regions", v)
				}
				p.regionOf[id] = int32(r)
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			p.regions = append(p.regions, ids)
		default:
			return nil, fmt.Errorf("network: unrecognized partition line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawTopology {
		return nil, fmt.Errorf("network: partition text missing topology line")
	}
	if declared >= 0 && declared != len(p.regions) {
		return nil, fmt.Errorf("network: header declares %d regions, found %d", declared, len(p.regions))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
