package network

import (
	"fmt"
	"sort"
)

// Fault layer: an orthogonal, healable overlay over the topology.
//
// A *down* switch or link keeps its struct fields untouched — unlike a
// drain, which rewrites Programmable/Stages/StageCapacity on a clone and
// is permanent for that clone's lifetime, a fault is reversible by
// SetSwitchUp/SetLinkUp/Heal. Path queries, ProgrammableSwitches,
// Connected, and the compiled placement instance all treat down elements
// as absent; Plan.Validate rejects assignments on down switches (paired
// with lint rule HL112).
//
// Every fault mutation bumps FaultEpoch and invalidates the path oracle,
// so memoized shortest paths and compiled latency tables can never leak
// across a fault boundary.

// SwitchIsDown reports whether the fault layer marks id down.
func (t *Topology) SwitchIsDown(id SwitchID) bool {
	return t.downSw[id]
}

// LinkIsDown reports whether the (a,b) link is marked down. Unknown
// links are not down.
func (t *Topology) LinkIsDown(a, b SwitchID) bool {
	if len(t.downLink) == 0 {
		return false
	}
	li, ok := t.linkIndex(a, b)
	return ok && t.downLink[li]
}

// HasFaults reports whether any switch or link is currently down.
func (t *Topology) HasFaults() bool {
	return len(t.downSw) > 0 || len(t.downLink) > 0
}

// FaultEpoch returns the fault-mutation counter. Derived caches keyed on
// the topology pointer (placement.CompiledInstance) store the epoch at
// build time and rebuild when it moves.
func (t *Topology) FaultEpoch() uint64 { return t.faultEpoch }

// faultMutated bumps the epoch and drops memoized paths.
func (t *Topology) faultMutated() {
	t.faultEpoch++
	t.cache.invalidate()
}

// SetSwitchDown marks id as failed. No-op if already down.
func (t *Topology) SetSwitchDown(id SwitchID) error {
	if !t.valid(id) {
		return fmt.Errorf("network: SetSwitchDown: unknown switch %d", id)
	}
	if t.downSw[id] {
		return nil
	}
	if t.downSw == nil {
		t.downSw = make(map[SwitchID]bool)
	}
	t.downSw[id] = true
	t.faultMutated()
	return nil
}

// SetSwitchUp heals a failed switch. No-op if not down.
func (t *Topology) SetSwitchUp(id SwitchID) error {
	if !t.valid(id) {
		return fmt.Errorf("network: SetSwitchUp: unknown switch %d", id)
	}
	if !t.downSw[id] {
		return nil
	}
	delete(t.downSw, id)
	t.faultMutated()
	return nil
}

// SetLinkDown marks the (a,b) link as cut. No-op if already down.
func (t *Topology) SetLinkDown(a, b SwitchID) error {
	li, ok := t.linkIndex(a, b)
	if !ok {
		return fmt.Errorf("network: SetLinkDown: no link %d-%d", a, b)
	}
	if t.downLink[li] {
		return nil
	}
	if t.downLink == nil {
		t.downLink = make(map[int]bool)
	}
	t.downLink[li] = true
	t.faultMutated()
	return nil
}

// SetLinkUp heals a cut link. No-op if not down.
func (t *Topology) SetLinkUp(a, b SwitchID) error {
	li, ok := t.linkIndex(a, b)
	if !ok {
		return fmt.Errorf("network: SetLinkUp: no link %d-%d", a, b)
	}
	if !t.downLink[li] {
		return nil
	}
	delete(t.downLink, li)
	t.faultMutated()
	return nil
}

// Heal clears all fault state. No-op if nothing is down.
func (t *Topology) Heal() {
	if !t.HasFaults() {
		return
	}
	t.downSw = nil
	t.downLink = nil
	t.faultMutated()
}

// DownSwitches returns the failed switch IDs in ascending order.
func (t *Topology) DownSwitches() []SwitchID {
	if len(t.downSw) == 0 {
		return nil
	}
	out := make([]SwitchID, 0, len(t.downSw))
	for id := range t.downSw {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DownLinks returns the cut links as (a,b) endpoint pairs, ordered by
// link index.
func (t *Topology) DownLinks() [][2]SwitchID {
	if len(t.downLink) == 0 {
		return nil
	}
	idx := make([]int, 0, len(t.downLink))
	for li := range t.downLink {
		idx = append(idx, li)
	}
	sort.Ints(idx)
	out := make([][2]SwitchID, len(idx))
	for i, li := range idx {
		l := t.links[li]
		out[i] = [2]SwitchID{l.A, l.B}
	}
	return out
}

// copyFaultState mirrors src's fault overlay onto t (used by Clone).
func (t *Topology) copyFaultState(src *Topology) {
	if len(src.downSw) > 0 {
		t.downSw = make(map[SwitchID]bool, len(src.downSw))
		for id := range src.downSw {
			t.downSw[id] = true
		}
	}
	if len(src.downLink) > 0 {
		t.downLink = make(map[int]bool, len(src.downLink))
		for li := range src.downLink {
			t.downLink[li] = true
		}
	}
	t.faultEpoch = src.faultEpoch
}
