// Package network models the substrate network Hermes deploys onto
// (paper §V-A): an undirected graph G = (V_G, E_G) of switches and
// links. Each switch u carries a programmability flag P(u), a stage
// count C_stage, a per-stage resource capacity C_res, and a maximum
// transit latency t_s(u); each link carries a latency t_l(u,v).
//
// The package provides shortest-path and k-shortest-path queries (the
// path sets P(u,v) of the formulation) and deterministic topology
// generators, including the ten WAN topologies of Table III.
package network

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// SwitchID identifies a switch within a topology.
type SwitchID int

// Switch is one network node.
type Switch struct {
	// ID is the switch's index in the topology.
	ID SwitchID `json:"id"`
	// Name is a human-readable label.
	Name string `json:"name"`
	// Programmable is P(u): whether the switch can host MATs.
	Programmable bool `json:"programmable"`
	// Stages is C_stage, the number of pipeline stages (programmable
	// switches only).
	Stages int `json:"stages,omitempty"`
	// StageCapacity is C_res, the normalized per-stage resource
	// capacity (1.0 = one full stage).
	StageCapacity float64 `json:"stage_capacity,omitempty"`
	// TransitLatency is t_s(u), the maximum per-switch latency.
	TransitLatency time.Duration `json:"transit_latency"`
}

// Capacity returns the switch's total resource capacity
// C_stage · C_res, the fit test used by the greedy splitter.
func (s *Switch) Capacity() float64 {
	if !s.Programmable {
		return 0
	}
	return float64(s.Stages) * s.StageCapacity
}

// Link is one undirected edge.
type Link struct {
	A SwitchID `json:"a"`
	B SwitchID `json:"b"`
	// Latency is t_l(u,v).
	Latency time.Duration `json:"latency"`
}

// Other returns the endpoint opposite to id.
func (l Link) Other(id SwitchID) (SwitchID, bool) {
	switch id {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	default:
		return 0, false
	}
}

// Topology is an immutable-after-build network graph.
type Topology struct {
	// Name labels the topology for reports.
	Name string

	switches []*Switch
	links    []Link
	// adj[id] lists (neighbor, link index).
	adj [][]adjEntry
	// cache memoizes shortest-path queries (see oracle.go). It is
	// invalidated on mutation and never shared between topologies.
	cache *pathCache

	// downSw and downLink are the fault layer's state (fault.go):
	// switches and link indexes currently failed. A down element keeps
	// its struct untouched — failure is an orthogonal, healable overlay,
	// unlike a drain, which rewrites the Programmable/Stages fields.
	// nil maps mean no faults.
	downSw   map[SwitchID]bool
	downLink map[int]bool
	// faultEpoch counts fault-state mutations so derived caches keyed on
	// the topology pointer (the compiled placement instance) can detect
	// staleness without comparing the maps.
	faultEpoch uint64
}

// infDist marks an unreachable node in Dijkstra distance arrays.
const infDist = int64(math.MaxInt64)

type adjEntry struct {
	to   SwitchID
	link int
}

// Builder-style construction.

// NewTopology creates an empty topology.
func NewTopology(name string) *Topology {
	return &Topology{Name: name, cache: newPathCache()}
}

// AddSwitch appends a switch and returns its ID.
func (t *Topology) AddSwitch(s Switch) SwitchID {
	id := SwitchID(len(t.switches))
	s.ID = id
	if s.Name == "" {
		s.Name = fmt.Sprintf("s%d", id)
	}
	sw := s
	t.switches = append(t.switches, &sw)
	t.adj = append(t.adj, nil)
	t.cache.invalidate()
	return id
}

// AddLink connects two switches. Parallel links and self-loops are
// rejected.
func (t *Topology) AddLink(a, b SwitchID, latency time.Duration) error {
	if a == b {
		return fmt.Errorf("network: self-loop on switch %d", a)
	}
	if !t.valid(a) || !t.valid(b) {
		return fmt.Errorf("network: link %d-%d references unknown switch", a, b)
	}
	for _, e := range t.adj[a] {
		if e.to == b {
			return fmt.Errorf("network: duplicate link %d-%d", a, b)
		}
	}
	if latency < 0 {
		return fmt.Errorf("network: negative latency on link %d-%d", a, b)
	}
	idx := len(t.links)
	t.links = append(t.links, Link{A: a, B: b, Latency: latency})
	t.adj[a] = append(t.adj[a], adjEntry{to: b, link: idx})
	t.adj[b] = append(t.adj[b], adjEntry{to: a, link: idx})
	t.cache.invalidate()
	return nil
}

func (t *Topology) valid(id SwitchID) bool {
	return id >= 0 && int(id) < len(t.switches)
}

// NumSwitches returns Q = |V_G|.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// NumLinks returns N = |E_G|.
func (t *Topology) NumLinks() int { return len(t.links) }

// Switch returns the switch with the given ID.
func (t *Topology) Switch(id SwitchID) (*Switch, error) {
	if !t.valid(id) {
		return nil, fmt.Errorf("network: unknown switch %d", id)
	}
	return t.switches[id], nil
}

// Switches returns all switches in ID order.
func (t *Topology) Switches() []*Switch {
	return append([]*Switch(nil), t.switches...)
}

// ProgrammableSwitches returns the IDs of programmable switches in
// ascending order. Switches marked down by the fault layer are excluded:
// a failed switch cannot host MATs regardless of its hardware.
func (t *Topology) ProgrammableSwitches() []SwitchID {
	var out []SwitchID
	for _, s := range t.switches {
		if s.Programmable && !t.downSw[s.ID] {
			out = append(out, s.ID)
		}
	}
	return out
}

// Links returns all links.
func (t *Topology) Links() []Link {
	return append([]Link(nil), t.links...)
}

// Neighbors returns the IDs adjacent to id, sorted.
func (t *Topology) Neighbors(id SwitchID) []SwitchID {
	if !t.valid(id) {
		return nil
	}
	out := make([]SwitchID, 0, len(t.adj[id]))
	for _, e := range t.adj[id] {
		out = append(out, e.to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkBetween returns the link connecting a and b.
func (t *Topology) LinkBetween(a, b SwitchID) (Link, bool) {
	if !t.valid(a) {
		return Link{}, false
	}
	for _, e := range t.adj[a] {
		if e.to == b {
			return t.links[e.link], true
		}
	}
	return Link{}, false
}

// Connected reports whether the topology is a single connected
// component (ignoring a topology with no switches, which is connected
// vacuously). With fault state present, connectivity is judged over the
// surviving subgraph: down switches and down links are removed, and the
// remaining up switches must form one component. All switches down is
// vacuously connected.
func (t *Topology) Connected() bool {
	if len(t.switches) == 0 {
		return true
	}
	start := SwitchID(-1)
	up := 0
	for _, s := range t.switches {
		if t.downSw[s.ID] {
			continue
		}
		up++
		if start < 0 {
			start = s.ID
		}
	}
	if up == 0 {
		return true
	}
	seen := make([]bool, len(t.switches))
	stack := []SwitchID{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[n] {
			if seen[e.to] || t.downSw[e.to] || t.downLink[e.link] {
				continue
			}
			seen[e.to] = true
			count++
			stack = append(stack, e.to)
		}
	}
	return count == up
}

// Path is a walk through the network: a sequence of switch IDs where
// consecutive entries are linked. Latency is t_p(p): the sum of link
// latencies plus the transit latency of every switch on the path
// (paper §V-A's t_p definition).
type Path struct {
	Switches []SwitchID
	Latency  time.Duration
}

// Contains reports whether the path visits the switch (the E(a,p)
// indicator of the formulation).
func (p Path) Contains(id SwitchID) bool {
	for _, s := range p.Switches {
		if s == id {
			return true
		}
	}
	return false
}

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p.Switches) == 0 {
		return 0
	}
	return len(p.Switches) - 1
}

// pathLatency recomputes t_p(p) for a switch sequence.
func (t *Topology) pathLatency(seq []SwitchID) (time.Duration, error) {
	var total time.Duration
	for i, id := range seq {
		sw, err := t.Switch(id)
		if err != nil {
			return 0, err
		}
		total += sw.TransitLatency
		if i == 0 {
			continue
		}
		l, ok := t.LinkBetween(seq[i-1], id)
		if !ok {
			return 0, fmt.Errorf("network: no link %d-%d in path", seq[i-1], id)
		}
		total += l.Latency
	}
	return total, nil
}

// ShortestPath returns the minimum-latency simple path from src to dst
// using Dijkstra over link+switch latencies. It fails if no path
// exists. Results are served from the path oracle's per-source Dijkstra
// tree (oracle.go), so repeated queries from the same source cost only
// the path reconstruction.
func (t *Topology) ShortestPath(src, dst SwitchID) (Path, error) {
	if !t.valid(src) || !t.valid(dst) {
		return Path{}, fmt.Errorf("network: shortest path %d->%d references unknown switch", src, dst)
	}
	return t.ssspFrom(src).pathTo(src, dst)
}

// shortestPathAvoiding runs Dijkstra excluding the given switches and
// links (used by Yen's algorithm). banned switches are keyed by ID;
// banned links by index.
func (t *Topology) shortestPathAvoiding(src, dst SwitchID, bannedSw map[SwitchID]bool, bannedLink map[int]bool) (Path, error) {
	const inf = math.MaxInt64
	n := len(t.switches)
	dist := make([]int64, n)
	prev := make([]SwitchID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	if bannedSw[src] || bannedSw[dst] {
		return Path{}, fmt.Errorf("network: endpoints banned")
	}
	if t.downSw[src] || t.downSw[dst] {
		return Path{}, fmt.Errorf("network: endpoint switch down")
	}
	dist[src] = int64(t.switches[src].TransitLatency)
	// Simple O(V^2) Dijkstra; topologies here are small (≤ a few
	// hundred nodes), and this avoids heap bookkeeping.
	for {
		u := SwitchID(-1)
		best := int64(inf)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = SwitchID(i)
			}
		}
		if u < 0 {
			break
		}
		if u == dst {
			break
		}
		done[u] = true
		for _, e := range t.adj[u] {
			if done[e.to] || bannedSw[e.to] || bannedLink[e.link] || t.downSw[e.to] || t.downLink[e.link] {
				continue
			}
			alt := dist[u] + int64(t.links[e.link].Latency) + int64(t.switches[e.to].TransitLatency)
			if alt < dist[e.to] {
				dist[e.to] = alt
				prev[e.to] = u
			}
		}
	}
	if dist[dst] == inf {
		return Path{}, fmt.Errorf("network: no path from %d to %d", src, dst)
	}
	var seq []SwitchID
	for at := dst; at != -1; at = prev[at] {
		seq = append(seq, at)
		if at == src {
			break
		}
	}
	// Reverse.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	if seq[0] != src {
		return Path{}, fmt.Errorf("network: path reconstruction failed for %d->%d", src, dst)
	}
	return Path{Switches: seq, Latency: time.Duration(dist[dst])}, nil
}

// KShortestPaths returns up to k loopless shortest paths from src to
// dst in increasing latency order (Yen's algorithm). This materializes
// the path set P(u,v) used by the MILP formulation.
//
// Yen's output is prefix-stable in k, so the oracle caches the longest
// list computed per (src, dst) and serves any smaller k as a prefix; an
// exhausted entry (no further loopless paths exist) answers every k.
func (t *Topology) KShortestPaths(src, dst SwitchID, k int) ([]Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("network: k must be positive, got %d", k)
	}
	if src == dst {
		sw, err := t.Switch(src)
		if err != nil {
			return nil, err
		}
		if t.downSw[src] {
			return nil, fmt.Errorf("network: no path from %d to %d: switch down", src, dst)
		}
		return []Path{{Switches: []SwitchID{src}, Latency: sw.TransitLatency}}, nil
	}
	key := [2]SwitchID{src, dst}
	c := t.cache
	if c != nil {
		c.mu.RLock()
		ent, ok := c.ksp[key]
		c.mu.RUnlock()
		if ok && (ent.exhausted || len(ent.paths) >= k) {
			c.hits.Add(1)
			got := ent.paths
			if len(got) > k {
				got = got[:k]
			}
			return clonePaths(got), nil
		}
		c.misses.Add(1)
	}
	paths, exhausted, err := t.yenKShortest(src, dst, k)
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.mu.Lock()
		if prior, ok := c.ksp[key]; !ok || len(paths) > len(prior.paths) || (exhausted && !prior.exhausted) {
			c.ksp[key] = &kspEntry{paths: clonePaths(paths), exhausted: exhausted}
		}
		c.mu.Unlock()
	}
	return paths, nil
}

// yenKShortest is the uncached Yen loop. exhausted reports that the
// loop drained every loopless candidate before reaching k paths.
func (t *Topology) yenKShortest(src, dst SwitchID, k int) (_ []Path, exhausted bool, _ error) {
	first, err := t.ShortestPath(src, dst)
	if err != nil {
		return nil, false, err
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		last := paths[len(paths)-1]
		// For each spur node in the previous shortest path.
		for i := 0; i < len(last.Switches)-1; i++ {
			spur := last.Switches[i]
			root := last.Switches[:i+1]

			bannedLink := make(map[int]bool)
			bannedSw := make(map[SwitchID]bool)
			for _, p := range paths {
				if sharesPrefix(p.Switches, root) && len(p.Switches) > i+1 {
					if li, ok := t.linkIndex(p.Switches[i], p.Switches[i+1]); ok {
						bannedLink[li] = true
					}
				}
			}
			for _, s := range root[:len(root)-1] {
				bannedSw[s] = true
			}

			spurPath, err := t.shortestPathAvoiding(spur, dst, bannedSw, bannedLink)
			if err != nil {
				continue
			}
			total := append(append([]SwitchID(nil), root[:len(root)-1]...), spurPath.Switches...)
			lat, err := t.pathLatency(total)
			if err != nil {
				continue
			}
			cand := Path{Switches: total, Latency: lat}
			if !containsPath(paths, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			exhausted = true
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Latency < candidates[j].Latency })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, exhausted, nil
}

func (t *Topology) linkIndex(a, b SwitchID) (int, bool) {
	if !t.valid(a) {
		return 0, false
	}
	for _, e := range t.adj[a] {
		if e.to == b {
			return e.link, true
		}
	}
	return 0, false
}

func sharesPrefix(p, prefix []SwitchID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if len(p.Switches) != len(q.Switches) {
			continue
		}
		same := true
		for i := range p.Switches {
			if p.Switches[i] != q.Switches[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// NearestProgrammable returns up to limit programmable switches ordered
// by shortest-path latency from src, excluding src itself, and only
// those reachable within maxLatency (inclusive). This implements the
// candidate search of Algorithm 2 line 23 (SELECT_SWITCHES).
func (t *Topology) NearestProgrammable(src SwitchID, limit int, maxLatency time.Duration) ([]SwitchID, error) {
	if !t.valid(src) {
		return nil, fmt.Errorf("network: unknown switch %d", src)
	}
	// The oracle caches the full (latency, id)-sorted candidate list per
	// source; the maxLatency filter and limit are applied per query.
	cands := t.programmableByLatency(src)
	out := make([]SwitchID, 0, len(cands))
	for _, c := range cands {
		if maxLatency > 0 && c.lat > maxLatency {
			continue
		}
		out = append(out, c.id)
	}
	if limit >= 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// Clone returns an independent copy of the topology. Everything was
// validated when t was built, so the copy is a straight bulk copy of
// the switch, link, and adjacency storage — no per-element re-insertion
// (the replan path clones the live topology on every churn event, so
// this runs in microseconds on thousand-switch graphs, not
// milliseconds). The copy starts with a cold path cache.
func (t *Topology) Clone() *Topology {
	c := NewTopology(t.Name)
	backing := make([]Switch, len(t.switches))
	c.switches = make([]*Switch, len(t.switches))
	for i, s := range t.switches {
		backing[i] = *s
		c.switches[i] = &backing[i]
	}
	c.links = append([]Link(nil), t.links...)
	total := 0
	for _, a := range t.adj {
		total += len(a)
	}
	flat := make([]adjEntry, 0, total)
	c.adj = make([][]adjEntry, len(t.adj))
	for i, a := range t.adj {
		n := len(flat)
		flat = append(flat, a...)
		// Full-capacity slice: a later AddLink on the clone reallocates
		// instead of clobbering its neighbors' rows.
		c.adj[i] = flat[n:len(flat):len(flat)]
	}
	c.copyFaultState(t)
	return c
}

// Subgraph returns the sub-topology induced by members: switch i of the
// result is a copy of t's switch members[i] (so members doubles as the
// local→global ID mapping), and every link of t whose endpoints both
// appear in members is kept at its original latency. The fault overlay
// is restricted to the surviving switches and links. Duplicate or
// unknown members are rejected; the result may be disconnected — the
// caller decides whether that matters (Partition.SubTopology guarantees
// connected regions).
//
// Like Clone, the sub-topology starts with a cold path cache: nothing
// here queries t's oracle or touches its dense latency table, so
// carving R regions out of an S-switch topology costs O(Σ S_r + E) and
// per-region path state stays O(S_r²) at worst. The region-sharded
// solver depends on this — at 10k switches the parent's dense table
// would be ~800 MB, and must only ever exist if someone asks the parent
// for it.
func (t *Topology) Subgraph(name string, members []SwitchID) (*Topology, error) {
	sub := NewTopology(name)
	local := make(map[SwitchID]SwitchID, len(members))
	for _, gid := range members {
		if !t.valid(gid) {
			return nil, fmt.Errorf("network: subgraph %q references unknown switch %d", name, gid)
		}
		if _, dup := local[gid]; dup {
			return nil, fmt.Errorf("network: subgraph %q lists switch %d twice", name, gid)
		}
		lid := sub.AddSwitch(*t.switches[gid])
		local[gid] = lid
		if t.downSw[gid] {
			if sub.downSw == nil {
				sub.downSw = map[SwitchID]bool{}
			}
			sub.downSw[lid] = true
			sub.faultEpoch++
		}
	}
	for li, l := range t.links {
		a, oka := local[l.A]
		b, okb := local[l.B]
		if !oka || !okb {
			continue
		}
		if err := sub.AddLink(a, b, l.Latency); err != nil {
			return nil, err
		}
		if t.downLink[li] {
			if sub.downLink == nil {
				sub.downLink = map[int]bool{}
			}
			sub.downLink[sub.NumLinks()-1] = true
			sub.faultEpoch++
		}
	}
	return sub, nil
}

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	for _, s := range t.switches {
		if s.Programmable {
			if s.Stages <= 0 {
				return fmt.Errorf("network: programmable switch %q has %d stages", s.Name, s.Stages)
			}
			if s.StageCapacity <= 0 {
				return fmt.Errorf("network: programmable switch %q has capacity %g", s.Name, s.StageCapacity)
			}
		}
		if s.TransitLatency < 0 {
			return fmt.Errorf("network: switch %q has negative latency", s.Name)
		}
	}
	if !t.Connected() {
		return fmt.Errorf("network: topology %q is not connected", t.Name)
	}
	return nil
}
