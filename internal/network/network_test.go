package network

import (
	"testing"
	"time"
)

// diamond builds:
//
//	    1
//	  /   \
//	0       3 --- 4
//	  \   /
//	    2
//
// with latencies making 0-1-3 cheaper than 0-2-3.
func diamond(t *testing.T) *Topology {
	t.Helper()
	tp := NewTopology("diamond")
	for i := 0; i < 5; i++ {
		tp.AddSwitch(Switch{
			Programmable:   true,
			Stages:         12,
			StageCapacity:  1,
			TransitLatency: time.Microsecond,
		})
	}
	links := []struct {
		a, b SwitchID
		lat  time.Duration
	}{
		{0, 1, 1 * time.Millisecond},
		{0, 2, 5 * time.Millisecond},
		{1, 3, 1 * time.Millisecond},
		{2, 3, 5 * time.Millisecond},
		{3, 4, 2 * time.Millisecond},
	}
	for _, l := range links {
		if err := tp.AddLink(l.a, l.b, l.lat); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

func TestTopologyConstruction(t *testing.T) {
	tp := diamond(t)
	if tp.NumSwitches() != 5 || tp.NumLinks() != 5 {
		t.Fatalf("shape = %d/%d, want 5/5", tp.NumSwitches(), tp.NumLinks())
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !tp.Connected() {
		t.Error("diamond not connected")
	}
	nbrs := tp.Neighbors(3)
	if len(nbrs) != 3 || nbrs[0] != 1 || nbrs[1] != 2 || nbrs[2] != 4 {
		t.Errorf("Neighbors(3) = %v, want [1 2 4]", nbrs)
	}
	if _, ok := tp.LinkBetween(0, 3); ok {
		t.Error("LinkBetween(0,3) = true, want false")
	}
	l, ok := tp.LinkBetween(0, 1)
	if !ok || l.Latency != time.Millisecond {
		t.Errorf("LinkBetween(0,1) = %v/%v", l, ok)
	}
	if other, ok := l.Other(0); !ok || other != 1 {
		t.Errorf("Other(0) = %v/%v, want 1", other, ok)
	}
	if _, ok := l.Other(9); ok {
		t.Error("Other(9) should fail")
	}
}

func TestAddLinkErrors(t *testing.T) {
	tp := NewTopology("t")
	a := tp.AddSwitch(Switch{TransitLatency: 0})
	b := tp.AddSwitch(Switch{TransitLatency: 0})
	if err := tp.AddLink(a, a, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := tp.AddLink(a, 99, 0); err == nil {
		t.Error("link to unknown switch accepted")
	}
	if err := tp.AddLink(a, b, -time.Second); err == nil {
		t.Error("negative latency accepted")
	}
	if err := tp.AddLink(a, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(b, a, 0); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestValidateCatchesBadSwitches(t *testing.T) {
	tp := NewTopology("bad")
	tp.AddSwitch(Switch{Programmable: true, Stages: 0, StageCapacity: 1})
	if err := tp.Validate(); err == nil {
		t.Error("Validate accepted programmable switch without stages")
	}
	tp2 := NewTopology("bad2")
	tp2.AddSwitch(Switch{Programmable: true, Stages: 4, StageCapacity: 0})
	if err := tp2.Validate(); err == nil {
		t.Error("Validate accepted programmable switch without capacity")
	}
	tp3 := NewTopology("disconnected")
	tp3.AddSwitch(Switch{})
	tp3.AddSwitch(Switch{})
	if err := tp3.Validate(); err == nil {
		t.Error("Validate accepted disconnected topology")
	}
}

func TestSwitchCapacity(t *testing.T) {
	s := Switch{Programmable: true, Stages: 12, StageCapacity: 0.5}
	if got := s.Capacity(); got != 6 {
		t.Errorf("Capacity = %g, want 6", got)
	}
	s.Programmable = false
	if got := s.Capacity(); got != 0 {
		t.Errorf("non-programmable Capacity = %g, want 0", got)
	}
}

func TestShortestPath(t *testing.T) {
	tp := diamond(t)
	p, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []SwitchID{0, 1, 3}
	if len(p.Switches) != 3 {
		t.Fatalf("path = %v, want %v", p.Switches, want)
	}
	for i := range want {
		if p.Switches[i] != want[i] {
			t.Fatalf("path = %v, want %v", p.Switches, want)
		}
	}
	// Latency = 3 switch transits (1µs each) + 2 links (1ms each).
	wantLat := 3*time.Microsecond + 2*time.Millisecond
	if p.Latency != wantLat {
		t.Errorf("latency = %v, want %v", p.Latency, wantLat)
	}
	if p.Hops() != 2 {
		t.Errorf("Hops = %d, want 2", p.Hops())
	}
	if !p.Contains(1) || p.Contains(2) {
		t.Error("Contains misreports path membership")
	}
	if _, err := tp.ShortestPath(0, 99); err == nil {
		t.Error("ShortestPath to unknown switch succeeded")
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	tp := NewTopology("two islands")
	a := tp.AddSwitch(Switch{})
	tp.AddSwitch(Switch{})
	c := tp.AddSwitch(Switch{})
	if err := tp.AddLink(a, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.ShortestPath(a, c); err == nil {
		t.Error("ShortestPath across disconnected components succeeded")
	}
}

func TestKShortestPaths(t *testing.T) {
	tp := diamond(t)
	paths, err := tp.KShortestPaths(0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (diamond has exactly two 0->3 routes)", len(paths))
	}
	if paths[0].Latency > paths[1].Latency {
		t.Error("paths not sorted by latency")
	}
	if paths[0].Switches[1] != 1 || paths[1].Switches[1] != 2 {
		t.Errorf("paths = %v, want via 1 then via 2", paths)
	}
	// k=1 returns just the shortest.
	one, err := tp.KShortestPaths(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Errorf("k=1 returned %d paths", len(one))
	}
	// Same source and destination.
	self, err := tp.KShortestPaths(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 1 || len(self[0].Switches) != 1 {
		t.Errorf("self path = %v", self)
	}
	if _, err := tp.KShortestPaths(0, 3, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKShortestPathsAreSimpleAndDistinct(t *testing.T) {
	tp, err := RandomWAN("w", 20, 35, TofinoSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := tp.KShortestPaths(0, 19, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range paths {
		key := ""
		visited := map[SwitchID]bool{}
		for _, s := range p.Switches {
			if visited[s] {
				t.Fatalf("path %v revisits switch %d", p.Switches, s)
			}
			visited[s] = true
			key += string(rune(s)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate path %v", p.Switches)
		}
		seen[key] = true
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Latency < paths[i-1].Latency {
			t.Error("paths not in increasing latency order")
		}
	}
}

func TestNearestProgrammable(t *testing.T) {
	tp := diamond(t)
	got, err := tp.NearestProgrammable(0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("NearestProgrammable = %v, want [1 3]", got)
	}
	// Latency bound excludes far switches.
	got, err = tp.NearestProgrammable(0, 10, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("bounded NearestProgrammable = %v, want [1]", got)
	}
	if _, err := tp.NearestProgrammable(99, 1, 0); err == nil {
		t.Error("NearestProgrammable from unknown switch succeeded")
	}
}

func TestLinear(t *testing.T) {
	tp, err := Linear(3, TestbedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != 3 || tp.NumLinks() != 2 {
		t.Fatalf("linear shape = %d/%d", tp.NumSwitches(), tp.NumLinks())
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tp.ProgrammableSwitches()) != 3 {
		t.Error("testbed switches should all be programmable")
	}
	if _, err := Linear(0, TestbedSpec()); err == nil {
		t.Error("Linear(0) accepted")
	}
}

func TestFatTree(t *testing.T) {
	tp, err := FatTree(4, TofinoSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 cores + 4 pods * (2 agg + 2 edge) = 20 switches,
	// links: pods 4*4=16 + core 4*4=16 = 32.
	if tp.NumSwitches() != 20 {
		t.Errorf("fat-tree switches = %d, want 20", tp.NumSwitches())
	}
	if tp.NumLinks() != 32 {
		t.Errorf("fat-tree links = %d, want 32", tp.NumLinks())
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~50% programmable.
	got := len(tp.ProgrammableSwitches())
	if got != 10 {
		t.Errorf("programmable = %d, want 10", got)
	}
	if _, err := FatTree(3, TofinoSpec(), 1); err == nil {
		t.Error("odd arity accepted")
	}
}

func TestRandomWANDeterministicAndExactSize(t *testing.T) {
	a, err := RandomWAN("w", 30, 45, TofinoSpec(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomWAN("w", 30, 45, TofinoSpec(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSwitches() != 30 || a.NumLinks() != 45 {
		t.Fatalf("WAN shape = %d/%d, want 30/45", a.NumSwitches(), a.NumLinks())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Determinism: identical link sets.
	la, lb := a.Links(), b.Links()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs across equal seeds: %v vs %v", i, la[i], lb[i])
		}
	}
	// Different seed differs somewhere.
	c, err := RandomWAN("w", 30, 45, TofinoSpec(), 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	lc := c.Links()
	for i := range la {
		if la[i] != lc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical topology")
	}
}

func TestRandomWANErrors(t *testing.T) {
	spec := TofinoSpec()
	if _, err := RandomWAN("w", 0, 0, spec, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := RandomWAN("w", 5, 3, spec, 1); err == nil {
		t.Error("too few edges accepted")
	}
	if _, err := RandomWAN("w", 5, 11, spec, 1); err == nil {
		t.Error("too many edges accepted")
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	wantNodes := []int{65, 70, 75, 66, 73, 72, 68, 71, 74, 69}
	wantEdges := []int{78, 85, 99, 75, 70, 84, 92, 88, 92, 98}
	if NumTableIII() != 10 {
		t.Fatalf("NumTableIII = %d, want 10", NumTableIII())
	}
	for i := 1; i <= 10; i++ {
		n, e, err := TableIIISize(i)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantNodes[i-1] || e != wantEdges[i-1] {
			t.Errorf("TableIIISize(%d) = %d/%d, want %d/%d", i, n, e, wantNodes[i-1], wantEdges[i-1])
		}
		tp, err := TableIII(i, TofinoSpec())
		if err != nil {
			t.Fatal(err)
		}
		if tp.NumSwitches() != wantNodes[i-1] {
			t.Errorf("topology %d switches = %d, want %d", i, tp.NumSwitches(), wantNodes[i-1])
		}
		// Topology 5 is adjusted to stay connected (70 < 73-1).
		wantE := wantEdges[i-1]
		if wantE < wantNodes[i-1]-1 {
			wantE = wantNodes[i-1] - 1
		}
		if tp.NumLinks() != wantE {
			t.Errorf("topology %d links = %d, want %d", i, tp.NumLinks(), wantE)
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("topology %d invalid: %v", i, err)
		}
		// Roughly 50% programmable.
		prog := len(tp.ProgrammableSwitches())
		if prog < tp.NumSwitches()/3 || prog > 2*tp.NumSwitches()/3 {
			t.Errorf("topology %d programmable count %d of %d implausible", i, prog, tp.NumSwitches())
		}
	}
	if _, err := TableIII(0, TofinoSpec()); err == nil {
		t.Error("TableIII(0) accepted")
	}
	if _, err := TableIII(11, TofinoSpec()); err == nil {
		t.Error("TableIII(11) accepted")
	}
}

func TestTableIIILinkLatencyRange(t *testing.T) {
	tp, err := TableIII(1, TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range tp.Links() {
		if l.Latency < time.Millisecond || l.Latency > 10*time.Millisecond {
			t.Fatalf("link latency %v outside paper's 1-10ms", l.Latency)
		}
	}
}

func TestRing(t *testing.T) {
	tp, err := Ring(6, TofinoSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != 6 || tp.NumLinks() != 6 {
		t.Fatalf("ring shape = %d/%d, want 6/6", tp.NumSwitches(), tp.NumLinks())
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every pair has exactly two disjoint routes.
	paths, err := tp.KShortestPaths(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Errorf("ring 0->3 has %d routes, want 2", len(paths))
	}
	if _, err := Ring(2, TofinoSpec(), 1); err == nil {
		t.Error("2-node ring accepted")
	}
}

func TestGrid(t *testing.T) {
	tp, err := Grid(3, 4, TofinoSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 12 nodes; links: 3*3 horizontal + 2*4 vertical = 17.
	if tp.NumSwitches() != 12 || tp.NumLinks() != 17 {
		t.Fatalf("grid shape = %d/%d, want 12/17", tp.NumSwitches(), tp.NumLinks())
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Grid(1, 1, TofinoSpec(), 1); err == nil {
		t.Error("1x1 grid accepted")
	}
	if _, err := Grid(0, 5, TofinoSpec(), 1); err == nil {
		t.Error("0-row grid accepted")
	}
}

func TestClonedTopologyIsIndependent(t *testing.T) {
	tp, err := Ring(4, TofinoSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c := tp.Clone()
	if c.NumSwitches() != tp.NumSwitches() || c.NumLinks() != tp.NumLinks() {
		t.Fatal("clone shape mismatch")
	}
	orig := len(tp.ProgrammableSwitches())
	cs, err := c.Switch(0)
	if err != nil {
		t.Fatal(err)
	}
	cs.Programmable = false
	if len(tp.ProgrammableSwitches()) != orig {
		t.Error("mutating clone changed original")
	}
}
