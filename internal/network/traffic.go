// Traffic matrices: seeded end-to-end demand models over a topology
// (ROADMAP item 3; DESIGN.md §13). The paper's A_max objective treats
// every switch pair alike, but the run-time cost of inter-switch
// coordination is A(u,v) bytes piggybacked on every packet that
// actually crosses (u,v): a plan can be A_max-optimal and still route
// its heaviest headers through an elephant-flow hot spot. TrafficMatrix
// captures where packets flow — a list of (src, dst, rate) demands —
// and PairRates projects the demands onto ordered switch pairs along
// shortest paths, which the placement layer compiles into the weighted
// objective min Σ w(u,v)·A(u,v) (and the weighted-max variant).
//
// Everything is deterministic in (topology, model, seed), and the text
// form round-trips through Format/ParseTraffic so a matrix can be
// saved, diffed, and fed back via `hermes -traffic @file`.
package network

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Traffic model names accepted by GenerateTraffic and the
// `-traffic=<model:seed>` CLI spelling.
const (
	// TrafficUniform spreads one unit of demand over every sampled
	// ordered pair — the null model (weighted ≈ structural objective).
	TrafficUniform = "uniform"
	// TrafficGravity draws pair demand proportional to the product of
	// the endpoints' degrees (a standard WAN gravity model) with seeded
	// jitter.
	TrafficGravity = "gravity"
	// TrafficHotspot concentrates demand on a few hot destination
	// switches (incast-style skew).
	TrafficHotspot = "hotspot"
	// TrafficElephants is the herding-elephants-style ingress pattern:
	// each source sends 95% of a heavy-tailed volume to one preferred
	// peer and load-balances the remaining 5% over a small secondary
	// set.
	TrafficElephants = "elephants"
)

// TrafficModels lists the built-in model names.
func TrafficModels() []string {
	return []string{TrafficUniform, TrafficGravity, TrafficHotspot, TrafficElephants}
}

// Demand is one end-to-end traffic entry: Rate packets/sec flowing
// from the hosts behind Src to the hosts behind Dst.
type Demand struct {
	Src, Dst SwitchID
	Rate     float64
}

// TrafficMatrix is a seeded demand set over one topology's switch ID
// space. The zero value is unusable; build one with GenerateTraffic,
// ParseTraffic, or Restrict.
type TrafficMatrix struct {
	// Topology names the topology the matrix was generated for.
	Topology string
	// Model and Seed record provenance; Model is "restricted" for
	// Restrict outputs and "custom" for hand-written files.
	Model string
	Seed  int64
	// S is the switch count of the ID space.
	S int
	// Demands is sorted by (Src, Dst) with no duplicates.
	Demands []Demand

	// pre, when non-nil, is a precomputed dense pair-rate table (S×S):
	// Restrict outputs carry these instead of demands, since their
	// compacted ID space has no routable topology.
	pre []float64

	// PairRates memo (single entry, keyed by topology pointer).
	mu        sync.Mutex
	memoTopo  *Topology
	memoEpoch uint64
	memoRates []float64
}

// maxTrafficDemands caps generated demand entries so huge topologies
// sample pairs instead of enumerating all S² of them.
const maxTrafficDemands = 1 << 16

// GenerateTraffic builds the named seeded model over t.
func GenerateTraffic(t *Topology, model string, seed int64) (*TrafficMatrix, error) {
	s := t.NumSwitches()
	if s < 2 {
		return nil, fmt.Errorf("network: traffic matrix needs at least 2 switches, topology %q has %d", t.Name, s)
	}
	tm := &TrafficMatrix{Topology: t.Name, Model: model, Seed: seed, S: s}
	rng := rand.New(rand.NewSource(mixSeed(seed, model)))
	switch model {
	case TrafficUniform:
		for _, p := range samplePairs(s, rng) {
			tm.Demands = append(tm.Demands, Demand{Src: p[0], Dst: p[1], Rate: 1})
		}
	case TrafficGravity:
		mass := make([]float64, s)
		total := 0.0
		for id := 0; id < s; id++ {
			mass[id] = float64(len(t.Neighbors(SwitchID(id))) + 1)
			total += mass[id]
		}
		mean := total / float64(s)
		for _, p := range samplePairs(s, rng) {
			jitter := 0.75 + 0.5*rng.Float64()
			rate := mass[p[0]] * mass[p[1]] / (mean * mean) * jitter
			tm.Demands = append(tm.Demands, Demand{Src: p[0], Dst: p[1], Rate: rate})
		}
	case TrafficHotspot:
		hot := map[SwitchID]bool{}
		nHot := s / 16
		if nHot < 1 {
			nHot = 1
		}
		for _, id := range rng.Perm(s)[:nHot] {
			hot[SwitchID(id)] = true
		}
		for _, p := range samplePairs(s, rng) {
			rate := 1.0
			if hot[p[1]] {
				rate *= 64 // incast into the hot set
			}
			if hot[p[0]] {
				rate *= 8 // fan-out from it
			}
			tm.Demands = append(tm.Demands, Demand{Src: p[0], Dst: p[1], Rate: rate})
		}
	case TrafficElephants:
		// 95/5 preferred/secondary ingress split per source, volumes
		// drawn from a heavy-tailed (Pareto-like) distribution.
		const secondaries = 4
		for src := 0; src < s; src++ {
			vol := 1.0 / (1.0 - 0.999*rng.Float64()) // tail up to ~1000×
			peers := rng.Perm(s)
			picked := make([]SwitchID, 0, secondaries+1)
			for _, p := range peers {
				if p == src {
					continue
				}
				picked = append(picked, SwitchID(p))
				if len(picked) == secondaries+1 {
					break
				}
			}
			if len(picked) == 0 {
				continue
			}
			tm.Demands = append(tm.Demands, Demand{Src: SwitchID(src), Dst: picked[0], Rate: 0.95 * vol})
			rest := picked[1:]
			for _, dst := range rest {
				tm.Demands = append(tm.Demands, Demand{Src: SwitchID(src), Dst: dst, Rate: 0.05 * vol / float64(len(rest))})
			}
		}
	default:
		return nil, fmt.Errorf("network: unknown traffic model %q (want one of %s)", model, strings.Join(TrafficModels(), ", "))
	}
	tm.normalize()
	return tm, nil
}

// samplePairs enumerates every ordered pair when that fits under the
// demand cap, and otherwise draws a seeded sample without replacement.
func samplePairs(s int, rng *rand.Rand) [][2]SwitchID {
	if n := s * (s - 1); n <= maxTrafficDemands {
		out := make([][2]SwitchID, 0, n)
		for a := 0; a < s; a++ {
			for b := 0; b < s; b++ {
				if a != b {
					out = append(out, [2]SwitchID{SwitchID(a), SwitchID(b)})
				}
			}
		}
		return out
	}
	seen := make(map[[2]SwitchID]bool, maxTrafficDemands)
	out := make([][2]SwitchID, 0, maxTrafficDemands)
	for len(out) < maxTrafficDemands {
		a, b := SwitchID(rng.Intn(s)), SwitchID(rng.Intn(s))
		if a == b || seen[[2]SwitchID{a, b}] {
			continue
		}
		seen[[2]SwitchID{a, b}] = true
		out = append(out, [2]SwitchID{a, b})
	}
	return out
}

// normalize sorts, merges duplicate (src, dst) entries, and drops
// non-positive rates, so equal matrices always render identically.
func (tm *TrafficMatrix) normalize() {
	sort.Slice(tm.Demands, func(i, j int) bool {
		a, b := tm.Demands[i], tm.Demands[j]
		return a.Src < b.Src || (a.Src == b.Src && a.Dst < b.Dst)
	})
	out := tm.Demands[:0]
	for _, d := range tm.Demands {
		if d.Rate <= 0 || d.Src == d.Dst {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Src == d.Src && out[n-1].Dst == d.Dst {
			out[n-1].Rate += d.Rate
			continue
		}
		out = append(out, d)
	}
	tm.Demands = out
}

// mixSeed folds the model name into the seed so distinct models with
// the same seed draw independent streams.
func mixSeed(seed int64, model string) int64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x51_7c_c1_b7
	for _, c := range model {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return int64(h & (1<<62 - 1))
}

// Validate checks the matrix against a topology's ID space.
func (tm *TrafficMatrix) Validate(t *Topology) error {
	if tm.S != t.NumSwitches() {
		return fmt.Errorf("network: traffic matrix covers %d switches, topology %q has %d", tm.S, t.Name, t.NumSwitches())
	}
	for _, d := range tm.Demands {
		if int(d.Src) < 0 || int(d.Src) >= tm.S || int(d.Dst) < 0 || int(d.Dst) >= tm.S {
			return fmt.Errorf("network: traffic demand references unknown switch (%d -> %d)", d.Src, d.Dst)
		}
		if d.Src == d.Dst {
			return fmt.Errorf("network: traffic demand with equal endpoints (switch %d)", d.Src)
		}
		if !(d.Rate > 0) || math.IsInf(d.Rate, 0) {
			// The negated comparison also rejects NaN, which a text file
			// can smuggle in through ParseFloat.
			return fmt.Errorf("network: traffic rate %g is not a positive finite number (%d -> %d)", d.Rate, d.Src, d.Dst)
		}
	}
	return nil
}

// PairRates projects the demands onto ordered switch pairs: entry
// [u*S+v] is the aggregate packet rate of demands whose shortest path
// visits u and later v — the packets a coordination header A(u,v) can
// piggyback on. The returned slice is shared and must be treated as
// read-only; it is memoized per (topology, fault epoch).
func (tm *TrafficMatrix) PairRates(t *Topology) ([]float64, error) {
	if tm.pre != nil {
		if tm.S != t.NumSwitches() {
			return nil, fmt.Errorf("network: restricted traffic matrix covers %d switches, topology %q has %d", tm.S, t.Name, t.NumSwitches())
		}
		return tm.pre, nil
	}
	if err := tm.Validate(t); err != nil {
		return nil, err
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.memoTopo == t && tm.memoEpoch == t.FaultEpoch() && tm.memoRates != nil {
		return tm.memoRates, nil
	}
	pairs := make([][2]SwitchID, len(tm.Demands))
	for i, d := range tm.Demands {
		pairs[i] = [2]SwitchID{d.Src, d.Dst}
	}
	paths, err := t.ShortestPaths(pairs)
	if err != nil {
		return nil, fmt.Errorf("network: routing traffic demands: %w", err)
	}
	s := tm.S
	rates := make([]float64, s*s)
	for di, d := range tm.Demands {
		seq := paths[di].Switches
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				rates[int(seq[i])*s+int(seq[j])] += d.Rate
			}
		}
	}
	tm.memoTopo, tm.memoEpoch, tm.memoRates = t, t.FaultEpoch(), rates
	return rates, nil
}

// Restrict compacts the matrix onto a member subset: the result's ID
// space is the member index order (the convention of
// Partition.SubTopology and the shard exchange's host compaction), and
// its pair rates are the global rates between the members — transit
// demand between non-members is dropped. The result carries
// precomputed rates and cannot be formatted.
func (tm *TrafficMatrix) Restrict(t *Topology, members []SwitchID) (*TrafficMatrix, error) {
	rates, err := tm.PairRates(t)
	if err != nil {
		return nil, err
	}
	h := len(members)
	pre := make([]float64, h*h)
	for i, gi := range members {
		for j, gj := range members {
			if i != j {
				pre[i*h+j] = rates[int(gi)*tm.S+int(gj)]
			}
		}
	}
	return &TrafficMatrix{
		Topology: t.Name + "/restricted",
		Model:    "restricted",
		Seed:     tm.Seed,
		S:        h,
		pre:      pre,
	}, nil
}

// Format renders the matrix as text:
//
//	# hermes traffic v1
//	topology <name>
//	model <model>
//	seed <seed>
//	switches <S>
//	<src> <dst> <rate>
//	...
//
// ParseTraffic round-trips it (rates use the shortest exact float
// form). Restrict outputs carry only derived rates and cannot be
// formatted.
func (tm *TrafficMatrix) Format() (string, error) {
	if tm.pre != nil {
		return "", fmt.Errorf("network: restricted traffic matrix has no demand form")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# hermes traffic v1\n")
	fmt.Fprintf(&b, "topology %s\n", tm.Topology)
	fmt.Fprintf(&b, "model %s\n", tm.Model)
	fmt.Fprintf(&b, "seed %d\n", tm.Seed)
	fmt.Fprintf(&b, "switches %d\n", tm.S)
	for _, d := range tm.Demands {
		fmt.Fprintf(&b, "%d %d %s\n", d.Src, d.Dst, strconv.FormatFloat(d.Rate, 'g', -1, 64))
	}
	return b.String(), nil
}

// ParseTraffic reads the text form produced by Format back into a
// matrix validated against t. The switch count must match t; the
// topology name is advisory (a matrix may be replayed onto a
// same-shaped topology) but recorded.
func ParseTraffic(text string, t *Topology) (*TrafficMatrix, error) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	tm := &TrafficMatrix{Topology: t.Name, Model: "custom", S: -1}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "topology "):
			tm.Topology = strings.TrimSpace(strings.TrimPrefix(line, "topology "))
		case strings.HasPrefix(line, "model "):
			tm.Model = strings.TrimSpace(strings.TrimPrefix(line, "model "))
		case strings.HasPrefix(line, "seed "):
			v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, "seed ")), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("network: bad traffic seed line %q: %v", line, err)
			}
			tm.Seed = v
		case strings.HasPrefix(line, "switches "):
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "switches ")))
			if err != nil || v < 2 {
				return nil, fmt.Errorf("network: bad traffic switches line %q", line)
			}
			tm.S = v
		default:
			f := strings.Fields(line)
			if len(f) != 3 {
				return nil, fmt.Errorf("network: bad traffic demand line %q (want: src dst rate)", line)
			}
			src, err := strconv.Atoi(f[0])
			if err != nil {
				return nil, fmt.Errorf("network: bad traffic src %q: %v", f[0], err)
			}
			dst, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("network: bad traffic dst %q: %v", f[1], err)
			}
			rate, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("network: bad traffic rate %q: %v", f[2], err)
			}
			tm.Demands = append(tm.Demands, Demand{Src: SwitchID(src), Dst: SwitchID(dst), Rate: rate})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tm.S < 0 {
		return nil, fmt.Errorf("network: traffic text is missing its switches line")
	}
	if len(tm.Demands) == 0 {
		return nil, fmt.Errorf("network: traffic text has no demand lines")
	}
	if err := tm.Validate(t); err != nil {
		return nil, err
	}
	tm.normalize()
	return tm, nil
}

// ParseTrafficSpec resolves the CLI spelling of a traffic model:
// "<model>" or "<model>:<seed>" (e.g. "gravity:7"). File loading
// (`@path`) is the caller's concern — pass the file contents to
// ParseTraffic instead.
func ParseTrafficSpec(spec string, t *Topology) (*TrafficMatrix, error) {
	model, seedStr, ok := strings.Cut(spec, ":")
	seed := int64(1)
	if ok {
		v, err := strconv.ParseInt(strings.TrimSpace(seedStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("network: bad traffic seed in spec %q: %v", spec, err)
		}
		seed = v
	}
	return GenerateTraffic(t, strings.TrimSpace(model), seed)
}
