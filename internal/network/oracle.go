// Path oracle: a concurrency-safe memoization layer over the
// topology's shortest-path machinery. Every solver in placement,
// baseline, and experiments hammers the same handful of queries —
// ShortestPath between communicating pairs, KShortestPaths for route
// spreading, NearestProgrammable for Alg. 2's SELECT_SWITCHES — and
// recomputing Dijkstra/Yen from scratch at every call site dominates
// solve profiles. The oracle caches:
//
//   - one full single-source Dijkstra tree per source switch, serving
//     every ShortestPath(src, ·) query by O(path) reconstruction;
//   - Yen's k-shortest lists per (src, dst), served as prefixes for any
//     smaller k (Yen's output is prefix-stable in k);
//   - the latency-sorted programmable-candidate list per source,
//     filtered per query by maxLatency/limit.
//
// Cached answers are bit-for-bit identical to the uncached ones: the
// SSSP tree runs a heap-based Dijkstra whose (dist, id) pop order
// matches the uncached O(V²) scan's tie-break exactly (smallest
// distance, then smallest ID) with the same strict-improvement
// relaxation, so reconstructed paths match the early-exit per-pair
// variant bit for bit (see TestOracleMatchesUncached).
//
// The cache is guarded by an RWMutex, invalidated wholesale on
// AddSwitch/AddLink and on every fault-layer mutation (fault.go), and
// never shared across Clone — a clone starts cold. Returned paths are
// fresh copies; callers may keep or mutate them freely.
package network

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CacheStats reports path-oracle effectiveness counters.
type CacheStats struct {
	// Hits and Misses count memoized-query lookups (SSSP trees, k-path
	// lists, and programmable-candidate lists combined).
	Hits, Misses uint64
	// Invalidations counts wholesale cache flushes caused by topology
	// mutation (AddSwitch / AddLink).
	Invalidations uint64
}

// ssspTree is one source's full Dijkstra tree: dist[v] is the t_p
// latency of the shortest src→v path (infDist when unreachable), and
// prev[v] its predecessor.
type ssspTree struct {
	dist []int64
	prev []SwitchID
}

// kspEntry caches Yen's algorithm output for one ordered pair.
// exhausted marks that no further loopless paths exist beyond paths,
// so the entry answers arbitrarily large k.
type kspEntry struct {
	paths     []Path
	exhausted bool
}

// progCand is one programmable switch at its shortest-path latency
// from a cached source.
type progCand struct {
	id  SwitchID
	lat time.Duration
}

// pathCache is the oracle's storage. All three maps are guarded by mu;
// the counters are atomic so read-path hits stay contention-free.
type pathCache struct {
	mu   sync.RWMutex
	sssp map[SwitchID]*ssspTree
	ksp  map[[2]SwitchID]*kspEntry
	near map[SwitchID][]progCand
	// lat is the dense S×S shortest-path latency matrix served by
	// LatencyTable; built once from the sssp trees and treated as
	// immutable until the next invalidation.
	lat []time.Duration

	hits, misses, invalidations atomic.Uint64
}

func newPathCache() *pathCache {
	return &pathCache{
		sssp: map[SwitchID]*ssspTree{},
		ksp:  map[[2]SwitchID]*kspEntry{},
		near: map[SwitchID][]progCand{},
	}
}

// invalidate drops every memoized result; called whenever the graph
// changes shape.
func (c *pathCache) invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sssp = map[SwitchID]*ssspTree{}
	c.ksp = map[[2]SwitchID]*kspEntry{}
	c.near = map[SwitchID][]progCand{}
	c.lat = nil
	c.mu.Unlock()
	c.invalidations.Add(1)
}

// LatencyTable returns the dense shortest-path latency matrix: entry
// [src*S+dst] equals ShortestPath(src, dst).Latency (transit latencies
// of every switch on the path included), or -1 when dst is unreachable
// from src. The slice is cached until the topology mutates and must be
// treated as read-only; index-space consumers (the compiled placement
// kernels) use it to replace per-pair Dijkstra queries with one load.
func (t *Topology) LatencyTable() []time.Duration {
	n := len(t.switches)
	c := t.cache
	if c != nil {
		c.mu.RLock()
		lat := c.lat
		c.mu.RUnlock()
		if lat != nil {
			c.hits.Add(1)
			return lat
		}
		c.misses.Add(1)
	}
	lat := make([]time.Duration, n*n)
	for src := 0; src < n; src++ {
		tree := t.ssspFrom(SwitchID(src))
		row := lat[src*n : (src+1)*n]
		for dst := 0; dst < n; dst++ {
			if tree.dist[dst] == infDist {
				row[dst] = -1
			} else {
				row[dst] = time.Duration(tree.dist[dst])
			}
		}
	}
	if c != nil {
		c.mu.Lock()
		if c.lat != nil {
			lat = c.lat
		} else {
			c.lat = lat
		}
		c.mu.Unlock()
	}
	return lat
}

// PathCacheStats returns the oracle's hit/miss/invalidation counters.
func (t *Topology) PathCacheStats() CacheStats {
	if t.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:          t.cache.hits.Load(),
		Misses:        t.cache.misses.Load(),
		Invalidations: t.cache.invalidations.Load(),
	}
}

// ssspFrom returns the (possibly cached) full Dijkstra tree rooted at
// src. Concurrent callers may compute the tree redundantly on a cold
// cache; the first stored copy wins, and all copies are identical.
func (t *Topology) ssspFrom(src SwitchID) *ssspTree {
	c := t.cache
	if c == nil {
		return t.computeSSSP(src)
	}
	c.mu.RLock()
	tree, ok := c.sssp[src]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return tree
	}
	c.misses.Add(1)
	tree = t.computeSSSP(src)
	c.mu.Lock()
	if prior, exists := c.sssp[src]; exists {
		tree = prior
	} else {
		c.sssp[src] = tree
	}
	c.mu.Unlock()
	return tree
}

// computeSSSP runs a heap-based O((V+E) log V) Dijkstra. The heap is
// ordered by (dist, id), which reproduces the uncached O(V²) scan of
// shortestPathAvoiding exactly: the linear scan settles the smallest-ID
// vertex among equal distances (ascending scan, strict <), and so does
// the (dist, id) pop order; relaxation is the same strict improvement
// in the same adjacency order, so dist and prev — and therefore every
// reconstructed path — are identical. The heap form is what keeps
// 10k-switch topologies tractable (the region-sharded solver issues
// SSSP queries from every used switch when materializing routes; a
// quadratic scan per source is hours at that scale, the heap is
// seconds).
func (t *Topology) computeSSSP(src SwitchID) *ssspTree {
	n := len(t.switches)
	dist := make([]int64, n)
	prev := make([]SwitchID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = infDist
		prev[i] = -1
	}
	// A down source reaches nothing (and nothing reaches it via the
	// neighbor skip below): return the all-unreachable tree.
	if t.downSw[src] {
		return &ssspTree{dist: dist, prev: prev}
	}
	dist[src] = int64(t.switches[src].TransitLatency)
	h := make(distHeap, 0, n)
	h.push(distHeapItem{dist: dist[src], id: src})
	for len(h) > 0 {
		it := h.pop()
		u := it.id
		if done[u] || it.dist > dist[u] {
			continue // stale entry superseded by a later relaxation
		}
		done[u] = true
		for _, e := range t.adj[u] {
			if done[e.to] || t.downSw[e.to] || t.downLink[e.link] {
				continue
			}
			alt := dist[u] + int64(t.links[e.link].Latency) + int64(t.switches[e.to].TransitLatency)
			if alt < dist[e.to] {
				dist[e.to] = alt
				prev[e.to] = u
				h.push(distHeapItem{dist: alt, id: e.to})
			}
		}
	}
	return &ssspTree{dist: dist, prev: prev}
}

// distHeapItem is one labeled vertex in the Dijkstra frontier; stale
// duplicates are skipped on pop (lazy deletion).
type distHeapItem struct {
	dist int64
	id   SwitchID
}

// distHeap is a hand-rolled binary min-heap over (dist, id). The strict
// total order on (dist, id) is what pins the vertex-settling order to
// the legacy linear scan's tie-break; container/heap is avoided to keep
// the inner loop free of interface dispatch.
type distHeap []distHeapItem

func distHeapLess(a, b distHeapItem) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.id < b.id)
}

func (h *distHeap) push(it distHeapItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !distHeapLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *distHeap) pop() distHeapItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && distHeapLess(s[l], s[min]) {
			min = l
		}
		if r < n && distHeapLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// pathTo reconstructs the tree's src→dst path. The error messages match
// the uncached Dijkstra so callers observe identical behavior.
func (tr *ssspTree) pathTo(src, dst SwitchID) (Path, error) {
	if tr.dist[dst] == infDist {
		return Path{}, fmt.Errorf("network: no path from %d to %d", src, dst)
	}
	var seq []SwitchID
	for at := dst; at != -1; at = tr.prev[at] {
		seq = append(seq, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	if seq[0] != src {
		return Path{}, fmt.Errorf("network: path reconstruction failed for %d->%d", src, dst)
	}
	return Path{Switches: seq, Latency: time.Duration(tr.dist[dst])}, nil
}

// programmableByLatency returns the cached latency-sorted list of
// programmable switches reachable from src (excluding src itself).
func (t *Topology) programmableByLatency(src SwitchID) []progCand {
	c := t.cache
	if c != nil {
		c.mu.RLock()
		cands, ok := c.near[src]
		c.mu.RUnlock()
		if ok {
			c.hits.Add(1)
			return cands
		}
		c.misses.Add(1)
	}
	tree := t.ssspFrom(src)
	var cands []progCand
	for _, s := range t.switches {
		if !s.Programmable || s.ID == src || t.downSw[s.ID] || tree.dist[s.ID] == infDist {
			continue
		}
		cands = append(cands, progCand{id: s.ID, lat: time.Duration(tree.dist[s.ID])})
	}
	sortProgCands(cands)
	if c != nil {
		c.mu.Lock()
		c.near[src] = cands
		c.mu.Unlock()
	}
	return cands
}

func sortProgCands(cands []progCand) {
	// Insertion-order-independent: sort by (latency, id), matching the
	// uncached NearestProgrammable tie-break.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if a.lat < b.lat || (a.lat == b.lat && a.id < b.id) {
				break
			}
			cands[j-1], cands[j] = b, a
		}
	}
}

// clonePath returns an independent copy of p.
func clonePath(p Path) Path {
	return Path{Switches: append([]SwitchID(nil), p.Switches...), Latency: p.Latency}
}

func clonePaths(ps []Path) []Path {
	out := make([]Path, len(ps))
	for i, p := range ps {
		out[i] = clonePath(p)
	}
	return out
}

// --- shared helpers for the hot call sites ---

// ChainLatency sums the shortest-path latency between consecutive
// entries of chain — the scoring loop shared by Alg. 2's candidate
// chains and the SPEED/MTP anchor selection. It fails when any
// consecutive pair is disconnected.
func (t *Topology) ChainLatency(chain []SwitchID) (time.Duration, error) {
	var total time.Duration
	for i := 0; i+1 < len(chain); i++ {
		p, err := t.ShortestPath(chain[i], chain[i+1])
		if err != nil {
			return 0, err
		}
		total += p.Latency
	}
	return total, nil
}

// ShortestPaths answers a batch of ordered-pair shortest-path queries
// (the per-pair route loop shared by plan construction and the ε1
// feasibility checks). The i-th result corresponds to pairs[i].
func (t *Topology) ShortestPaths(pairs [][2]SwitchID) ([]Path, error) {
	out := make([]Path, len(pairs))
	for i, pr := range pairs {
		p, err := t.ShortestPath(pr[0], pr[1])
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
