package network

import (
	"strings"
	"testing"
	"time"
)

// faultDiamond builds the 4-switch diamond used by the path tests:
// 0-1-3 (fast) and 0-2-3 (slow), all programmable.
func faultDiamond(t *testing.T) *Topology {
	t.Helper()
	tp := NewTopology("fault-diamond")
	for i := 0; i < 4; i++ {
		tp.AddSwitch(Switch{Programmable: true, Stages: 4, StageCapacity: 1, TransitLatency: time.Microsecond})
	}
	mustLink := func(a, b SwitchID, lat time.Duration) {
		t.Helper()
		if err := tp.AddLink(a, b, lat); err != nil {
			t.Fatalf("AddLink(%d,%d): %v", a, b, err)
		}
	}
	mustLink(0, 1, 1*time.Microsecond)
	mustLink(1, 3, 1*time.Microsecond)
	mustLink(0, 2, 10*time.Microsecond)
	mustLink(2, 3, 10*time.Microsecond)
	return tp
}

func TestFaultMutationsInvalidateOracle(t *testing.T) {
	tp := faultDiamond(t)
	fast, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if !fast.Contains(1) {
		t.Fatalf("expected fast path via 1, got %v", fast.Switches)
	}
	before := tp.PathCacheStats().Invalidations
	epoch := tp.FaultEpoch()

	if err := tp.SetSwitchDown(1); err != nil {
		t.Fatalf("SetSwitchDown: %v", err)
	}
	if tp.PathCacheStats().Invalidations <= before {
		t.Error("SetSwitchDown did not invalidate the path oracle")
	}
	if tp.FaultEpoch() <= epoch {
		t.Error("SetSwitchDown did not bump FaultEpoch")
	}
	slow, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath after fault: %v", err)
	}
	if slow.Contains(1) {
		t.Errorf("path still routes through down switch 1: %v", slow.Switches)
	}

	// No-op mutations must not churn the epoch or cache.
	before = tp.PathCacheStats().Invalidations
	epoch = tp.FaultEpoch()
	if err := tp.SetSwitchDown(1); err != nil {
		t.Fatalf("repeat SetSwitchDown: %v", err)
	}
	if tp.FaultEpoch() != epoch || tp.PathCacheStats().Invalidations != before {
		t.Error("no-op SetSwitchDown mutated epoch or cache")
	}

	if err := tp.SetSwitchUp(1); err != nil {
		t.Fatalf("SetSwitchUp: %v", err)
	}
	again, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath after heal: %v", err)
	}
	if again.Latency != fast.Latency {
		t.Errorf("healed path latency %v, want %v", again.Latency, fast.Latency)
	}
}

func TestLinkFaultReroutesAndHeals(t *testing.T) {
	tp := faultDiamond(t)
	if err := tp.SetLinkDown(1, 3); err != nil {
		t.Fatalf("SetLinkDown: %v", err)
	}
	if !tp.LinkIsDown(3, 1) {
		t.Error("LinkIsDown not symmetric")
	}
	p, err := tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if !p.Contains(2) {
		t.Errorf("expected reroute via 2, got %v", p.Switches)
	}
	tp.Heal()
	if tp.HasFaults() {
		t.Error("Heal left fault state")
	}
	p, err = tp.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath after heal: %v", err)
	}
	if !p.Contains(1) {
		t.Errorf("healed path should use fast branch, got %v", p.Switches)
	}
}

func TestDownSwitchExcludedFromProgrammableAndNearest(t *testing.T) {
	tp := faultDiamond(t)
	if err := tp.SetSwitchDown(2); err != nil {
		t.Fatalf("SetSwitchDown: %v", err)
	}
	for _, id := range tp.ProgrammableSwitches() {
		if id == 2 {
			t.Error("down switch listed programmable")
		}
	}
	near, err := tp.NearestProgrammable(0, -1, 0)
	if err != nil {
		t.Fatalf("NearestProgrammable: %v", err)
	}
	for _, id := range near {
		if id == 2 {
			t.Error("down switch returned by NearestProgrammable")
		}
	}
	if got := tp.DownSwitches(); len(got) != 1 || got[0] != 2 {
		t.Errorf("DownSwitches = %v, want [2]", got)
	}
	if _, err := tp.KShortestPaths(2, 2, 1); err == nil {
		t.Error("KShortestPaths(src==dst) on a down switch should fail")
	}
}

func TestConnectedJudgesSurvivingSubgraph(t *testing.T) {
	// Line 0-1-2: dropping the middle switch partitions the survivors.
	tp, err := Linear(3, TofinoSpec())
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	if !tp.Connected() {
		t.Fatal("line not connected")
	}
	if err := tp.SetSwitchDown(1); err != nil {
		t.Fatalf("SetSwitchDown: %v", err)
	}
	if tp.Connected() {
		t.Error("survivors {0,2} are partitioned; Connected should be false")
	}
	// Dropping an endpoint leaves a connected 2-line.
	tp.Heal()
	if err := tp.SetSwitchDown(0); err != nil {
		t.Fatalf("SetSwitchDown: %v", err)
	}
	if !tp.Connected() {
		t.Error("survivors {1,2} are connected; Connected should be true")
	}
}

func TestCloneCarriesFaultState(t *testing.T) {
	tp := faultDiamond(t)
	if err := tp.SetSwitchDown(1); err != nil {
		t.Fatalf("SetSwitchDown: %v", err)
	}
	if err := tp.SetLinkDown(0, 2); err != nil {
		t.Fatalf("SetLinkDown: %v", err)
	}
	c := tp.Clone()
	if !c.SwitchIsDown(1) || !c.LinkIsDown(0, 2) {
		t.Fatal("clone lost fault state")
	}
	// Healing the clone must not heal the original.
	c.Heal()
	if !tp.SwitchIsDown(1) {
		t.Error("healing clone healed original")
	}
}

func TestFaultErrors(t *testing.T) {
	tp := faultDiamond(t)
	if err := tp.SetSwitchDown(99); err == nil {
		t.Error("SetSwitchDown(99) accepted")
	}
	if err := tp.SetLinkDown(0, 3); err == nil {
		t.Error("SetLinkDown on missing link accepted")
	}
	if tp.HasFaults() {
		t.Error("failed mutations left fault state")
	}
}

func TestGenerateScheduleDeterministicAndGuarded(t *testing.T) {
	tp, err := TableIII(1, TofinoSpec())
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	opts := ScheduleOptions{Seed: 42, Events: 25, MinUpProgrammable: 2}
	a, err := GenerateSchedule(tp, opts)
	if err != nil {
		t.Fatalf("GenerateSchedule: %v", err)
	}
	b, err := GenerateSchedule(tp, opts)
	if err != nil {
		t.Fatalf("GenerateSchedule (2nd): %v", err)
	}
	if a.Format() != b.Format() {
		t.Fatal("equal seeds produced different schedules")
	}
	c, err := GenerateSchedule(tp, ScheduleOptions{Seed: 43, Events: 25, MinUpProgrammable: 2})
	if err != nil {
		t.Fatalf("GenerateSchedule seed 43: %v", err)
	}
	if a.Format() == c.Format() {
		t.Error("different seeds produced identical schedules")
	}

	// Every prefix must keep the guards.
	sim := tp.Clone()
	lastTick := -1
	for i, e := range a.Events {
		if e.Tick < lastTick {
			t.Fatalf("event %d out of tick order: %d after %d", i, e.Tick, lastTick)
		}
		lastTick = e.Tick
		if err := e.Apply(sim); err != nil {
			t.Fatalf("event %d (%s) failed: %v", i, e, err)
		}
		if got := len(sim.ProgrammableSwitches()); got < 2 {
			t.Fatalf("after event %d only %d programmable switches up", i, got)
		}
		if !sim.Connected() {
			t.Fatalf("after event %d survivors disconnected", i)
		}
	}
	if sim.HasFaults() {
		t.Error("schedule does not end fully healed")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	tp := faultDiamond(t)
	s, err := GenerateSchedule(tp, ScheduleOptions{Seed: 7, Events: 5})
	if err != nil {
		t.Fatalf("GenerateSchedule: %v", err)
	}
	got, err := ParseSchedule(strings.NewReader("# comment\n\n" + s.Format()))
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if got.Format() != s.Format() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", got.Format(), s.Format())
	}
	if _, err := ParseSchedule(strings.NewReader("1 bogus-op 2\n")); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := ParseSchedule(strings.NewReader("1 link-down 2\n")); err == nil {
		t.Error("one-endpoint link event accepted")
	}
}
