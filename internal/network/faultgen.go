package network

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// faultgen: a seeded, deterministic fault-schedule generator for the
// supervisor's chaos testing and the Exp#8 survivability sweep. A
// Schedule is a tick-ordered list of fault-layer mutations drawn from
// four failure archetypes:
//
//   - crash: one switch goes down and heals after a sampled downtime;
//   - link-cut: one link goes down and heals after a sampled downtime;
//   - flap: one switch bounces down/up several times in quick
//     succession (the churn the monitor's K-of-N confirmation must
//     absorb);
//   - region: a correlated outage — a switch and its up neighbors fail
//     together and heal together.
//
// Generation simulates the schedule against a shadow clone so every
// prefix of the schedule keeps the surviving subgraph connected and
// keeps at least MinUpProgrammable programmable switches up; candidate
// events that would violate either guard are skipped. The same
// (topology, options) always yields the same schedule.

// FaultOp names one fault-layer mutation.
type FaultOp string

const (
	OpSwitchDown FaultOp = "switch-down"
	OpSwitchUp   FaultOp = "switch-up"
	OpLinkDown   FaultOp = "link-down"
	OpLinkUp     FaultOp = "link-up"
)

// FaultEvent is one scheduled mutation. Switch events use Switch; link
// events use LinkA/LinkB.
type FaultEvent struct {
	// Tick is the event's position on the schedule's logical clock.
	Tick int     `json:"tick"`
	Op   FaultOp `json:"op"`
	// Switch is the target of switch-down/switch-up.
	Switch SwitchID `json:"switch,omitempty"`
	// LinkA, LinkB are the endpoints of link-down/link-up.
	LinkA SwitchID `json:"link_a,omitempty"`
	LinkB SwitchID `json:"link_b,omitempty"`
}

// Apply performs the event's mutation on t.
func (e FaultEvent) Apply(t *Topology) error {
	switch e.Op {
	case OpSwitchDown:
		return t.SetSwitchDown(e.Switch)
	case OpSwitchUp:
		return t.SetSwitchUp(e.Switch)
	case OpLinkDown:
		return t.SetLinkDown(e.LinkA, e.LinkB)
	case OpLinkUp:
		return t.SetLinkUp(e.LinkA, e.LinkB)
	default:
		return fmt.Errorf("network: unknown fault op %q", e.Op)
	}
}

func (e FaultEvent) String() string {
	switch e.Op {
	case OpSwitchDown, OpSwitchUp:
		return fmt.Sprintf("%d %s %d", e.Tick, e.Op, e.Switch)
	default:
		return fmt.Sprintf("%d %s %d %d", e.Tick, e.Op, e.LinkA, e.LinkB)
	}
}

// Schedule is a tick-ordered fault sequence.
type Schedule struct {
	Events []FaultEvent `json:"events"`
}

// Format renders the schedule in the one-event-per-line text form read
// back by ParseSchedule.
func (s *Schedule) Format() string {
	var b strings.Builder
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseSchedule reads the text form: one `<tick> <op> <args>` event per
// line; blank lines and #-comments are skipped.
func ParseSchedule(r io.Reader) (*Schedule, error) {
	var s Schedule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("network: schedule line %d: want `<tick> <op> <args>`, got %q", lineNo, line)
		}
		var e FaultEvent
		if _, err := fmt.Sscanf(fields[0], "%d", &e.Tick); err != nil {
			return nil, fmt.Errorf("network: schedule line %d: bad tick %q", lineNo, fields[0])
		}
		e.Op = FaultOp(fields[1])
		switch e.Op {
		case OpSwitchDown, OpSwitchUp:
			if _, err := fmt.Sscanf(fields[2], "%d", &e.Switch); err != nil {
				return nil, fmt.Errorf("network: schedule line %d: bad switch %q", lineNo, fields[2])
			}
		case OpLinkDown, OpLinkUp:
			if len(fields) < 4 {
				return nil, fmt.Errorf("network: schedule line %d: link event wants two endpoints", lineNo)
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &e.LinkA); err != nil {
				return nil, fmt.Errorf("network: schedule line %d: bad endpoint %q", lineNo, fields[2])
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &e.LinkB); err != nil {
				return nil, fmt.Errorf("network: schedule line %d: bad endpoint %q", lineNo, fields[3])
			}
		default:
			return nil, fmt.Errorf("network: schedule line %d: unknown op %q", lineNo, fields[1])
		}
		s.Events = append(s.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ScheduleOptions parameterizes GenerateSchedule. Zero values take the
// documented defaults.
type ScheduleOptions struct {
	// Seed drives every random choice; equal seeds yield equal schedules.
	Seed int64
	// Events is the number of fault *injections* to generate (heals are
	// extra events appended automatically). Default 10.
	Events int
	// MeanDowntime is the average ticks a crash/link-cut stays down
	// before its heal. Default 6.
	MeanDowntime int
	// MinUpProgrammable is the guard on surviving capacity: no schedule
	// prefix may leave fewer up programmable switches. Default 1.
	MinUpProgrammable int
	// Weights for the four archetypes; all zero means {crash: 4,
	// link-cut: 3, flap: 2, region: 1}.
	CrashWeight, LinkCutWeight, FlapWeight, RegionWeight int
}

func (o *ScheduleOptions) defaults() {
	if o.Events <= 0 {
		o.Events = 10
	}
	if o.MeanDowntime <= 0 {
		o.MeanDowntime = 6
	}
	if o.MinUpProgrammable <= 0 {
		o.MinUpProgrammable = 1
	}
	if o.CrashWeight == 0 && o.LinkCutWeight == 0 && o.FlapWeight == 0 && o.RegionWeight == 0 {
		o.CrashWeight, o.LinkCutWeight, o.FlapWeight, o.RegionWeight = 4, 3, 2, 1
	}
}

// GenerateSchedule produces a deterministic fault schedule for t. The
// returned events are ordered by tick (ties broken by generation
// order); applying any prefix leaves the surviving subgraph connected
// with at least MinUpProgrammable programmable switches up.
func GenerateSchedule(t *Topology, opts ScheduleOptions) (*Schedule, error) {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	shadow := t.Clone()
	shadow.Heal()

	upProg := func(tp *Topology) int { return len(tp.ProgrammableSwitches()) }
	if upProg(shadow) < opts.MinUpProgrammable {
		return nil, fmt.Errorf("network: topology %q has only %d programmable switches, need %d", t.Name, upProg(shadow), opts.MinUpProgrammable)
	}

	var sched Schedule
	// Emission order IS the schedule order: emit clamps ticks to be
	// non-decreasing, so the shadow's state after each emitted event is
	// exactly the consumer's state after the same schedule prefix — the
	// guards are therefore checked on every single event, not just on
	// injection batches.
	lastTick := 0
	emit := func(e FaultEvent) {
		if e.Tick < lastTick {
			e.Tick = lastTick
		}
		lastTick = e.Tick
		sched.Events = append(sched.Events, e)
	}

	flipOp := func(op FaultOp) FaultOp {
		switch op {
		case OpSwitchDown:
			return OpSwitchUp
		case OpSwitchUp:
			return OpSwitchDown
		case OpLinkDown:
			return OpLinkUp
		default:
			return OpLinkDown
		}
	}
	// pending per-event heals not yet applied to the shadow.
	type pendingUp struct {
		tick int
		ev   FaultEvent
	}
	var heals []pendingUp

	// healSafe applies one up event to the shadow and keeps it only if
	// the surviving subgraph stays connected (healing a region's center
	// before its neighbors would isolate it); otherwise rolls back.
	healSafe := func(e FaultEvent) bool {
		if err := e.Apply(shadow); err != nil {
			panic("network: faultgen shadow heal failed: " + err.Error())
		}
		if shadow.Connected() {
			return true
		}
		down := e
		down.Op = flipOp(e.Op)
		if err := down.Apply(shadow); err != nil {
			panic("network: faultgen heal rollback failed: " + err.Error())
		}
		return false
	}
	// applyDue drains heals due by now, deferring any that are not yet
	// safe; looping to a fixpoint guarantees e.g. a region heals
	// neighbors-first regardless of queue order.
	applyDue := func(now int) {
		for {
			progress := false
			kept := heals[:0]
			for _, h := range heals {
				if h.tick <= now && healSafe(h.ev) {
					ev := h.ev
					ev.Tick = h.tick
					emit(ev)
					progress = true
				} else {
					kept = append(kept, h)
				}
			}
			heals = kept
			if !progress {
				return
			}
		}
	}
	// guardOK applies downs to the shadow one at a time and reports
	// whether every intermediate state keeps the guards; on violation it
	// rolls all applied downs back.
	guardOK := func(downs []FaultEvent) bool {
		applied := 0
		ok := true
		for _, e := range downs {
			if err := e.Apply(shadow); err != nil {
				ok = false
				break
			}
			applied++
			if upProg(shadow) < opts.MinUpProgrammable || !shadow.Connected() {
				ok = false
				break
			}
		}
		if !ok {
			for i := applied - 1; i >= 0; i-- {
				e := downs[i]
				e.Op = flipOp(e.Op)
				if err := e.Apply(shadow); err != nil {
					panic("network: faultgen rollback failed: " + err.Error())
				}
			}
		}
		return ok
	}
	downtime := func() int { return 1 + rng.Intn(2*opts.MeanDowntime-1) }
	// queueHeals schedules the inverse of downs at tick ht, reversed so a
	// region tends to heal neighbors-first (applyDue defers unsafe ones
	// anyway).
	queueHeals := func(downs []FaultEvent, ht int) {
		for i := len(downs) - 1; i >= 0; i-- {
			up := downs[i]
			up.Tick = ht
			up.Op = flipOp(up.Op)
			heals = append(heals, pendingUp{tick: ht, ev: up})
		}
	}

	totalW := opts.CrashWeight + opts.LinkCutWeight + opts.FlapWeight + opts.RegionWeight
	tick := 0
	injected := 0
	attempts := 0
	maxAttempts := opts.Events * 50
	for injected < opts.Events && attempts < maxAttempts {
		attempts++
		tick += 1 + rng.Intn(3)
		applyDue(tick)

		roll := rng.Intn(totalW)
		switch {
		case roll < opts.CrashWeight: // crash
			ups := shadow.ProgrammableSwitches()
			// Crashes may also hit non-programmable transit switches.
			all := upSwitches(shadow)
			if len(all) == 0 {
				continue
			}
			var target SwitchID
			if len(ups) > 0 && rng.Intn(4) != 0 {
				target = ups[rng.Intn(len(ups))]
			} else {
				target = all[rng.Intn(len(all))]
			}
			downs := []FaultEvent{{Tick: tick, Op: OpSwitchDown, Switch: target}}
			if !guardOK(downs) {
				continue
			}
			for _, e := range downs {
				emit(e)
			}
			ht := tick + downtime()
			queueHeals(downs, ht)
			injected++

		case roll < opts.CrashWeight+opts.LinkCutWeight: // link-cut
			links := upLinks(shadow)
			if len(links) == 0 {
				continue
			}
			l := links[rng.Intn(len(links))]
			downs := []FaultEvent{{Tick: tick, Op: OpLinkDown, LinkA: l.A, LinkB: l.B}}
			if !guardOK(downs) {
				continue
			}
			for _, e := range downs {
				emit(e)
			}
			ht := tick + downtime()
			queueHeals(downs, ht)
			injected++

		case roll < opts.CrashWeight+opts.LinkCutWeight+opts.FlapWeight: // flap
			all := upSwitches(shadow)
			if len(all) == 0 {
				continue
			}
			target := all[rng.Intn(len(all))]
			downs := []FaultEvent{{Tick: tick, Op: OpSwitchDown, Switch: target}}
			if !guardOK(downs) {
				continue
			}
			// Bounce 2–4 times: down/up pairs one tick apart. The shadow
			// ends in the up state, so no pending heal is queued.
			bounces := 2 + rng.Intn(3)
			ft := tick
			for b := 0; b < bounces; b++ {
				emit(FaultEvent{Tick: ft, Op: OpSwitchDown, Switch: target})
				ft++
				emit(FaultEvent{Tick: ft, Op: OpSwitchUp, Switch: target})
				ft++
			}
			if err := shadow.SetSwitchUp(target); err != nil {
				panic("network: faultgen flap restore failed: " + err.Error())
			}
			// Advance past the flap window so later injections (guard-checked
			// with this switch up) cannot land inside a down bounce.
			tick = ft
			injected++

		default: // correlated regional outage
			all := upSwitches(shadow)
			if len(all) == 0 {
				continue
			}
			center := all[rng.Intn(len(all))]
			region := []SwitchID{center}
			for _, nb := range shadow.Neighbors(center) {
				if !shadow.SwitchIsDown(nb) {
					region = append(region, nb)
				}
			}
			// Cap the blast radius at 3 switches so the guard has a chance
			// on sparse topologies.
			if len(region) > 3 {
				region = region[:3]
			}
			downs := make([]FaultEvent, len(region))
			for i, id := range region {
				downs[i] = FaultEvent{Tick: tick, Op: OpSwitchDown, Switch: id}
			}
			if !guardOK(downs) {
				continue
			}
			for _, e := range downs {
				emit(e)
			}
			ht := tick + downtime()
			queueHeals(downs, ht)
			injected++
		}
	}
	// Flush remaining heals so every schedule ends fully healed. The
	// fixpoint loop in applyDue always makes progress: while any element
	// is down, at least one down element borders the up component, and
	// healing it is safe.
	for len(heals) > 0 {
		before := len(heals)
		applyDue(1 << 30)
		if len(heals) == before {
			panic("network: faultgen final heal stuck")
		}
	}
	if shadow.HasFaults() {
		panic("network: faultgen shadow not fully healed")
	}
	if injected < opts.Events {
		return nil, fmt.Errorf("network: faultgen could only place %d/%d events on %q under guards", injected, opts.Events, t.Name)
	}
	return &sched, nil
}

// upSwitches lists switches not marked down, ascending.
func upSwitches(t *Topology) []SwitchID {
	var out []SwitchID
	for _, s := range t.Switches() {
		if !t.SwitchIsDown(s.ID) {
			out = append(out, s.ID)
		}
	}
	return out
}

// upLinks lists links whose endpoints and the link itself are up.
func upLinks(t *Topology) []Link {
	var out []Link
	for _, l := range t.Links() {
		if t.LinkIsDown(l.A, l.B) || t.SwitchIsDown(l.A) || t.SwitchIsDown(l.B) {
			continue
		}
		out = append(out, l)
	}
	return out
}
