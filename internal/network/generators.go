package network

import (
	"fmt"
	"math/rand"
	"time"
)

// SwitchSpec carries the per-switch defaults used by generators.
type SwitchSpec struct {
	// Stages and StageCapacity configure programmable switches;
	// defaults model a Tofino-class pipeline (12 stages, unit capacity).
	Stages        int
	StageCapacity float64
	// TransitLatency is t_s(u); the paper sets 1 µs.
	TransitLatency time.Duration
	// LinkLatencyMin/Max bound the uniformly random t_l(u,v); the paper
	// uses 1–10 ms for WANs.
	LinkLatencyMin time.Duration
	LinkLatencyMax time.Duration
	// ProgrammableFraction is the share of switches made programmable
	// (the paper randomly selects 50%).
	ProgrammableFraction float64
}

// TofinoSpec returns the paper's simulation settings: Tofino-like
// switches (12 stages), 1 µs transit, 1–10 ms links, 50% programmable.
func TofinoSpec() SwitchSpec {
	return SwitchSpec{
		Stages:               12,
		StageCapacity:        1.0,
		TransitLatency:       time.Microsecond,
		LinkLatencyMin:       time.Millisecond,
		LinkLatencyMax:       10 * time.Millisecond,
		ProgrammableFraction: 0.5,
	}
}

// TestbedSpec returns settings for the 3-switch testbed: all switches
// programmable, 100 Gbps short links (modeled at 1 µs).
func TestbedSpec() SwitchSpec {
	return SwitchSpec{
		Stages:               12,
		StageCapacity:        1.0,
		TransitLatency:       time.Microsecond,
		LinkLatencyMin:       time.Microsecond,
		LinkLatencyMax:       time.Microsecond,
		ProgrammableFraction: 1.0,
	}
}

func (s SwitchSpec) linkLatency(rng *rand.Rand) time.Duration {
	if s.LinkLatencyMax <= s.LinkLatencyMin {
		return s.LinkLatencyMin
	}
	span := int64(s.LinkLatencyMax - s.LinkLatencyMin)
	return s.LinkLatencyMin + time.Duration(rng.Int63n(span+1))
}

// Linear builds a linear chain of n switches, all programmable — the
// paper's Tofino testbed shape (three switches in a line).
func Linear(n int, spec SwitchSpec) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("network: linear topology needs n > 0, got %d", n)
	}
	t := NewTopology(fmt.Sprintf("linear-%d", n))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		t.AddSwitch(Switch{
			Name:           fmt.Sprintf("sw%d", i),
			Programmable:   true,
			Stages:         spec.Stages,
			StageCapacity:  spec.StageCapacity,
			TransitLatency: spec.TransitLatency,
		})
	}
	for i := 0; i+1 < n; i++ {
		if err := t.AddLink(SwitchID(i), SwitchID(i+1), spec.linkLatency(rng)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FatTree builds a k-ary fat-tree data center topology (k even):
// (k/2)^2 core switches, k pods of k/2 aggregation + k/2 edge switches.
// Programmability is assigned per spec.ProgrammableFraction, seeded.
func FatTree(k int, spec SwitchSpec, seed int64) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("network: fat-tree arity must be even and >= 2, got %d", k)
	}
	rng := rand.New(rand.NewSource(seed))
	t := NewTopology(fmt.Sprintf("fattree-%d", k))
	half := k / 2
	numCore := half * half

	core := make([]SwitchID, numCore)
	for i := range core {
		core[i] = t.AddSwitch(Switch{Name: fmt.Sprintf("core%d", i), TransitLatency: spec.TransitLatency})
	}
	aggOf := make([][]SwitchID, k)
	edgeOf := make([][]SwitchID, k)
	for p := 0; p < k; p++ {
		aggOf[p] = make([]SwitchID, half)
		edgeOf[p] = make([]SwitchID, half)
		for i := 0; i < half; i++ {
			aggOf[p][i] = t.AddSwitch(Switch{Name: fmt.Sprintf("agg%d_%d", p, i), TransitLatency: spec.TransitLatency})
			edgeOf[p][i] = t.AddSwitch(Switch{Name: fmt.Sprintf("edge%d_%d", p, i), TransitLatency: spec.TransitLatency})
		}
		// Pod mesh: every edge connects to every aggregation switch.
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				if err := t.AddLink(aggOf[p][i], edgeOf[p][j], spec.linkLatency(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Core links: agg i in each pod connects to cores [i*half, (i+1)*half).
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				if err := t.AddLink(aggOf[p][i], core[i*half+j], spec.linkLatency(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	markProgrammable(t, spec, rng)
	return t, nil
}

// Ring builds a cycle of n switches (n >= 3), programmability per spec.
// Rings exercise the path diversity the route optimizer exploits: every
// pair has exactly two disjoint routes.
func Ring(n int, spec SwitchSpec, seed int64) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("network: ring needs n >= 3, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	t := NewTopology(fmt.Sprintf("ring-%d", n))
	for i := 0; i < n; i++ {
		t.AddSwitch(Switch{Name: fmt.Sprintf("r%d", i), TransitLatency: spec.TransitLatency})
	}
	for i := 0; i < n; i++ {
		if err := t.AddLink(SwitchID(i), SwitchID((i+1)%n), spec.linkLatency(rng)); err != nil {
			return nil, err
		}
	}
	markProgrammable(t, spec, rng)
	return t, nil
}

// Grid builds a rows×cols mesh, programmability per spec. Grids model
// structured WAN/metro fabrics with multi-path diversity.
func Grid(rows, cols int, spec SwitchSpec, seed int64) (*Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("network: grid needs at least 2 switches, got %dx%d", rows, cols)
	}
	rng := rand.New(rand.NewSource(seed))
	t := NewTopology(fmt.Sprintf("grid-%dx%d", rows, cols))
	id := func(r, c int) SwitchID { return SwitchID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.AddSwitch(Switch{Name: fmt.Sprintf("g%d_%d", r, c), TransitLatency: spec.TransitLatency})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := t.AddLink(id(r, c), id(r, c+1), spec.linkLatency(rng)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := t.AddLink(id(r, c), id(r+1, c), spec.linkLatency(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	markProgrammable(t, spec, rng)
	return t, nil
}

// RandomWAN builds a connected random WAN-like topology with exactly
// nodes switches and edges links (edges >= nodes-1), deterministic in
// seed. A random spanning tree guarantees connectivity; remaining links
// are sampled uniformly among absent pairs.
func RandomWAN(name string, nodes, edges int, spec SwitchSpec, seed int64) (*Topology, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("network: WAN needs nodes > 0, got %d", nodes)
	}
	minEdges := nodes - 1
	maxEdges := nodes * (nodes - 1) / 2
	if edges < minEdges || edges > maxEdges {
		return nil, fmt.Errorf("network: %d nodes cannot carry %d edges (need %d..%d)", nodes, edges, minEdges, maxEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	t := NewTopology(name)
	for i := 0; i < nodes; i++ {
		t.AddSwitch(Switch{Name: fmt.Sprintf("w%d", i), TransitLatency: spec.TransitLatency})
	}
	// Random spanning tree: connect each new node to a random earlier one.
	perm := rng.Perm(nodes)
	for i := 1; i < nodes; i++ {
		a := SwitchID(perm[i])
		b := SwitchID(perm[rng.Intn(i)])
		if err := t.AddLink(a, b, spec.linkLatency(rng)); err != nil {
			return nil, err
		}
	}
	// Extra links.
	for t.NumLinks() < edges {
		a := SwitchID(rng.Intn(nodes))
		b := SwitchID(rng.Intn(nodes))
		if a == b {
			continue
		}
		if _, dup := t.LinkBetween(a, b); dup {
			continue
		}
		if err := t.AddLink(a, b, spec.linkLatency(rng)); err != nil {
			return nil, err
		}
	}
	markProgrammable(t, spec, rng)
	return t, nil
}

func markProgrammable(t *Topology, spec SwitchSpec, rng *rand.Rand) {
	n := t.NumSwitches()
	count := int(float64(n)*spec.ProgrammableFraction + 0.5)
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	for _, idx := range rng.Perm(n)[:count] {
		s := t.switches[idx]
		s.Programmable = true
		s.Stages = spec.Stages
		s.StageCapacity = spec.StageCapacity
	}
}

// CompositeWAN stitches `regions` Table III-sized WAN regions into one
// connected topology — the scaled evaluation substrate for the
// region-sharded solver (Exp#10 extends the paper's Fig. 9 curve by two
// orders of magnitude with these). Region i is an independent
// RandomWAN with the node/edge counts of Table III row (i mod 10),
// seeded from seed+i+1 so every region differs deterministically;
// switch names are prefixed r<i>_ and region i occupies the contiguous
// ID range starting at i's base. Consecutive regions are stitched by
// two inter-region links (plus a ring-closing pair and a few long
// chords once regions > 2), mirroring how real WAN interconnects join
// metro fabrics: boundary edges are sparse relative to intra-region
// edges, which is exactly the regime the boundary-exchange
// reconciliation targets. ~70 switches per region: composite-30 is
// ~2.1k switches, composite-143 is ~10k.
func CompositeWAN(regions int, spec SwitchSpec, seed int64) (*Topology, error) {
	if regions <= 0 {
		return nil, fmt.Errorf("network: composite WAN needs regions > 0, got %d", regions)
	}
	t := NewTopology(fmt.Sprintf("composite-%d", regions))
	rng := rand.New(rand.NewSource(seed))
	base := make([]SwitchID, regions)
	size := make([]int, regions)
	for i := 0; i < regions; i++ {
		row := tableIII[i%len(tableIII)]
		nodes, edges := row.nodes, row.edges
		if edges < nodes-1 {
			edges = nodes - 1
		}
		reg, err := RandomWAN(fmt.Sprintf("c%d", i), nodes, edges, spec, seed+int64(i)+1)
		if err != nil {
			return nil, err
		}
		base[i] = SwitchID(t.NumSwitches())
		size[i] = nodes
		for _, s := range reg.Switches() {
			c := *s
			c.Name = fmt.Sprintf("r%d_%s", i, s.Name)
			t.AddSwitch(c)
		}
		for _, l := range reg.Links() {
			if err := t.AddLink(base[i]+l.A, base[i]+l.B, l.Latency); err != nil {
				return nil, err
			}
		}
	}
	// stitch joins regions a and b with one fresh link between random
	// members; duplicate picks retry (regions are ~70 switches, so a
	// handful of attempts always suffices).
	stitch := func(a, b int) error {
		for attempt := 0; attempt < 64; attempt++ {
			u := base[a] + SwitchID(rng.Intn(size[a]))
			v := base[b] + SwitchID(rng.Intn(size[b]))
			if _, dup := t.LinkBetween(u, v); dup {
				continue
			}
			return t.AddLink(u, v, spec.linkLatency(rng))
		}
		return fmt.Errorf("network: composite WAN could not stitch regions %d-%d", a, b)
	}
	for i := 0; i+1 < regions; i++ {
		if err := stitch(i, i+1); err != nil {
			return nil, err
		}
		if err := stitch(i, i+1); err != nil {
			return nil, err
		}
	}
	if regions > 2 {
		if err := stitch(regions-1, 0); err != nil {
			return nil, err
		}
		// Long chords shrink the ring diameter (real WAN backbones are
		// not pure rings); one chord per four regions.
		for c := 0; c < regions/4; c++ {
			a := rng.Intn(regions)
			b := (a + regions/2) % regions
			if a == b {
				continue
			}
			if err := stitch(a, b); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// tableIII lists the node/edge counts of the paper's Table III.
var tableIII = []struct{ nodes, edges int }{
	{65, 78}, {70, 85}, {75, 99}, {66, 75}, {73, 70},
	{72, 84}, {68, 92}, {71, 88}, {74, 92}, {69, 98},
}

// TableIII returns the i-th (1-based) evaluation topology with the
// exact node and edge count from the paper's Table III, generated
// deterministically. Topology 5 in the table lists fewer edges than
// nodes (73 nodes, 70 edges), which cannot be connected; we keep the
// published node count and raise the edge count to nodes-1 (72), the
// minimum connected graph, and record the adjustment in the name.
func TableIII(i int, spec SwitchSpec) (*Topology, error) {
	if i < 1 || i > len(tableIII) {
		return nil, fmt.Errorf("network: Table III index must be 1..%d, got %d", len(tableIII), i)
	}
	row := tableIII[i-1]
	nodes, edges := row.nodes, row.edges
	name := fmt.Sprintf("tableIII-%d", i)
	if edges < nodes-1 {
		edges = nodes - 1
		name += "-adj"
	}
	return RandomWAN(name, nodes, edges, spec, int64(1000+i))
}

// TableIIISize reports the published (nodes, edges) of topology i.
func TableIIISize(i int) (nodes, edges int, err error) {
	if i < 1 || i > len(tableIII) {
		return 0, 0, fmt.Errorf("network: Table III index must be 1..%d, got %d", len(tableIII), i)
	}
	return tableIII[i-1].nodes, tableIII[i-1].edges, nil
}

// NumTableIII returns how many topologies Table III defines.
func NumTableIII() int { return len(tableIII) }
