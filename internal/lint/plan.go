package lint

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// resourceTol mirrors the numeric tolerance Plan.Validate applies to
// requirement and capacity sums. The value is re-stated here on
// purpose: the lint pass is an independent implementation and must not
// share constants with the code it checks.
const resourceTol = 1e-6

// LintPlan re-implements every constraint of problem P#1 (Eq. 4–9)
// from scratch and checks the plan against them, without calling
// Plan.Validate. Findings with Oracle set correspond to constraints
// Plan.Validate also enforces; CheckPlanOracle diffs the two verdicts.
func LintPlan(p *placement.Plan, rm program.ResourceModel, eps1 time.Duration, eps2 int) Findings {
	var fs Findings
	if p == nil || p.Graph == nil || p.Topo == nil {
		return Findings{{Rule: "HL000", Severity: Error, Message: "nil or incomplete plan", Oracle: true}}
	}
	// The mutation tests tamper with Assignments in place; HL109's
	// accessor cross-check must see the live plan, not a memoized pair
	// table from before the tampering.
	p.InvalidateCache()

	fs = append(fs, lintDeploymentVars(p, rm)...)
	fs = append(fs, lintStageCapacity(p)...)
	fs = append(fs, lintEdgeConstraints(p)...)
	fs = append(fs, lintSwitchDAG(p)...)
	fs = append(fs, lintObjectives(p, eps1, eps2)...)
	fs.Sort()
	return fs
}

// lintDeploymentVars checks Eq. 6 node deployment and the Eq. 8 stage
// window shape per MAT: every MAT lands on a programmable switch, in a
// contiguous ρ_begin..ρ_end run inside the pipeline, with exactly its
// requirement placed (HL101–HL103).
func lintDeploymentVars(p *placement.Plan, rm program.ResourceModel) Findings {
	var fs Findings
	for _, n := range p.Graph.Nodes() {
		name := n.Name()
		sp, ok := p.Assignments[name]
		if !ok {
			fs = append(fs, Finding{Rule: "HL101", Severity: Error, Eq: 6, Oracle: true,
				Object:  name,
				Message: fmt.Sprintf("MAT %q has no placement (Eq. 6: every MAT must be deployed)", name),
				Hint:    "the solver dropped the MAT; rerun with more capacity or fewer constraints"})
			continue
		}
		sw, err := p.Topo.Switch(sp.Switch)
		if err != nil {
			fs = append(fs, Finding{Rule: "HL102", Severity: Error, Eq: 6, Oracle: true,
				Object:  name,
				Message: fmt.Sprintf("MAT %q assigned to unknown %s", name, placement.SwitchLabel(p.Topo, sp.Switch))})
			continue
		}
		if !sw.Programmable {
			fs = append(fs, Finding{Rule: "HL102", Severity: Error, Eq: 6, Oracle: true,
				Object:  name,
				Message: fmt.Sprintf("MAT %q assigned to non-programmable %s", name, placement.SwitchLabel(p.Topo, sp.Switch)),
				Hint:    "only switches with P(u)=1 may host MATs"})
			continue
		}
		if p.Topo.SwitchIsDown(sp.Switch) {
			fs = append(fs, Finding{Rule: "HL112", Severity: Error, Eq: 6, Oracle: true,
				Object:  name,
				Message: fmt.Sprintf("MAT %q assigned to %s, which is marked down in the topology's fault state", name, placement.SwitchLabel(p.Topo, sp.Switch)),
				Hint:    "replan around the failure (the supervisor does this automatically) or heal the switch"})
			continue
		}
		if sp.Start < 0 || sp.End >= sw.Stages || sp.Start > sp.End {
			fs = append(fs, Finding{Rule: "HL103", Severity: Error, Eq: 8, Oracle: true,
				Object: name,
				Message: fmt.Sprintf("MAT %q on %s occupies stage window [%d,%d] outside the pipeline 0..%d (ρ_begin/ρ_end)",
					name, placement.SwitchLabel(p.Topo, sp.Switch), sp.Start, sp.End, sw.Stages-1)})
			continue
		}
		if len(sp.PerStage) != sp.End-sp.Start+1 {
			fs = append(fs, Finding{Rule: "HL103", Severity: Error, Eq: 8, Oracle: true,
				Object: name,
				Message: fmt.Sprintf("MAT %q on %s: per-stage slice has %d entries for stage window [%d,%d] (contiguity broken)",
					name, placement.SwitchLabel(p.Topo, sp.Switch), len(sp.PerStage), sp.Start, sp.End)})
			continue
		}
		total, negative := 0.0, false
		for _, amt := range sp.PerStage {
			if amt < -1e-12 {
				negative = true
			}
			total += amt
		}
		if negative {
			fs = append(fs, Finding{Rule: "HL103", Severity: Error, Eq: 6, Oracle: true,
				Object:  name,
				Message: fmt.Sprintf("MAT %q on %s has a negative per-stage amount", name, placement.SwitchLabel(p.Topo, sp.Switch))})
			continue
		}
		if req := rm.Requirement(n.MAT); math.Abs(total-req) > resourceTol {
			fs = append(fs, Finding{Rule: "HL103", Severity: Error, Eq: 6, Oracle: true,
				Object: name,
				Message: fmt.Sprintf("MAT %q on %s places %g of its required %g resources (Eq. 6: the full requirement must land)",
					name, placement.SwitchLabel(p.Topo, sp.Switch), total, req)})
		}
	}
	return fs
}

// lintStageCapacity re-accumulates per-stage loads and checks Eq. 9
// (HL104). Assignments for MATs outside the graph are folded in too —
// they consume real stages.
func lintStageCapacity(p *placement.Plan) Findings {
	type slot struct {
		sw    network.SwitchID
		stage int
	}
	load := map[slot]float64{}
	for _, sp := range p.Assignments {
		sw, err := p.Topo.Switch(sp.Switch)
		if err != nil || !sw.Programmable {
			continue // HL102 already covers it
		}
		for i, amt := range sp.PerStage {
			load[slot{sp.Switch, sp.Start + i}] += amt
		}
	}
	keys := make([]slot, 0, len(load))
	for k := range load {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sw != keys[j].sw {
			return keys[i].sw < keys[j].sw
		}
		return keys[i].stage < keys[j].stage
	})
	var fs Findings
	for _, k := range keys {
		sw, err := p.Topo.Switch(k.sw)
		if err != nil {
			continue
		}
		if load[k] > sw.StageCapacity+resourceTol {
			fs = append(fs, Finding{Rule: "HL104", Severity: Error, Eq: 9, Oracle: true,
				Object: fmt.Sprintf("switch:%s", sw.Name),
				Message: fmt.Sprintf("%s stage %d carries %g of capacity %g (Eq. 9)",
					placement.SwitchLabel(p.Topo, k.sw), k.stage, load[k], sw.StageCapacity),
				Hint: "spread the MATs across more stages or switches"})
		}
	}
	return fs
}

// lintEdgeConstraints walks every TDG edge: co-located pairs must obey
// intra-switch stage order (Eq. 8, HL105); cross-switch pairs need a
// route connecting exactly their switches (Eq. 7, HL106), and the
// route must traverse real links with a truthful latency (HL111 —
// stricter than Plan.Validate, hence not an oracle finding).
func lintEdgeConstraints(p *placement.Plan) Findings {
	var fs Findings
	for _, e := range p.Graph.Edges() {
		sa, oka := p.Assignments[e.From]
		sb, okb := p.Assignments[e.To]
		if !oka || !okb {
			continue // HL101 already covers it
		}
		if sa.Switch == sb.Switch {
			if sa.End >= sb.Start {
				fs = append(fs, Finding{Rule: "HL105", Severity: Error, Eq: 8, Oracle: true,
					Object: e.From + "->" + e.To,
					Message: fmt.Sprintf("co-located dependency %s->%s on %s: upstream ends in stage %d, downstream starts in stage %d (Eq. 8 needs ρ_end(a) < ρ_begin(b))",
						e.From, e.To, placement.SwitchLabel(p.Topo, sa.Switch), sa.End, sb.Start)})
			}
			continue
		}
		key := placement.RouteKey{From: sa.Switch, To: sb.Switch}
		path, ok := p.Routes[key]
		if !ok {
			fs = append(fs, Finding{Rule: "HL106", Severity: Error, Eq: 7, Oracle: true,
				Object: e.From + "->" + e.To,
				Message: fmt.Sprintf("cross-switch dependency %s->%s has no route %s -> %s (Eq. 7)",
					e.From, e.To, placement.SwitchLabel(p.Topo, sa.Switch), placement.SwitchLabel(p.Topo, sb.Switch))})
			continue
		}
		if len(path.Switches) == 0 || path.Switches[0] != sa.Switch || path.Switches[len(path.Switches)-1] != sb.Switch {
			fs = append(fs, Finding{Rule: "HL106", Severity: Error, Eq: 7, Oracle: true,
				Object: e.From + "->" + e.To,
				Message: fmt.Sprintf("route for %s->%s does not connect %s to %s",
					e.From, e.To, placement.SwitchLabel(p.Topo, sa.Switch), placement.SwitchLabel(p.Topo, sb.Switch))})
			continue
		}
		fs = append(fs, lintRoutePhysical(p, key, path)...)
	}
	return fs
}

// lintRoutePhysical verifies a route hop by hop against the topology:
// every consecutive pair must be an actual link, and the recorded
// latency must equal the recomputed transit+link sum (HL111).
func lintRoutePhysical(p *placement.Plan, key placement.RouteKey, path network.Path) Findings {
	var fs Findings
	obj := fmt.Sprintf("route:%d->%d", key.From, key.To)
	var total time.Duration
	for i, id := range path.Switches {
		sw, err := p.Topo.Switch(id)
		if err != nil {
			return Findings{{Rule: "HL111", Severity: Error, Object: obj,
				Message: fmt.Sprintf("route %s -> %s visits unknown switch %d",
					placement.SwitchLabel(p.Topo, key.From), placement.SwitchLabel(p.Topo, key.To), id)}}
		}
		total += sw.TransitLatency
		if i == 0 {
			continue
		}
		link, ok := p.Topo.LinkBetween(path.Switches[i-1], id)
		if !ok {
			return Findings{{Rule: "HL111", Severity: Error, Object: obj,
				Message: fmt.Sprintf("route %s -> %s hops %s -> %s without a link",
					placement.SwitchLabel(p.Topo, key.From), placement.SwitchLabel(p.Topo, key.To),
					placement.SwitchLabel(p.Topo, path.Switches[i-1]), placement.SwitchLabel(p.Topo, id))}}
		}
		total += link.Latency
	}
	if total != path.Latency {
		fs = append(fs, Finding{Rule: "HL111", Severity: Error, Object: obj,
			Message: fmt.Sprintf("route %s -> %s records latency %v, links and transit sum to %v",
				placement.SwitchLabel(p.Topo, key.From), placement.SwitchLabel(p.Topo, key.To), path.Latency, total)})
	}
	return fs
}

// lintSwitchDAG contracts the TDG by switch assignment and verifies
// the contraction is acyclic (HL110): a cyclic switch-level graph
// admits no single packet traversal respecting all dependencies.
func lintSwitchDAG(p *placement.Plan) Findings {
	adj := map[network.SwitchID]map[network.SwitchID]bool{}
	nodes := map[network.SwitchID]bool{}
	for _, sp := range p.Assignments {
		nodes[sp.Switch] = true
	}
	for _, e := range p.Graph.Edges() {
		sa, oka := p.Assignments[e.From]
		sb, okb := p.Assignments[e.To]
		if !oka || !okb || sa.Switch == sb.Switch {
			continue
		}
		if adj[sa.Switch] == nil {
			adj[sa.Switch] = map[network.SwitchID]bool{}
		}
		adj[sa.Switch][sb.Switch] = true
	}
	indeg := map[network.SwitchID]int{}
	for id := range nodes {
		indeg[id] = 0
	}
	for _, tos := range adj {
		for to := range tos {
			indeg[to]++
		}
	}
	var ready []network.SwitchID
	for id := range nodes {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	done := 0
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		done++
		for to := range adj[id] {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if done == len(nodes) {
		return nil
	}
	var stuck []string
	for id := range nodes {
		if indeg[id] > 0 {
			stuck = append(stuck, placement.SwitchLabel(p.Topo, id))
		}
	}
	sort.Strings(stuck)
	return Findings{{Rule: "HL110", Severity: Error, Oracle: true,
		Message: fmt.Sprintf("switch-level dependency graph is cyclic among %v: no packet route can respect all dependencies", stuck),
		Hint:    "co-locate the cycle's MATs or move one endpoint"}}
}

// lintObjectives recomputes A_max, t_e2e, and Q_occ from the raw
// decision variables, checks the ε bounds (Eq. 4/5: HL107/HL108), and
// diffs each recomputation against the Plan's own accessors (HL109).
func lintObjectives(p *placement.Plan, eps1 time.Duration, eps2 int) Findings {
	var fs Findings
	// Recompute per-pair bytes from edges and assignments.
	pair := map[placement.RouteKey]int{}
	occ := map[network.SwitchID]bool{}
	for _, sp := range p.Assignments {
		occ[sp.Switch] = true
	}
	for _, e := range p.Graph.Edges() {
		sa, oka := p.Assignments[e.From]
		sb, okb := p.Assignments[e.To]
		if !oka || !okb || sa.Switch == sb.Switch {
			continue
		}
		pair[placement.RouteKey{From: sa.Switch, To: sb.Switch}] += e.MetadataBytes
	}
	amax := 0
	var te2e time.Duration
	for key, bytes := range pair {
		if bytes > amax {
			amax = bytes
		}
		if path, ok := p.Routes[key]; ok {
			te2e += path.Latency
		}
	}
	qocc := len(occ)

	if eps1 > 0 && te2e > eps1 {
		fs = append(fs, Finding{Rule: "HL107", Severity: Error, Eq: 4, Oracle: true,
			Message: fmt.Sprintf("t_e2e %v exceeds ε1 %v (Eq. 4)", te2e, eps1)})
	}
	if eps2 > 0 && qocc > eps2 {
		fs = append(fs, Finding{Rule: "HL108", Severity: Error, Eq: 5, Oracle: true,
			Message: fmt.Sprintf("Q_occ %d exceeds ε2 %d (Eq. 5)", qocc, eps2)})
	}
	if got := p.AMax(); got != amax {
		fs = append(fs, Finding{Rule: "HL109", Severity: Error,
			Message: fmt.Sprintf("Plan.AMax() reports %dB, recomputation from assignments gives %dB", got, amax)})
	}
	if got := p.TE2E(); got != te2e {
		fs = append(fs, Finding{Rule: "HL109", Severity: Error,
			Message: fmt.Sprintf("Plan.TE2E() reports %v, recomputation from routes gives %v", got, te2e)})
	}
	if got := p.QOcc(); got != qocc {
		fs = append(fs, Finding{Rule: "HL109", Severity: Error,
			Message: fmt.Sprintf("Plan.QOcc() reports %d, recomputation from assignments gives %d", got, qocc)})
	}
	return fs
}

// CheckPlanOracle is the differential plan-invariant oracle: the
// independent HL1xx re-implementation and the production validators
// (Plan.Validate, then deploy.Compile + Deployment.Verify on plans
// both accept) must agree. Any divergence — lint rejects what Validate
// accepts, or vice versa — is returned as an error naming both
// verdicts; solver tests run it over Greedy, Exact, and ILP output so
// a bug in any solver or either checker surfaces as a lint failure.
func CheckPlanOracle(p *placement.Plan, rm program.ResourceModel, eps1 time.Duration, eps2 int, aopts analyzer.Options) error {
	fs := LintPlan(p, rm, eps1, eps2)
	oracle := fs.OracleErrors()
	verr := p.Validate(rm, eps1, eps2)
	switch {
	case verr == nil && len(oracle) > 0:
		return fmt.Errorf("oracle divergence: Plan.Validate accepts the plan but lint rejects it:\n%s", oracle.Text())
	case verr != nil && len(oracle) == 0:
		return fmt.Errorf("oracle divergence: Plan.Validate rejects the plan (%v) but lint finds no oracle error", verr)
	case verr != nil:
		// Both reject: agreement.
		return nil
	}
	// Both accept: the deployment backend must agree too.
	dep, err := deploy.Compile(p, aopts)
	if err != nil {
		return fmt.Errorf("oracle divergence: plan passes Validate and lint but deploy.Compile fails: %w", err)
	}
	if err := dep.Verify(); err != nil {
		return fmt.Errorf("oracle divergence: plan passes Validate and lint but Deployment.Verify fails: %w", err)
	}
	// Non-oracle strict findings (HL109/HL111) still indicate internal
	// inconsistency even on Validate-clean plans.
	var strict Findings
	for _, f := range fs {
		if !f.Oracle && f.Severity == Error {
			strict = append(strict, f)
		}
	}
	if len(strict) > 0 {
		return fmt.Errorf("plan passes Validate but fails strict lint checks:\n%s", strict.Text())
	}
	return nil
}

// init registers the lint engine with the analyzer and the placement
// solvers so their Options.Lint flags take effect for any importer of
// this package. The hooks fail only on error-severity findings.
func init() {
	analyzer.GraphLintHook = func(g *tdg.Graph, opts analyzer.Options) error {
		return LintGraph(g, Options{Analyzer: opts}).Err()
	}
	placement.PlanLintHook = func(p *placement.Plan, opts placement.Options) error {
		rm := program.DefaultResourceModel
		if opts.Resources != nil {
			rm = *opts.Resources
		}
		return LintPlan(p, rm, opts.Epsilon1, opts.Epsilon2).Err()
	}
}
