package lint

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/p4lite"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

func TestBadProgramTriggersRuleFamilies(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "p4src", "bad.p4")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, info, err := p4lite.ParseSource(string(data))
	if err != nil {
		t.Fatal(err)
	}
	fs := LintProgram(p, Options{File: "bad.p4", Source: info})

	want := []string{"HL001", "HL002", "HL003", "HL004", "HL005", "HL009", "HL010", "HL011"}
	got := map[string]bool{}
	for _, r := range fs.Rules() {
		got[r] = true
	}
	for _, r := range want {
		if !got[r] {
			t.Errorf("bad.p4 must trigger %s; rules fired: %v", r, fs.Rules())
		}
	}
	if len(got) < 6 {
		t.Fatalf("bad.p4 must trip at least 6 distinct rules, got %v", fs.Rules())
	}
	// Every finding carries a source position (the lexer threads
	// line/col through the parser into the diagnostics).
	for _, f := range fs {
		if f.Pos.IsZero() {
			t.Errorf("finding %s %q has no source position", f.Rule, f.Object)
		}
		if f.File != "bad.p4" {
			t.Errorf("finding %s missing file attribution: %+v", f.Rule, f)
		}
	}
	if !fs.HasErrors() {
		t.Fatal("bad.p4 overflows the metadata budget; HL005 must be an error")
	}
}

func TestCleanProgramsHaveNoErrors(t *testing.T) {
	for _, name := range []string{"monitor.p4", "router.p4"} {
		path := filepath.Join("..", "..", "examples", "p4src", name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, info, err := p4lite.ParseSource(string(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fs := LintProgram(p, Options{File: name, Source: info})
		for _, f := range fs {
			if f.Severity >= Warning {
				t.Errorf("%s should lint without warnings, got %v", name, f)
			}
		}
	}
}

func TestBudgetOptions(t *testing.T) {
	src := `
program tiny;
metadata wide : 128;
metadata wide2 : 128;
table a {
  capacity 1;
  action w { set wide <- 1; set wide2 <- 2; }
  default w;
}
table b {
  key wide : exact;
  key wide2 : exact;
  capacity 2;
  action n { dec ipv4.ttl; }
  default n;
}
`
	p, info, err := p4lite.ParseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	// 32B footprint: under the 64B default, over a 16B budget,
	// ignored with a negative budget.
	if fs := LintProgram(p, Options{Source: info}); len(fs.ByRule("HL005")) != 0 {
		t.Errorf("32B footprint within default budget, got %v", fs.ByRule("HL005"))
	}
	if fs := LintProgram(p, Options{Source: info, MetadataBudgetBytes: 16}); len(fs.ByRule("HL005")) != 1 {
		t.Errorf("want HL005 under 16B budget, got %v", fs.Rules())
	}
	if fs := LintProgram(p, Options{Source: info, MetadataBudgetBytes: -1}); len(fs.ByRule("HL005")) != 0 {
		t.Errorf("negative budget must disable HL005, got %v", fs.Rules())
	}
}

// twoTableSrc has a genuine match dependency: up writes meta "x" that
// down matches on.
const twoTableSrc = `
program duo;
metadata x : 32;
table up {
  capacity 1;
  action w { set x <- 7; }
  default w;
}
table down {
  key x : exact;
  capacity 4;
  action f { set meta.egress_port <- 2; }
  default f;
}
`

func buildAnnotated(t *testing.T) *tdg.Graph {
	t.Helper()
	p, _, err := p4lite.ParseSource(twoTableSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tdg.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := analyzer.AnnotateMetadata(g, analyzer.Options{}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphCleanPasses(t *testing.T) {
	g := buildAnnotated(t)
	fs := LintGraph(g, Options{})
	if fs.HasErrors() {
		t.Fatalf("clean graph must lint without errors, got:\n%s", fs.Text())
	}
}

func TestGraphClassificationMismatch(t *testing.T) {
	g := buildAnnotated(t)
	for _, e := range g.Edges() {
		e.Type = tdg.DepReverse // up writes what down matches: must be M
		e.MetadataBytes = 0
	}
	fs := LintGraph(g, Options{})
	if len(fs.ByRule("HL007")) == 0 {
		t.Fatalf("corrupted edge type must trigger HL007, got %v", fs.Rules())
	}
}

func TestGraphMetadataBytesMismatch(t *testing.T) {
	g := buildAnnotated(t)
	for _, e := range g.Edges() {
		e.MetadataBytes += 3 // diverge from Algorithm 1's A(a,b)
	}
	fs := LintGraph(g, Options{})
	if len(fs.ByRule("HL008")) == 0 {
		t.Fatalf("corrupted A(a,b) must trigger HL008, got %v", fs.Rules())
	}
}

func TestGraphLostDependency(t *testing.T) {
	// Rebuild the graph with the same nodes but no edges: the data
	// dependency between up and down is lost, HL007 must notice.
	g := buildAnnotated(t)
	bare := tdg.New()
	for _, n := range g.Nodes() {
		if err := bare.AddNode(n.MAT, n.Origin...); err != nil {
			t.Fatal(err)
		}
	}
	fs := LintGraph(bare, Options{})
	if len(fs.ByRule("HL007")) == 0 {
		t.Fatalf("dropped edge must trigger HL007, got %v", fs.Rules())
	}
}

func TestGraphCycle(t *testing.T) {
	g := buildAnnotated(t)
	// Force a back edge; valid frontends cannot produce one, so the
	// rule only ever fires on hand-built or corrupted graphs.
	if err := g.AddEdge("duo/down", "duo/up", tdg.DepReverse, 0); err != nil {
		t.Fatal(err)
	}
	fs := LintGraph(g, Options{})
	if len(fs.ByRule("HL006")) == 0 {
		t.Fatalf("cyclic TDG must trigger HL006, got %v", fs.Rules())
	}
}

func TestAnalyzerLintHook(t *testing.T) {
	p, _, err := p4lite.ParseSource(twoTableSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The clean program passes with Lint on (the hook is registered by
	// this package's init).
	if _, err := analyzer.Analyze([]*program.Program{p}, analyzer.Options{Lint: true}); err != nil {
		t.Fatalf("clean program must pass lint-gated analysis: %v", err)
	}
}
