package lint

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
	"github.com/hermes-net/hermes/internal/workload"
)

// fixedMAT and chainTDG mirror the placement package's test fixtures:
// MATs with a pinned requirement wired into a linear dependency chain.
func fixedMAT(name string, req float64) *program.MAT {
	return &program.MAT{
		Name:             name,
		Capacity:         16,
		FixedRequirement: req,
		Actions: []program.Action{{
			Name: "a",
			Ops:  []program.Op{program.SetOp(fields.Metadata("meta."+name, 8), 1)},
		}},
	}
}

func chainTDG(t *testing.T, names []string, bytes []int, req float64) *tdg.Graph {
	t.Helper()
	g := tdg.New()
	for _, n := range names {
		if err := g.AddNode(fixedMAT(n, req)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < len(names); i++ {
		if err := g.AddEdge(names[i], names[i+1], tdg.DepMatch, bytes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func smallTopo(t *testing.T, n int) *network.Topology {
	t.Helper()
	tp := network.NewTopology("lint-test")
	for i := 0; i < n; i++ {
		tp.AddSwitch(network.Switch{
			Programmable:   true,
			Stages:         2,
			StageCapacity:  0.5,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i+1 < n; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

// solvedChain deploys a->b->c (req 0.5 each) on three 2-stage
// switches: two MATs fill switch 0, the third spills to switch 1.
func solvedChain(t *testing.T) *placement.Plan {
	t.Helper()
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 4}, 0.5)
	plan, err := placement.Greedy{}.Solve(g, smallTopo(t, 3), placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func rm() program.ResourceModel { return program.DefaultResourceModel }

// requireOracleRejects asserts that the mutated plan trips the given
// lint rule AND that Plan.Validate agrees the plan is invalid — the
// differential property under seeded faults.
func requireOracleRejects(t *testing.T, p *placement.Plan, rule string) {
	t.Helper()
	fs := LintPlan(p, rm(), 0, 0)
	if len(fs.ByRule(rule)) == 0 {
		t.Fatalf("mutation must trigger %s, got %v:\n%s", rule, fs.Rules(), fs.Text())
	}
	if len(fs.OracleErrors()) == 0 {
		t.Fatalf("%s must be an oracle error, got:\n%s", rule, fs.Text())
	}
	if err := p.Validate(rm(), 0, 0); err == nil {
		t.Fatalf("Plan.Validate must agree the %s mutation is invalid", rule)
	}
	if err := CheckPlanOracle(p, rm(), 0, 0, analyzer.Options{}); err != nil {
		t.Fatalf("both checkers reject: the oracle must report agreement, got %v", err)
	}
}

func TestLintPlanCleanAgreement(t *testing.T) {
	p := solvedChain(t)
	fs := LintPlan(p, rm(), 0, 0)
	if fs.HasErrors() {
		t.Fatalf("solver plan must lint clean:\n%s", fs.Text())
	}
	if err := CheckPlanOracle(p, rm(), 0, 0, analyzer.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestMutationMissingAssignment(t *testing.T) {
	p := solvedChain(t)
	delete(p.Assignments, "c")
	requireOracleRejects(t, p, "HL101")
}

func TestMutationUnknownSwitch(t *testing.T) {
	p := solvedChain(t)
	sp := p.Assignments["c"]
	sp.Switch = 99
	p.Assignments["c"] = sp
	requireOracleRejects(t, p, "HL102")
}

func TestMutationNonProgrammableSwitch(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 4}, 0.5)
	tp := smallTopo(t, 3)
	dumb := tp.AddSwitch(network.Switch{Programmable: false, Stages: 0, TransitLatency: time.Microsecond})
	if err := tp.AddLink(2, dumb, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	plan, err := placement.Greedy{}.Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.Assignments["c"]
	sp.Switch = dumb
	plan.Assignments["c"] = sp
	fs := LintPlan(plan, rm(), 0, 0)
	if len(fs.ByRule("HL102")) == 0 {
		t.Fatalf("MAT on non-programmable switch must trigger HL102, got %v", fs.Rules())
	}
	if err := plan.Validate(rm(), 0, 0); err == nil {
		t.Fatal("Validate must reject a MAT on a non-programmable switch")
	}
}

func TestMutationDownSwitch(t *testing.T) {
	p := solvedChain(t)
	sp, ok := p.Assignments["a"]
	if !ok {
		t.Fatal("a unassigned")
	}
	// The plan was valid when solved; marking the hosting switch down
	// in the fault overlay invalidates it after the fact — exactly the
	// window the supervisor closes by replanning.
	if err := p.Topo.SetSwitchDown(sp.Switch); err != nil {
		t.Fatal(err)
	}
	requireOracleRejects(t, p, "HL112")
}

func TestMutationShortRequirement(t *testing.T) {
	p := solvedChain(t)
	sp := p.Assignments["c"]
	sp.PerStage = []float64{0.25}
	sp.End = sp.Start
	p.Assignments["c"] = sp
	requireOracleRejects(t, p, "HL103")
}

func TestMutationStageOvercommit(t *testing.T) {
	p := solvedChain(t)
	// Pull b into a's stage on the same switch: the stage now carries
	// 1.0 of its 0.5 capacity (and the a->b order breaks alongside).
	a, b := p.Assignments["a"], p.Assignments["b"]
	b.Switch, b.Start, b.End = a.Switch, a.Start, a.End
	p.Assignments["b"] = b
	requireOracleRejects(t, p, "HL104")
}

func TestMutationStageOrder(t *testing.T) {
	p := solvedChain(t)
	var from, to string
	for _, e := range p.Graph.Edges() {
		if p.Assignments[e.From].Switch == p.Assignments[e.To].Switch {
			from, to = e.From, e.To
			break
		}
	}
	if from == "" {
		t.Fatal("fixture must co-locate at least one dependent pair")
	}
	// Swap the two stage windows: the upstream MAT now ends after the
	// downstream one begins.
	a, b := p.Assignments[from], p.Assignments[to]
	a.Start, a.End, b.Start, b.End = b.Start, b.End, a.Start, a.End
	p.Assignments[from], p.Assignments[to] = a, b
	requireOracleRejects(t, p, "HL105")
}

func TestMutationMissingRoute(t *testing.T) {
	p := solvedChain(t)
	for key := range p.Routes {
		delete(p.Routes, key)
	}
	requireOracleRejects(t, p, "HL106")
}

func TestMutationEpsilonBounds(t *testing.T) {
	p := solvedChain(t)
	eps1 := p.TE2E() - 1 // just under the achieved latency
	fs := LintPlan(p, rm(), eps1, 0)
	if len(fs.ByRule("HL107")) == 0 {
		t.Fatalf("ε1 below t_e2e must trigger HL107, got %v", fs.Rules())
	}
	if err := p.Validate(rm(), eps1, 0); err == nil {
		t.Fatal("Validate must reject the ε1 bound")
	}

	eps2 := p.QOcc() - 1
	fs = LintPlan(p, rm(), 0, eps2)
	if len(fs.ByRule("HL108")) == 0 {
		t.Fatalf("ε2 below Q_occ must trigger HL108, got %v", fs.Rules())
	}
	if err := p.Validate(rm(), 0, eps2); err == nil {
		t.Fatal("Validate must reject the ε2 bound")
	}
}

func TestMutationSwitchCycle(t *testing.T) {
	// a on switch 0, b on switch 1, c back on switch 0: the contracted
	// switch graph is cyclic, so no packet route respects both edges.
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 1}, 0.5)
	tp := smallTopo(t, 2)
	mk := func(sw network.SwitchID, stage int) placement.StagePlacement {
		return placement.StagePlacement{Switch: sw, Start: stage, End: stage, PerStage: []float64{0.5}}
	}
	path01, err := tp.ShortestPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path10, err := tp.ShortestPath(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &placement.Plan{
		Graph: g, Topo: tp,
		Assignments: map[string]placement.StagePlacement{
			"a": mk(0, 0), "b": mk(1, 0), "c": mk(0, 1),
		},
		Routes: map[placement.RouteKey]network.Path{
			{From: 0, To: 1}: path01,
			{From: 1, To: 0}: path10,
		},
	}
	fs := LintPlan(p, rm(), 0, 0)
	if len(fs.ByRule("HL110")) == 0 {
		t.Fatalf("switch-level cycle must trigger HL110, got %v:\n%s", fs.Rules(), fs.Text())
	}
	verr := p.Validate(rm(), 0, 0)
	if verr == nil {
		t.Fatal("Validate must reject the cyclic switch ordering")
	}
	// The error names the stuck switches (satellite: identifiers in
	// validation messages).
	if !strings.Contains(verr.Error(), "switch 0") || !strings.Contains(verr.Error(), "switch 1") {
		t.Fatalf("cycle error must name the switches, got: %v", verr)
	}
}

func TestRouteLatencyCorruption(t *testing.T) {
	p := solvedChain(t)
	for key, path := range p.Routes {
		path.Latency += time.Millisecond
		p.Routes[key] = path
	}
	fs := LintPlan(p, rm(), 0, 0)
	if len(fs.ByRule("HL111")) == 0 {
		t.Fatalf("corrupted route latency must trigger HL111, got %v", fs.Rules())
	}
	// Stricter than Validate: the production checker accepts the plan,
	// so HL111 must not be an oracle finding...
	if len(fs.OracleErrors()) != 0 {
		t.Fatalf("HL111 is stricter than Validate and must not count as oracle disagreement:\n%s", fs.Text())
	}
	// ...but CheckPlanOracle still surfaces the internal inconsistency.
	if err := CheckPlanOracle(p, rm(), 0, 0, analyzer.Options{}); err == nil {
		t.Fatal("CheckPlanOracle must flag strict HL111 findings on Validate-clean plans")
	}
}

func TestSolverLintOption(t *testing.T) {
	g := chainTDG(t, []string{"a", "b", "c"}, []int{1, 4}, 0.5)
	if _, err := (placement.Greedy{}).Solve(g, smallTopo(t, 3), placement.Options{Lint: true}); err != nil {
		t.Fatalf("clean instance must pass a lint-gated solve: %v", err)
	}

	old := placement.PlanLintHook
	placement.PlanLintHook = func(*placement.Plan, placement.Options) error {
		return errors.New("synthetic rejection")
	}
	defer func() { placement.PlanLintHook = old }()
	_, err := (placement.Greedy{}).Solve(g, smallTopo(t, 3), placement.Options{Lint: true})
	if err == nil || !strings.Contains(err.Error(), "rejected by lint: synthetic rejection") {
		t.Fatalf("lint-gated solve must surface hook rejection, got %v", err)
	}
}

// TestDifferentialOracleAcrossSolvers is the acceptance gate: Greedy
// and Exact plans on the paper's Table III topologies must satisfy
// both the independent HL1xx re-implementation and the production
// validators, with full agreement. The ILP encoding cannot solve
// Table III instances (that blow-up is the paper's Exp#3 point; the
// experiments fall back to behavioral baselines there), so it joins
// the oracle sweep below on instances it can prove.
func TestDifferentialOracleAcrossSolvers(t *testing.T) {
	progs := workload.RealPrograms()[:3]
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	solvers := []placement.Solver{placement.Greedy{}, placement.Exact{}}
	rows := network.NumTableIII()
	if testing.Short() {
		rows = 3
	}
	for idx := 1; idx <= rows; idx++ {
		topo, err := network.TableIII(idx, network.TofinoSpec())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range solvers {
			opts := placement.Options{Deadline: time.Now().Add(3 * time.Second)}
			plan, err := s.Solve(g.Clone(), topo, opts)
			if err != nil {
				t.Fatalf("table3:%d %s: %v", idx, s.Name(), err)
			}
			if err := CheckPlanOracle(plan, rm(), 0, 0, analyzer.Options{}); err != nil {
				t.Errorf("table3:%d %s: %v", idx, s.Name(), err)
			}
		}
	}
}

// TestDifferentialOracleILP runs all three solvers — including the
// literal MILP encoding — over small chain instances where the ILP is
// tractable, and checks oracle agreement on every plan.
func TestDifferentialOracleILP(t *testing.T) {
	solvers := []placement.Solver{placement.Greedy{}, placement.Exact{}, placement.ILP{}}
	for _, n := range []int{3, 4} {
		names := []string{"a", "b", "c", "d"}[:n]
		bytes := []int{1, 4, 2}[:n-1]
		for _, s := range solvers {
			g := chainTDG(t, names, bytes, 0.5)
			plan, err := s.Solve(g, smallTopo(t, n), placement.Options{
				Deadline: time.Now().Add(5 * time.Second),
			})
			if err != nil {
				t.Fatalf("chain-%d %s: %v", n, s.Name(), err)
			}
			if err := CheckPlanOracle(plan, rm(), 0, 0, analyzer.Options{}); err != nil {
				t.Errorf("chain-%d %s: %v", n, s.Name(), err)
			}
		}
	}
}
