package lint

import (
	"math/rand"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/workload"
)

// TestReplanOutputSatisfiesOracle is the incremental-replan property
// test: over randomized single- and double-switch drains of a real
// evaluation instance, every plan the delta repair emits must pass
// Plan.Validate AND the differential lint oracle — the repair path
// reuses the solver's invariants, so a divergence here means the
// repair broke a constraint the full solver enforces.
func TestReplanOutputSatisfiesOracle(t *testing.T) {
	topo, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.EvaluationPrograms(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := placement.Greedy{}.Solve(g, topo, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		used := cold.UsedSwitches()
		drained := []network.SwitchID{used[rng.Intn(len(used))]}
		if trial%2 == 1 && len(used) > 1 {
			for {
				second := used[rng.Intn(len(used))]
				if second != drained[0] {
					drained = append(drained, second)
					break
				}
			}
		}
		plan, rep, err := placement.ReplanWithOptions(cold, nil,
			placement.ReplanOptions{Mode: placement.ReplanAuto}, drained...)
		if err != nil {
			t.Fatalf("trial %d (drain %v): %v", trial, drained, err)
		}
		for name, sp := range plan.Assignments {
			for _, d := range drained {
				if sp.Switch == d {
					t.Errorf("trial %d: MAT %q still on drained switch %d", trial, name, d)
				}
			}
		}
		if err := plan.Validate(rm(), 0, 0); err != nil {
			t.Errorf("trial %d (drain %v, repair=%v): Validate: %v", trial, drained, rep.UsedRepair, err)
		}
		if err := CheckPlanOracle(plan, rm(), 0, 0, analyzer.Options{}); err != nil {
			t.Errorf("trial %d (drain %v, repair=%v): oracle: %v", trial, drained, rep.UsedRepair, err)
		}
	}
}
