package lint

import (
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/p4lite"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// DefaultMetadataBudget is the per-program metadata byte budget HL005
// checks: the headroom a pipeline's PHV and the coordination header
// format leave for user metadata. Roughly half a Tofino PHV's byte
// capacity — deliberately conservative, and overridable per run.
const DefaultMetadataBudget = 64

// Options tune the lint engine.
type Options struct {
	// MetadataBudgetBytes is the HL005 budget; zero means
	// DefaultMetadataBudget, negative disables the rule.
	MetadataBudgetBytes int
	// Analyzer carries the analyzer options (IntersectMatch) the
	// metadata recomputation of HL008 must mirror.
	Analyzer analyzer.Options
	// File is attached to findings for source-bearing lint runs.
	File string
	// Source supplies p4lite positions when the program came from text.
	Source *p4lite.Source
}

func (o Options) budget() int {
	if o.MetadataBudgetBytes == 0 {
		return DefaultMetadataBudget
	}
	return o.MetadataBudgetBytes
}

// intrinsicMetadata lists catalog metadata the switch hardware
// populates (Table I telemetry sources); reading them without a prior
// MAT write is not an uninitialized read.
var intrinsicMetadata = map[string]bool{
	fields.MetaSwitchID:  true,
	fields.MetaQueueLen:  true,
	fields.MetaTimestamp: true,
}

// sinkMetadata lists catalog metadata the switch hardware consumes
// after the pipeline (traffic manager verdicts); writing them without
// a downstream MAT read is not a dead store.
var sinkMetadata = map[string]bool{
	fields.MetaEgressPort: true,
	fields.MetaDropFlag:   true,
}

// rawSets is the independently-recomputed read/write footprint of one
// MAT. It is built directly from keys and ops, bypassing
// MAT.ReadFields/ModifiedFields, so the HL007/HL008 cross-checks do
// not inherit their bugs.
type rawSets struct {
	reads, writes map[string]fields.Field
}

// rawFootprint recomputes the MAT's field sets from first principles:
// match keys and op sources are reads, op destinations are writes, and
// read-modify-write ops (add, dec, count) read their destination.
func rawFootprint(m *program.MAT) rawSets {
	s := rawSets{reads: map[string]fields.Field{}, writes: map[string]fields.Field{}}
	for _, k := range m.Keys {
		s.reads[k.Field.Name] = k.Field
	}
	for _, a := range m.Actions {
		for _, op := range a.Ops {
			s.writes[op.Dst.Name] = op.Dst
			for _, src := range op.Srcs {
				s.reads[src.Name] = src
			}
			switch op.Kind {
			case program.OpAdd, program.OpDecrement, program.OpCount:
				s.reads[op.Dst.Name] = op.Dst
			}
		}
	}
	return s
}

// overlaps reports whether the two field maps share a name.
func overlaps(a, b map[string]fields.Field) bool {
	small, big := a, b
	if len(big) < len(small) {
		small, big = big, small
	}
	for name := range small {
		if _, ok := big[name]; ok {
			return true
		}
	}
	return false
}

// metaBytes sums whole-byte sizes of the metadata fields in the map.
func metaBytes(m map[string]fields.Field) int {
	total := 0
	for _, f := range m {
		if f.IsMetadata() {
			total += (f.Bits + 7) / 8
		}
	}
	return total
}

// classifyPair recomputes T(a,b) for a declared before b, per §IV:
// M if a modifies a field b reads, else A if both modify a common
// field, else R if a reads a field b modifies, else S when an explicit
// control edge gates the pair. Returns 0 when the pair is independent.
func classifyPair(a, b rawSets, control bool) tdg.DepType {
	switch {
	case overlaps(a.writes, b.reads):
		return tdg.DepMatch
	case overlaps(a.writes, b.writes):
		return tdg.DepAction
	case overlaps(a.reads, b.writes):
		if control {
			// AddEdge keeps the stronger type: S subsumes R.
			return tdg.DepSuccessor
		}
		return tdg.DepReverse
	case control:
		return tdg.DepSuccessor
	default:
		return 0
	}
}

// expectedBytes recomputes A(a,b) per Algorithm 1, independent of the
// fields.Set machinery analyzer uses.
func expectedBytes(a, b rawSets, typ tdg.DepType, intersectMatch bool) int {
	switch typ {
	case tdg.DepMatch:
		if intersectMatch {
			inter := map[string]fields.Field{}
			for name, f := range a.writes {
				if g, ok := b.reads[name]; ok && g == f {
					inter[name] = f
				}
			}
			return metaBytes(inter)
		}
		return metaBytes(a.writes)
	case tdg.DepAction:
		union := map[string]fields.Field{}
		for name, f := range a.writes {
			union[name] = f
		}
		for name, f := range b.writes {
			union[name] = f
		}
		return metaBytes(union)
	case tdg.DepReverse:
		return 0
	case tdg.DepSuccessor:
		return metaBytes(a.writes)
	default:
		return 0
	}
}

// LintProgram runs every program-level rule over a single program. If
// the program induces a TDG, the TDG rules (including the dependency
// cross-check against tdg.FromProgram and analyzer.EdgeMetadataBytes)
// run as well.
func LintProgram(p *program.Program, opts Options) Findings {
	var fs Findings
	if p == nil {
		return Findings{{Rule: "HL000", Severity: Error, File: opts.File, Message: "nil program"}}
	}
	if err := p.Validate(); err != nil {
		return Findings{{Rule: "HL000", Severity: Error, File: opts.File,
			Object: p.Name, Message: fmt.Sprintf("invalid program: %v", err)}}
	}

	raws := make([]rawSets, len(p.MATs))
	for i, m := range p.MATs {
		raws[i] = rawFootprint(m)
	}
	control := map[[2]string]bool{}
	for _, e := range p.Control {
		control[[2]string{e.From, e.To}] = true
	}

	fs = append(fs, lintActions(p, opts)...)
	fs = append(fs, lintTableShapes(p, opts)...)
	fs = append(fs, lintFieldFlow(p, raws, opts)...)
	fs = append(fs, lintMetadataBudget(p, raws, opts)...)
	if opts.Source != nil {
		fs = append(fs, lintUnusedFields(opts)...)
	}

	// Build the reference TDG and cross-check it against the
	// independent pairwise classification.
	g, err := tdg.FromProgram(p)
	if err != nil {
		fs = append(fs, Finding{Rule: "HL006", Severity: Error, File: opts.File,
			Pos: opts.Source.TablePos(p.MATs[0].Name), Object: p.Name,
			Message: fmt.Sprintf("program induces no valid TDG: %v", err),
			Hint:    "break the dependency cycle or remove the conflicting control edges"})
		fs.Sort()
		return fs
	}
	fs = append(fs, crossCheckClassification(p, g, raws, control, opts)...)
	if err := analyzer.AnnotateMetadata(g, opts.Analyzer); err == nil {
		fs = append(fs, crossCheckMetadata(p, g, raws, opts)...)
	}
	fs = append(fs, lintIsolatedNodes(g, opts)...)
	fs.Sort()
	return fs
}

// lintActions flags dead actions: never referenced by an installed
// rule and not the default (HL002).
func lintActions(p *program.Program, opts Options) Findings {
	var fs Findings
	for _, m := range p.MATs {
		used := map[string]bool{}
		for _, r := range m.Rules {
			used[r.Action] = true
		}
		for _, a := range m.Actions {
			if a.Name == m.DefaultAction || used[a.Name] {
				continue
			}
			sev := Warning
			if len(m.Rules) == 0 {
				// No rules installed yet: the action may be selected
				// by future control plane rules.
				sev = Info
			}
			fs = append(fs, Finding{
				Rule: "HL002", Severity: sev, File: opts.File,
				Pos:    opts.Source.ActionPos(m.Name, a.Name),
				Object: m.Name + "." + a.Name,
				Message: fmt.Sprintf("action %q is neither the default of MAT %q nor referenced by any of its %d rule(s)",
					a.Name, m.Name, len(m.Rules)),
				Hint: "remove the action or install a rule selecting it",
			})
		}
	}
	return fs
}

// lintTableShapes flags structurally suspect tables: keyless tables
// with several actions (HL010) and keyed tables with neither rules nor
// a default (HL011).
func lintTableShapes(p *program.Program, opts Options) Findings {
	var fs Findings
	for _, m := range p.MATs {
		if len(m.Keys) == 0 && len(m.Actions) > 1 {
			fs = append(fs, Finding{
				Rule: "HL010", Severity: Warning, File: opts.File,
				Pos: opts.Source.TablePos(m.Name), Object: m.Name,
				Message: fmt.Sprintf("MAT %q has no match key but %d actions; only the default can ever run",
					m.Name, len(m.Actions)),
				Hint: "add a match key or drop the unreachable actions",
			})
		}
		if len(m.Keys) > 0 && len(m.Rules) == 0 && m.DefaultAction == "" {
			fs = append(fs, Finding{
				Rule: "HL011", Severity: Info, File: opts.File,
				Pos: opts.Source.TablePos(m.Name), Object: m.Name,
				Message: fmt.Sprintf("MAT %q matches %d field(s) but installs no rules and no default; every packet misses into a no-op",
					m.Name, len(m.Keys)),
				Hint: "declare a default action",
			})
		}
	}
	return fs
}

// lintFieldFlow tracks metadata def-use across the program order:
// reads with no preceding write (HL003) and writes never read (HL009).
func lintFieldFlow(p *program.Program, raws []rawSets, opts Options) Findings {
	var fs Findings
	written := map[string]bool{}
	everRead := map[string]bool{}
	for _, s := range raws {
		for name := range s.reads {
			everRead[name] = true
		}
	}
	reportedRead := map[string]bool{}
	for i, m := range p.MATs {
		// The MAT's own writes count as definitions for its reads:
		// read-modify-write ops (counters, TTL) initialize in place.
		for name := range raws[i].writes {
			written[name] = true
		}
		for name, f := range raws[i].reads {
			if !f.IsMetadata() || written[name] || intrinsicMetadata[name] || reportedRead[name] {
				continue
			}
			reportedRead[name] = true
			pos := opts.Source.FieldPos(name)
			if pos.IsZero() {
				pos = opts.Source.TablePos(m.Name)
			}
			fs = append(fs, Finding{
				Rule: "HL003", Severity: Warning, File: opts.File,
				Pos: pos, Object: m.Name,
				Message: fmt.Sprintf("MAT %q reads metadata %q before any MAT writes it (uninitialized read)",
					m.Name, name),
				Hint: "write the field in an earlier MAT or match on a header field instead",
			})
		}
	}
	reportedStore := map[string]bool{}
	for i, m := range p.MATs {
		for name, f := range raws[i].writes {
			if !f.IsMetadata() || everRead[name] || sinkMetadata[name] || reportedStore[name] {
				continue
			}
			reportedStore[name] = true
			pos := opts.Source.FieldPos(name)
			if pos.IsZero() {
				pos = opts.Source.TablePos(m.Name)
			}
			fs = append(fs, Finding{
				Rule: "HL009", Severity: Info, File: opts.File,
				Pos: pos, Object: m.Name,
				Message: fmt.Sprintf("metadata %q is written by MAT %q but never read by any MAT (dead store unless it is the program's externally-consumed result)",
					name, m.Name),
			})
		}
	}
	return fs
}

// lintMetadataBudget sums the program's metadata write footprint and
// flags overflow of the header budget (HL005).
func lintMetadataBudget(p *program.Program, raws []rawSets, opts Options) Findings {
	budget := opts.budget()
	if budget < 0 {
		return nil
	}
	footprint := map[string]fields.Field{}
	for _, s := range raws {
		for name, f := range s.writes {
			if f.IsMetadata() {
				footprint[name] = f
			}
		}
	}
	total := metaBytes(footprint)
	if total <= budget {
		return nil
	}
	return Findings{{
		Rule: "HL005", Severity: Error, File: opts.File,
		Pos: progPos(opts.Source), Object: p.Name,
		Message: fmt.Sprintf("program writes %d bytes of metadata across %d fields, exceeding the %d-byte header budget; a worst-case cross-switch split cannot serialize the coordination header",
			total, len(footprint), budget),
		Hint: "narrow metadata fields or raise -budget if the target permits larger headers",
	}}
}

// progPos returns the program declaration position, nil-safe.
func progPos(s *p4lite.Source) p4lite.Pos {
	if s == nil {
		return p4lite.Pos{}
	}
	return s.ProgramPos
}

// lintUnusedFields flags declared-but-unreferenced fields (HL004).
func lintUnusedFields(opts Options) Findings {
	var fs Findings
	for _, name := range opts.Source.UnusedFields() {
		fs = append(fs, Finding{
			Rule: "HL004", Severity: Warning, File: opts.File,
			Pos: opts.Source.FieldPos(name), Object: name,
			Message: fmt.Sprintf("field %q is declared but never referenced", name),
			Hint:    "delete the declaration",
		})
	}
	return fs
}

// crossCheckClassification recomputes T(a,b) for every declaration-
// ordered pair from raw read/write sets and diffs the result against
// the inferred TDG (HL007).
func crossCheckClassification(p *program.Program, g *tdg.Graph, raws []rawSets, control map[[2]string]bool, opts Options) Findings {
	var fs Findings
	for i := 0; i < len(p.MATs); i++ {
		for j := i + 1; j < len(p.MATs); j++ {
			a, b := p.MATs[i], p.MATs[j]
			want := classifyPair(raws[i], raws[j], control[[2]string{a.Name, b.Name}])
			e, ok := g.Edge(a.Name, b.Name)
			switch {
			case want == 0 && ok:
				fs = append(fs, Finding{
					Rule: "HL007", Severity: Error, File: opts.File,
					Pos: opts.Source.TablePos(a.Name), Object: a.Name + "->" + b.Name,
					Message: fmt.Sprintf("TDG has a %s dependency %s->%s but the raw field sets imply none", e.Type, a.Name, b.Name),
				})
			case want != 0 && !ok:
				fs = append(fs, Finding{
					Rule: "HL007", Severity: Error, File: opts.File,
					Pos: opts.Source.TablePos(a.Name), Object: a.Name + "->" + b.Name,
					Message: fmt.Sprintf("raw field sets imply a %s dependency %s->%s that the TDG misses", want, a.Name, b.Name),
				})
			case want != 0 && ok && e.Type != want:
				fs = append(fs, Finding{
					Rule: "HL007", Severity: Error, File: opts.File,
					Pos: opts.Source.TablePos(a.Name), Object: a.Name + "->" + b.Name,
					Message: fmt.Sprintf("TDG classifies %s->%s as %s, raw field sets imply %s", a.Name, b.Name, e.Type, want),
				})
			}
		}
	}
	return fs
}

// crossCheckMetadata recomputes A(a,b) for every edge and diffs it
// against both the annotated edge value and analyzer.EdgeMetadataBytes
// (HL008).
func crossCheckMetadata(p *program.Program, g *tdg.Graph, raws []rawSets, opts Options) Findings {
	idx := map[string]int{}
	for i, m := range p.MATs {
		idx[m.Name] = i
	}
	var fs Findings
	for _, e := range g.Edges() {
		want := expectedBytes(raws[idx[e.From]], raws[idx[e.To]], e.Type, opts.Analyzer.IntersectMatch)
		if e.MetadataBytes != want {
			fs = append(fs, Finding{
				Rule: "HL008", Severity: Error, File: opts.File,
				Pos: opts.Source.TablePos(e.From), Object: e.From + "->" + e.To,
				Message: fmt.Sprintf("edge %s->%s (%s) annotated with A(a,b)=%dB, raw field sets imply %dB",
					e.From, e.To, e.Type, e.MetadataBytes, want),
			})
			continue
		}
		a, _ := g.Node(e.From)
		b, _ := g.Node(e.To)
		got, err := analyzer.EdgeMetadataBytes(a.MAT, b.MAT, e.Type, opts.Analyzer)
		if err != nil || got != want {
			fs = append(fs, Finding{
				Rule: "HL008", Severity: Error, File: opts.File,
				Pos: opts.Source.TablePos(e.From), Object: e.From + "->" + e.To,
				Message: fmt.Sprintf("analyzer.EdgeMetadataBytes(%s->%s, %s) = %dB (err=%v), raw field sets imply %dB",
					e.From, e.To, e.Type, got, err, want),
			})
		}
	}
	return fs
}

// lintIsolatedNodes flags unreachable tables: nodes of a multi-table
// TDG with no dependencies at all — they share no state with the rest
// of the pipeline and sit on no control path (HL001).
func lintIsolatedNodes(g *tdg.Graph, opts Options) Findings {
	if g.NumNodes() < 2 {
		return nil
	}
	var fs Findings
	for _, n := range g.Nodes() {
		if len(g.OutEdgeList(n.Name())) == 0 && len(g.InEdgeList(n.Name())) == 0 {
			fs = append(fs, Finding{
				Rule: "HL001", Severity: Warning, File: opts.File,
				Pos: opts.Source.TablePos(n.Name()), Object: n.Name(),
				Message: fmt.Sprintf("MAT %q is isolated: no data dependency connects it to the pipeline and no control path gates it", n.Name()),
				Hint:    "wire it into the control flow or delete it",
			})
		}
	}
	return fs
}

// LintGraph runs the TDG-level rules over an already-built (possibly
// merged and annotated) graph: cycles (HL006), isolated nodes (HL001),
// per-edge classification consistency (HL007), and metadata size
// consistency (HL008). Pair orientation information is gone after
// merging, so HL007 only verifies existing edges and flags entirely
// missing data dependencies in either direction.
func LintGraph(g *tdg.Graph, opts Options) Findings {
	var fs Findings
	if g == nil {
		return Findings{{Rule: "HL000", Severity: Error, Message: "nil graph"}}
	}
	if !g.IsDAG() {
		_, err := g.TopoSort()
		fs = append(fs, Finding{
			Rule: "HL006", Severity: Error, File: opts.File,
			Message: fmt.Sprintf("TDG is cyclic: %v", err),
			Hint:    "a cyclic TDG admits no stage packing on any switch",
		})
		fs.Sort()
		return fs
	}
	nodes := g.Nodes()
	raws := make(map[string]rawSets, len(nodes))
	for _, n := range nodes {
		raws[n.Name()] = rawFootprint(n.MAT)
	}
	// Existing edges: the recomputed class from raw sets must match,
	// except S edges (control provenance is not recoverable here).
	for _, e := range g.Edges() {
		ra, rb := raws[e.From], raws[e.To]
		want := classifyPair(ra, rb, e.Type == tdg.DepSuccessor)
		if want != e.Type {
			fs = append(fs, Finding{
				Rule: "HL007", Severity: Error, File: opts.File,
				Object: e.From + "->" + e.To,
				Message: fmt.Sprintf("TDG classifies %s->%s as %s, raw field sets imply %v",
					e.From, e.To, e.Type, want),
			})
			continue
		}
		wantBytes := expectedBytes(ra, rb, e.Type, opts.Analyzer.IntersectMatch)
		if e.MetadataBytes != wantBytes {
			fs = append(fs, Finding{
				Rule: "HL008", Severity: Error, File: opts.File,
				Object: e.From + "->" + e.To,
				Message: fmt.Sprintf("edge %s->%s (%s) annotated with A(a,b)=%dB, raw field sets imply %dB",
					e.From, e.To, e.Type, e.MetadataBytes, wantBytes),
			})
		}
	}
	// Missing edges: a data overlap between two nodes of the same
	// source program connected in neither direction is a lost
	// dependency. Cross-program pairs are exempt — the merger
	// deliberately does not relate independent programs that happen to
	// touch the same fields.
	names := g.NodeNames()
	sort.Strings(names)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			u, v := names[i], names[j]
			if _, ok := g.Edge(u, v); ok {
				continue
			}
			if _, ok := g.Edge(v, u); ok {
				continue
			}
			nu, _ := g.Node(u)
			nv, _ := g.Node(v)
			if !sharesOrigin(nu, nv) {
				continue
			}
			ru, rv := raws[u], raws[v]
			if overlaps(ru.writes, rv.reads) || overlaps(ru.writes, rv.writes) || overlaps(ru.reads, rv.writes) {
				fs = append(fs, Finding{
					Rule: "HL007", Severity: Error, File: opts.File,
					Object: u + "<->" + v,
					Message: fmt.Sprintf("MATs %q and %q share modified fields but the TDG connects them in neither direction (lost dependency)",
						u, v),
				})
			}
		}
	}
	fs = append(fs, lintIsolatedNodes(g, opts)...)
	fs.Sort()
	return fs
}

// sharesOrigin reports whether two merged-TDG nodes come from at least
// one common source program. Nodes built outside the analyzer carry no
// origin; treat those as same-program so hand-built graphs get the
// full check.
func sharesOrigin(a, b *tdg.Node) bool {
	if len(a.Origin) == 0 || len(b.Origin) == 0 {
		return true
	}
	for _, oa := range a.Origin {
		for _, ob := range b.Origin {
			if oa == ob {
				return true
			}
		}
	}
	return false
}
