package lint

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hermes-net/hermes/internal/p4lite"
)

// FuzzLint checks the engine's core robustness contract: any program
// the frontend accepts must lint without panicking, and the findings
// must serialize. The corpus seeds from the shipped examples so the
// fuzzer mutates realistic programs (bad.p4 keeps the dirty paths
// warm).
func FuzzLint(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "p4src", "*.p4"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("example corpus missing: %v (%d files)", err, len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("program p;")
	f.Add("program p;\nmetadata m : 8;\ntable t { capacity 1; action a { set m <- 1; } default a; }")
	f.Fuzz(func(t *testing.T, src string) {
		prog, info, err := p4lite.ParseSource(src)
		if err != nil {
			return
		}
		fs := LintProgram(prog, Options{File: "fuzz.p4", Source: info})
		fs.Sort()
		if _, err := fs.JSON(); err != nil {
			t.Fatalf("findings must serialize: %v", err)
		}
		// A second run must be deterministic.
		again := LintProgram(prog, Options{File: "fuzz.p4", Source: info})
		again.Sort()
		if len(again) != len(fs) {
			t.Fatalf("lint is nondeterministic: %d vs %d findings", len(fs), len(again))
		}
	})
}
