// Package lint is a static diagnostics engine for Hermes: it checks
// data plane programs, table dependency graphs, and deployment plans
// against the structural properties the paper states but the rest of
// the repo only assumes (§IV dependency classification and metadata
// sizes, §V constraints Eq. 4–9).
//
// Every check emits a Finding with a stable rule ID so tooling can
// filter or gate on specific rules:
//
//	HL000  parse error (CLI surface)
//	HL001  unreachable table: isolated TDG node, on no control path
//	HL002  dead action: never referenced by a rule nor the default
//	HL003  metadata field read before any write (uninitialized read)
//	HL004  declared field never referenced
//	HL005  program metadata footprint exceeds the header budget
//	HL006  TDG has a cycle
//	HL007  dependency classification mismatch vs. recomputed M/A/R/S
//	HL008  edge metadata size mismatch vs. recomputed A(a,b)
//	HL009  dead store: metadata written but never read downstream
//	HL010  keyless table with multiple actions (only default can run)
//	HL011  table with match keys but neither rules nor a default
//
//	HL101  MAT not deployed (Eq. 6)
//	HL102  MAT on an unknown or non-programmable switch (Eq. 6)
//	HL103  stage range ρ_begin/ρ_end invalid or requirement not met (Eq. 6/8)
//	HL104  per-stage resource capacity exceeded (Eq. 9)
//	HL105  co-located dependency violates stage order (Eq. 8)
//	HL106  cross-switch dependency has no valid route (Eq. 7)
//	HL107  t_e2e exceeds ε1 (Eq. 4)
//	HL108  Q_occ exceeds ε2 (Eq. 5)
//	HL109  plan objective accessors disagree with recomputation
//	HL110  switch-level dependency graph is cyclic
//	HL111  route traverses non-existent links or misstates latency
//	HL112  MAT on a switch marked down in the topology's fault state (Eq. 6)
//
// The HL1xx family is an independent re-implementation of the plan
// constraints; findings with Oracle set participate in the
// differential oracle against Plan.Validate and deploy.Verify (see
// CheckPlanOracle).
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/hermes-net/hermes/internal/p4lite"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are stylistic or advisory.
	Info Severity = iota + 1
	// Warning findings are likely bugs that do not invalidate a
	// deployment by themselves.
	Warning
	// Error findings invalidate the program or plan; lint surfaces
	// exit non-zero when any is present.
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Finding is one diagnostic.
type Finding struct {
	// Rule is the stable rule ID, e.g. "HL003".
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// File is the source file the finding refers to, when known.
	File string `json:"file,omitempty"`
	// Pos is the source position from the p4lite lexer; zero when the
	// object has no textual source (hand-built graphs, plans).
	Pos p4lite.Pos `json:"pos,omitempty"`
	// Object names the offending entity: a MAT, field, action
	// ("mat.action"), switch ("switch:NAME"), or edge ("a->b").
	Object string `json:"object,omitempty"`
	// Message states the defect.
	Message string `json:"message"`
	// Hint suggests a fix when one is known.
	Hint string `json:"hint,omitempty"`
	// Eq is the paper constraint the finding checks (4–9), 0 otherwise.
	Eq int `json:"eq,omitempty"`
	// Oracle marks plan findings that re-implement a constraint
	// Plan.Validate also enforces; the differential oracle compares
	// only these against Validate's verdict.
	Oracle bool `json:"oracle,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	var b strings.Builder
	if f.File != "" {
		fmt.Fprintf(&b, "%s:", f.File)
	}
	if !f.Pos.IsZero() {
		fmt.Fprintf(&b, "%d:%d:", f.Pos.Line, f.Pos.Col)
	}
	if b.Len() > 0 {
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "%s %s:", f.Rule, f.Severity)
	if f.Object != "" {
		fmt.Fprintf(&b, " %s:", f.Object)
	}
	fmt.Fprintf(&b, " %s", f.Message)
	if f.Hint != "" {
		fmt.Fprintf(&b, " (hint: %s)", f.Hint)
	}
	return b.String()
}

// Findings is a sortable finding collection.
type Findings []Finding

// Sort orders findings by file, position, rule, then object, giving
// deterministic output.
func (fs Findings) Sort() {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Object < b.Object
	})
}

// HasErrors reports whether any finding is error-severity.
func (fs Findings) HasErrors() bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Rules returns the distinct rule IDs present, sorted.
func (fs Findings) Rules() []string {
	seen := map[string]bool{}
	for _, f := range fs {
		seen[f.Rule] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// ByRule returns the findings carrying the given rule ID.
func (fs Findings) ByRule(rule string) Findings {
	var out Findings
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// OracleErrors returns the error-severity findings that participate in
// the differential plan oracle.
func (fs Findings) OracleErrors() Findings {
	var out Findings
	for _, f := range fs {
		if f.Oracle && f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

// Text renders the findings one per line.
func (fs Findings) Text() string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the findings as an indented JSON array.
func (fs Findings) JSON() ([]byte, error) {
	if fs == nil {
		fs = Findings{}
	}
	return json.MarshalIndent(fs, "", "  ")
}

// Err folds error-severity findings into a single error, or nil. The
// analyzer and solver hooks use it to fail fast under Options.Lint.
func (fs Findings) Err() error {
	var errs Findings
	for _, f := range fs {
		if f.Severity == Error {
			errs = append(errs, f)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, f := range errs {
		msgs[i] = f.String()
	}
	return fmt.Errorf("lint: %d error finding(s):\n%s", len(errs), strings.Join(msgs, "\n"))
}
