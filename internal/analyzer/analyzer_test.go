package analyzer

import (
	"testing"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// pipelineProgram: hash (writes 4B idx + 2B aux) -> count (matches idx,
// writes 4B cnt) -> mark (range-matches cnt, writes 1B heavy).
func pipelineProgram(t *testing.T, name string) *program.Program {
	t.Helper()
	idx := fields.Metadata("meta.idx", 32)    // 4 B
	aux := fields.Metadata("meta.aux", 16)    // 2 B
	cnt := fields.Metadata("meta.cnt", 32)    // 4 B
	heavy := fields.Metadata("meta.heavy", 8) // 1 B
	src := fields.Header("ipv4.srcAddr", 32)

	return program.NewBuilder(name).
		Table("hash", 1).
		ActionDef("h", program.HashOp(idx, src), program.HashOp(aux, src)).
		Table("count", 1024).
		Key(idx, program.MatchExact).
		ActionDef("c", program.CountOp(cnt, idx)).
		Table("mark", 8).
		Key(cnt, program.MatchRange).
		ActionDef("m", program.SetOp(heavy, 1)).
		MustBuild()
}

func TestAnalyzeAnnotatesMatchDependency(t *testing.T) {
	g, err := Analyze([]*program.Program{pipelineProgram(t, "p")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// hash -> count is a match dep; Algorithm 1 sums all metadata in
	// F_hash^a = {idx(4), aux(2)} = 6 bytes.
	e, ok := g.Edge("p/hash", "p/count")
	if !ok {
		t.Fatal("missing hash->count edge")
	}
	if e.MetadataBytes != 6 {
		t.Errorf("A(hash,count) = %d, want 6", e.MetadataBytes)
	}
	// count -> mark: F_count^a = {cnt(4)} -> 4 bytes.
	e, ok = g.Edge("p/count", "p/mark")
	if !ok {
		t.Fatal("missing count->mark edge")
	}
	if e.MetadataBytes != 4 {
		t.Errorf("A(count,mark) = %d, want 4", e.MetadataBytes)
	}
}

func TestAnalyzeIntersectMatchOption(t *testing.T) {
	g, err := Analyze([]*program.Program{pipelineProgram(t, "p")}, Options{IntersectMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	// With the intersect reading, hash->count only delivers idx (4 B):
	// count does not match aux.
	e, _ := g.Edge("p/hash", "p/count")
	if e.MetadataBytes != 4 {
		t.Errorf("A(hash,count) with intersect = %d, want 4", e.MetadataBytes)
	}
}

func TestHeaderFieldsDoNotCount(t *testing.T) {
	// A table that modifies a header field (TTL) feeding one that
	// matches it: no metadata overhead.
	ttl := fields.Header("ipv4.ttl", 8)
	p := program.NewBuilder("p").
		Table("route", 16).
		Key(fields.Header("ipv4.dstAddr", 32), program.MatchLPM).
		ActionDef("fwd", program.DecOp(ttl, 1)).
		Table("ttlcheck", 4).
		Key(ttl, program.MatchExact).
		ActionDef("drop", program.SetOp(fields.Metadata("meta.drop", 8), 1)).
		MustBuild()
	g, err := Analyze([]*program.Program{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/route", "p/ttlcheck")
	if !ok {
		t.Fatal("missing route->ttlcheck edge")
	}
	if e.Type != tdg.DepMatch {
		t.Fatalf("type = %v, want M", e.Type)
	}
	if e.MetadataBytes != 0 {
		t.Errorf("A = %d, want 0 (header fields ride in the packet)", e.MetadataBytes)
	}
}

func TestActionDependencyUnionSizes(t *testing.T) {
	s1 := fields.Metadata("meta.s1", 32) // 4 B
	s2 := fields.Metadata("meta.s2", 16) // 2 B
	p := program.NewBuilder("p").
		Table("w1", 1).
		ActionDef("a", program.SetOp(s1, 1)).
		Table("w2", 1).
		ActionDef("b", program.SetOp(s1, 2), program.SetOp(s2, 3)).
		MustBuild()
	g, err := Analyze([]*program.Program{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/w1", "p/w2")
	if !ok || e.Type != tdg.DepAction {
		t.Fatalf("edge = %+v ok=%v, want action dep", e, ok)
	}
	// F_a^a ∪ F_b^a = {s1, s2} -> 6 bytes.
	if e.MetadataBytes != 6 {
		t.Errorf("A = %d, want 6", e.MetadataBytes)
	}
}

func TestReverseDependencyIsFree(t *testing.T) {
	f := fields.Metadata("meta.f", 32)
	p := program.NewBuilder("p").
		Table("reader", 8).
		Key(f, program.MatchExact).
		ActionDef("r", program.SetOp(fields.Metadata("meta.o", 8), 0)).
		Table("writer", 8).
		ActionDef("w", program.SetOp(f, 1)).
		MustBuild()
	g, err := Analyze([]*program.Program{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/reader", "p/writer")
	if !ok || e.Type != tdg.DepReverse {
		t.Fatalf("edge = %+v ok=%v, want reverse dep", e, ok)
	}
	if e.MetadataBytes != 0 {
		t.Errorf("A = %d, want 0 for reverse dependency", e.MetadataBytes)
	}
}

func TestSuccessorDependencySize(t *testing.T) {
	flag := fields.Metadata("meta.flag", 8) // 1 B
	p := program.NewBuilder("p").
		Table("gatekeeper", 8).
		Key(fields.Header("tcp.dstPort", 16), program.MatchExact).
		ActionDef("mark", program.SetOp(flag, 1)).
		Table("audit", 8).
		Key(fields.Header("ipv4.srcAddr", 32), program.MatchExact).
		ActionDef("log", program.SetOp(fields.Metadata("meta.log", 8), 1)).
		Gate("gatekeeper", "audit").
		MustBuild()
	g, err := Analyze([]*program.Program{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.Edge("p/gatekeeper", "p/audit")
	if !ok || e.Type != tdg.DepSuccessor {
		t.Fatalf("edge = %+v ok=%v, want successor dep", e, ok)
	}
	if e.MetadataBytes != 1 {
		t.Errorf("A = %d, want 1 (the gate flag)", e.MetadataBytes)
	}
}

func TestAnalyzeMergesAcrossPrograms(t *testing.T) {
	p1 := pipelineProgram(t, "p1")
	p2 := pipelineProgram(t, "p2")
	merged, err := Analyze([]*program.Program{p1, p2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The two programs are structurally identical; every MAT unifies.
	if merged.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3 (full unification)", merged.NumNodes())
	}

	noMerge, err := Analyze([]*program.Program{p1, p2}, Options{SkipMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if noMerge.NumNodes() != 6 {
		t.Errorf("SkipMerge NumNodes = %d, want 6", noMerge.NumNodes())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("Analyze(nil) succeeded")
	}
	if _, err := Analyze([]*program.Program{nil}, Options{}); err == nil {
		t.Error("Analyze with nil program succeeded")
	}
	p := pipelineProgram(t, "dup")
	if _, err := Analyze([]*program.Program{p, p}, Options{}); err == nil {
		t.Error("Analyze with duplicate program names succeeded")
	}
}

func TestSummarize(t *testing.T) {
	g, err := Analyze([]*program.Program{pipelineProgram(t, "p")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := Summarize(g)
	if r.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", r.Nodes)
	}
	if r.MaxEdgeBytes != 6 {
		t.Errorf("MaxEdgeBytes = %d, want 6", r.MaxEdgeBytes)
	}
	if r.TotalMetadataBytes < r.MaxEdgeBytes {
		t.Error("TotalMetadataBytes < MaxEdgeBytes")
	}
	if r.TotalRequirement <= 0 {
		t.Error("TotalRequirement not positive")
	}
}

func TestMetadataFieldsForDeployment(t *testing.T) {
	p := pipelineProgram(t, "p")
	g, err := Analyze([]*program.Program{p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Node("p/hash")
	b, _ := g.Node("p/count")
	fs, err := MetadataFields(a.MAT, b.MAT, tdg.DepMatch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Contains("meta.idx") || !fs.Contains("meta.aux") {
		t.Errorf("MetadataFields = %v, want idx and aux", fs)
	}
	fs, err = MetadataFields(a.MAT, b.MAT, tdg.DepMatch, Options{IntersectMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Contains("meta.idx") || fs.Contains("meta.aux") {
		t.Errorf("intersect MetadataFields = %v, want only idx", fs)
	}
	fs, err = MetadataFields(a.MAT, b.MAT, tdg.DepReverse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 0 {
		t.Errorf("reverse MetadataFields = %v, want empty", fs)
	}
}
