// Package analyzer implements the Hermes program analyzer (paper §IV,
// Algorithm 1). It converts a set of data plane programs into a single
// merged TDG and annotates every edge (a,b) with A(a,b), the number of
// metadata bytes the upstream MAT a must piggyback on each packet for
// the downstream MAT b when the two are deployed on different switches.
package analyzer

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/merge"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Options tune the analysis.
type Options struct {
	// IntersectMatch, when true, restricts match-dependency metadata to
	// the fields the downstream MAT actually reads (F_a^a ∩ reads(b))
	// instead of Algorithm 1's literal ΣF_a^a. The paper's prose admits
	// both readings; the default follows the algorithm listing.
	IntersectMatch bool
	// SkipMerge disables SPEED-style TDG merging (useful for baselines
	// that deploy programs one by one).
	SkipMerge bool
	// Lint, when true, runs the registered GraphLintHook over the
	// merged, annotated TDG and fails the analysis on error-severity
	// findings. The internal/lint package registers the hook; with no
	// hook registered the flag is a no-op.
	Lint bool
}

// GraphLintHook is the static diagnostics hook Analyze invokes on its
// result when Options.Lint is set. internal/lint registers its TDG
// rule family here; keeping the hook a variable avoids an import cycle
// (lint depends on analyzer for the A(a,b) cross-check).
var GraphLintHook func(*tdg.Graph, Options) error

// Analyze runs the full Program Analyzer: convert programs to TDGs,
// merge them, and compute A(a,b) for every edge. It is Algorithm 1's
// PROGRAM_ANALYZER entry point.
func Analyze(progs []*program.Program, opts Options) (*tdg.Graph, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("analyzer: no input programs")
	}
	graphs := make([]*tdg.Graph, 0, len(progs))
	seen := make(map[string]bool, len(progs))
	for _, p := range progs {
		if p == nil {
			return nil, fmt.Errorf("analyzer: nil program")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("analyzer: duplicate program name %q", p.Name)
		}
		seen[p.Name] = true
		g, err := tdg.FromProgram(p)
		if err != nil {
			return nil, fmt.Errorf("analyzer: converting %q: %w", p.Name, err)
		}
		graphs = append(graphs, g)
	}

	var merged *tdg.Graph
	var err error
	if opts.SkipMerge && len(graphs) > 1 {
		merged, err = unionAll(graphs)
	} else {
		merged, err = merge.Graphs(graphs)
	}
	if err != nil {
		return nil, fmt.Errorf("analyzer: merging TDGs: %w", err)
	}

	if err := AnnotateMetadata(merged, opts); err != nil {
		return nil, err
	}
	if opts.Lint && GraphLintHook != nil {
		if err := GraphLintHook(merged, opts); err != nil {
			return nil, fmt.Errorf("analyzer: merged TDG rejected by lint: %w", err)
		}
	}
	return merged, nil
}

// unionAll unions graphs without unifying equivalent MATs.
func unionAll(graphs []*tdg.Graph) (*tdg.Graph, error) {
	out := tdg.New()
	for _, g := range graphs {
		for _, n := range g.Nodes() {
			if _, ok := out.Node(n.Name()); ok {
				return nil, fmt.Errorf("analyzer: duplicate MAT %q across programs", n.Name())
			}
			if err := out.AddNode(n.MAT, n.Origin...); err != nil {
				return nil, err
			}
		}
		for _, e := range g.Edges() {
			if err := out.AddEdge(e.From, e.To, e.Type, e.MetadataBytes); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// AnnotateMetadata computes A(a,b) for every edge of the graph in
// place, per Algorithm 1's TDG_ANALYSIS:
//
//	M: Σ size(f) over metadata fields f ∈ F_a^a (optionally ∩ F_b^m),
//	A: Σ size(f) over metadata fields f ∈ F_a^a ∪ F_b^a,
//	R: nothing (b does not consume a's results),
//	S: Σ size(f) over metadata fields f ∈ F_a^a.
//
// Header fields never count: they already ride in the packet.
func AnnotateMetadata(g *tdg.Graph, opts Options) error {
	for _, e := range g.Edges() {
		a, ok := g.Node(e.From)
		if !ok {
			return fmt.Errorf("analyzer: edge from unknown node %q", e.From)
		}
		b, ok := g.Node(e.To)
		if !ok {
			return fmt.Errorf("analyzer: edge to unknown node %q", e.To)
		}
		size, err := EdgeMetadataBytes(a.MAT, b.MAT, e.Type, opts)
		if err != nil {
			return err
		}
		e.MetadataBytes = size
	}
	return nil
}

// EdgeMetadataBytes computes A(a,b) for a single dependency.
func EdgeMetadataBytes(a, b *program.MAT, typ tdg.DepType, opts Options) (int, error) {
	faa, err := a.ModifiedFields()
	if err != nil {
		return 0, fmt.Errorf("analyzer: %w", err)
	}
	switch typ {
	case tdg.DepMatch:
		if opts.IntersectMatch {
			fbr, err := b.ReadFields()
			if err != nil {
				return 0, fmt.Errorf("analyzer: %w", err)
			}
			return faa.Intersect(fbr).MetadataBytes(), nil
		}
		return faa.MetadataBytes(), nil
	case tdg.DepAction:
		fba, err := b.ModifiedFields()
		if err != nil {
			return 0, fmt.Errorf("analyzer: %w", err)
		}
		union, err := faa.Union(fba)
		if err != nil {
			return 0, fmt.Errorf("analyzer: %w", err)
		}
		return union.MetadataBytes(), nil
	case tdg.DepReverse:
		return 0, nil
	case tdg.DepSuccessor:
		return faa.MetadataBytes(), nil
	default:
		return 0, fmt.Errorf("analyzer: unknown dependency type %v", typ)
	}
}

// Report summarizes an analyzed TDG.
type Report struct {
	// Nodes and Edges are the merged TDG's sizes.
	Nodes, Edges int
	// TotalMetadataBytes sums A(a,b) over all edges.
	TotalMetadataBytes int
	// MaxEdgeBytes is the largest single A(a,b).
	MaxEdgeBytes int
	// TotalRequirement sums R(a) under the default resource model.
	TotalRequirement float64
}

// Summarize computes a Report for an analyzed TDG.
func Summarize(g *tdg.Graph) Report {
	r := Report{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for _, e := range g.Edges() {
		r.TotalMetadataBytes += e.MetadataBytes
		if e.MetadataBytes > r.MaxEdgeBytes {
			r.MaxEdgeBytes = e.MetadataBytes
		}
	}
	r.TotalRequirement = g.TotalRequirement(program.DefaultResourceModel)
	return r
}

// MetadataFields returns the metadata fields a passes along the edge
// type; the deploy backend uses it to lay out coordination headers.
func MetadataFields(a, b *program.MAT, typ tdg.DepType, opts Options) (fields.Set, error) {
	faa, err := a.ModifiedFields()
	if err != nil {
		return fields.Set{}, fmt.Errorf("analyzer: %w", err)
	}
	switch typ {
	case tdg.DepMatch:
		if opts.IntersectMatch {
			fbr, err := b.ReadFields()
			if err != nil {
				return fields.Set{}, fmt.Errorf("analyzer: %w", err)
			}
			return faa.Intersect(fbr).Metadata(), nil
		}
		return faa.Metadata(), nil
	case tdg.DepAction:
		fba, err := b.ModifiedFields()
		if err != nil {
			return fields.Set{}, fmt.Errorf("analyzer: %w", err)
		}
		union, err := faa.Union(fba)
		if err != nil {
			return fields.Set{}, fmt.Errorf("analyzer: %w", err)
		}
		return union.Metadata(), nil
	case tdg.DepReverse:
		return fields.Set{}, nil
	case tdg.DepSuccessor:
		return faa.Metadata(), nil
	default:
		return fields.Set{}, fmt.Errorf("analyzer: unknown dependency type %v", typ)
	}
}
