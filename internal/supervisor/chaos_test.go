package supervisor

import (
	"fmt"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// rawDown lists the switches down in the fault overlay, the ground
// truth the monitor's confirmed view must converge to.
func rawDown(tp *network.Topology) map[network.SwitchID]bool {
	out := map[network.SwitchID]bool{}
	for _, sw := range tp.Switches() {
		if tp.SwitchIsDown(sw.ID) {
			out[sw.ID] = true
		}
	}
	return out
}

// converged reports whether the monitor's confirmed-down view equals
// the raw fault overlay.
func converged(tp *network.Topology, m *Monitor) bool {
	raw := rawDown(tp)
	conf := m.ConfirmedDown()
	if len(conf) != len(raw) {
		return false
	}
	for _, id := range conf {
		if !raw[id] {
			return false
		}
	}
	return true
}

// quiesce polls until the monitor has converged on the raw fault state
// and the plan is consistent with it, bounded so a livelock fails fast.
func quiesce(t *testing.T, tp *network.Topology, sup *Supervisor) {
	t.Helper()
	for i := 0; i < 80; i++ {
		res, err := sup.Poll()
		if err != nil {
			t.Fatalf("quiesce poll: %v", err)
		}
		settled := len(res.Down) == 0 && len(res.Up) == 0 &&
			len(res.Shed) == 0 && len(res.Restored) == 0
		if settled && converged(tp, sup.Monitor()) && !sup.PlanBroken() {
			return
		}
	}
	t.Fatalf("supervisor failed to quiesce: rawDown=%v confirmed=%v broken=%v",
		rawDown(tp), sup.Monitor().ConfirmedDown(), sup.PlanBroken())
}

// assertInvariants runs the full oracle stack over the live deployment
// plus the degradation bookkeeping.
func assertInvariants(t *testing.T, sup *Supervisor, progs int) {
	t.Helper()
	dep := sup.Deployment()
	rm := program.DefaultResourceModel
	if err := dep.Plan.Validate(rm, 0, 0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := lint.CheckPlanOracle(dep.Plan, rm, 0, 0, analyzer.Options{}); err != nil {
		t.Fatalf("lint oracle: %v", err)
	}
	if err := dep.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Symbolic equivalence gate: every adopted deployment — cold solve,
	// incremental repair, or degraded rebuild — must stay provably
	// equivalent to the single-box reference pipeline.
	if err := equiv.CheckDeployment(nil, dep); err != nil {
		t.Fatalf("equiv: %v", err)
	}
	// Degradation bookkeeping: active + shed partition the workload,
	// and every currently-shed program has a recorded shed event.
	rep := sup.Report()
	if got := len(sup.active()) + len(rep.Shed); got != progs {
		t.Fatalf("active(%d) + shed(%d) != %d programs", len(sup.active()), len(rep.Shed), progs)
	}
	for _, name := range rep.Shed {
		found := false
		for _, ev := range rep.Events {
			if ev.Program == name && ev.Shed {
				found = true
			}
		}
		if !found {
			t.Fatalf("shed program %q missing from the degradation report", name)
		}
	}
}

// TestChaosSchedules drives the supervisor through long seeded fault
// schedules on three Table III WAN topologies, asserting after every
// event that the live deployment passes Plan.Validate, the lint
// differential oracle, and deploy.Verify, and that the degradation
// report accounts for every program.
func TestChaosSchedules(t *testing.T) {
	events := 50
	if testing.Short() {
		events = 12
	}
	for _, ti := range []int{1, 2, 3} {
		ti := ti
		t.Run(fmt.Sprintf("tableIII-%d", ti), func(t *testing.T) {
			// Tight stages spread the workload over several switches so
			// fault events regularly strand MATs and cut routes; full
			// Tofino capacity would pack everything onto one switch and
			// the schedule would rarely touch the plan.
			spec := network.TofinoSpec()
			spec.StageCapacity = 0.05
			tp, err := network.TableIII(ti, spec)
			if err != nil {
				t.Fatal(err)
			}
			progs, err := workload.EvaluationPrograms(6, 42)
			if err != nil {
				t.Fatal(err)
			}
			sup, err := New(progs, tp, Options{
				Monitor: MonitorOptions{
					Window: 2, FailThreshold: 2, RecoverThreshold: 1,
					BackoffMax: 2, Seed: int64(ti),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			// MinUpProgrammable 3 keeps every schedule prefix survivable:
			// even fully degraded, one program fits on three switches.
			sched, err := network.GenerateSchedule(tp, network.ScheduleOptions{
				Seed:              200,
				Events:            events,
				MinUpProgrammable: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(sched.Events) < events {
				t.Fatalf("schedule has %d events, want >= %d", len(sched.Events), events)
			}
			for i, ev := range sched.Events {
				if err := ev.Apply(tp); err != nil {
					t.Fatalf("event %d (%s): %v", i, ev, err)
				}
				quiesce(t, tp, sup)
				assertInvariants(t, sup, len(progs))
			}
			// Schedules end fully healed: nothing may remain shed.
			if down := rawDown(tp); len(down) != 0 {
				t.Fatalf("schedule left faults standing: %v", down)
			}
			if shed := sup.Report().Shed; len(shed) != 0 {
				t.Errorf("fully healed topology left programs shed: %v", shed)
			}
			// The full schedule must actually have exercised the recovery
			// machinery, or the invariant checks above proved nothing.
			// (The -short prefix is too brief to guarantee a hit.)
			if st := sup.Stats(); !testing.Short() && st.Replans == 0 {
				t.Errorf("chaos schedule never triggered a replan: %+v", st)
			}
		})
	}
}
