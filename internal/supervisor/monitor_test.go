package supervisor

import (
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/network"
)

func monitorTopo(t *testing.T, n int) *network.Topology {
	t.Helper()
	tp, err := network.Linear(n, network.TestbedSpec())
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestKofNConfirmation: with a 3-of-3 window, isolated probe failures
// never confirm a failure; only three consecutive failures do, and
// recovery needs RecoverThreshold successes.
func TestKofNConfirmation(t *testing.T) {
	tp := monitorTopo(t, 2)
	alive := true
	m, err := NewMonitor(tp, MonitorOptions{
		Window: 3, FailThreshold: 3, RecoverThreshold: 2,
		BackoffBase: 1, BackoffMax: 1, Seed: 1,
		Probe: func(id network.SwitchID) bool {
			if id == 0 {
				return alive
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A flap pattern — fail, fail, succeed — never reaches 3 failures
	// in the window, so nothing is confirmed.
	for i := 0; i < 3; i++ {
		alive = false
		for j := 0; j < 2; j++ {
			if down, up := m.Poll(); len(down)+len(up) != 0 {
				t.Fatalf("flap round %d poll %d confirmed a transition", i, j)
			}
		}
		alive = true
		if down, up := m.Poll(); len(down)+len(up) != 0 {
			t.Fatalf("flap round %d heal poll confirmed a transition", i)
		}
	}

	// Three consecutive failures confirm the outage.
	alive = false
	var confirmed []network.SwitchID
	for i := 0; i < 3; i++ {
		down, _ := m.Poll()
		confirmed = append(confirmed, down...)
	}
	if len(confirmed) != 1 || confirmed[0] != 0 {
		t.Fatalf("confirmed down = %v, want [0]", confirmed)
	}
	if got := m.ConfirmedDown(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("ConfirmedDown = %v, want [0]", got)
	}

	// Recovery: the down switch is probed under backoff, so allow a
	// bounded number of polls for RecoverThreshold successes.
	alive = true
	recovered := false
	for i := 0; i < 50 && !recovered; i++ {
		_, up := m.Poll()
		for _, id := range up {
			if id == 0 {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Fatal("switch 0 never confirmed up after heal")
	}
	if got := m.ConfirmedDown(); len(got) != 0 {
		t.Fatalf("ConfirmedDown after heal = %v, want empty", got)
	}
}

// TestBackoffReducesProbes: a confirmed-dead switch must not absorb a
// probe on every poll — the exponential backoff caps the probe rate.
func TestBackoffReducesProbes(t *testing.T) {
	tp := monitorTopo(t, 1)
	m, err := NewMonitor(tp, MonitorOptions{
		Window: 1, FailThreshold: 1, Seed: 7,
		Probe: func(network.SwitchID) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	const polls = 200
	for i := 0; i < polls; i++ {
		m.Poll()
	}
	// With BackoffMax 8 and jitter, steady state is one probe every
	// ~8–16 polls; 3× headroom keeps the bound robust to jitter.
	if m.Probes()*3 >= polls {
		t.Fatalf("dead switch probed %d times over %d polls; backoff not applied", m.Probes(), polls)
	}
}

// TestProbeTimeoutCountsAsFailure: a hung probe must be treated as a
// failed heartbeat instead of stalling the monitor.
func TestProbeTimeoutCountsAsFailure(t *testing.T) {
	tp := monitorTopo(t, 1)
	block := make(chan struct{})
	defer close(block)
	m, err := NewMonitor(tp, MonitorOptions{
		Window: 1, FailThreshold: 1,
		Timeout: 2 * time.Millisecond,
		Probe: func(network.SwitchID) bool {
			<-block // hangs until the test ends
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	down, _ := m.Poll()
	if len(down) != 1 || down[0] != 0 {
		t.Fatalf("hung probe confirmed %v, want [0]", down)
	}
}
