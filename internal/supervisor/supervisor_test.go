package supervisor

import (
	"fmt"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/deploy/rollout"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/workload"
)

// immediate disables confirmation: every raw probe result is acted on.
func immediate() MonitorOptions {
	return MonitorOptions{Window: 1, FailThreshold: 1, RecoverThreshold: 1}
}

// ringTopo builds an n-switch ring of testbed-like switches; a ring
// survives any single switch failure without disconnecting.
func ringTopo(t *testing.T, n int, capacity float64) *network.Topology {
	t.Helper()
	tp := network.NewTopology(fmt.Sprintf("ring%d", n))
	for i := 0; i < n; i++ {
		tp.AddSwitch(network.Switch{
			Name: fmt.Sprintf("sw%d", i), Programmable: true,
			Stages: 12, StageCapacity: capacity,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i < n; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID((i+1)%n), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

// hostOf returns one switch hosting at least one MAT of the live plan.
func hostOf(t *testing.T, s *Supervisor) (string, network.SwitchID) {
	t.Helper()
	for _, name := range s.Deployment().Plan.Graph.NodeNames() {
		if sp, ok := s.Deployment().Plan.Assignments[name]; ok {
			return name, sp.Switch
		}
	}
	t.Fatal("no assignments in live plan")
	return "", 0
}

func requireHealthy(t *testing.T, s *Supervisor) {
	t.Helper()
	dep := s.Deployment()
	if err := dep.Plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
		t.Fatalf("live plan invalid: %v", err)
	}
	if err := dep.Verify(); err != nil {
		t.Fatalf("live deployment fails verify: %v", err)
	}
}

// TestSupervisorReplansOnConfirmedFailure: a confirmed switch failure
// must trigger an incremental redeploy that moves the stranded MATs,
// rebinds the controller, and leaves a valid deployment.
func TestSupervisorReplansOnConfirmedFailure(t *testing.T) {
	tp := ringTopo(t, 4, 1.0)
	sup, err := New(workload.RealPrograms(), tp, Options{Monitor: immediate()})
	if err != nil {
		t.Fatal(err)
	}
	requireHealthy(t, sup)
	mat, host := hostOf(t, sup)

	if err := tp.SetSwitchDown(host); err != nil {
		t.Fatal(err)
	}
	if !sup.PlanBroken() {
		t.Fatal("downing a hosting switch left PlanBroken false")
	}
	res, err := sup.Poll()
	if err != nil {
		t.Fatalf("poll after failure: %v", err)
	}
	if !res.Replanned {
		t.Fatal("confirmed failure did not trigger a replan")
	}
	if !res.UsedRepair {
		t.Error("single-switch failure did not use the incremental repair path")
	}
	found := false
	for _, m := range res.DirtyMATs {
		if m == mat {
			found = true
		}
	}
	if !found {
		t.Errorf("DirtyMATs = %v, missing stranded MAT %q", res.DirtyMATs, mat)
	}
	if res.RecoveryTime <= 0 {
		t.Error("recovery time not recorded")
	}

	// The new plan avoids the dead switch and the controller follows it.
	for name, sp := range sup.Deployment().Plan.Assignments {
		if sp.Switch == host {
			t.Errorf("MAT %q still assigned to down switch %d", name, host)
		}
	}
	newHost, err := sup.Controller().HostingSwitch(mat)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sup.Deployment().Plan.SwitchOf(mat)
	if newHost != want {
		t.Errorf("controller host for %q = %d, want rebound %d", mat, newHost, want)
	}
	if sup.PlanBroken() {
		t.Error("plan still broken after redeploy")
	}
	requireHealthy(t, sup)
	st := sup.Stats()
	if st.Replans != 1 || st.IncrementalReplans != 1 {
		t.Errorf("stats = %+v, want exactly one incremental replan", st)
	}
}

// TestFlapSuppression is the acceptance check for K-of-N confirmation:
// a flapping switch must trigger strictly fewer replans with
// confirmation enabled than with it disabled.
func TestFlapSuppression(t *testing.T) {
	flapReplans := func(mopts MonitorOptions) int {
		tp := ringTopo(t, 4, 1.0)
		sup, err := New(workload.RealPrograms(), tp, Options{Monitor: mopts})
		if err != nil {
			t.Fatal(err)
		}
		_, host := hostOf(t, sup)
		// Six one-poll blips: down for a single poll, then back up.
		for i := 0; i < 6; i++ {
			if err := tp.SetSwitchDown(host); err != nil {
				t.Fatal(err)
			}
			if _, err := sup.Poll(); err != nil {
				t.Fatalf("flap %d down-poll: %v", i, err)
			}
			if err := tp.SetSwitchUp(host); err != nil {
				t.Fatal(err)
			}
			if _, err := sup.Poll(); err != nil {
				t.Fatalf("flap %d up-poll: %v", i, err)
			}
		}
		requireHealthy(t, sup)
		return sup.Stats().Replans
	}

	disabled := flapReplans(immediate())
	enabled := flapReplans(MonitorOptions{Window: 3, FailThreshold: 3, RecoverThreshold: 1})
	if disabled < 1 {
		t.Fatalf("flapping with confirmation disabled caused %d replans, want >= 1", disabled)
	}
	if enabled >= disabled {
		t.Fatalf("confirmation enabled caused %d replans, want strictly fewer than %d", enabled, disabled)
	}
}

// TestGracefulDegradationAndRestore: when the reduced topology cannot
// fit the full workload, the supervisor sheds whole programs
// lowest-priority-first (recording each in the report), and restores
// them in priority order once the switch heals.
func TestGracefulDegradationAndRestore(t *testing.T) {
	spec := network.TestbedSpec()
	spec.StageCapacity = 0.15 // RealPrograms ~2.4 switch loads: 3 fit, 2 do not
	tp, err := network.Linear(3, spec)
	if err != nil {
		t.Fatal(err)
	}
	progs := workload.RealPrograms()
	sup, err := New(progs, tp, Options{Monitor: immediate()})
	if err != nil {
		t.Fatal(err)
	}
	if shed := sup.Report().Shed; len(shed) != 0 {
		t.Fatalf("initial deployment shed %v; fixture too tight", shed)
	}

	// Fail an endpoint that hosts MATs (an endpoint keeps the chain
	// connected; the middle switch would partition it).
	var victim network.SwitchID = 2
	hosts := func(id network.SwitchID) bool {
		for _, sp := range sup.Deployment().Plan.Assignments {
			if sp.Switch == id {
				return true
			}
		}
		return false
	}
	if !hosts(victim) {
		victim = 0
	}
	if !hosts(victim) {
		t.Fatal("neither endpoint hosts MATs; fixture broken")
	}
	if err := tp.SetSwitchDown(victim); err != nil {
		t.Fatal(err)
	}

	res, err := sup.Poll()
	if err != nil {
		t.Fatalf("poll after endpoint failure: %v", err)
	}
	if len(res.Shed) == 0 {
		t.Fatal("2-switch residue fit the full workload; expected shedding")
	}
	requireHealthy(t, sup)
	for _, sp := range sup.Deployment().Plan.Assignments {
		if sp.Switch == victim {
			t.Fatalf("degraded plan still uses down switch %d", victim)
		}
	}

	// Shedding is lowest-priority-first: the shed set must be exactly
	// the tail of the priority list.
	rep := sup.Report()
	k := len(rep.Shed)
	shedSet := map[string]bool{}
	for _, name := range rep.Shed {
		shedSet[name] = true
	}
	for _, p := range progs[len(progs)-k:] {
		if !shedSet[p.Name] {
			t.Errorf("shed set %v is not the lowest-priority tail (missing %q)", rep.Shed, p.Name)
		}
	}
	for _, name := range rep.Shed {
		found := false
		for _, ev := range rep.Events {
			if ev.Program == name && ev.Shed && ev.Reason != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("shed program %q has no reasoned shed event", name)
		}
	}
	if got := sup.Stats().ShedPrograms; got != k {
		t.Errorf("ShedPrograms = %d, want %d", got, k)
	}

	// Heal and poll until the up transition is confirmed (backoff may
	// skip a few probes); the restore must bring everything back.
	if err := tp.SetSwitchUp(victim); err != nil {
		t.Fatal(err)
	}
	restored := false
	for i := 0; i < 50 && !restored; i++ {
		res, err := sup.Poll()
		if err != nil {
			t.Fatalf("heal poll: %v", err)
		}
		if len(res.Restored) > 0 {
			restored = true
			// Restores run highest-priority-first.
			idx := func(name string) int {
				for i, p := range progs {
					if p.Name == name {
						return i
					}
				}
				return -1
			}
			for j := 1; j < len(res.Restored); j++ {
				if idx(res.Restored[j-1]) > idx(res.Restored[j]) {
					t.Errorf("restore order %v not highest-priority-first", res.Restored)
				}
			}
		}
	}
	if !restored {
		t.Fatal("healed switch never triggered restoration")
	}
	if shed := sup.Report().Shed; len(shed) != 0 {
		t.Errorf("programs still shed after heal: %v", shed)
	}
	if got := sup.Stats().RestoredPrograms; got != k {
		t.Errorf("RestoredPrograms = %d, want %d", got, k)
	}
	requireHealthy(t, sup)
}

// TestSupervisorFaultDuringRollout is the reentry check: a second
// fault lands while a repair adoption is mid-rollout. The rollout must
// fail closed — roll back (or degrade) without tearing, leaving the
// supervisor on the last-good deployment — and the next poll must
// complete the repair transactionally once the second fault heals.
func TestSupervisorFaultDuringRollout(t *testing.T) {
	tp := ringTopo(t, 5, 1.0)
	var sup *Supervisor
	var victim2 network.SwitchID
	struck := false
	opts := Options{
		Monitor: immediate(),
		RolloutHook: func(phase string, op rollout.Op, view *rollout.ServingView) {
			// First prepare of the first repair rollout: kill the op's
			// own target — a switch the NEW plan depends on — before
			// the op runs, as if it died while the adoption was in
			// flight.
			if !struck && phase == "prepare" {
				struck = true
				victim2 = op.Switch
				if err := tp.SetSwitchDown(victim2); err != nil {
					t.Error(err)
				}
			}
		},
	}
	sup, err := New(workload.RealPrograms(), tp, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireHealthy(t, sup)
	if sup.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", sup.Epoch())
	}
	mat, hostA := hostOf(t, sup)
	before := sup.Deployment()

	if err := tp.SetSwitchDown(hostA); err != nil {
		t.Fatal(err)
	}
	res, err := sup.Poll()
	if err == nil {
		t.Fatal("poll succeeded though a second fault struck mid-rollout")
	}
	if !struck {
		t.Fatal("rollout hook never fired; adoption did not go through the rollout engine")
	}
	if res.Rollout == nil {
		t.Fatal("poll result carries no rollout report")
	}
	if out := res.Rollout.Outcome; out != rollout.OutcomeRolledBack && out != rollout.OutcomeDegraded {
		t.Fatalf("mid-rollout fault outcome = %q, want rolled-back or degraded", out)
	}
	// Fail closed: still the last-good deployment at the old epoch.
	if sup.Deployment() != before {
		t.Fatal("failed rollout swapped the deployment")
	}
	if sup.Epoch() != 1 {
		t.Fatalf("failed rollout advanced the epoch to %d", sup.Epoch())
	}
	st := sup.Stats()
	if st.Rollouts != 1 {
		t.Fatalf("Rollouts = %d, want 1", st.Rollouts)
	}
	if res.Rollout.Outcome == rollout.OutcomeRolledBack && st.RolledBackRollouts != 1 {
		t.Fatalf("RolledBackRollouts = %d, want 1", st.RolledBackRollouts)
	}
	if st.FailedPolls != 1 {
		t.Fatalf("FailedPolls = %d, want 1", st.FailedPolls)
	}

	// Heal the mid-rollout casualty (hostA stays down); the next poll
	// reruns the repair and the rollout commits.
	if err := tp.SetSwitchUp(victim2); err != nil {
		t.Fatal(err)
	}
	res2, err := sup.Poll()
	if err != nil {
		t.Fatalf("reentry poll: %v", err)
	}
	if !res2.Replanned {
		t.Fatal("reentry poll did not replan")
	}
	if res2.Rollout == nil || res2.Rollout.Outcome != rollout.OutcomeCommitted {
		t.Fatalf("reentry rollout = %+v, want committed", res2.Rollout)
	}
	if sup.Epoch() != 2 {
		t.Fatalf("epoch after committed rollout = %d, want 2", sup.Epoch())
	}
	requireHealthy(t, sup)
	for name, sp := range sup.Deployment().Plan.Assignments {
		if sp.Switch == hostA {
			t.Errorf("MAT %q still on dead switch %d after reentry", name, hostA)
		}
	}
	got, err := sup.Controller().HostingSwitch(mat)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := sup.Deployment().Plan.SwitchOf(mat); got != want {
		t.Errorf("controller host for %q = %d, want rebound %d", mat, got, want)
	}
	if st := sup.Stats(); st.Rollouts != 2 {
		t.Errorf("Rollouts = %d, want 2", st.Rollouts)
	}
}
