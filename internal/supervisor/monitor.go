// Package supervisor keeps a Hermes deployment alive through partial
// topology loss. A health monitor heartbeats every switch and applies
// K-of-N confirmation before declaring a failure; the supervisor reacts
// to confirmed transitions by replanning the deployment incrementally
// against the reduced topology, shedding whole programs
// lowest-priority-first when no feasible plan exists, and restoring
// them when switches heal.
package supervisor

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/hermes-net/hermes/internal/network"
)

// ProbeFunc answers one heartbeat: true means the switch responded.
type ProbeFunc func(id network.SwitchID) bool

// MonitorOptions tune the health monitor.
type MonitorOptions struct {
	// Window is N of the K-of-N confirmation: the number of recent
	// probe results kept per switch. Zero means 3. Window 1 with
	// FailThreshold 1 disables confirmation (every failed probe is a
	// confirmed failure — maximally reactive, maximally flap-prone).
	Window int
	// FailThreshold is K: an up switch is confirmed down once its
	// window holds at least this many failures. Zero means Window
	// (unanimous), which tolerates Window-1 consecutive flap blips.
	FailThreshold int
	// RecoverThreshold is the success count a down switch needs in its
	// window to be confirmed up again. Zero means Window.
	RecoverThreshold int
	// Timeout bounds one probe; a probe that has not answered in time
	// counts as a failure. Zero means synchronous (no timeout), which
	// the default fault-overlay probe never needs.
	Timeout time.Duration
	// BackoffBase is the number of polls skipped after the first
	// failed probe of a confirmed-down switch; the skip doubles on
	// every further failure. Zero means 1.
	BackoffBase int
	// BackoffMax caps the skip (before jitter). Zero means 8.
	BackoffMax int
	// Seed makes the backoff jitter deterministic.
	Seed int64
	// Probe replaces the heartbeat; nil reads the topology's fault
	// overlay (the simulation stand-in for a real heartbeat RPC).
	Probe ProbeFunc
}

func (o MonitorOptions) window() int {
	if o.Window <= 0 {
		return 3
	}
	return o.Window
}

func (o MonitorOptions) failThreshold() int {
	k := o.FailThreshold
	if k <= 0 || k > o.window() {
		return o.window()
	}
	return k
}

func (o MonitorOptions) recoverThreshold() int {
	k := o.RecoverThreshold
	if k <= 0 || k > o.window() {
		return o.window()
	}
	return k
}

func (o MonitorOptions) backoffBase() int {
	if o.BackoffBase <= 0 {
		return 1
	}
	return o.BackoffBase
}

func (o MonitorOptions) backoffMax() int {
	if o.BackoffMax <= 0 {
		return 8
	}
	return o.BackoffMax
}

// switchHealth is one switch's probe history and confirmed state.
type switchHealth struct {
	window []bool // ring of recent probe results
	pos    int
	filled int
	down   bool // confirmed state
	skip   int  // polls left to skip (backoff)
	level  int  // backoff exponent
}

func (h *switchHealth) record(ok bool) {
	h.window[h.pos] = ok
	h.pos = (h.pos + 1) % len(h.window)
	if h.filled < len(h.window) {
		h.filled++
	}
}

func (h *switchHealth) failures() int {
	n := 0
	for i := 0; i < h.filled; i++ {
		if !h.window[i] {
			n++
		}
	}
	return n
}

func (h *switchHealth) successes() int {
	return h.filled - h.failures()
}

// Monitor heartbeats every switch of a topology and turns raw probe
// results into confirmed up/down transitions. It is poll-driven: the
// supervisor (or a wall-clock loop) calls Poll once per monitoring
// tick. Confirmed-down switches are probed under jittered exponential
// backoff so a dead switch does not absorb a full probe per tick.
// Monitor is not safe for concurrent use; the owning supervisor
// serializes access.
type Monitor struct {
	topo   *network.Topology
	ids    []network.SwitchID
	per    map[network.SwitchID]*switchHealth
	opts   MonitorOptions
	rng    *rand.Rand
	probes int
	polls  int
}

// NewMonitor builds a monitor over every switch of the topology —
// transit switches matter too: a dead one invalidates routes even
// though it hosts no MATs.
func NewMonitor(topo *network.Topology, opts MonitorOptions) (*Monitor, error) {
	if topo == nil {
		return nil, fmt.Errorf("supervisor: monitor over nil topology")
	}
	m := &Monitor{
		topo: topo,
		per:  map[network.SwitchID]*switchHealth{},
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	for _, sw := range topo.Switches() {
		m.ids = append(m.ids, sw.ID)
		m.per[sw.ID] = &switchHealth{window: make([]bool, opts.window())}
	}
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	return m, nil
}

// probe runs one heartbeat under the configured timeout.
func (m *Monitor) probe(id network.SwitchID) bool {
	fn := m.opts.Probe
	if fn == nil {
		fn = func(id network.SwitchID) bool { return !m.topo.SwitchIsDown(id) }
	}
	if m.opts.Timeout <= 0 {
		return fn(id)
	}
	ch := make(chan bool, 1)
	go func() { ch <- fn(id) }()
	timer := time.NewTimer(m.opts.Timeout)
	defer timer.Stop()
	select {
	case ok := <-ch:
		return ok
	case <-timer.C:
		return false
	}
}

// Poll heartbeats every due switch and returns the confirmed
// transitions: switches newly confirmed down and newly confirmed up,
// each ascending by ID.
func (m *Monitor) Poll() (down, up []network.SwitchID) {
	m.polls++
	for _, id := range m.ids {
		h := m.per[id]
		if h.skip > 0 {
			h.skip--
			continue
		}
		ok := m.probe(id)
		m.probes++
		h.record(ok)
		if h.down {
			if ok {
				if h.successes() >= m.opts.recoverThreshold() {
					h.down = false
					h.level = 0
					up = append(up, id)
				}
				continue
			}
			// Still dead: back off exponentially with jitter so dead
			// switches cost a vanishing fraction of the probe budget.
			h.level++
			d := m.opts.backoffBase()
			for i := 1; i < h.level && d < m.opts.backoffMax(); i++ {
				d *= 2
			}
			if d > m.opts.backoffMax() {
				d = m.opts.backoffMax()
			}
			h.skip = d + m.rng.Intn(d+1)
			continue
		}
		if !ok && h.failures() >= m.opts.failThreshold() {
			h.down = true
			h.level = 0
			down = append(down, id)
		}
	}
	return down, up
}

// ConfirmedDown lists the switches currently confirmed down,
// ascending.
func (m *Monitor) ConfirmedDown() []network.SwitchID {
	var out []network.SwitchID
	for _, id := range m.ids {
		if m.per[id].down {
			out = append(out, id)
		}
	}
	return out
}

// Probes reports how many heartbeats have been sent; with backoff
// enabled this grows slower than polls × switches during outages.
func (m *Monitor) Probes() int { return m.probes }
