package supervisor

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/deploy/rollout"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
)

// Options configure a Supervisor.
type Options struct {
	// Monitor tunes the health monitor (confirmation, backoff).
	Monitor MonitorOptions
	// Solver runs full solves (cold builds and repair fallbacks); nil
	// means the Greedy heuristic.
	Solver placement.Solver
	// Replan carries the ε bounds and churn knobs for supervised
	// replans. Topology is overridden with the live topology on every
	// redeploy; leave it nil. When Replan.Shards > 1 and
	// Replan.Partition is nil, New partitions the monitored topology
	// once (deterministic, seed 1) and pins it here, so every
	// supervised replan takes the region-local repair path instead of
	// re-deriving regions per churn event.
	Replan placement.ReplanOptions
	// Analyze must be the analyzer options the workload is compiled
	// with, so redeploys keep header layouts consistent.
	Analyze analyzer.Options
	// Ctx cancels in-flight replans and solves when done; nil means
	// not cancelable.
	Ctx context.Context
	// MinPrograms is the degradation floor: shedding never drops the
	// active set below this many programs. Zero means 1.
	MinPrograms int
	// Equiv gates every deployment the supervisor adopts — the initial
	// build, incremental redeploys, and degraded rebuilds — through the
	// symbolic equivalence checker (deploy.EquivHook, registered by
	// internal/equiv). A repair that is resource-feasible but not
	// provably equivalent is treated like any other infeasibility: the
	// supervisor degrades instead of adopting it.
	Equiv bool
	// Retry configures the controller's rule-op retry policy.
	Retry deploy.RetryPolicy
	// RolloutRetry bounds per-op attempts for the transactional
	// rollouts that adopt repaired deployments; the zero policy gets
	// the rollout defaults (3 attempts, 2ms backoff).
	RolloutRetry deploy.RetryPolicy
	// RolloutHook observes every rollout op boundary (chaos injection
	// in tests, progress reporting in tools).
	RolloutHook rollout.Hook
}

func (o Options) solver() placement.Solver {
	if o.Solver == nil {
		return placement.Greedy{}
	}
	return o.Solver
}

func (o Options) minPrograms() int {
	if o.MinPrograms <= 0 {
		return 1
	}
	return o.MinPrograms
}

// DegradationEvent records one shed or restore decision.
type DegradationEvent struct {
	// Poll is the supervisor poll sequence number the event happened in
	// (0 = during construction).
	Poll int `json:"poll"`
	// Program is the affected program's name.
	Program string `json:"program"`
	// Shed is true for a shed, false for a restore.
	Shed bool `json:"shed"`
	// Reason is the infeasibility that forced a shed; empty on
	// restores.
	Reason string `json:"reason,omitempty"`
}

// DegradationReport is the cumulative record of graceful degradation:
// every shed/restore event plus the currently shed set. Chaos tests
// and operators audit it to confirm no program silently disappeared.
type DegradationReport struct {
	// Events lists every shed and restore in order.
	Events []DegradationEvent `json:"events"`
	// Shed lists the currently shed program names, highest priority
	// first.
	Shed []string `json:"shed"`
}

// Stats count the supervisor's lifetime activity.
type Stats struct {
	// Polls is how many times Poll ran.
	Polls int
	// ConfirmedDown and ConfirmedUp count monitor transitions.
	ConfirmedDown int
	ConfirmedUp   int
	// Replans counts redeploy attempts triggered by a broken plan;
	// IncrementalReplans of them went through the delta-repair path and
	// FullReplans through a from-scratch solve (fallback or rebuild
	// after shedding).
	Replans            int
	IncrementalReplans int
	FullReplans        int
	// RegionalReplans counts the incremental replans that took the
	// region-local repair path (a partition was pinned on the replan
	// options; subset of IncrementalReplans).
	RegionalReplans int
	// ShedPrograms and RestoredPrograms count degradation events.
	ShedPrograms     int
	RestoredPrograms int
	// FailedPolls counts polls that left the deployment broken (no
	// feasible plan even after shedding to the floor).
	FailedPolls int
	// Rollouts counts transactional adoption attempts;
	// RolledBackRollouts of them failed mid-flight and restored the
	// last-good plan (the supervisor stays on it and retries next
	// poll).
	Rollouts           int
	RolledBackRollouts int
}

// PollResult describes what one poll did.
type PollResult struct {
	// Down and Up are the transitions confirmed this poll.
	Down []network.SwitchID
	Up   []network.SwitchID
	// DirtyMATs lists the MATs stranded on down switches at the start
	// of the redeploy (the replan's displaced seed set).
	DirtyMATs []string
	// Replanned is true when a redeploy ran; UsedRepair marks the
	// incremental path and UsedRegional the region-local repair within
	// it (RegionsTouched lists the dirty regions it operated on).
	Replanned      bool
	UsedRepair     bool
	UsedRegional   bool
	RegionsTouched []int
	// Shed and Restored list programs degraded or brought back this
	// poll.
	Shed     []string
	Restored []string
	// RecoveryTime is the wall clock spent replanning, rebuilding,
	// compiling, and verifying this poll.
	RecoveryTime time.Duration
	// Rollout is the report of the last transactional adoption this
	// poll ran (nil when nothing was adopted make-before-break).
	Rollout *rollout.Report
}

// Supervisor owns a deployment and keeps it consistent with the live
// topology's fault state. It is poll-driven: each Poll heartbeats the
// switches, and confirmed transitions trigger incremental replans,
// graceful degradation, or restoration. Methods must not be called
// concurrently.
type Supervisor struct {
	topo  *network.Topology
	progs []*program.Program // priority order: progs[0] matters most
	shed  map[string]bool    // program name -> currently shed
	opts  Options
	mon   *Monitor
	dep   *deploy.Deployment
	ctrl  *deploy.Controller
	fab   *rollout.MemFabric
	epoch uint64
	rep   DegradationReport
	stats Stats
}

// New builds the initial deployment of progs on topo and wraps it in a
// supervisor. progs is in priority order: progs[0] is the most
// important and is shed last. If even the initial workload does not
// fit, New degrades immediately (recorded in the report) rather than
// failing, as long as MinPrograms fit.
func New(progs []*program.Program, topo *network.Topology, opts Options) (*Supervisor, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("supervisor: no programs")
	}
	if topo == nil {
		return nil, fmt.Errorf("supervisor: nil topology")
	}
	mon, err := NewMonitor(topo, opts.Monitor)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		topo:  topo,
		progs: progs,
		shed:  map[string]bool{},
		opts:  opts,
		mon:   mon,
	}
	// Sharded supervision: derive the region partition once from the
	// monitored topology so churn-time replans heal region-locally.
	// Partitioning failures (topology too small or disconnected for k)
	// are not fatal — replans simply keep the whole-topology repair.
	if s.opts.Replan.Partition == nil && s.opts.Replan.Shards > 1 {
		if part, err := network.PartitionRegions(topo, s.opts.Replan.Shards, 1); err == nil {
			s.opts.Replan.Partition = part
		}
	}
	res := &PollResult{}
	if err := s.rebuild(res); err != nil {
		if err = s.shedUntilFit(res, 0, err); err != nil {
			return nil, fmt.Errorf("supervisor: initial deployment: %w", err)
		}
	}
	ctrl, err := deploy.NewController(s.dep)
	if err != nil {
		return nil, err
	}
	ctrl.SetRetryPolicy(opts.Retry)
	s.ctrl = ctrl
	// All later adoptions are transactional make-before-break; the
	// fabric tracks which epoch each switch has installed, starting
	// from the initial deployment at epoch 1.
	s.epoch = 1
	s.fab = rollout.NewMemFabric(topo)
	s.fab.Bootstrap(s.dep, s.epoch)
	return s, nil
}

// Epoch returns the serving deployment's epoch token.
func (s *Supervisor) Epoch() uint64 { return s.epoch }

// Fabric returns the rollout fabric tracking per-switch installed
// epochs across supervised adoptions.
func (s *Supervisor) Fabric() *rollout.MemFabric { return s.fab }

// Deployment returns the live deployment.
func (s *Supervisor) Deployment() *deploy.Deployment { return s.dep }

// Controller returns the rule controller bound to the live deployment.
func (s *Supervisor) Controller() *deploy.Controller { return s.ctrl }

// Monitor returns the health monitor.
func (s *Supervisor) Monitor() *Monitor { return s.mon }

// Report returns a copy of the degradation report.
func (s *Supervisor) Report() DegradationReport {
	out := DegradationReport{
		Events: append([]DegradationEvent(nil), s.rep.Events...),
	}
	for _, p := range s.progs {
		if s.shed[p.Name] {
			out.Shed = append(out.Shed, p.Name)
		}
	}
	return out
}

// Stats returns the lifetime counters.
func (s *Supervisor) Stats() Stats { return s.stats }

// active returns the currently deployed programs, priority order.
func (s *Supervisor) active() []*program.Program {
	out := make([]*program.Program, 0, len(s.progs))
	for _, p := range s.progs {
		if !s.shed[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

// PlanBroken reports whether the raw fault state invalidates the
// current plan: a hosting switch is down, or a chosen route traverses
// a down switch or link. The poll loop acts on the confirmed variant
// (see brokenConfirmed) so unconfirmed flap blips do not churn.
func (s *Supervisor) PlanBroken() bool {
	return s.broken(func(id network.SwitchID) bool { return s.topo.SwitchIsDown(id) })
}

// brokenConfirmed is the action trigger: a switch counts as failed
// only when it is down in the fault overlay AND the monitor has
// confirmed it (K-of-N), so a single-poll blip never forces a replan.
// Link faults are not heartbeat-confirmed (the monitor probes
// switches) and act immediately.
func (s *Supervisor) brokenConfirmed() bool {
	confirmed := map[network.SwitchID]bool{}
	for _, id := range s.mon.ConfirmedDown() {
		confirmed[id] = true
	}
	return s.broken(func(id network.SwitchID) bool {
		return s.topo.SwitchIsDown(id) && confirmed[id]
	})
}

func (s *Supervisor) broken(downFn func(network.SwitchID) bool) bool {
	if s.dep == nil {
		return true
	}
	for _, sp := range s.dep.Plan.Assignments {
		if downFn(sp.Switch) {
			return true
		}
	}
	for _, path := range s.dep.Plan.Routes {
		for i, hop := range path.Switches {
			if downFn(hop) {
				return true
			}
			if i > 0 && s.topo.LinkIsDown(path.Switches[i-1], hop) {
				return true
			}
		}
	}
	return false
}

// dirtyMATs lists the MATs hosted on down switches, in TDG node
// order — the displaced set the replan starts from.
func (s *Supervisor) dirtyMATs() []string {
	if s.dep == nil {
		return nil
	}
	var out []string
	for _, name := range s.dep.Plan.Graph.NodeNames() {
		if sp, ok := s.dep.Plan.Assignments[name]; ok && s.topo.SwitchIsDown(sp.Switch) {
			out = append(out, name)
		}
	}
	return out
}

// Poll runs one supervision tick: heartbeat every switch, and react to
// confirmed transitions. A broken plan triggers an incremental
// redeploy; infeasibility triggers shedding; heals trigger
// restoration. The returned result describes what happened; the error
// is non-nil only when the deployment could not be made consistent
// (it stays on the last good plan).
func (s *Supervisor) Poll() (*PollResult, error) {
	s.stats.Polls++
	poll := s.stats.Polls
	res := &PollResult{}
	res.Down, res.Up = s.mon.Poll()
	s.stats.ConfirmedDown += len(res.Down)
	s.stats.ConfirmedUp += len(res.Up)

	start := time.Now()
	var err error
	if s.brokenConfirmed() {
		res.DirtyMATs = s.dirtyMATs()
		err = s.redeploy(res, poll)
	}
	// A heal (or a successful redeploy freeing capacity) is the moment
	// to try bringing shed programs back.
	if err == nil && len(res.Up) > 0 {
		s.restore(res, poll)
	}
	if res.Replanned || len(res.Shed) > 0 || len(res.Restored) > 0 {
		res.RecoveryTime = time.Since(start)
	}
	if err != nil {
		s.stats.FailedPolls++
	}
	return res, err
}

// Run polls on a wall-clock interval until ctx is done. It stops early
// only on context cancellation; per-poll errors are reported through
// onPoll (nil callback ignores them) because a supervisor's job is to
// keep trying.
func (s *Supervisor) Run(ctx context.Context, interval time.Duration, onPoll func(*PollResult, error)) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			res, err := s.Poll()
			if onPoll != nil {
				onPoll(res, err)
			}
		}
	}
}

// redeploy repairs the deployment around the current fault state:
// first the incremental replan path, then (on infeasibility) graceful
// degradation — shed the lowest-priority active program and rebuild
// cold, repeating until a valid plan fits or the floor is reached.
func (s *Supervisor) redeploy(res *PollResult, poll int) error {
	ropts := s.opts.Replan
	ropts.Topology = s.topo
	ropts.Ctx = s.opts.Ctx
	ropts.Equiv = ropts.Equiv || s.opts.Equiv
	s.stats.Replans++
	next, rrep, err := deploy.Redeploy(s.dep, s.opts.solver(), ropts, s.opts.Analyze)
	if err == nil {
		res.Replanned = true
		res.UsedRepair = rrep.UsedRepair
		res.UsedRegional = rrep.UsedRegional
		res.RegionsTouched = rrep.RegionsTouched
		if rrep.UsedRepair {
			s.stats.IncrementalReplans++
			if rrep.UsedRegional {
				s.stats.RegionalReplans++
			}
		} else {
			s.stats.FullReplans++
		}
		return s.adopt(res, next)
	}
	// No feasible plan for the full active set: degrade.
	return s.shedUntilFit(res, poll, err)
}

// shedUntilFit degrades gracefully: shed the lowest-priority active
// program and rebuild cold, repeating until a valid plan fits or the
// floor is reached. cause is the infeasibility that started the loop.
func (s *Supervisor) shedUntilFit(res *PollResult, poll int, cause error) error {
	err := cause
	for {
		act := s.active()
		if len(act) <= s.opts.minPrograms() {
			return fmt.Errorf("supervisor: no feasible plan and shed floor reached (%d programs): %w",
				len(act), err)
		}
		victim := act[len(act)-1] // lowest priority
		s.shed[victim.Name] = true
		s.stats.ShedPrograms++
		s.rep.Events = append(s.rep.Events, DegradationEvent{
			Poll: poll, Program: victim.Name, Shed: true, Reason: err.Error(),
		})
		res.Shed = append(res.Shed, victim.Name)
		if rerr := s.rebuild(res); rerr == nil {
			return nil
		} else {
			err = rerr
		}
	}
}

// restore tries to bring shed programs back, highest priority first,
// stopping at the first one that still does not fit (restoring a
// lower-priority program before a higher-priority one would invert
// the policy).
func (s *Supervisor) restore(res *PollResult, poll int) {
	for _, p := range s.progs {
		if !s.shed[p.Name] {
			continue
		}
		s.shed[p.Name] = false
		if err := s.rebuild(res); err != nil {
			s.shed[p.Name] = true
			return
		}
		s.stats.RestoredPrograms++
		s.rep.Events = append(s.rep.Events, DegradationEvent{
			Poll: poll, Program: p.Name, Shed: false,
		})
		res.Restored = append(res.Restored, p.Name)
	}
}

// rebuild solves the active program set cold against the live
// topology and adopts the result. The plan owns a topology snapshot
// (with the fault overlay frozen at solve time), so later fault
// mutations never corrupt a standing plan.
func (s *Supervisor) rebuild(res *PollResult) error {
	act := s.active()
	if len(act) == 0 {
		return fmt.Errorf("supervisor: every program shed")
	}
	g, err := analyzer.Analyze(act, s.opts.Analyze)
	if err != nil {
		return err
	}
	popts := s.opts.Replan.Options
	popts.Ctx = s.opts.Ctx
	popts.Equiv = popts.Equiv || s.opts.Equiv
	plan, err := s.opts.solver().Solve(g, s.topo.Clone(), popts)
	if err != nil {
		return err
	}
	dep, err := deploy.Compile(plan, s.opts.Analyze)
	if err != nil {
		return err
	}
	if err := dep.Verify(); err != nil {
		return err
	}
	if s.opts.Equiv && deploy.EquivHook != nil {
		if err := deploy.EquivHook(dep); err != nil {
			return err
		}
	}
	if s.dep != nil {
		res.Replanned = true
		s.stats.FullReplans++
	}
	return s.adopt(res, dep)
}

// adopt swaps in a new deployment. The initial build (no controller
// yet) binds directly — nothing is serving. Every later adoption runs
// the transactional make-before-break rollout: the new configs are
// staged under a fresh epoch, program groups flip atomically, the
// controller is rebound by the engine after every group committed,
// and only then is the old epoch retired. A failed rollout restores
// the last-good plan (or degrades without tearing) and the supervisor
// keeps serving it; the next poll retries.
func (s *Supervisor) adopt(res *PollResult, dep *deploy.Deployment) error {
	if s.ctrl == nil || s.dep == nil {
		s.dep = dep
		return nil
	}
	r, err := rollout.New(s.dep, dep, rollout.Options{
		Topo:      s.topo,
		Ctx:       s.opts.Ctx,
		Retry:     s.opts.RolloutRetry,
		Fabric:    s.fab,
		Ctrl:      s.ctrl,
		FromEpoch: s.epoch,
		Equiv:     s.opts.Equiv,
		Hook:      s.opts.RolloutHook,
	})
	if err != nil {
		return err
	}
	s.stats.Rollouts++
	rep, err := r.Execute()
	if res != nil {
		res.Rollout = rep
	}
	if err != nil {
		if errors.Is(err, rollout.ErrRolledBack) {
			s.stats.RolledBackRollouts++
		}
		return fmt.Errorf("supervisor: adopt: %w", err)
	}
	s.dep = dep
	s.epoch = rep.ToEpoch
	return nil
}
