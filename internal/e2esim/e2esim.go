// Package e2esim models the end-to-end performance impact of per-packet
// byte overhead (paper §II-B, Figure 2). The mechanism is mechanical:
// piggybacked metadata either grows each packet on the wire (when the
// packet still fits the MTU) or shrinks the usable payload so the
// application needs more packets for the same message (when it does
// not). Both inflate flow completion time (FCT) and deflate goodput.
//
// The simulator reproduces the paper's testbed setup: a flow of 10^6
// packets of a fixed size crossing five switch hops at 100 Gbps, with
// the per-packet metadata size swept from 28 to 108 bytes.
package e2esim

import (
	"fmt"
	"math"
	"time"
)

// Config describes a flow experiment.
type Config struct {
	// PacketBytes is the original on-wire packet size (headers +
	// payload), e.g. 512, 1024, 1500 — the paper's three settings.
	PacketBytes int
	// StackHeaderBytes is the size of the standard Ethernet/IP/TCP
	// stack inside PacketBytes. Defaults to 54 (Ethernet 14 + IPv4 20 +
	// TCP 20).
	StackHeaderBytes int
	// MTU is the maximum transmission unit. Defaults to 1500.
	MTU int
	// FlowPackets is the number of original-size packets in the flow;
	// the paper uses 10^6.
	FlowPackets int
	// LineRateBps is the bottleneck rate in bits/s. Defaults to 100e9
	// (the paper's 100 Gbps ports).
	LineRateBps float64
	// Hops is the number of switches traversed; the paper repeats L3
	// routing five times.
	Hops int
	// PerHopLatency is the one-way latency contributed by each hop
	// (switch transit + link). Defaults to 1 µs.
	PerHopLatency time.Duration
	// HostPerPacket is the fixed per-packet processing cost at the
	// end-hosts (PktGen/DPDK descriptor handling). Defaults to 10 ns.
	HostPerPacket time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.StackHeaderBytes == 0 {
		c.StackHeaderBytes = 54
	}
	if c.MTU == 0 {
		c.MTU = 1500
	}
	if c.LineRateBps == 0 {
		c.LineRateBps = 100e9
	}
	if c.Hops == 0 {
		c.Hops = 5
	}
	if c.PerHopLatency == 0 {
		c.PerHopLatency = time.Microsecond
	}
	if c.HostPerPacket == 0 {
		c.HostPerPacket = 10 * time.Nanosecond
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.PacketBytes <= c.StackHeaderBytes {
		return fmt.Errorf("e2esim: packet %dB leaves no payload after %dB headers",
			c.PacketBytes, c.StackHeaderBytes)
	}
	if c.PacketBytes > c.MTU {
		return fmt.Errorf("e2esim: packet %dB exceeds MTU %d", c.PacketBytes, c.MTU)
	}
	if c.FlowPackets <= 0 {
		return fmt.Errorf("e2esim: non-positive flow size %d", c.FlowPackets)
	}
	return nil
}

// FlowMetrics is the outcome of one flow transfer.
type FlowMetrics struct {
	// FCT is the flow completion time.
	FCT time.Duration
	// GoodputBps is application payload bits per second.
	GoodputBps float64
	// Packets is the number of packets actually sent.
	Packets int
	// WireBytesPerPacket is the on-wire packet size used.
	WireBytesPerPacket int
}

// Run simulates transferring the flow with the given per-packet
// metadata overhead.
func (c Config) Run(overheadBytes int) (FlowMetrics, error) {
	if overheadBytes < 0 {
		return FlowMetrics{}, fmt.Errorf("e2esim: negative overhead %d", overheadBytes)
	}
	if err := c.Validate(); err != nil {
		return FlowMetrics{}, err
	}
	c = c.withDefaults()

	payloadPerOriginal := c.PacketBytes - c.StackHeaderBytes
	totalPayload := int64(c.FlowPackets) * int64(payloadPerOriginal)

	var packets int64
	var wireBytes int
	if c.PacketBytes+overheadBytes <= c.MTU {
		// The metadata rides along: packets grow but the count is
		// unchanged.
		packets = int64(c.FlowPackets)
		wireBytes = c.PacketBytes + overheadBytes
	} else {
		// The application must shrink its payload to fit MTU; more
		// packets carry the same message.
		perPacket := c.MTU - c.StackHeaderBytes - overheadBytes
		if perPacket <= 0 {
			return FlowMetrics{}, fmt.Errorf("e2esim: overhead %dB leaves no payload within MTU %d",
				overheadBytes, c.MTU)
		}
		packets = (totalPayload + int64(perPacket) - 1) / int64(perPacket)
		wireBytes = c.MTU
	}

	serialization := time.Duration(float64(packets) * float64(wireBytes) * 8 / c.LineRateBps * float64(time.Second))
	perPacketHost := time.Duration(packets) * c.HostPerPacket
	pipeline := time.Duration(c.Hops) * c.PerHopLatency
	fct := serialization + perPacketHost + pipeline

	goodput := float64(totalPayload) * 8 / fct.Seconds()
	return FlowMetrics{
		FCT:                fct,
		GoodputBps:         goodput,
		Packets:            int(packets),
		WireBytesPerPacket: wireBytes,
	}, nil
}

// Impact reports the normalized degradation versus the zero-overhead
// baseline: the fractional FCT increase and goodput decrease, the
// quantities Figure 2 plots.
type Impact struct {
	OverheadBytes   float64
	FCTIncrease     float64 // e.g. 0.15 == +15% FCT
	GoodputDecrease float64 // e.g. 0.16 == -16% goodput
}

// ImpactOf computes the normalized impact of the overhead.
func (c Config) ImpactOf(overheadBytes int) (Impact, error) {
	base, err := c.Run(0)
	if err != nil {
		return Impact{}, err
	}
	with, err := c.Run(overheadBytes)
	if err != nil {
		return Impact{}, err
	}
	return Impact{
		OverheadBytes:   float64(overheadBytes),
		FCTIncrease:     with.FCT.Seconds()/base.FCT.Seconds() - 1,
		GoodputDecrease: 1 - with.GoodputBps/base.GoodputBps,
	}, nil
}

// Sweep evaluates the impact across a range of overheads (Figure 2's
// x-axis).
func (c Config) Sweep(overheads []int) ([]Impact, error) {
	out := make([]Impact, 0, len(overheads))
	for _, h := range overheads {
		imp, err := c.ImpactOf(h)
		if err != nil {
			return nil, err
		}
		out = append(out, imp)
	}
	return out, nil
}

// Figure2Overheads is the paper's sweep: 28 to 108 bytes.
func Figure2Overheads() []int {
	return []int{28, 48, 68, 88, 108}
}

// Figure2PacketSizes is the paper's packet-size settings.
func Figure2PacketSizes() []int {
	return []int{512, 1024, 1500}
}

// DefaultDCN returns the paper's testbed flow configuration for the
// given packet size.
func DefaultDCN(packetBytes int) Config {
	return Config{
		PacketBytes: packetBytes,
		FlowPackets: 1_000_000,
		Hops:        5,
	}.withDefaults()
}

// RunAccumulating simulates an INT-style flow where each hop appends
// perHopBytes of metadata (paper §II-B: "in a 5-hop end-to-end DCN
// transmission, the size of INT headers easily exceeds 48 bytes"). The
// packet grows hop by hop; the bottleneck is the final hop, where the
// full Hops×perHopBytes header rides along — so the effective overhead
// equals the egress size, but average wire time is integrated over the
// growth.
func (c Config) RunAccumulating(perHopBytes int) (FlowMetrics, error) {
	if perHopBytes < 0 {
		return FlowMetrics{}, fmt.Errorf("e2esim: negative per-hop overhead %d", perHopBytes)
	}
	if err := c.Validate(); err != nil {
		return FlowMetrics{}, err
	}
	c = c.withDefaults()

	payloadPerOriginal := c.PacketBytes - c.StackHeaderBytes
	totalPayload := int64(c.FlowPackets) * int64(payloadPerOriginal)
	egressOverhead := perHopBytes * c.Hops

	var packets int64
	var egressBytes int
	if c.PacketBytes+egressOverhead <= c.MTU {
		packets = int64(c.FlowPackets)
		egressBytes = c.PacketBytes + egressOverhead
	} else {
		perPacket := c.MTU - c.StackHeaderBytes - egressOverhead
		if perPacket <= 0 {
			return FlowMetrics{}, fmt.Errorf("e2esim: %d hops × %dB INT leaves no payload within MTU %d",
				c.Hops, perHopBytes, c.MTU)
		}
		packets = (totalPayload + int64(perPacket) - 1) / int64(perPacket)
		egressBytes = c.MTU
	}
	// Serialization is paid per hop at the hop's packet size; the
	// bottleneck (pipelined) hop is the last, but the first packet pays
	// the staircase once.
	bottleneck := time.Duration(float64(packets) * float64(egressBytes) * 8 / c.LineRateBps * float64(time.Second))
	perPacketHost := time.Duration(packets) * c.HostPerPacket
	pipeline := time.Duration(c.Hops) * c.PerHopLatency
	fct := bottleneck + perPacketHost + pipeline

	goodput := float64(totalPayload) * 8 / fct.Seconds()
	return FlowMetrics{
		FCT:                fct,
		GoodputBps:         goodput,
		Packets:            int(packets),
		WireBytesPerPacket: egressBytes,
	}, nil
}

// AccumulatingImpactOf is ImpactOf for per-hop (INT-style) overhead.
func (c Config) AccumulatingImpactOf(perHopBytes int) (Impact, error) {
	base, err := c.Run(0)
	if err != nil {
		return Impact{}, err
	}
	with, err := c.RunAccumulating(perHopBytes)
	if err != nil {
		return Impact{}, err
	}
	return Impact{
		OverheadBytes:   float64(perHopBytes * c.withDefaults().Hops),
		FCTIncrease:     with.FCT.Seconds()/base.FCT.Seconds() - 1,
		GoodputDecrease: 1 - with.GoodputBps/base.GoodputBps,
	}, nil
}

// RelativeOverheadReduction compares two deployments' overheads by the
// end-to-end damage they cause: it returns how much larger b's FCT
// penalty is than a's, as a fraction of a's (the "reduces overheads by
// up to 145%" arithmetic of Exp#4).
func RelativeOverheadReduction(cfg Config, aBytes, bBytes int) (float64, error) {
	ia, err := cfg.ImpactOf(aBytes)
	if err != nil {
		return 0, err
	}
	ib, err := cfg.ImpactOf(bBytes)
	if err != nil {
		return 0, err
	}
	if ia.FCTIncrease <= 0 {
		if ib.FCTIncrease <= 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return ib.FCTIncrease/ia.FCTIncrease - 1, nil
}
