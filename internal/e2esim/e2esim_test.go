package e2esim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroOverheadBaseline(t *testing.T) {
	cfg := DefaultDCN(512)
	m, err := cfg.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Packets != cfg.FlowPackets {
		t.Errorf("packets = %d, want %d", m.Packets, cfg.FlowPackets)
	}
	if m.WireBytesPerPacket != 512 {
		t.Errorf("wire bytes = %d, want 512", m.WireBytesPerPacket)
	}
	if m.FCT <= 0 || m.GoodputBps <= 0 {
		t.Errorf("non-positive metrics: %+v", m)
	}
	// Goodput can never exceed line rate.
	if m.GoodputBps > 100e9 {
		t.Errorf("goodput %g exceeds line rate", m.GoodputBps)
	}
}

func TestOverheadGrowsPacketsWithinMTU(t *testing.T) {
	cfg := DefaultDCN(512)
	m, err := cfg.Run(68)
	if err != nil {
		t.Fatal(err)
	}
	if m.Packets != cfg.FlowPackets {
		t.Errorf("within-MTU overhead changed packet count: %d", m.Packets)
	}
	if m.WireBytesPerPacket != 580 {
		t.Errorf("wire bytes = %d, want 580", m.WireBytesPerPacket)
	}
}

func TestOverheadSplitsPacketsAtMTU(t *testing.T) {
	cfg := DefaultDCN(1500)
	m, err := cfg.Run(48)
	if err != nil {
		t.Fatal(err)
	}
	// 1500-byte packets cannot absorb 48 bytes: payload shrinks and the
	// flow needs more packets.
	if m.Packets <= cfg.FlowPackets {
		t.Errorf("MTU-limited flow should need more packets: %d", m.Packets)
	}
	if m.WireBytesPerPacket != 1500 {
		t.Errorf("wire bytes = %d, want 1500", m.WireBytesPerPacket)
	}
}

func TestMonotoneImpact(t *testing.T) {
	for _, size := range Figure2PacketSizes() {
		cfg := DefaultDCN(size)
		prevFCT := -1.0
		prevGoodput := -1.0
		for _, h := range Figure2Overheads() {
			imp, err := cfg.ImpactOf(h)
			if err != nil {
				t.Fatal(err)
			}
			if imp.FCTIncrease < prevFCT {
				t.Errorf("size %d: FCT impact not monotone at %dB", size, h)
			}
			if imp.GoodputDecrease < prevGoodput {
				t.Errorf("size %d: goodput impact not monotone at %dB", size, h)
			}
			prevFCT, prevGoodput = imp.FCTIncrease, imp.GoodputDecrease
			if imp.FCTIncrease < 0 || imp.GoodputDecrease < 0 {
				t.Errorf("size %d overhead %d: negative impact %+v", size, h, imp)
			}
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	// The paper reports that 68 bytes costs roughly +15% FCT and -16%
	// goodput on its testbed (512-byte packets). Our analytic model
	// must land in the same regime: 5-25%.
	cfg := DefaultDCN(512)
	imp, err := cfg.ImpactOf(68)
	if err != nil {
		t.Fatal(err)
	}
	if imp.FCTIncrease < 0.05 || imp.FCTIncrease > 0.25 {
		t.Errorf("FCT increase at 68B = %.1f%%, want 5-25%%", imp.FCTIncrease*100)
	}
	if imp.GoodputDecrease < 0.05 || imp.GoodputDecrease > 0.25 {
		t.Errorf("goodput decrease at 68B = %.1f%%, want 5-25%%", imp.GoodputDecrease*100)
	}
	// Larger packets absorb overhead better within MTU.
	cfg2 := DefaultDCN(1024)
	imp2, err := cfg2.ImpactOf(68)
	if err != nil {
		t.Fatal(err)
	}
	if imp2.FCTIncrease >= imp.FCTIncrease {
		t.Errorf("1024B packets should suffer less than 512B: %.3f vs %.3f",
			imp2.FCTIncrease, imp.FCTIncrease)
	}
}

func TestSweepMatchesIndividualRuns(t *testing.T) {
	cfg := DefaultDCN(1024)
	sweep, err := cfg.Sweep(Figure2Overheads())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("sweep returned %d points", len(sweep))
	}
	for i, h := range Figure2Overheads() {
		imp, err := cfg.ImpactOf(h)
		if err != nil {
			t.Fatal(err)
		}
		if sweep[i] != imp {
			t.Errorf("sweep[%d] = %+v, individual = %+v", i, sweep[i], imp)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := (Config{PacketBytes: 40, FlowPackets: 10}).Run(0); err == nil {
		t.Error("packet smaller than headers accepted")
	}
	if _, err := (Config{PacketBytes: 2000, FlowPackets: 10}).Run(0); err == nil {
		t.Error("packet above MTU accepted")
	}
	if _, err := (Config{PacketBytes: 512}).Run(0); err == nil {
		t.Error("zero flow size accepted")
	}
	if _, err := DefaultDCN(512).Run(-1); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := DefaultDCN(1500).Run(1446); err == nil {
		t.Error("overhead that erases the payload accepted")
	}
}

func TestRelativeOverheadReduction(t *testing.T) {
	cfg := DefaultDCN(1024)
	// Hermes (low overhead) vs baseline (high overhead): positive.
	r, err := RelativeOverheadReduction(cfg, 8, 160)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 {
		t.Errorf("reduction = %g, want positive", r)
	}
	// Equal overheads: zero.
	r, err = RelativeOverheadReduction(cfg, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 1e-9 {
		t.Errorf("equal overheads give reduction %g", r)
	}
	// Zero vs positive: infinite improvement.
	r, err = RelativeOverheadReduction(cfg, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r, 1) {
		t.Errorf("0 vs 50 = %g, want +Inf", r)
	}
	// Zero vs zero.
	r, err = RelativeOverheadReduction(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("0 vs 0 = %g, want 0", r)
	}
}

// Property: goodput · FCT == total payload bits for any valid run.
func TestGoodputFCTIdentity(t *testing.T) {
	prop := func(size8, h8 uint8) bool {
		size := 256 + int(size8)*4 // 256..1276
		h := int(h8) % 120
		cfg := DefaultDCN(size)
		m, err := cfg.Run(h)
		if err != nil {
			return true // invalid combos are fine
		}
		payloadBits := float64(cfg.FlowPackets) * float64(size-54) * 8
		got := m.GoodputBps * m.FCT.Seconds()
		return math.Abs(got-payloadBits)/payloadBits < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: FCT strictly increases once overhead forces extra packets.
func TestMTUSplitStrictlyWorse(t *testing.T) {
	cfg := DefaultDCN(1500)
	m0, err := cfg.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cfg.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if m1.FCT <= m0.FCT {
		t.Error("split flow not slower")
	}
	if m1.GoodputBps >= m0.GoodputBps {
		t.Error("split flow not lower goodput")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{PacketBytes: 512, FlowPackets: 1}.withDefaults()
	if c.MTU != 1500 || c.Hops != 5 || c.LineRateBps != 100e9 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.PerHopLatency != time.Microsecond {
		t.Errorf("per-hop latency default = %v", c.PerHopLatency)
	}
}

func TestRunAccumulatingMatchesFixedAtEgress(t *testing.T) {
	// Per-hop accumulation with H hops must cost at least as much as a
	// fixed overhead of H*perHop bytes is approximated by the egress
	// size, so the two models agree on packet counts and wire size.
	cfg := DefaultDCN(512)
	acc, err := cfg.RunAccumulating(10) // 5 hops -> 50B at egress
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := cfg.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Packets != fixed.Packets || acc.WireBytesPerPacket != fixed.WireBytesPerPacket {
		t.Errorf("accumulating (%d pkts, %dB) != fixed egress (%d pkts, %dB)",
			acc.Packets, acc.WireBytesPerPacket, fixed.Packets, fixed.WireBytesPerPacket)
	}
}

func TestRunAccumulatingIntroScenario(t *testing.T) {
	// The paper's intro: ~48B of INT headers over 5 hops degrades
	// performance noticeably at DCN packet sizes.
	cfg := DefaultDCN(512)
	imp, err := cfg.AccumulatingImpactOf(10)
	if err != nil {
		t.Fatal(err)
	}
	if imp.OverheadBytes != 50 {
		t.Errorf("egress overhead = %g, want 50", imp.OverheadBytes)
	}
	if imp.FCTIncrease <= 0.03 {
		t.Errorf("FCT increase = %.3f, want noticeable (>3%%)", imp.FCTIncrease)
	}
}

func TestRunAccumulatingErrors(t *testing.T) {
	cfg := DefaultDCN(1500)
	if _, err := cfg.RunAccumulating(-1); err == nil {
		t.Error("negative per-hop overhead accepted")
	}
	if _, err := cfg.RunAccumulating(300); err == nil {
		t.Error("payload-erasing INT accepted")
	}
}
