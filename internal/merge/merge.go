// Package merge implements SPEED-style TDG merging (paper §IV, Alg. 1
// lines 4–8). Different programs exhibit redundancy — e.g. several
// sketches all compute hash indexes — so merging their TDGs and
// unifying equivalent MATs saves switch resources.
//
// The merger follows the three steps the paper quotes from SPEED [6]:
//  1. identify redundant MATs (identical properties) across the inputs,
//  2. initialize the merged TDG with the union of nodes and edges,
//  3. remove as many redundant MATs as possible while preserving edges.
//
// A unification is skipped when it would create a cycle: the merged TDG
// must stay a DAG for deployment to be meaningful.
package merge

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Graphs merges the given TDGs into one with the semantics of
// Algorithm 1's pairwise fold (repeatedly extract two TDGs, merge them
// with Two, put the result back), but runs incrementally on a single
// accumulator: each input is folded into the accumulated graph using a
// hash index over MAT equivalence classes instead of Two's linear
// rescan of every accumulated node, and cycle checks walk only from
// the newly added edges instead of re-sorting the whole graph. This
// takes network-wide workloads (thousands of programs, ~10^5 MATs)
// from hours to seconds while producing the same merged TDG as the
// literal fold — TestGraphsMatchesPairwiseFold pins the equivalence.
// Input graphs are not modified.
func Graphs(graphs []*tdg.Graph) (*tdg.Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("merge: no TDGs to merge")
	}
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("merge: nil TDG at index %d", i)
		}
	}
	m := newMerger(graphs[0])
	for _, g := range graphs[1:] {
		if err := m.add(g); err != nil {
			return nil, err
		}
	}
	return m.out, nil
}

// Two merges two TDGs. Nodes of t2 that are equivalent to a node of t1
// are unified into the t1 node; everything else is unioned. Inputs are
// not modified.
func Two(t1, t2 *tdg.Graph) (*tdg.Graph, error) {
	out := t1.Clone()

	// Union in t2's nodes, remembering which get unified.
	renamed := make(map[string]string) // t2 name -> merged name
	for _, n2 := range t2.Nodes() {
		target := ""
		for _, n1 := range out.Nodes() {
			if n1.Name() == n2.Name() {
				// Same name across graphs: must be the same MAT
				// definition or the inputs are inconsistent.
				if !n1.MAT.Equivalent(n2.MAT) {
					return nil, fmt.Errorf("merge: node %q has conflicting definitions", n2.Name())
				}
				target = n1.Name()
				break
			}
			if n1.MAT.Equivalent(n2.MAT) {
				target = n1.Name()
				break
			}
		}
		if target == "" {
			if err := out.AddNode(n2.MAT, n2.Origin...); err != nil {
				return nil, err
			}
			renamed[n2.Name()] = n2.Name()
			continue
		}
		renamed[n2.Name()] = target
		node, _ := out.Node(target)
		node.Origin = appendUnique(node.Origin, n2.Origin...)
	}

	// Union in t2's edges under the renaming.
	for _, e := range t2.Edges() {
		from, to := renamed[e.From], renamed[e.To]
		if from == to {
			// Both endpoints unified into the same node; the
			// dependency is internal now.
			continue
		}
		if err := out.AddEdge(from, to, e.Type, e.MetadataBytes); err != nil {
			return nil, err
		}
	}

	if out.IsDAG() {
		return out, nil
	}

	// Unification created a cycle (the two programs order the shared
	// MATs incompatibly). Fall back to a plain union with no
	// unification, which is always acyclic for acyclic inputs.
	return plainUnion(t1, t2)
}

// plainUnion unions two TDGs without unifying equivalent nodes. Name
// collisions are still required to be genuine duplicates.
func plainUnion(t1, t2 *tdg.Graph) (*tdg.Graph, error) {
	out := t1.Clone()
	for _, n2 := range t2.Nodes() {
		if n1, ok := out.Node(n2.Name()); ok {
			if !n1.MAT.Equivalent(n2.MAT) {
				return nil, fmt.Errorf("merge: node %q has conflicting definitions", n2.Name())
			}
			n1.Origin = appendUnique(n1.Origin, n2.Origin...)
			continue
		}
		if err := out.AddNode(n2.MAT, n2.Origin...); err != nil {
			return nil, err
		}
	}
	for _, e := range t2.Edges() {
		if err := out.AddEdge(e.From, e.To, e.Type, e.MetadataBytes); err != nil {
			return nil, err
		}
	}
	if !out.IsDAG() {
		return nil, fmt.Errorf("merge: union of TDGs is cyclic")
	}
	return out, nil
}

func appendUnique(dst []string, src ...string) []string {
	seen := make(map[string]bool, len(dst))
	for _, s := range dst {
		seen[s] = true
	}
	for _, s := range src {
		if !seen[s] {
			seen[s] = true
			dst = append(dst, s)
		}
	}
	return dst
}

// mergeEntry locates one accumulated node in the insertion order Two's
// linear scan would visit, so the indexed merger can reproduce its
// "first matching node wins" tie-break exactly.
type mergeEntry struct {
	order int
	name  string
	mat   *program.MAT
}

// merger is the incremental accumulator behind Graphs.
type merger struct {
	out *tdg.Graph
	// buckets groups accumulated nodes by equivKey; every pair of
	// Equivalent MATs shares a key (the key hashes only canonical forms
	// of the fields Equivalent compares), so an equivalence scan only
	// touches one bucket. Bucket entries stay in insertion order.
	buckets map[uint64][]mergeEntry
	byName  map[string]mergeEntry
	n       int // next insertion order
}

func newMerger(first *tdg.Graph) *merger {
	m := &merger{
		out:     first.Clone(),
		buckets: make(map[uint64][]mergeEntry),
		byName:  make(map[string]mergeEntry),
	}
	for _, node := range m.out.Nodes() {
		m.index(node.Name(), node.MAT)
	}
	return m
}

// index registers a node at the next insertion order and returns its
// bucket key (recorded by callers that may need to roll back).
func (m *merger) index(name string, mat *program.MAT) uint64 {
	k := equivKey(mat)
	e := mergeEntry{order: m.n, name: name, mat: mat}
	m.n++
	m.buckets[k] = append(m.buckets[k], e)
	m.byName[name] = e
	return k
}

// originAppend stages an Origin merge onto an accumulated node.
type originAppend struct {
	target  string
	origins []string
}

// rollbackStaged removes index entries staged during one add() pass.
// Staged entries are the newest in their buckets, so popping tails in
// reverse order restores the pre-pass index exactly.
func (m *merger) rollbackStaged(stagedKeys []uint64) {
	for i := len(stagedKeys) - 1; i >= 0; i-- {
		b := m.buckets[stagedKeys[i]]
		e := b[len(b)-1]
		m.buckets[stagedKeys[i]] = b[:len(b)-1]
		delete(m.byName, e.name)
		m.n--
	}
}

// add folds t2 into the accumulator with Two's semantics: unify each
// t2 node with the first accumulated node (insertion order) that has
// the same name or an equivalent MAT; fall back to a plain union when
// unification would create a cycle. Nothing mutates until the checks
// pass, so the fallback needs no graph rollback.
func (m *merger) add(t2 *tdg.Graph) error {
	renamed := make(map[string]string, t2.NumNodes())
	var appends []originAppend
	var newNodes []*tdg.Node
	var stagedKeys []uint64

	for _, n2 := range t2.Nodes() {
		k := equivKey(n2.MAT)
		nameOrder, equivOrder := math.MaxInt, math.MaxInt
		var nameEntry, equivEntry mergeEntry
		if e, ok := m.byName[n2.Name()]; ok {
			nameEntry, nameOrder = e, e.order
		}
		for _, e := range m.buckets[k] {
			if e.mat.Equivalent(n2.MAT) {
				equivEntry, equivOrder = e, e.order
				break
			}
		}
		switch {
		case nameOrder == math.MaxInt && equivOrder == math.MaxInt:
			renamed[n2.Name()] = n2.Name()
			newNodes = append(newNodes, n2)
			stagedKeys = append(stagedKeys, m.index(n2.Name(), n2.MAT))
		case nameOrder <= equivOrder:
			// The scan hits the same-name node first: it must be the
			// same MAT definition or the inputs are inconsistent. (An
			// equivalent same-name node is always its own equivalence
			// hit, so nameOrder < equivOrder implies non-equivalence.)
			if !nameEntry.mat.Equivalent(n2.MAT) {
				m.rollbackStaged(stagedKeys)
				return fmt.Errorf("merge: node %q has conflicting definitions", n2.Name())
			}
			renamed[n2.Name()] = nameEntry.name
			appends = append(appends, originAppend{nameEntry.name, n2.Origin})
		default:
			renamed[n2.Name()] = equivEntry.name
			appends = append(appends, originAppend{equivEntry.name, n2.Origin})
		}
	}

	edges := t2.Edges()
	if m.wouldCycle(edges, renamed) {
		// Unification created a cycle (the two programs order the
		// shared MATs incompatibly): redo this input as a plain union
		// with no unification, exactly like Two's plainUnion fallback.
		m.rollbackStaged(stagedKeys)
		return m.addPlain(t2)
	}
	return m.commit(newNodes, appends, edges, renamed)
}

// addPlain unions t2 without unifying equivalent nodes (same-name
// collisions must still be genuine duplicates) — the cycle fallback.
func (m *merger) addPlain(t2 *tdg.Graph) error {
	identity := make(map[string]string, t2.NumNodes())
	var appends []originAppend
	var newNodes []*tdg.Node
	var stagedKeys []uint64

	for _, n2 := range t2.Nodes() {
		identity[n2.Name()] = n2.Name()
		if e, ok := m.byName[n2.Name()]; ok {
			if !e.mat.Equivalent(n2.MAT) {
				m.rollbackStaged(stagedKeys)
				return fmt.Errorf("merge: node %q has conflicting definitions", n2.Name())
			}
			appends = append(appends, originAppend{e.name, n2.Origin})
			continue
		}
		newNodes = append(newNodes, n2)
		stagedKeys = append(stagedKeys, m.index(n2.Name(), n2.MAT))
	}
	edges := t2.Edges()
	if m.wouldCycle(edges, identity) {
		m.rollbackStaged(stagedKeys)
		return fmt.Errorf("merge: union of TDGs is cyclic")
	}
	return m.commit(newNodes, appends, edges, identity)
}

// commit applies one staged fold: nodes first (so origin merges and
// edges can target them), then origins, then edges.
func (m *merger) commit(newNodes []*tdg.Node, appends []originAppend, edges []*tdg.Edge, renamed map[string]string) error {
	for _, n2 := range newNodes {
		if err := m.out.AddNode(n2.MAT, n2.Origin...); err != nil {
			return err
		}
	}
	for _, a := range appends {
		node, _ := m.out.Node(a.target)
		node.Origin = appendUnique(node.Origin, a.origins...)
	}
	for _, e := range edges {
		from, to := renamed[e.From], renamed[e.To]
		if from == to {
			// Both endpoints unified into the same node; the dependency
			// is internal now.
			continue
		}
		if err := m.out.AddEdge(from, to, e.Type, e.MetadataBytes); err != nil {
			return err
		}
	}
	return nil
}

// wouldCycle reports whether adding the renamed edges to the (acyclic)
// accumulator would create a cycle. Only genuinely new adjacencies can
// close a cycle, so instead of re-sorting the whole graph it walks
// from each new edge's head looking for its tail, over accumulated
// edges plus the new edges accepted so far. On program workloads the
// walk stays inside one program's descendants — a handful of nodes —
// where a full topological sort per input made the fold quadratic.
func (m *merger) wouldCycle(edges []*tdg.Edge, renamed map[string]string) bool {
	var overlay map[string][]string
	var stack []string
	seen := make(map[string]bool)
	for _, e := range edges {
		from, to := renamed[e.From], renamed[e.To]
		if from == to {
			continue
		}
		if _, ok := m.out.Edge(from, to); ok {
			continue
		}
		// DFS from `to` searching for `from`.
		for k := range seen {
			delete(seen, k)
		}
		stack = append(stack[:0], to)
		seen[to] = true
		found := false
		for len(stack) > 0 && !found {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == from {
				found = true
				break
			}
			for v := range m.out.OutEdgeList(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
			for _, v := range overlay[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		if found {
			return true
		}
		if overlay == nil {
			overlay = make(map[string][]string)
		}
		overlay[from] = append(overlay[from], to)
	}
	return false
}

// equivKey hashes the canonical forms of exactly the MAT fields
// Equivalent compares, so Equivalent MATs always share a key; hash
// collisions merely enlarge a bucket and are resolved by the real
// Equivalent check. Tie-prone fields (match keys sorted only by
// (field, type), actions sorted only by name) contribute just their
// sort keys, keeping the invariant under comparator ties.
func equivKey(m *program.MAT) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wStr := func(s string) {
		wInt(uint64(len(s)))
		io.WriteString(h, s)
	}
	wInt(uint64(m.Capacity))
	wStr(m.DefaultAction)
	wInt(math.Float64bits(m.FixedRequirement))

	keys := make([]string, 0, len(m.Keys))
	for _, k := range m.Keys {
		keys = append(keys, fmt.Sprintf("%s\x00%d", k.Field.Name, k.Type))
	}
	sort.Strings(keys)
	wInt(uint64(len(keys)))
	for _, k := range keys {
		wStr(k)
	}

	actions := make([]string, 0, len(m.Actions))
	ops := 0
	for _, a := range m.Actions {
		actions = append(actions, a.Name)
		ops += len(a.Ops)
	}
	sort.Strings(actions)
	wInt(uint64(len(actions)))
	for _, a := range actions {
		wStr(a)
	}
	wInt(uint64(ops))

	wInt(uint64(len(m.Rules)))
	for _, r := range m.Rules {
		wInt(uint64(int64(r.Priority)))
		wStr(r.Action)
		wInt(uint64(len(r.Matches)))
		wInt(uint64(len(r.Params)))
	}
	return h.Sum64()
}

// Savings reports how many MAT instances merging eliminated: the sum of
// node counts of the inputs minus the node count of the merged graph.
func Savings(inputs []*tdg.Graph, merged *tdg.Graph) int {
	total := 0
	for _, g := range inputs {
		total += g.NumNodes()
	}
	return total - merged.NumNodes()
}
