// Package merge implements SPEED-style TDG merging (paper §IV, Alg. 1
// lines 4–8). Different programs exhibit redundancy — e.g. several
// sketches all compute hash indexes — so merging their TDGs and
// unifying equivalent MATs saves switch resources.
//
// The merger follows the three steps the paper quotes from SPEED [6]:
//  1. identify redundant MATs (identical properties) across the inputs,
//  2. initialize the merged TDG with the union of nodes and edges,
//  3. remove as many redundant MATs as possible while preserving edges.
//
// A unification is skipped when it would create a cycle: the merged TDG
// must stay a DAG for deployment to be meaningful.
package merge

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/tdg"
)

// Graphs merges the given TDGs into one, pairwise, exactly like
// Algorithm 1: repeatedly extract two TDGs, merge them, and put the
// result back until a single TDG remains. Input graphs are not
// modified.
func Graphs(graphs []*tdg.Graph) (*tdg.Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("merge: no TDGs to merge")
	}
	work := make([]*tdg.Graph, len(graphs))
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("merge: nil TDG at index %d", i)
		}
		work[i] = g.Clone()
	}
	for len(work) > 1 {
		t1, t2 := work[0], work[1]
		t3, err := Two(t1, t2)
		if err != nil {
			return nil, err
		}
		work = append([]*tdg.Graph{t3}, work[2:]...)
	}
	return work[0], nil
}

// Two merges two TDGs. Nodes of t2 that are equivalent to a node of t1
// are unified into the t1 node; everything else is unioned. Inputs are
// not modified.
func Two(t1, t2 *tdg.Graph) (*tdg.Graph, error) {
	out := t1.Clone()

	// Union in t2's nodes, remembering which get unified.
	renamed := make(map[string]string) // t2 name -> merged name
	for _, n2 := range t2.Nodes() {
		target := ""
		for _, n1 := range out.Nodes() {
			if n1.Name() == n2.Name() {
				// Same name across graphs: must be the same MAT
				// definition or the inputs are inconsistent.
				if !n1.MAT.Equivalent(n2.MAT) {
					return nil, fmt.Errorf("merge: node %q has conflicting definitions", n2.Name())
				}
				target = n1.Name()
				break
			}
			if n1.MAT.Equivalent(n2.MAT) {
				target = n1.Name()
				break
			}
		}
		if target == "" {
			if err := out.AddNode(n2.MAT, n2.Origin...); err != nil {
				return nil, err
			}
			renamed[n2.Name()] = n2.Name()
			continue
		}
		renamed[n2.Name()] = target
		node, _ := out.Node(target)
		node.Origin = appendUnique(node.Origin, n2.Origin...)
	}

	// Union in t2's edges under the renaming.
	for _, e := range t2.Edges() {
		from, to := renamed[e.From], renamed[e.To]
		if from == to {
			// Both endpoints unified into the same node; the
			// dependency is internal now.
			continue
		}
		if err := out.AddEdge(from, to, e.Type, e.MetadataBytes); err != nil {
			return nil, err
		}
	}

	if out.IsDAG() {
		return out, nil
	}

	// Unification created a cycle (the two programs order the shared
	// MATs incompatibly). Fall back to a plain union with no
	// unification, which is always acyclic for acyclic inputs.
	return plainUnion(t1, t2)
}

// plainUnion unions two TDGs without unifying equivalent nodes. Name
// collisions are still required to be genuine duplicates.
func plainUnion(t1, t2 *tdg.Graph) (*tdg.Graph, error) {
	out := t1.Clone()
	for _, n2 := range t2.Nodes() {
		if n1, ok := out.Node(n2.Name()); ok {
			if !n1.MAT.Equivalent(n2.MAT) {
				return nil, fmt.Errorf("merge: node %q has conflicting definitions", n2.Name())
			}
			n1.Origin = appendUnique(n1.Origin, n2.Origin...)
			continue
		}
		if err := out.AddNode(n2.MAT, n2.Origin...); err != nil {
			return nil, err
		}
	}
	for _, e := range t2.Edges() {
		if err := out.AddEdge(e.From, e.To, e.Type, e.MetadataBytes); err != nil {
			return nil, err
		}
	}
	if !out.IsDAG() {
		return nil, fmt.Errorf("merge: union of TDGs is cyclic")
	}
	return out, nil
}

func appendUnique(dst []string, src ...string) []string {
	seen := make(map[string]bool, len(dst))
	for _, s := range dst {
		seen[s] = true
	}
	for _, s := range src {
		if !seen[s] {
			seen[s] = true
			dst = append(dst, s)
		}
	}
	return dst
}

// Savings reports how many MAT instances merging eliminated: the sum of
// node counts of the inputs minus the node count of the merged graph.
func Savings(inputs []*tdg.Graph, merged *tdg.Graph) int {
	total := 0
	for _, g := range inputs {
		total += g.NumNodes()
	}
	return total - merged.NumNodes()
}
