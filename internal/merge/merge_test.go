package merge

import (
	"fmt"
	"testing"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// sketchProgram builds a program shaped like a sketch: a shared hash
// stage followed by a per-program counting stage. All sketchPrograms
// share an equivalent hash MAT, which the merger should unify.
func sketchProgram(t *testing.T, name string) *tdg.Graph {
	t.Helper()
	idx := fields.Metadata("meta.idx", 32)
	cnt := fields.Metadata("meta.cnt_"+name, 32)
	src := fields.Header("ipv4.srcAddr", 32)

	p := program.NewBuilder(name).
		Table("hash", 1).
		ActionDef("h", program.HashOp(idx, src)).
		Table("count", 1024).
		Key(idx, program.MatchExact).
		ActionDef("c", program.CountOp(cnt, idx)).
		MustBuild()
	g, err := tdg.FromProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTwoUnifiesEquivalentMATs(t *testing.T) {
	g1 := sketchProgram(t, "cm")
	g2 := sketchProgram(t, "bloom")
	m, err := Two(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 input MATs; the two hash MATs are equivalent -> 3 remain.
	if m.NumNodes() != 3 {
		t.Errorf("merged NumNodes = %d, want 3\nnodes: %v", m.NumNodes(), m.NodeNames())
	}
	if !m.IsDAG() {
		t.Error("merged graph not a DAG")
	}
	// The unified hash node must feed both count tables.
	hash, ok := m.Node("cm/hash")
	if !ok {
		t.Fatal("unified hash node missing")
	}
	if len(m.OutEdges(hash.Name())) != 2 {
		t.Errorf("unified hash has %d out edges, want 2", len(m.OutEdges(hash.Name())))
	}
	// Origin must record both source programs.
	if len(hash.Origin) != 2 {
		t.Errorf("unified node Origin = %v, want both programs", hash.Origin)
	}
}

func TestTwoKeepsDistinctMATs(t *testing.T) {
	// Programs with different capacities are not redundant.
	mk := func(name string, capacity int) *tdg.Graph {
		p := program.NewBuilder(name).
			Table("acl", capacity).
			Key(fields.Header("ipv4.srcAddr", 32), program.MatchTernary).
			ActionDef("drop", program.SetOp(fields.Metadata("meta.drop", 8), 1)).
			MustBuild()
		g, err := tdg.FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	m, err := Two(mk("p1", 100), mk("p2", 200))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2 (no unification)", m.NumNodes())
	}
}

func TestGraphsMergesManyAndCountsSavings(t *testing.T) {
	var inputs []*tdg.Graph
	for _, n := range []string{"a", "b", "c", "d"} {
		inputs = append(inputs, sketchProgram(t, n))
	}
	m, err := Graphs(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// 8 MATs in, 4 hash MATs unify into 1 -> 5 out.
	if m.NumNodes() != 5 {
		t.Errorf("NumNodes = %d, want 5", m.NumNodes())
	}
	if got := Savings(inputs, m); got != 3 {
		t.Errorf("Savings = %d, want 3", got)
	}
	if !m.IsDAG() {
		t.Error("merged graph not a DAG")
	}
}

func TestGraphsErrors(t *testing.T) {
	if _, err := Graphs(nil); err == nil {
		t.Error("Graphs(nil) succeeded")
	}
	if _, err := Graphs([]*tdg.Graph{nil}); err == nil {
		t.Error("Graphs with nil entry succeeded")
	}
}

func TestGraphsDoesNotMutateInputs(t *testing.T) {
	g1 := sketchProgram(t, "x")
	g2 := sketchProgram(t, "y")
	n1, e1 := g1.NumNodes(), g1.NumEdges()
	if _, err := Graphs([]*tdg.Graph{g1, g2}); err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != n1 || g1.NumEdges() != e1 {
		t.Error("merge mutated input graph")
	}
}

func TestTwoSameNameConflictingDefinition(t *testing.T) {
	mk := func(capacity int) *tdg.Graph {
		p := program.NewBuilder("p").
			Table("t", capacity).
			ActionDef("a", program.SetOp(fields.Metadata("meta.m", 8), 1)).
			MustBuild()
		g, err := tdg.FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	if _, err := Two(mk(10), mk(20)); err == nil {
		t.Error("Two accepted same-name MATs with different definitions")
	}
}

func TestTwoIdenticalGraphsCollapse(t *testing.T) {
	g := sketchProgram(t, "same")
	m, err := Two(g, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != g.NumNodes() || m.NumEdges() != g.NumEdges() {
		t.Errorf("merging a graph with itself changed shape: %d/%d vs %d/%d",
			m.NumNodes(), m.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

// TestGraphsMatchesPairwiseFold pins the indexed incremental merger to
// the reference semantics: folding the inputs one by one through Two
// must produce the same nodes (in the same insertion order), the same
// origins, and the same edges. The input mix exercises unification
// across programs, non-unifiable same-shape tables, and the cyclic
// pair that forces the plain-union fallback mid-fold.
func TestGraphsMatchesPairwiseFold(t *testing.T) {
	mkDistinct := func(name string, capacity int) *tdg.Graph {
		p := program.NewBuilder(name).
			Table("acl", capacity).
			Key(fields.Header("ipv4.srcAddr", 32), program.MatchTernary).
			ActionDef("drop", program.SetOp(fields.Metadata("meta.drop", 8), 1)).
			MustBuild()
		g, err := tdg.FromProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	mkPair := func(prog string, forward bool) *tdg.Graph {
		matA := &program.MAT{
			Name: prog + "/a", Capacity: 4,
			Actions: []program.Action{{Name: "w", Ops: []program.Op{
				program.SetOp(fields.Metadata("meta.a", 8), 1)}}},
		}
		matX := &program.MAT{
			Name: prog + "/x", Capacity: 4,
			Actions: []program.Action{{Name: "w", Ops: []program.Op{
				program.SetOp(fields.Metadata("meta.x", 8), 1)}}},
		}
		g := tdg.New()
		for _, m := range []*program.MAT{matA, matX} {
			if err := g.AddNode(m, prog); err != nil {
				t.Fatal(err)
			}
		}
		from, to := matA.Name, matX.Name
		if !forward {
			from, to = to, from
		}
		if err := g.AddEdge(from, to, tdg.DepSuccessor, 1); err != nil {
			t.Fatal(err)
		}
		return g
	}
	build := func() []*tdg.Graph {
		var in []*tdg.Graph
		for _, n := range []string{"cm", "bloom", "hll", "dedup"} {
			in = append(in, sketchProgram(t, n))
		}
		in = append(in, mkDistinct("acl1", 100), mkDistinct("acl2", 200))
		// Opposite-order equivalent pair: unifying it against the pair
		// already folded in would close a cycle, forcing the fallback.
		in = append(in, mkPair("cyc1", true), mkPair("cyc2", false))
		return in
	}

	inputs := build()
	ref := inputs[0].Clone()
	for _, g := range inputs[1:] {
		var err error
		ref, err = Two(ref, g)
		if err != nil {
			t.Fatal(err)
		}
	}

	got, err := Graphs(build())
	if err != nil {
		t.Fatal(err)
	}

	refNames, gotNames := ref.NodeNames(), got.NodeNames()
	if len(refNames) != len(gotNames) {
		t.Fatalf("node count: fold %d, Graphs %d\nfold: %v\nGraphs: %v",
			len(refNames), len(gotNames), refNames, gotNames)
	}
	for i := range refNames {
		if refNames[i] != gotNames[i] {
			t.Fatalf("node order diverges at %d: fold %q, Graphs %q", i, refNames[i], gotNames[i])
		}
		rn, _ := ref.Node(refNames[i])
		gn, _ := got.Node(gotNames[i])
		if len(rn.Origin) != len(gn.Origin) {
			t.Fatalf("node %q origins: fold %v, Graphs %v", refNames[i], rn.Origin, gn.Origin)
		}
		for j := range rn.Origin {
			if rn.Origin[j] != gn.Origin[j] {
				t.Fatalf("node %q origins: fold %v, Graphs %v", refNames[i], rn.Origin, gn.Origin)
			}
		}
	}

	edgeSet := func(g *tdg.Graph) map[string]string {
		out := make(map[string]string)
		for _, e := range g.Edges() {
			out[e.From+"->"+e.To] = fmt.Sprintf("%v/%d", e.Type, e.MetadataBytes)
		}
		return out
	}
	re, ge := edgeSet(ref), edgeSet(got)
	if len(re) != len(ge) {
		t.Fatalf("edge count: fold %d, Graphs %d", len(re), len(ge))
	}
	for k, v := range re {
		if ge[k] != v {
			t.Errorf("edge %s: fold %s, Graphs %s", k, v, ge[k])
		}
	}
}

func TestCycleFallbackToPlainUnion(t *testing.T) {
	// Construct two graphs whose unification would create a cycle:
	// g1: A -> X, g2: X' -> A' where X' is equivalent to X and A'
	// equivalent to A. Unifying both pairs yields A <-> X.
	matA := func() *program.MAT {
		return &program.MAT{
			Name: "pa/a", Capacity: 4,
			Actions: []program.Action{{Name: "w", Ops: []program.Op{
				program.SetOp(fields.Metadata("meta.a", 8), 1)}}},
		}
	}
	matX := func() *program.MAT {
		return &program.MAT{
			Name: "pa/x", Capacity: 4,
			Actions: []program.Action{{Name: "w", Ops: []program.Op{
				program.SetOp(fields.Metadata("meta.x", 8), 1)}}},
		}
	}
	g1 := tdg.New()
	if err := g1.AddNode(matA(), "pa"); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddNode(matX(), "pa"); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddEdge("pa/a", "pa/x", tdg.DepSuccessor, 1); err != nil {
		t.Fatal(err)
	}

	// Same MATs under different names, opposite order.
	a2, x2 := matA(), matX()
	a2.Name, x2.Name = "pb/a", "pb/x"
	g2 := tdg.New()
	if err := g2.AddNode(x2, "pb"); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode(a2, "pb"); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge("pb/x", "pb/a", tdg.DepSuccessor, 1); err != nil {
		t.Fatal(err)
	}

	m, err := Two(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsDAG() {
		t.Fatal("merge returned cyclic graph")
	}
	// Fallback keeps all four nodes.
	if m.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4 (plain union fallback)", m.NumNodes())
	}
}
