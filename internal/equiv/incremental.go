// Incremental equivalence re-checking after a replan. A drain-driven
// replan usually moves a handful of MATs; re-proving the whole merged
// pipeline repeats work for every program whose placement is
// untouched. The Rechecker partitions the reference graph into
// field-closed components — MATs coupled by a shared field, a TDG
// edge, or a common origin program end up together — and after a
// replan re-proves only the components containing a moved MAT
// (ReplanReport.Moved), carrying the prior verdict for the rest.
//
// Soundness rests on three facts. First, components are closed under
// field access and edges: every reader, writer, and edge neighbor of a
// component field is inside the component, so a component's per-field
// write histories are fully determined by its own MATs' placements.
// Second, the dependency analyzer edge-connects conflicting accesses,
// so any two MATs touching the same field carry a direct TDG edge;
// every realizable switch order (global or component-local) respects
// that edge identically, which makes the component sub-walk observe
// exactly the per-field histories the global walk would project onto
// the component. Third, the conditions a component cannot decide
// locally — a cyclic contracted switch order, a duplicated or unknown
// MAT, a drifted definition — are screened globally by the cheap
// structural pass before any sub-walk verdict is trusted; a structural
// failure falls back to the full diagnostic check. The incremental
// path additionally verifies that every MAT outside the dirty
// components sits exactly where the last proven plan put it, so an
// under-reported move degrades to a full check rather than a stale
// verdict.
package equiv

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/tdg"
)

// DefaultRecheckThreshold is the dirty-MAT fraction above which
// Recheck abandons the per-component path and runs the full walk: once
// most of the pipeline moved, component bookkeeping costs more than it
// saves.
const DefaultRecheckThreshold = 0.5

// RecheckStats reports which path one Recheck call took.
type RecheckStats struct {
	// Full marks a full-walk check (first proof, fallback, or
	// over-threshold dirty set); false means only dirty components were
	// re-proven.
	Full bool
	// FallbackReason is empty on the incremental path and on a planned
	// full check; otherwise it names why the incremental path was
	// abandoned.
	FallbackReason string
	// DirtyComponents and DirtyMATs size the re-proven region;
	// TotalMATs is the reference pipeline size for comparison.
	DirtyComponents int
	DirtyMATs       int
	TotalMATs       int
}

// Rechecker proves successive plans over one reference graph,
// re-proving only what a replan moved. Like Checker it is not safe for
// concurrent use.
type Rechecker struct {
	// Threshold overrides DefaultRecheckThreshold when positive.
	Threshold float64

	full *Checker

	// Component partition of the reference MATs (dense index space).
	compOf []int32
	comps  [][]string // MAT names per component, ascending

	// Memoized per-component sub-checkers and their subgraphs.
	subs  []*Checker
	subGs []*tdg.Graph
	dirty []bool // per-component dirty scratch

	// Baseline: the last proven plan's placements (switch and start
	// stage — the two coordinates the equivalence semantics see).
	verified  bool
	baseAopts analyzer.Options
	base      map[string]basePlacement
}

type basePlacement struct {
	sw    network.SwitchID
	start int
}

// NewRechecker builds a rechecker for the reference graph, computing
// the field/edge/program component partition once.
func NewRechecker(ref *tdg.Graph) (*Rechecker, error) {
	full, err := NewChecker(ref)
	if err != nil {
		return nil, err
	}
	r := &Rechecker{full: full}
	r.buildComponents()
	return r, nil
}

// Reference returns the graph this rechecker proves against.
func (r *Rechecker) Reference() *tdg.Graph { return r.full.Reference() }

// Components returns the MAT-name partition the incremental path
// re-proves by (each inner slice ascending) — exposed for telemetry
// and tests.
func (r *Rechecker) Components() [][]string {
	out := make([][]string, len(r.comps))
	for i, c := range r.comps {
		out[i] = append([]string(nil), c...)
	}
	return out
}

// buildComponents unions the reference MATs over shared fields, TDG
// edges, and shared origin programs, then materializes the partition.
func (r *Rechecker) buildComponents() {
	ov := r.full.ov
	n := len(ov.names)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Shared fields: the first toucher of each field anchors it. The
	// raw-read list is included so analyzer-visible reads (the ones
	// carried-field derivation keys on) couple too.
	fieldOwner := make([]int32, len(ov.fieldNames))
	for i := range fieldOwner {
		fieldOwner[i] = -1
	}
	link := func(x int32, starts, fs []int32) {
		for s := starts[x]; s < starts[x+1]; s++ {
			fi := fs[s]
			if fieldOwner[fi] < 0 {
				fieldOwner[fi] = x
			} else {
				union(fieldOwner[fi], x)
			}
		}
	}
	for x := int32(0); x < int32(n); x++ {
		link(x, ov.readStart, ov.readF)
		link(x, ov.writeStart, ov.writeF)
		link(x, ov.rawReadStart, ov.rawReadF)
	}

	// TDG edges: ordering constraints and carried fields stay
	// component-internal.
	for _, e := range ov.g.EdgeList() {
		union(ov.index[e.From], ov.index[e.To])
	}

	// Shared origin programs: a program's verdict is re-proven whole.
	progOwner := map[string]int32{}
	for x, node := range ov.nodes {
		for _, org := range node.Origin {
			if prev, ok := progOwner[org]; ok {
				union(prev, int32(x))
			} else {
				progOwner[org] = int32(x)
			}
		}
	}

	r.compOf = make([]int32, n)
	rootComp := map[int32]int32{}
	for x := int32(0); x < int32(n); x++ { // ascending index = sorted names
		root := find(x)
		ci, ok := rootComp[root]
		if !ok {
			ci = int32(len(r.comps))
			rootComp[root] = ci
			r.comps = append(r.comps, nil)
		}
		r.compOf[x] = ci
		r.comps[ci] = append(r.comps[ci], ov.names[x])
	}
	r.subs = make([]*Checker, len(r.comps))
	r.subGs = make([]*tdg.Graph, len(r.comps))
	r.dirty = make([]bool, len(r.comps))
}

// Check runs the full proof and, on success, records the plan as the
// incremental baseline.
func (r *Rechecker) Check(p *placement.Plan, aopts analyzer.Options) error {
	err := r.full.CheckPlan(p, aopts)
	r.updateBaseline(p, aopts, err)
	return err
}

// RecheckReplan is Recheck keyed off a replan's churn telemetry. A nil
// report means the moved set is unknown, so the full proof runs.
func (r *Rechecker) RecheckReplan(p *placement.Plan, rep *placement.ReplanReport, aopts analyzer.Options) (RecheckStats, error) {
	if rep == nil {
		st := RecheckStats{Full: true, FallbackReason: "no replan report", TotalMATs: len(r.full.ov.names)}
		return st, r.Check(p, aopts)
	}
	return r.Recheck(p, rep.Moved, aopts)
}

// Recheck proves the plan equivalent, re-proving only the components
// containing a moved MAT when a verified baseline exists and the dirty
// fraction stays under the threshold. The verdict is identical to a
// full Check: any condition the component view cannot decide falls
// back to the full proof.
func (r *Rechecker) Recheck(p *placement.Plan, moved []string, aopts analyzer.Options) (RecheckStats, error) {
	st := RecheckStats{TotalMATs: len(r.full.ov.names)}
	fallback := func(reason string) (RecheckStats, error) {
		st.Full = true
		st.FallbackReason = reason
		return st, r.Check(p, aopts)
	}

	if p == nil || p.Graph == nil {
		return fallback("nil plan")
	}
	if !r.verified {
		return fallback("no verified baseline")
	}
	if aopts != r.baseAopts {
		return fallback("analyzer options changed")
	}
	if p.Graph != r.full.ov.g {
		// Carried-field derivation walks the plan's own edge list; a
		// different graph can couple components the reference never did.
		return fallback("plan graph is not the reference graph")
	}

	// Mark dirty components off the moved set.
	for i := range r.dirty {
		r.dirty[i] = false
	}
	for _, name := range moved {
		x, ok := r.full.ov.index[name]
		if !ok {
			return fallback(fmt.Sprintf("moved MAT %q unknown to reference", name))
		}
		r.dirty[r.compOf[x]] = true
	}
	for _, ci := range r.compOf {
		if r.dirty[ci] {
			st.DirtyMATs++
		}
	}
	for _, d := range r.dirty {
		if d {
			st.DirtyComponents++
		}
	}
	thr := r.Threshold
	if thr <= 0 {
		thr = DefaultRecheckThreshold
	}
	if float64(st.DirtyMATs) > thr*float64(st.TotalMATs) {
		return fallback(fmt.Sprintf("dirty fraction %d/%d over threshold", st.DirtyMATs, st.TotalMATs))
	}

	// Global structural screen: lower the whole plan (cheap, no walk)
	// and reject or fall back on anything a component cannot see.
	if err := r.full.lowerPlan(p, aopts); err != nil {
		r.forget()
		return st, err
	}
	if !r.full.structuralClean() {
		st.Full = true
		st.FallbackReason = "structural screen failed"
		err := findingsErr(r.full.diagnose(false))
		r.updateBaseline(p, aopts, err)
		return st, err
	}

	// Clean components must sit exactly where the proven baseline put
	// them; otherwise the moved list under-reports and the verdict
	// cannot be carried.
	for x, ci := range r.compOf {
		if r.dirty[ci] {
			continue
		}
		name := r.full.ov.names[x]
		sp, ok := p.Assignments[name]
		if !ok {
			return fallback(fmt.Sprintf("clean MAT %q unassigned", name))
		}
		if b := r.base[name]; b.sw != sp.Switch || b.start != sp.Start {
			return fallback(fmt.Sprintf("unreported move of MAT %q", name))
		}
	}

	// Re-prove each dirty component against its own sub-reference.
	for ci := range r.comps {
		if !r.dirty[ci] {
			continue
		}
		sub, err := r.subChecker(ci)
		if err != nil {
			r.forget()
			return st, err
		}
		subPlan := &placement.Plan{
			Graph:       r.subGs[ci],
			Topo:        p.Topo,
			Assignments: make(map[string]placement.StagePlacement, len(r.comps[ci])),
		}
		for _, name := range r.comps[ci] {
			subPlan.Assignments[name] = p.Assignments[name]
		}
		if err := sub.CheckPlan(subPlan, aopts); err != nil {
			r.forget()
			return st, err
		}
	}
	r.updateBaseline(p, aopts, nil)
	return st, nil
}

// subChecker lazily builds the memoized checker for one component.
func (r *Rechecker) subChecker(ci int) (*Checker, error) {
	if r.subs[ci] != nil {
		return r.subs[ci], nil
	}
	sub, err := r.full.ov.g.Subgraph(r.comps[ci])
	if err != nil {
		return nil, fmt.Errorf("equiv: component subgraph: %w", err)
	}
	c, err := NewChecker(sub)
	if err != nil {
		return nil, fmt.Errorf("equiv: component checker: %w", err)
	}
	r.subGs[ci] = sub
	r.subs[ci] = c
	return c, nil
}

// updateBaseline records a proven plan (or forgets on failure).
func (r *Rechecker) updateBaseline(p *placement.Plan, aopts analyzer.Options, err error) {
	if err != nil || p == nil {
		r.forget()
		return
	}
	if r.base == nil {
		r.base = make(map[string]basePlacement, len(p.Assignments))
	}
	for k := range r.base {
		delete(r.base, k)
	}
	for name, sp := range p.Assignments {
		r.base[name] = basePlacement{sw: sp.Switch, start: sp.Start}
	}
	r.baseAopts = aopts
	r.verified = true
}

// forget drops the baseline so the next Recheck runs the full proof.
func (r *Rechecker) forget() { r.verified = false }
