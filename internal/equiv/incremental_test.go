package equiv_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// disjointPrograms builds k two-table carry pipelines over pairwise
// disjoint field universes, so the merged TDG decomposes into k
// independent components and the incremental path has something to
// skip.
func disjointPrograms(t testing.TB, k int) []*program.Program {
	t.Helper()
	progs := make([]*program.Program, k)
	for i := 0; i < k; i++ {
		src := fields.Header(fmt.Sprintf("hdr%d.src", i), 32)
		x := fields.Metadata(fmt.Sprintf("meta.x%d", i), 32)
		y := fields.Metadata(fmt.Sprintf("meta.y%d", i), 32)
		progs[i] = program.NewBuilder(fmt.Sprintf("p%d", i)).
			Table("gen", 1).
			ActionDef("g", program.AddOp(x, src, 7)).
			Default("g").
			Table("apply", 64).
			Key(x, program.MatchExact).
			ActionDef("u", program.CopyOp(y, x)).
			ActionDef("r", program.SetOp(y, 99)).
			Default("u").
			Rule(program.Rule{
				Matches: map[string]program.Pattern{x.Name: {Value: 7}},
				Action:  "r",
			}).
			MustBuild()
	}
	return progs
}

// clonePlan copies a plan deeply enough to mutate assignments.
func clonePlan(p *placement.Plan) *placement.Plan {
	c := *p
	c.Assignments = make(map[string]placement.StagePlacement, len(p.Assignments))
	for name, sp := range p.Assignments {
		c.Assignments[name] = sp
	}
	c.InvalidateCache()
	return &c
}

// sabotageOrder co-locates a program's consumer before its producer:
// "apply" sorts before "gen", so sharing the producer's stage makes it
// execute first — the plan-level HE003 break.
func sabotageOrder(p *placement.Plan, prog string) *placement.Plan {
	bad := clonePlan(p)
	gen := bad.Assignments[prog+"/gen"]
	bad.Assignments[prog+"/apply"] = placement.StagePlacement{
		Switch: gen.Switch, Start: gen.Start, End: gen.Start, PerStage: []float64{0.1},
	}
	return bad
}

// TestRecheckerComponents checks the partition: disjoint programs land
// in distinct components, each holding its own two MATs.
func TestRecheckerComponents(t *testing.T) {
	g := mustAnalyze(t, disjointPrograms(t, 4), analyzer.Options{})
	r, err := equiv.NewRechecker(g)
	if err != nil {
		t.Fatal(err)
	}
	comps := r.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	for _, c := range comps {
		if len(c) != 2 {
			t.Fatalf("component %v should hold exactly gen and apply", c)
		}
	}
	// The coupled carry program collapses to one component.
	g2 := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	r2, err := equiv.NewRechecker(g2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r2.Components()); got != 1 {
		t.Fatalf("coupled program split into %d components, want 1", got)
	}
}

// TestRecheckerMatchesFullOnReplans is the regression gate: over a
// randomized drain/replan sequence, the incremental verdict must be
// identical to an independent full check's, and the incremental path
// must actually engage (re-proving strictly fewer MATs than the
// pipeline holds).
func TestRecheckerMatchesFullOnReplans(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	g := mustAnalyze(t, disjointPrograms(t, 6), analyzer.Options{})
	// One ~0.07-cost MAT pair per switch: tight stage capacity keeps the
	// programs spread out, so a drain moves one or two components, not
	// the whole pipeline.
	tp := lineTopo(t, 10, 1, 0.16)
	aopts := analyzer.Options{}

	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := equiv.NewRechecker(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(plan, aopts); err != nil {
		t.Fatalf("baseline proof failed: %v", err)
	}

	incremental := 0
	for round := 0; round < 4; round++ {
		used := plan.UsedSwitches()
		drain := used[rng.Intn(len(used))]
		next, rep, err := placement.ReplanWithOptions(plan, placement.Greedy{}, placement.ReplanOptions{}, drain)
		if err != nil {
			t.Fatalf("round %d: replan: %v", round, err)
		}

		st, incErr := r.RecheckReplan(next, rep, aopts)
		fullErr := equiv.CheckPlanAgainst(g, next, aopts)
		if (incErr == nil) != (fullErr == nil) {
			t.Fatalf("round %d: verdicts diverge: incremental %v, full %v", round, incErr, fullErr)
		}
		if incErr != nil {
			t.Fatalf("round %d: replanned plan rejected: %v", round, incErr)
		}
		t.Logf("round %d: moved=%d stats=%+v", round, len(rep.Moved), st)
		if !st.Full {
			incremental++
			if st.DirtyMATs == 0 && len(rep.Moved) > 0 {
				t.Fatalf("round %d: moved MATs %v but nothing dirty", round, rep.Moved)
			}
			if st.DirtyMATs >= st.TotalMATs {
				t.Fatalf("round %d: incremental path re-proved everything (%d/%d)",
					round, st.DirtyMATs, st.TotalMATs)
			}
		}
		plan = next
	}
	if incremental == 0 {
		t.Fatal("incremental path never engaged across the replan sequence")
	}
}

// TestRecheckerRejectsLikeFull seeds an equivalence break inside a
// moved component and requires the incremental and full verdicts to
// agree on rejection.
func TestRecheckerRejectsLikeFull(t *testing.T) {
	g := mustAnalyze(t, disjointPrograms(t, 4), analyzer.Options{})
	tp := lineTopo(t, 6, 2, 1.2)
	aopts := analyzer.Options{}

	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := equiv.NewRechecker(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(plan, aopts); err != nil {
		t.Fatal(err)
	}

	bad := sabotageOrder(plan, "p0")
	moved, err := placement.MovedNames(plan, bad)
	if err != nil {
		t.Fatal(err)
	}
	st, incErr := r.Recheck(bad, moved, aopts)
	fullErr := equiv.CheckPlanAgainst(g, bad, aopts)
	if fullErr == nil {
		t.Fatal("fixture broken: sabotaged plan passed the full gate")
	}
	if incErr == nil {
		t.Fatalf("incremental path accepted a plan the full check rejects (stats %+v)", st)
	}

	// After a rejection the baseline is forgotten: the next Recheck runs
	// full, then incremental resumes.
	st2, err := r.Recheck(plan, nil, aopts)
	if err != nil {
		t.Fatalf("clean plan rejected after failure: %v", err)
	}
	if !st2.Full {
		t.Fatal("baseline survived a rejected plan")
	}
	st3, err := r.Recheck(plan, nil, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Full {
		t.Fatalf("incremental path did not resume after re-proof: %+v", st3)
	}
}

// TestRecheckerUnreportedMoveFallsBack mutates a component that the
// moved list does not mention: the rechecker must notice the baseline
// mismatch and fall back to the full proof rather than carry a stale
// verdict.
func TestRecheckerUnreportedMoveFallsBack(t *testing.T) {
	g := mustAnalyze(t, disjointPrograms(t, 4), analyzer.Options{})
	tp := lineTopo(t, 6, 2, 1.2)
	aopts := analyzer.Options{}

	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := equiv.NewRechecker(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(plan, aopts); err != nil {
		t.Fatal(err)
	}

	bad := sabotageOrder(plan, "p1")
	st, incErr := r.Recheck(bad, nil, aopts) // nothing reported moved
	if !st.Full {
		t.Fatalf("unreported move did not force the full path: %+v", st)
	}
	fullErr := equiv.CheckPlanAgainst(g, bad, aopts)
	if (incErr == nil) != (fullErr == nil) {
		t.Fatalf("verdicts diverge on unreported move: incremental %v, full %v", incErr, fullErr)
	}
	if incErr == nil {
		t.Fatal("sabotaged plan accepted")
	}
}

// TestRecheckerThresholdFallback forces the dirty fraction over a tiny
// threshold and checks the full path runs with an unchanged verdict.
func TestRecheckerThresholdFallback(t *testing.T) {
	g := mustAnalyze(t, disjointPrograms(t, 3), analyzer.Options{})
	tp := lineTopo(t, 5, 2, 1.2)
	aopts := analyzer.Options{}

	plan, err := (placement.Greedy{}).Solve(g, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := equiv.NewRechecker(g)
	if err != nil {
		t.Fatal(err)
	}
	r.Threshold = 0.01
	if err := r.Check(plan, aopts); err != nil {
		t.Fatal(err)
	}
	used := plan.UsedSwitches()
	next, rep, err := placement.ReplanWithOptions(plan, placement.Greedy{}, placement.ReplanOptions{}, used[0])
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.RecheckReplan(next, rep, aopts)
	if err != nil {
		t.Fatalf("over-threshold recheck rejected a clean plan: %v", err)
	}
	if len(rep.Moved) > 0 && !st.Full {
		t.Fatalf("threshold 0.01 did not force the full path: %+v", st)
	}
}

// TestRecheckerForeignGraphFallsBack hands the rechecker a plan over a
// rebuilt (pointer-distinct) graph: carried-field derivation walks the
// plan's own edges, so the incremental path must decline.
func TestRecheckerForeignGraphFallsBack(t *testing.T) {
	progs := disjointPrograms(t, 3)
	ref := mustAnalyze(t, progs, analyzer.Options{})
	other := mustAnalyze(t, progs, analyzer.Options{})
	tp := lineTopo(t, 5, 2, 1.2)
	aopts := analyzer.Options{}

	plan, err := (placement.Greedy{}).Solve(other, tp, placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := equiv.NewRechecker(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(plan, aopts); err != nil {
		t.Fatal(err)
	}
	st, err := r.Recheck(plan, []string{"p0/gen"}, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatalf("foreign graph did not force the full path: %+v", st)
	}
	if _, err := tdgNode(other, "p0/gen"); err != nil {
		t.Fatal(err)
	}
}

func tdgNode(g *tdg.Graph, name string) (*tdg.Node, error) {
	n, ok := g.Node(name)
	if !ok {
		return nil, fmt.Errorf("missing node %q", name)
	}
	return n, nil
}
