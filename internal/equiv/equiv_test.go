package equiv_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/p4lite"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/placement/shard"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
	"github.com/hermes-net/hermes/internal/workload"
)

var (
	fSrc = fields.Header(fields.IPv4Src, 32)
	fX   = fields.Metadata("meta.x", 32)
	fW   = fields.Metadata("meta.w", 32)
	fM   = fields.Metadata("meta.m", 32)
	fY   = fields.Metadata("meta.y", 32)
	fZ   = fields.Metadata("meta.z", 32)
)

// applyMutation selects a seeded source-level mutation of the carry
// pipeline's "apply" table.
type applyMutation int

const (
	applyClean       applyMutation = iota
	applyDefaultV                  // default action swapped u -> v (HE006)
	applyDefaultNone               // default action removed (HE006)
	applyDropZ                     // Set z=3 dropped from the default action (HE007)
	applyRuleValue8                // installed rule mutated to match x==8 (HE007)
)

// carryProgram is the two-table pipeline every mutation test riffs on:
// "gen" computes meta.x = ipv4.src + 7 (non-idempotent on purpose, so
// duplicated execution diverges), "apply" matches x exactly — rule
// x==7 sets y=99, the default copies y<-x and sets z=3. On the all-zero
// packet the rule hits; on the all-ones packet it misses and the
// default runs, so both the rule path and the default path have a
// deterministic divergence witness among the checker's candidates.
func carryProgram(t testing.TB, mut applyMutation) *program.Program {
	t.Helper()
	b := program.NewBuilder("p").
		Table("gen", 1).
		ActionDef("g", program.AddOp(fX, fSrc, 7)).
		Default("g").
		Table("apply", 1024).
		Key(fX, program.MatchExact)
	uOps := []program.Op{program.CopyOp(fY, fX), program.SetOp(fZ, 3)}
	if mut == applyDropZ {
		uOps = uOps[:1]
	}
	b = b.ActionDef("u", uOps...).
		ActionDef("v", program.SetOp(fY, 1)).
		ActionDef("r", program.SetOp(fY, 99))
	switch mut {
	case applyDefaultV:
		b = b.Default("v")
	case applyDefaultNone:
		// no default: a miss is a no-op
	default:
		b = b.Default("u")
	}
	val := uint64(7)
	if mut == applyRuleValue8 {
		val = 8
	}
	b = b.Rule(program.Rule{
		Matches: map[string]program.Pattern{"meta.x": {Value: val}},
		Action:  "r",
	})
	return b.MustBuild()
}

func mustAnalyze(t testing.TB, progs []*program.Program, opts analyzer.Options) *tdg.Graph {
	t.Helper()
	g, err := analyzer.Analyze(progs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// lineTopo builds n programmable switches with the given stage shape,
// chained by 1 ms links.
func lineTopo(t testing.TB, n, stages int, cap float64) *network.Topology {
	t.Helper()
	tp := network.NewTopology("equiv-test")
	for i := 0; i < n; i++ {
		tp.AddSwitch(network.Switch{
			Programmable: true, Stages: stages, StageCapacity: cap,
			TransitLatency: time.Microsecond,
		})
	}
	for i := 0; i+1 < n; i++ {
		if err := tp.AddLink(network.SwitchID(i), network.SwitchID(i+1), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	return tp
}

// splitDeployment solves and compiles the carry pipeline onto two
// 1-stage switches whose capacity forces gen and apply apart.
func splitDeployment(t testing.TB, g *tdg.Graph) *deploy.Deployment {
	t.Helper()
	plan, err := (placement.Greedy{}).Solve(g, lineTopo(t, 2, 1, 0.5), placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	genSw, _ := plan.SwitchOf("p/gen")
	applySw, _ := plan.SwitchOf("p/apply")
	if genSw == applySw {
		t.Fatalf("fixture expects a split placement, both MATs on switch %d", int(genSw))
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func hasRule(fs lint.Findings, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

// expectRejected asserts the deployment is rejected with the given HE
// rule and a replay-confirmed counterexample.
func expectRejected(t *testing.T, ref *tdg.Graph, dep *deploy.Deployment, rule string) *equiv.Report {
	t.Helper()
	if err := equiv.CheckDeployment(ref, dep); err == nil {
		t.Fatalf("mutated deployment passed the gate, want %s", rule)
	}
	rep, err := equiv.Diagnose(ref, dep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("Diagnose reports OK, want %s", rule)
	}
	if !hasRule(rep.Findings, rule) {
		t.Fatalf("findings %v lack expected rule %s", rep.Findings, rule)
	}
	if rep.Counterexample == nil {
		t.Fatalf("%s rejection has no replay-confirmed counterexample", rule)
	}
	if !equiv.Diverges(ref, dep, rep.Counterexample) {
		t.Fatalf("%s counterexample does not reproduce divergence on replay", rule)
	}
	return rep
}

// stripField removes one metadata field from the coordination header of
// a switch pair, on the shared header map and both per-switch configs.
func stripField(dep *deploy.Deployment, key placement.RouteKey, name string) {
	hdr := dep.Headers[key]
	var out deploy.CoordHeader
	for _, f := range hdr.Fields {
		if f.Name == name {
			continue
		}
		out.Fields = append(out.Fields, f)
		out.Bytes += f.Bytes()
	}
	dep.Headers[key] = out
	dep.Configs[key.From].Exports[key.To] = out
	dep.Configs[key.To].Imports[key.From] = out
}

// injectField adds one field to a pair's coordination header, again on
// all three views the compiler keeps mirrored.
func injectField(dep *deploy.Deployment, key placement.RouteKey, f fields.Field) {
	hdr := dep.Headers[key]
	out := deploy.CoordHeader{Fields: append(append([]fields.Field(nil), hdr.Fields...), f)}
	sort.Slice(out.Fields, func(i, j int) bool { return out.Fields[i].Name < out.Fields[j].Name })
	out.Bytes = hdr.Bytes + f.Bytes()
	dep.Headers[key] = out
	dep.Configs[key.From].Exports[key.To] = out
	dep.Configs[key.To].Imports[key.From] = out
}

// moveMAT removes every stage entry of a MAT from one config and
// schedules it in stage 0 of another.
func moveMAT(dep *deploy.Deployment, name string, from, to network.SwitchID) {
	removeMAT(dep, name, from)
	cfg := dep.Configs[to]
	cfg.Stages[0] = append(cfg.Stages[0], deploy.StageEntry{MAT: name, Amount: 0.1})
}

func removeMAT(dep *deploy.Deployment, name string, from network.SwitchID) {
	cfg := dep.Configs[from]
	for i, st := range cfg.Stages {
		var kept []deploy.StageEntry
		for _, e := range st {
			if e.MAT != name {
				kept = append(kept, e)
			}
		}
		cfg.Stages[i] = kept
	}
}

func routeKey(t *testing.T, dep *deploy.Deployment, fromMAT, toMAT string) placement.RouteKey {
	t.Helper()
	from, ok := dep.Plan.SwitchOf(fromMAT)
	if !ok {
		t.Fatalf("no placement for %s", fromMAT)
	}
	to, ok := dep.Plan.SwitchOf(toMAT)
	if !ok {
		t.Fatalf("no placement for %s", toMAT)
	}
	return placement.RouteKey{From: from, To: to}
}

// TestCleanDeploymentProvesEquivalent is the green path: a solver
// plan compiles into a pipeline the checker proves equivalent, with
// the packet-replay twin agreeing.
func TestCleanDeploymentProvesEquivalent(t *testing.T) {
	g := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	dep := splitDeployment(t, g)
	if err := equiv.CheckDeployment(nil, dep); err != nil {
		t.Fatalf("clean deployment rejected: %v", err)
	}
	rep, err := equiv.Diagnose(nil, dep)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("Diagnose not OK on clean deployment: %v", rep.Findings)
	}
	if ok, present := rep.Programs["p"]; !present || !ok {
		t.Fatalf("per-program verdict = %v, want p:true", rep.Programs)
	}
	if _, err := dataplane.EquivalentRuns(dep, replayPackets(g, 11, 32)); err != nil {
		t.Fatalf("replay twin disagrees with symbolic pass: %v", err)
	}
}

// TestRebuiltGraphBehaviorallyEqual checks against a *different* graph
// object rebuilt from identical source: the definitions differ by
// pointer but not behavior, so the gate must stay green.
func TestRebuiltGraphBehaviorallyEqual(t *testing.T) {
	ref := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	g2 := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	dep := splitDeployment(t, g2)
	if err := equiv.CheckDeployment(ref, dep); err != nil {
		t.Fatalf("behaviorally identical rebuild rejected: %v", err)
	}
}

// TestMutationOracle seeds the distributed pipeline with known
// equivalence-breaking mutations and requires each to be rejected with
// its expected HE rule and a replay-confirmed counterexample packet.
func TestMutationOracle(t *testing.T) {
	ref := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})

	t.Run("HE004/carry-field-dropped", func(t *testing.T) {
		dep := splitDeployment(t, ref)
		stripField(dep, routeKey(t, dep, "p/gen", "p/apply"), "meta.x")
		expectRejected(t, ref, dep, equiv.RuleCarryMissing)
	})

	t.Run("HE004/import-side-desync", func(t *testing.T) {
		dep := splitDeployment(t, ref)
		key := routeKey(t, dep, "p/gen", "p/apply")
		delete(dep.Configs[key.To].Imports, key.From)
		expectRejected(t, ref, dep, equiv.RuleCarryMissing)
	})

	t.Run("HE003/mat-on-wrong-switch", func(t *testing.T) {
		dep := splitDeployment(t, ref)
		key := routeKey(t, dep, "p/gen", "p/apply")
		// "p/apply" sorts before "p/gen", so co-locating it in the same
		// stage makes it execute before its producer.
		moveMAT(dep, "p/apply", key.To, key.From)
		expectRejected(t, ref, dep, equiv.RuleReordered)
	})

	t.Run("HE003/stages-swapped", func(t *testing.T) {
		plan, err := (placement.Greedy{}).Solve(ref, lineTopo(t, 1, 2, 0.5), placement.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gen, apply := plan.Assignments["p/gen"], plan.Assignments["p/apply"]
		if gen.Switch != apply.Switch || gen.Start == apply.Start {
			t.Fatalf("fixture expects co-located MATs in distinct stages, got %+v / %+v", gen, apply)
		}
		dep, err := deploy.Compile(plan, analyzer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := dep.Configs[gen.Switch]
		cfg.Stages[0], cfg.Stages[1] = cfg.Stages[1], cfg.Stages[0]
		expectRejected(t, ref, dep, equiv.RuleReordered)
	})

	t.Run("HE001/mat-dropped", func(t *testing.T) {
		dep := splitDeployment(t, ref)
		sw, _ := dep.Plan.SwitchOf("p/apply")
		removeMAT(dep, "p/apply", sw)
		expectRejected(t, ref, dep, equiv.RuleMissingMAT)
	})

	t.Run("HE002/mat-duplicated", func(t *testing.T) {
		dep := splitDeployment(t, ref)
		key := routeKey(t, dep, "p/gen", "p/apply")
		// Second execution of the non-idempotent gen on the downstream
		// switch: x = (x+7) twice.
		cfg := dep.Configs[key.To]
		cfg.Stages[0] = append(cfg.Stages[0], deploy.StageEntry{MAT: "p/gen", Amount: 0.1})
		expectRejected(t, ref, dep, equiv.RuleExtraMAT)
	})

	t.Run("HE002/unknown-mat", func(t *testing.T) {
		dep := splitDeployment(t, ref)
		sw, _ := dep.Plan.SwitchOf("p/gen")
		cfg := dep.Configs[sw]
		cfg.Stages[0] = append(cfg.Stages[0], deploy.StageEntry{MAT: "p/ghost", Amount: 0.1})
		expectRejected(t, ref, dep, equiv.RuleExtraMAT)
	})

	t.Run("HE005/stale-relay-shadowing", func(t *testing.T) {
		g, dep := relayDeployment(t)
		// Surgically relay meta.x through the middle switch, which never
		// receives it: the later-visited upstream then shadows the fresh
		// direct delivery with a stale (empty) history.
		injectField(dep, routeKey(t, dep, "q/mid", "q/apply"), fX)
		expectRejected(t, g, dep, equiv.RuleAmbiguousCarry)
	})

	t.Run("HE006/default-swapped", func(t *testing.T) {
		g2 := mustAnalyze(t, []*program.Program{carryProgram(t, applyDefaultV)}, analyzer.Options{})
		expectRejected(t, ref, splitDeployment(t, g2), equiv.RuleDefaultAction)
	})

	t.Run("HE006/default-cleared", func(t *testing.T) {
		g2 := mustAnalyze(t, []*program.Program{carryProgram(t, applyDefaultNone)}, analyzer.Options{})
		expectRejected(t, ref, splitDeployment(t, g2), equiv.RuleDefaultAction)
	})

	t.Run("HE007/action-op-removed", func(t *testing.T) {
		g2 := mustAnalyze(t, []*program.Program{carryProgram(t, applyDropZ)}, analyzer.Options{})
		expectRejected(t, ref, splitDeployment(t, g2), equiv.RuleDefMismatch)
	})

	t.Run("HE007/rule-value-mutated", func(t *testing.T) {
		g2 := mustAnalyze(t, []*program.Program{carryProgram(t, applyRuleValue8)}, analyzer.Options{})
		expectRejected(t, ref, splitDeployment(t, g2), equiv.RuleDefMismatch)
	})

	t.Run("HE007/lpm-key-truncated", func(t *testing.T) {
		refG := mustAnalyze(t, []*program.Program{routeProgram(t, 16)}, analyzer.Options{})
		mutG := mustAnalyze(t, []*program.Program{routeProgram(t, 8)}, analyzer.Options{})
		plan, err := (placement.Greedy{}).Solve(mutG, lineTopo(t, 1, 1, 1), placement.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := deploy.Compile(plan, analyzer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		expectRejected(t, refG, dep, equiv.RuleDefMismatch)
	})

	t.Run("HE008/cyclic-switch-order", func(t *testing.T) {
		g, dep := cyclicDeployment(t)
		if err := equiv.CheckDeployment(g, dep); err == nil {
			t.Fatal("cyclic placement passed the gate")
		}
		rep, err := equiv.Diagnose(g, dep)
		if err != nil {
			t.Fatal(err)
		}
		if !hasRule(rep.Findings, equiv.RuleOrderUnreal) {
			t.Fatalf("findings %v lack %s", rep.Findings, equiv.RuleOrderUnreal)
		}
		if rep.Counterexample == nil {
			t.Fatal("cyclic placement has no counterexample (engine construction must fail)")
		}
	})
}

// routeProgram is a single LPM table over a dedicated header field,
// parameterized on the declared key width so a truncated-key mutant can
// be built from source. Rule: dst in 0xff00/8 sets meta.rw=5; miss sets 1.
func routeProgram(t testing.TB, bits int) *program.Program {
	t.Helper()
	dst := fields.Header("ipv4.dst", bits)
	rw := fields.Metadata("meta.rw", 8)
	return program.NewBuilder("rt").
		Table("route", 8).
		Key(dst, program.MatchLPM).
		ActionDef("hit", program.SetOp(rw, 5)).
		ActionDef("miss", program.SetOp(rw, 1)).
		Default("miss").
		Rule(program.Rule{
			Matches: map[string]program.Pattern{"ipv4.dst": {Value: 0xff00, PrefixLen: 8}},
			Action:  "hit",
		}).
		MustBuild()
}

// relayDeployment hand-places a three-table chain on three switches so
// the middle switch is a pure relay for meta.x's consumer: gen writes
// x and w on switch 0, mid consumes w on switch 1, apply consumes x
// and m on switch 2. Compiled with IntersectMatch so switch 1 never
// receives x — the precondition for the HE005 stale-relay mutation.
func relayDeployment(t *testing.T) (*tdg.Graph, *deploy.Deployment) {
	t.Helper()
	prog := program.NewBuilder("q").
		Table("gen", 1).
		ActionDef("g", program.SetOp(fX, 7), program.SetOp(fW, 1)).
		Default("g").
		Table("mid", 8).
		Key(fW, program.MatchExact).
		ActionDef("m", program.SetOp(fM, 1)).
		Default("m").
		Table("apply", 1024).
		Key(fX, program.MatchExact).
		Key(fM, program.MatchExact).
		ActionDef("u", program.CopyOp(fY, fX)).
		ActionDef("r", program.SetOp(fY, 99)).
		Default("u").
		Rule(program.Rule{
			Matches: map[string]program.Pattern{"meta.x": {Value: 7}},
			Action:  "r",
		}).
		MustBuild()
	aopts := analyzer.Options{IntersectMatch: true}
	g := mustAnalyze(t, []*program.Program{prog}, aopts)
	tp := lineTopo(t, 3, 1, 1)
	sp := func(sw int) placement.StagePlacement {
		return placement.StagePlacement{
			Switch: network.SwitchID(sw), Start: 0, End: 0, PerStage: []float64{0.3},
		}
	}
	plan := &placement.Plan{
		Graph: g, Topo: tp, SolverName: "hand",
		Assignments: map[string]placement.StagePlacement{
			"q/gen": sp(0), "q/mid": sp(1), "q/apply": sp(2),
		},
	}
	dep, err := deploy.Compile(plan, aopts)
	if err != nil {
		t.Fatal(err)
	}
	// Precondition: switch 1 must not receive meta.x.
	for _, f := range dep.Headers[placement.RouteKey{From: 0, To: 1}].Fields {
		if f.Name == "meta.x" {
			t.Fatal("fixture broken: relay switch already receives meta.x")
		}
	}
	if err := equiv.CheckDeployment(g, dep); err != nil {
		t.Fatalf("clean relay deployment rejected: %v", err)
	}
	return g, dep
}

// cyclicDeployment hand-builds a placement whose switch-contracted
// dependency graph is cyclic: a@0 -> b@1 -> c@0.
func cyclicDeployment(t *testing.T) (*tdg.Graph, *deploy.Deployment) {
	t.Helper()
	g := tdg.New()
	mk := func(n string) *program.MAT {
		return &program.MAT{
			Name: n, Capacity: 4,
			Actions: []program.Action{{
				Name: "a", Ops: []program.Op{program.SetOp(fields.Metadata("meta."+n, 8), 1)},
			}},
			DefaultAction: "a",
		}
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddNode(mk(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "b", tdg.DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c", tdg.DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	sp := func(sw int) placement.StagePlacement {
		return placement.StagePlacement{
			Switch: network.SwitchID(sw), Start: 0, End: 0, PerStage: []float64{0.2},
		}
	}
	plan := &placement.Plan{
		Graph: g, Topo: lineTopo(t, 2, 1, 1), SolverName: "hand",
		Assignments: map[string]placement.StagePlacement{
			"a": sp(0), "b": sp(1), "c": sp(0),
		},
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, dep
}

// TestBenignShuffleWarnsWithoutGating: a hand-built graph with an
// unconstrained writer (no TDG edge orders it against the reader)
// reordered across the cut yields an HE010 warning — and the gate stays
// green, because the analyzer-guaranteed edge-connectedness that makes
// the shuffle dangerous is absent by construction.
func TestBenignShuffleWarnsWithoutGating(t *testing.T) {
	f5 := fields.Metadata("meta.f", 8)
	g := tdg.New()
	w := &program.MAT{Name: "w", Capacity: 4, DefaultAction: "a",
		Actions: []program.Action{{Name: "a", Ops: []program.Op{program.SetOp(f5, 5)}}}}
	z := &program.MAT{Name: "z", Capacity: 4, DefaultAction: "a",
		Actions: []program.Action{{Name: "a", Ops: []program.Op{program.SetOp(f5, 5)}}}}
	r := &program.MAT{Name: "r", Capacity: 4, DefaultAction: "a",
		Actions: []program.Action{{Name: "a", Ops: []program.Op{program.CopyOp(fY, f5)}}}}
	for _, m := range []*program.MAT{w, z, r} {
		if err := g.AddNode(m); err != nil {
			t.Fatal(err)
		}
	}
	// Only w is ordered against the reader; z floats free (an omission
	// the dependency analyzer would never produce).
	if err := g.AddEdge("w", "r", tdg.DepMatch, 1); err != nil {
		t.Fatal(err)
	}
	sp := func(sw int) placement.StagePlacement {
		return placement.StagePlacement{
			Switch: network.SwitchID(sw), Start: 0, End: 0, PerStage: []float64{0.2},
		}
	}
	plan := &placement.Plan{
		Graph: g, Topo: lineTopo(t, 3, 1, 1), SolverName: "hand",
		Assignments: map[string]placement.StagePlacement{
			"w": sp(0), "r": sp(1), "z": sp(2),
		},
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := equiv.CheckDeployment(g, dep); err != nil {
		t.Fatalf("benign shuffle must not gate: %v", err)
	}
	rep, err := equiv.Diagnose(g, dep)
	if err != nil {
		t.Fatal(err)
	}
	if !hasRule(rep.Findings, equiv.RuleBenignShuffle) {
		t.Fatalf("findings %v lack %s warning", rep.Findings, equiv.RuleBenignShuffle)
	}
	if rep.Findings.HasErrors() {
		t.Fatalf("benign shuffle produced errors: %v", rep.Findings)
	}
	// The writes commute (same value), so the replay twin agrees.
	if _, err := dataplane.EquivalentRuns(dep, replayPackets(g, 3, 8)); err != nil {
		t.Fatalf("replay diverged on benign shuffle: %v", err)
	}
}

// replayPackets synthesizes a deterministic packet stream over the
// graph's header fields for differential replay.
func replayPackets(g *tdg.Graph, seed int64, n int) []*dataplane.Packet {
	rng := rand.New(rand.NewSource(seed))
	var hdrs []fields.Field
	seen := map[string]bool{}
	for _, node := range g.Nodes() {
		for _, k := range node.MAT.Keys {
			if !k.Field.IsMetadata() && !seen[k.Field.Name] {
				seen[k.Field.Name] = true
				hdrs = append(hdrs, k.Field)
			}
		}
		for _, a := range node.MAT.Actions {
			for _, op := range a.Ops {
				for _, f := range append([]fields.Field{op.Dst}, op.Srcs...) {
					if !f.IsMetadata() && !seen[f.Name] {
						seen[f.Name] = true
						hdrs = append(hdrs, f)
					}
				}
			}
		}
	}
	sort.Slice(hdrs, func(i, j int) bool { return hdrs[i].Name < hdrs[j].Name })
	out := make([]*dataplane.Packet, n)
	for i := range out {
		p := &dataplane.Packet{Headers: map[string]uint64{}}
		for _, f := range hdrs {
			mask := uint64(1)<<uint(f.Bits) - 1
			if f.Bits >= 64 {
				mask = ^uint64(0)
			}
			p.Headers[f.Name] = rng.Uint64() & mask
		}
		out[i] = p
	}
	return out
}

// TestSolverPlansProveEquivalent is the zero-false-rejection
// acceptance sweep: every Greedy and Exact plan for the real program
// mix on the paper's Table III topologies must pass the plan-level and
// deployment-level symbolic gates, agree with Plan.Validate, and agree
// with sampled packet replay.
func TestSolverPlansProveEquivalent(t *testing.T) {
	progs := workload.RealPrograms()[:3]
	g := mustAnalyze(t, progs, analyzer.Options{})
	checker, err := equiv.NewChecker(g)
	if err != nil {
		t.Fatal(err)
	}
	solvers := []placement.Solver{placement.Greedy{}, placement.Exact{}}
	rows := network.NumTableIII()
	if testing.Short() {
		rows = 3
	}
	for idx := 1; idx <= rows; idx++ {
		topo, err := network.TableIII(idx, network.TofinoSpec())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range solvers {
			opts := placement.Options{Deadline: time.Now().Add(3 * time.Second)}
			plan, err := s.Solve(g.Clone(), topo, opts)
			if err != nil {
				t.Fatalf("table3:%d %s: %v", idx, s.Name(), err)
			}
			if err := plan.Validate(program.DefaultResourceModel, 0, 0); err != nil {
				t.Fatalf("table3:%d %s: validate: %v", idx, s.Name(), err)
			}
			if err := checker.CheckPlan(plan, analyzer.Options{}); err != nil {
				t.Errorf("table3:%d %s: false plan rejection: %v", idx, s.Name(), err)
			}
			dep, err := deploy.Compile(plan, analyzer.Options{})
			if err != nil {
				t.Fatalf("table3:%d %s: %v", idx, s.Name(), err)
			}
			if err := checker.Check(dep); err != nil {
				t.Errorf("table3:%d %s: false deployment rejection: %v", idx, s.Name(), err)
			}
			if _, err := dataplane.EquivalentRuns(dep, replayPackets(g, int64(idx), 8)); err != nil {
				t.Errorf("table3:%d %s: replay twin disagrees: %v", idx, s.Name(), err)
			}
		}
	}
}

// TestShardedPlanProvesEquivalent runs the region-sharded solver on a
// composite WAN and proves its reconciled plan equivalent.
func TestShardedPlanProvesEquivalent(t *testing.T) {
	progs := workload.RealPrograms()[:3]
	g := mustAnalyze(t, progs, analyzer.Options{})
	topo, err := network.CompositeWAN(3, network.TofinoSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := (shard.ShardedGreedy{}).Solve(g, topo, placement.Options{
		Shards: 3, Deadline: time.Now().Add(5 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := equiv.CheckPlanAgainst(g, plan, analyzer.Options{}); err != nil {
		t.Fatalf("sharded plan falsely rejected: %v", err)
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := equiv.CheckDeployment(g, dep); err != nil {
		t.Fatalf("sharded deployment falsely rejected: %v", err)
	}
}

// TestRedeployEquivGate drains a switch and requires the Equiv-gated
// Redeploy to produce a proven-equivalent successor.
func TestRedeployEquivGate(t *testing.T) {
	g := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	plan, err := (placement.Greedy{}).Solve(g, lineTopo(t, 3, 1, 0.5), placement.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	applySw, _ := plan.SwitchOf("p/apply")
	ropts := placement.ReplanOptions{}
	ropts.Equiv = true
	next, _, err := deploy.Redeploy(dep, placement.Greedy{}, ropts, analyzer.Options{}, applySw)
	if err != nil {
		t.Fatalf("equiv-gated redeploy failed: %v", err)
	}
	if err := equiv.CheckDeployment(g, next); err != nil {
		t.Fatalf("redeployed pipeline not equivalent: %v", err)
	}
	if sw, _ := next.Plan.SwitchOf("p/apply"); sw == applySw {
		t.Fatalf("apply still on drained switch %d", int(applySw))
	}
}

// TestPlanEquivHookGating checks the solver-side wiring: Options.Equiv
// invokes the registered hook and folds its rejection into the solve
// error.
func TestPlanEquivHookGating(t *testing.T) {
	g := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	topo := lineTopo(t, 2, 1, 0.5)

	t.Run("default hook green", func(t *testing.T) {
		if _, err := (placement.Greedy{}).Solve(g.Clone(), topo, placement.Options{Equiv: true}); err != nil {
			t.Fatalf("equiv-gated solve of clean workload failed: %v", err)
		}
	})

	t.Run("rejection propagates", func(t *testing.T) {
		old := placement.PlanEquivHook
		defer func() { placement.PlanEquivHook = old }()
		calls := 0
		placement.PlanEquivHook = func(p *placement.Plan, _ placement.Options) error {
			calls++
			return errTest
		}
		_, err := (placement.Greedy{}).Solve(g.Clone(), topo, placement.Options{Equiv: true})
		if err == nil || !strings.Contains(err.Error(), "equivalence") {
			t.Fatalf("hook rejection not propagated: %v", err)
		}
		if calls == 0 {
			t.Fatal("hook never invoked")
		}
		// Without the flag the hook must not run.
		calls = 0
		if _, err := (placement.Greedy{}).Solve(g.Clone(), topo, placement.Options{}); err != nil {
			t.Fatal(err)
		}
		if calls != 0 {
			t.Fatal("hook invoked without Options.Equiv")
		}
	})
}

type testErr string

func (e testErr) Error() string { return string(e) }

const errTest = testErr("seeded hook failure")

// TestCheckIsAllocationFree proves the steady-state green gate
// allocates nothing after warmup — the property the //hermes:hot inner
// loops and the HV006 lint rule protect.
func TestCheckIsAllocationFree(t *testing.T) {
	g := mustAnalyze(t, []*program.Program{carryProgram(t, applyClean)}, analyzer.Options{})
	dep := splitDeployment(t, g)
	c, err := equiv.NewChecker(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // warm the scratch
		if err := c.Check(dep); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Check(dep); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Check allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

func BenchmarkCheckDeployment(b *testing.B) {
	progs := workload.RealPrograms()[:3]
	g := mustAnalyze(b, progs, analyzer.Options{})
	topo, err := network.TableIII(1, network.TofinoSpec())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := (placement.Greedy{}).Solve(g, topo, placement.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dep, err := deploy.Compile(plan, analyzer.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c, err := equiv.NewChecker(g)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Check(dep); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Check(dep); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzEquiv cross-checks the symbolic verdict against sampled packet
// replay on solver-produced deployments of fuzzer-chosen program mixes
// (the workload family plus p4lite sources seeded from examples/p4src):
// a symbolic pass must imply a replay pass, and solver plans must never
// be falsely rejected.
func FuzzEquiv(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "p4src", "*.p4"))
	for i, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(string(data), uint8(i), uint16(i))
		}
	}
	f.Add("", uint8(0), uint16(1))
	f.Add("", uint8(3), uint16(42))
	f.Fuzz(func(t *testing.T, src string, topoSel uint8, pktSeed uint16) {
		progs := workload.RealPrograms()[:2]
		if src != "" {
			p, err := p4lite.Parse(src)
			if err != nil {
				return
			}
			progs = append(progs, p)
		}
		g, err := analyzer.Analyze(progs, analyzer.Options{})
		if err != nil {
			return
		}
		topo, err := network.TableIII(1+int(topoSel)%network.NumTableIII(), network.TofinoSpec())
		if err != nil {
			return
		}
		plan, err := (placement.Greedy{}).Solve(g, topo, placement.Options{
			Deadline: time.Now().Add(3 * time.Second),
		})
		if err != nil {
			return
		}
		dep, err := deploy.Compile(plan, analyzer.Options{})
		if err != nil {
			return
		}
		symErr := equiv.CheckDeployment(nil, dep)
		if symErr != nil {
			t.Fatalf("solver plan falsely rejected by symbolic gate: %v", symErr)
		}
		if _, err := dataplane.EquivalentRuns(dep, replayPackets(g, int64(pktSeed), 6)); err != nil {
			t.Fatalf("symbolic pass but replay divergence: %v", err)
		}
	})
}
