package equiv

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// maxCandidates bounds counterexample search; the candidate set is the
// zero packet, the all-ones packet, and one rule-solving packet per
// installed rule, in deterministic order.
const maxCandidates = 64

// Diverges replays pkt through the distributed deployment and the
// single-box reference for graph ref and reports whether the runs
// disagree (a coordination fault, an engine construction failure, or
// differing final write sets).
func Diverges(ref *tdg.Graph, dep *deploy.Deployment, pkt *dataplane.Packet) bool {
	refEng, err := dataplane.NewReferenceEngine(ref)
	if err != nil {
		return false // the reference itself is unrunnable: not a plan defect
	}
	rres, err := refEng.Process(pkt.Clone())
	if err != nil {
		return false
	}
	eng, err := dataplane.NewEngine(dep)
	if err != nil {
		return true
	}
	dres, err := eng.Process(pkt.Clone())
	if err != nil {
		return true
	}
	for k, rv := range rres.Writes {
		if dv, ok := dres.Writes[k]; !ok || dv != rv {
			return true
		}
	}
	for k := range dres.Writes {
		if _, ok := rres.Writes[k]; !ok {
			return true
		}
	}
	return false
}

// Counterexample searches the symbolic candidate set for a concrete
// packet whose replay diverges between dep and the reference graph.
// The bool reports whether one was confirmed.
func (c *Checker) Counterexample(dep *deploy.Deployment) (*dataplane.Packet, bool) {
	if dep == nil {
		return nil, false
	}
	for _, pkt := range c.candidatePackets() {
		if Diverges(c.ov.g, dep, pkt) {
			return pkt, true
		}
	}
	return nil, false
}

// candidatePackets synthesizes concrete header assignments from the
// reference MATs' match patterns: each installed rule contributes a
// packet solving its own constraints (Exact/LPM/Ternary take the rule
// value under its mask, Range takes the low bound), plus the zero and
// all-ones packets as boundary probes.
func (c *Checker) candidatePackets() []*dataplane.Packet {
	ov := c.ov
	zero := &dataplane.Packet{Headers: map[string]uint64{}}
	ones := &dataplane.Packet{Headers: map[string]uint64{}}
	for fi, def := range ov.fieldDefs {
		if ov.fieldMeta[fi] {
			continue
		}
		zero.Headers[def.Name] = 0
		mask := uint64(1)<<uint(def.Bits) - 1
		if def.Bits >= 64 {
			mask = ^uint64(0)
		}
		ones.Headers[def.Name] = mask
	}
	out := []*dataplane.Packet{zero, ones}
	for _, node := range ov.nodes {
		for _, r := range node.MAT.Rules {
			if len(out) >= maxCandidates {
				return out
			}
			pkt := zero.Clone()
			// Deterministic field order for reproducible packets.
			names := make([]string, 0, len(r.Matches))
			for fname := range r.Matches {
				names = append(names, fname)
			}
			sort.Strings(names)
			for _, fname := range names {
				if fi, ok := ov.fieldIndex[fname]; !ok || ov.fieldMeta[fi] {
					continue // metadata constraints are not packet inputs
				}
				pkt.Headers[fname] = solvePattern(keyType(node.MAT, fname), r.Matches[fname])
			}
			out = append(out, pkt)
		}
	}
	return out
}

// keyType finds the match type m uses for field fname (MatchExact when
// the rule constrains a field outside the declared key).
func keyType(m *program.MAT, fname string) program.MatchType {
	for _, k := range m.Keys {
		if k.Field.Name == fname {
			return k.Type
		}
	}
	return program.MatchExact
}

// solvePattern picks one concrete value satisfying pat under the match
// kind's semantics.
func solvePattern(t program.MatchType, pat program.Pattern) uint64 {
	switch t {
	case program.MatchRange:
		return pat.Lo
	case program.MatchTernary:
		if pat.Mask != 0 {
			return pat.Value & pat.Mask
		}
		return pat.Value
	default: // exact, LPM
		return pat.Value
	}
}

// formatPacket renders a counterexample for finding hints: sorted
// field=value pairs, zeros elided.
func formatPacket(pkt *dataplane.Packet) string {
	names := make([]string, 0, len(pkt.Headers))
	for k, v := range pkt.Headers {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "the all-zero packet"
	}
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%#x", k, pkt.Headers[k])
	}
	return "packet{" + strings.Join(parts, ", ") + "}"
}
