package equiv

import (
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Checker proves deployments and plans equivalent to one reference
// graph. It owns reusable scratch sized to the reference, so repeated
// checks against the same graph are allocation-free on the green path;
// a Checker is not safe for concurrent use (share the graph, not the
// Checker).
type Checker struct {
	ov *compiled

	// Lowered pipeline, rebuilt per check in reused scratch.
	usedIDs []network.SwitchID // used switches, ascending
	swOf    map[network.SwitchID]int32
	adj     []uint64 // U×U contracted-adjacency bitset
	indeg   []int32
	visit   []int32 // used-switch index per visit rank
	rank    []int32 // visit rank per used-switch index, -1 if stuck
	cycle   bool

	execMAT  []int32  // overlay MAT index per execution slot, -1 unknown
	execName []string // MAT name per execution slot (diagnostics)
	execSw   []int32  // used-switch index per execution slot
	seenCnt  []int32  // executions per reference MAT
	unknown  []string // executed names absent from the reference
	noDef    []string // executed names absent from the deployed graph
	dirtyDef []int32  // executed ref MATs whose deployed def is a different struct

	impStart []int32 // import slots per visit rank
	impFrom  []int32 // used-switch index of the exporting switch
	impF     []int32 // delivered field index

	// Stage-order sort scratch (see entrySorter).
	entRank  []int32
	entStage []int32
	entName  []string
	entMAT   []int32
	firstSt  map[string]int32

	// Plan-lowering scratch: per communicating pair, the carried field
	// bitset the compiler would derive.
	pairIdx  map[int64]int32
	pairFrom []int32
	pairTo   []int32
	pairBits []uint64

	// Walk scratch.
	dCnt    []int32
	dHash   []uint64
	dSym    []uint64
	dLast   []int32
	visHash []uint64
	visLen  []int32
	visLast []int32

	// deployed remembers which artifact the scratch was lowered from,
	// for the diagnostic pass.
	dep  *deploy.Deployment
	plan *placement.Plan
}

// NewChecker compiles the reference graph (memoized on the graph) and
// returns a reusable checker for it.
func NewChecker(ref *tdg.Graph) (*Checker, error) {
	ov, err := compile(ref)
	if err != nil {
		return nil, err
	}
	return &Checker{
		ov:      ov,
		swOf:    map[network.SwitchID]int32{},
		firstSt: map[string]int32{},
		pairIdx: map[int64]int32{},
		dCnt:    make([]int32, len(ov.fieldNames)),
		dHash:   make([]uint64, len(ov.fieldNames)),
		dSym:    make([]uint64, len(ov.fieldNames)),
		dLast:   make([]int32, len(ov.fieldNames)),
		seenCnt: make([]int32, len(ov.names)),
	}, nil
}

// Reference returns the graph this checker proves against.
func (c *Checker) Reference() *tdg.Graph { return c.ov.g }

// Check is the deployment gate: nil means the distributed pipeline is
// symbolically proven equivalent to the single-box reference for every
// program; otherwise the error folds the error-severity findings (use
// Diagnose for the full report). Steady-state green checks allocate
// nothing.
func (c *Checker) Check(dep *deploy.Deployment) error {
	if err := c.lowerDeployment(dep); err != nil {
		return err
	}
	if c.clean() {
		return nil
	}
	return findingsErr(c.diagnose(false))
}

// CheckPlan gates a plan before compilation: the pipeline is the
// plan's switch and stage order with the coordination headers
// deploy.Compile would derive under aopts.
func (c *Checker) CheckPlan(p *placement.Plan, aopts analyzer.Options) error {
	if err := c.lowerPlan(p, aopts); err != nil {
		return err
	}
	if c.clean() {
		return nil
	}
	return findingsErr(c.diagnose(false))
}

// clean runs the allocation-free structural screen and symbolic walk;
// false means the diagnostic pass must explain.
func (c *Checker) clean() bool {
	return c.structuralClean() && c.walkClean()
}

// structuralClean is the screen preceding the symbolic walk: the visit
// order is realizable, every reference MAT executes exactly once,
// nothing unknown executes, and drifted definitions are behaviorally
// equal. The incremental re-checker (Rechecker) runs this globally
// before trusting per-component sub-walks, because these are the only
// clean() conditions a field-closed component cannot decide locally.
func (c *Checker) structuralClean() bool {
	if c.cycle || len(c.unknown) > 0 || len(c.noDef) > 0 {
		return false
	}
	for _, n := range c.seenCnt {
		if n != 1 {
			return false
		}
	}
	for _, x := range c.dirtyDef {
		ref := c.ov.nodes[x].MAT
		dep := c.deployedDef(c.ov.names[x])
		if dep == nil || !behaviorallyEqual(ref, dep) {
			return false
		}
	}
	return true
}

// deployedDef resolves the MAT definition the engine would execute.
func (c *Checker) deployedDef(name string) *program.MAT {
	g := c.ov.g
	if c.dep != nil {
		g = c.dep.Plan.Graph
	} else if c.plan != nil {
		g = c.plan.Graph
	}
	n, ok := g.Node(name)
	if !ok {
		return nil
	}
	return n.MAT
}

// lowerDeployment flattens the engine-visible pipeline of dep into the
// checker's scratch: switch visit order (the plan's contracted-DAG
// Kahn order with ascending-ID tie break), per-switch MATs by first
// stage then name, and the per-pair coordination-header field lists.
func (c *Checker) lowerDeployment(dep *deploy.Deployment) error {
	if dep == nil || dep.Plan == nil || dep.Plan.Graph == nil {
		return fmt.Errorf("equiv: nil deployment")
	}
	c.dep, c.plan = dep, nil
	c.collectSwitches(dep.Plan)
	c.orderSwitches(dep.Plan)

	// Execution entries: replicate dataplane.matsInStageOrder per
	// switch config — first stage of each MAT, dedup, (stage, name).
	c.entRank = c.entRank[:0]
	c.entStage = c.entStage[:0]
	c.entName = c.entName[:0]
	c.entMAT = c.entMAT[:0]
	for r, u := range c.visit {
		cfg := dep.Configs[c.usedIDs[u]]
		if cfg == nil {
			continue
		}
		for k := range c.firstSt {
			delete(c.firstSt, k)
		}
		for s, st := range cfg.Stages {
			for _, e := range st {
				if _, ok := c.firstSt[e.MAT]; !ok {
					c.firstSt[e.MAT] = int32(s)
				}
			}
		}
		for name, st := range c.firstSt {
			c.pushEntry(int32(r), st, name)
		}
	}
	c.sortEntries()
	c.buildExec()

	// Imports: each switch's configured coordination headers, emitted
	// in ascending upstream visit rank so the walk's overwrite-merge
	// reproduces the engine's deterministic later-upstream-wins order.
	c.impStart = append(c.impStart[:0], 0)
	c.impFrom = c.impFrom[:0]
	c.impF = c.impF[:0]
	for r, u := range c.visit {
		cfg := dep.Configs[c.usedIDs[u]]
		if cfg != nil {
			for rr := 0; rr < r; rr++ {
				from := c.visit[rr]
				hdr, ok := cfg.Imports[c.usedIDs[from]]
				if !ok {
					continue
				}
				for _, fld := range hdr.Fields {
					fi, ok := c.ov.fieldIndex[fld.Name]
					if !ok {
						continue // field unknown to the reference
					}
					c.impFrom = append(c.impFrom, from)
					c.impF = append(c.impF, fi)
				}
			}
		}
		c.impStart = append(c.impStart, int32(len(c.impF)))
	}
	return nil
}

// lowerPlan flattens the pipeline a compilation of p would induce:
// same switch and stage order, with per-pair carried fields derived
// from the cross edges exactly as deploy.Compile does via
// analyzer.MetadataFields.
func (c *Checker) lowerPlan(p *placement.Plan, aopts analyzer.Options) error {
	if p == nil || p.Graph == nil {
		return fmt.Errorf("equiv: nil plan")
	}
	c.dep, c.plan = nil, p
	c.collectSwitches(p)
	c.orderSwitches(p)

	c.entRank = c.entRank[:0]
	c.entStage = c.entStage[:0]
	c.entName = c.entName[:0]
	c.entMAT = c.entMAT[:0]
	for name, sp := range p.Assignments {
		u, ok := c.swOf[sp.Switch]
		if !ok || c.rank[u] < 0 {
			continue
		}
		c.pushEntry(c.rank[u], int32(sp.Start), name)
	}
	c.sortEntries()
	c.buildExec()

	// Derive per-pair carried fields from the cross edges.
	for k := range c.pairIdx {
		delete(c.pairIdx, k)
	}
	c.pairFrom = c.pairFrom[:0]
	c.pairTo = c.pairTo[:0]
	fw := (len(c.ov.fieldNames) + 63) / 64
	c.pairBits = c.pairBits[:0]
	for _, e := range p.Graph.EdgeList() {
		spa, oka := p.Assignments[e.From]
		spb, okb := p.Assignments[e.To]
		if !oka || !okb || spa.Switch == spb.Switch {
			continue
		}
		ua, ub := c.swOf[spa.Switch], c.swOf[spb.Switch]
		key := int64(ua)<<32 | int64(uint32(ub))
		pi, ok := c.pairIdx[key]
		if !ok {
			pi = int32(len(c.pairFrom))
			c.pairIdx[key] = pi
			c.pairFrom = append(c.pairFrom, ua)
			c.pairTo = append(c.pairTo, ub)
			for i := 0; i < fw; i++ {
				c.pairBits = append(c.pairBits, 0)
			}
		}
		c.addCarriedFields(c.pairBits[int(pi)*fw:int(pi+1)*fw], e, aopts)
	}
	c.impStart = append(c.impStart[:0], 0)
	c.impFrom = c.impFrom[:0]
	c.impF = c.impF[:0]
	for r := range c.visit {
		// Ascending upstream rank, mirroring the engine's import order.
		for rr := 0; rr < r; rr++ {
			from := c.visit[rr]
			pi, ok := c.pairIdx[int64(from)<<32|int64(uint32(c.visit[r]))]
			if !ok {
				continue
			}
			bits := c.pairBits[int(pi)*fw : int(pi+1)*fw]
			for w, word := range bits {
				for b := 0; word != 0; b++ {
					if word&1 != 0 {
						c.impFrom = append(c.impFrom, from)
						c.impF = append(c.impF, int32(w*64+b))
					}
					word >>= 1
				}
			}
		}
		c.impStart = append(c.impStart, int32(len(c.impF)))
	}
	return nil
}

// addCarriedFields ORs into bits the metadata fields deploy.Compile
// would put in the pair header for edge e, mirroring
// analyzer.MetadataFields over the overlay's index lists.
func (c *Checker) addCarriedFields(bits []uint64, e *tdg.Edge, aopts analyzer.Options) {
	ov := c.ov
	a, okA := ov.index[e.From]
	b, okB := ov.index[e.To]
	if c.plan != nil && c.plan.Graph != ov.g {
		// Mutated graph: fall back to name lookups against the overlay
		// universe; unknown MATs contribute nothing (flagged elsewhere).
		if !okA || !okB {
			return
		}
	}
	if !okA || !okB {
		return
	}
	set := func(fi int32) {
		if ov.fieldMeta[fi] {
			bits[fi/64] |= 1 << uint(fi%64)
		}
	}
	switch e.Type {
	case tdg.DepMatch:
		if aopts.IntersectMatch {
			for s := ov.writeStart[a]; s < ov.writeStart[a+1]; s++ {
				fi := ov.writeF[s]
				if c.rawReads(b, fi) {
					set(fi)
				}
			}
			return
		}
		for s := ov.writeStart[a]; s < ov.writeStart[a+1]; s++ {
			set(ov.writeF[s])
		}
	case tdg.DepAction:
		for s := ov.writeStart[a]; s < ov.writeStart[a+1]; s++ {
			set(ov.writeF[s])
		}
		for s := ov.writeStart[b]; s < ov.writeStart[b+1]; s++ {
			set(ov.writeF[s])
		}
	case tdg.DepSuccessor:
		for s := ov.writeStart[a]; s < ov.writeStart[a+1]; s++ {
			set(ov.writeF[s])
		}
	case tdg.DepReverse:
		// R edges carry nothing.
	}
}

// rawReads reports whether MAT b's analyzer-visible read set contains
// field fi (binary search over the sorted flattened list).
func (c *Checker) rawReads(b, fi int32) bool {
	ov := c.ov
	lo, hi := ov.rawReadStart[b], ov.rawReadStart[b+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ov.rawReadF[mid] < fi:
			lo = mid + 1
		case ov.rawReadF[mid] > fi:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// collectSwitches gathers the used switches ascending into usedIDs and
// the dense index map swOf.
func (c *Checker) collectSwitches(p *placement.Plan) {
	for k := range c.swOf {
		delete(c.swOf, k)
	}
	c.usedIDs = c.usedIDs[:0]
	for _, sp := range p.Assignments {
		if _, ok := c.swOf[sp.Switch]; !ok {
			c.swOf[sp.Switch] = 0 // provisional; re-indexed after sort
			c.usedIDs = append(c.usedIDs, sp.Switch)
		}
	}
	// Insertion sort: U is small and the slice is reused scratch.
	for i := 1; i < len(c.usedIDs); i++ {
		for j := i; j > 0 && c.usedIDs[j] < c.usedIDs[j-1]; j-- {
			c.usedIDs[j], c.usedIDs[j-1] = c.usedIDs[j-1], c.usedIDs[j]
		}
	}
	for i, id := range c.usedIDs {
		c.swOf[id] = int32(i)
	}
}

// orderSwitches reproduces Plan.SwitchOrder (Kahn over the
// switch-contracted dependency graph, ties broken by ascending switch
// ID) on the dense index space. A cycle sets c.cycle; stuck switches
// keep rank -1.
func (c *Checker) orderSwitches(p *placement.Plan) {
	u := len(c.usedIDs)
	words := (u*u + 63) / 64
	c.adj = c.adj[:0]
	for i := 0; i < words; i++ {
		c.adj = append(c.adj, 0)
	}
	c.indeg = c.indeg[:0]
	for i := 0; i < u; i++ {
		c.indeg = append(c.indeg, 0)
	}
	for _, e := range p.Graph.EdgeList() {
		spa, oka := p.Assignments[e.From]
		spb, okb := p.Assignments[e.To]
		if !oka || !okb || spa.Switch == spb.Switch {
			continue
		}
		a, b := c.swOf[spa.Switch], c.swOf[spb.Switch]
		bit := int(a)*u + int(b)
		if c.adj[bit/64]&(1<<uint(bit%64)) == 0 {
			c.adj[bit/64] |= 1 << uint(bit%64)
			c.indeg[b]++
		}
	}
	c.visit = c.visit[:0]
	c.rank = c.rank[:0]
	for i := 0; i < u; i++ {
		c.rank = append(c.rank, -1)
	}
	for len(c.visit) < u {
		picked := int32(-1)
		for i := 0; i < u; i++ { // ascending ID = ascending index
			if c.rank[i] < 0 && c.indeg[i] == 0 {
				picked = int32(i)
				break
			}
		}
		if picked < 0 {
			break
		}
		c.rank[picked] = int32(len(c.visit))
		c.visit = append(c.visit, picked)
		// Mark successors' indegrees; re-mark prevents double decrement.
		for b := 0; b < u; b++ {
			bit := int(picked)*u + b
			if c.adj[bit/64]&(1<<uint(bit%64)) != 0 {
				c.indeg[b]--
			}
		}
		c.indeg[picked] = -1
	}
	c.cycle = len(c.visit) < u
}

func (c *Checker) pushEntry(rank, stage int32, name string) {
	c.entRank = append(c.entRank, rank)
	c.entStage = append(c.entStage, stage)
	c.entName = append(c.entName, name)
	if idx, ok := c.ov.index[name]; ok {
		c.entMAT = append(c.entMAT, idx)
	} else {
		c.entMAT = append(c.entMAT, -1)
	}
}

// entrySorter orders execution entries by (visit rank, first stage,
// name) — the engine's global MAT order. It lives on the Checker so
// sort.Sort sees a pointer and allocates nothing.
type entrySorter Checker

func (s *entrySorter) Len() int { return len(s.entRank) }
func (s *entrySorter) Less(i, j int) bool {
	if s.entRank[i] != s.entRank[j] {
		return s.entRank[i] < s.entRank[j]
	}
	if s.entStage[i] != s.entStage[j] {
		return s.entStage[i] < s.entStage[j]
	}
	return s.entName[i] < s.entName[j]
}
func (s *entrySorter) Swap(i, j int) {
	s.entRank[i], s.entRank[j] = s.entRank[j], s.entRank[i]
	s.entStage[i], s.entStage[j] = s.entStage[j], s.entStage[i]
	s.entName[i], s.entName[j] = s.entName[j], s.entName[i]
	s.entMAT[i], s.entMAT[j] = s.entMAT[j], s.entMAT[i]
}

func (c *Checker) sortEntries() {
	sort.Stable((*entrySorter)(c))
}

// buildExec materializes the sorted entries into the execution arrays
// and the per-reference-MAT execution counts.
func (c *Checker) buildExec() {
	c.execMAT = c.execMAT[:0]
	c.execName = c.execName[:0]
	c.execSw = c.execSw[:0]
	c.unknown = c.unknown[:0]
	c.noDef = c.noDef[:0]
	c.dirtyDef = c.dirtyDef[:0]
	for i := range c.seenCnt {
		c.seenCnt[i] = 0
	}
	for i := range c.entRank {
		x := c.entMAT[i]
		name := c.entName[i]
		c.execMAT = append(c.execMAT, x)
		c.execName = append(c.execName, name)
		c.execSw = append(c.execSw, c.visit[c.entRank[i]])
		if x < 0 {
			c.unknown = append(c.unknown, name)
			continue
		}
		c.seenCnt[x]++
		def := c.deployedDef(name)
		if def == nil {
			c.noDef = append(c.noDef, name)
		} else if def != c.ov.nodes[x].MAT {
			c.dirtyDef = append(c.dirtyDef, x)
		}
	}
}

// walkClean is the symbolic core: one pass over the lowered pipeline
// comparing every read's write history against the reference and every
// metadata read's switch-visible history against the global one. It
// returns false on the first discrepancy; the diagnostic pass
// reconstructs and classifies. All state is reused flat scratch —
// steady-state green walks allocate nothing.
func (c *Checker) walkClean() bool {
	ov := c.ov
	f := len(ov.fieldNames)
	u := len(c.visit)
	for i := 0; i < f; i++ {
		c.dCnt[i] = 0
		c.dHash[i] = seqSeed
		c.dSym[i] = 0
		c.dLast[i] = -1
	}
	need := u * f
	for len(c.visHash) < need {
		c.visHash = append(c.visHash, 0)
		c.visLen = append(c.visLen, 0)
		c.visLast = append(c.visLast, -1)
	}

	ei := 0
	for r := 0; r < u; r++ {
		su := c.visit[r]
		row := int(su) * f
		for i := 0; i < f; i++ {
			c.visHash[row+i] = seqSeed
			c.visLen[row+i] = 0
			c.visLast[row+i] = -1
		}
		// Imports overwrite-merge at switch entry in ascending upstream
		// visit rank (pre-sorted by the lowering), reproducing the
		// engine's deterministic later-upstream-wins delivery.
		for s := c.impStart[r]; s < c.impStart[r+1]; s++ {
			src := int(c.impFrom[s])*f + int(c.impF[s])
			dst := row + int(c.impF[s])
			c.visHash[dst] = c.visHash[src]
			c.visLen[dst] = c.visLen[src]
			c.visLast[dst] = c.visLast[src]
		}
		for ; ei < len(c.execSw) && c.execSw[ei] == su; ei++ {
			x := c.execMAT[ei]
			// The per-table inner loop: compare each read's reference
			// writer count and, for metadata, the carried history.
			//hermes:hot
			for s := ov.readStart[x]; s < ov.readStart[x+1]; s++ {
				fi := ov.readF[s]
				if c.dCnt[fi] != ov.refReadCnt[s] {
					return false
				}
				if ov.fieldMeta[fi] {
					// A read observes only the LAST write: a visible
					// history that diverges from the global one but ends
					// on the same writer only dropped shadowed (value-
					// dead) entries, so the engine reads the identical
					// value — not carrying dead writes across a cut is
					// header optimization, not a coordination gap.
					dst := row + int(fi)
					if (c.visLen[dst] != c.dCnt[fi] || c.visHash[dst] != c.dHash[fi]) &&
						c.visLast[dst] != c.dLast[fi] {
						return false
					}
				}
			}
			//hermes:hot
			for s := ov.writeStart[x]; s < ov.writeStart[x+1]; s++ {
				fi := ov.writeF[s]
				c.dHash[fi] = seqMix(c.dHash[fi], x)
				c.dSym[fi] += symMix(x)
				c.dCnt[fi]++
				c.dLast[fi] = x
				if ov.fieldMeta[fi] {
					dst := row + int(fi)
					c.visHash[dst] = seqMix(c.visHash[dst], x)
					c.visLen[dst]++
					c.visLast[dst] = x
				}
			}
		}
	}
	// Final write-sequence digests must match the reference per field
	// (WAW order matters even without a downstream reader: the engines
	// compare final values). A multiset-equal permutation on a field
	// whose writers the reference graph never ordered against each other
	// is accepted here: the diagnostic pass can only ever call it a
	// non-gating HE010 shuffle, and the replay twin covers the
	// non-commuting-write case — keeping cross-program merges on the
	// allocation-free path.
	for fi := 0; fi < f; fi++ {
		if c.dCnt[fi] != ov.refWCnt[fi] {
			return false
		}
		if c.dHash[fi] == ov.refWHash[fi] {
			continue
		}
		if !ov.refWFree[fi] || c.dSym[fi] != ov.refWSym[fi] {
			return false
		}
	}
	return true
}
