// Package equiv is the symbolic plan-equivalence checker: it proves,
// without replaying packets, that the distributed pipeline induced by
// a placement plan (or a compiled deployment) is functionally
// equivalent to the single-box reference pipeline that executes the
// merged TDG in topological order with all metadata visible.
//
// The model abstracts every field to its write history: the ordered
// sequence of MATs that may have written it. A MAT's observable
// behavior is a pure function of the values it reads (match keys and
// action operands), so if every read in the distributed order observes
// exactly the write history the reference order produces — and every
// metadata read observes it through the coordination headers actually
// carried across switch cuts — the two pipelines compute identical
// results for every packet. The checker walks the distributed MAT
// order (the plan's contracted-DAG switch order, then per-switch stage
// order) comparing per-read writer counts and per-field
// writer-sequence digests against the reference, and tracks the
// per-switch visible history separately so a missing header field is
// caught even when global order is preserved. Match kinds
// (exact/LPM/ternary/range) do not change the abstraction — a match
// outcome depends only on the read values — but they drive
// counterexample synthesis and the HE007 definition comparison.
//
// Verdicts are lint-style findings with stable rule IDs:
//
//	HE001  reference MAT never executed by the pipeline        (error)
//	HE002  extra, duplicated, or undefined MAT executes        (error)
//	HE003  dependent MATs execute out of reference order       (error)
//	HE004  metadata write not delivered across a switch cut    (error)
//	HE005  stale upstream delivery shadows a fresher carry     (error)
//	HE006  default action disagrees with the reference         (error)
//	HE007  MAT definition (keys/actions/rules) drifted         (error)
//	HE008  switch visit order unrealizable (cyclic cuts)       (error)
//	HE009  delivered metadata nothing downstream reads         (info)
//	HE010  unconstrained MATs interleaved differently          (warning)
//
// HE010 covers interleavings of MATs the reference graph never
// ordered: the dependency analyzer guarantees conflicting accesses are
// edge-connected, so such shuffles cannot change results and only the
// packet-replay differential twin double-checks them. The gate
// (Check/CheckDeployment/CheckPlan) fails only on error findings.
//
// The fast path is allocation-free: lowering and the symbolic walk run
// on reusable dense scratch over the interned reference (compile.go),
// and the first discrepancy defers to a rich diagnostic pass that
// reconstructs explicit writer sequences, classifies the break, and
// synthesizes a concrete counterexample packet confirmed by replay.
package equiv

import (
	"fmt"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/dataplane"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/tdg"
)

func init() {
	// Solvers gate freshly-minted plans when Options.Equiv is set; the
	// hook lives here so placement does not import equiv (same
	// init-registration scheme as lint's PlanLintHook). Plan-level
	// checks derive coordination headers with default analyzer options
	// (maximal carries); the deployment-level gate re-proves against
	// the headers actually compiled.
	placement.PlanEquivHook = func(p *placement.Plan, _ placement.Options) error {
		c, err := NewChecker(p.Graph)
		if err != nil {
			return err
		}
		return c.CheckPlan(p, analyzer.Options{})
	}
	deploy.EquivHook = func(d *deploy.Deployment) error {
		return CheckDeployment(nil, d)
	}
}

// Report is the full diagnostic verdict for one pipeline.
type Report struct {
	// Findings holds every HE finding, sorted; an empty list is a
	// clean proof.
	Findings lint.Findings
	// Programs maps each source program (TDG node origin) to its
	// per-program verdict: true when no error finding touches its MATs.
	Programs map[string]bool
	// Counterexample, when non-nil, is a concrete packet whose replay
	// diverges between the distributed and reference engines,
	// confirming an error finding dynamically.
	Counterexample *dataplane.Packet
}

// OK reports whether the pipeline is proven equivalent (warnings and
// infos allowed).
func (r *Report) OK() bool { return !r.Findings.HasErrors() }

// CheckDeployment is the package-level gate: it proves dep's pipeline
// equivalent to the reference graph (dep.Plan.Graph when ref is nil).
// Nil means proven; the error folds the findings otherwise.
func CheckDeployment(ref *tdg.Graph, dep *deploy.Deployment) error {
	c, err := checkerFor(ref, dep)
	if err != nil {
		return err
	}
	return c.Check(dep)
}

// CheckPlanAgainst gates a plan pre-compilation against ref (the
// plan's own graph when nil), assuming the coordination headers
// deploy.Compile would derive under aopts.
func CheckPlanAgainst(ref *tdg.Graph, p *placement.Plan, aopts analyzer.Options) error {
	if ref == nil {
		if p == nil {
			return fmt.Errorf("equiv: nil plan")
		}
		ref = p.Graph
	}
	c, err := NewChecker(ref)
	if err != nil {
		return err
	}
	return c.CheckPlan(p, aopts)
}

// Diagnose builds the full report for a deployment, including
// non-gating findings and, on failure, a replay-confirmed
// counterexample packet.
func Diagnose(ref *tdg.Graph, dep *deploy.Deployment) (*Report, error) {
	c, err := checkerFor(ref, dep)
	if err != nil {
		return nil, err
	}
	return c.Diagnose(dep)
}

// Diagnose is the Checker-level full report for a deployment.
func (c *Checker) Diagnose(dep *deploy.Deployment) (*Report, error) {
	if err := c.lowerDeployment(dep); err != nil {
		return nil, err
	}
	r := &Report{Findings: c.diagnose(true)}
	c.fillPrograms(r)
	if r.Findings.HasErrors() {
		if pkt, ok := c.Counterexample(dep); ok {
			r.Counterexample = pkt
			c.attachCounterexample(r, pkt)
		}
	}
	return r, nil
}

// DiagnosePlan is the Checker-level full report for an uncompiled
// plan. No counterexample is synthesized: replay confirmation needs
// compiled headers.
func (c *Checker) DiagnosePlan(p *placement.Plan, aopts analyzer.Options) (*Report, error) {
	if err := c.lowerPlan(p, aopts); err != nil {
		return nil, err
	}
	r := &Report{Findings: c.diagnose(true)}
	c.fillPrograms(r)
	return r, nil
}

// checkerFor resolves the reference graph for a deployment check.
func checkerFor(ref *tdg.Graph, dep *deploy.Deployment) (*Checker, error) {
	if ref == nil {
		if dep == nil || dep.Plan == nil {
			return nil, fmt.Errorf("equiv: nil deployment")
		}
		ref = dep.Plan.Graph
	}
	return NewChecker(ref)
}

// fillPrograms derives the per-program verdict from the findings'
// objects: an error finding on a MAT condemns that MAT's origin
// programs; errors on plan-wide objects condemn every program.
func (c *Checker) fillPrograms(r *Report) {
	r.Programs = map[string]bool{}
	for _, node := range c.ov.nodes {
		for _, org := range node.Origin {
			r.Programs[org] = true
		}
	}
	condemn := func(names []string) {
		for _, n := range names {
			r.Programs[n] = false
		}
	}
	for _, f := range r.Findings {
		if f.Severity != lint.Error {
			continue
		}
		if x, ok := c.ov.index[f.Object]; ok {
			if len(c.ov.nodes[x].Origin) == 0 {
				continue
			}
			condemn(c.ov.nodes[x].Origin)
			continue
		}
		// Plan-wide or field-level object: no single owner.
		for org := range r.Programs {
			r.Programs[org] = false
		}
	}
}

// attachCounterexample appends the confirmed packet to the first error
// finding's hint so text/JSON consumers see it inline.
func (c *Checker) attachCounterexample(r *Report, pkt *dataplane.Packet) {
	for i := range r.Findings {
		if r.Findings[i].Severity == lint.Error {
			if r.Findings[i].Hint != "" {
				r.Findings[i].Hint += "; "
			}
			r.Findings[i].Hint += "replay-confirmed counterexample: " + formatPacket(pkt)
			return
		}
	}
}
