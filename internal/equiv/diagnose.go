package equiv

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hermes-net/hermes/internal/lint"
	"github.com/hermes-net/hermes/internal/program"
)

// HE rule IDs emitted by the equivalence checker. They live in the
// same Finding shape as the HL lint family so CLI/JSON tooling is
// shared, but prove a different property: pipeline ≡ reference.
const (
	RuleMissingMAT     = "HE001" // reference MAT absent from the pipeline
	RuleExtraMAT       = "HE002" // extra, duplicated, or undefined MAT executes
	RuleReordered      = "HE003" // dependent MATs execute out of reference order
	RuleCarryMissing   = "HE004" // metadata write not delivered across a switch cut
	RuleAmbiguousCarry = "HE005" // stale upstream delivery shadows a fresher carry
	RuleDefaultAction  = "HE006" // default action disagrees with the reference
	RuleDefMismatch    = "HE007" // MAT definition (keys/actions/rules) drifted
	RuleOrderUnreal    = "HE008" // switch visit order unrealizable (cyclic cuts)
	RuleOverCarry      = "HE009" // delivered metadata nobody downstream reads
	RuleBenignShuffle  = "HE010" // unconstrained MATs interleaved differently
)

// swName renders a used-switch index as the switch ID for messages.
func (c *Checker) swName(u int32) string {
	return fmt.Sprintf("%d", int(c.usedIDs[u]))
}

// findingsErr folds error-severity findings into a gate error; nil if
// every finding is Warning/Info (the pipeline is still equivalent).
func findingsErr(fs lint.Findings) error {
	n := 0
	var first *lint.Finding
	for i := range fs {
		if fs[i].Severity == lint.Error {
			if first == nil {
				first = &fs[i]
			}
			n++
		}
	}
	if n == 0 {
		return nil
	}
	return fmt.Errorf("equiv: pipeline not equivalent to reference: %d finding(s), first: [%s] %s: %s",
		n, first.Rule, first.Object, first.Message)
}

// behaviorallyEqual compares two MAT definitions on the fields that
// affect packet processing; capacity and resource sizing are placement
// concerns, not behavior.
func behaviorallyEqual(a, b *program.MAT) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	ac, bc := *a, *b
	ac.Capacity, bc.Capacity = 0, 0
	ac.FixedRequirement, bc.FixedRequirement = 0, 0
	return ac.Equivalent(&bc)
}

// diagnose re-walks the lowered pipeline with explicit writer
// sequences and classifies every discrepancy the fast gate detects
// into HE findings. Allocation is fine here: this path only runs on
// broken pipelines or explicit Diagnose calls. When report is true the
// non-gating informational rules (HE009) are computed too.
func (c *Checker) diagnose(report bool) lint.Findings {
	var fs lint.Findings
	fs = append(fs, c.structuralFindings()...)
	if fs.HasErrors() {
		fs.Sort()
		return fs
	}
	fs = append(fs, c.walkFindings()...)
	if report {
		fs = append(fs, c.overCarryFindings()...)
	}
	fs.Sort()
	return fs
}

// structuralFindings covers the checks that precede the symbolic walk:
// visitability, MAT multiplicity, and definition drift.
func (c *Checker) structuralFindings() lint.Findings {
	var fs lint.Findings
	if c.cycle {
		var stuck []string
		for u, r := range c.rank {
			if r < 0 {
				stuck = append(stuck, c.swName(int32(u)))
			}
		}
		fs = append(fs, lint.Finding{
			Rule: RuleOrderUnreal, Severity: lint.Error, Object: "plan",
			Message: fmt.Sprintf("switch visit order is unrealizable: cross-switch dependencies form a cycle through switches %s", strings.Join(stuck, ", ")),
			Hint:    "move one MAT of the cycle so the switch-contracted dependency graph is acyclic",
		})
	}
	for x, n := range c.seenCnt {
		name := c.ov.names[x]
		switch {
		case n == 0 && !c.cycle:
			fs = append(fs, lint.Finding{
				Rule: RuleMissingMAT, Severity: lint.Error, Object: name,
				Message: "reference MAT is never executed by the distributed pipeline",
				Hint:    "assign the MAT to a switch stage (it was dropped from the plan or its switch config)",
			})
		case n > 1:
			fs = append(fs, lint.Finding{
				Rule: RuleExtraMAT, Severity: lint.Error, Object: name,
				Message: fmt.Sprintf("MAT executes %d times in the distributed pipeline; the reference executes it once", n),
			})
		}
	}
	for _, name := range c.unknown {
		fs = append(fs, lint.Finding{
			Rule: RuleExtraMAT, Severity: lint.Error, Object: name,
			Message: "pipeline executes a MAT the reference program set does not contain",
		})
	}
	for _, name := range c.noDef {
		fs = append(fs, lint.Finding{
			Rule: RuleExtraMAT, Severity: lint.Error, Object: name,
			Message: "pipeline schedules a MAT with no definition in the deployed graph; the engine would abort",
		})
	}
	for _, x := range c.dirtyDef {
		name := c.ov.names[x]
		ref := c.ov.nodes[x].MAT
		dep := c.deployedDef(name)
		if behaviorallyEqual(ref, dep) {
			continue
		}
		if dep != nil && ref.DefaultAction != dep.DefaultAction {
			fs = append(fs, lint.Finding{
				Rule: RuleDefaultAction, Severity: lint.Error, Object: name,
				Message: fmt.Sprintf("default action %q disagrees with the reference default %q", dep.DefaultAction, ref.DefaultAction),
				Hint:    "a packet missing every rule takes a different action than on the single-box pipeline",
			})
			// Re-check with defaults aligned: if the rest matches, the
			// default was the only drift.
			depCopy := *dep
			depCopy.DefaultAction = ref.DefaultAction
			if behaviorallyEqual(ref, &depCopy) {
				continue
			}
		}
		fs = append(fs, lint.Finding{
			Rule: RuleDefMismatch, Severity: lint.Error, Object: name,
			Message: fmt.Sprintf("deployed MAT definition differs from the reference (%s)", defDiff(ref, dep)),
			Hint:    "keys, actions and installed rules must be byte-identical to the merged program's MAT",
		})
	}
	return fs
}

// defDiff names the first behavioral aspect that differs, for the
// HE007 message.
func defDiff(ref, dep *program.MAT) string {
	if dep == nil {
		return "no deployed definition"
	}
	if len(ref.Keys) != len(dep.Keys) {
		return fmt.Sprintf("%d vs %d match keys", len(dep.Keys), len(ref.Keys))
	}
	for i := range ref.Keys {
		if ref.Keys[i] != dep.Keys[i] {
			return fmt.Sprintf("match key %d: %s(%s/%d bits) vs %s(%s/%d bits)", i,
				dep.Keys[i].Field.Name, dep.Keys[i].Type, dep.Keys[i].Field.Bits,
				ref.Keys[i].Field.Name, ref.Keys[i].Type, ref.Keys[i].Field.Bits)
		}
	}
	if len(ref.Actions) != len(dep.Actions) {
		return fmt.Sprintf("%d vs %d actions", len(dep.Actions), len(ref.Actions))
	}
	for i := range ref.Actions {
		a, b := ref.Actions[i], dep.Actions[i]
		if a.Name != b.Name || len(a.Ops) != len(b.Ops) {
			return fmt.Sprintf("action %q differs", a.Name)
		}
		for j := range a.Ops {
			if !opsSame(a.Ops[j], b.Ops[j]) {
				return fmt.Sprintf("action %q op %d differs", a.Name, j)
			}
		}
	}
	if len(ref.Rules) != len(dep.Rules) {
		return fmt.Sprintf("%d vs %d rules", len(dep.Rules), len(ref.Rules))
	}
	return "installed rules differ"
}

func opsSame(a, b program.Op) bool {
	if a.Kind != b.Kind || a.Dst != b.Dst || a.Imm != b.Imm || len(a.Srcs) != len(b.Srcs) {
		return false
	}
	for i := range a.Srcs {
		if a.Srcs[i] != b.Srcs[i] {
			return false
		}
	}
	return true
}

// walkFindings replays the lowered pipeline with explicit per-field
// writer sequences and classifies order, carry, ambiguity and final
// write-order discrepancies.
func (c *Checker) walkFindings() lint.Findings {
	ov := c.ov
	f := len(ov.fieldNames)
	u := len(c.visit)
	var fs lint.Findings
	reported := map[string]bool{}

	// Reference writer sequences per field.
	refSeq := make([][]int32, f)
	for _, x := range ov.refOrder {
		for s := ov.writeStart[x]; s < ov.writeStart[x+1]; s++ {
			fi := ov.writeF[s]
			refSeq[fi] = append(refSeq[fi], x)
		}
	}

	// Candidate histories delivered per (switch, field) this entry:
	// the engine applies them in upstream visit rank, later wins.
	type impCand struct {
		from int32
		seq  []int32
	}
	global := make([][]int32, f)
	vis := make([][]int32, u*f)
	cands := make([][]impCand, u*f)

	ei := 0
	for r := 0; r < u; r++ {
		su := c.visit[r]
		row := int(su) * f
		for i := 0; i < f; i++ {
			vis[row+i] = vis[row+i][:0]
			cands[row+i] = cands[row+i][:0]
		}
		for s := c.impStart[r]; s < c.impStart[r+1]; s++ {
			from, fi := c.impFrom[s], c.impF[s]
			src, dst := int(from)*f+int(fi), row+int(fi)
			seq := append([]int32(nil), vis[src]...)
			vis[dst] = append(vis[dst][:0], seq...)
			cands[dst] = append(cands[dst], impCand{from: from, seq: seq})
		}
		for ; ei < len(c.execSw) && c.execSw[ei] == su; ei++ {
			x := c.execMAT[ei]
			name := ov.names[x]
			for s := ov.readStart[x]; s < ov.readStart[x+1]; s++ {
				fi := ov.readF[s]
				fname := ov.fieldNames[fi]
				want := int(ov.refReadCnt[s])
				if len(global[fi]) != want {
					key := "ord/" + name + "/" + fname
					if !reported[key] {
						reported[key] = true
						fs = append(fs, c.classifyOrder(name, fname, x, refSeq[fi][:want], global[fi])...)
					}
				}
				if !ov.fieldMeta[fi] {
					continue
				}
				dst := row + int(fi)
				if seqEqual(vis[dst], global[fi]) {
					continue
				}
				// A read observes only the LAST write: when the visible
				// and global histories end on the same writer, every
				// dropped or shadowed prefix entry is value-dead for
				// this read and the engine reads the identical value.
				// Mirrors walkClean's visLast relaxation.
				if lv, lg := len(vis[dst]), len(global[fi]); lv > 0 && lg > 0 &&
					vis[dst][lv-1] == global[fi][lg-1] {
					continue
				}
				// Differing candidate deliveries mean the winning
				// (later-visited) upstream shadowed a fresher history:
				// HE005. A single or absent delivery that misses
				// writes is a plain carry gap: HE004.
				conflicting := false
				for i := 1; i < len(cands[dst]); i++ {
					if !seqEqual(cands[dst][i].seq, cands[dst][0].seq) {
						conflicting = true
						break
					}
				}
				if conflicting {
					key := "amb/" + name + "/" + fname
					if !reported[key] {
						reported[key] = true
						srcs := make([]string, len(cands[dst]))
						for i, cd := range cands[dst] {
							srcs[i] = c.swName(cd.from)
						}
						fs = append(fs, lint.Finding{
							Rule: RuleAmbiguousCarry, Severity: lint.Error, Object: name,
							Message: fmt.Sprintf("metadata %q reaches switch %s from upstream switches %s with conflicting write histories; the last delivery shadows the fresher one", fname, c.swName(su), strings.Join(srcs, ", ")),
							Hint:    "route the field through a single up-to-date upstream, or carry the missing writes into the stale exporter",
						})
					}
				} else {
					key := "carry/" + name + "/" + fname
					if !reported[key] {
						reported[key] = true
						fs = append(fs, c.carryFinding(name, fname, su, vis[dst], global[fi]))
					}
				}
			}
			for s := ov.writeStart[x]; s < ov.writeStart[x+1]; s++ {
				fi := ov.writeF[s]
				global[fi] = append(global[fi], x)
				if ov.fieldMeta[fi] {
					dst := row + int(fi)
					vis[dst] = append(vis[dst], x)
				}
			}
		}
	}

	// Final write-after-write order per field.
	for fi := 0; fi < f; fi++ {
		if seqEqual(global[fi], refSeq[fi]) {
			continue
		}
		fname := ov.fieldNames[fi]
		key := "waw/" + fname
		if !reported[key] {
			reported[key] = true
			fs = append(fs, c.classifyOrder("field:"+fname, fname, -1, refSeq[fi], global[fi])...)
		}
	}
	return fs
}

// classifyOrder explains a writer-sequence mismatch on one field.
// Premature or delayed writers that the reference graph orders against
// the reader (or against each other, for final-state mismatches) are
// HE003 errors; interleavings the TDG never constrained are HE010
// warnings — the engines produce identical results for them only when
// the writes commute, which the reference replay twin still checks.
func (c *Checker) classifyOrder(object, fname string, reader int32, want, got []int32) lint.Findings {
	ov := c.ov
	inWant := map[int32]int{}
	for _, w := range want {
		inWant[w]++
	}
	inGot := map[int32]int{}
	for _, w := range got {
		inGot[w]++
	}
	var premature, delayed []int32
	for w, n := range inGot {
		if n > inWant[w] {
			premature = append(premature, w)
		}
	}
	for w, n := range inWant {
		if n > inGot[w] {
			delayed = append(delayed, w)
		}
	}
	sortInt32(premature)
	sortInt32(delayed)

	ordered := false
	var against string
	if reader >= 0 {
		for _, w := range premature {
			if ov.reachable(reader, w) {
				ordered, against = true, ov.names[w]
				break
			}
		}
		if !ordered {
			for _, w := range delayed {
				if ov.reachable(w, reader) {
					ordered, against = true, ov.names[w]
					break
				}
			}
		}
	} else {
		// Final-state mismatch: find the first position where the
		// sequences diverge and test whether that pair is TDG-ordered.
		i := 0
		for i < len(want) && i < len(got) && want[i] == got[i] {
			i++
		}
		if i < len(want) && i < len(got) {
			a, b := want[i], got[i]
			if ov.reachable(a, b) || ov.reachable(b, a) {
				ordered, against = true, ov.names[a]
			}
		} else if len(premature) > 0 || len(delayed) > 0 {
			ordered = true // writer sets differ outright; never benign
			if len(delayed) > 0 {
				against = ov.names[delayed[0]]
			} else {
				against = ov.names[premature[0]]
			}
		}
	}

	msg := fmt.Sprintf("writes to %q reach %s out of reference order (premature: %s; missing: %s)",
		fname, object, nameList(ov, premature), nameList(ov, delayed))
	if ordered {
		return lint.Findings{{
			Rule: RuleReordered, Severity: lint.Error, Object: object,
			Message: msg + fmt.Sprintf("; the reference graph orders %q against this access", against),
			Hint:    "restore the dependency order: the writer and reader must keep their TDG order across stages and switches",
		}}
	}
	return lint.Findings{{
		Rule: RuleBenignShuffle, Severity: lint.Warning, Object: object,
		Message: msg + "; the interleaved MATs are unordered in the reference graph",
		Hint:    "harmless if the writes commute; the packet-replay twin still validates final state",
	}}
}

// carryFinding explains a visible-vs-global history gap on a metadata
// read: some writer's value was not delivered across a switch cut.
func (c *Checker) carryFinding(reader, fname string, su int32, visible, global []int32) lint.Finding {
	ov := c.ov
	have := map[int32]int{}
	for _, w := range visible {
		have[w]++
	}
	var missing []int32
	for _, w := range global {
		if have[w] > 0 {
			have[w]--
			continue
		}
		missing = append(missing, w)
	}
	sortInt32(missing)
	msg := fmt.Sprintf("metadata %q read by %q on switch %s is missing upstream writes by %s",
		fname, reader, c.swName(su), nameList(ov, missing))
	if len(missing) == 0 {
		msg = fmt.Sprintf("metadata %q reaches %q on switch %s with a stale write history (visible %s, expected %s)",
			fname, reader, c.swName(su), nameList(ov, visible), nameList(ov, global))
	}
	return lint.Finding{
		Rule: RuleCarryMissing, Severity: lint.Error, Object: reader,
		Message: msg,
		Hint:    fmt.Sprintf("carry %q in the coordination header(s) into switch %s", fname, c.swName(su)),
	}
}

// overCarryFindings flags delivered fields nothing downstream uses:
// correct but wasted wire bytes. Report-only (HE009, Info).
func (c *Checker) overCarryFindings() lint.Findings {
	ov := c.ov
	f := len(ov.fieldNames)
	var fs lint.Findings
	// readBy[u*f+fi]: some MAT hosted on used switch u reads fi.
	readBy := make([]bool, len(c.visit)*f)
	for ei := range c.execMAT {
		x := c.execMAT[ei]
		row := int(c.execSw[ei]) * f
		for s := ov.readStart[x]; s < ov.readStart[x+1]; s++ {
			readBy[row+int(ov.readF[s])] = true
		}
	}
	// exports[u*f+fi]: u exports fi onward (a later switch imports it
	// from u), so an unused import can still be a relay hop.
	exports := make([]bool, len(c.visit)*f)
	for r := range c.visit {
		for s := c.impStart[r]; s < c.impStart[r+1]; s++ {
			exports[int(c.impFrom[s])*f+int(c.impF[s])] = true
		}
	}
	seen := map[string]bool{}
	for r := range c.visit {
		su := c.visit[r]
		for s := c.impStart[r]; s < c.impStart[r+1]; s++ {
			fi := c.impF[s]
			if readBy[int(su)*f+int(fi)] || exports[int(su)*f+int(fi)] {
				continue
			}
			key := c.swName(su) + "/" + ov.fieldNames[fi]
			if seen[key] {
				continue
			}
			seen[key] = true
			fs = append(fs, lint.Finding{
				Rule: RuleOverCarry, Severity: lint.Info,
				Object:  "switch:" + c.swName(su),
				Message: fmt.Sprintf("metadata %q is delivered to switch %s but no MAT there reads it and it is not relayed onward", ov.fieldNames[fi], c.swName(su)),
				Hint:    "enable analyzer IntersectMatch or tighten the dependency's carried set to save header bytes",
			})
		}
	}
	return fs
}

func seqEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func nameList(ov *compiled, xs []int32) string {
	if len(xs) == 0 {
		return "none"
	}
	names := make([]string, len(xs))
	for i, x := range xs {
		names[i] = ov.names[x]
	}
	return strings.Join(names, ", ")
}
