package equiv

import (
	"fmt"
	"sort"

	"github.com/hermes-net/hermes/internal/fields"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// compiledMemoKey caches the compiled checker state on the reference
// graph's derived-result memo, mirroring placement's CompiledInstance:
// the overlay is immutable once built and the memo is cleared on any
// graph mutation, so a hit is always valid for the same graph value.
const compiledMemoKey = "equiv.compiled"

// compiled is the dense, interned form of the reference graph the
// symbolic walk runs against: MAT names and field names become int32
// indices, per-MAT external-read and may-write sets become flattened
// index lists, and the reference execution order (the single-box
// engine's g.TopoSort()) is folded into per-read writer counts and
// per-field writer-sequence hashes. Everything here is read-only after
// newCompiled returns; Checkers share one compiled per graph.
type compiled struct {
	g *tdg.Graph

	// names is sorted ascending; index i is the dense id of names[i], so
	// ascending MAT index is exactly lexicographic name order (the
	// engine's within-stage tie break).
	names []string
	nodes []*tdg.Node
	index map[string]int32

	// Field interning, sorted by name.
	fieldNames []string
	fieldDefs  []fields.Field
	fieldMeta  []bool
	fieldIndex map[string]int32

	// Per-MAT field lists, flattened: reads holds the externally-read
	// fields (match keys plus action source operands that are not
	// already written earlier in the same action — the exact set the
	// engine's read() can touch), writes the may-written fields, and
	// rawReads the analyzer's unrefined ReadFields (used only to mirror
	// MetadataFields when lowering a Plan under IntersectMatch).
	readStart    []int32
	readF        []int32
	writeStart   []int32
	writeF       []int32
	rawReadStart []int32
	rawReadF     []int32

	// Reference order: refOrder[i] is the MAT executed i-th by the
	// single-box engine; refPos is its inverse.
	refOrder []int32
	refPos   []int32

	// refReadCnt is aligned with readF: for read slot s of MAT x, the
	// number of may-writers of that field that execute strictly before x
	// in the reference order.
	refReadCnt []int32

	// Per-field reference writer-sequence digest: refWCnt writers in
	// total, folded in order into refWHash. refWSym is the
	// order-insensitive companion (sum of per-writer mixes) and refWFree
	// marks fields whose writers are fully pairwise-unordered in the
	// reference graph: for those, a multiset-equal permutation of the
	// final write sequence can only ever classify as a non-gating HE010
	// shuffle, so the fast walk accepts it without the diagnostic pass.
	refWHash []uint64
	refWCnt  []int32
	refWSym  []uint64
	refWFree []bool

	// Flattened out-edge adjacency over MAT indices, for the diagnostic
	// pass's reachability classification.
	outStart []int32
	outTo    []int32
}

// seqSeed and seqPrime drive the order-sensitive writer-sequence
// digest: h' = (h ^ (writer+1)) * prime, the FNV-1a step over MAT
// indices. Two writer sequences collide only with FNV's usual odds;
// the count is compared alongside the hash.
const (
	seqSeed  uint64 = 1469598103934665603
	seqPrime uint64 = 1099511628211
)

func seqMix(h uint64, writer int32) uint64 {
	return (h ^ uint64(writer+1)) * seqPrime
}

// symMix is the per-writer contribution to the order-insensitive
// digest (summed mod 2^64): the splitmix64 finalizer, so distinct
// writer multisets collide with negligible odds.
func symMix(writer int32) uint64 {
	x := uint64(writer+1) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// compile interns the reference graph, reusing the graph-memoized
// overlay when present.
func compile(g *tdg.Graph) (*compiled, error) {
	if g == nil {
		return nil, fmt.Errorf("equiv: nil reference graph")
	}
	if v, ok := g.Memo(compiledMemoKey); ok {
		if ov, ok := v.(*compiled); ok && ov.g == g {
			return ov, nil
		}
	}
	ov, err := newCompiled(g)
	if err != nil {
		return nil, err
	}
	g.MemoSet(compiledMemoKey, ov)
	return ov, nil
}

func newCompiled(g *tdg.Graph) (*compiled, error) {
	refNames, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("equiv: reference graph is not a DAG: %w", err)
	}
	ov := &compiled{g: g}
	ov.names = g.NodeNames()
	sort.Strings(ov.names)
	n := len(ov.names)
	ov.nodes = make([]*tdg.Node, n)
	ov.index = make(map[string]int32, n)
	for i, name := range ov.names {
		node, _ := g.Node(name)
		ov.nodes[i] = node
		ov.index[name] = int32(i)
	}

	ov.internFields()
	ov.buildFieldLists()

	// Reference order and its inverse.
	ov.refOrder = make([]int32, n)
	ov.refPos = make([]int32, n)
	for i, name := range refNames {
		x := ov.index[name]
		ov.refOrder[i] = x
		ov.refPos[x] = int32(i)
	}

	// Walk the reference order once, recording for every read slot the
	// writer count seen so far and folding writes into the per-field
	// sequence digest.
	f := len(ov.fieldNames)
	ov.refWHash = make([]uint64, f)
	ov.refWCnt = make([]int32, f)
	ov.refWSym = make([]uint64, f)
	for i := range ov.refWHash {
		ov.refWHash[i] = seqSeed
	}
	writers := make([][]int32, f)
	ov.refReadCnt = make([]int32, len(ov.readF))
	for _, x := range ov.refOrder {
		for s := ov.readStart[x]; s < ov.readStart[x+1]; s++ {
			ov.refReadCnt[s] = ov.refWCnt[ov.readF[s]]
		}
		for s := ov.writeStart[x]; s < ov.writeStart[x+1]; s++ {
			fi := ov.writeF[s]
			ov.refWHash[fi] = seqMix(ov.refWHash[fi], x)
			ov.refWCnt[fi]++
			ov.refWSym[fi] += symMix(x)
			writers[fi] = append(writers[fi], x)
		}
	}

	// Out-edge adjacency for reachability classification.
	ov.outStart = make([]int32, n+1)
	for _, e := range g.EdgeList() {
		ov.outStart[ov.index[e.From]+1]++
	}
	for i := 0; i < n; i++ {
		ov.outStart[i+1] += ov.outStart[i]
	}
	ov.outTo = make([]int32, len(g.EdgeList()))
	fill := make([]int32, n)
	for _, e := range g.EdgeList() {
		x := ov.index[e.From]
		ov.outTo[ov.outStart[x]+fill[x]] = ov.index[e.To]
		fill[x]++
	}

	// refWFree needs the adjacency: a field is order-free when no pair
	// of its writers is connected either way, which is exactly the
	// condition under which classifyOrder would call any multiset-equal
	// permutation a benign shuffle. Cross-program merges hit this
	// routinely (e.g. two programs' egress-port writers).
	ov.refWFree = make([]bool, f)
	for fi, ws := range writers {
		if len(ws) < 2 {
			continue
		}
		free := true
		for i := 0; i < len(ws) && free; i++ {
			for j := i + 1; j < len(ws); j++ {
				if ov.reachable(ws[i], ws[j]) || ov.reachable(ws[j], ws[i]) {
					free = false
					break
				}
			}
		}
		ov.refWFree[fi] = free
	}
	return ov, nil
}

// internFields collects every field referenced by any MAT (match keys
// and action operands) into a sorted, index-addressable universe.
func (ov *compiled) internFields() {
	seen := map[string]fields.Field{}
	add := func(f fields.Field) {
		if _, ok := seen[f.Name]; !ok {
			seen[f.Name] = f
		}
	}
	for _, node := range ov.nodes {
		m := node.MAT
		for _, k := range m.Keys {
			add(k.Field)
		}
		for _, a := range m.Actions {
			for _, op := range a.Ops {
				add(op.Dst)
				for _, s := range op.Srcs {
					add(s)
				}
			}
		}
	}
	ov.fieldNames = make([]string, 0, len(seen))
	for name := range seen {
		ov.fieldNames = append(ov.fieldNames, name)
	}
	sort.Strings(ov.fieldNames)
	ov.fieldDefs = make([]fields.Field, len(ov.fieldNames))
	ov.fieldMeta = make([]bool, len(ov.fieldNames))
	ov.fieldIndex = make(map[string]int32, len(ov.fieldNames))
	for i, name := range ov.fieldNames {
		ov.fieldDefs[i] = seen[name]
		ov.fieldMeta[i] = seen[name].IsMetadata()
		ov.fieldIndex[name] = int32(i)
	}
}

// buildFieldLists computes the flattened per-MAT read/write index
// lists. The external-read set mirrors the engine's read() calls
// exactly: all match keys (read even on a rule miss), plus each
// action's operand reads refined by the ops already executed — a field
// the same action wrote earlier is read locally, never from upstream.
func (ov *compiled) buildFieldLists() {
	n := len(ov.nodes)
	ov.readStart = make([]int32, n+1)
	ov.writeStart = make([]int32, n+1)
	ov.rawReadStart = make([]int32, n+1)
	var reads, writes, rawReads []int32
	var scratch []int32
	for i, node := range ov.nodes {
		m := node.MAT
		scratch = scratch[:0]
		scratch = ov.appendExternalReads(scratch, m)
		reads = append(reads, dedupSorted(scratch)...)
		ov.readStart[i+1] = int32(len(reads))

		scratch = scratch[:0]
		for _, a := range m.Actions {
			for _, op := range a.Ops {
				scratch = append(scratch, ov.fieldIndex[op.Dst.Name])
			}
		}
		writes = append(writes, dedupSorted(scratch)...)
		ov.writeStart[i+1] = int32(len(writes))

		scratch = scratch[:0]
		scratch = ov.appendRawReads(scratch, m)
		rawReads = append(rawReads, dedupSorted(scratch)...)
		ov.rawReadStart[i+1] = int32(len(rawReads))
	}
	ov.readF = reads
	ov.writeF = writes
	ov.rawReadF = rawReads
}

// appendExternalReads appends the field indices the engine can read
// from pre-MAT state while executing m.
func (ov *compiled) appendExternalReads(dst []int32, m *program.MAT) []int32 {
	for _, k := range m.Keys {
		dst = append(dst, ov.fieldIndex[k.Field.Name])
	}
	local := map[int32]bool{}
	for _, a := range m.Actions {
		for k := range local {
			delete(local, k)
		}
		for _, op := range a.Ops {
			for _, src := range opReads(op) {
				fi := ov.fieldIndex[src.Name]
				if !local[fi] {
					dst = append(dst, fi)
				}
			}
			local[ov.fieldIndex[op.Dst.Name]] = true
		}
	}
	return dst
}

// opReads lists the fields one op reads from the context, matching
// matExecutor.runAction: OpSet reads nothing, OpCopy/OpHash/OpCount
// read their sources, OpAdd and OpDecrement read-modify-write Dst.
func opReads(op program.Op) []fields.Field {
	switch op.Kind {
	case program.OpCopy, program.OpHash, program.OpCount:
		return op.Srcs
	case program.OpAdd:
		if len(op.Srcs) > 0 {
			return []fields.Field{op.Dst, op.Srcs[0]}
		}
		return []fields.Field{op.Dst}
	case program.OpDecrement:
		return []fields.Field{op.Dst}
	default:
		return nil
	}
}

// appendRawReads appends the analyzer's unrefined read set (match keys
// plus Action.Reads), mirroring MAT.ReadFields for plan lowering:
// every op source, plus the destination of read-modify-write kinds.
func (ov *compiled) appendRawReads(dst []int32, m *program.MAT) []int32 {
	for _, k := range m.Keys {
		dst = append(dst, ov.fieldIndex[k.Field.Name])
	}
	for _, a := range m.Actions {
		for _, op := range a.Ops {
			for _, s := range op.Srcs {
				dst = append(dst, ov.fieldIndex[s.Name])
			}
			switch op.Kind {
			case program.OpAdd, program.OpDecrement, program.OpCount:
				dst = append(dst, ov.fieldIndex[op.Dst.Name])
			}
		}
	}
	return dst
}

// dedupSorted sorts the slice in place and returns the deduplicated
// prefix.
func dedupSorted(s []int32) []int32 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// reachable reports whether the reference graph orders from before to:
// a directed path from→to exists. Used only on the diagnostic path to
// distinguish a reordered dependent pair (an equivalence break) from
// an interleaving the TDG never constrained.
func (ov *compiled) reachable(from, to int32) bool {
	if from == to {
		return true
	}
	// Iterative DFS pruned by reference position: every path moves
	// strictly forward in refPos, so nodes past to are dead ends.
	limit := ov.refPos[to]
	visited := map[int32]bool{from: true}
	stack := []int32{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := ov.outStart[x]; s < ov.outStart[x+1]; s++ {
			next := ov.outTo[s]
			if next == to {
				return true
			}
			if !visited[next] && ov.refPos[next] < limit {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}
