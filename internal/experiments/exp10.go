package experiments

import (
	"fmt"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/equiv"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/placement/shard"
	"github.com/hermes-net/hermes/internal/workload"
)

// ShardPoint is one Exp#10 cell: the region-sharded solver against the
// whole-graph Greedy on the same instance. On sizes past the
// whole-graph solver's practical range only the sharded side runs and
// the comparison fields stay zero.
type ShardPoint struct {
	// Topology names the generated substrate ("composite:30", ...).
	Topology     string
	Switches     int
	Programmable int
	Programs     int
	MATs         int
	Shards       int
	// WholeMs/WholeAMax describe the whole-graph Greedy run; zero when
	// it was skipped for size.
	WholeMs   float64
	WholeAMax int
	// ShardMs/ShardAMax describe the sharded run (partition + regional
	// solves + boundary exchange + finalize).
	ShardMs   float64
	ShardAMax int
	// Speedup is WholeMs/ShardMs; AMaxRatio is ShardAMax/WholeAMax —
	// the quality price of sharding. Both zero when whole was skipped.
	Speedup   float64
	AMaxRatio float64
	// Exchange telemetry.
	Hosts    int
	Rounds   int
	Moves    int
	FellBack bool
	// EquivOK reports the symbolic plan-equivalence verdict on the
	// sharded plan (the pre-compilation gate); EquivMs is its cost.
	// Only the comparison rows run the check — the sharded-only scale
	// row skips it to keep the point's wall clock solver-bound.
	EquivOK bool
	EquivMs float64
	// PartitionMs/RegionMs/ExchangeMs split ShardMs into its phases.
	PartitionMs float64
	RegionMs    float64
	ExchangeMs  float64
}

// exp10Case is one sweep size.
type exp10Case struct {
	topoSpec string
	regions  int // CompositeWAN regions
	programs int
	shards   int
	runWhole bool
}

// exp10Cases returns the sweep. The default sizes keep both solvers in
// range so speedup and quality ratio are measured; full adds the
// 10k-switch / 5k-program point, where only the sharded solver is
// practical end-to-end.
func exp10Cases(full bool) []exp10Case {
	cases := []exp10Case{
		{topoSpec: "composite:10", regions: 10, programs: 30, shards: 4, runWhole: true},
		{topoSpec: "composite:30", regions: 30, programs: 50, shards: 8, runWhole: true},
	}
	if full {
		cases = append(cases,
			exp10Case{topoSpec: "composite:60", regions: 60, programs: 200, shards: 16, runWhole: true},
			exp10Case{topoSpec: "composite:143", regions: 143, programs: 5000, shards: 64, runWhole: false},
		)
	}
	return cases
}

// Exp10 measures region-sharded placement at scale. full enables the
// 10k-switch point (minutes of runtime); otherwise the sweep stays in
// smoke range (a few seconds).
func Exp10(cfg Config, full bool) ([]ShardPoint, error) {
	var out []ShardPoint
	for _, c := range exp10Cases(full) {
		p, err := exp10Point(cfg, c)
		if err != nil {
			return nil, fmt.Errorf("experiments: exp10 %s: %w", c.topoSpec, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func exp10Point(cfg Config, c exp10Case) (ShardPoint, error) {
	topo, err := network.CompositeWAN(c.regions, network.TofinoSpec(), cfg.Seed)
	if err != nil {
		return ShardPoint{}, err
	}
	progs, err := workload.SyntheticSet(c.programs, workload.PaperSyntheticSpec(), cfg.Seed)
	if err != nil {
		return ShardPoint{}, err
	}
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		return ShardPoint{}, err
	}
	pt := ShardPoint{
		Topology:     c.topoSpec,
		Switches:     topo.NumSwitches(),
		Programmable: len(topo.ProgrammableSwitches()),
		Programs:     c.programs,
		MATs:         merged.NumNodes(),
		Shards:       c.shards,
	}
	opts := placement.Options{Workers: cfg.Workers}

	// Comparison rows time the best of a few runs: both solvers are
	// deterministic (same plan every run), and the minimum is the
	// noise-robust point estimate the compare gate needs for solves in
	// the tens-of-milliseconds range. The sharded-only scale row runs
	// once — its wall clock is minutes and no timing gate reads it.
	reps := 1
	if c.runWhole {
		reps = 3
	}
	solver := shard.ShardedGreedy{Shards: c.shards, Seed: cfg.Seed}
	var plan *placement.Plan
	var st shard.Stats
	for i := 0; i < reps; i++ {
		start := time.Now()
		p, s, err := solver.SolveStats(merged, topo, opts)
		if err != nil {
			return ShardPoint{}, fmt.Errorf("sharded solve: %w", err)
		}
		if elapsed := ms(time.Since(start)); i == 0 || elapsed < pt.ShardMs {
			pt.ShardMs = elapsed
			plan, st = p, s
		}
	}
	pt.ShardAMax = plan.AMax()
	pt.Hosts = st.Hosts
	pt.Rounds = st.Rounds
	pt.Moves = st.Moves
	pt.FellBack = st.FellBack
	pt.PartitionMs = ms(st.PartitionTime)
	pt.RegionMs = ms(st.RegionTime)
	pt.ExchangeMs = ms(st.ExchangeTime)

	if c.runWhole {
		start := time.Now()
		if err := equiv.CheckPlanAgainst(merged, plan, analyzer.Options{}); err != nil {
			return ShardPoint{}, fmt.Errorf("sharded plan fails equivalence: %w", err)
		}
		pt.EquivOK = true
		pt.EquivMs = ms(time.Since(start))
	}

	if c.runWhole {
		var wplan *placement.Plan
		for i := 0; i < reps; i++ {
			start := time.Now()
			p, err := (placement.Greedy{}).Solve(merged, topo, opts)
			if err != nil {
				return ShardPoint{}, fmt.Errorf("whole-graph solve: %w", err)
			}
			if elapsed := ms(time.Since(start)); i == 0 || elapsed < pt.WholeMs {
				pt.WholeMs = elapsed
				wplan = p
			}
		}
		pt.WholeAMax = wplan.AMax()
		if pt.ShardMs > 0 {
			pt.Speedup = pt.WholeMs / pt.ShardMs
		}
		if pt.WholeAMax > 0 {
			pt.AMaxRatio = float64(pt.ShardAMax) / float64(pt.WholeAMax)
		}
	}
	return pt, nil
}

func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
