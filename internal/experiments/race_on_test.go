//go:build race

package experiments

// raceDetectorEnabled reports whether the test binary was built with
// the race detector, whose per-access instrumentation compresses the
// regional-vs-cold speedup (both sides slow, but not uniformly).
const raceDetectorEnabled = true
