// Package experiments reproduces every experiment of the paper's
// evaluation (§VI): the motivation sweep of Figure 2, the testbed study
// Exp#1 (Fig. 5), the large-scale simulation Exp#2–Exp#4 (Fig. 6–8),
// the scalability study Exp#5 (Fig. 9), and the resource-consumption
// study Exp#6. The cmd/hermes-bench binary and the top-level Go
// benchmarks drive these functions and print the same rows and series
// the paper reports.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/hermes-net/hermes/internal/analyzer"
	"github.com/hermes-net/hermes/internal/baseline"
	"github.com/hermes-net/hermes/internal/deploy"
	"github.com/hermes-net/hermes/internal/e2esim"
	"github.com/hermes-net/hermes/internal/network"
	"github.com/hermes-net/hermes/internal/placement"
	"github.com/hermes-net/hermes/internal/program"
	"github.com/hermes-net/hermes/internal/tdg"
)

// Config bundles the knobs shared by experiments.
type Config struct {
	// Seed makes workloads and topologies deterministic.
	Seed int64
	// SolverDeadline caps each exact/ILP solver invocation. The paper
	// caps Gurobi at two hours and plots capped runs as 10^7 ms bars;
	// we default to 3 s per instance so the full suite stays laptop-
	// sized, and mark capped results the same way.
	SolverDeadline time.Duration
	// TestbedStageCapacity calibrates Exp#1's per-stage capacity so the
	// largest program (the count-min sketch) overflows a single switch,
	// as on the paper's Tofinos (whose pipelines the ten switch.p4
	// variants saturate); 0.15 puts the ten-program workload at ~2.4
	// switch loads on the 3-switch testbed.
	TestbedStageCapacity float64
	// IncludeILPFrameworks enables the genuinely ILP-backed comparison
	// frameworks (slow by design); when false only the heuristic
	// baselines run.
	IncludeILPFrameworks bool
	// PacketBytes is the packet size for end-to-end impact (the paper
	// uses 1024-byte packets in Exp#4).
	PacketBytes int
	// Workers bounds the number of concurrently evaluated experiment
	// cells (one solver on one instance). With a single worker the
	// value is forwarded to the solver's internal parallelism instead;
	// concurrent cells run their solvers serially so the two levels
	// never multiply. Zero or negative means GOMAXPROCS. Every worker
	// count yields the same rows in the same order; the ExecTime
	// fields (and the incumbents of deadline-capped ILP cells) are
	// timing-dependent, exactly as under the paper's wall-clock caps.
	Workers int
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the settings used throughout EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		SolverDeadline:       3 * time.Second,
		TestbedStageCapacity: 0.15,
		IncludeILPFrameworks: true,
		PacketBytes:          1024,
	}
}

// CappedExecTime is the bar height the paper assigns to runs exceeding
// the solver cap (10^7 ms in Fig. 7/9).
const CappedExecTime = 10_000_000 * time.Millisecond

// SolverResult is one solver's outcome on one instance.
type SolverResult struct {
	Solver string
	// Err is non-empty when the solver failed outright.
	Err string
	// AMax is the per-packet byte overhead by Eq. 1 (per-pair sums of
	// A(a,b); shared fields count once per edge).
	AMax int
	// HeaderBytes is the realized overhead: the largest compiled
	// coordination header, with fields shared by several dependencies
	// deduplicated — what a testbed would measure on the wire.
	HeaderBytes int
	// TotalCross is the summed cross-switch metadata.
	TotalCross int
	// QOcc is the number of occupied switches.
	QOcc int
	// ExecTime is the solver's wall-clock time; capped runs report
	// CappedExecTime, matching the paper's plotting convention.
	ExecTime time.Duration
	// Capped marks deadline-capped solver runs.
	Capped bool
	// FCTOverhead and GoodputLoss are the end-to-end penalties of AMax
	// under the Exp#4 flow model (fractions, e.g. 0.15 = +15% FCT).
	FCTOverhead float64
	GoodputLoss float64
}

// instance bundles the analyzed workload for one experiment point.
type instance struct {
	merged *tdg.Graph // SPEED-merged TDG (network-wide frameworks)
	union  *tdg.Graph // per-program union (one-by-one frameworks)
	topo   *network.Topology
}

// buildInstance analyzes the programs both ways.
func buildInstance(progs []*program.Program, topo *network.Topology) (*instance, error) {
	merged, err := analyzer.Analyze(progs, analyzer.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	union, err := analyzer.Analyze(progs, analyzer.Options{SkipMerge: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &instance{merged: merged, union: union, topo: topo}, nil
}

// solverSpec describes how to run one comparison point.
type solverSpec struct {
	name string
	// useMerged picks the merged TDG (network-wide frameworks merge;
	// one-by-one frameworks deploy per-program graphs).
	useMerged bool
	// run executes the solver.
	run func(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error)
	// ilpBacked marks frameworks the paper implements on Gurobi; their
	// runtime is dominated by the MILP solve and is deadline-capped.
	ilpBacked bool
	// fallback recovers a plan for quality metrics when the ILP solve
	// caps out (the paper still reports their placements, obtained from
	// the incumbent; we use the behavioral heuristic).
	fallback func(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error)
}

// solverSpecs returns the full comparison lineup of §VI-A.
func solverSpecs(cfg Config) []solverSpec {
	specs := []solverSpec{
		{
			name:      "Hermes",
			useMerged: true,
			run:       placement.Greedy{}.Solve,
		},
		{
			name:      "Optimal",
			useMerged: true,
			ilpBacked: true,
			run: func(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
				// Seed the branch-and-bound incumbent with a full
				// (deadline-free) greedy plan: a deadline-capped "Optimal"
				// can then never report a worse A_max than the heuristic
				// column next to it.
				if warm, err := (placement.Greedy{}).Solve(g, topo, placement.Options{Workers: opts.Workers}); err == nil {
					opts.Warm = warm
				}
				return (placement.Exact{}).Solve(g, topo, opts)
			},
			fallback: placement.Greedy{}.Solve,
		},
	}
	if !cfg.IncludeILPFrameworks {
		for _, b := range baseline.All() {
			b := b
			specs = append(specs, solverSpec{
				name:      b.Name(),
				useMerged: usesMergedTDG(b.Name()),
				run:       b.Solve,
			})
		}
		return specs
	}
	// The paper implements MS, Sonata, SPEED, MTP, FP and P4All on the
	// same ILP solver; FFL and FFLS stay heuristic.
	type ilpBase struct {
		name      string
		objective placement.ILPObjective
		behavior  placement.Solver
	}
	for _, ib := range []ilpBase{
		{"MS", placement.ObjSwitches, baseline.MinStage{}},
		{"Sonata", placement.ObjBalance, baseline.Sonata{}},
		{"SPEED", placement.ObjLatency, baseline.SPEED{}},
		{"MTP", placement.ObjLatency, baseline.MTP{}},
		{"FP", placement.ObjSwitches, baseline.Flightplan{}},
		{"P4All", placement.ObjBalance, baseline.P4All{}},
	} {
		ib := ib
		specs = append(specs, solverSpec{
			name:      ib.name,
			useMerged: usesMergedTDG(ib.name),
			ilpBacked: true,
			run: func(g *tdg.Graph, topo *network.Topology, opts placement.Options) (*placement.Plan, error) {
				s := placement.ILP{Objective: ib.objective, DisplayName: ib.name}
				return s.Solve(g, topo, opts)
			},
			fallback: ib.behavior.Solve,
		})
	}
	specs = append(specs,
		solverSpec{name: "FFL", useMerged: false, run: baseline.FFL{}.Solve},
		solverSpec{name: "FFLS", useMerged: false, run: baseline.FFLS{}.Solve},
	)
	return specs
}

// usesMergedTDG reports whether the named framework merges input
// programs (network-wide frameworks do; single-switch one-by-one
// frameworks do not).
func usesMergedTDG(name string) bool {
	switch name {
	case "Hermes", "Optimal", "SPEED", "MTP":
		return true
	default:
		return false
	}
}

// ilpTractableVars bounds the MILP size we even attempt: the built-in
// solver keeps a dense simplex tableau (rows × columns), so models
// beyond a few thousand variables exhaust memory long before the
// deadline. Larger instances are reported deadline-capped, matching
// the paper's >2h bars.
const ilpTractableVars = 3_000

// runSolver executes one spec on one instance and post-processes the
// metrics.
func runSolver(spec solverSpec, inst *instance, cfg Config) SolverResult {
	g := inst.union
	if spec.useMerged {
		g = inst.merged
	}
	opts := placement.Options{Workers: cfg.Workers}
	if spec.ilpBacked && cfg.SolverDeadline > 0 {
		opts.Deadline = time.Now().Add(cfg.SolverDeadline)
	}

	res := SolverResult{Solver: spec.name}

	capped := false
	var plan *placement.Plan
	var err error
	start := time.Now()
	if spec.ilpBacked && placement.EstimateVars(g, inst.topo) > ilpTractableVars && spec.name != "Optimal" {
		// The MILP would not even finish building; the paper plots
		// these as >2h bars.
		capped = true
		err = fmt.Errorf("model too large")
	} else {
		plan, err = spec.run(g, inst.topo, opts)
		if err == nil && spec.ilpBacked && !plan.Proven {
			capped = true
		}
	}
	elapsed := time.Since(start)

	if err != nil && spec.fallback != nil {
		plan, err = spec.fallback(g, inst.topo, placement.Options{Workers: cfg.Workers})
		capped = true
	}
	if err != nil {
		res.Err = err.Error()
		return res
	}

	res.AMax = plan.AMax()
	res.HeaderBytes = res.AMax
	if dep, derr := deploy.Compile(plan, analyzer.Options{}); derr == nil {
		res.HeaderBytes = dep.MaxHeaderBytes()
	}
	res.TotalCross = plan.TotalCrossBytes()
	res.QOcc = plan.QOcc()
	res.Capped = capped
	if capped {
		res.ExecTime = CappedExecTime
	} else {
		res.ExecTime = elapsed
	}

	flow := e2esim.DefaultDCN(cfg.PacketBytes)
	if impact, ierr := flow.ImpactOf(res.HeaderBytes); ierr == nil {
		res.FCTOverhead = impact.FCTIncrease
		res.GoodputLoss = impact.GoodputDecrease
	}
	return res
}
